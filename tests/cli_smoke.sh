#!/usr/bin/env bash
# End-to-end smoke test of the segugio CLI: simgen -> train -> classify ->
# report -> inspect, exercising the trace formats (binlog, dnstap, format
# autodetection), the deprecated aliases, and the model round trip.
set -euo pipefail
CLI="$1"
DIR="$(mktemp -d)"
trap 'rm -rf "$DIR"' EXIT

"$CLI" simgen --out "$DIR" --days 2 --isp 0 --format binlog >/dev/null
test -f "$DIR/day0.bin"
test -f "$DIR/whitelist.txt"

# --input sniffs the SEGTRC1 magic; no --format needed.
"$CLI" train --input "$DIR/day0.bin" \
  --blacklist "$DIR/blacklist-day0.txt" --whitelist "$DIR/whitelist.txt" \
  --activity "$DIR/activity.txt" --pdns "$DIR/pdns.txt" \
  --model "$DIR/model.txt" --trees 20 >/dev/null
test -s "$DIR/model.txt"

OUT="$("$CLI" classify --input "$DIR/day1.bin" --format binlog --model "$DIR/model.txt" \
  --blacklist "$DIR/blacklist-day1.txt" --whitelist "$DIR/whitelist.txt" \
  --activity "$DIR/activity.txt" --pdns "$DIR/pdns.txt" --threshold 0.5)"
echo "$OUT" | grep -q "unknown domains scored"

"$CLI" report --input "$DIR/day1.bin" --model "$DIR/model.txt" \
  --blacklist "$DIR/blacklist-day1.txt" --whitelist "$DIR/whitelist.txt" \
  --activity "$DIR/activity.txt" --pdns "$DIR/pdns.txt" --threshold 0.5 \
  | grep -q "remediation worklist"

"$CLI" inspect --model "$DIR/model.txt" | grep -q "random forest"

# Wire-format round trip: emit a dnstap capture and classify straight from
# it (autodetected from the frame-streams control escape).
"$CLI" simgen --out "$DIR" --days 2 --isp 0 --format dnstap >/dev/null
test -f "$DIR/day1.dnstap"
"$CLI" classify --input "$DIR/day1.dnstap" --model "$DIR/model.txt" \
  --blacklist "$DIR/blacklist-day1.txt" --whitelist "$DIR/whitelist.txt" \
  --activity "$DIR/activity.txt" --pdns "$DIR/pdns.txt" --threshold 0.5 \
  | grep -q "unknown domains scored"

# Deprecated aliases still work and warn on stderr.
"$CLI" simgen --out "$DIR" --days 1 --isp 0 --binary 2>"$DIR/warn1.txt" >/dev/null
grep -q "deprecated" "$DIR/warn1.txt"
"$CLI" classify --trace "$DIR/day1.bin" --model "$DIR/model.txt" \
  --blacklist "$DIR/blacklist-day1.txt" --whitelist "$DIR/whitelist.txt" \
  --activity "$DIR/activity.txt" --pdns "$DIR/pdns.txt" --threshold 0.5 \
  2>"$DIR/warn2.txt" | grep -q "unknown domains scored"
grep -q "deprecated" "$DIR/warn2.txt"

# Error paths return non-zero with a clear message.
if "$CLI" classify --input /nonexistent --model "$DIR/model.txt" \
  --blacklist "$DIR/blacklist-day1.txt" --whitelist "$DIR/whitelist.txt" \
  --activity "$DIR/activity.txt" --pdns "$DIR/pdns.txt" 2>/dev/null; then
  echo "expected failure on missing trace" >&2
  exit 1
fi
if "$CLI" classify --input "$DIR/day1.bin" --format bogus --model "$DIR/model.txt" \
  --blacklist "$DIR/blacklist-day1.txt" --whitelist "$DIR/whitelist.txt" \
  --activity "$DIR/activity.txt" --pdns "$DIR/pdns.txt" 2>/dev/null; then
  echo "expected failure on unknown --format" >&2
  exit 1
fi

echo "cli smoke ok"
