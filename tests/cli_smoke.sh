#!/usr/bin/env bash
# End-to-end smoke test of the segugio CLI: simgen -> train -> classify ->
# report -> inspect, exercising both trace formats and the model round trip.
set -euo pipefail
CLI="$1"
DIR="$(mktemp -d)"
trap 'rm -rf "$DIR"' EXIT

"$CLI" simgen --out "$DIR" --days 2 --isp 0 --binary >/dev/null
test -f "$DIR/day0.bin"
test -f "$DIR/whitelist.txt"

"$CLI" train --trace "$DIR/day0.bin" \
  --blacklist "$DIR/blacklist-day0.txt" --whitelist "$DIR/whitelist.txt" \
  --activity "$DIR/activity.txt" --pdns "$DIR/pdns.txt" \
  --model "$DIR/model.txt" --trees 20 >/dev/null
test -s "$DIR/model.txt"

OUT="$("$CLI" classify --trace "$DIR/day1.bin" --model "$DIR/model.txt" \
  --blacklist "$DIR/blacklist-day1.txt" --whitelist "$DIR/whitelist.txt" \
  --activity "$DIR/activity.txt" --pdns "$DIR/pdns.txt" --threshold 0.5)"
echo "$OUT" | grep -q "unknown domains scored"

"$CLI" report --trace "$DIR/day1.bin" --model "$DIR/model.txt" \
  --blacklist "$DIR/blacklist-day1.txt" --whitelist "$DIR/whitelist.txt" \
  --activity "$DIR/activity.txt" --pdns "$DIR/pdns.txt" --threshold 0.5 \
  | grep -q "remediation worklist"

"$CLI" inspect --model "$DIR/model.txt" | grep -q "random forest"

# Error paths return non-zero with a clear message.
if "$CLI" classify --trace /nonexistent --model "$DIR/model.txt" \
  --blacklist "$DIR/blacklist-day1.txt" --whitelist "$DIR/whitelist.txt" \
  --activity "$DIR/activity.txt" --pdns "$DIR/pdns.txt" 2>/dev/null; then
  echo "expected failure on missing trace" >&2
  exit 1
fi

echo "cli smoke ok"
