#include <gtest/gtest.h>

#include <sstream>

#include "core/segugio.h"
#include "features/feature_config.h"
#include "sim/world.h"
#include "util/require.h"

namespace seg::core {
namespace {

class SegugioIoTest : public ::testing::Test {
 protected:
  static sim::World& world() {
    static sim::World instance{sim::ScenarioConfig::small()};
    return instance;
  }

  static graph::MachineDomainGraph prepared_graph(dns::Day day) {
    auto& w = world();
    const auto trace = w.generate_day(0, day);
    return Segugio::prepare_graph(trace, w.psl(),
                                  w.blacklist().as_of(sim::BlacklistKind::kCommercial, day),
                                  w.whitelist().all())
        .graph;
  }
};

TEST_F(SegugioIoTest, ForestModelRoundTrips) {
  SegugioConfig config;
  config.forest.num_trees = 15;
  config.forest.num_threads = 1;
  config.features.activity_window_days = 10;
  config.feature_subset =
      features::feature_indices_excluding(features::FeatureGroup::kIpAbuse);
  const auto graph = prepared_graph(0);
  Segugio segugio(config);
  segugio.train(graph, world().activity(), world().pdns());

  std::stringstream blob;
  segugio.save(blob);
  auto restored = Segugio::load(blob);
  EXPECT_TRUE(restored.is_trained());
  EXPECT_EQ(restored.config().features.activity_window_days, 10);
  EXPECT_EQ(restored.config().feature_subset, config.feature_subset);

  // Scores must be identical on a fresh classification day.
  const auto graph2 = prepared_graph(1);
  const auto a = segugio.classify(graph2, world().activity(), world().pdns());
  const auto b = restored.classify(graph2, world().activity(), world().pdns());
  ASSERT_EQ(a.scores.size(), b.scores.size());
  for (std::size_t i = 0; i < a.scores.size(); ++i) {
    EXPECT_EQ(a.scores[i].name, b.scores[i].name);
    EXPECT_DOUBLE_EQ(a.scores[i].score, b.scores[i].score);
  }
}

TEST_F(SegugioIoTest, LegacyHeaderlessModelStreamLoads) {
  // Model files written before the `segf1` header existed start directly
  // with the `segugio 1` body line; the body is otherwise unchanged, so a
  // legacy stream is today's bytes minus the header with a v1 body tag.
  SegugioConfig config;
  config.forest.num_trees = 10;
  config.forest.num_threads = 1;
  const auto graph = prepared_graph(0);
  Segugio segugio(config);
  segugio.train(graph, world().activity(), world().pdns());

  std::stringstream blob;
  segugio.save(blob);
  auto bytes = blob.str();
  bytes = bytes.substr(bytes.find('\n') + 1);  // drop the segf1 header
  const std::string modern_tag = "segugio " + std::to_string(Segugio::kModelFormatVersion);
  ASSERT_EQ(bytes.rfind(modern_tag, 0), 0u);
  bytes = "segugio 1" + bytes.substr(modern_tag.size());

  std::istringstream legacy(bytes);
  auto restored = Segugio::load(legacy);
  EXPECT_TRUE(restored.is_trained());
  features::FeatureVector probe{};
  probe[features::kTotalMachines] = 3.0;
  EXPECT_DOUBLE_EQ(restored.score(probe), segugio.score(probe));
}

TEST_F(SegugioIoTest, LogisticModelRoundTrips) {
  SegugioConfig config;
  config.classifier = ClassifierKind::kLogisticRegression;
  const auto graph = prepared_graph(0);
  Segugio segugio(config);
  segugio.train(graph, world().activity(), world().pdns());
  std::stringstream blob;
  segugio.save(blob);
  auto restored = Segugio::load(blob);
  EXPECT_TRUE(restored.is_trained());
  features::FeatureVector probe{};
  probe[features::kTotalMachines] = 3.0;
  EXPECT_NEAR(restored.score(probe), segugio.score(probe), 1e-12);
}

TEST_F(SegugioIoTest, ProberFilterTravelsWithTheModel) {
  SegugioConfig config;
  config.forest.num_trees = 5;
  config.forest.num_threads = 1;
  graph::ProberFilterConfig filter;
  filter.min_blacklisted_domains = 42;
  filter.min_blacklisted_ratio = 0.6;
  config.prober_filter = filter;
  const auto graph = prepared_graph(0);
  Segugio segugio(config);
  segugio.train(graph, world().activity(), world().pdns());
  std::stringstream blob;
  segugio.save(blob);
  const auto restored = Segugio::load(blob);
  ASSERT_TRUE(restored.config().prober_filter.has_value());
  EXPECT_EQ(restored.config().prober_filter->min_blacklisted_domains, 42u);
  EXPECT_DOUBLE_EQ(restored.config().prober_filter->min_blacklisted_ratio, 0.6);
}

TEST_F(SegugioIoTest, PruningConfigTravelsWithTheModel) {
  SegugioConfig config;
  config.forest.num_trees = 5;
  config.forest.num_threads = 1;
  config.pruning.inactive_machine_max_degree = 7;
  config.pruning.popular_e2ld_fraction = 0.25;
  const auto graph = prepared_graph(0);
  Segugio segugio(config);
  segugio.train(graph, world().activity(), world().pdns());
  std::stringstream blob;
  segugio.save(blob);
  const auto restored = Segugio::load(blob);
  EXPECT_EQ(restored.config().pruning.inactive_machine_max_degree, 7u);
  EXPECT_DOUBLE_EQ(restored.config().pruning.popular_e2ld_fraction, 0.25);
}

TEST_F(SegugioIoTest, SaveUntrainedThrows) {
  Segugio segugio;
  std::stringstream blob;
  EXPECT_THROW(segugio.save(blob), util::PreconditionError);
}

TEST_F(SegugioIoTest, LoadRejectsGarbage) {
  std::stringstream blob("not a model");
  EXPECT_THROW(Segugio::load(blob), util::ParseError);
  std::stringstream wrong_version("segugio 99\n");
  EXPECT_THROW(Segugio::load(wrong_version), util::ParseError);
}

}  // namespace
}  // namespace seg::core
