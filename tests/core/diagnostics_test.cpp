#include "core/diagnostics.h"

#include <gtest/gtest.h>

#include "features/feature_config.h"
#include "sim/world.h"
#include "util/require.h"

namespace seg::core {
namespace {

sim::World& test_world() {
  static sim::World world{sim::ScenarioConfig::small()};
  return world;
}

Segugio trained_detector(SegugioConfig config) {
  auto& w = test_world();
  const auto trace = w.generate_day(0, 0);
  const auto graph = Segugio::prepare_graph(
                         trace, w.psl(),
                         w.blacklist().as_of(sim::BlacklistKind::kCommercial, 0),
                         w.whitelist().all())
                         .graph;
  Segugio segugio(std::move(config));
  segugio.train(graph, w.activity(), w.pdns());
  return segugio;
}

TEST(DiagnosticsTest, ForestModelCardListsAllFeaturesWithImportances) {
  SegugioConfig config;
  config.forest.num_trees = 10;
  config.forest.num_threads = 1;
  const auto segugio = trained_detector(std::move(config));
  const auto card = describe_model(segugio);
  EXPECT_NE(card.find("random forest"), std::string::npos);
  EXPECT_NE(card.find("importance"), std::string::npos);
  for (const auto& name : features::feature_names()) {
    EXPECT_NE(card.find(name), std::string::npos) << name;
  }
  EXPECT_NE(card.find("activity window: 14 days"), std::string::npos);
}

TEST(DiagnosticsTest, SubsetModelCardListsOnlyActiveFeatures) {
  SegugioConfig config;
  config.forest.num_trees = 10;
  config.forest.num_threads = 1;
  config.feature_subset =
      features::feature_indices_for({features::FeatureGroup::kMachineBehavior});
  const auto segugio = trained_detector(std::move(config));
  const auto card = describe_model(segugio);
  EXPECT_NE(card.find("f1_infected_fraction"), std::string::npos);
  EXPECT_EQ(card.find("f3_ip_malware_fraction"), std::string::npos);
}

TEST(DiagnosticsTest, LogisticModelCardHasNoImportances) {
  SegugioConfig config;
  config.classifier = ClassifierKind::kLogisticRegression;
  const auto segugio = trained_detector(std::move(config));
  const auto card = describe_model(segugio);
  EXPECT_NE(card.find("logistic regression"), std::string::npos);
  EXPECT_EQ(card.find("importance"), std::string::npos);
}

TEST(DiagnosticsTest, RequiresTrainedModel) {
  Segugio untrained;
  EXPECT_THROW(describe_model(untrained), util::PreconditionError);
}

}  // namespace
}  // namespace seg::core
