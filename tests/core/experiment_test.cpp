#include "core/experiment.h"

#include <gtest/gtest.h>

#include <set>

#include "core/fp_analysis.h"
#include "sim/world.h"
#include "util/require.h"

namespace seg::core {
namespace {

// Heavier integration fixture: one small world, traces generated once and
// reused by all protocol tests.
class ExperimentTest : public ::testing::Test {
 protected:
  static sim::World& world() {
    static sim::World instance{sim::ScenarioConfig::small()};
    return instance;
  }

  struct Fixture {
    dns::DayTrace train_trace;
    dns::DayTrace test_trace;
    ExperimentInputs inputs;
  };

  // Train day 2, test day 8 (a 6-day gap), both from ISP 0.
  static Fixture& fixture() {
    static Fixture f = [] {
      Fixture fx;
      auto& w = world();
      fx.train_trace = w.generate_day(0, 2);
      fx.test_trace = w.generate_day(0, 8);
      fx.inputs.train_trace = &fx.train_trace;
      fx.inputs.test_trace = &fx.test_trace;
      fx.inputs.psl = &w.psl();
      fx.inputs.activity = &w.activity();
      fx.inputs.pdns = &w.pdns();
      fx.inputs.train_blacklist = w.blacklist().as_of(sim::BlacklistKind::kCommercial, 2);
      fx.inputs.test_blacklist = w.blacklist().as_of(sim::BlacklistKind::kCommercial, 8);
      fx.inputs.whitelist = w.whitelist().all();
      return fx;
    }();
    return f;
  }

  static SegugioConfig fast_config() {
    SegugioConfig config;
    config.forest.num_trees = 30;
    config.forest.num_threads = 1;
    return config;
  }
};

TEST_F(ExperimentTest, CrossDayProducesBothClassesOfOutcomes) {
  const auto result = run_cross_day(fixture().inputs, fast_config());
  EXPECT_GT(result.test_malicious(), 0u);
  EXPECT_GT(result.test_benign(), 10u);
  EXPECT_EQ(result.outcomes.size(), result.test_malicious() + result.test_benign());
  EXPECT_GT(result.train_seconds, 0.0);
  EXPECT_GT(result.test_seconds, 0.0);
}

TEST_F(ExperimentTest, CrossDayRocIsStrong) {
  // The headline shape: high TPR at tiny FPR. The small scenario has less
  // data than the bench scale, so we assert a conservative bound.
  const auto result = run_cross_day(fixture().inputs, fast_config());
  const auto roc = result.roc();
  EXPECT_GT(roc.auc(), 0.9);
  EXPECT_GT(roc.tpr_at_fpr(0.02), 0.6);
}

TEST_F(ExperimentTest, CrossDayIsDeterministicPerSeed) {
  CrossDayOptions options;
  options.seed = 42;
  const auto a = run_cross_day(fixture().inputs, fast_config(), options);
  const auto b = run_cross_day(fixture().inputs, fast_config(), options);
  ASSERT_EQ(a.outcomes.size(), b.outcomes.size());
  for (std::size_t i = 0; i < a.outcomes.size(); ++i) {
    EXPECT_EQ(a.outcomes[i].name, b.outcomes[i].name);
    EXPECT_DOUBLE_EQ(a.outcomes[i].score, b.outcomes[i].score);
  }
}

TEST_F(ExperimentTest, OutcomesCarryFeaturesAndE2ld) {
  const auto result = run_cross_day(fixture().inputs, fast_config());
  for (const auto& outcome : result.outcomes) {
    EXPECT_FALSE(outcome.name.empty());
    EXPECT_FALSE(outcome.e2ld.empty());
    EXPECT_GE(outcome.features[features::kTotalMachines], 1.0);
  }
}

TEST_F(ExperimentTest, ValidatesInputs) {
  ExperimentInputs empty;
  EXPECT_THROW(run_cross_day(empty, fast_config()), util::PreconditionError);
  CrossDayOptions bad;
  bad.test_fraction = 0.0;
  EXPECT_THROW(run_cross_day(fixture().inputs, fast_config(), bad),
               util::PreconditionError);
}

TEST_F(ExperimentTest, CrossFamilyFoldsSeparateFamilies) {
  auto& w = world();
  std::unordered_map<std::string, std::uint32_t> family_of;
  for (const auto& record : w.blacklist().records()) {
    family_of.emplace(record.name, record.family);
  }
  CrossFamilyOptions options;
  options.folds = 3;
  const auto folds = run_cross_family(fixture().inputs, fast_config(), family_of, options);
  ASSERT_EQ(folds.size(), 3u);

  // Across folds, each malware test domain appears exactly once.
  std::set<std::string> seen;
  for (const auto& fold : folds) {
    for (const auto& outcome : fold.outcomes) {
      if (outcome.label == 1) {
        EXPECT_TRUE(seen.insert(outcome.name).second)
            << outcome.name << " appeared in two folds";
      }
    }
  }
  EXPECT_GT(seen.size(), 0u);

  const auto merged = EvaluationResult::merge(folds);
  EXPECT_GT(merged.test_malicious(), 0u);
  const auto roc = merged.roc();
  EXPECT_GT(roc.auc(), 0.8);  // new families are still detectable
}

TEST_F(ExperimentTest, CrossFamilyRejectsTooManyFolds) {
  std::unordered_map<std::string, std::uint32_t> family_of;
  family_of.emplace("a.com", 0);
  EXPECT_THROW(run_cross_family(fixture().inputs, fast_config(), family_of),
               util::PreconditionError);
}

TEST_F(ExperimentTest, FpAnalysisBreaksDownFalsePositives) {
  const auto result = run_cross_day(fixture().inputs, fast_config());
  // Pick a permissive threshold so some FPs exist.
  const auto breakdown = analyze_false_positives(
      result, 0.3, [](std::string_view name) { return world().sandbox().contacted_by_malware(name); });
  if (breakdown.fqdn_count == 0) {
    GTEST_SKIP() << "no FPs at this threshold in the small scenario";
  }
  EXPECT_GE(breakdown.fqdn_count, breakdown.e2ld_count);
  EXPECT_LE(breakdown.top10_share, 1.0);
  EXPECT_GE(breakdown.top10_share, 0.0);
  EXPECT_LE(breakdown.frac_high_infected, 1.0);
  EXPECT_FALSE(breakdown.examples.empty());
}

TEST_F(ExperimentTest, FpAnalysisEmptyWhenThresholdAboveAllScores) {
  const auto result = run_cross_day(fixture().inputs, fast_config());
  const auto breakdown = analyze_false_positives(result, 2.0);
  EXPECT_EQ(breakdown.fqdn_count, 0u);
  EXPECT_TRUE(breakdown.examples.empty());
}

TEST_F(ExperimentTest, InDayCrossValidationCoversEveryKnownDomainOnce) {
  auto& w = world();
  const auto trace = w.generate_day(0, 9);
  SegugioConfig config = fast_config();
  CrossValidationOptions options;
  options.folds = 3;
  const auto folds = run_in_day_cross_validation(
      trace, w.psl(), w.blacklist().as_of(sim::BlacklistKind::kCommercial, 9),
      w.whitelist().all(), w.activity(), w.pdns(), config, options);
  ASSERT_EQ(folds.size(), 3u);
  std::set<std::string> seen;
  std::size_t malware_total = 0;
  for (const auto& fold : folds) {
    EXPECT_GT(fold.outcomes.size(), 0u);
    for (const auto& outcome : fold.outcomes) {
      EXPECT_TRUE(seen.insert(outcome.name).second) << outcome.name;
      malware_total += outcome.label;
    }
  }
  EXPECT_GT(malware_total, 0u);
  const auto merged = EvaluationResult::merge(folds);
  EXPECT_GT(merged.roc().auc(), 0.85);
}

TEST_F(ExperimentTest, InDayCrossValidationValidatesFoldCount) {
  auto& w = world();
  const auto trace = w.generate_day(0, 9);
  CrossValidationOptions options;
  options.folds = 1;
  EXPECT_THROW(run_in_day_cross_validation(
                   trace, w.psl(), w.blacklist().as_of(sim::BlacklistKind::kCommercial, 9),
                   w.whitelist().all(), w.activity(), w.pdns(), fast_config(), options),
               util::PreconditionError);
}

TEST_F(ExperimentTest, MergePoolsOutcomes) {
  EvaluationResult a;
  a.outcomes.push_back({"x.com", "x.com", 1, 0.9, {}});
  a.train_seconds = 1.0;
  EvaluationResult b;
  b.outcomes.push_back({"y.com", "y.com", 0, 0.1, {}});
  b.train_seconds = 2.0;
  const auto merged = EvaluationResult::merge({a, b});
  EXPECT_EQ(merged.outcomes.size(), 2u);
  EXPECT_DOUBLE_EQ(merged.train_seconds, 3.0);
  EXPECT_EQ(merged.test_malicious(), 1u);
}

}  // namespace
}  // namespace seg::core
