// The zero-copy graph backing contract (graph_compressed.h + segugio.h):
// classification over an mmap-resident GraphView — whether reached
// explicitly through map_graph() or forced via SEG_GRAPH_BACKING=mmap —
// must score bit-identically to the heap-resident graph, at every thread
// count. Also pins the container's size win: the compact encoding must
// stay at or below 40% of the uncompressed segf1 graph serialization on a
// simulator day.
#include "core/segugio.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <unistd.h>

#include "graph/graph_compressed.h"
#include "graph/graph_io.h"
#include "sim/world.h"
#include "util/parallel.h"

namespace seg::core {
namespace {

class MmapBackingTest : public ::testing::Test {
 protected:
  static sim::World& world() {
    static sim::World instance{sim::ScenarioConfig::small()};
    return instance;
  }

  static SegugioConfig fast_config() {
    SegugioConfig config;
    config.forest.num_trees = 20;
    config.forest.num_threads = 1;
    return config;
  }

  void SetUp() override {
    path_ = (std::filesystem::temp_directory_path() /
             ("seg_mmap_backing_test_" + std::to_string(::getpid()) + ".graphc"))
                .string();
    ::unsetenv("SEG_GRAPH_BACKING");
  }
  void TearDown() override {
    ::unsetenv("SEG_GRAPH_BACKING");
    std::filesystem::remove(path_);
  }

  std::string path_;

  static void expect_same_scores(const DetectionReport& a, const DetectionReport& b) {
    ASSERT_EQ(a.scores.size(), b.scores.size());
    for (std::size_t i = 0; i < a.scores.size(); ++i) {
      EXPECT_EQ(a.scores[i].name, b.scores[i].name);
      EXPECT_EQ(a.scores[i].score, b.scores[i].score);
    }
  }
};

TEST_F(MmapBackingTest, MappedViewScoresBitIdenticalToHeapAtOneAndEightThreads) {
  auto& w = world();
  const auto config = fast_config();
  const auto train_trace = w.generate_day(0, 5);
  const auto train_blacklist = w.blacklist().as_of(sim::BlacklistKind::kCommercial, 5);
  const auto test_trace = w.generate_day(0, 6);
  const auto test_blacklist = w.blacklist().as_of(sim::BlacklistKind::kCommercial, 6);
  const auto whitelist = w.whitelist().all();

  const auto train_prep = Segugio::prepare_graph(train_trace, w.psl(), train_blacklist,
                                                 whitelist, config.prepare_options());
  const auto test_prep = Segugio::prepare_graph(test_trace, w.psl(), test_blacklist,
                                                whitelist, config.prepare_options());
  {
    std::ofstream out(path_, std::ios::binary);
    graph::save_graph_compressed(test_prep.graph, out, graph::GraphcEncoding::kPacked);
  }
  const auto mapped = graph::map_graph(path_);

  Segugio segugio(config);
  segugio.train(train_prep.graph, w.activity(), w.pdns());

  for (const std::size_t threads : {std::size_t{1}, std::size_t{8}}) {
    util::set_parallelism(threads);
    const auto heap = segugio.classify(test_prep.graph, w.activity(), w.pdns());
    const auto zero_copy = segugio.classify(mapped.view, w.activity(), w.pdns());
    expect_same_scores(heap, zero_copy);
  }
  util::set_parallelism(0);
}

TEST_F(MmapBackingTest, EnvForcedMmapBackingMatchesHeapScores) {
  auto& w = world();
  const auto config = fast_config();
  const auto train_trace = w.generate_day(0, 7);
  const auto train_blacklist = w.blacklist().as_of(sim::BlacklistKind::kCommercial, 7);
  const auto test_trace = w.generate_day(0, 8);
  const auto test_blacklist = w.blacklist().as_of(sim::BlacklistKind::kCommercial, 8);
  const auto whitelist = w.whitelist().all();

  const auto train_prep = Segugio::prepare_graph(train_trace, w.psl(), train_blacklist,
                                                 whitelist, config.prepare_options());
  const auto test_prep = Segugio::prepare_graph(test_trace, w.psl(), test_blacklist,
                                                whitelist, config.prepare_options());
  Segugio segugio(config);
  segugio.train(train_prep.graph, w.activity(), w.pdns());

  const auto heap = segugio.classify(test_prep.graph, w.activity(), w.pdns());
  ::setenv("SEG_GRAPH_BACKING", "mmap", 1);
  const auto rerouted = segugio.classify(test_prep.graph, w.activity(), w.pdns());
  ::unsetenv("SEG_GRAPH_BACKING");
  expect_same_scores(heap, rerouted);

  // Unrecognized values must leave the heap path untouched.
  ::setenv("SEG_GRAPH_BACKING", "heap", 1);
  const auto untouched = segugio.classify(test_prep.graph, w.activity(), w.pdns());
  ::unsetenv("SEG_GRAPH_BACKING");
  expect_same_scores(heap, untouched);
}

TEST_F(MmapBackingTest, CompactEncodingStaysBelowFortyPercentOfSegf1) {
  auto& w = world();
  const auto trace = w.generate_day(0, 9);
  const auto blacklist = w.blacklist().as_of(sim::BlacklistKind::kCommercial, 9);
  const auto whitelist = w.whitelist().all();
  const auto prep = Segugio::prepare_graph(trace, w.psl(), blacklist, whitelist,
                                           fast_config().prepare_options());

  std::ostringstream plain;
  graph::save_graph(prep.graph, plain);
  std::ostringstream compact;
  graph::save_graph_compressed(prep.graph, compact, graph::GraphcEncoding::kCompact);

  const auto plain_bytes = plain.str().size();
  const auto compact_bytes = compact.str().size();
  ASSERT_GT(plain_bytes, 0u);
  EXPECT_LE(static_cast<double>(compact_bytes), 0.40 * static_cast<double>(plain_bytes))
      << "compact " << compact_bytes << " bytes vs segf1 " << plain_bytes << " bytes";
}

}  // namespace
}  // namespace seg::core
