#include "core/calibration.h"

#include <gtest/gtest.h>

#include "sim/world.h"
#include "util/require.h"

namespace seg::core {
namespace {

class CalibrationTest : public ::testing::Test {
 protected:
  static sim::World& world() {
    static sim::World instance{sim::ScenarioConfig::small()};
    return instance;
  }

  static graph::MachineDomainGraph prepared_graph(dns::Day day) {
    auto& w = world();
    const auto trace = w.generate_day(0, day);
    return Segugio::prepare_graph(trace, w.psl(),
                                  w.blacklist().as_of(sim::BlacklistKind::kCommercial, day),
                                  w.whitelist().all())
        .graph;
  }

  static Segugio trained(const graph::MachineDomainGraph& graph) {
    SegugioConfig config;
    config.forest.num_trees = 20;
    config.forest.num_threads = 1;
    Segugio segugio(config);
    segugio.train(graph, world().activity(), world().pdns());
    return segugio;
  }
};

TEST_F(CalibrationTest, AchievedFprStaysWithinBudget) {
  const auto graph = prepared_graph(0);
  const auto segugio = trained(graph);
  for (const double budget : {0.005, 0.02, 0.1}) {
    const auto result =
        calibrate_threshold(segugio, graph, world().activity(), world().pdns(), budget);
    EXPECT_LE(result.achieved_fpr, budget + 1e-12) << budget;
    EXPECT_GT(result.malware_domains, 0u);
    EXPECT_GT(result.benign_domains, 0u);
  }
}

TEST_F(CalibrationTest, LooserBudgetsNeverLowerTheTpr) {
  const auto graph = prepared_graph(1);
  const auto segugio = trained(graph);
  const auto tight =
      calibrate_threshold(segugio, graph, world().activity(), world().pdns(), 0.002);
  const auto loose =
      calibrate_threshold(segugio, graph, world().activity(), world().pdns(), 0.05);
  EXPECT_GE(loose.achieved_tpr, tight.achieved_tpr);
  EXPECT_LE(loose.threshold, tight.threshold);
}

TEST_F(CalibrationTest, RequiresTrainedDetector) {
  const auto graph = prepared_graph(0);
  Segugio untrained;
  EXPECT_THROW(
      calibrate_threshold(untrained, graph, world().activity(), world().pdns(), 0.01),
      util::PreconditionError);
}

TEST_F(CalibrationTest, ValidatesBudget) {
  const auto graph = prepared_graph(0);
  const auto segugio = trained(graph);
  EXPECT_THROW(calibrate_threshold(segugio, graph, world().activity(), world().pdns(), 0.0),
               util::PreconditionError);
  EXPECT_THROW(calibrate_threshold(segugio, graph, world().activity(), world().pdns(), 1.5),
               util::PreconditionError);
}

}  // namespace
}  // namespace seg::core
