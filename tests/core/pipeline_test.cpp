// Determinism tests for the streaming pipeline: a multi-day session must
// be invisible in the output. Every streamed graph is byte-identical to a
// from-scratch prepare_graph() of the same trace, and classify() scores
// are bit-identical across thread counts and to the one-shot serial-store
// flow.
#include "core/pipeline.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "core/segugio.h"
#include "graph/graph_io.h"
#include "sim/world.h"
#include "util/parallel.h"

namespace seg::core {
namespace {

class PipelineTest : public ::testing::Test {
 protected:
  static sim::World& world() {
    static sim::World instance{sim::ScenarioConfig::small()};
    return instance;
  }

  static SegugioConfig fast_config() {
    SegugioConfig config;
    config.forest.num_trees = 20;
    config.forest.num_threads = 1;
    return config;
  }

  static std::string graph_bytes(const graph::MachineDomainGraph& graph) {
    std::ostringstream blob;
    graph::save_graph(graph, blob);
    return std::move(blob).str();
  }
};

TEST_F(PipelineTest, ThreeDayStreamedIngestMatchesFromScratchBuilds) {
  auto& w = world();
  const auto config = fast_config();
  std::vector<dns::DayTrace> traces;
  std::vector<graph::NameSet> blacklists;
  for (dns::Day day = 0; day < 3; ++day) {
    traces.push_back(w.generate_day(0, day));
    blacklists.push_back(w.blacklist().as_of(sim::BlacklistKind::kCommercial, day));
  }
  const auto whitelist = w.whitelist().all();

  Pipeline pipeline(w.psl(), config);
  for (dns::Day day = 0; day < 3; ++day) {
    pipeline.absorb_history(w.activity(), w.pdns());
    const auto prepared =
        pipeline.ingest_day(traces[static_cast<std::size_t>(day)],
                            blacklists[static_cast<std::size_t>(day)], whitelist);
    EXPECT_EQ(prepared.day, day);
    const auto scratch =
        Segugio::prepare_graph(traces[static_cast<std::size_t>(day)], w.psl(),
                               blacklists[static_cast<std::size_t>(day)], whitelist,
                               config.prepare_options());
    EXPECT_EQ(graph_bytes(prepared.graph), graph_bytes(scratch.graph))
        << "streamed day " << day << " diverges from the from-scratch build";
    EXPECT_EQ(prepared.prune_stats.domains_after, scratch.prune_stats.domains_after);
    EXPECT_EQ(prepared.prune_stats.edges_after, scratch.prune_stats.edges_after);
  }

  const auto& stats = pipeline.streaming_stats();
  EXPECT_EQ(stats.days_ingested, 3u);
  ASSERT_EQ(stats.reuse_ratios.size(), 3u);
  // Consecutive days of the same network share most of their names, so the
  // carried dictionary must pay off from day 2 on.
  EXPECT_GT(stats.reuse_ratios.back(), 0.0);
  EXPECT_GT(stats.cached_names, 0u);
}

TEST_F(PipelineTest, ScoresBitIdenticalAcrossThreadCountsAndSerialFlow) {
  auto& w = world();
  const auto config = fast_config();
  const auto train_trace = w.generate_day(0, 5);
  const auto train_blacklist = w.blacklist().as_of(sim::BlacklistKind::kCommercial, 5);
  const auto test_trace = w.generate_day(0, 6);
  const auto test_blacklist = w.blacklist().as_of(sim::BlacklistKind::kCommercial, 6);
  const auto whitelist = w.whitelist().all();

  const auto run_session = [&] {
    Pipeline pipeline(w.psl(), w.activity(), w.pdns(), config);
    const auto train_day = pipeline.ingest_day(train_trace, train_blacklist, whitelist);
    pipeline.train(train_day);
    const auto test_day = pipeline.ingest_day(test_trace, test_blacklist, whitelist);
    auto report = pipeline.classify(test_day);
    return std::make_pair(graph_bytes(test_day.graph), std::move(report));
  };

  util::set_parallelism(1);
  const auto [serial_graph, serial_report] = run_session();
  util::set_parallelism(8);
  const auto [parallel_graph, parallel_report] = run_session();
  util::set_parallelism(0);

  EXPECT_EQ(serial_graph, parallel_graph);
  ASSERT_EQ(serial_report.scores.size(), parallel_report.scores.size());
  for (std::size_t i = 0; i < serial_report.scores.size(); ++i) {
    EXPECT_EQ(serial_report.scores[i].name, parallel_report.scores[i].name);
    EXPECT_EQ(serial_report.scores[i].score, parallel_report.scores[i].score);
  }

  // The streamed session must also match the one-shot flow over the
  // serial stores exactly.
  const auto train_prep = Segugio::prepare_graph(train_trace, w.psl(), train_blacklist,
                                                 whitelist, config.prepare_options());
  Segugio segugio(config);
  segugio.train(train_prep.graph, w.activity(), w.pdns());
  const auto test_prep = Segugio::prepare_graph(test_trace, w.psl(), test_blacklist,
                                                whitelist, config.prepare_options());
  const auto oneshot = segugio.classify(test_prep.graph, w.activity(), w.pdns());
  ASSERT_EQ(oneshot.scores.size(), serial_report.scores.size());
  for (std::size_t i = 0; i < oneshot.scores.size(); ++i) {
    EXPECT_EQ(oneshot.scores[i].name, serial_report.scores[i].name);
    EXPECT_EQ(oneshot.scores[i].score, serial_report.scores[i].score);
  }
}

TEST_F(PipelineTest, ReportAttributionMatchesGraphLookup) {
  auto& w = world();
  const auto config = fast_config();
  const auto train_trace = w.generate_day(0, 8);
  const auto train_blacklist = w.blacklist().as_of(sim::BlacklistKind::kCommercial, 8);
  const auto test_trace = w.generate_day(0, 9);
  const auto test_blacklist = w.blacklist().as_of(sim::BlacklistKind::kCommercial, 9);
  const auto whitelist = w.whitelist().all();

  Pipeline pipeline(w.psl(), w.activity(), w.pdns(), config);
  const auto train_day = pipeline.ingest_day(train_trace, train_blacklist, whitelist);
  pipeline.train(train_day);
  const auto test_day = pipeline.ingest_day(test_trace, test_blacklist, whitelist);
  const auto report = pipeline.classify(test_day);

  // Threshold 0 keeps every scored domain, exercising the full CSR.
  const auto captured = report.detections_at(0.0);
  const auto via_graph = report.detections_at(0.0, test_day.graph);
  ASSERT_EQ(captured.size(), via_graph.size());
  ASSERT_EQ(captured.size(), report.scores.size());
  for (std::size_t i = 0; i < captured.size(); ++i) {
    EXPECT_EQ(captured[i].domain.name, via_graph[i].domain.name);
    EXPECT_EQ(captured[i].domain.score, via_graph[i].domain.score);
    EXPECT_EQ(captured[i].machines, via_graph[i].machines);
    EXPECT_FALSE(captured[i].machines.empty());
  }
}

}  // namespace
}  // namespace seg::core
