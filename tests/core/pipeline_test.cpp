// Determinism tests for the streaming pipeline: a multi-day session must
// be invisible in the output. Every streamed graph is byte-identical to a
// from-scratch prepare_graph() of the same trace, and classify() scores
// are bit-identical across thread counts and to the one-shot serial-store
// flow.
#include "core/pipeline.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "core/segugio.h"
#include "graph/graph_io.h"
#include "graph/name_cache.h"
#include "sim/world.h"
#include "util/obs/obs.h"
#include "util/parallel.h"
#include "util/serialize.h"

namespace seg::core {
namespace {

class PipelineTest : public ::testing::Test {
 protected:
  static sim::World& world() {
    static sim::World instance{sim::ScenarioConfig::small()};
    return instance;
  }

  static SegugioConfig fast_config() {
    SegugioConfig config;
    config.forest.num_trees = 20;
    config.forest.num_threads = 1;
    return config;
  }

  static std::string graph_bytes(const graph::MachineDomainGraph& graph) {
    std::ostringstream blob;
    graph::save_graph(graph, blob);
    return std::move(blob).str();
  }
};

TEST_F(PipelineTest, ThreeDayStreamedIngestMatchesFromScratchBuilds) {
  auto& w = world();
  const auto config = fast_config();
  std::vector<dns::DayTrace> traces;
  std::vector<graph::NameSet> blacklists;
  for (dns::Day day = 0; day < 3; ++day) {
    traces.push_back(w.generate_day(0, day));
    blacklists.push_back(w.blacklist().as_of(sim::BlacklistKind::kCommercial, day));
  }
  const auto whitelist = w.whitelist().all();

  Pipeline pipeline(w.psl(), config);
  for (dns::Day day = 0; day < 3; ++day) {
    pipeline.absorb_history(w.activity(), w.pdns());
    const auto prepared =
        pipeline.ingest_day(traces[static_cast<std::size_t>(day)],
                            blacklists[static_cast<std::size_t>(day)], whitelist);
    EXPECT_EQ(prepared.day, day);
    const auto scratch =
        Segugio::prepare_graph(traces[static_cast<std::size_t>(day)], w.psl(),
                               blacklists[static_cast<std::size_t>(day)], whitelist,
                               config.prepare_options());
    EXPECT_EQ(graph_bytes(prepared.graph), graph_bytes(scratch.graph))
        << "streamed day " << day << " diverges from the from-scratch build";
    EXPECT_EQ(prepared.prune_stats.domains_after, scratch.prune_stats.domains_after);
    EXPECT_EQ(prepared.prune_stats.edges_after, scratch.prune_stats.edges_after);
  }

  const auto& stats = pipeline.streaming_stats();
  EXPECT_EQ(stats.days_ingested, 3u);
  ASSERT_EQ(stats.reuse_ratios.size(), 3u);
  // Consecutive days of the same network share most of their names, so the
  // carried dictionary must pay off from day 2 on.
  EXPECT_GT(stats.reuse_ratios.back(), 0.0);
  EXPECT_GT(stats.cached_names, 0u);
}

TEST_F(PipelineTest, ScoresBitIdenticalAcrossThreadCountsAndSerialFlow) {
  auto& w = world();
  const auto config = fast_config();
  const auto train_trace = w.generate_day(0, 5);
  const auto train_blacklist = w.blacklist().as_of(sim::BlacklistKind::kCommercial, 5);
  const auto test_trace = w.generate_day(0, 6);
  const auto test_blacklist = w.blacklist().as_of(sim::BlacklistKind::kCommercial, 6);
  const auto whitelist = w.whitelist().all();

  const auto run_session = [&] {
    Pipeline pipeline(w.psl(), w.activity(), w.pdns(), config);
    const auto train_day = pipeline.ingest_day(train_trace, train_blacklist, whitelist);
    pipeline.train(train_day);
    const auto test_day = pipeline.ingest_day(test_trace, test_blacklist, whitelist);
    auto report = pipeline.classify(test_day);
    return std::make_pair(graph_bytes(test_day.graph), std::move(report));
  };

  util::set_parallelism(1);
  const auto [serial_graph, serial_report] = run_session();
  util::set_parallelism(8);
  const auto [parallel_graph, parallel_report] = run_session();
  util::set_parallelism(0);

  EXPECT_EQ(serial_graph, parallel_graph);
  ASSERT_EQ(serial_report.scores.size(), parallel_report.scores.size());
  for (std::size_t i = 0; i < serial_report.scores.size(); ++i) {
    EXPECT_EQ(serial_report.scores[i].name, parallel_report.scores[i].name);
    EXPECT_EQ(serial_report.scores[i].score, parallel_report.scores[i].score);
  }

  // The streamed session must also match the one-shot flow over the
  // serial stores exactly.
  const auto train_prep = Segugio::prepare_graph(train_trace, w.psl(), train_blacklist,
                                                 whitelist, config.prepare_options());
  Segugio segugio(config);
  segugio.train(train_prep.graph, w.activity(), w.pdns());
  const auto test_prep = Segugio::prepare_graph(test_trace, w.psl(), test_blacklist,
                                                whitelist, config.prepare_options());
  const auto oneshot = segugio.classify(test_prep.graph, w.activity(), w.pdns());
  ASSERT_EQ(oneshot.scores.size(), serial_report.scores.size());
  for (std::size_t i = 0; i < oneshot.scores.size(); ++i) {
    EXPECT_EQ(oneshot.scores[i].name, serial_report.scores[i].name);
    EXPECT_EQ(oneshot.scores[i].score, serial_report.scores[i].score);
  }
}

TEST_F(PipelineTest, ObservabilityNeverPerturbsScoresOrArtifacts) {
  // The obs contract (ISSUE 5): with the tracer recording and metrics being
  // observed, every domain score and serialized artifact is byte-identical
  // to a run with observability fully disabled. Spans read the clock either
  // way; metrics are telemetry that nothing in the pipeline reads back.
  auto& w = world();
  const auto config = fast_config();
  const auto train_trace = w.generate_day(0, 5);
  const auto train_blacklist = w.blacklist().as_of(sim::BlacklistKind::kCommercial, 5);
  const auto test_trace = w.generate_day(0, 6);
  const auto test_blacklist = w.blacklist().as_of(sim::BlacklistKind::kCommercial, 6);
  const auto whitelist = w.whitelist().all();

  struct Artifacts {
    std::string graph;
    std::string model;
    std::string session;
    std::vector<std::pair<std::string, double>> scores;
  };
  const auto run_session = [&] {
    Pipeline pipeline(w.psl(), w.activity(), w.pdns(), config);
    const auto train_day = pipeline.ingest_day(train_trace, train_blacklist, whitelist);
    pipeline.train(train_day);
    const auto test_day = pipeline.ingest_day(test_trace, test_blacklist, whitelist);
    const auto report = pipeline.classify(test_day);
    Artifacts artifacts;
    artifacts.graph = graph_bytes(test_day.graph);
    std::ostringstream model_blob;
    pipeline.detector().save(model_blob);
    artifacts.model = std::move(model_blob).str();
    std::ostringstream session_blob;
    pipeline.save_session(session_blob);
    artifacts.session = std::move(session_blob).str();
    for (const auto& score : report.scores) {
      artifacts.scores.emplace_back(score.name, score.score);
    }
    return artifacts;
  };

  obs::Tracer::instance().set_enabled(false);
  obs::Registry::instance().reset();
  const auto plain = run_session();

  obs::Tracer::instance().clear();
  obs::Tracer::instance().set_enabled(true);
  const auto observed = run_session();

  // The observed run actually recorded telemetry...
  const auto records = obs::Tracer::instance().snapshot();
  EXPECT_FALSE(records.empty());
  EXPECT_EQ(obs::validate_spans(records), "");
  EXPECT_GT(obs::Registry::instance().counter("seg_classify_rows_total").value(), 0u);
  obs::Tracer::instance().set_enabled(false);
  obs::Tracer::instance().clear();

  // ...and perturbed nothing.
  EXPECT_EQ(plain.graph, observed.graph);
  EXPECT_EQ(plain.model, observed.model);
  EXPECT_EQ(plain.session, observed.session);
  ASSERT_EQ(plain.scores.size(), observed.scores.size());
  for (std::size_t i = 0; i < plain.scores.size(); ++i) {
    EXPECT_EQ(plain.scores[i].first, observed.scores[i].first);
    EXPECT_EQ(plain.scores[i].second, observed.scores[i].second);
  }

  // The v2 surfaces uphold the same contract: a session with the journal
  // attached, drift computed against a pinned baseline, and the health
  // sampler thread running concurrently must still emit bit-identical
  // scores and artifacts.
  obs::Registry::instance().reset();
  obs::HealthSampler health;
  health.start();
  std::ostringstream journal_blob;
  Artifacts journaled;
  {
    Pipeline pipeline(w.psl(), w.activity(), w.pdns(), config);
    pipeline.set_journal(&journal_blob);
    const auto train_day = pipeline.ingest_day(train_trace, train_blacklist, whitelist);
    pipeline.train(train_day);
    const auto test_day = pipeline.ingest_day(test_trace, test_blacklist, whitelist);
    const auto report = pipeline.classify(test_day);
    pipeline.flush_journal();
    journaled.graph = graph_bytes(test_day.graph);
    std::ostringstream model_blob;
    pipeline.detector().save(model_blob);
    journaled.model = std::move(model_blob).str();
    std::ostringstream session_blob;
    pipeline.save_session(session_blob);
    journaled.session = std::move(session_blob).str();
    for (const auto& score : report.scores) {
      journaled.scores.emplace_back(score.name, score.score);
    }
  }
  health.sample_once();
  health.stop();

  EXPECT_EQ(obs::validate_obs_journal(journal_blob.str()), "");
  EXPECT_GE(obs::Registry::instance().counter("seg_health_samples_total").value(), 1u);
  EXPECT_EQ(plain.graph, journaled.graph);
  EXPECT_EQ(plain.model, journaled.model);
  EXPECT_EQ(plain.session, journaled.session);
  ASSERT_EQ(plain.scores.size(), journaled.scores.size());
  for (std::size_t i = 0; i < plain.scores.size(); ++i) {
    EXPECT_EQ(plain.scores[i].first, journaled.scores[i].first);
    EXPECT_EQ(plain.scores[i].second, journaled.scores[i].second);
  }
}

TEST_F(PipelineTest, JournalAndDriftGaugesAreByteIdenticalAcrossThreadCounts) {
  // The obs journal is part of the deterministic surface: a multi-day
  // train+classify session journaled at 1 worker thread and at 8 must
  // produce the same bytes, and every seg_drift_* gauge must carry the
  // same value. (Runtime extras stay opt-in precisely so this holds.)
  auto& w = world();
  const auto config = fast_config();
  std::vector<dns::DayTrace> traces;
  std::vector<graph::NameSet> blacklists;
  for (dns::Day day = 0; day < 3; ++day) {
    traces.push_back(w.generate_day(0, day));
    blacklists.push_back(w.blacklist().as_of(sim::BlacklistKind::kCommercial, day));
  }
  const auto whitelist = w.whitelist().all();

  const auto run_journaled = [&] {
    obs::Registry::instance().reset();
    Pipeline pipeline(w.psl(), w.activity(), w.pdns(), config);
    std::ostringstream journal_blob;
    pipeline.set_journal(&journal_blob);
    bool trained = false;
    for (dns::Day day = 0; day < 3; ++day) {
      const auto prepared =
          pipeline.ingest_day(traces[static_cast<std::size_t>(day)],
                              blacklists[static_cast<std::size_t>(day)], whitelist);
      if (!trained) {
        pipeline.train(prepared);
        trained = true;
      }
      pipeline.classify(prepared);
    }
    pipeline.flush_journal();
    std::vector<std::pair<std::string, double>> drift_gauges;
    for (const obs::Gauge* gauge : obs::Registry::instance().gauges()) {
      if (gauge->name().rfind("seg_drift_", 0) == 0) {
        drift_gauges.emplace_back(gauge->name(), gauge->value());
      }
    }
    return std::make_pair(std::move(journal_blob).str(), std::move(drift_gauges));
  };

  util::set_parallelism(1);
  const auto [serial_journal, serial_gauges] = run_journaled();
  util::set_parallelism(8);
  const auto [parallel_journal, parallel_gauges] = run_journaled();
  util::set_parallelism(0);

  EXPECT_EQ(obs::validate_obs_journal(serial_journal), "");
  EXPECT_EQ(serial_journal, parallel_journal)
      << "journal bytes diverge across thread counts";
  ASSERT_FALSE(serial_gauges.empty()) << "expected drift gauges after day 1+";
  ASSERT_EQ(serial_gauges.size(), parallel_gauges.size());
  for (std::size_t i = 0; i < serial_gauges.size(); ++i) {
    EXPECT_EQ(serial_gauges[i].first, parallel_gauges[i].first);
    EXPECT_EQ(serial_gauges[i].second, parallel_gauges[i].second)
        << "drift gauge " << serial_gauges[i].first;
  }

  // The journal recorded all three days, and days 1+ carry drift gauges
  // against the pinned day-0 baseline.
  std::istringstream journal_in{std::string(serial_journal)};
  const auto entries = obs::read_journal(journal_in);
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_NE(entries[0].find_histogram("scores"), nullptr);
  EXPECT_NE(entries[2].find_gauge("drift_score_psi"), nullptr);
}

TEST_F(PipelineTest, ReportAttributionMatchesGraphLookup) {
  auto& w = world();
  const auto config = fast_config();
  const auto train_trace = w.generate_day(0, 8);
  const auto train_blacklist = w.blacklist().as_of(sim::BlacklistKind::kCommercial, 8);
  const auto test_trace = w.generate_day(0, 9);
  const auto test_blacklist = w.blacklist().as_of(sim::BlacklistKind::kCommercial, 9);
  const auto whitelist = w.whitelist().all();

  Pipeline pipeline(w.psl(), w.activity(), w.pdns(), config);
  const auto train_day = pipeline.ingest_day(train_trace, train_blacklist, whitelist);
  pipeline.train(train_day);
  const auto test_day = pipeline.ingest_day(test_trace, test_blacklist, whitelist);
  const auto report = pipeline.classify(test_day);

  // Threshold 0 keeps every scored domain, exercising the full CSR.
  const auto captured = report.detections_at(0.0);
  const auto via_graph = report.detections_at(0.0, test_day.graph);
  ASSERT_EQ(captured.size(), via_graph.size());
  ASSERT_EQ(captured.size(), report.scores.size());
  for (std::size_t i = 0; i < captured.size(); ++i) {
    EXPECT_EQ(captured[i].domain.name, via_graph[i].domain.name);
    EXPECT_EQ(captured[i].domain.score, via_graph[i].domain.score);
    EXPECT_EQ(captured[i].machines, via_graph[i].machines);
    EXPECT_FALSE(captured[i].machines.empty());
  }
}

TEST_F(PipelineTest, SessionSurvivesRestartWithIdenticalOutput) {
  auto& w = world();
  const auto config = fast_config();
  const auto day1_trace = w.generate_day(0, 11);
  const auto day1_blacklist = w.blacklist().as_of(sim::BlacklistKind::kCommercial, 11);
  const auto day2_trace = w.generate_day(0, 12);
  const auto day2_blacklist = w.blacklist().as_of(sim::BlacklistKind::kCommercial, 12);
  const auto whitelist = w.whitelist().all();

  // Continuous session: day 1 then day 2.
  Pipeline continuous(w.psl(), w.activity(), w.pdns(), config);
  const auto cont_day1 = continuous.ingest_day(day1_trace, day1_blacklist, whitelist);
  const auto cont_day2 = continuous.ingest_day(day2_trace, day2_blacklist, whitelist);

  // Restarted session: day 1, save_session, new process (fresh Pipeline),
  // load_session, day 2.
  Pipeline before_restart(w.psl(), w.activity(), w.pdns(), config);
  const auto pre_day1 = before_restart.ingest_day(day1_trace, day1_blacklist, whitelist);
  EXPECT_EQ(graph_bytes(pre_day1.graph), graph_bytes(cont_day1.graph));
  std::ostringstream session_blob;
  before_restart.save_session(session_blob);

  Pipeline after_restart(w.psl(), w.activity(), w.pdns(), config);
  std::istringstream session_in(session_blob.str());
  after_restart.load_session(session_in);
  // The carried dictionary came back in full, not rebuilt from scratch.
  EXPECT_EQ(after_restart.streaming_stats().cached_names,
            before_restart.streaming_stats().cached_names);
  EXPECT_GT(after_restart.streaming_stats().cached_names, 0u);

  const auto post_day2 = after_restart.ingest_day(day2_trace, day2_blacklist, whitelist);
  EXPECT_EQ(graph_bytes(post_day2.graph), graph_bytes(cont_day2.graph))
      << "post-restart ingest diverges from the continuous session";
  // Day-2 reuse must carry over: the restarted session serves day-2 names
  // from the reloaded dictionary exactly like the continuous one does.
  EXPECT_EQ(post_day2.carry.new_names, cont_day2.carry.new_names);
  EXPECT_EQ(post_day2.carry.distinct_domains, cont_day2.carry.distinct_domains);
  EXPECT_GT(post_day2.carry.reuse_ratio(), 0.0);
}

TEST_F(PipelineTest, SessionSaveIsDeterministicAndShardCountInvariant) {
  auto& w = world();
  Pipeline pipeline(w.psl(), w.activity(), w.pdns(), fast_config());
  const auto trace = w.generate_day(0, 13);
  const auto blacklist = w.blacklist().as_of(sim::BlacklistKind::kCommercial, 13);
  pipeline.ingest_day(trace, blacklist, w.whitelist().all());

  std::ostringstream first;
  pipeline.save_session(first);
  std::ostringstream second;
  pipeline.save_session(second);
  EXPECT_EQ(first.str(), second.str());

  // Reloading into a different shard count and saving again must produce
  // the same bytes: shard count is merge parallelism, not session state.
  std::istringstream in(first.str());
  const int version = util::read_format_header(in, "pipeline-session", 1, 0);
  ASSERT_EQ(version, 1);
  const auto reloaded = graph::NameCache::load(in, /*num_shards=*/3);
  std::ostringstream resaved;
  reloaded.save(resaved);
  const std::string original = first.str();
  const std::string header_line = "segf1 pipeline-session 1\n";
  ASSERT_EQ(original.substr(0, header_line.size()), header_line);
  EXPECT_EQ(resaved.str(), original.substr(header_line.size()));
}

TEST_F(PipelineTest, LoadSessionRejectsHeaderlessAndForeignStreams) {
  auto& w = world();
  Pipeline pipeline(w.psl(), fast_config());

  // No legacy (headerless) session format exists: unlike pdns/activity
  // loaders, a stream without the segf1 header must throw, not silently
  // parse as version 1.
  std::istringstream headerless("namecache 1\nexample.com 1 example.com example.com\n");
  EXPECT_THROW(pipeline.load_session(headerless), util::ParseError);

  std::istringstream foreign("segf1 pdns 1\npdns 0\n");
  EXPECT_THROW(pipeline.load_session(foreign), util::ParseError);

  std::istringstream truncated("segf1 pipeline-session 1\nsegf1 namecache 1\nnamecache 5\n");
  EXPECT_THROW(pipeline.load_session(truncated), util::ParseError);

  // A failed load must not have poisoned the session: it still ingests.
  const auto trace = w.generate_day(0, 14);
  const auto blacklist = w.blacklist().as_of(sim::BlacklistKind::kCommercial, 14);
  pipeline.absorb_history(w.activity(), w.pdns());
  const auto day = pipeline.ingest_day(trace, blacklist, w.whitelist().all());
  EXPECT_GT(day.graph.domain_count(), 0u);
}

TEST_F(PipelineTest, NameCacheRoundTripsEscapedSpellings) {
  // Raw spellings are attacker-controlled: whitespace and '%' must survive
  // a save/load round trip byte-for-byte.
  graph::NameCache cache(2);
  std::vector<std::vector<graph::NameCache::NewName>> batch(1);
  batch[0].push_back({"bad name.example", "", "", false});
  batch[0].push_back({"tab\tname", "", "", false});
  batch[0].push_back({"percent%name", "", "", false});
  batch[0].push_back({"WWW.Example.COM.", "www.example.com", "example.com", true});
  cache.merge(batch);

  std::ostringstream blob;
  cache.save(blob);
  std::istringstream in(blob.str());
  const auto reloaded = graph::NameCache::load(in, /*num_shards=*/5);
  ASSERT_EQ(reloaded.size(), cache.size());
  for (const auto* original :
       {cache.find("bad name.example"), cache.find("tab\tname"),
        cache.find("percent%name")}) {
    ASSERT_NE(original, nullptr);
    EXPECT_FALSE(original->valid);
  }
  const auto* spaced = reloaded.find("bad name.example");
  ASSERT_NE(spaced, nullptr);
  EXPECT_FALSE(spaced->valid);
  const auto* tabbed = reloaded.find("tab\tname");
  ASSERT_NE(tabbed, nullptr);
  const auto* percent = reloaded.find("percent%name");
  ASSERT_NE(percent, nullptr);
  const auto* valid = reloaded.find("WWW.Example.COM.");
  ASSERT_NE(valid, nullptr);
  EXPECT_TRUE(valid->valid);
  EXPECT_EQ(valid->normalized, "www.example.com");
  EXPECT_EQ(valid->e2ld, "example.com");
  const auto* alias = reloaded.find("www.example.com");
  ASSERT_NE(alias, nullptr);
  EXPECT_TRUE(alias->valid);
}

}  // namespace
}  // namespace seg::core
