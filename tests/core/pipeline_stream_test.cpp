// The ingest_stream() determinism contract: a streamed session — records
// pulled from a TraceSource, micro-batched through the bounded queue, cut
// at day boundaries — produces byte-identical artifacts (graphs, model,
// session, scores) to the legacy one-day-at-a-time ingest_day() session,
// at any parallelism and any queue tuning, as long as the back-pressure
// policy is kBlock. This is the acceptance test for the streaming
// redesign; docs/ingestion.md points here.
#include "core/pipeline.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "dns/trace_source.h"
#include "dns/wire/dnstap.h"
#include "graph/graph_io.h"
#include "sim/world.h"
#include "util/parallel.h"

namespace seg::core {
namespace {

class PipelineStreamTest : public ::testing::Test {
 protected:
  void SetUp() override {
    base_ = (std::filesystem::temp_directory_path() /
             ("seg_stream_" + std::to_string(::getpid())))
                .string();
  }
  void TearDown() override {
    for (const auto& path : files_) {
      std::filesystem::remove(path);
    }
  }

  static sim::World& world() {
    static sim::World instance{sim::ScenarioConfig::small()};
    return instance;
  }

  static SegugioConfig fast_config() {
    SegugioConfig config;
    config.forest.num_trees = 20;
    config.forest.num_threads = 1;
    return config;
  }

  static std::string graph_bytes(const graph::MachineDomainGraph& graph) {
    std::ostringstream blob;
    graph::save_graph(graph, blob);
    return std::move(blob).str();
  }

  std::string temp_path(const std::string& suffix) {
    files_.push_back(base_ + suffix);
    return files_.back();
  }

  // Writes traces as one multi-day binlog: concatenated SEGTRC1 segments,
  // exactly what `cat day*.bin` produces in a deployment.
  std::string write_multiday_binlog(const std::vector<dns::DayTrace>& traces,
                                    const std::string& suffix) {
    const auto path = temp_path(suffix);
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    for (const auto& trace : traces) {
      const auto segment = path + ".segment";
      dns::write_trace_binary(trace, segment);
      std::ifstream in(segment, std::ios::binary);
      out << in.rdbuf();
      std::filesystem::remove(segment);
    }
    return path;
  }

  // Everything a two-day train-then-classify session externalizes.
  struct Artifacts {
    std::string train_graph;
    std::string test_graph;
    std::string model;
    std::string session;
    std::vector<std::pair<std::string, double>> scores;
  };

  static Artifacts capture_artifacts(Pipeline& pipeline, const PreparedDay& train_day,
                                     const PreparedDay& test_day,
                                     const DetectionReport& report) {
    Artifacts artifacts;
    artifacts.train_graph = graph_bytes(train_day.graph);
    artifacts.test_graph = graph_bytes(test_day.graph);
    std::ostringstream model_blob;
    pipeline.detector().save(model_blob);
    artifacts.model = std::move(model_blob).str();
    std::ostringstream session_blob;
    pipeline.save_session(session_blob);
    artifacts.session = std::move(session_blob).str();
    for (const auto& score : report.scores) {
      artifacts.scores.emplace_back(score.name, score.score);
    }
    return artifacts;
  }

  static void expect_identical(const Artifacts& streamed, const Artifacts& batch,
                               const std::string& label) {
    EXPECT_EQ(streamed.train_graph, batch.train_graph) << label << ": train graph";
    EXPECT_EQ(streamed.test_graph, batch.test_graph) << label << ": test graph";
    EXPECT_EQ(streamed.model, batch.model) << label << ": model";
    EXPECT_EQ(streamed.session, batch.session) << label << ": session";
    ASSERT_EQ(streamed.scores.size(), batch.scores.size()) << label;
    for (std::size_t i = 0; i < batch.scores.size(); ++i) {
      EXPECT_EQ(streamed.scores[i].first, batch.scores[i].first) << label << " #" << i;
      EXPECT_EQ(streamed.scores[i].second, batch.scores[i].second) << label << " #" << i;
    }
  }

  std::string base_;
  std::vector<std::string> files_;
};

TEST_F(PipelineStreamTest, BinlogReplayMatchesBatchSessionAtOneAndEightThreads) {
  auto& w = world();
  const auto config = fast_config();
  const std::vector<dns::DayTrace> traces = {w.generate_day(0, 5), w.generate_day(0, 6)};
  const std::vector<graph::NameSet> blacklists = {
      w.blacklist().as_of(sim::BlacklistKind::kCommercial, 5),
      w.blacklist().as_of(sim::BlacklistKind::kCommercial, 6)};
  const auto whitelist = w.whitelist().all();
  const auto binlog = write_multiday_binlog(traces, ".session.bin");
  const auto blacklist_for = [&](dns::Day day) -> const graph::NameSet& {
    return blacklists[static_cast<std::size_t>(day - 5)];
  };

  const auto run_batch = [&] {
    Pipeline pipeline(w.psl(), w.activity(), w.pdns(), config);
    const auto train_day = pipeline.ingest_day(traces[0], blacklists[0], whitelist);
    pipeline.train(train_day);
    const auto test_day = pipeline.ingest_day(traces[1], blacklists[1], whitelist);
    const auto report = pipeline.classify(test_day);
    return capture_artifacts(pipeline, train_day, test_day, report);
  };
  const auto run_streamed = [&](IngestStats* stats_out) {
    Pipeline pipeline(w.psl(), w.activity(), w.pdns(), config);
    dns::FileTraceSource source(binlog);  // format autodetected from the magic
    std::vector<PreparedDay> days;
    DetectionReport report;
    // The rollover callback drives the session live, like a deployment
    // would: train on the first completed day, classify the second.
    const auto stats = pipeline.ingest_stream(
        source, blacklist_for, whitelist, [&](PreparedDay&& day) {
          if (days.empty()) {
            pipeline.train(day);
          } else {
            report = pipeline.classify(day);
          }
          days.push_back(std::move(day));
        });
    if (stats_out != nullptr) {
      *stats_out = stats;
    }
    EXPECT_EQ(days.size(), 2u);
    EXPECT_EQ(days[0].day, 5);
    EXPECT_EQ(days[1].day, 6);
    return capture_artifacts(pipeline, days[0], days[1], report);
  };

  const std::uint64_t total_records = traces[0].records.size() + traces[1].records.size();
  for (const int parallelism : {1, 8}) {
    util::set_parallelism(parallelism);
    const auto batch = run_batch();
    IngestStats stats;
    const auto streamed = run_streamed(&stats);
    const auto label = "parallelism " + std::to_string(parallelism);
    expect_identical(streamed, batch, label);

    EXPECT_EQ(stats.records, total_records) << label;
    EXPECT_EQ(stats.days, 2u) << label;
    EXPECT_EQ(stats.wire_skipped, 0u) << label;
    // The blocking policy loses nothing: every record crossed the queue.
    EXPECT_EQ(stats.queue.pushed_records, total_records) << label;
    EXPECT_EQ(stats.queue.dropped_batches, 0u) << label;
    EXPECT_EQ(stats.queue.dropped_records, 0u) << label;
    EXPECT_EQ(stats.queue.popped_batches, stats.queue.pushed_batches) << label;
  }
  util::set_parallelism(0);
}

TEST_F(PipelineStreamTest, DnstapReplayMatchesBatchOverItsOwnDecodedRecords) {
  // dnstap identifies clients by address, so sim machine names arrive
  // hashed (see wire::machine_address) — the stream cannot match a batch
  // over the *original* trace. The contract is format-internal: streaming
  // a capture matches batch-ingesting what that same capture decodes to.
  auto& w = world();
  const auto config = fast_config();
  const auto trace = w.generate_day(0, 7);
  const auto blacklist = w.blacklist().as_of(sim::BlacklistKind::kCommercial, 7);
  const auto whitelist = w.whitelist().all();
  const auto path = temp_path(".day7.dnstap");
  dns::wire::write_dnstap_trace(trace, path);

  dns::FileTraceSource collect_source(path);
  std::vector<dns::DayTrace> decoded;
  dns::collect_days(collect_source, [&](dns::DayTrace&& day) {
    decoded.push_back(std::move(day));
  });
  ASSERT_EQ(decoded.size(), 1u);
  EXPECT_EQ(decoded[0].day, 7);

  Pipeline batch_pipeline(w.psl(), w.activity(), w.pdns(), config);
  const auto batch_day = batch_pipeline.ingest_day(decoded[0], blacklist, whitelist);

  Pipeline stream_pipeline(w.psl(), w.activity(), w.pdns(), config);
  dns::FileTraceSource stream_source(path);
  PreparedDay streamed_day;
  const auto stats = stream_pipeline.ingest_stream(
      stream_source, [&](dns::Day) -> const graph::NameSet& { return blacklist; },
      whitelist, [&](PreparedDay&& day) { streamed_day = std::move(day); });

  EXPECT_EQ(graph_bytes(streamed_day.graph), graph_bytes(batch_day.graph));
  EXPECT_EQ(streamed_day.prune_stats.domains_after, batch_day.prune_stats.domains_after);
  EXPECT_EQ(stats.days, 1u);
  EXPECT_EQ(stats.records, decoded[0].records.size());
  EXPECT_EQ(stats.wire_skipped, stream_source.skipped());
}

TEST_F(PipelineStreamTest, QueueTuningNeverChangesTheGraph) {
  auto& w = world();
  const auto config = fast_config();
  const auto trace = w.generate_day(0, 8);
  const auto blacklist = w.blacklist().as_of(sim::BlacklistKind::kCommercial, 8);
  const auto whitelist = w.whitelist().all();

  const auto run = [&](const IngestOptions& options, IngestStats* stats_out) {
    Pipeline pipeline(w.psl(), w.activity(), w.pdns(), config);
    dns::DayTraceSource source(trace);
    PreparedDay prepared;
    const auto stats = pipeline.ingest_stream(
        source, [&](dns::Day) -> const graph::NameSet& { return blacklist; },
        whitelist, [&](PreparedDay&& day) { prepared = std::move(day); }, options);
    if (stats_out != nullptr) {
      *stats_out = stats;
    }
    return graph_bytes(prepared.graph);
  };

  Pipeline reference_pipeline(w.psl(), w.activity(), w.pdns(), config);
  const auto reference =
      graph_bytes(reference_pipeline.ingest_day(trace, blacklist, whitelist).graph);

  EXPECT_EQ(run(IngestOptions{}, nullptr), reference);

  IngestOptions tiny;  // forces real back-pressure: 3-record batches, 2 slots
  tiny.batch_records = 3;
  tiny.queue_capacity = 2;
  IngestStats tiny_stats;
  EXPECT_EQ(run(tiny, &tiny_stats), reference);
  EXPECT_EQ(tiny_stats.queue.dropped_batches, 0u);
  EXPECT_EQ(tiny_stats.queue.pushed_records, trace.records.size());
  EXPECT_LE(tiny_stats.queue.max_depth, 2u);

  IngestOptions inline_path;  // the adapter's path: no producer thread at all
  inline_path.use_queue = false;
  IngestStats inline_stats;
  EXPECT_EQ(run(inline_path, &inline_stats), reference);
  EXPECT_EQ(inline_stats.queue.pushed_batches, 0u);
  EXPECT_EQ(inline_stats.records, trace.records.size());
}

TEST_F(PipelineStreamTest, CountAndDropKeepsTheLedgerBalanced) {
  // kCountAndDrop trades completeness for freshness; what it may never do
  // is lose records *silently*. With drop-rate-aware sampling on (the
  // pipeline default for this policy), every source record is accounted
  // for exactly once: admitted, dropped whole-batch, or sampled out.
  auto& w = world();
  const auto config = fast_config();
  const auto trace = w.generate_day(0, 9);
  const auto blacklist = w.blacklist().as_of(sim::BlacklistKind::kCommercial, 9);

  Pipeline pipeline(w.psl(), w.activity(), w.pdns(), config);
  dns::DayTraceSource source(trace);
  IngestOptions options;
  options.policy = util::BackpressurePolicy::kCountAndDrop;
  options.batch_records = 2;
  options.queue_capacity = 1;
  PreparedDay prepared;
  const auto stats = pipeline.ingest_stream(
      source, [&](dns::Day) -> const graph::NameSet& { return blacklist; },
      w.whitelist().all(), [&](PreparedDay&& day) { prepared = std::move(day); }, options);

  EXPECT_EQ(stats.queue.pushed_records + stats.queue.dropped_records +
                stats.queue.sampled_out_records,
            trace.records.size());
  EXPECT_EQ(stats.records, stats.queue.pushed_records);
  EXPECT_GT(stats.records, 0u);

  // And with sampling explicitly off, the legacy two-way ledger holds.
  Pipeline coarse(w.psl(), w.activity(), w.pdns(), config);
  dns::DayTraceSource replay(trace);
  options.sampled_admission = false;
  const auto coarse_stats = coarse.ingest_stream(
      replay, [&](dns::Day) -> const graph::NameSet& { return blacklist; },
      w.whitelist().all(), [&](PreparedDay&& day) { prepared = std::move(day); }, options);
  EXPECT_EQ(coarse_stats.queue.sampled_out_records, 0u);
  EXPECT_EQ(coarse_stats.queue.pushed_records + coarse_stats.queue.dropped_records,
            trace.records.size());
}

TEST_F(PipelineStreamTest, BackwardDaysThrowThroughTheQueue) {
  // The consumer-side day monotonicity check must propagate out of
  // ingest_stream() even though a producer thread is in flight.
  auto& w = world();
  dns::DayTrace disordered;
  disordered.day = 5;
  disordered.records.push_back({5, "m1", "a.example.com", {}});
  disordered.records.push_back({4, "m2", "b.example.com", {}});

  Pipeline pipeline(w.psl(), fast_config());
  dns::DayTraceSource source(disordered);
  EXPECT_THROW(pipeline.ingest_stream(
                   source, [&](dns::Day) -> const graph::NameSet& {
                     static const graph::NameSet empty;
                     return empty;
                   },
                   w.whitelist().all(), [](PreparedDay&&) {}),
               util::ParseError);
}

TEST_F(PipelineStreamTest, ProducerParseErrorsPropagateAfterDrain) {
  // A corrupt trace file fails inside the producer thread; the consumer
  // must see the ParseError, not a hang or a truncated "success".
  auto& w = world();
  const auto trace = w.generate_day(0, 5);
  const auto path = temp_path(".corrupt.bin");
  dns::write_trace_binary(trace, path);
  {
    std::ofstream out(path, std::ios::binary | std::ios::app);
    out << "NOTASEGMENT";  // garbage where the next segment header belongs
  }

  Pipeline pipeline(w.psl(), fast_config());
  dns::FileTraceSource source(path, dns::TraceFormat::kBinlog);
  const auto blacklist = w.blacklist().as_of(sim::BlacklistKind::kCommercial, 5);
  EXPECT_THROW(pipeline.ingest_stream(
                   source, [&](dns::Day) -> const graph::NameSet& { return blacklist; },
                   w.whitelist().all(), [](PreparedDay&&) {}),
               util::ParseError);
}

}  // namespace
}  // namespace seg::core
