#include "core/segugio.h"

#include <gtest/gtest.h>

#include "graph/labeling.h"
#include "sim/world.h"
#include "util/require.h"

namespace seg::core {
namespace {

// Shared small world for the pipeline tests (built once; generating days
// advances shared background state deterministically).
class SegugioTest : public ::testing::Test {
 protected:
  static sim::World& world() {
    static sim::World instance{sim::ScenarioConfig::small()};
    return instance;
  }

  static graph::MachineDomainGraph prepared_graph(dns::Day day,
                                                  graph::PruneStats* stats = nullptr) {
    auto& w = world();
    const auto trace = w.generate_day(0, day);
    auto prep = Segugio::prepare_graph(
        trace, w.psl(), w.blacklist().as_of(sim::BlacklistKind::kCommercial, day),
        w.whitelist().all());
    if (stats != nullptr) {
      *stats = prep.prune_stats;
    }
    return std::move(prep.graph);
  }

  static SegugioConfig fast_config() {
    SegugioConfig config;
    config.forest.num_trees = 20;
    config.forest.num_threads = 1;
    return config;
  }
};

TEST_F(SegugioTest, PrepareGraphLabelsAndPrunes) {
  graph::PruneStats stats;
  const auto graph = prepared_graph(0, &stats);
  EXPECT_GT(graph.machine_count(), 0u);
  EXPECT_GT(graph.domain_count(), 0u);
  EXPECT_GT(graph.count_domains_with(graph::Label::kMalware), 0u);
  EXPECT_GT(graph.count_domains_with(graph::Label::kBenign), 0u);
  EXPECT_GT(graph.count_machines_with(graph::Label::kMalware), 0u);
  EXPECT_GT(stats.machines_removed_r1, 0u);  // inactive machines existed
  EXPECT_GT(stats.domains_removed_r3, 0u);   // tail domains existed
  EXPECT_LT(stats.machines_after, stats.machines_before);
}

TEST_F(SegugioTest, TrainThenClassifyProducesScores) {
  const auto graph = prepared_graph(0);
  Segugio segugio(fast_config());
  EXPECT_FALSE(segugio.is_trained());
  segugio.train(graph, world().activity(), world().pdns());
  EXPECT_TRUE(segugio.is_trained());

  const auto graph2 = prepared_graph(1);
  const auto report = segugio.classify(graph2, world().activity(), world().pdns());
  EXPECT_EQ(report.scores.size(), graph2.count_domains_with(graph::Label::kUnknown));
  for (const auto& scored : report.scores) {
    EXPECT_GE(scored.score, 0.0);
    EXPECT_LE(scored.score, 1.0);
    EXPECT_FALSE(scored.name.empty());
  }
}

TEST_F(SegugioTest, UnknownTrueMalwareScoresHigherThanBenign) {
  // The behavioral signal must separate yet-unblacklisted C&C domains from
  // popular benign ones even in the small scenario.
  const auto graph = prepared_graph(0);
  Segugio segugio(fast_config());
  segugio.train(graph, world().activity(), world().pdns());
  const auto graph2 = prepared_graph(2);
  const auto report = segugio.classify(graph2, world().activity(), world().pdns());

  double malware_score_sum = 0.0;
  std::size_t malware_count = 0;
  double other_score_sum = 0.0;
  std::size_t other_count = 0;
  for (const auto& scored : report.scores) {
    if (world().is_true_malware(scored.name)) {
      malware_score_sum += scored.score;
      ++malware_count;
    } else {
      other_score_sum += scored.score;
      ++other_count;
    }
  }
  ASSERT_GT(malware_count, 0u);  // some C&C domains escaped the blacklist
  ASSERT_GT(other_count, 0u);
  EXPECT_GT(malware_score_sum / static_cast<double>(malware_count),
            other_score_sum / static_cast<double>(other_count) + 0.15);
}

TEST_F(SegugioTest, DetectionsIncludeImplicatedMachines) {
  const auto graph = prepared_graph(0);
  Segugio segugio(fast_config());
  segugio.train(graph, world().activity(), world().pdns());
  const auto graph2 = prepared_graph(3);
  const auto report = segugio.classify(graph2, world().activity(), world().pdns());
  const auto detections = report.detections_at(0.6, graph2);
  ASSERT_GT(detections.size(), 0u);
  for (const auto& detection : detections) {
    EXPECT_GE(detection.domain.score, 0.6);
    EXPECT_FALSE(detection.machines.empty());
  }
  // Sorted by score, descending.
  for (std::size_t i = 1; i < detections.size(); ++i) {
    EXPECT_GE(detections[i - 1].domain.score, detections[i].domain.score);
  }
}

TEST_F(SegugioTest, LogisticRegressionBackendWorks) {
  auto config = fast_config();
  config.classifier = ClassifierKind::kLogisticRegression;
  const auto graph = prepared_graph(0);
  Segugio segugio(config);
  segugio.train(graph, world().activity(), world().pdns());
  EXPECT_TRUE(segugio.is_trained());
  const auto report = segugio.classify(graph, world().activity(), world().pdns());
  EXPECT_GT(report.scores.size(), 0u);
}

TEST_F(SegugioTest, FeatureSubsetRestrictsModel) {
  auto config = fast_config();
  config.feature_subset =
      features::feature_indices_excluding(features::FeatureGroup::kIpAbuse);
  const auto graph = prepared_graph(0);
  Segugio segugio(config);
  segugio.train(graph, world().activity(), world().pdns());
  const auto importance = segugio.feature_importance();
  EXPECT_EQ(importance.size(), 7u);  // 11 - 4 IP-abuse features
}

TEST_F(SegugioTest, TimingsArePopulated) {
  const auto graph = prepared_graph(0);
  Segugio segugio(fast_config());
  segugio.train(graph, world().activity(), world().pdns());
  segugio.classify(graph, world().activity(), world().pdns());
  const auto& timings = segugio.timings();
  EXPECT_GT(timings.train_fit_seconds, 0.0);
  EXPECT_GE(timings.train_feature_seconds, 0.0);
  EXPECT_GE(timings.classify_feature_seconds, 0.0);
  EXPECT_GE(timings.classify_score_seconds, 0.0);
}

TEST_F(SegugioTest, ScoreRequiresTraining) {
  Segugio segugio(fast_config());
  features::FeatureVector features{};
  EXPECT_THROW(segugio.score(features), util::PreconditionError);
  const auto graph = prepared_graph(0);
  EXPECT_THROW(segugio.classify(graph, world().activity(), world().pdns()),
               util::PreconditionError);
}

TEST_F(SegugioTest, PickThresholdRespectsFprBudget) {
  const std::vector<int> labels = {1, 1, 1, 0, 0, 0, 0, 0, 0, 0};
  const std::vector<double> scores = {0.9, 0.8, 0.4, 0.5, 0.3, 0.2, 0.1, 0.15, 0.05, 0.02};
  const double threshold = Segugio::pick_threshold(labels, scores, 0.15);
  std::size_t fp = 0;
  for (std::size_t i = 0; i < labels.size(); ++i) {
    fp += (labels[i] == 0 && scores[i] >= threshold) ? 1 : 0;
  }
  EXPECT_LE(static_cast<double>(fp) / 7.0, 0.15);
}

}  // namespace
}  // namespace seg::core
