#include "core/infection_report.h"

#include <gtest/gtest.h>

#include "graph/labeling.h"

namespace seg::core {
namespace {

class InfectionReportTest : public ::testing::Test {
 protected:
  dns::PublicSuffixList psl_ = dns::PublicSuffixList::with_default_rules();

  // m1 queries a known C&C + the new detection; m2 only the new detection;
  // m3 only benign.
  graph::MachineDomainGraph make_graph() {
    graph::GraphBuilder builder(psl_);
    builder.add_query("m1", "known.evil.biz", {});
    builder.add_query("m1", "fresh.evil.net", {});
    builder.add_query("m2", "fresh.evil.net", {});
    builder.add_query("m3", "www.good.com", {});
    builder.add_query("m1", "www.good.com", {});
    auto graph = builder.build();
    graph::NameSet blacklist;
    blacklist.insert("known.evil.biz");
    graph::NameSet whitelist;
    whitelist.insert("good.com");
    graph::apply_labels(graph, blacklist, whitelist);
    return graph;
  }

  DetectionReport make_detections(const graph::MachineDomainGraph& graph) {
    DetectionReport report;
    const auto fresh = graph.find_domain("fresh.evil.net");
    report.scores.push_back({"fresh.evil.net", fresh, 0.95});
    const auto good = graph.find_domain("www.good.com");
    report.scores.push_back({"www.good.com", good, 0.05});  // below threshold
    return report;
  }
};

TEST_F(InfectionReportTest, EnumeratesImplicatedMachines) {
  const auto graph = make_graph();
  const auto report = enumerate_infections(graph, make_detections(graph), 0.5);
  ASSERT_EQ(report.machines.size(), 2u);  // m1 and m2; m3 is clean
  EXPECT_EQ(report.machines[0].name, "m1");  // strongest evidence first
  EXPECT_EQ(report.machines[0].known_domains.size(), 1u);
  EXPECT_EQ(report.machines[0].detected_domains.size(), 1u);
  EXPECT_EQ(report.machines[0].evidence(), 2u);
  EXPECT_EQ(report.machines[1].name, "m2");
  EXPECT_TRUE(report.machines[1].known_domains.empty());
}

TEST_F(InfectionReportTest, CountsNewlyImplicatedMachines) {
  const auto graph = make_graph();
  const auto report = enumerate_infections(graph, make_detections(graph), 0.5);
  // m2 has no blacklisted queries: a blacklist-only workflow would miss it.
  EXPECT_EQ(report.newly_implicated, 1u);
}

TEST_F(InfectionReportTest, ThresholdFiltersWeakDetections) {
  const auto graph = make_graph();
  const auto report = enumerate_infections(graph, make_detections(graph), 0.99);
  // Only the blacklist evidence remains -> only m1.
  ASSERT_EQ(report.machines.size(), 1u);
  EXPECT_EQ(report.machines[0].name, "m1");
  EXPECT_TRUE(report.machines[0].detected_domains.empty());
  EXPECT_EQ(report.newly_implicated, 0u);
}

TEST_F(InfectionReportTest, EmptyInputsYieldEmptyReport) {
  graph::GraphBuilder builder(psl_);
  builder.add_query("m1", "a.com", {});
  auto graph = builder.build();
  graph::apply_labels(graph, graph::NameSet{}, graph::NameSet{});
  const auto report = enumerate_infections(graph, DetectionReport{}, 0.5);
  EXPECT_TRUE(report.machines.empty());
  EXPECT_EQ(report.newly_implicated, 0u);
}

TEST_F(InfectionReportTest, DetectedDomainsSortedByScore) {
  graph::GraphBuilder builder(psl_);
  builder.add_query("m1", "a.evil.net", {});
  builder.add_query("m1", "b.evil.net", {});
  auto graph = builder.build();
  graph::apply_labels(graph, graph::NameSet{}, graph::NameSet{});
  DetectionReport detections;
  detections.scores.push_back({"a.evil.net", graph.find_domain("a.evil.net"), 0.7});
  detections.scores.push_back({"b.evil.net", graph.find_domain("b.evil.net"), 0.9});
  const auto report = enumerate_infections(graph, detections, 0.5);
  ASSERT_EQ(report.machines.size(), 1u);
  ASSERT_EQ(report.machines[0].detected_domains.size(), 2u);
  EXPECT_EQ(report.machines[0].detected_domains[0].name, "b.evil.net");
}

}  // namespace
}  // namespace seg::core
