#include "util/args.h"

#include <gtest/gtest.h>

#include "util/require.h"

namespace seg::util {
namespace {

Args parse(std::initializer_list<const char*> argv,
           const std::vector<std::string>& flags = {}) {
  std::vector<const char*> v(argv);
  return Args(static_cast<int>(v.size()), v.data(), flags);
}

TEST(ArgsTest, KeyValuePairs) {
  const auto args = parse({"--trace", "file.tsv", "--trees", "50"});
  EXPECT_EQ(args.get("trace"), "file.tsv");
  EXPECT_EQ(args.get_int_or("trees", 0), 50);
}

TEST(ArgsTest, EqualsSyntax) {
  const auto args = parse({"--threshold=0.75", "--model=m.txt"});
  EXPECT_DOUBLE_EQ(args.get_double_or("threshold", 0.0), 0.75);
  EXPECT_EQ(args.get("model"), "m.txt");
}

TEST(ArgsTest, BooleanFlags) {
  const auto args = parse({"--machines", "--trace", "x"}, {"machines"});
  EXPECT_TRUE(args.flag("machines"));
  EXPECT_FALSE(args.flag("verbose"));
  EXPECT_EQ(args.get("trace"), "x");
}

TEST(ArgsTest, PositionalArguments) {
  const auto args = parse({"first", "--k", "v", "second"});
  ASSERT_EQ(args.positional().size(), 2u);
  EXPECT_EQ(args.positional()[0], "first");
  EXPECT_EQ(args.positional()[1], "second");
}

TEST(ArgsTest, DefaultsForMissingOptions) {
  const auto args = parse({});
  EXPECT_EQ(args.get_or("scale", "small"), "small");
  EXPECT_EQ(args.get_int_or("days", 7), 7);
  EXPECT_DOUBLE_EQ(args.get_double_or("threshold", 0.5), 0.5);
}

TEST(ArgsTest, MissingRequiredThrows) {
  const auto args = parse({});
  EXPECT_THROW(args.get("trace"), ParseError);
}

TEST(ArgsTest, MissingValueThrows) {
  EXPECT_THROW(parse({"--trace"}), ParseError);
}

TEST(ArgsTest, BareDashDashThrows) {
  EXPECT_THROW(parse({"--"}), ParseError);
}

TEST(ArgsTest, MalformedNumberThrows) {
  const auto args = parse({"--trees", "many"});
  EXPECT_THROW(args.get_int_or("trees", 1), ParseError);
}

}  // namespace
}  // namespace seg::util
