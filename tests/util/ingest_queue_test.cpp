// IngestQueue contract tests: FIFO determinism, back-pressure under both
// policies, the close/drain and cancel protocols, and multi-producer
// delivery. The threaded tests run in the tsan leg of the CI matrix
// (tools/ci_matrix.sh, "ingest" leg) where the lock discipline is checked
// under contention, not just here under luck.
#include "util/ingest_queue.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <thread>
#include <vector>

#include "util/obs/metrics.h"

namespace seg::util {
namespace {

using Batch = std::vector<int>;

Batch make_batch(int first, int count) {
  Batch batch(static_cast<std::size_t>(count));
  std::iota(batch.begin(), batch.end(), first);
  return batch;
}

TEST(IngestQueueTest, SingleProducerPopsInPushOrder) {
  IngestQueue<Batch> queue;
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(queue.push(make_batch(i * 100, 3)));
  }
  queue.close();
  int expected_first = 0;
  std::size_t popped = 0;
  while (auto batch = queue.pop()) {
    EXPECT_EQ(*batch, make_batch(expected_first, 3));
    expected_first += 100;
    ++popped;
  }
  EXPECT_EQ(popped, 10u);
  const auto stats = queue.stats();
  EXPECT_EQ(stats.pushed_batches, 10u);
  EXPECT_EQ(stats.pushed_records, 30u);
  EXPECT_EQ(stats.popped_batches, 10u);
  EXPECT_EQ(stats.dropped_batches, 0u);
  EXPECT_EQ(stats.depth, 0u);
  EXPECT_LE(stats.max_depth, 10u);
  EXPECT_GE(stats.max_depth, 1u);
}

TEST(IngestQueueTest, ZeroCapacityClampsToOne) {
  IngestQueueOptions options;
  options.capacity = 0;
  IngestQueue<Batch> queue(options);
  EXPECT_EQ(queue.options().capacity, 1u);
}

TEST(IngestQueueTest, PushAfterCloseIsRefused) {
  IngestQueue<Batch> queue;
  EXPECT_TRUE(queue.push(make_batch(0, 1)));
  queue.close();
  EXPECT_FALSE(queue.push(make_batch(1, 1)));
  // The pre-close batch still drains.
  auto batch = queue.pop();
  ASSERT_TRUE(batch.has_value());
  EXPECT_EQ(*batch, make_batch(0, 1));
  EXPECT_FALSE(queue.pop().has_value());
  EXPECT_EQ(queue.stats().pushed_batches, 1u);
}

TEST(IngestQueueTest, CountAndDropRejectsWhenFullAndCounts) {
  IngestQueueOptions options;
  options.capacity = 2;
  options.policy = BackpressurePolicy::kCountAndDrop;
  IngestQueue<Batch> queue(options);
  EXPECT_TRUE(queue.push(make_batch(0, 4)));
  EXPECT_TRUE(queue.push(make_batch(10, 4)));
  EXPECT_FALSE(queue.push(make_batch(20, 5)));
  EXPECT_FALSE(queue.push(make_batch(30, 7)));

  auto stats = queue.stats();
  EXPECT_EQ(stats.pushed_batches, 2u);
  EXPECT_EQ(stats.dropped_batches, 2u);
  EXPECT_EQ(stats.dropped_records, 12u);
  EXPECT_EQ(stats.blocked_pushes, 0u);

  // Draining reopens capacity: the next push is accepted again.
  EXPECT_EQ(*queue.pop(), make_batch(0, 4));
  EXPECT_TRUE(queue.push(make_batch(40, 1)));
  queue.close();
  EXPECT_EQ(*queue.pop(), make_batch(10, 4));
  EXPECT_EQ(*queue.pop(), make_batch(40, 1));
  EXPECT_FALSE(queue.pop().has_value());
}

TEST(IngestQueueTest, BlockingPushWaitsForSpaceAndLosesNothing) {
  IngestQueueOptions options;
  options.capacity = 2;
  IngestQueue<Batch> queue(options);
  constexpr int kBatches = 50;

  std::atomic<int> produced{0};
  std::thread producer([&] {
    for (int i = 0; i < kBatches; ++i) {
      ASSERT_TRUE(queue.push(make_batch(i, 2)));
      produced.fetch_add(1);
    }
    queue.close();
  });

  // Give the producer a head start so it actually hits the capacity wall;
  // correctness does not depend on the race going one way, only the
  // blocked_pushes expectation below needs the wall to be hit, which a
  // capacity of 2 against 50 batches guarantees regardless of timing.
  std::this_thread::sleep_for(std::chrono::milliseconds(10));

  int expected = 0;
  while (auto batch = queue.pop()) {
    EXPECT_EQ(*batch, make_batch(expected, 2));
    ++expected;
  }
  producer.join();
  EXPECT_EQ(expected, kBatches);

  const auto stats = queue.stats();
  EXPECT_EQ(stats.pushed_batches, static_cast<std::uint64_t>(kBatches));
  EXPECT_EQ(stats.pushed_records, static_cast<std::uint64_t>(kBatches) * 2);
  EXPECT_EQ(stats.popped_batches, static_cast<std::uint64_t>(kBatches));
  EXPECT_EQ(stats.dropped_batches, 0u);
  EXPECT_GT(stats.blocked_pushes, 0u);
  EXPECT_LE(stats.max_depth, 2u);
}

TEST(IngestQueueTest, CancelWakesBlockedProducerWithFalse) {
  IngestQueueOptions options;
  options.capacity = 1;
  IngestQueue<Batch> queue(options);
  ASSERT_TRUE(queue.push(make_batch(0, 1)));  // fill to capacity

  std::atomic<bool> push_returned{false};
  std::atomic<bool> push_result{true};
  std::thread producer([&] {
    push_result.store(queue.push(make_batch(1, 1)));
    push_returned.store(true);
  });

  // The producer is (or is about to be) blocked on a full queue; cancel()
  // must wake it promptly with a refusal.
  while (queue.stats().blocked_pushes == 0 && !push_returned.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  queue.cancel();
  producer.join();
  EXPECT_TRUE(push_returned.load());
  EXPECT_FALSE(push_result.load());

  // cancel() discarded the queued batch: the consumer sees a closed, empty
  // queue, and later pushes are refused outright.
  EXPECT_FALSE(queue.pop().has_value());
  EXPECT_FALSE(queue.push(make_batch(2, 1)));
  EXPECT_EQ(queue.stats().depth, 0u);
}

TEST(IngestQueueTest, MultiProducerDeliversEveryBatchOnceInPerProducerOrder) {
  constexpr int kProducers = 4;
  constexpr int kBatchesPerProducer = 100;
  IngestQueueOptions options;
  options.capacity = 4;  // small, so producers contend and block
  IngestQueue<Batch> queue(options);

  std::atomic<int> open_producers{kProducers};
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&queue, &open_producers, p] {
      for (int i = 0; i < kBatchesPerProducer; ++i) {
        // Batch payload encodes (producer, sequence) so the consumer can
        // check per-producer FIFO without any cross-thread bookkeeping.
        ASSERT_TRUE(queue.push(Batch{p, i}));
      }
      if (open_producers.fetch_sub(1) == 1) {
        queue.close();  // last producer out closes the stream
      }
    });
  }

  std::vector<int> next_sequence(kProducers, 0);
  std::size_t total = 0;
  while (auto batch = queue.pop()) {
    ASSERT_EQ(batch->size(), 2u);
    const int producer = (*batch)[0];
    const int sequence = (*batch)[1];
    ASSERT_GE(producer, 0);
    ASSERT_LT(producer, kProducers);
    EXPECT_EQ(sequence, next_sequence[static_cast<std::size_t>(producer)])
        << "producer " << producer << " batches reordered";
    ++next_sequence[static_cast<std::size_t>(producer)];
    ++total;
  }
  for (auto& thread : producers) {
    thread.join();
  }
  EXPECT_EQ(total, static_cast<std::size_t>(kProducers) * kBatchesPerProducer);
  for (int p = 0; p < kProducers; ++p) {
    EXPECT_EQ(next_sequence[static_cast<std::size_t>(p)], kBatchesPerProducer);
  }
  const auto stats = queue.stats();
  EXPECT_EQ(stats.pushed_batches, total);
  EXPECT_EQ(stats.popped_batches, total);
  EXPECT_EQ(stats.dropped_batches, 0u);
  EXPECT_LE(stats.max_depth, 4u);
}

TEST(IngestQueueTest, SampledAdmissionKeepsEverythingWhileNothingDrops) {
  IngestQueueOptions options;
  options.capacity = 4;
  options.policy = BackpressurePolicy::kCountAndDrop;
  options.sampled_admission = true;
  IngestQueue<Batch> queue(options);
  // No drop has ever been observed, so the admit probability stays at
  // 1000 permille and batches pass through untouched.
  EXPECT_TRUE(queue.push(make_batch(0, 4)));
  EXPECT_TRUE(queue.push(make_batch(10, 4)));
  EXPECT_EQ(*queue.pop(), make_batch(0, 4));
  EXPECT_EQ(*queue.pop(), make_batch(10, 4));
  EXPECT_EQ(queue.stats().sampled_out_records, 0u);
}

TEST(IngestQueueTest, SampledAdmissionThinsAfterDropsAndBalancesTheLedger) {
  IngestQueueOptions options;
  options.capacity = 1;
  options.policy = BackpressurePolicy::kCountAndDrop;
  options.sampled_admission = true;
  options.drop_rate_alpha = 0.5;  // react fast so the test engages sampling
  IngestQueue<Batch> queue(options);

  std::uint64_t offered = 0;
  std::uint64_t consumed = 0;
  // Overload: each round offers two batches to a capacity-1 queue, so the
  // second is always dropped and the drop-rate EWMA climbs; after the
  // first drop every admitted batch is thinned probabilistically.
  for (int round = 0; round < 20; ++round) {
    queue.push(make_batch(round * 100, 10));
    offered += 10;
    queue.push(make_batch(round * 100 + 50, 10));
    offered += 10;
    while (true) {
      const auto stats = queue.stats();
      if (stats.depth == 0) {
        break;
      }
      consumed += queue.pop()->size();
    }
  }
  queue.close();
  while (auto batch = queue.pop()) {
    consumed += batch->size();
  }

  const auto stats = queue.stats();
  EXPECT_GT(stats.dropped_records, 0u);
  EXPECT_GT(stats.sampled_out_records, 0u);
  // The three-way ledger is exact: every offered record was either
  // admitted, dropped whole-batch, or sampled out.
  EXPECT_EQ(stats.pushed_records + stats.dropped_records + stats.sampled_out_records,
            offered);
  EXPECT_EQ(stats.pushed_records, consumed);
}

TEST(IngestQueueTest, SampledAdmissionMirrorsRateGaugesIntoObsRegistry) {
  obs::Registry::instance().reset();
  IngestQueueOptions options;
  options.capacity = 1;
  options.policy = BackpressurePolicy::kCountAndDrop;
  options.sampled_admission = true;
  options.metrics_prefix = "test_sampled_queue";
  IngestQueue<Batch> queue(options);
  EXPECT_TRUE(queue.push(make_batch(0, 5)));
  EXPECT_FALSE(queue.push(make_batch(10, 5)));  // full: whole-batch drop

  auto& registry = obs::Registry::instance();
  EXPECT_GT(registry.gauge("test_sampled_queue_drop_rate").value(), 0.0);
  EXPECT_LT(registry.gauge("test_sampled_queue_admit_permille").value(), 1000.0);

  queue.pop();
  // The next admitted push decays the drop rate again and thins the batch
  // against the lowered admit probability; whatever is removed is counted.
  queue.push(make_batch(20, 1000));
  const auto stats = queue.stats();
  EXPECT_EQ(stats.sampled_out_records,
            registry.counter("test_sampled_queue_sampled_out_records_total").value());
  EXPECT_EQ(stats.pushed_records + stats.dropped_records + stats.sampled_out_records,
            1010u);
  obs::Registry::instance().reset();
}

TEST(IngestQueueTest, NamedQueueMirrorsCountersIntoObsRegistry) {
  obs::Registry::instance().reset();
  IngestQueueOptions options;
  options.capacity = 1;
  options.policy = BackpressurePolicy::kCountAndDrop;
  options.metrics_prefix = "test_ingest_queue";
  IngestQueue<Batch> queue(options);
  EXPECT_TRUE(queue.push(make_batch(0, 3)));
  EXPECT_FALSE(queue.push(make_batch(10, 2)));
  queue.pop();

  auto& registry = obs::Registry::instance();
  EXPECT_EQ(registry.counter("test_ingest_queue_pushed_batches_total").value(), 1u);
  EXPECT_EQ(registry.counter("test_ingest_queue_pushed_records_total").value(), 3u);
  EXPECT_EQ(registry.counter("test_ingest_queue_dropped_batches_total").value(), 1u);
  EXPECT_EQ(registry.counter("test_ingest_queue_dropped_records_total").value(), 2u);
  EXPECT_EQ(registry.gauge("test_ingest_queue_depth").value(), 0.0);
  EXPECT_EQ(registry.gauge("test_ingest_queue_max_depth").value(), 1.0);
  obs::Registry::instance().reset();
}

}  // namespace
}  // namespace seg::util
