// seg::obs runtime tests: metric merge determinism across thread counts,
// span nesting (including spans opened inside parallel_for workers), the
// Chrome trace / Prometheus / run-report exporters, and the json_lite
// parser backing `segugio validate-obs`.
#include "util/obs/obs.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "util/parallel.h"

namespace seg::obs {
namespace {

class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Registry::instance().reset();
    Tracer::instance().clear();
    Tracer::instance().set_enabled(false);
  }
  void TearDown() override {
    Registry::instance().reset();
    Tracer::instance().clear();
    Tracer::instance().set_enabled(false);
    util::set_parallelism(0);
  }
};

// --- metrics ----------------------------------------------------------------

TEST_F(ObsTest, CounterSumsAcrossThreadsExactly) {
  constexpr std::uint64_t kPerIndex = 3;
  constexpr std::size_t kCount = 10000;
  for (const std::size_t threads : {std::size_t{1}, std::size_t{8}}) {
    Registry::instance().reset();
    util::set_parallelism(threads);
    auto& counter = Registry::instance().counter("seg_test_total");
    util::parallel_for(kCount, [&](std::size_t) { counter.add(kPerIndex); });
    EXPECT_EQ(counter.value(), kPerIndex * kCount) << threads << " threads";
  }
}

TEST_F(ObsTest, HistogramBucketsMergeDeterministically) {
  // Identical observations, 1 thread vs 8: bucket counts and the total
  // count must match exactly (the paper-facing determinism contract; the
  // floating `sum` is explicitly exempt).
  std::vector<std::vector<std::uint64_t>> per_run;
  std::vector<std::uint64_t> counts;
  for (const std::size_t threads : {std::size_t{1}, std::size_t{8}}) {
    Registry::instance().reset();
    util::set_parallelism(threads);
    auto& hist =
        Registry::instance().histogram("seg_test_hist", exponential_bounds(1.0, 2.0, 6));
    util::parallel_for(4096, [&](std::size_t i) {
      hist.observe(static_cast<double>(i % 100));
    });
    per_run.push_back(hist.bucket_counts());
    counts.push_back(hist.count());
  }
  EXPECT_EQ(per_run[0], per_run[1]);
  EXPECT_EQ(counts[0], counts[1]);
  EXPECT_EQ(counts[0], 4096u);
}

TEST_F(ObsTest, HistogramBucketBoundariesAreInclusive) {
  auto& hist = Registry::instance().histogram("seg_test_edges", {1.0, 10.0});
  hist.observe(1.0);   // first bucket (<= 1.0)
  hist.observe(1.5);   // second bucket
  hist.observe(10.0);  // second bucket (<= 10.0)
  hist.observe(11.0);  // +Inf bucket
  const auto buckets = hist.bucket_counts();
  ASSERT_EQ(buckets.size(), 3u);
  EXPECT_EQ(buckets[0], 1u);
  EXPECT_EQ(buckets[1], 2u);
  EXPECT_EQ(buckets[2], 1u);
}

TEST_F(ObsTest, GaugeKeepsLastWrite) {
  auto& gauge = Registry::instance().gauge("seg_test_gauge");
  gauge.set(2.5);
  gauge.set(-0.125);
  EXPECT_EQ(gauge.value(), -0.125);
}

TEST_F(ObsTest, RegistryReturnsSameMetricForSameName) {
  auto& a = Registry::instance().counter("seg_same");
  auto& b = Registry::instance().counter("seg_same");
  EXPECT_EQ(&a, &b);
  a.add(2);
  EXPECT_EQ(b.value(), 2u);
}

TEST_F(ObsTest, ExponentialBounds) {
  const auto bounds = exponential_bounds(64, 4.0, 3);
  ASSERT_EQ(bounds.size(), 3u);
  EXPECT_EQ(bounds[0], 64.0);
  EXPECT_EQ(bounds[1], 256.0);
  EXPECT_EQ(bounds[2], 1024.0);
}

TEST_F(ObsTest, PrometheusExposition) {
  Registry::instance().counter("seg_c_total").add(7);
  Registry::instance().gauge("seg_g").set(1.5);
  Registry::instance().histogram("seg_h", {1.0, 2.0}).observe(1.5);
  std::ostringstream out;
  Registry::instance().write_prometheus(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("# TYPE seg_c_total counter"), std::string::npos);
  EXPECT_NE(text.find("seg_c_total 7"), std::string::npos);
  EXPECT_NE(text.find("# TYPE seg_g gauge"), std::string::npos);
  EXPECT_NE(text.find("# TYPE seg_h histogram"), std::string::npos);
  EXPECT_NE(text.find("seg_h_bucket{le=\"1\"} 0"), std::string::npos);
  EXPECT_NE(text.find("seg_h_bucket{le=\"2\"} 1"), std::string::npos);
  EXPECT_NE(text.find("seg_h_bucket{le=\"+Inf\"} 1"), std::string::npos);
  EXPECT_NE(text.find("seg_h_count 1"), std::string::npos);
}

// --- spans ------------------------------------------------------------------

TEST_F(ObsTest, SpanMeasuresWithoutRecordingWhenDisabled) {
  Span span("test/quiet");
  EXPECT_GE(span.close(), 0.0);
  EXPECT_TRUE(Tracer::instance().snapshot().empty());
}

TEST_F(ObsTest, SpanCloseIsIdempotent) {
  Tracer::instance().set_enabled(true);
  Span span("test/once");
  span.close();
  span.close();
  EXPECT_EQ(Tracer::instance().snapshot().size(), 1u);
}

TEST_F(ObsTest, NestedSpansRecordDepthAndValidate) {
  Tracer::instance().set_enabled(true);
  {
    SEG_SPAN("test/outer");
    { SEG_SPAN("test/inner"); }
    { SEG_SPAN("test/inner2"); }
  }
  const auto records = Tracer::instance().snapshot();
  ASSERT_EQ(records.size(), 3u);
  // Snapshot order is (tid, start): the outer span starts first.
  EXPECT_EQ(records[0].name, "test/outer");
  EXPECT_EQ(records[0].depth, 0u);
  EXPECT_EQ(records[1].name, "test/inner");
  EXPECT_EQ(records[1].depth, 1u);
  EXPECT_EQ(validate_spans(records), "");
}

TEST_F(ObsTest, SpansInsideParallelForLandInWorkerLanes) {
  Tracer::instance().set_enabled(true);
  util::set_parallelism(4);
  {
    SEG_SPAN("test/parallel_root");
    util::parallel_for(64, [](std::size_t) { SEG_SPAN("test/worker"); });
  }
  const auto records = Tracer::instance().snapshot();
  ASSERT_EQ(records.size(), 65u);
  EXPECT_EQ(validate_spans(records), "");
}

TEST_F(ObsTest, ValidateSpansRejectsPartialOverlap) {
  std::vector<SpanRecord> bad;
  bad.push_back({"a", 0, 0, 0, 100});
  bad.push_back({"b", 0, 0, 50, 100});  // starts inside a, ends outside
  EXPECT_NE(validate_spans(bad), "");
}

TEST_F(ObsTest, ChromeTraceRoundTripsThroughValidator) {
  Tracer::instance().set_enabled(true);
  {
    SEG_SPAN("test/outer");
    { SEG_SPAN("test/inner"); }
  }
  std::ostringstream out;
  write_chrome_trace(out);
  std::string error;
  const auto doc = json::parse(out.str(), &error);
  ASSERT_TRUE(error.empty()) << error;
  EXPECT_EQ(validate_chrome_trace(doc), "");
  const auto* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  EXPECT_EQ(events->as_array().size(), 2u);
}

// --- run report / process ---------------------------------------------------

TEST_F(ObsTest, RunReportRoundTripsThroughValidator) {
  Tracer::instance().set_enabled(true);
  Registry::instance().counter("seg_report_total").add(3);
  Registry::instance().histogram("seg_report_hist", {1.0}).observe(0.5);
  { SEG_SPAN("test/report"); }
  std::ostringstream out;
  write_run_report(out, "unit-test");
  std::string error;
  const auto doc = json::parse(out.str(), &error);
  ASSERT_TRUE(error.empty()) << error;
  EXPECT_EQ(validate_run_report(doc), "");
  const auto* command = doc.find("command");
  ASSERT_NE(command, nullptr);
  EXPECT_EQ(command->as_string(), "unit-test");
  const auto* spans = doc.find("spans");
  ASSERT_NE(spans, nullptr);
  const auto* aggregate = spans->find("test/report");
  ASSERT_NE(aggregate, nullptr);
  EXPECT_EQ(aggregate->find("count")->as_number(), 1.0);
}

TEST_F(ObsTest, ProcessSampleIsPlausible) {
  const auto sample = sample_process();
  EXPECT_GE(sample.hardware_concurrency, 1u);
#if defined(__unix__) || defined(__APPLE__)
  EXPECT_GT(sample.rss_peak_kb, 0u);
#endif
}

// --- json_lite --------------------------------------------------------------

TEST_F(ObsTest, JsonParsesDocument) {
  std::string error;
  const auto doc = json::parse(
      R"({"a": [1, 2.5, -3e2], "b": {"nested": true}, "c": null, "d": "x\ny"})",
      &error);
  ASSERT_TRUE(error.empty()) << error;
  EXPECT_EQ(doc.find("a")->as_array()[2].as_number(), -300.0);
  EXPECT_TRUE(doc.find("b")->find("nested")->as_bool());
  EXPECT_TRUE(doc.find("c")->is_null());
  EXPECT_EQ(doc.find("d")->as_string(), "x\ny");
}

TEST_F(ObsTest, JsonRejectsMalformedInput) {
  for (const char* bad : {"{", "[1,]", "{\"a\" 1}", "tru", "1 2", "\"\\q\""}) {
    std::string error;
    json::parse(bad, &error);
    EXPECT_FALSE(error.empty()) << bad;
  }
}

TEST_F(ObsTest, JsonUnicodeEscapes) {
  std::string error;
  const auto doc = json::parse(R"("\u00e9\u0041")", &error);
  ASSERT_TRUE(error.empty()) << error;
  EXPECT_EQ(doc.as_string(), "\xc3\xa9"
                             "A");
}

}  // namespace
}  // namespace seg::obs
