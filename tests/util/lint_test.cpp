// seg-lint rule engine tests: for every rule, an inline fixture that must
// match, one that must not, and one where a suppression comment silences
// the finding. Fixtures are raw strings, which also exercises the lexer's
// guarantee that rules never fire on text inside literals.
#include "util/lint/linter.h"

#include <algorithm>
#include <string>

#include <gtest/gtest.h>

namespace seg::lint {
namespace {

std::vector<Finding> run(std::string_view path, std::string_view text,
                         std::string_view header = {}) {
  LintOptions options;
  return lint_text(path, text, options, header);
}

bool has_rule(const std::vector<Finding>& findings, std::string_view rule) {
  return std::any_of(findings.begin(), findings.end(),
                     [&](const Finding& f) { return f.rule == rule; });
}

// --- R-DET1: ambient clock / randomness ------------------------------------

TEST(RDet1, FlagsRandAndWallClock) {
  const auto findings = run("src/core/score.cpp", R"cpp(
    int jitter() { return rand() % 10; }
    long stamp() { return time(nullptr); }
    void seed() { std::random_device rd; }
    auto t = std::chrono::system_clock::now();
  )cpp");
  EXPECT_EQ(findings.size(), 4u);
  EXPECT_TRUE(has_rule(findings, "R-DET1"));
}

TEST(RDet1, IgnoresSteadyClockAndForeignRand) {
  const auto findings = run("src/core/score.cpp", R"cpp(
    auto t = std::chrono::steady_clock::now();
    double draw(util::Rng& rng) { return rng.rand(); }
    long t2 = clock.time(nullptr);
  )cpp");
  EXPECT_FALSE(has_rule(findings, "R-DET1"));
}

TEST(RDet1, AllowlistedTimingFileIsExempt) {
  const auto findings = run("src/util/obs/trace.cpp", R"cpp(
    auto wall() { return std::chrono::system_clock::now(); }
  )cpp");
  EXPECT_FALSE(has_rule(findings, "R-DET1"));
}

TEST(RDet1, SuppressionComment) {
  const auto findings = run("src/core/score.cpp", R"cpp(
    // seg-lint: allow(R-DET1)
    long stamp() { return time(nullptr); }
  )cpp");
  EXPECT_FALSE(has_rule(findings, "R-DET1"));
}

TEST(RDet1, LiteralsNeverMatch) {
  const auto findings = run("src/core/score.cpp", R"cpp(
    const char* doc = "never call rand() or time(nullptr) here";
  )cpp");
  EXPECT_TRUE(findings.empty());
}

// --- R-OBS1: raw timing primitives outside the obs layer ---------------------

TEST(RObs1, FlagsSteadyClockOutsideObsLayer) {
  const auto findings = run("src/core/score.cpp", R"cpp(
    auto t0 = std::chrono::steady_clock::now();
    auto t1 = std::chrono::high_resolution_clock::now();
  )cpp");
  EXPECT_TRUE(has_rule(findings, "R-OBS1"));
}

TEST(RObs1, FlagsStopwatchUse) {
  const auto findings = run("src/core/score.cpp", R"cpp(
    double elapsed() { obs::Stopwatch watch; return watch.elapsed_seconds(); }
  )cpp");
  EXPECT_TRUE(has_rule(findings, "R-OBS1"));
}

TEST(RObs1, ObsLayerIsExempt) {
  const auto findings = run("src/util/obs/trace.cpp", R"cpp(
    auto epoch = std::chrono::steady_clock::now();
    Stopwatch watch;
  )cpp");
  EXPECT_FALSE(has_rule(findings, "R-OBS1"));
}

TEST(RObs1, HealthSamplerClockUseIsExemptOnlyUnderObs) {
  // The health sampler's cadence clock (wait_for deadlines, EWMA deltas)
  // lives in util/obs/health.cpp and rides the same allowlist as trace.cpp;
  // the identical code outside the obs layer stays a finding.
  const auto allowed = run("src/util/obs/health.cpp", R"cpp(
    auto deadline = std::chrono::steady_clock::now() + interval;
  )cpp");
  EXPECT_FALSE(has_rule(allowed, "R-OBS1"));

  const auto flagged = run("src/core/health.cpp", R"cpp(
    auto deadline = std::chrono::steady_clock::now() + interval;
  )cpp");
  EXPECT_TRUE(has_rule(flagged, "R-OBS1"));
}

TEST(RObs1, SuppressionComment) {
  const auto findings = run("src/core/score.cpp", R"cpp(
    // seg-lint: allow(R-OBS1)
    auto t = std::chrono::steady_clock::now();
  )cpp");
  EXPECT_FALSE(has_rule(findings, "R-OBS1"));
}

TEST(RObs1, LiteralsNeverMatch) {
  const auto findings = run("src/core/score.cpp", R"cpp(
    const char* doc = "steady_clock and Stopwatch live in util/obs";
  )cpp");
  EXPECT_FALSE(has_rule(findings, "R-OBS1"));
}

// --- R-MEM1: raw mapping syscalls outside util/mmap_file ---------------------

TEST(RMem1, FlagsRawMappingCalls) {
  const auto findings = run("src/graph/graph_io.cpp", R"cpp(
    void* load(int fd, size_t n) { return mmap(nullptr, n, 1, 2, fd, 0); }
    void drop(void* p, size_t n) { munmap(p, n); madvise(p, n, 4); }
  )cpp");
  EXPECT_TRUE(has_rule(findings, "R-MEM1"));
}

TEST(RMem1, FlagsSyscallNumberEvasion) {
  const auto findings = run("src/graph/graph_io.cpp", R"cpp(
    long bind_pages(void* p, size_t n) { return syscall(__NR_mbind, p, n); }
  )cpp");
  EXPECT_TRUE(has_rule(findings, "R-MEM1"));
}

TEST(RMem1, MmapFileWrapperIsExempt) {
  const auto findings = run("src/util/mmap_file.cpp", R"cpp(
    void* map(int fd, size_t n) { return ::mmap(nullptr, n, 1, 2, fd, 0); }
    void unmap(void* p, size_t n) { ::munmap(p, n); }
  )cpp");
  EXPECT_FALSE(has_rule(findings, "R-MEM1"));
}

TEST(RMem1, IgnoresWrapperUseAndPlainIdentifiers) {
  const auto findings = run("src/graph/graph_io.cpp", R"cpp(
    util::MmapFile mapped(path);
    bool use_mmap = backing == "mmap";
  )cpp");
  EXPECT_FALSE(has_rule(findings, "R-MEM1"));
}

TEST(RMem1, SuppressionComment) {
  const auto findings = run("src/graph/graph_io.cpp", R"cpp(
    // seg-lint: allow(R-MEM1)
    void drop(void* p, size_t n) { munmap(p, n); }
  )cpp");
  EXPECT_FALSE(has_rule(findings, "R-MEM1"));
}

TEST(RMem1, LiteralsNeverMatch) {
  const auto findings = run("src/graph/graph_io.cpp", R"cpp(
    const char* doc = "raw mmap( and munmap( belong in util/mmap_file";
  )cpp");
  EXPECT_FALSE(has_rule(findings, "R-MEM1"));
}

// --- R-DET2: unordered iteration in emission paths --------------------------

TEST(RDet2, FlagsUnorderedRangeForWhenSerializing) {
  const auto findings = run("src/dns/store.cpp", R"cpp(
    void save(std::ostream& out, const std::unordered_map<int, int>& index) {
      for (const auto& [key, value] : index) { out << key << value; }
    }
  )cpp");
  ASSERT_TRUE(has_rule(findings, "R-DET2"));
}

TEST(RDet2, FlagsMemberDeclaredInCompanionHeader) {
  const std::string header = R"cpp(
    #pragma once
    class Store {
      using DayIndex = std::unordered_map<unsigned, int>;
      DayIndex ip_index_;
    };
  )cpp";
  const auto findings = run("src/dns/store.cpp", R"cpp(
    void Store::save(std::ostream& out) {
      for (const auto& [ip, days] : ip_index_) { out << ip; }
    }
  )cpp",
                            header);
  EXPECT_TRUE(has_rule(findings, "R-DET2"));
}

TEST(RDet2, OrderedContainersAndNonEmissionFilesPass) {
  // std::map iteration is fine even when serializing.
  const auto ordered = run("src/dns/store.cpp", R"cpp(
    void save(std::ostream& out, const std::map<int, int>& index) {
      for (const auto& [key, value] : index) { out << key; }
    }
  )cpp");
  EXPECT_FALSE(has_rule(ordered, "R-DET2"));
  // Unordered iteration is fine in a file with no output surface.
  const auto internal = run("src/graph/degree.cpp", R"cpp(
    int total(const std::unordered_map<int, int>& degree) {
      int sum = 0;
      for (const auto& [node, count] : degree) { sum += count; }
      return sum;
    }
  )cpp");
  EXPECT_FALSE(has_rule(internal, "R-DET2"));
}

TEST(RDet2, SuppressionComment) {
  const auto findings = run("src/dns/store.cpp", R"cpp(
    std::size_t count(const std::unordered_map<int, int>& index, std::ostream& log) {
      std::size_t n = 0;
      // Order-insensitive count.  seg-lint: allow(R-DET2)
      for (const auto& [key, value] : index) { ++n; }
      return n;
    }
  )cpp");
  EXPECT_FALSE(has_rule(findings, "R-DET2"));
}

// --- R-RACE1: vector<bool> ---------------------------------------------------

TEST(RRace1, FlagsVectorBoolEverywhere) {
  const auto findings = run("src/graph/mask.h", R"cpp(
    #pragma once
    std::vector<bool> keep_mask(std::size_t n);
  )cpp");
  EXPECT_TRUE(has_rule(findings, "R-RACE1"));
}

TEST(RRace1, ByteVectorPasses) {
  const auto findings = run("src/graph/mask.h", R"cpp(
    #pragma once
    std::vector<std::uint8_t> keep_mask(std::size_t n);
    std::vector<Bool> wrapped;
  )cpp");
  EXPECT_FALSE(has_rule(findings, "R-RACE1"));
}

TEST(RRace1, SuppressionComment) {
  const auto findings = run("src/graph/mask.h", R"cpp(
    #pragma once
    // Serial-only API, packed on purpose.  seg-lint: allow(R-RACE1)
    std::vector<bool> legacy_mask(std::size_t n);
  )cpp");
  EXPECT_FALSE(has_rule(findings, "R-RACE1"));
}

// --- R-RACE2: unpartitioned writes in parallel bodies ------------------------

TEST(RRace2, FlagsGrowthOfByRefCapture) {
  const auto findings = run("src/graph/build.cpp", R"cpp(
    void collect(std::vector<int>& out) {
      util::parallel_for(100, [&](std::size_t i) {
        out.push_back(static_cast<int>(i));
      });
    }
  )cpp");
  ASSERT_TRUE(has_rule(findings, "R-RACE2"));
}

TEST(RRace2, FlagsUnpartitionedSubscriptWrite) {
  // The index is a captured value with no worker-local component: every
  // iteration hits the same slot.
  const auto findings = run("src/graph/build.cpp", R"cpp(
    void tally(std::vector<long>& totals, std::size_t slot) {
      util::parallel_for(100, [&](std::size_t i) {
        totals[slot] += static_cast<long>(i);
      });
    }
  )cpp");
  EXPECT_TRUE(has_rule(findings, "R-RACE2"));
}

TEST(RRace2, IndirectWorkerLocalIndexIsTrusted) {
  // out[remap[m]] is the project's injective-remap idiom (each worker owns
  // the slot its remapped id points at); the heuristic trusts any index
  // expression containing a worker-local identifier.
  const auto findings = run("src/graph/build.cpp", R"cpp(
    void scatter(std::vector<int>& out, const std::vector<int>& remap) {
      util::parallel_for(remap.size(), [&](std::size_t m) {
        out[remap[m]] = static_cast<int>(m);
      });
    }
  )cpp");
  EXPECT_FALSE(has_rule(findings, "R-RACE2"));
}

TEST(RRace2, PartitionedWritesAndLocalsPass) {
  const auto findings = run("src/graph/build.cpp", R"cpp(
    void fill(std::vector<int>& out, std::vector<Acc>& accs) {
      util::parallel_for(out.size(), [&](std::size_t i) {
        out[i] = compute(i);
      });
      util::parallel_chunks(out.size(), 0, [&](std::size_t chunk, std::size_t begin,
                                               std::size_t end) {
        auto& acc = accs[chunk];
        std::vector<int> local;
        for (std::size_t i = begin; i < end; ++i) {
          const auto key = static_cast<int>(i);
          local.push_back(key);
          out[key] = key;
        }
        acc.merge(local);
      });
    }
  )cpp");
  EXPECT_FALSE(has_rule(findings, "R-RACE2"));
}

TEST(RRace2, ByValueLambdaPasses) {
  const auto findings = run("src/graph/build.cpp", R"cpp(
    void observe(std::vector<int> snapshot) {
      util::parallel_for(10, [snapshot](std::size_t i) {
        snapshot.push_back(static_cast<int>(i));
      });
    }
  )cpp");
  EXPECT_FALSE(has_rule(findings, "R-RACE2"));
}

TEST(RRace2, SuppressionComment) {
  const auto findings = run("src/graph/build.cpp", R"cpp(
    void collect(std::vector<int>& out) {
      util::parallel_for(100, [&](std::size_t i) {
        // Guarded by a mutex in the caller.  seg-lint: allow(R-RACE2)
        out.push_back(static_cast<int>(i));
      });
    }
  )cpp");
  EXPECT_FALSE(has_rule(findings, "R-RACE2"));
}

// --- R-HDR1 / R-HDR2: header hygiene ----------------------------------------

TEST(RHdr1, FlagsMissingPragmaOnce) {
  const auto findings = run("src/util/thing.h", R"cpp(
    struct Thing {};
  )cpp");
  EXPECT_TRUE(has_rule(findings, "R-HDR1"));
}

TEST(RHdr1, PragmaAfterCommentBlockPasses) {
  const auto findings = run("src/util/thing.h", R"cpp(
    // Banner comment first, like every header in this repo.
    #pragma once
    struct Thing {};
  )cpp");
  EXPECT_FALSE(has_rule(findings, "R-HDR1"));
}

TEST(RHdr1, CppFilesAreNotChecked) {
  const auto findings = run("src/util/thing.cpp", "struct Thing {};\n");
  EXPECT_FALSE(has_rule(findings, "R-HDR1"));
}

TEST(RHdr2, FlagsUsingNamespaceInHeaderOnly) {
  const auto header = run("src/util/thing.h", R"cpp(
    #pragma once
    using namespace std;
  )cpp");
  EXPECT_TRUE(has_rule(header, "R-HDR2"));
  const auto source = run("src/util/thing.cpp", "using namespace std;\n");
  EXPECT_FALSE(has_rule(source, "R-HDR2"));
}

TEST(RHdr2, SuppressionComment) {
  const auto findings = run("src/util/thing.h", R"cpp(
    #pragma once
    // seg-lint: allow(R-HDR2)
    using namespace std::literals;
  )cpp");
  EXPECT_FALSE(has_rule(findings, "R-HDR2"));
}

// --- R-API1: calls to deprecated entry points --------------------------------

namespace {
constexpr std::string_view kDeprecatedHeader = R"cpp(
  #pragma once
  struct Report {
    std::vector<Detection> detections_at(double threshold) const;
    // seg-deprecated
    std::vector<Detection> detections_at(double threshold, const Graph& graph) const;
  };
)cpp";
}  // namespace

TEST(RApi1, FlagsCallWithMatchingArity) {
  const auto findings = run("src/core/use.cpp", R"cpp(
    void emit(const Report& report, const Graph& graph) {
      const auto hits = report.detections_at(0.5, graph);
    }
  )cpp",
                            kDeprecatedHeader);
  EXPECT_TRUE(has_rule(findings, "R-API1"));
}

TEST(RApi1, ReplacementOverloadWithDifferentArityPasses) {
  const auto findings = run("src/core/use.cpp", R"cpp(
    void emit(const Report& report) {
      const auto hits = report.detections_at(0.5);
    }
  )cpp",
                            kDeprecatedHeader);
  EXPECT_FALSE(has_rule(findings, "R-API1"));
}

TEST(RApi1, DefinitionAndHeaderAreNotFlagged) {
  const auto cpp_findings = run("src/core/report.cpp", R"cpp(
    std::vector<Detection> Report::detections_at(double threshold,
                                                 const Graph& graph) const {
      return {};
    }
  )cpp",
                                kDeprecatedHeader);
  EXPECT_FALSE(has_rule(cpp_findings, "R-API1"));
  const auto header_findings = run("src/core/report.h", kDeprecatedHeader);
  EXPECT_FALSE(has_rule(header_findings, "R-API1"));
}

TEST(RApi1, SuppressionComment) {
  const auto findings = run("src/core/use.cpp", R"cpp(
    void emit(const Report& report, const Graph& graph) {
      // seg-lint: allow(R-API1)
      const auto hits = report.detections_at(0.5, graph);
    }
  )cpp",
                            kDeprecatedHeader);
  EXPECT_FALSE(has_rule(findings, "R-API1"));
}

// The ingestion redesign's deprecation surface: ingest_day survives as a
// tagged adapter while ingest_stream is the replacement entry point.
namespace {
constexpr std::string_view kPipelineHeader = R"cpp(
  #pragma once
  class Pipeline {
   public:
    IngestStats ingest_stream(TraceSource& source, const BlacklistProvider& blacklist,
                              const NameSet& whitelist, const DayCallback& on_day);
    // seg-deprecated
    PreparedDay ingest_day(const DayTrace& trace, const NameSet& blacklist,
                           const NameSet& whitelist);
  };
)cpp";
}  // namespace

TEST(RApi1, FlagsLegacyIngestDayOutsideTests) {
  const auto findings = run("bench/bench_thing.cpp", R"cpp(
    void go(Pipeline& pipeline, const DayTrace& trace, const NameSet& bl,
            const NameSet& wl) {
      const auto day = pipeline.ingest_day(trace, bl, wl);
    }
  )cpp",
                            kPipelineHeader);
  EXPECT_TRUE(has_rule(findings, "R-API1"));
}

TEST(RApi1, IngestStreamReplacementPasses) {
  const auto findings = run("bench/bench_thing.cpp", R"cpp(
    void go(Pipeline& pipeline, TraceSource& source, const BlacklistProvider& bl,
            const NameSet& wl, const DayCallback& on_day) {
      const auto stats = pipeline.ingest_stream(source, bl, wl, on_day);
    }
  )cpp",
                            kPipelineHeader);
  EXPECT_FALSE(has_rule(findings, "R-API1"));
}

TEST(RApi1, TestFilesMayKeepLegacyIngestDay) {
  // The batch-vs-stream parity tests deliberately call the adapter.
  const auto findings = run("tests/core/pipeline_test.cpp", R"cpp(
    void go(Pipeline& pipeline, const DayTrace& trace, const NameSet& bl,
            const NameSet& wl) {
      const auto day = pipeline.ingest_day(trace, bl, wl);
    }
  )cpp",
                            kPipelineHeader);
  EXPECT_FALSE(has_rule(findings, "R-API1"));
}

// --- Engine plumbing ---------------------------------------------------------

TEST(Engine, AllowFileSuppressesEveryInstance) {
  const auto findings = run("src/util/thing.h", R"cpp(
    // seg-lint: allow-file(R-RACE1)
    #pragma once
    std::vector<bool> a;
    std::vector<bool> b;
  )cpp");
  EXPECT_FALSE(has_rule(findings, "R-RACE1"));
}

TEST(Engine, OnlyRulesFilter) {
  LintOptions options;
  options.only_rules = {"R-HDR1"};
  const auto findings = lint_text("src/util/thing.h",
                                  "std::vector<bool> a;\n", options);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "R-HDR1");
}

TEST(Engine, FindingsCarryFileAndLine) {
  const auto findings = run("src/util/thing.h", "#pragma once\nstd::vector<bool> a;\n");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].file, "src/util/thing.h");
  EXPECT_EQ(findings[0].line, 2u);
  EXPECT_EQ(findings[0].rule, "R-RACE1");
}

// --- lexer edge cases --------------------------------------------------------

TEST(Lexer, RawStringsAreStrippedWhole) {
  // A rule trigger inside a raw string must not fire, including delimiters
  // with custom tags and embedded `)"` lookalikes.
  const auto findings = run("src/core/gen.cpp",
                            "const char* a = R\"(std::vector<bool> x; rand();)\";\n"
                            "const char* b = R\"tag(first )\" still inside )tag\";\n"
                            "std::vector<int> after_raw;\n");
  EXPECT_FALSE(has_rule(findings, "R-RACE1"));
  EXPECT_FALSE(has_rule(findings, "R-DET1"));

  // Lexing resumes correctly after the raw string: a real finding on the
  // next line still fires.
  const auto real = run("src/core/gen.cpp",
                        "const char* a = R\"(text)\";\nstd::vector<bool> flags;\n");
  ASSERT_TRUE(has_rule(real, "R-RACE1"));
  EXPECT_EQ(real[0].line, 2u);
}

TEST(Lexer, EncodingPrefixedRawStrings) {
  const auto findings = run("src/core/gen.cpp",
                            "auto a = u8R\"(rand();)\";\n"
                            "auto b = LR\"x(std::vector<bool> v;)x\";\n"
                            "auto c = uR\"(time(nullptr))\";\n"
                            "auto d = UR\"(std::random_device rd;)\";\n");
  EXPECT_TRUE(findings.empty());
}

TEST(Lexer, DigitSeparatorsDoNotDesyncTheTokenStream) {
  // `1'000'000` once opened a bogus char literal that swallowed following
  // code; everything after the number must still lex (and match rules).
  const auto findings = run("src/core/gen.cpp",
                            "const int big = 1'000'000;\n"
                            "const double f = 1'234.5'6;\n"
                            "std::vector<bool> flags;\n");
  ASSERT_TRUE(has_rule(findings, "R-RACE1"));
  EXPECT_EQ(findings[0].line, 3u);
}

TEST(Lexer, LineContinuationBackslashes) {
  // A backslash-newline splices lines; the directive still parses and the
  // rule trigger on the continued line still fires.
  const auto findings = run("src/core/gen.cpp",
                            "std::vector<\\\nbool> flags;\n");
  EXPECT_TRUE(has_rule(findings, "R-RACE1"));
}

TEST(Lexer, IncludeDirectivesExtractedOutsideLiteralsOnly) {
  const auto lexed = lex(
      "#include \"graph/graph.h\"\n"
      "#  include   <vector>\n"
      "# \\\ninclude \"util/split.h\"\n"
      "// #include \"comment/skipped.h\"\n"
      "const char* s = \"#include \\\"string/skipped.h\\\"\";\n"
      "const char* r = R\"(#include \"raw/skipped.h\")\";\n");
  ASSERT_EQ(lexed.includes.size(), 3u);
  EXPECT_EQ(lexed.includes[0].target, "graph/graph.h");
  EXPECT_TRUE(lexed.includes[0].quoted);
  EXPECT_EQ(lexed.includes[0].line, 1u);
  EXPECT_EQ(lexed.includes[1].target, "vector");
  EXPECT_FALSE(lexed.includes[1].quoted);
  EXPECT_EQ(lexed.includes[2].target, "util/split.h");
}

}  // namespace
}  // namespace seg::lint
