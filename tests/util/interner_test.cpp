#include "util/interner.h"

#include <gtest/gtest.h>

#include <string>

#include "util/require.h"

namespace seg::util {
namespace {

TEST(InternerTest, AssignsDenseIdsInFirstSeenOrder) {
  StringInterner interner;
  EXPECT_EQ(interner.intern("a.com"), 0u);
  EXPECT_EQ(interner.intern("b.com"), 1u);
  EXPECT_EQ(interner.intern("c.com"), 2u);
  EXPECT_EQ(interner.size(), 3u);
}

TEST(InternerTest, ReinterningReturnsSameId) {
  StringInterner interner;
  const auto id = interner.intern("example.com");
  EXPECT_EQ(interner.intern("example.com"), id);
  EXPECT_EQ(interner.size(), 1u);
}

TEST(InternerTest, LookupRoundTrips) {
  StringInterner interner;
  const auto id = interner.intern("www.example.org");
  EXPECT_EQ(interner.lookup(id), "www.example.org");
}

TEST(InternerTest, FindReturnsNulloptForUnknown) {
  StringInterner interner;
  interner.intern("known");
  EXPECT_TRUE(interner.find("known").has_value());
  EXPECT_FALSE(interner.find("unknown").has_value());
}

TEST(InternerTest, LookupOutOfRangeThrows) {
  StringInterner interner;
  EXPECT_THROW(interner.lookup(0), PreconditionError);
}

TEST(InternerTest, StorageSurvivesGrowth) {
  // string_view keys must stay valid as the deque grows.
  StringInterner interner;
  std::vector<StringInterner::Id> ids;
  for (int i = 0; i < 10000; ++i) {
    ids.push_back(interner.intern("domain-" + std::to_string(i) + ".example.com"));
  }
  for (int i = 0; i < 10000; ++i) {
    EXPECT_EQ(interner.lookup(ids[i]), "domain-" + std::to_string(i) + ".example.com");
    EXPECT_EQ(interner.find("domain-" + std::to_string(i) + ".example.com"), ids[i]);
  }
}

TEST(InternerTest, EmptyStringIsInternable) {
  StringInterner interner;
  const auto id = interner.intern("");
  EXPECT_EQ(interner.lookup(id), "");
  EXPECT_EQ(interner.intern(""), id);
}

}  // namespace
}  // namespace seg::util
