#include "util/histogram.h"

#include <gtest/gtest.h>

#include "util/require.h"

namespace seg::util {
namespace {

TEST(HistogramTest, EmptyHistogram) {
  Histogram h;
  EXPECT_TRUE(h.empty());
  EXPECT_EQ(h.total(), 0u);
  EXPECT_EQ(h.count(5), 0u);
  EXPECT_DOUBLE_EQ(h.fraction_above(0), 0.0);
  EXPECT_THROW(h.mean(), PreconditionError);
  EXPECT_THROW(h.min_value(), PreconditionError);
  EXPECT_THROW(h.quantile(0.5), PreconditionError);
}

TEST(HistogramTest, AddAndCount) {
  Histogram h;
  h.add(3);
  h.add(3);
  h.add(7, 5);
  EXPECT_EQ(h.count(3), 2u);
  EXPECT_EQ(h.count(7), 5u);
  EXPECT_EQ(h.total(), 7u);
  EXPECT_EQ(h.min_value(), 3u);
  EXPECT_EQ(h.max_value(), 7u);
}

TEST(HistogramTest, Mean) {
  Histogram h;
  h.add(1, 2);
  h.add(4, 2);
  EXPECT_DOUBLE_EQ(h.mean(), 2.5);
}

TEST(HistogramTest, FractionAbove) {
  Histogram h;
  h.add(1, 30);
  h.add(2, 40);
  h.add(5, 30);
  EXPECT_DOUBLE_EQ(h.fraction_above(1), 0.7);  // the paper's "70% query > 1" stat
  EXPECT_DOUBLE_EQ(h.fraction_above(2), 0.3);
  EXPECT_DOUBLE_EQ(h.fraction_above(5), 0.0);
  EXPECT_DOUBLE_EQ(h.fraction_above(0), 1.0);
}

TEST(HistogramTest, Quantile) {
  Histogram h;
  for (std::uint64_t v = 1; v <= 100; ++v) {
    h.add(v);
  }
  EXPECT_EQ(h.quantile(0.0), 1u);
  EXPECT_EQ(h.quantile(0.5), 50u);
  EXPECT_EQ(h.quantile(0.9999), 100u);
  EXPECT_EQ(h.quantile(1.0), 100u);
  EXPECT_THROW(h.quantile(1.5), PreconditionError);
}

TEST(HistogramTest, ItemsAreSortedByValue) {
  Histogram h;
  h.add(9);
  h.add(2);
  h.add(5);
  const auto items = h.items();
  ASSERT_EQ(items.size(), 3u);
  EXPECT_EQ(items[0].first, 2u);
  EXPECT_EQ(items[1].first, 5u);
  EXPECT_EQ(items[2].first, 9u);
}

TEST(HistogramTest, RenderMentionsValuesAndCollapsesTail) {
  Histogram h;
  for (std::uint64_t v = 0; v < 40; ++v) {
    h.add(v, v + 1);
  }
  const auto text = h.render(/*max_rows=*/10, /*width=*/20);
  EXPECT_NE(text.find(">="), std::string::npos);
  EXPECT_NE(text.find('#'), std::string::npos);
}

TEST(HistogramTest, RenderEmpty) {
  Histogram h;
  EXPECT_EQ(h.render(), "(empty histogram)\n");
}

}  // namespace
}  // namespace seg::util
