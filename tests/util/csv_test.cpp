#include "util/csv.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

#include "util/require.h"

namespace seg::util {
namespace {

class DsvTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = (std::filesystem::temp_directory_path() /
             ("seg_dsv_test_" + std::to_string(::getpid()) + ".tsv"))
                .string();
  }
  void TearDown() override { std::filesystem::remove(path_); }

  std::string path_;
};

TEST_F(DsvTest, WriteThenReadRoundTrip) {
  {
    DsvWriter writer(path_);
    writer.write_comment("header comment");
    writer.write_row(std::vector<std::string>{"m1", "example.com", "3"});
    writer.write_row(std::vector<std::string>{"m2", "evil.biz", "7"});
  }
  DsvReader reader(path_);
  std::vector<std::string_view> fields;
  ASSERT_TRUE(reader.next(fields));
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[0], "m1");
  EXPECT_EQ(fields[1], "example.com");
  ASSERT_TRUE(reader.next(fields));
  EXPECT_EQ(fields[1], "evil.biz");
  EXPECT_FALSE(reader.next(fields));
}

TEST_F(DsvTest, SkipsBlankLinesAndComments) {
  {
    std::ofstream out(path_);
    out << "# comment\n\n  \na\tb\n# another\nc\td\n";
  }
  DsvReader reader(path_);
  std::vector<std::string_view> fields;
  ASSERT_TRUE(reader.next(fields));
  EXPECT_EQ(fields[0], "a");
  ASSERT_TRUE(reader.next(fields));
  EXPECT_EQ(fields[0], "c");
  EXPECT_FALSE(reader.next(fields));
}

TEST_F(DsvTest, ToleratesCrlf) {
  {
    std::ofstream out(path_);
    out << "a\tb\r\nc\td\r\n";
  }
  DsvReader reader(path_);
  std::vector<std::string_view> fields;
  ASSERT_TRUE(reader.next(fields));
  ASSERT_EQ(fields.size(), 2u);
  EXPECT_EQ(fields[1], "b");  // no trailing \r
}

TEST_F(DsvTest, TracksLineNumbers) {
  {
    std::ofstream out(path_);
    out << "# c\nrow1\n\nrow2\n";
  }
  DsvReader reader(path_);
  std::vector<std::string_view> fields;
  ASSERT_TRUE(reader.next(fields));
  EXPECT_EQ(reader.line_number(), 2u);
  ASSERT_TRUE(reader.next(fields));
  EXPECT_EQ(reader.line_number(), 4u);
}

TEST_F(DsvTest, CustomDelimiter) {
  {
    DsvWriter writer(path_, ',');
    writer.write_row(std::vector<std::string>{"1", "2", "3"});
  }
  DsvReader reader(path_, ',');
  std::vector<std::string_view> fields;
  ASSERT_TRUE(reader.next(fields));
  EXPECT_EQ(fields.size(), 3u);
}

TEST(DsvErrorTest, MissingFileThrows) {
  EXPECT_THROW(DsvReader("/nonexistent/path/file.tsv"), ParseError);
}

TEST(DsvErrorTest, UnwritablePathThrows) {
  EXPECT_THROW(DsvWriter("/nonexistent/dir/file.tsv"), ParseError);
}

}  // namespace
}  // namespace seg::util
