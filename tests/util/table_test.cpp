#include "util/table.h"

#include <gtest/gtest.h>

#include "util/require.h"

namespace seg::util {
namespace {

TEST(TextTableTest, RejectsEmptyHeader) {
  EXPECT_THROW(TextTable({}), PreconditionError);
}

TEST(TextTableTest, RejectsWrongArity) {
  TextTable table({"a", "b"});
  EXPECT_THROW(table.add_row({"only-one"}), PreconditionError);
}

TEST(TextTableTest, RendersAlignedColumns) {
  TextTable table({"Source", "Domains"});
  table.add_row({"ISP1, Day 1", "9M"});
  table.add_row({"ISP2", "10.2M"});
  const auto text = table.render();
  // Header, rule, two rows.
  EXPECT_NE(text.find("Source"), std::string::npos);
  EXPECT_NE(text.find("ISP1, Day 1 | 9M"), std::string::npos);
  EXPECT_NE(text.find("---"), std::string::npos);
  // All lines equal length (aligned).
  std::size_t pos = 0;
  std::size_t expected = std::string::npos;
  while (pos < text.size()) {
    const auto end = text.find('\n', pos);
    const auto len = end - pos;
    if (expected == std::string::npos) {
      expected = len;
    }
    EXPECT_EQ(len, expected);
    pos = end + 1;
  }
}

TEST(TextTableTest, RowCount) {
  TextTable table({"x"});
  EXPECT_EQ(table.row_count(), 0u);
  table.add_row({"1"});
  EXPECT_EQ(table.row_count(), 1u);
}

}  // namespace
}  // namespace seg::util
