// Whole-program seg-lint tests: project model, layering, include cycles,
// cross-TU symbol index / ODR, the report/baseline layer, and the v3
// interprocedural passes (call graph, R-DET3 dataflow, R-EXC1, R-SUP1,
// the analysis cache, and thread-count determinism).
#include "util/lint/project_model.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "util/lint/analysis_cache.h"
#include "util/lint/call_graph.h"
#include "util/lint/dataflow.h"
#include "util/lint/report.h"
#include "util/lint/symbol_index.h"
#include "util/parallel.h"

namespace seg::lint {
namespace {

using Files = std::vector<std::pair<std::string, std::string>>;

constexpr std::string_view kLayersToml = R"toml(
# test layering: util -> dns -> core
[[layer]]
name = "util"
paths = ["src/util/"]
allow = []

[[layer]]
name = "dns"
paths = ["src/dns/"]
allow = ["util"]

[[layer]]
name = "core"
paths = ["src/core/"]
allow = ["util", "dns"]

[[layer]]
name = "tools"
paths = ["tools/"]
allow = ["*"]
)toml";

LayersConfig test_layers() { return parse_layers(kLayersToml); }

std::vector<Finding> findings_for(const Files& files, const char* rule) {
  const auto model = ProjectModel::from_memory(files, test_layers());
  std::vector<Finding> all;
  if (std::string_view(rule) == "R-ARCH1") {
    all = check_layering(model);
  } else if (std::string_view(rule) == "R-ARCH2") {
    all = check_include_cycles(model);
  } else if (std::string_view(rule) == "R-ODR1") {
    all = check_odr(SymbolIndex::build(model), model);
  }
  return all;
}

TEST(LayersToml, ParsesNamesPathsAndAllows) {
  const auto layers = test_layers();
  ASSERT_EQ(layers.layers.size(), 4u);
  EXPECT_EQ(layers.layers[1].name, "dns");
  EXPECT_EQ(layers.layer_of("src/dns/query_log.cpp"), 1u);
  EXPECT_EQ(layers.layer_of("/abs/path/src/core/segugio.h"), 2u);
  EXPECT_EQ(layers.layer_of("README.md"), LayersConfig::npos);
  EXPECT_TRUE(layers.allowed(1, 0));   // dns -> util
  EXPECT_FALSE(layers.allowed(1, 2));  // dns -> core
  EXPECT_TRUE(layers.allowed(3, 2));   // tools -> anything via "*"
  EXPECT_TRUE(layers.allowed(1, 1));   // same layer
  EXPECT_TRUE(layers.allowed(LayersConfig::npos, 2));  // unlayered file
}

TEST(LayersToml, RejectsMalformedInput) {
  EXPECT_THROW(parse_layers("name = \"x\"\n"), std::runtime_error);  // key before table
  EXPECT_THROW(parse_layers("[[layer]]\nname = unquoted\n"), std::runtime_error);
  EXPECT_THROW(parse_layers("[[layer]]\nbogus = \"x\"\n"), std::runtime_error);
  EXPECT_THROW(parse_layers("[[layer]]\nname = \"a\"\nallow = [\"ghost\"]\n"),
               std::runtime_error);  // allow references unknown layer
}

TEST(Layering, CrossLayerIncludeFailsWithChain) {
  // Seeded violation from the issue spec: dns-layer code includes core.
  const Files files = {
      {"src/core/pipeline.h", "#pragma once\nint core_api();\n"},
      {"src/dns/resolver.h",
       "#pragma once\n#include \"core/pipeline.h\"\nint resolve();\n"},
      {"src/dns/resolver.cpp", "#include \"dns/resolver.h\"\nint resolve() { return core_api(); }\n"},
  };
  const auto findings = findings_for(files, "R-ARCH1");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "R-ARCH1");
  EXPECT_EQ(findings[0].file, "src/dns/resolver.h");
  EXPECT_EQ(findings[0].line, 2u);  // the #include line
  EXPECT_NE(findings[0].message.find("'dns' code includes \"core/pipeline.h\""),
            std::string::npos);
  EXPECT_NE(findings[0].message.find("allowed: util"), std::string::npos);
  // The chain names how a translation unit reaches the bad edge.
  EXPECT_NE(findings[0].message.find("src/dns/resolver.cpp -> src/dns/resolver.h "
                                     "-> src/core/pipeline.h"),
            std::string::npos);
}

TEST(Layering, AllowedAndWildcardIncludesPass) {
  const Files files = {
      {"src/util/strings.h", "#pragma once\nint trim();\n"},
      {"src/dns/name.h", "#pragma once\n#include \"util/strings.h\"\n"},
      {"src/core/top.h", "#pragma once\n#include \"dns/name.h\"\n"},
      {"tools/cli.cpp", "#include \"core/top.h\"\nint main() { return 0; }\n"},
  };
  EXPECT_TRUE(findings_for(files, "R-ARCH1").empty());
}

TEST(Layering, ArchCategorySuppressionCoversDeliberateException) {
  const Files files = {
      {"src/core/pipeline.h", "#pragma once\n"},
      {"src/dns/resolver.h",
       "#pragma once\n"
       "// seg-lint: allow(arch) -- deliberate exception for the test\n"
       "#include \"core/pipeline.h\"\n"},
  };
  EXPECT_TRUE(findings_for(files, "R-ARCH1").empty());
  // The category form covers both ARCH rules; an unrelated rule does not.
  EXPECT_TRUE(suppression_covers("arch", "R-ARCH1"));
  EXPECT_TRUE(suppression_covers("arch", "R-ARCH2"));
  EXPECT_FALSE(suppression_covers("arch", "R-ODR1"));
  EXPECT_TRUE(suppression_covers("R-ARCH1", "R-ARCH1"));
  EXPECT_FALSE(suppression_covers("R-ARCH1", "R-ARCH2"));
}

TEST(IncludeCycles, TwoFileCycleReportedOnceWithPath) {
  const Files files = {
      {"src/util/a.h", "#pragma once\n#include \"util/b.h\"\n"},
      {"src/util/b.h", "#pragma once\n#include \"util/a.h\"\n"},
      {"src/util/a.cpp", "#include \"util/a.h\"\n"},
  };
  const auto findings = findings_for(files, "R-ARCH2");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "R-ARCH2");
  // Reported once, on the lexicographically first member.
  EXPECT_EQ(findings[0].file, "src/util/a.h");
  EXPECT_NE(findings[0].message.find(
                "src/util/a.h -> src/util/b.h -> src/util/a.h"),
            std::string::npos);
}

TEST(IncludeCycles, SelfIncludeAndAcyclicTree) {
  const Files cyclic = {{"src/util/self.h", "#pragma once\n#include \"util/self.h\"\n"}};
  const auto findings = findings_for(cyclic, "R-ARCH2");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_NE(findings[0].message.find("src/util/self.h -> src/util/self.h"),
            std::string::npos);

  const Files acyclic = {
      {"src/util/base.h", "#pragma once\n"},
      {"src/util/mid.h", "#pragma once\n#include \"util/base.h\"\n"},
      {"src/util/top.cpp", "#include \"util/mid.h\"\n#include \"util/base.h\"\n"},
  };
  EXPECT_TRUE(findings_for(acyclic, "R-ARCH2").empty());
}

TEST(SymbolIndex, RecordsQualifiedNamesArityAndLinkage) {
  const Files files = {{"src/util/sym.cpp", R"cpp(
namespace seg::util {
int free_fn(int a, double b) { return a + static_cast<int>(b); }
class Widget {
 public:
  int method(int x) { return x; }
};
namespace {
int hidden() { return 1; }
}  // namespace
static int file_local(int) { return 2; }
}  // namespace seg::util
)cpp"}};
  const auto model = ProjectModel::from_memory(files, test_layers());
  const auto index = SymbolIndex::build(model);

  const auto find = [&](std::string_view qualified) -> const SymbolRecord* {
    for (const auto& record : index.records()) {
      if (record.qualified_name == qualified) {
        return &record;
      }
    }
    return nullptr;
  };
  const auto* free_fn = find("seg::util::free_fn");
  ASSERT_NE(free_fn, nullptr);
  EXPECT_EQ(free_fn->arity, 2u);
  EXPECT_TRUE(free_fn->has_body);
  EXPECT_FALSE(free_fn->is_inline);
  EXPECT_FALSE(free_fn->internal);

  const auto* method = find("seg::util::Widget::method");
  ASSERT_NE(method, nullptr);
  EXPECT_TRUE(method->is_inline) << "class-member definitions are implicitly inline";

  const auto* hidden = find("seg::util::hidden");
  ASSERT_NE(hidden, nullptr);
  EXPECT_TRUE(hidden->internal) << "anonymous namespace has internal linkage";

  const auto* file_local = find("seg::util::file_local");
  ASSERT_NE(file_local, nullptr);
  EXPECT_TRUE(file_local->internal) << "static functions have internal linkage";
}

TEST(Odr, DivergentInlineBodiesAcrossTUsNamesBothDefinitions) {
  // Seeded ODR pair from the issue spec: same inline function, different
  // bodies, reached from two translation units.
  const Files files = {
      {"src/util/first.h", "#pragma once\ninline int answer() { return 41; }\n"},
      {"src/util/second.h", "#pragma once\ninline int answer() { return 42; }\n"},
      {"src/util/one.cpp", "#include \"util/first.h\"\nint one() { return answer(); }\n"},
      {"src/util/two.cpp", "#include \"util/second.h\"\nint two() { return answer(); }\n"},
  };
  const auto findings = findings_for(files, "R-ODR1");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "R-ODR1");
  EXPECT_NE(findings[0].message.find("divergent inline definitions of 'answer(0 args)'"),
            std::string::npos);
  EXPECT_NE(findings[0].message.find("src/util/first.h:2"), std::string::npos);
  EXPECT_NE(findings[0].message.find("src/util/second.h:2"), std::string::npos);
}

TEST(Odr, IdenticalInlineBodiesAreLegal) {
  const Files files = {
      {"src/util/first.h", "#pragma once\ninline int answer() { return 42; }\n"},
      {"src/util/second.h", "#pragma once\ninline int answer() { return 42; }\n"},
      {"src/util/one.cpp", "#include \"util/first.h\"\n"},
      {"src/util/two.cpp", "#include \"util/second.h\"\n"},
  };
  EXPECT_TRUE(findings_for(files, "R-ODR1").empty());
}

TEST(Odr, MultipleNonInlineDefinitionsAcrossTUs) {
  const Files files = {
      {"src/util/one.cpp", "int shared_fn(int v) { return v; }\n"},
      {"src/util/two.cpp", "int shared_fn(int v) { return v + 1; }\n"},
  };
  const auto findings = findings_for(files, "R-ODR1");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_NE(findings[0].message.find("multiple definitions of 'shared_fn(1 args)'"),
            std::string::npos);
  EXPECT_NE(findings[0].message.find("src/util/one.cpp:1"), std::string::npos);
  EXPECT_NE(findings[0].message.find("src/util/two.cpp:1"), std::string::npos);
}

TEST(Odr, DifferentSignaturesAreOverloadsNotViolations) {
  const Files files = {
      {"src/util/one.cpp", "int shared_fn(int v) { return v; }\n"},
      {"src/util/two.cpp", "int shared_fn(double v) { return static_cast<int>(v); }\n"},
  };
  // Same name and arity but different parameter types: distinct overloads.
  EXPECT_TRUE(findings_for(files, "R-ODR1").empty());
}

TEST(Odr, ParameterNamesDoNotSplitSignatures) {
  const Files files = {
      {"src/util/one.cpp", "int shared_fn(int alpha) { return alpha; }\n"},
      {"src/util/two.cpp", "int shared_fn(int beta) { return beta + 1; }\n"},
  };
  EXPECT_EQ(findings_for(files, "R-ODR1").size(), 1u)
      << "signatures must normalize away parameter names";
}

TEST(Odr, NonInlineHeaderDefinitionIncludedByTwoTUs) {
  const Files files = {
      {"src/util/helper.h", "#pragma once\nint helper(int v) { return v; }\n"},
      {"src/util/one.cpp", "#include \"util/helper.h\"\n"},
      {"src/util/two.cpp", "#include \"util/helper.h\"\n"},
  };
  const auto findings = findings_for(files, "R-ODR1");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].file, "src/util/helper.h");
  EXPECT_NE(findings[0].message.find("included by 2 translation units"),
            std::string::npos);
  EXPECT_NE(findings[0].message.find("mark it inline"), std::string::npos);

  // The same header reached from a single TU is fine.
  const Files single = {
      {"src/util/helper.h", "#pragma once\nint helper(int v) { return v; }\n"},
      {"src/util/one.cpp", "#include \"util/helper.h\"\n"},
  };
  EXPECT_TRUE(findings_for(single, "R-ODR1").empty());
}

TEST(Odr, InternalLinkageAndMacroShapesAreExempt) {
  const Files files = {
      {"src/util/one.cpp",
       "namespace { int worker() { return 1; } }\nstatic int local() { return 2; }\n"},
      {"src/util/two.cpp",
       "namespace { int worker() { return 3; } }\nstatic int local() { return 4; }\n"},
      {"tests/util/a_test.cpp", "TEST(Suite, Name) { int x = 0; }\n"},
      {"tests/util/b_test.cpp", "TEST(Suite, Name) { int y = 1; }\n"},
  };
  EXPECT_TRUE(findings_for(files, "R-ODR1").empty());
}

TEST(Report, NormalizePathStripsCheckoutPrefixes) {
  EXPECT_EQ(normalize_path("/root/repo/src/util/a.h"), "src/util/a.h");
  EXPECT_EQ(normalize_path("/tmp/seg-lint-diff-x/tests/core/t.cpp"),
            "tests/core/t.cpp");
  EXPECT_EQ(normalize_path("src/util/a.h"), "src/util/a.h");
  EXPECT_EQ(normalize_path("no/known/root.cpp"), "no/known/root.cpp");
  // Same finding from an absolute checkout and a scratch tree: same key.
  const Finding abs_form{"/root/repo/src/util/a.h", 3, "R-HDR1", "msg"};
  const Finding scratch_form{"/tmp/x/src/util/a.h", 9, "R-HDR1", "msg"};
  EXPECT_EQ(finding_key(abs_form), finding_key(scratch_form));
  // Line numbers are excluded from keys; rule and message are not.
  const Finding other_rule{"/root/repo/src/util/a.h", 3, "R-HDR2", "msg"};
  EXPECT_NE(finding_key(abs_form), finding_key(other_rule));
}

TEST(Report, JsonRoundTripsThroughBaselineKeys) {
  const std::vector<Finding> findings = {
      {"src/util/a.h", 3, "R-DET2", "iterating 'seen' (std::unordered_map)"},
      {"src/core/b.cpp", 7, "R-RACE1", "std::vector<bool> with \"quotes\"\nand newline"},
  };
  std::ostringstream out;
  write_json(out, findings);
  const auto keys = load_baseline_keys(out.str());
  ASSERT_EQ(keys.size(), 2u);
  EXPECT_EQ(keys[0], finding_key(findings[0]));
  EXPECT_EQ(keys[1], finding_key(findings[1]));

  // Subtracting a finding list from its own baseline leaves nothing…
  EXPECT_TRUE(subtract_baseline(findings, keys).empty());
  // …and subtraction is multiset-style: two equal findings, one baselined.
  std::vector<Finding> doubled = {findings[0], findings[0]};
  const auto remaining =
      subtract_baseline(doubled, {finding_key(findings[0])});
  ASSERT_EQ(remaining.size(), 1u);
  EXPECT_EQ(remaining[0].rule, "R-DET2");
}

TEST(Report, LoadBaselineRejectsMalformedJson) {
  EXPECT_THROW(load_baseline_keys("{"), std::runtime_error);
  EXPECT_THROW(load_baseline_keys("{\"findings\": [{\"rule\": \"R-X\"}]}"),
               std::runtime_error);  // entry missing "file"
  EXPECT_THROW(load_baseline_keys("{\"findings\": [3"), std::runtime_error);
  // Unknown fields and absent findings arrays are tolerated.
  EXPECT_TRUE(load_baseline_keys("{\"version\": 1, \"extra\": [1, {\"a\": true}]}")
                  .empty());
  EXPECT_TRUE(load_baseline_keys("{\"findings\": []}").empty());
}

TEST(Report, SarifGoldenDocument) {
  const std::vector<Finding> findings = {
      {"/root/repo/src/util/a.h", 2, "R-ARCH2",
       "include cycle: src/util/a.h -> src/util/b.h -> src/util/a.h"},
  };
  std::ostringstream out;
  write_sarif(out, findings);
  const std::string golden = R"({
  "$schema": "https://json.schemastore.org/sarif-2.1.0.json",
  "version": "2.1.0",
  "runs": [
    {
      "tool": {
        "driver": {
          "name": "seg-lint",
          "version": "3.0.0",
          "informationUri": "docs/static-analysis.md",
          "rules": [
            {"id": "R-ARCH2", "shortDescription": {"text": "the quoted-include graph must stay acyclic"}}
          ]
        }
      },
      "results": [
        {
          "ruleId": "R-ARCH2",
          "level": "error",
          "message": {"text": "include cycle: src/util/a.h -> src/util/b.h -> src/util/a.h"},
          "locations": [
            {"physicalLocation": {"artifactLocation": {"uri": "src/util/a.h"}, "region": {"startLine": 2}}}
          ]
        }
      ]
    }
  ]
}
)";
  EXPECT_EQ(out.str(), golden);
}

TEST(Report, EmptyFindingsProduceValidDocuments) {
  std::ostringstream json;
  write_json(json, {});
  EXPECT_TRUE(load_baseline_keys(json.str()).empty());
  std::ostringstream sarif;
  write_sarif(sarif, {});
  EXPECT_NE(sarif.str().find("\"results\": []"), std::string::npos);
  EXPECT_NE(sarif.str().find("\"rules\": []"), std::string::npos);
}

// --- seg-lint v3: call graph ----------------------------------------------

// Whole-program lint over an in-memory tree, filtered to the rules under
// test so unrelated per-file rules cannot leak into the assertions.
std::vector<Finding> lint_tree(const Files& files, std::vector<std::string> only) {
  const auto model = ProjectModel::from_memory(files, test_layers());
  LintOptions options;
  options.only_rules = std::move(only);
  return lint_model(model, options);
}

const SymbolRecord* record_named(const SymbolIndex& index, std::string_view name,
                                 std::size_t arity) {
  for (const auto& record : index.records()) {
    if (record.name == name && record.arity == arity && record.has_body) {
      return &record;
    }
  }
  return nullptr;
}

TEST(CallGraph, ResolvesOverloadsByArity) {
  const Files files = {{"src/core/cg.cpp", R"cpp(
int pick(int a) { return a; }
int pick(int a, int b) { return a + b; }
int caller() { return pick(1) + pick(1, 2); }
)cpp"}};
  const auto model = ProjectModel::from_memory(files, test_layers());
  const auto index = SymbolIndex::build(model);
  const auto graph = CallGraph::build(index, model);

  const auto one = graph.resolve("pick", 1);
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(index.records()[one[0]].arity, 1u);
  const auto two = graph.resolve("pick", 2);
  ASSERT_EQ(two.size(), 1u);
  EXPECT_EQ(index.records()[two[0]].arity, 2u);
  // No arity matches: conservative fallback to every same-name definition.
  EXPECT_EQ(graph.resolve("pick", 5).size(), 2u);
  EXPECT_TRUE(graph.resolve("ghost", 0).empty());

  // The caller's callee list reaches both overloads, one per call site.
  const auto* caller = record_named(index, "caller", 0);
  ASSERT_NE(caller, nullptr);
  const std::size_t caller_at =
      static_cast<std::size_t>(caller - index.records().data());
  EXPECT_EQ(graph.callees()[caller_at].size(), 2u);
}

TEST(CallGraph, TemplatesAndExternCDefinitionsAreNodes) {
  const Files files = {{"src/core/shapes.cpp", R"cpp(
template <typename T>
T ident(T value) { return value; }
extern "C" int c_entry(int value) { return ident(value); }
)cpp"}};
  const auto model = ProjectModel::from_memory(files, test_layers());
  const auto index = SymbolIndex::build(model);
  const auto graph = CallGraph::build(index, model);

  const auto* tmpl = record_named(index, "ident", 1);
  ASSERT_NE(tmpl, nullptr) << "template definitions must be indexed";
  const auto* centry = record_named(index, "c_entry", 1);
  ASSERT_NE(centry, nullptr) << "extern \"C\" definitions must be indexed";
  const std::size_t centry_at =
      static_cast<std::size_t>(centry - index.records().data());
  const std::size_t tmpl_at =
      static_cast<std::size_t>(tmpl - index.records().data());
  const auto& callees = graph.callees()[centry_at];
  EXPECT_NE(std::find(callees.begin(), callees.end(), tmpl_at), callees.end())
      << "the extern \"C\" body calls the template";
}

// --- seg-lint v3: R-DET3 interprocedural determinism ----------------------

TEST(Det3, DirectUnorderedIterationIntoStreamIsFlagged) {
  const Files files = {{"src/core/emit.cpp", R"cpp(
void dump(const std::unordered_map<std::string, int>& counts) {
  for (const auto& [name, count] : counts) {
    std::cout << name << " " << count << "\n";
  }
}
)cpp"}};
  // Both bindings reach the stream; findings sort by message, 'count' first.
  const auto findings = lint_tree(files, {"R-DET3"});
  ASSERT_EQ(findings.size(), 2u);
  EXPECT_EQ(findings[0].rule, "R-DET3");
  EXPECT_EQ(findings[0].file, "src/core/emit.cpp");
  EXPECT_NE(findings[0].message.find("'count'"), std::string::npos);
  EXPECT_NE(findings[1].message.find("'name'"), std::string::npos);
  EXPECT_NE(findings[0].message.find("reaches output stream 'cout'"),
            std::string::npos);
}

TEST(Det3, SortBeforeEmitIsClean) {
  const Files files = {{"src/core/sorted.cpp", R"cpp(
void dump(const std::unordered_map<std::string, int>& counts) {
  std::vector<std::string> names;
  for (const auto& [name, count] : counts) {
    names.push_back(name);
  }
  std::sort(names.begin(), names.end());
  for (const auto& name : names) {
    std::cout << name << "\n";
  }
}
)cpp"}};
  EXPECT_TRUE(lint_tree(files, {"R-DET3"}).empty());
}

TEST(Det3, CollectIntoOrderedMapIsClean) {
  const Files files = {{"src/core/ordered.cpp", R"cpp(
void dump(const std::unordered_map<std::string, int>& counts) {
  std::map<std::string, int> sorted;
  for (const auto& [name, count] : counts) {
    sorted.emplace(name, count);
  }
  for (const auto& [name, count] : sorted) {
    std::cout << name << " " << count << "\n";
  }
}
)cpp"}};
  EXPECT_TRUE(lint_tree(files, {"R-DET3"}).empty());
}

TEST(Det3, TaintedReturnTracksThroughHelperIntoCaller) {
  const Files files = {{"src/core/chain.cpp", R"cpp(
std::vector<std::string> collect(const std::unordered_set<std::string>& pool) {
  std::vector<std::string> out;
  for (const auto& name : pool) {
    out.push_back(name);
  }
  return out;
}
void emit(const std::unordered_set<std::string>& pool) {
  const auto names = collect(pool);
  for (const auto& name : names) {
    std::cout << name << "\n";
  }
}
)cpp"}};
  const auto findings = lint_tree(files, {"R-DET3"});
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].file, "src/core/chain.cpp");
  // The finding anchors in the caller and names the helper's provenance.
  EXPECT_NE(findings[0].message.find("collect"), std::string::npos);
  EXPECT_NE(findings[0].message.find("reaches output stream 'cout'"),
            std::string::npos);
}

TEST(Det3, TaintedReturnNeutralizedBySortInCaller) {
  const Files files = {{"src/core/chain_sorted.cpp", R"cpp(
std::vector<std::string> collect(const std::unordered_set<std::string>& pool) {
  std::vector<std::string> out;
  for (const auto& name : pool) {
    out.push_back(name);
  }
  return out;
}
void emit(const std::unordered_set<std::string>& pool) {
  auto names = collect(pool);
  std::sort(names.begin(), names.end());
  for (const auto& name : names) {
    std::cout << name << "\n";
  }
}
)cpp"}};
  EXPECT_TRUE(lint_tree(files, {"R-DET3"}).empty());
}

TEST(Det3, TaintedOutParamTracksAcrossFiles) {
  const Files files = {
      {"src/core/fill.h", R"cpp(
#pragma once
inline void fill(const std::unordered_set<std::string>& pool,
                 std::vector<std::string>& sink) {
  for (const auto& name : pool) {
    sink.push_back(name);
  }
}
)cpp"},
      {"src/core/use.cpp", R"cpp(
#include "core/fill.h"
void emit(const std::unordered_set<std::string>& pool) {
  std::vector<std::string> names;
  fill(pool, names);
  for (const auto& name : names) {
    std::cout << name << "\n";
  }
}
)cpp"},
  };
  const auto findings = lint_tree(files, {"R-DET3"});
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].file, "src/core/use.cpp");
  EXPECT_NE(findings[0].message.find("reaches output stream 'cout'"),
            std::string::npos);
}

TEST(Det3, CallbackVisitPatternReachesLambdaSink) {
  const Files files = {{"src/core/visit.cpp", R"cpp(
struct Index {
  std::unordered_map<std::string, int> table;
  void visit(const std::function<void(const std::string&)>& fn) const {
    for (const auto& [key, value] : table) {
      fn(key);
    }
  }
};
void report(const Index& index) {
  index.visit([&](const std::string& key) { std::cout << key << "\n"; });
}
)cpp"}};
  const auto findings = lint_tree(files, {"R-DET3"});
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].file, "src/core/visit.cpp");
  EXPECT_NE(findings[0].message.find("'key'"), std::string::npos);
}

TEST(Det3, SuppressibleAtTheAnchorLine) {
  const Files files = {{"src/core/allowed.cpp", R"cpp(
void dump(const std::unordered_map<std::string, int>& counts) {
  for (const auto& [name, count] : counts) {
    // seg-lint: allow(R-DET3) -- diagnostic dump, order irrelevant
    std::cout << name << "\n";
  }
}
)cpp"}};
  EXPECT_TRUE(lint_tree(files, {"R-DET3"}).empty());
}

// --- seg-lint v3: R-WIRE1 --------------------------------------------------

TEST(Wire1, ComputedSubscriptOnWireSurfaceIsFlagged) {
  const Files files = {{"src/dns/wire/raw.cpp", R"cpp(
unsigned char peek(const unsigned char* data, std::size_t i) {
  const unsigned char value = data[i];
  return value;
}
)cpp"}};
  const auto findings = lint_tree(files, {"R-WIRE1"});
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "R-WIRE1");
  EXPECT_NE(findings[0].message.find("computed subscript"), std::string::npos);
  EXPECT_NE(findings[0].message.find("ByteCursor"), std::string::npos);
}

TEST(Wire1, LiteralSubscriptAllowlistAndNonWirePathsAreClean) {
  // Fixed-lane extraction from an already bounds-checked span stays legal.
  const Files literal = {{"src/dns/wire/lanes.cpp", R"cpp(
unsigned int lane(std::span<const unsigned char> rdata) {
  return rdata[0];
}
)cpp"}};
  EXPECT_TRUE(lint_tree(literal, {"R-WIRE1"}).empty());

  // The ByteCursor implementation itself is where the checks live.
  const Files cursor = {{"src/dns/wire/bytes.h", R"cpp(
#pragma once
inline unsigned char at(std::span<const unsigned char> data, std::size_t i) {
  return data[i];
}
)cpp"}};
  EXPECT_TRUE(lint_tree(cursor, {"R-WIRE1"}).empty());

  // Off the wire surface the rule does not apply at all.
  const Files elsewhere = {{"src/core/buffer.cpp", R"cpp(
unsigned char peek(const unsigned char* data, std::size_t i) {
  const unsigned char value = data[i];
  return value;
}
)cpp"}};
  EXPECT_TRUE(lint_tree(elsewhere, {"R-WIRE1"}).empty());
}

TEST(Wire1, PointerArithmeticOnWireBytesIsFlagged) {
  const Files files = {{"src/dns/wire/walk.cpp", R"cpp(
void walk(const unsigned char* p, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    consume(*p);
    p += 1;
  }
}
)cpp"}};
  const auto findings = lint_tree(files, {"R-WIRE1"});
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_NE(findings[0].message.find("pointer arithmetic"), std::string::npos);
}

// --- seg-lint v3: R-EXC1 ---------------------------------------------------

TEST(Exc1, BareThreadLambdaIsFlagged) {
  const Files files = {{"src/core/spawn.cpp", R"cpp(
void spawn() {
  std::thread worker([] { do_work(); });
  worker.join();
}
)cpp"}};
  const auto findings = lint_tree(files, {"R-EXC1"});
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "R-EXC1");
  EXPECT_NE(findings[0].message.find("std::terminate"), std::string::npos);
}

TEST(Exc1, CatchAllWithCurrentExceptionRoutes) {
  const Files files = {{"src/core/spawn_ok.cpp", R"cpp(
void spawn(std::exception_ptr& error) {
  std::thread worker([&] {
    try {
      do_work();
    } catch (...) {
      error = std::current_exception();
    }
  });
  worker.join();
}
)cpp"}};
  EXPECT_TRUE(lint_tree(files, {"R-EXC1"}).empty());
}

TEST(Exc1, NamedEntryPointJudgedThroughTheCallGraph) {
  const Files routed = {{"src/core/pool.cpp", R"cpp(
void run_loop(std::exception_ptr& error) {
  try {
    work();
  } catch (...) {
    error = std::current_exception();
  }
}
void spawn(std::exception_ptr& error) {
  std::thread t(run_loop, std::ref(error));
  t.join();
}
)cpp"}};
  EXPECT_TRUE(lint_tree(routed, {"R-EXC1"}).empty());

  const Files unrouted = {{"src/core/pool_bad.cpp", R"cpp(
void run_loop() { work(); }
void spawn() {
  std::thread t(run_loop);
  t.join();
}
)cpp"}};
  const auto findings = lint_tree(unrouted, {"R-EXC1"});
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_NE(findings[0].message.find("'run_loop'"), std::string::npos);
}

TEST(Exc1, EmplaceIntoThreadVectorIsASpawnSite) {
  const Files files = {{"src/core/fleet.cpp", R"cpp(
void spawn_fleet(std::size_t n) {
  std::vector<std::thread> fleet;
  for (std::size_t i = 0; i < n; ++i) {
    fleet.emplace_back([] { work(); });
  }
}
)cpp"}};
  const auto findings = lint_tree(files, {"R-EXC1"});
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "R-EXC1");
}

TEST(Exc1, HealthSamplerStyleThreadBodyRoutesThroughParkedPointer) {
  // Mirrors obs::HealthSampler::start(): the sampler thread wraps its whole
  // run loop in catch(...) and parks the exception for stop() to rethrow.
  const Files routed = {{"src/util/obs/sampler.cpp", R"cpp(
void start(std::exception_ptr& error) {
  std::thread sampler([&] {
    try {
      run_loop();
    } catch (...) {
      error = std::current_exception();
    }
  });
  sampler.join();
}
)cpp"}};
  EXPECT_TRUE(lint_tree(routed, {"R-EXC1"}).empty());

  // Dropping the routing — a bare run_loop() in the thread body — is the
  // std::terminate hazard R-EXC1 exists to catch, obs layer or not.
  const Files unrouted = {{"src/util/obs/sampler_bad.cpp", R"cpp(
void start() {
  std::thread sampler([] { run_loop(); });
  sampler.join();
}
)cpp"}};
  const auto findings = lint_tree(unrouted, {"R-EXC1"});
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "R-EXC1");
}

// --- seg-lint v3: R-SUP1 stale suppressions --------------------------------

TEST(Sup1, StaleDirectiveIsFlaggedUsedDirectiveIsNot) {
  const Files stale = {{"src/core/stale.cpp",
                        "// seg-lint: allow(R-DET1) -- nothing here needs it\n"
                        "int answer() { return 42; }\n"}};
  const auto findings = lint_tree(stale, {"R-SUP1"});
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "R-SUP1");
  EXPECT_EQ(findings[0].line, 1u);
  EXPECT_NE(findings[0].message.find("stale suppression"), std::string::npos);
  EXPECT_NE(findings[0].message.find("allow(R-DET1)"), std::string::npos);

  // A directive that actually covers a finding is used, not stale.
  const Files used = {{"src/core/seeded.cpp",
                       "int jitter() {\n"
                       "  // seg-lint: allow(R-DET1) -- deliberate for the test\n"
                       "  return rand();\n"
                       "}\n"}};
  EXPECT_TRUE(lint_tree(used, {"R-SUP1"}).empty());
}

// --- seg-lint v3: analysis cache and thread-count determinism --------------

Files generated_tree(std::size_t count) {
  Files files;
  for (std::size_t i = 0; i < count; ++i) {
    const std::string n = std::to_string(i);
    files.push_back({"src/core/gen" + n + ".cpp",
                     "void dump" + n +
                         "(const std::unordered_map<int, int>& table) {\n"
                         "  for (const auto& [key, value] : table) {\n"
                         "    std::cout << key << value;\n"
                         "  }\n"
                         "}\n"});
  }
  return files;
}

TEST(Cache, SecondRunReusesScansWithIdenticalFindings) {
  const auto model = ProjectModel::from_memory(generated_tree(6), test_layers());
  LintOptions options;
  AnalysisCache cache;
  const auto first = lint_model(model, options, &cache);
  const auto after_first = cache.stats();
  EXPECT_EQ(after_first.symbol_hits, 0u);
  EXPECT_EQ(after_first.rule_hits, 0u);
  EXPECT_EQ(after_first.symbol_misses, 6u);
  EXPECT_EQ(after_first.rule_misses, 6u);

  const auto second = lint_model(model, options, &cache);
  const auto after_second = cache.stats();
  EXPECT_EQ(after_second.symbol_hits, 6u);
  EXPECT_EQ(after_second.rule_hits, 6u);

  // Byte-identical reports with and without cache reuse.
  std::ostringstream a, b;
  write_sarif(a, first);
  write_sarif(b, second);
  EXPECT_EQ(a.str(), b.str());
  EXPECT_FALSE(first.empty()) << "the fixture must exercise real findings";
}

TEST(ParallelLint, SarifByteIdenticalAcrossThreadCounts) {
  const auto model = ProjectModel::from_memory(generated_tree(12), test_layers());
  LintOptions options;
  util::set_parallelism(1);
  const auto serial = lint_model(model, options);
  util::set_parallelism(8);
  const auto parallel = lint_model(model, options);
  util::set_parallelism(0);  // restore the SEG_THREADS / hardware default

  std::ostringstream one, eight;
  write_sarif(one, serial);
  write_sarif(eight, parallel);
  EXPECT_EQ(one.str(), eight.str());
  EXPECT_FALSE(serial.empty()) << "the fixture must exercise real findings";
}

}  // namespace
}  // namespace seg::lint
