// Whole-program seg-lint v2 tests: project model, layering, include
// cycles, cross-TU symbol index / ODR, and the report/baseline layer.
#include "util/lint/project_model.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "util/lint/report.h"
#include "util/lint/symbol_index.h"

namespace seg::lint {
namespace {

using Files = std::vector<std::pair<std::string, std::string>>;

constexpr std::string_view kLayersToml = R"toml(
# test layering: util -> dns -> core
[[layer]]
name = "util"
paths = ["src/util/"]
allow = []

[[layer]]
name = "dns"
paths = ["src/dns/"]
allow = ["util"]

[[layer]]
name = "core"
paths = ["src/core/"]
allow = ["util", "dns"]

[[layer]]
name = "tools"
paths = ["tools/"]
allow = ["*"]
)toml";

LayersConfig test_layers() { return parse_layers(kLayersToml); }

std::vector<Finding> findings_for(const Files& files, const char* rule) {
  const auto model = ProjectModel::from_memory(files, test_layers());
  std::vector<Finding> all;
  if (std::string_view(rule) == "R-ARCH1") {
    all = check_layering(model);
  } else if (std::string_view(rule) == "R-ARCH2") {
    all = check_include_cycles(model);
  } else if (std::string_view(rule) == "R-ODR1") {
    all = check_odr(SymbolIndex::build(model), model);
  }
  return all;
}

TEST(LayersToml, ParsesNamesPathsAndAllows) {
  const auto layers = test_layers();
  ASSERT_EQ(layers.layers.size(), 4u);
  EXPECT_EQ(layers.layers[1].name, "dns");
  EXPECT_EQ(layers.layer_of("src/dns/query_log.cpp"), 1u);
  EXPECT_EQ(layers.layer_of("/abs/path/src/core/segugio.h"), 2u);
  EXPECT_EQ(layers.layer_of("README.md"), LayersConfig::npos);
  EXPECT_TRUE(layers.allowed(1, 0));   // dns -> util
  EXPECT_FALSE(layers.allowed(1, 2));  // dns -> core
  EXPECT_TRUE(layers.allowed(3, 2));   // tools -> anything via "*"
  EXPECT_TRUE(layers.allowed(1, 1));   // same layer
  EXPECT_TRUE(layers.allowed(LayersConfig::npos, 2));  // unlayered file
}

TEST(LayersToml, RejectsMalformedInput) {
  EXPECT_THROW(parse_layers("name = \"x\"\n"), std::runtime_error);  // key before table
  EXPECT_THROW(parse_layers("[[layer]]\nname = unquoted\n"), std::runtime_error);
  EXPECT_THROW(parse_layers("[[layer]]\nbogus = \"x\"\n"), std::runtime_error);
  EXPECT_THROW(parse_layers("[[layer]]\nname = \"a\"\nallow = [\"ghost\"]\n"),
               std::runtime_error);  // allow references unknown layer
}

TEST(Layering, CrossLayerIncludeFailsWithChain) {
  // Seeded violation from the issue spec: dns-layer code includes core.
  const Files files = {
      {"src/core/pipeline.h", "#pragma once\nint core_api();\n"},
      {"src/dns/resolver.h",
       "#pragma once\n#include \"core/pipeline.h\"\nint resolve();\n"},
      {"src/dns/resolver.cpp", "#include \"dns/resolver.h\"\nint resolve() { return core_api(); }\n"},
  };
  const auto findings = findings_for(files, "R-ARCH1");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "R-ARCH1");
  EXPECT_EQ(findings[0].file, "src/dns/resolver.h");
  EXPECT_EQ(findings[0].line, 2u);  // the #include line
  EXPECT_NE(findings[0].message.find("'dns' code includes \"core/pipeline.h\""),
            std::string::npos);
  EXPECT_NE(findings[0].message.find("allowed: util"), std::string::npos);
  // The chain names how a translation unit reaches the bad edge.
  EXPECT_NE(findings[0].message.find("src/dns/resolver.cpp -> src/dns/resolver.h "
                                     "-> src/core/pipeline.h"),
            std::string::npos);
}

TEST(Layering, AllowedAndWildcardIncludesPass) {
  const Files files = {
      {"src/util/strings.h", "#pragma once\nint trim();\n"},
      {"src/dns/name.h", "#pragma once\n#include \"util/strings.h\"\n"},
      {"src/core/top.h", "#pragma once\n#include \"dns/name.h\"\n"},
      {"tools/cli.cpp", "#include \"core/top.h\"\nint main() { return 0; }\n"},
  };
  EXPECT_TRUE(findings_for(files, "R-ARCH1").empty());
}

TEST(Layering, ArchCategorySuppressionCoversDeliberateException) {
  const Files files = {
      {"src/core/pipeline.h", "#pragma once\n"},
      {"src/dns/resolver.h",
       "#pragma once\n"
       "// seg-lint: allow(arch) -- deliberate exception for the test\n"
       "#include \"core/pipeline.h\"\n"},
  };
  EXPECT_TRUE(findings_for(files, "R-ARCH1").empty());
  // The category form covers both ARCH rules; an unrelated rule does not.
  EXPECT_TRUE(suppression_covers("arch", "R-ARCH1"));
  EXPECT_TRUE(suppression_covers("arch", "R-ARCH2"));
  EXPECT_FALSE(suppression_covers("arch", "R-ODR1"));
  EXPECT_TRUE(suppression_covers("R-ARCH1", "R-ARCH1"));
  EXPECT_FALSE(suppression_covers("R-ARCH1", "R-ARCH2"));
}

TEST(IncludeCycles, TwoFileCycleReportedOnceWithPath) {
  const Files files = {
      {"src/util/a.h", "#pragma once\n#include \"util/b.h\"\n"},
      {"src/util/b.h", "#pragma once\n#include \"util/a.h\"\n"},
      {"src/util/a.cpp", "#include \"util/a.h\"\n"},
  };
  const auto findings = findings_for(files, "R-ARCH2");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "R-ARCH2");
  // Reported once, on the lexicographically first member.
  EXPECT_EQ(findings[0].file, "src/util/a.h");
  EXPECT_NE(findings[0].message.find(
                "src/util/a.h -> src/util/b.h -> src/util/a.h"),
            std::string::npos);
}

TEST(IncludeCycles, SelfIncludeAndAcyclicTree) {
  const Files cyclic = {{"src/util/self.h", "#pragma once\n#include \"util/self.h\"\n"}};
  const auto findings = findings_for(cyclic, "R-ARCH2");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_NE(findings[0].message.find("src/util/self.h -> src/util/self.h"),
            std::string::npos);

  const Files acyclic = {
      {"src/util/base.h", "#pragma once\n"},
      {"src/util/mid.h", "#pragma once\n#include \"util/base.h\"\n"},
      {"src/util/top.cpp", "#include \"util/mid.h\"\n#include \"util/base.h\"\n"},
  };
  EXPECT_TRUE(findings_for(acyclic, "R-ARCH2").empty());
}

TEST(SymbolIndex, RecordsQualifiedNamesArityAndLinkage) {
  const Files files = {{"src/util/sym.cpp", R"cpp(
namespace seg::util {
int free_fn(int a, double b) { return a + static_cast<int>(b); }
class Widget {
 public:
  int method(int x) { return x; }
};
namespace {
int hidden() { return 1; }
}  // namespace
static int file_local(int) { return 2; }
}  // namespace seg::util
)cpp"}};
  const auto model = ProjectModel::from_memory(files, test_layers());
  const auto index = SymbolIndex::build(model);

  const auto find = [&](std::string_view qualified) -> const SymbolRecord* {
    for (const auto& record : index.records()) {
      if (record.qualified_name == qualified) {
        return &record;
      }
    }
    return nullptr;
  };
  const auto* free_fn = find("seg::util::free_fn");
  ASSERT_NE(free_fn, nullptr);
  EXPECT_EQ(free_fn->arity, 2u);
  EXPECT_TRUE(free_fn->has_body);
  EXPECT_FALSE(free_fn->is_inline);
  EXPECT_FALSE(free_fn->internal);

  const auto* method = find("seg::util::Widget::method");
  ASSERT_NE(method, nullptr);
  EXPECT_TRUE(method->is_inline) << "class-member definitions are implicitly inline";

  const auto* hidden = find("seg::util::hidden");
  ASSERT_NE(hidden, nullptr);
  EXPECT_TRUE(hidden->internal) << "anonymous namespace has internal linkage";

  const auto* file_local = find("seg::util::file_local");
  ASSERT_NE(file_local, nullptr);
  EXPECT_TRUE(file_local->internal) << "static functions have internal linkage";
}

TEST(Odr, DivergentInlineBodiesAcrossTUsNamesBothDefinitions) {
  // Seeded ODR pair from the issue spec: same inline function, different
  // bodies, reached from two translation units.
  const Files files = {
      {"src/util/first.h", "#pragma once\ninline int answer() { return 41; }\n"},
      {"src/util/second.h", "#pragma once\ninline int answer() { return 42; }\n"},
      {"src/util/one.cpp", "#include \"util/first.h\"\nint one() { return answer(); }\n"},
      {"src/util/two.cpp", "#include \"util/second.h\"\nint two() { return answer(); }\n"},
  };
  const auto findings = findings_for(files, "R-ODR1");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "R-ODR1");
  EXPECT_NE(findings[0].message.find("divergent inline definitions of 'answer(0 args)'"),
            std::string::npos);
  EXPECT_NE(findings[0].message.find("src/util/first.h:2"), std::string::npos);
  EXPECT_NE(findings[0].message.find("src/util/second.h:2"), std::string::npos);
}

TEST(Odr, IdenticalInlineBodiesAreLegal) {
  const Files files = {
      {"src/util/first.h", "#pragma once\ninline int answer() { return 42; }\n"},
      {"src/util/second.h", "#pragma once\ninline int answer() { return 42; }\n"},
      {"src/util/one.cpp", "#include \"util/first.h\"\n"},
      {"src/util/two.cpp", "#include \"util/second.h\"\n"},
  };
  EXPECT_TRUE(findings_for(files, "R-ODR1").empty());
}

TEST(Odr, MultipleNonInlineDefinitionsAcrossTUs) {
  const Files files = {
      {"src/util/one.cpp", "int shared_fn(int v) { return v; }\n"},
      {"src/util/two.cpp", "int shared_fn(int v) { return v + 1; }\n"},
  };
  const auto findings = findings_for(files, "R-ODR1");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_NE(findings[0].message.find("multiple definitions of 'shared_fn(1 args)'"),
            std::string::npos);
  EXPECT_NE(findings[0].message.find("src/util/one.cpp:1"), std::string::npos);
  EXPECT_NE(findings[0].message.find("src/util/two.cpp:1"), std::string::npos);
}

TEST(Odr, DifferentSignaturesAreOverloadsNotViolations) {
  const Files files = {
      {"src/util/one.cpp", "int shared_fn(int v) { return v; }\n"},
      {"src/util/two.cpp", "int shared_fn(double v) { return static_cast<int>(v); }\n"},
  };
  // Same name and arity but different parameter types: distinct overloads.
  EXPECT_TRUE(findings_for(files, "R-ODR1").empty());
}

TEST(Odr, ParameterNamesDoNotSplitSignatures) {
  const Files files = {
      {"src/util/one.cpp", "int shared_fn(int alpha) { return alpha; }\n"},
      {"src/util/two.cpp", "int shared_fn(int beta) { return beta + 1; }\n"},
  };
  EXPECT_EQ(findings_for(files, "R-ODR1").size(), 1u)
      << "signatures must normalize away parameter names";
}

TEST(Odr, NonInlineHeaderDefinitionIncludedByTwoTUs) {
  const Files files = {
      {"src/util/helper.h", "#pragma once\nint helper(int v) { return v; }\n"},
      {"src/util/one.cpp", "#include \"util/helper.h\"\n"},
      {"src/util/two.cpp", "#include \"util/helper.h\"\n"},
  };
  const auto findings = findings_for(files, "R-ODR1");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].file, "src/util/helper.h");
  EXPECT_NE(findings[0].message.find("included by 2 translation units"),
            std::string::npos);
  EXPECT_NE(findings[0].message.find("mark it inline"), std::string::npos);

  // The same header reached from a single TU is fine.
  const Files single = {
      {"src/util/helper.h", "#pragma once\nint helper(int v) { return v; }\n"},
      {"src/util/one.cpp", "#include \"util/helper.h\"\n"},
  };
  EXPECT_TRUE(findings_for(single, "R-ODR1").empty());
}

TEST(Odr, InternalLinkageAndMacroShapesAreExempt) {
  const Files files = {
      {"src/util/one.cpp",
       "namespace { int worker() { return 1; } }\nstatic int local() { return 2; }\n"},
      {"src/util/two.cpp",
       "namespace { int worker() { return 3; } }\nstatic int local() { return 4; }\n"},
      {"tests/util/a_test.cpp", "TEST(Suite, Name) { int x = 0; }\n"},
      {"tests/util/b_test.cpp", "TEST(Suite, Name) { int y = 1; }\n"},
  };
  EXPECT_TRUE(findings_for(files, "R-ODR1").empty());
}

TEST(Report, NormalizePathStripsCheckoutPrefixes) {
  EXPECT_EQ(normalize_path("/root/repo/src/util/a.h"), "src/util/a.h");
  EXPECT_EQ(normalize_path("/tmp/seg-lint-diff-x/tests/core/t.cpp"),
            "tests/core/t.cpp");
  EXPECT_EQ(normalize_path("src/util/a.h"), "src/util/a.h");
  EXPECT_EQ(normalize_path("no/known/root.cpp"), "no/known/root.cpp");
  // Same finding from an absolute checkout and a scratch tree: same key.
  const Finding abs_form{"/root/repo/src/util/a.h", 3, "R-HDR1", "msg"};
  const Finding scratch_form{"/tmp/x/src/util/a.h", 9, "R-HDR1", "msg"};
  EXPECT_EQ(finding_key(abs_form), finding_key(scratch_form));
  // Line numbers are excluded from keys; rule and message are not.
  const Finding other_rule{"/root/repo/src/util/a.h", 3, "R-HDR2", "msg"};
  EXPECT_NE(finding_key(abs_form), finding_key(other_rule));
}

TEST(Report, JsonRoundTripsThroughBaselineKeys) {
  const std::vector<Finding> findings = {
      {"src/util/a.h", 3, "R-DET2", "iterating 'seen' (std::unordered_map)"},
      {"src/core/b.cpp", 7, "R-RACE1", "std::vector<bool> with \"quotes\"\nand newline"},
  };
  std::ostringstream out;
  write_json(out, findings);
  const auto keys = load_baseline_keys(out.str());
  ASSERT_EQ(keys.size(), 2u);
  EXPECT_EQ(keys[0], finding_key(findings[0]));
  EXPECT_EQ(keys[1], finding_key(findings[1]));

  // Subtracting a finding list from its own baseline leaves nothing…
  EXPECT_TRUE(subtract_baseline(findings, keys).empty());
  // …and subtraction is multiset-style: two equal findings, one baselined.
  std::vector<Finding> doubled = {findings[0], findings[0]};
  const auto remaining =
      subtract_baseline(doubled, {finding_key(findings[0])});
  ASSERT_EQ(remaining.size(), 1u);
  EXPECT_EQ(remaining[0].rule, "R-DET2");
}

TEST(Report, LoadBaselineRejectsMalformedJson) {
  EXPECT_THROW(load_baseline_keys("{"), std::runtime_error);
  EXPECT_THROW(load_baseline_keys("{\"findings\": [{\"rule\": \"R-X\"}]}"),
               std::runtime_error);  // entry missing "file"
  EXPECT_THROW(load_baseline_keys("{\"findings\": [3"), std::runtime_error);
  // Unknown fields and absent findings arrays are tolerated.
  EXPECT_TRUE(load_baseline_keys("{\"version\": 1, \"extra\": [1, {\"a\": true}]}")
                  .empty());
  EXPECT_TRUE(load_baseline_keys("{\"findings\": []}").empty());
}

TEST(Report, SarifGoldenDocument) {
  const std::vector<Finding> findings = {
      {"/root/repo/src/util/a.h", 2, "R-ARCH2",
       "include cycle: src/util/a.h -> src/util/b.h -> src/util/a.h"},
  };
  std::ostringstream out;
  write_sarif(out, findings);
  const std::string golden = R"({
  "$schema": "https://json.schemastore.org/sarif-2.1.0.json",
  "version": "2.1.0",
  "runs": [
    {
      "tool": {
        "driver": {
          "name": "seg-lint",
          "version": "2.0.0",
          "informationUri": "docs/static-analysis.md",
          "rules": [
            {"id": "R-ARCH2", "shortDescription": {"text": "the quoted-include graph must stay acyclic"}}
          ]
        }
      },
      "results": [
        {
          "ruleId": "R-ARCH2",
          "level": "error",
          "message": {"text": "include cycle: src/util/a.h -> src/util/b.h -> src/util/a.h"},
          "locations": [
            {"physicalLocation": {"artifactLocation": {"uri": "src/util/a.h"}, "region": {"startLine": 2}}}
          ]
        }
      ]
    }
  ]
}
)";
  EXPECT_EQ(out.str(), golden);
}

TEST(Report, EmptyFindingsProduceValidDocuments) {
  std::ostringstream json;
  write_json(json, {});
  EXPECT_TRUE(load_baseline_keys(json.str()).empty());
  std::ostringstream sarif;
  write_sarif(sarif, {});
  EXPECT_NE(sarif.str().find("\"results\": []"), std::string::npos);
  EXPECT_NE(sarif.str().find("\"rules\": []"), std::string::npos);
}

}  // namespace
}  // namespace seg::lint
