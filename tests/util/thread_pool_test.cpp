#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace seg::util {
namespace {

TEST(ThreadPoolTest, DefaultsToAtLeastOneWorker) {
  ThreadPool pool;
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPoolTest, SubmitRunsTask) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  auto future = pool.submit([&] { counter.fetch_add(1); });
  future.get();
  EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPoolTest, ManyTasksAllRun) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.submit([&] { counter.fetch_add(1); }));
  }
  for (auto& f : futures) {
    f.get();
  }
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(1000, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) {
    EXPECT_EQ(h.load(), 1);
  }
}

TEST(ThreadPoolTest, ParallelForZeroCountIsNoop) {
  ThreadPool pool(2);
  bool ran = false;
  pool.parallel_for(0, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPoolTest, ParallelForSingleElement) {
  ThreadPool pool(2);
  int value = 0;
  pool.parallel_for(1, [&](std::size_t i) { value = static_cast<int>(i) + 42; });
  EXPECT_EQ(value, 42);
}

TEST(ThreadPoolTest, ParallelForPropagatesException) {
  ThreadPool pool(2);
  EXPECT_THROW(
      pool.parallel_for(10,
                        [&](std::size_t i) {
                          if (i == 5) {
                            throw std::runtime_error("boom");
                          }
                        }),
      std::runtime_error);
}

TEST(ThreadPoolTest, SubmitPropagatesExceptionThroughFuture) {
  ThreadPool pool(1);
  auto future = pool.submit([] { throw std::logic_error("bad"); });
  EXPECT_THROW(future.get(), std::logic_error);
}

TEST(ThreadPoolTest, DestructorDrainsQueue) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 50; ++i) {
      pool.submit([&] { counter.fetch_add(1); });
    }
  }  // destructor joins after queue drains
  EXPECT_EQ(counter.load(), 50);
}

}  // namespace
}  // namespace seg::util
