// seg::obs v2 longitudinal surface: journal round-trip through the
// validator, drift gauge math (PSI/KS), alert trip/no-trip thresholds,
// and the live health sampler.
#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>
#include <string>

#include "util/obs/drift.h"
#include "util/obs/health.h"
#include "util/obs/journal.h"
#include "util/obs/metrics.h"
#include "util/require.h"

namespace seg::obs {
namespace {

JournalHistogram histogram_of(const std::vector<double>& bounds,
                              const std::vector<double>& observations) {
  JournalHistogram histogram = JournalHistogram::with_bounds(bounds);
  for (const double value : observations) {
    histogram.observe(value);
  }
  return histogram;
}

JournalEntry sample_entry(std::int64_t day) {
  JournalEntry entry;
  entry.day = day;
  entry.add_counter("records", 1000 + static_cast<std::uint64_t>(day));
  entry.add_counter("unknown_domains", 42);
  entry.add_gauge("carry_reuse_ratio", 0.75);
  entry.add_gauge("calibration_threshold", 0.6);
  entry.add_histogram("scores",
                      histogram_of({0.25, 0.5, 0.75, 1.0}, {0.1, 0.3, 0.3, 0.8, 0.99}));
  entry.add_histogram("f1_infected_fraction", histogram_of({0.5, 1.0}, {0.0, 0.2, 0.9}));
  entry.alerts.push_back({"seg_drift_score_psi", 0.31, 0.2});
  entry.add_runtime("ingest_seconds", 0.125);
  return entry;
}

TEST(ObsJournal, HistogramObserveTracksBucketsAndSummary) {
  JournalHistogram histogram = histogram_of({1.0, 2.0}, {0.5, 1.5, 1.5, 5.0});
  ASSERT_EQ(histogram.buckets.size(), 3u);  // two bounds + the +Inf bucket
  EXPECT_EQ(histogram.buckets[0], 1u);
  EXPECT_EQ(histogram.buckets[1], 2u);
  EXPECT_EQ(histogram.buckets[2], 1u);
  EXPECT_EQ(histogram.count, 4u);
  EXPECT_DOUBLE_EQ(histogram.min, 0.5);
  EXPECT_DOUBLE_EQ(histogram.max, 5.0);
  EXPECT_DOUBLE_EQ(histogram.mean, (0.5 + 1.5 + 1.5 + 5.0) / 4.0);
}

TEST(ObsJournal, RoundTripsThroughWriterReaderAndValidator) {
  std::ostringstream out;
  JournalWriter writer(out);
  writer.append(sample_entry(3));
  writer.append(sample_entry(4));
  EXPECT_EQ(writer.entries_written(), 2u);
  const std::string text = out.str();

  EXPECT_EQ(validate_obs_journal(text), "");

  std::istringstream in(text);
  const auto entries = read_journal(in);
  ASSERT_EQ(entries.size(), 2u);
  const JournalEntry& entry = entries[0];
  EXPECT_EQ(entry.day, 3);
  ASSERT_NE(entry.find_counter("records"), nullptr);
  EXPECT_EQ(*entry.find_counter("records"), 1003u);
  ASSERT_NE(entry.find_gauge("carry_reuse_ratio"), nullptr);
  EXPECT_DOUBLE_EQ(*entry.find_gauge("carry_reuse_ratio"), 0.75);
  const JournalHistogram* scores = entry.find_histogram("scores");
  ASSERT_NE(scores, nullptr);
  EXPECT_EQ(scores->count, 5u);
  EXPECT_EQ(scores->buckets, sample_entry(3).find_histogram("scores")->buckets);
  EXPECT_DOUBLE_EQ(scores->mean, sample_entry(3).find_histogram("scores")->mean);
  ASSERT_EQ(entry.alerts.size(), 1u);
  EXPECT_EQ(entry.alerts[0].gauge, "seg_drift_score_psi");
  EXPECT_DOUBLE_EQ(entry.alerts[0].value, 0.31);
  ASSERT_EQ(entry.runtime.size(), 1u);
  EXPECT_DOUBLE_EQ(entry.runtime[0].second, 0.125);
}

TEST(ObsJournal, SerializationIsByteStableForEqualEntries) {
  std::ostringstream first;
  std::ostringstream second;
  write_journal_entry(first, sample_entry(7));
  write_journal_entry(second, sample_entry(7));
  EXPECT_EQ(first.str(), second.str());
}

TEST(ObsJournal, WriterRequiresStrictlyIncreasingDays) {
  std::ostringstream out;
  JournalWriter writer(out);
  writer.append(sample_entry(5));
  EXPECT_THROW(writer.append(sample_entry(5)), util::PreconditionError);
  EXPECT_THROW(writer.append(sample_entry(4)), util::PreconditionError);
}

TEST(ObsJournal, ValidatorRejectsBadHeaderAndMalformedLines) {
  EXPECT_NE(validate_obs_journal(""), "");
  EXPECT_NE(validate_obs_journal("segf1 runreport 1\n"), "");
  EXPECT_NE(validate_obs_journal("segf1 obsjournal 1\nnot json\n"), "");
  EXPECT_NE(validate_obs_journal("segf1 obsjournal 1\n{\"counters\":{}}\n"), "");

  // Non-increasing days.
  std::ostringstream out;
  out << "segf1 obsjournal 1\n";
  write_journal_entry(out, sample_entry(2));
  out << '\n';
  write_journal_entry(out, sample_entry(2));
  out << '\n';
  EXPECT_NE(validate_obs_journal(out.str()), "");
}

TEST(ObsJournal, ValidatorRejectsInconsistentHistograms) {
  // Bucket sum != count.
  std::string text =
      "segf1 obsjournal 1\n"
      "{\"day\":1,\"counters\":{},\"histograms\":{\"scores\":{\"bounds\":[0.5,1.0],"
      "\"buckets\":[1,2,0],\"count\":5,\"mean\":0.4,\"min\":0.1,\"max\":0.9}}}\n";
  EXPECT_NE(validate_obs_journal(text), "");
  // Bucket array length != bounds + 1.
  text =
      "segf1 obsjournal 1\n"
      "{\"day\":1,\"counters\":{},\"histograms\":{\"scores\":{\"bounds\":[0.5,1.0],"
      "\"buckets\":[1,2],\"count\":3,\"mean\":0.4,\"min\":0.1,\"max\":0.9}}}\n";
  EXPECT_NE(validate_obs_journal(text), "");
}

TEST(Drift, PsiIsZeroForIdenticalAndPositiveForShifted) {
  const std::vector<double> bounds = {0.25, 0.5, 0.75, 1.0};
  const JournalHistogram base =
      histogram_of(bounds, {0.1, 0.1, 0.3, 0.3, 0.6, 0.6, 0.9, 0.9});
  EXPECT_DOUBLE_EQ(psi(base, base), 0.0);

  const JournalHistogram shifted =
      histogram_of(bounds, {0.6, 0.6, 0.6, 0.9, 0.9, 0.9, 0.9, 0.9});
  const double drift = psi(base, shifted);
  EXPECT_GT(drift, 0.0);
  // PSI is symmetric in the sense of staying positive either way round.
  EXPECT_GT(psi(shifted, base), 0.0);
}

TEST(Drift, KsStatisticMatchesHandComputedValue) {
  const std::vector<double> bounds = {0.5, 1.0};
  // baseline: 4 in bucket0, 0 in bucket1 -> CDF 1.0, 1.0
  // current:  1 in bucket0, 3 in bucket1 -> CDF 0.25, 1.0
  const JournalHistogram base = histogram_of(bounds, {0.1, 0.2, 0.3, 0.4});
  const JournalHistogram current = histogram_of(bounds, {0.1, 0.6, 0.7, 0.8});
  EXPECT_DOUBLE_EQ(ks_statistic(base, current), 0.75);
  EXPECT_DOUBLE_EQ(ks_statistic(base, base), 0.0);

  const JournalHistogram empty = JournalHistogram::with_bounds(bounds);
  EXPECT_DOUBLE_EQ(ks_statistic(base, empty), 0.0);
}

TEST(Drift, MismatchedBoundsAreRejected) {
  const JournalHistogram a = histogram_of({0.5, 1.0}, {0.1});
  const JournalHistogram b = histogram_of({0.25, 1.0}, {0.1});
  EXPECT_THROW(psi(a, b), util::PreconditionError);
  EXPECT_THROW(ks_statistic(a, b), util::PreconditionError);
}

TEST(Drift, ComputeDriftEmitsGaugesGroupMeansAndCalibrationDelta) {
  JournalEntry baseline;
  baseline.day = 0;
  baseline.add_gauge("calibration_threshold", 0.5);
  baseline.add_histogram("scores", histogram_of({0.5, 1.0}, {0.1, 0.2, 0.9}));
  baseline.add_histogram("f1_infected_fraction", histogram_of({0.5, 1.0}, {0.1, 0.9}));
  baseline.add_histogram("f2_fqdn_active_days", histogram_of({2.0, 14.0}, {1.0, 7.0}));

  JournalEntry current;
  current.day = 1;
  current.add_gauge("calibration_threshold", 0.52);
  current.add_histogram("scores", histogram_of({0.5, 1.0}, {0.1, 0.2, 0.9}));
  current.add_histogram("f1_infected_fraction", histogram_of({0.5, 1.0}, {0.1, 0.9}));
  current.add_histogram("f2_fqdn_active_days", histogram_of({2.0, 14.0}, {1.0, 7.0}));

  const DriftResult result = compute_drift(baseline, current);
  ASSERT_NE(result.find_gauge("score_psi"), nullptr);
  ASSERT_NE(result.find_gauge("score_ks"), nullptr);
  ASSERT_NE(result.find_gauge("psi_f1_infected_fraction"), nullptr);
  ASSERT_NE(result.find_gauge("group_psi_f1"), nullptr);
  ASSERT_NE(result.find_gauge("group_psi_f2"), nullptr);
  ASSERT_NE(result.find_gauge("calibration_delta"), nullptr);
  EXPECT_NEAR(*result.find_gauge("calibration_delta"), 0.02, 1e-12);
  EXPECT_DOUBLE_EQ(*result.find_gauge("score_psi"), 0.0);
  EXPECT_TRUE(result.alerts.empty());
}

TEST(Drift, AlertsTripExactlyWhenThresholdsAreExceeded) {
  JournalEntry baseline;
  baseline.day = 0;
  baseline.add_histogram("scores", histogram_of({0.5, 1.0}, {0.1, 0.1, 0.1, 0.1}));
  JournalEntry current;
  current.day = 1;
  current.add_histogram("scores", histogram_of({0.5, 1.0}, {0.9, 0.9, 0.9, 0.9}));

  DriftThresholds loose;
  loose.score_psi = 1e9;
  loose.score_ks = 1e9;
  const DriftResult no_trip = compute_drift(baseline, current, loose);
  EXPECT_TRUE(no_trip.alerts.empty());

  DriftThresholds tight;
  tight.score_psi = 0.01;
  tight.score_ks = 0.01;
  const DriftResult tripped = compute_drift(baseline, current, tight);
  ASSERT_EQ(tripped.alerts.size(), 2u);
  EXPECT_EQ(tripped.alerts[0].gauge, "seg_drift_score_psi");
  EXPECT_EQ(tripped.alerts[0].threshold, 0.01);
  EXPECT_GT(tripped.alerts[0].value, 0.01);
  EXPECT_EQ(tripped.alerts[1].gauge, "seg_drift_score_ks");
}

TEST(Drift, ExportMirrorsGaugesAndAlertCounterIntoRegistry) {
  Registry::instance().reset();
  DriftResult result;
  result.gauges.emplace_back("score_psi", 0.42);
  result.alerts.push_back({"seg_drift_score_psi", 0.42, 0.2});
  export_drift(result);
  EXPECT_DOUBLE_EQ(Registry::instance().gauge("seg_drift_score_psi").value(), 0.42);
  EXPECT_EQ(Registry::instance().counter("seg_drift_alerts_total").value(), 1u);
  Registry::instance().reset();
}

TEST(Health, SampleOncePublishesTheGaugeCatalog) {
  Registry::instance().reset();
  Registry::instance().counter("seg_ingest_queue_pushed_records_total").add(500);
  Registry::instance().gauge("seg_ingest_queue_depth").set(3.0);
  Registry::instance().gauge("seg_ingest_queue_drop_rate").set(0.25);
  Registry::instance().gauge("seg_ingest_current_day").set(7.0);
  Registry::instance().gauge("seg_ingest_day_watermark").set(5.0);

  HealthSampler sampler;
  sampler.sample_once();
  Registry::instance().counter("seg_ingest_queue_pushed_records_total").add(500);
  sampler.sample_once();

  Registry& registry = Registry::instance();
  EXPECT_GE(registry.gauge("seg_health_records_per_sec_ewma").value(), 0.0);
  EXPECT_DOUBLE_EQ(registry.gauge("seg_health_queue_depth").value(), 3.0);
  EXPECT_DOUBLE_EQ(registry.gauge("seg_health_queue_drop_rate").value(), 0.25);
  EXPECT_DOUBLE_EQ(registry.gauge("seg_health_day_lag").value(), 2.0);
  EXPECT_GT(registry.gauge("seg_health_rss_peak_kb").value(), 0.0);
  EXPECT_GT(registry.gauge("seg_health_uptime_seconds").value(), 0.0);
  EXPECT_EQ(registry.counter("seg_health_samples_total").value(), 2u);
  Registry::instance().reset();
}

TEST(Health, BackgroundThreadStartsSamplesAndStopsCleanly) {
  Registry::instance().reset();
  HealthOptions options;
  options.interval = std::chrono::milliseconds(1);
  HealthSampler sampler(options);
  EXPECT_FALSE(sampler.running());
  sampler.start();
  EXPECT_TRUE(sampler.running());
  // The loop samples once immediately, so stopping right away still
  // leaves at least one completed sample.
  sampler.stop();
  EXPECT_FALSE(sampler.running());
  EXPECT_GE(Registry::instance().counter("seg_health_samples_total").value(), 1u);
  sampler.stop();  // idempotent
  EXPECT_THROW(
      [] {
        HealthSampler running;
        running.start();
        running.start();  // second start must be refused
      }(),
      util::PreconditionError);
  Registry::instance().reset();
}

}  // namespace
}  // namespace seg::obs
