#include "util/logging.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

namespace seg::util {
namespace {

class LoggingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Logger::instance().set_sink([this](LogLevel level, std::string_view message) {
      captured_.emplace_back(level, std::string(message));
    });
    Logger::instance().set_level(LogLevel::kDebug);
  }
  void TearDown() override {
    Logger::instance().set_sink(nullptr);
    Logger::instance().set_level(LogLevel::kInfo);
  }

  std::vector<std::pair<LogLevel, std::string>> captured_;
};

TEST_F(LoggingTest, CapturesMessagesThroughSink) {
  log_info("hello ", 42);
  ASSERT_EQ(captured_.size(), 1u);
  EXPECT_EQ(captured_[0].first, LogLevel::kInfo);
  EXPECT_EQ(captured_[0].second, "hello 42");
}

TEST_F(LoggingTest, FiltersBelowLevel) {
  Logger::instance().set_level(LogLevel::kWarn);
  log_debug("nope");
  log_info("nope");
  log_warn("yes");
  log_error("also yes");
  ASSERT_EQ(captured_.size(), 2u);
  EXPECT_EQ(captured_[0].first, LogLevel::kWarn);
  EXPECT_EQ(captured_[1].first, LogLevel::kError);
}

TEST_F(LoggingTest, OffSilencesEverything) {
  Logger::instance().set_level(LogLevel::kOff);
  log_error("nope");
  EXPECT_TRUE(captured_.empty());
}

TEST_F(LoggingTest, EveryNLimitsACallSite) {
  for (int i = 0; i < 10; ++i) {
    SEG_LOG_EVERY_N(4, log_info("tick ", i));
  }
  // Fires on iterations 0, 4, 8.
  ASSERT_EQ(captured_.size(), 3u);
  EXPECT_EQ(captured_[0].second, "tick 0");
  EXPECT_EQ(captured_[1].second, "tick 4");
  EXPECT_EQ(captured_[2].second, "tick 8");
}

TEST_F(LoggingTest, EveryNZeroMeansEveryTime) {
  for (int i = 0; i < 3; ++i) {
    SEG_LOG_EVERY_N(0, log_info("always"));
  }
  EXPECT_EQ(captured_.size(), 3u);
}

TEST_F(LoggingTest, NullSinkVerifiablyRestoresDefault) {
  EXPECT_TRUE(Logger::instance().has_custom_sink());
  Logger::instance().set_sink(nullptr);
  EXPECT_FALSE(Logger::instance().has_custom_sink());
  // Logging through the default stderr sink must not reach the old capture.
  log_info("to stderr");
  EXPECT_TRUE(captured_.empty());
}

TEST_F(LoggingTest, SinkMayLogWithoutDeadlock) {
  // The sink runs outside the logger's lock, so a sink that logs (at a
  // level the logger filters out) must not self-deadlock.
  Logger::instance().set_sink([this](LogLevel level, std::string_view message) {
    captured_.emplace_back(level, std::string(message));
    Logger::instance().log(LogLevel::kDebug, "from sink");
  });
  Logger::instance().set_level(LogLevel::kInfo);
  log_info("outer");
  ASSERT_EQ(captured_.size(), 1u);
  EXPECT_EQ(captured_[0].second, "outer");
}

TEST(LogThreadIdTest, DenseAndStablePerThread) {
  const auto mine = log_thread_id();
  EXPECT_EQ(log_thread_id(), mine);
  std::uint32_t other = mine;
  std::thread([&] { other = log_thread_id(); }).join();
  EXPECT_NE(other, mine);
}

TEST(LogLevelNameTest, Names) {
  EXPECT_EQ(log_level_name(LogLevel::kDebug), "DEBUG");
  EXPECT_EQ(log_level_name(LogLevel::kInfo), "INFO");
  EXPECT_EQ(log_level_name(LogLevel::kWarn), "WARN");
  EXPECT_EQ(log_level_name(LogLevel::kError), "ERROR");
  EXPECT_EQ(log_level_name(LogLevel::kOff), "OFF");
}

}  // namespace
}  // namespace seg::util
