#include "util/logging.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace seg::util {
namespace {

class LoggingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Logger::instance().set_sink([this](LogLevel level, std::string_view message) {
      captured_.emplace_back(level, std::string(message));
    });
    Logger::instance().set_level(LogLevel::kDebug);
  }
  void TearDown() override {
    Logger::instance().set_sink(nullptr);
    Logger::instance().set_level(LogLevel::kInfo);
  }

  std::vector<std::pair<LogLevel, std::string>> captured_;
};

TEST_F(LoggingTest, CapturesMessagesThroughSink) {
  log_info("hello ", 42);
  ASSERT_EQ(captured_.size(), 1u);
  EXPECT_EQ(captured_[0].first, LogLevel::kInfo);
  EXPECT_EQ(captured_[0].second, "hello 42");
}

TEST_F(LoggingTest, FiltersBelowLevel) {
  Logger::instance().set_level(LogLevel::kWarn);
  log_debug("nope");
  log_info("nope");
  log_warn("yes");
  log_error("also yes");
  ASSERT_EQ(captured_.size(), 2u);
  EXPECT_EQ(captured_[0].first, LogLevel::kWarn);
  EXPECT_EQ(captured_[1].first, LogLevel::kError);
}

TEST_F(LoggingTest, OffSilencesEverything) {
  Logger::instance().set_level(LogLevel::kOff);
  log_error("nope");
  EXPECT_TRUE(captured_.empty());
}

TEST(LogLevelNameTest, Names) {
  EXPECT_EQ(log_level_name(LogLevel::kDebug), "DEBUG");
  EXPECT_EQ(log_level_name(LogLevel::kInfo), "INFO");
  EXPECT_EQ(log_level_name(LogLevel::kWarn), "WARN");
  EXPECT_EQ(log_level_name(LogLevel::kError), "ERROR");
  EXPECT_EQ(log_level_name(LogLevel::kOff), "OFF");
}

}  // namespace
}  // namespace seg::util
