#include "util/parallel.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace seg::util {
namespace {

class ParallelTest : public ::testing::Test {
 protected:
  // Each test sets its own width; restore the default so later suites (and
  // the shared pool they inherit) are unaffected.
  void TearDown() override { set_parallelism(0); }
};

TEST_F(ParallelTest, SetParallelismControlsSharedPoolSize) {
  set_parallelism(3);
  EXPECT_EQ(parallelism(), 3u);
  EXPECT_EQ(shared_pool().size(), 3u);
  set_parallelism(1);
  EXPECT_EQ(parallelism(), 1u);
}

TEST_F(ParallelTest, ParallelForCoversEveryIndexOnce) {
  set_parallelism(4);
  std::vector<std::atomic<int>> hits(997);
  parallel_for(hits.size(), [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& hit : hits) {
    EXPECT_EQ(hit.load(), 1);
  }
}

TEST_F(ParallelTest, ParallelForRunsInlineWithOneWorker) {
  set_parallelism(1);
  std::vector<int> hits(100, 0);  // plain ints: safe only if truly serial
  parallel_for(hits.size(), [&](std::size_t i) { hits[i] += 1; });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 100);
}

TEST_F(ParallelTest, ParallelForPropagatesExceptions) {
  set_parallelism(4);
  EXPECT_THROW(
      parallel_for(64,
                   [](std::size_t i) {
                     if (i == 17) {
                       throw std::runtime_error("boom");
                     }
                   }),
      std::runtime_error);
}

TEST_F(ParallelTest, ParallelChunksPartitionIsIndependentOfPoolSize) {
  const auto collect = [](std::size_t count, std::size_t chunks) {
    std::vector<std::pair<std::size_t, std::size_t>> ranges(chunks, {0, 0});
    parallel_chunks(count, chunks, [&](std::size_t c, std::size_t begin, std::size_t end) {
      ranges[c] = {begin, end};
    });
    return ranges;
  };
  set_parallelism(1);
  const auto serial = collect(1000, 7);
  set_parallelism(5);
  const auto parallel = collect(1000, 7);
  EXPECT_EQ(serial, parallel);
  // Chunks are contiguous and cover [0, count).
  std::size_t covered = 0;
  for (const auto& [begin, end] : serial) {
    EXPECT_EQ(begin, covered);
    covered = end;
  }
  EXPECT_EQ(covered, 1000u);
}

TEST_F(ParallelTest, ParallelChunksPropagatesExceptions) {
  set_parallelism(4);
  EXPECT_THROW(parallel_chunks(100, 8,
                               [](std::size_t chunk, std::size_t, std::size_t) {
                                 if (chunk == 3) {
                                   throw std::runtime_error("chunk boom");
                                 }
                               }),
               std::runtime_error);
}

TEST_F(ParallelTest, DefaultChunkCountNeverExceedsCountOrPool) {
  set_parallelism(6);
  EXPECT_EQ(default_chunk_count(3), 3u);
  EXPECT_EQ(default_chunk_count(100), 6u);
  EXPECT_EQ(default_chunk_count(0), 1u);
}

}  // namespace
}  // namespace seg::util
