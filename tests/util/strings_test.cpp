#include "util/strings.h"

#include <gtest/gtest.h>

#include "util/require.h"

namespace seg::util {
namespace {

TEST(SplitTest, BasicSplit) {
  const auto parts = split("a.b.c", '.');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
  EXPECT_EQ(parts[2], "c");
}

TEST(SplitTest, PreservesEmptyFields) {
  const auto parts = split("a..b", '.');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[1], "");
}

TEST(SplitTest, EmptyInputYieldsOneEmptyField) {
  const auto parts = split("", '.');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "");
}

TEST(SplitTest, LeadingAndTrailingDelimiters) {
  const auto parts = split(".a.", '.');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "");
  EXPECT_EQ(parts[1], "a");
  EXPECT_EQ(parts[2], "");
}

TEST(SplitTest, SkipEmptyDropsEmptyFields) {
  const auto parts = split_skip_empty(".a..b.", '.');
  ASSERT_EQ(parts.size(), 2u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
}

TEST(JoinTest, RoundTripsWithSplit) {
  const std::string input = "x\ty\tz";
  EXPECT_EQ(join(split(input, '\t'), "\t"), input);
}

TEST(JoinTest, StringOverload) {
  const std::vector<std::string> parts = {"a", "b"};
  EXPECT_EQ(join(parts, ", "), "a, b");
}

TEST(TrimTest, TrimsBothEnds) {
  EXPECT_EQ(trim("  hello \t\n"), "hello");
  EXPECT_EQ(trim("hello"), "hello");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim(""), "");
}

TEST(ToLowerTest, LowersAsciiOnly) {
  EXPECT_EQ(to_lower("WwW.ExAmPlE.CoM"), "www.example.com");
  EXPECT_EQ(to_lower("abc-123"), "abc-123");
}

TEST(PrefixSuffixTest, StartsWith) {
  EXPECT_TRUE(starts_with("www.example.com", "www."));
  EXPECT_FALSE(starts_with("example.com", "www."));
  EXPECT_TRUE(starts_with("a", ""));
  EXPECT_FALSE(starts_with("", "a"));
}

TEST(PrefixSuffixTest, EndsWith) {
  EXPECT_TRUE(ends_with("www.example.com", ".com"));
  EXPECT_FALSE(ends_with("www.example.org", ".com"));
  EXPECT_TRUE(ends_with("a", ""));
}

TEST(ParseU64Test, ParsesValidNumbers) {
  EXPECT_EQ(parse_u64("0"), 0u);
  EXPECT_EQ(parse_u64("42"), 42u);
  EXPECT_EQ(parse_u64(" 1234 "), 1234u);
  EXPECT_EQ(parse_u64("18446744073709551615"), 18446744073709551615ULL);
}

TEST(ParseU64Test, RejectsMalformedInput) {
  EXPECT_THROW(parse_u64(""), ParseError);
  EXPECT_THROW(parse_u64("abc"), ParseError);
  EXPECT_THROW(parse_u64("12x"), ParseError);
  EXPECT_THROW(parse_u64("-1"), ParseError);
  EXPECT_THROW(parse_u64("18446744073709551616"), ParseError);  // overflow
}

TEST(ParseDoubleTest, ParsesValidNumbers) {
  EXPECT_DOUBLE_EQ(parse_double("0.5"), 0.5);
  EXPECT_DOUBLE_EQ(parse_double("-3.25"), -3.25);
  EXPECT_DOUBLE_EQ(parse_double(" 1e3 "), 1000.0);
}

TEST(ParseDoubleTest, RejectsMalformedInput) {
  EXPECT_THROW(parse_double(""), ParseError);
  EXPECT_THROW(parse_double("1.2.3"), ParseError);
  EXPECT_THROW(parse_double("x"), ParseError);
}

TEST(FormatTest, FormatDouble) {
  EXPECT_EQ(format_double(3.14159, 2), "3.14");
  EXPECT_EQ(format_double(1.0, 0), "1");
  EXPECT_EQ(format_double(-0.5, 1), "-0.5");
}

TEST(FormatTest, FormatCount) {
  EXPECT_EQ(format_count(0), "0");
  EXPECT_EQ(format_count(999), "999");
  EXPECT_EQ(format_count(12345), "12.3K");
  EXPECT_EQ(format_count(1'600'000), "1.60M");
  EXPECT_EQ(format_count(319'900'000), "320M");
  EXPECT_EQ(format_count(2'500'000'000ULL), "2.50B");
}

}  // namespace
}  // namespace seg::util
