#include "util/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>
#include <vector>

namespace seg::util {
namespace {

TEST(SplitMix64Test, KnownSequenceFromZeroSeed) {
  // Reference values from Vigna's splitmix64.c with seed 0.
  SplitMix64 sm(0);
  EXPECT_EQ(sm.next(), 0xe220a8397b1dcdafULL);
  EXPECT_EQ(sm.next(), 0x6e789e6aa1b965f4ULL);
  EXPECT_EQ(sm.next(), 0x06c45d188009454fULL);
}

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next(), b.next());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    equal += (a.next() == b.next()) ? 1 : 0;
  }
  EXPECT_LT(equal, 4);
}

TEST(RngTest, NextBelowStaysInRange) {
  Rng rng(7);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.next_below(bound), bound);
    }
  }
}

TEST(RngTest, NextBelowRejectsZeroBound) {
  Rng rng(7);
  EXPECT_THROW(rng.next_below(0), PreconditionError);
}

TEST(RngTest, NextIntInclusiveBounds) {
  Rng rng(11);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.next_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(13);
  double sum = 0.0;
  constexpr int kN = 10000;
  for (int i = 0; i < kN; ++i) {
    const double v = rng.next_double();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / kN, 0.5, 0.02);
}

TEST(RngTest, NextBoolMatchesProbability) {
  Rng rng(17);
  int hits = 0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    hits += rng.next_bool(0.25) ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(hits) / kN, 0.25, 0.02);
}

TEST(RngTest, GaussianMomentsApproximatelyStandard) {
  Rng rng(19);
  double sum = 0.0;
  double sum_sq = 0.0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    const double v = rng.next_gaussian();
    sum += v;
    sum_sq += v * v;
  }
  EXPECT_NEAR(sum / kN, 0.0, 0.05);
  EXPECT_NEAR(sum_sq / kN, 1.0, 0.05);
}

TEST(RngTest, PoissonMeanMatchesLambdaSmall) {
  Rng rng(23);
  double sum = 0.0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    sum += static_cast<double>(rng.next_poisson(3.5));
  }
  EXPECT_NEAR(sum / kN, 3.5, 0.1);
}

TEST(RngTest, PoissonMeanMatchesLambdaLarge) {
  Rng rng(29);
  double sum = 0.0;
  constexpr int kN = 5000;
  for (int i = 0; i < kN; ++i) {
    sum += static_cast<double>(rng.next_poisson(250.0));
  }
  EXPECT_NEAR(sum / kN, 250.0, 2.5);
}

TEST(RngTest, PoissonZeroLambdaIsZero) {
  Rng rng(31);
  EXPECT_EQ(rng.next_poisson(0.0), 0u);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(37);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  auto shuffled = v;
  rng.shuffle(std::span<int>(shuffled));
  EXPECT_FALSE(std::equal(v.begin(), v.end(), shuffled.begin()));  // overwhelmingly likely
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(RngTest, SampleWithoutReplacementDistinctAndInRange) {
  Rng rng(41);
  for (std::size_t n : {std::size_t{10}, std::size_t{100}, std::size_t{1000}}) {
    for (std::size_t k : {std::size_t{0}, std::size_t{1}, std::size_t{5}, n / 2, n}) {
      const auto sample = rng.sample_without_replacement(n, k);
      EXPECT_EQ(sample.size(), k);
      std::set<std::size_t> distinct(sample.begin(), sample.end());
      EXPECT_EQ(distinct.size(), k);
      for (auto idx : sample) {
        EXPECT_LT(idx, n);
      }
    }
  }
}

TEST(RngTest, SampleWithoutReplacementRejectsKGreaterThanN) {
  Rng rng(43);
  EXPECT_THROW(rng.sample_without_replacement(3, 4), PreconditionError);
}

TEST(RngTest, SampleWithoutReplacementSmallKUsesAllValues) {
  // Floyd path: over many draws of k=2 from n=64 every index should appear.
  Rng rng(47);
  std::set<std::size_t> seen;
  for (int i = 0; i < 3000; ++i) {
    for (auto v : rng.sample_without_replacement(64, 2)) {
      seen.insert(v);
    }
  }
  EXPECT_EQ(seen.size(), 64u);
}

TEST(RngTest, ForkedStreamsAreDecorrelated) {
  Rng parent(51);
  Rng a = parent.fork(1);
  Rng b = parent.fork(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    equal += (a.next() == b.next()) ? 1 : 0;
  }
  EXPECT_LT(equal, 4);
}

TEST(RngTest, ForkIsDeterministic) {
  Rng p1(99);
  Rng p2(99);
  Rng c1 = p1.fork(7);
  Rng c2 = p2.fork(7);
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(c1.next(), c2.next());
  }
}

TEST(ZipfSamplerTest, RejectsBadArguments) {
  EXPECT_THROW(ZipfSampler(0, 1.0), PreconditionError);
  EXPECT_THROW(ZipfSampler(10, 0.0), PreconditionError);
  EXPECT_THROW(ZipfSampler(10, -1.0), PreconditionError);
}

TEST(ZipfSamplerTest, PmfSumsToOne) {
  ZipfSampler zipf(1000, 1.1);
  double total = 0.0;
  for (std::size_t i = 0; i < zipf.size(); ++i) {
    total += zipf.pmf(i);
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(ZipfSamplerTest, RankZeroIsMostPopular) {
  ZipfSampler zipf(100, 1.0);
  for (std::size_t i = 1; i < zipf.size(); ++i) {
    EXPECT_GT(zipf.pmf(0), zipf.pmf(i));
  }
}

TEST(ZipfSamplerTest, EmpiricalFrequenciesMatchPmf) {
  ZipfSampler zipf(50, 1.2);
  Rng rng(57);
  std::vector<int> counts(50, 0);
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    ++counts[zipf.sample(rng)];
  }
  for (std::size_t i : {std::size_t{0}, std::size_t{1}, std::size_t{5}, std::size_t{20}}) {
    EXPECT_NEAR(static_cast<double>(counts[i]) / kN, zipf.pmf(i), 0.01);
  }
}

TEST(ZipfSamplerTest, SampleAlwaysInRange) {
  ZipfSampler zipf(7, 2.0);
  Rng rng(61);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(zipf.sample(rng), 7u);
  }
}

// Property sweep: next_below must be unbiased enough that each residue class
// appears with roughly equal frequency, across several bounds.
class RngUniformityTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RngUniformityTest, NextBelowIsApproximatelyUniform) {
  const std::uint64_t bound = GetParam();
  Rng rng(1000 + bound);
  std::vector<int> counts(bound, 0);
  const int per_bucket = 2000;
  const int n = static_cast<int>(bound) * per_bucket;
  for (int i = 0; i < n; ++i) {
    ++counts[rng.next_below(bound)];
  }
  for (auto c : counts) {
    EXPECT_NEAR(static_cast<double>(c), per_bucket, 6.0 * std::sqrt(per_bucket));
  }
}

INSTANTIATE_TEST_SUITE_P(Bounds, RngUniformityTest, ::testing::Values(2, 3, 5, 7, 16, 33));

}  // namespace
}  // namespace seg::util
