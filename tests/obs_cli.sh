#!/usr/bin/env bash
# End-to-end obs smoke test: train and classify with every obs output
# enabled, validate the artifacts with `segugio validate-obs`, and check
# that enabling observability does not change the classify output.
set -euo pipefail
CLI="$1"
DIR="$(mktemp -d)"
trap 'rm -rf "$DIR"' EXIT

"$CLI" simgen --out "$DIR" --days 2 --isp 0 --binary >/dev/null

"$CLI" train --trace "$DIR/day0.bin" \
  --blacklist "$DIR/blacklist-day0.txt" --whitelist "$DIR/whitelist.txt" \
  --activity "$DIR/activity.txt" --pdns "$DIR/pdns.txt" \
  --model "$DIR/model.txt" --trees 20 \
  --trace-out "$DIR/train-trace.json" --metrics-out "$DIR/train-metrics.prom" \
  --run-report "$DIR/train-report.json" >/dev/null
test -s "$DIR/train-trace.json"
test -s "$DIR/train-metrics.prom"
test -s "$DIR/train-report.json"

"$CLI" validate-obs --trace "$DIR/train-trace.json" \
  --run-report "$DIR/train-report.json" --metrics "$DIR/train-metrics.prom" \
  | grep -q "run report"

# The training run must have counted graph work into the metrics.
grep -q "seg_build_records_total" "$DIR/train-metrics.prom"
grep -q '"cli/train"' "$DIR/train-report.json"

# Classify twice: plain, and with every obs output. Scores must match
# byte-for-byte — observability never perturbs the pipeline.
CLASSIFY_ARGS=(--trace "$DIR/day1.bin" --model "$DIR/model.txt"
  --blacklist "$DIR/blacklist-day1.txt" --whitelist "$DIR/whitelist.txt"
  --activity "$DIR/activity.txt" --pdns "$DIR/pdns.txt" --threshold 0.5)
"$CLI" classify "${CLASSIFY_ARGS[@]}" > "$DIR/plain.out"
"$CLI" classify "${CLASSIFY_ARGS[@]}" \
  --trace-out "$DIR/classify-trace.json" --metrics-out "$DIR/classify-metrics.prom" \
  --run-report "$DIR/classify-report.json" > "$DIR/observed.out"
cmp "$DIR/plain.out" "$DIR/observed.out"

"$CLI" validate-obs --trace "$DIR/classify-trace.json" \
  --run-report "$DIR/classify-report.json" --metrics "$DIR/classify-metrics.prom" >/dev/null
grep -q "seg_classify_rows_total" "$DIR/classify-metrics.prom"
grep -q '"pipeline/ingest_day"' "$DIR/classify-report.json"

# validate-obs rejects malformed artifacts.
echo '{"traceEvents": [{"ph": "X"}]}' > "$DIR/bad-trace.json"
if "$CLI" validate-obs --trace "$DIR/bad-trace.json" 2>/dev/null; then
  echo "expected failure on malformed trace" >&2
  exit 1
fi
echo '{}' > "$DIR/bad-report.json"
if "$CLI" validate-obs --run-report "$DIR/bad-report.json" 2>/dev/null; then
  echo "expected failure on malformed run report" >&2
  exit 1
fi

echo "obs cli ok"
