#!/usr/bin/env bash
# End-to-end obs smoke test: train and classify with every obs output
# enabled, validate the artifacts with `segugio validate-obs`, and check
# that enabling observability does not change the classify output.
set -euo pipefail
CLI="$1"
DIR="$(mktemp -d)"
trap 'rm -rf "$DIR"' EXIT

"$CLI" simgen --out "$DIR" --days 2 --isp 0 --binary >/dev/null

"$CLI" train --trace "$DIR/day0.bin" \
  --blacklist "$DIR/blacklist-day0.txt" --whitelist "$DIR/whitelist.txt" \
  --activity "$DIR/activity.txt" --pdns "$DIR/pdns.txt" \
  --model "$DIR/model.txt" --trees 20 \
  --trace-out "$DIR/train-trace.json" --metrics-out "$DIR/train-metrics.prom" \
  --run-report "$DIR/train-report.json" >/dev/null
test -s "$DIR/train-trace.json"
test -s "$DIR/train-metrics.prom"
test -s "$DIR/train-report.json"

"$CLI" validate-obs --trace "$DIR/train-trace.json" \
  --run-report "$DIR/train-report.json" --metrics "$DIR/train-metrics.prom" \
  | grep -q "run report"

# The training run must have counted graph work into the metrics.
grep -q "seg_build_records_total" "$DIR/train-metrics.prom"
grep -q '"cli/train"' "$DIR/train-report.json"

# Classify twice: plain, and with every obs output. Scores must match
# byte-for-byte — observability never perturbs the pipeline.
CLASSIFY_ARGS=(--trace "$DIR/day1.bin" --model "$DIR/model.txt"
  --blacklist "$DIR/blacklist-day1.txt" --whitelist "$DIR/whitelist.txt"
  --activity "$DIR/activity.txt" --pdns "$DIR/pdns.txt" --threshold 0.5)
"$CLI" classify "${CLASSIFY_ARGS[@]}" > "$DIR/plain.out"
"$CLI" classify "${CLASSIFY_ARGS[@]}" \
  --trace-out "$DIR/classify-trace.json" --metrics-out "$DIR/classify-metrics.prom" \
  --run-report "$DIR/classify-report.json" > "$DIR/observed.out"
cmp "$DIR/plain.out" "$DIR/observed.out"

"$CLI" validate-obs --trace "$DIR/classify-trace.json" \
  --run-report "$DIR/classify-report.json" --metrics "$DIR/classify-metrics.prom" >/dev/null
grep -q "seg_classify_rows_total" "$DIR/classify-metrics.prom"
grep -q '"pipeline/ingest_day"' "$DIR/classify-report.json"

# validate-obs rejects malformed artifacts.
echo '{"traceEvents": [{"ph": "X"}]}' > "$DIR/bad-trace.json"
if "$CLI" validate-obs --trace "$DIR/bad-trace.json" 2>/dev/null; then
  echo "expected failure on malformed trace" >&2
  exit 1
fi
echo '{}' > "$DIR/bad-report.json"
if "$CLI" validate-obs --run-report "$DIR/bad-report.json" 2>/dev/null; then
  echo "expected failure on malformed run report" >&2
  exit 1
fi

# seg::obs v2: a streamed two-day session with --journal writes one
# validator-clean obsjournal entry per day, is invisible in the classify
# output, and renders through `segugio status --journal`.
cat "$DIR/day0.bin" "$DIR/day1.bin" > "$DIR/stream.bin"
STREAM_ARGS=(--input "$DIR/stream.bin" --model "$DIR/model.txt"
  --blacklist "$DIR/blacklist-day1.txt" --whitelist "$DIR/whitelist.txt"
  --activity "$DIR/activity.txt" --pdns "$DIR/pdns.txt" --threshold 0.5)
"$CLI" classify "${STREAM_ARGS[@]}" > "$DIR/stream-plain.out" 2>/dev/null
"$CLI" classify "${STREAM_ARGS[@]}" --journal "$DIR/journal.jsonl" \
  --health-interval 50 > "$DIR/stream-journaled.out" 2>/dev/null
cmp "$DIR/stream-plain.out" "$DIR/stream-journaled.out"

head -n 1 "$DIR/journal.jsonl" | grep -q "segf1 obsjournal 1"
test "$(wc -l < "$DIR/journal.jsonl")" -eq 3  # header + one entry per day
"$CLI" validate-obs --journal "$DIR/journal.jsonl" | grep -q "journal"

"$CLI" status --journal "$DIR/journal.jsonl" > "$DIR/status.txt"
grep -q "day" "$DIR/status.txt"
grep -q "2 day(s)" "$DIR/status.txt"

# validate-obs rejects a truncated journal line.
{ head -n 1 "$DIR/journal.jsonl"; echo '{"day": 0'; } > "$DIR/bad-journal.jsonl"
if "$CLI" validate-obs --journal "$DIR/bad-journal.jsonl" 2>/dev/null; then
  echo "expected failure on malformed journal" >&2
  exit 1
fi

echo "obs cli ok"
