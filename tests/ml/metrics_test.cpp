#include "ml/metrics.h"

#include <gtest/gtest.h>

#include <vector>

#include "util/require.h"
#include "util/rng.h"

namespace seg::ml {
namespace {

TEST(RocCurveTest, PerfectSeparationHasAucOne) {
  const std::vector<int> labels = {0, 0, 0, 1, 1, 1};
  const std::vector<double> scores = {0.1, 0.2, 0.3, 0.7, 0.8, 0.9};
  const auto roc = RocCurve::compute(labels, scores);
  EXPECT_DOUBLE_EQ(roc.auc(), 1.0);
  EXPECT_DOUBLE_EQ(roc.tpr_at_fpr(0.0), 1.0);
}

TEST(RocCurveTest, InvertedScoresHaveAucZero) {
  const std::vector<int> labels = {1, 1, 0, 0};
  const std::vector<double> scores = {0.1, 0.2, 0.8, 0.9};
  const auto roc = RocCurve::compute(labels, scores);
  EXPECT_DOUBLE_EQ(roc.auc(), 0.0);
}

TEST(RocCurveTest, RandomScoresGiveHalfAuc) {
  util::Rng rng(17);
  std::vector<int> labels;
  std::vector<double> scores;
  for (int i = 0; i < 20000; ++i) {
    labels.push_back(static_cast<int>(rng.next_below(2)));
    scores.push_back(rng.next_double());
  }
  const auto roc = RocCurve::compute(labels, scores);
  EXPECT_NEAR(roc.auc(), 0.5, 0.02);
}

TEST(RocCurveTest, AllTiedScoresGiveDiagonal) {
  const std::vector<int> labels = {0, 1, 0, 1};
  const std::vector<double> scores = {0.5, 0.5, 0.5, 0.5};
  const auto roc = RocCurve::compute(labels, scores);
  // Only two points: (0,0) and (1,1).
  ASSERT_EQ(roc.points().size(), 2u);
  EXPECT_DOUBLE_EQ(roc.auc(), 0.5);
}

TEST(RocCurveTest, CurveIsMonotone) {
  util::Rng rng(23);
  std::vector<int> labels;
  std::vector<double> scores;
  for (int i = 0; i < 500; ++i) {
    const int label = static_cast<int>(rng.next_below(2));
    labels.push_back(label);
    scores.push_back(0.3 * label + rng.next_double() * 0.7);
  }
  const auto roc = RocCurve::compute(labels, scores);
  for (std::size_t i = 1; i < roc.points().size(); ++i) {
    EXPECT_GE(roc.points()[i].fpr, roc.points()[i - 1].fpr);
    EXPECT_GE(roc.points()[i].tpr, roc.points()[i - 1].tpr);
  }
  EXPECT_DOUBLE_EQ(roc.points().front().fpr, 0.0);
  EXPECT_DOUBLE_EQ(roc.points().back().fpr, 1.0);
  EXPECT_DOUBLE_EQ(roc.points().back().tpr, 1.0);
}

TEST(RocCurveTest, TprAtFprInterpolatesAsStep) {
  // negatives: scores 0.9, 0.1 -> thresholds hit FPR 0.5 at score 0.9.
  const std::vector<int> labels = {0, 0, 1, 1};
  const std::vector<double> scores = {0.9, 0.1, 0.8, 0.95};
  const auto roc = RocCurve::compute(labels, scores);
  // With FPR budget 0: only threshold > 0.9 -> catches positive at 0.95.
  EXPECT_DOUBLE_EQ(roc.tpr_at_fpr(0.0), 0.5);
  // Allowing 50% FPR admits threshold 0.8 -> both positives.
  EXPECT_DOUBLE_EQ(roc.tpr_at_fpr(0.5), 1.0);
}

TEST(RocCurveTest, ThresholdForFprIsUsable) {
  util::Rng rng(29);
  std::vector<int> labels;
  std::vector<double> scores;
  for (int i = 0; i < 2000; ++i) {
    const int label = static_cast<int>(rng.next_below(2));
    labels.push_back(label);
    scores.push_back(0.4 * label + rng.next_double() * 0.6);
  }
  const auto roc = RocCurve::compute(labels, scores);
  const double threshold = roc.threshold_for_fpr(0.05);
  const auto confusion = confusion_at(labels, scores, threshold);
  EXPECT_LE(confusion.fpr(), 0.05 + 1e-12);
}

TEST(RocCurveTest, ValidationErrors) {
  const std::vector<int> labels = {0, 1};
  const std::vector<double> one_score = {0.5};
  EXPECT_THROW(RocCurve::compute(labels, one_score), util::PreconditionError);
  const std::vector<int> single_class = {1, 1};
  const std::vector<double> scores = {0.5, 0.6};
  EXPECT_THROW(RocCurve::compute(single_class, scores), util::PreconditionError);
  const std::vector<int> bad_labels = {0, 2};
  EXPECT_THROW(RocCurve::compute(bad_labels, scores), util::PreconditionError);
  EXPECT_THROW(RocCurve::compute(std::vector<int>{}, std::vector<double>{}),
               util::PreconditionError);
}

TEST(ConfusionTest, CountsAtThreshold) {
  const std::vector<int> labels = {1, 1, 0, 0};
  const std::vector<double> scores = {0.9, 0.4, 0.6, 0.2};
  const auto c = confusion_at(labels, scores, 0.5);
  EXPECT_EQ(c.tp, 1u);
  EXPECT_EQ(c.fn, 1u);
  EXPECT_EQ(c.fp, 1u);
  EXPECT_EQ(c.tn, 1u);
  EXPECT_DOUBLE_EQ(c.tpr(), 0.5);
  EXPECT_DOUBLE_EQ(c.fpr(), 0.5);
  EXPECT_DOUBLE_EQ(c.precision(), 0.5);
  EXPECT_DOUBLE_EQ(c.accuracy(), 0.5);
}

TEST(ConfusionTest, ThresholdIsInclusive) {
  const std::vector<int> labels = {1, 0};
  const std::vector<double> scores = {0.5, 0.4999};
  const auto c = confusion_at(labels, scores, 0.5);
  EXPECT_EQ(c.tp, 1u);
  EXPECT_EQ(c.fp, 0u);
}

TEST(ConfusionTest, EmptyInputIsAllZero) {
  const auto c = confusion_at(std::vector<int>{}, std::vector<double>{}, 0.5);
  EXPECT_EQ(c.tp + c.fp + c.tn + c.fn, 0u);
  EXPECT_DOUBLE_EQ(c.tpr(), 0.0);
  EXPECT_DOUBLE_EQ(c.accuracy(), 0.0);
}

// Property: AUC equals the probability that a random positive outranks a
// random negative (Mann-Whitney). Verify against a brute-force count.
class AucPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AucPropertyTest, AucMatchesPairwiseRanking) {
  util::Rng rng(GetParam());
  std::vector<int> labels;
  std::vector<double> scores;
  for (int i = 0; i < 200; ++i) {
    const int label = static_cast<int>(rng.next_below(2));
    labels.push_back(label);
    scores.push_back(0.25 * label + rng.next_double());
  }
  if (std::count(labels.begin(), labels.end(), 1) == 0 ||
      std::count(labels.begin(), labels.end(), 0) == 0) {
    GTEST_SKIP();
  }
  const auto roc = RocCurve::compute(labels, scores);
  double wins = 0.0;
  double pairs = 0.0;
  for (std::size_t p = 0; p < labels.size(); ++p) {
    if (labels[p] != 1) {
      continue;
    }
    for (std::size_t q = 0; q < labels.size(); ++q) {
      if (labels[q] != 0) {
        continue;
      }
      pairs += 1.0;
      if (scores[p] > scores[q]) {
        wins += 1.0;
      } else if (scores[p] == scores[q]) {
        wins += 0.5;
      }
    }
  }
  EXPECT_NEAR(roc.auc(), wins / pairs, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, AucPropertyTest, ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace seg::ml
