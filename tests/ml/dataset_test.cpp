#include "ml/dataset.h"

#include <gtest/gtest.h>

#include <set>

#include "util/require.h"

namespace seg::ml {
namespace {

Dataset make_dataset(std::size_t negatives, std::size_t positives) {
  Dataset d({"f0", "f1"});
  for (std::size_t i = 0; i < negatives; ++i) {
    const double v[] = {static_cast<double>(i), 0.0};
    d.add_row(v, 0);
  }
  for (std::size_t i = 0; i < positives; ++i) {
    const double v[] = {static_cast<double>(i), 1.0};
    d.add_row(v, 1);
  }
  return d;
}

TEST(DatasetTest, ConstructionAndAccess) {
  Dataset d({"a", "b", "c"});
  EXPECT_EQ(d.num_features(), 3u);
  EXPECT_TRUE(d.empty());
  const double row[] = {1.0, 2.0, 3.0};
  d.add_row(row, 1);
  EXPECT_EQ(d.num_rows(), 1u);
  EXPECT_EQ(d.label(0), 1);
  EXPECT_DOUBLE_EQ(d.value(0, 2), 3.0);
  EXPECT_DOUBLE_EQ(d.row(0)[1], 2.0);
}

TEST(DatasetTest, RejectsEmptyFeatureList) {
  EXPECT_THROW(Dataset(std::vector<std::string>{}), util::PreconditionError);
}

TEST(DatasetTest, RejectsBadArityAndLabels) {
  Dataset d({"a", "b"});
  const double short_row[] = {1.0};
  EXPECT_THROW(d.add_row(short_row, 0), util::PreconditionError);
  const double row[] = {1.0, 2.0};
  EXPECT_THROW(d.add_row(row, 2), util::PreconditionError);
  EXPECT_THROW(d.add_row(row, -1), util::PreconditionError);
}

TEST(DatasetTest, OutOfRangeAccessThrows) {
  Dataset d({"a"});
  EXPECT_THROW(d.row(0), util::PreconditionError);
  EXPECT_THROW(d.label(0), util::PreconditionError);
}

TEST(DatasetTest, CountLabel) {
  const auto d = make_dataset(7, 3);
  EXPECT_EQ(d.count_label(0), 7u);
  EXPECT_EQ(d.count_label(1), 3u);
}

TEST(DatasetTest, SubsetWithDuplicates) {
  const auto d = make_dataset(2, 2);
  const std::size_t indices[] = {0, 0, 3};
  const auto sub = d.subset(indices);
  EXPECT_EQ(sub.num_rows(), 3u);
  EXPECT_EQ(sub.label(0), 0);
  EXPECT_EQ(sub.label(2), 1);
  EXPECT_DOUBLE_EQ(sub.value(2, 1), 1.0);
}

TEST(DatasetTest, SelectFeatures) {
  Dataset d({"a", "b", "c"});
  const double row[] = {1.0, 2.0, 3.0};
  d.add_row(row, 1);
  const std::size_t keep[] = {2, 0};
  const auto selected = d.select_features(keep);
  EXPECT_EQ(selected.num_features(), 2u);
  EXPECT_EQ(selected.feature_names()[0], "c");
  EXPECT_DOUBLE_EQ(selected.value(0, 0), 3.0);
  EXPECT_DOUBLE_EQ(selected.value(0, 1), 1.0);
  EXPECT_EQ(selected.label(0), 1);
}

TEST(DatasetTest, SelectFeaturesValidation) {
  Dataset d({"a"});
  EXPECT_THROW(d.select_features(std::vector<std::size_t>{}), util::PreconditionError);
  EXPECT_THROW(d.select_features(std::vector<std::size_t>{5}), util::PreconditionError);
}

TEST(StratifiedSplitTest, PreservesClassProportions) {
  const auto d = make_dataset(100, 20);
  util::Rng rng(5);
  const auto split = stratified_split(d, 0.25, rng);
  EXPECT_EQ(split.train.size() + split.test.size(), d.num_rows());
  std::size_t test_pos = 0;
  for (const auto i : split.test) {
    test_pos += static_cast<std::size_t>(d.label(i));
  }
  EXPECT_EQ(split.test.size(), 30u);  // 25 negatives + 5 positives
  EXPECT_EQ(test_pos, 5u);
}

TEST(StratifiedSplitTest, DisjointAndComplete) {
  const auto d = make_dataset(40, 10);
  util::Rng rng(9);
  const auto split = stratified_split(d, 0.3, rng);
  std::set<std::size_t> all(split.train.begin(), split.train.end());
  all.insert(split.test.begin(), split.test.end());
  EXPECT_EQ(all.size(), d.num_rows());
}

TEST(StratifiedSplitTest, ZeroFractionPutsEverythingInTrain) {
  const auto d = make_dataset(10, 5);
  util::Rng rng(3);
  const auto split = stratified_split(d, 0.0, rng);
  EXPECT_TRUE(split.test.empty());
  EXPECT_EQ(split.train.size(), 15u);
}

TEST(StratifiedSplitTest, RejectsBadFraction) {
  const auto d = make_dataset(4, 4);
  util::Rng rng(1);
  EXPECT_THROW(stratified_split(d, -0.1, rng), util::PreconditionError);
  EXPECT_THROW(stratified_split(d, 1.1, rng), util::PreconditionError);
}

TEST(StratifiedFoldsTest, PartitionCoversAllRowsOnce) {
  const auto d = make_dataset(50, 25);
  util::Rng rng(11);
  const auto folds = stratified_folds(d, 5, rng);
  ASSERT_EQ(folds.size(), 5u);
  std::set<std::size_t> all;
  for (const auto& fold : folds) {
    for (const auto i : fold) {
      EXPECT_TRUE(all.insert(i).second) << "duplicate index across folds";
    }
  }
  EXPECT_EQ(all.size(), d.num_rows());
}

TEST(StratifiedFoldsTest, FoldsAreBalancedPerClass) {
  const auto d = make_dataset(50, 25);
  util::Rng rng(13);
  const auto folds = stratified_folds(d, 5, rng);
  for (const auto& fold : folds) {
    std::size_t pos = 0;
    for (const auto i : fold) {
      pos += static_cast<std::size_t>(d.label(i));
    }
    EXPECT_EQ(fold.size(), 15u);
    EXPECT_EQ(pos, 5u);
  }
}

TEST(StratifiedFoldsTest, RejectsKBelowTwo) {
  const auto d = make_dataset(4, 4);
  util::Rng rng(1);
  EXPECT_THROW(stratified_folds(d, 1, rng), util::PreconditionError);
}

}  // namespace
}  // namespace seg::ml
