#include "ml/logistic_regression.h"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "ml/metrics.h"
#include "util/require.h"
#include "util/rng.h"

namespace seg::ml {
namespace {

Dataset linear_problem(std::size_t n, util::Rng& rng) {
  // label = 1 when 2*x - y > 0, with noise.
  Dataset d({"x", "y"});
  for (std::size_t i = 0; i < n; ++i) {
    const double x = rng.next_gaussian();
    const double y = rng.next_gaussian();
    const double margin = 2.0 * x - y + rng.next_gaussian() * 0.2;
    const double row[] = {x, y};
    d.add_row(row, margin > 0.0 ? 1 : 0);
  }
  return d;
}

TEST(LogisticRegressionTest, LearnsLinearBoundary) {
  util::Rng rng(1);
  const auto train = linear_problem(2000, rng);
  const auto test = linear_problem(500, rng);
  LogisticRegression model;
  model.train(train);
  std::vector<int> labels;
  std::vector<double> scores;
  for (std::size_t i = 0; i < test.num_rows(); ++i) {
    labels.push_back(test.label(i));
    scores.push_back(model.predict_proba(test.row(i)));
  }
  EXPECT_GT(RocCurve::compute(labels, scores).auc(), 0.95);
}

TEST(LogisticRegressionTest, WeightSignsMatchGeneratingModel) {
  util::Rng rng(2);
  const auto train = linear_problem(2000, rng);
  LogisticRegression model;
  model.train(train);
  ASSERT_EQ(model.weights().size(), 2u);
  EXPECT_GT(model.weights()[0], 0.0);  // +2x
  EXPECT_LT(model.weights()[1], 0.0);  // -y
}

TEST(LogisticRegressionTest, ScoresAreProbabilities) {
  util::Rng rng(3);
  const auto data = linear_problem(200, rng);
  LogisticRegression model;
  model.train(data);
  for (std::size_t i = 0; i < data.num_rows(); ++i) {
    const double p = model.predict_proba(data.row(i));
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
  }
}

TEST(LogisticRegressionTest, HandlesClassImbalanceWithAutoWeight) {
  // 95:5 imbalance; auto positive weighting should still find the signal.
  util::Rng rng(4);
  Dataset d({"x"});
  for (std::size_t i = 0; i < 950; ++i) {
    const double row[] = {rng.next_gaussian()};
    d.add_row(row, 0);
  }
  for (std::size_t i = 0; i < 50; ++i) {
    const double row[] = {3.0 + rng.next_gaussian()};
    d.add_row(row, 1);
  }
  LogisticRegression model;
  model.train(d);
  const double low[] = {0.0};
  const double high[] = {3.0};
  EXPECT_LT(model.predict_proba(low), model.predict_proba(high));
  EXPECT_GT(model.predict_proba(high), 0.5);
}

TEST(LogisticRegressionTest, ConstantFeatureDoesNotProduceNan) {
  util::Rng rng(5);
  Dataset d({"constant", "signal"});
  for (std::size_t i = 0; i < 100; ++i) {
    const int label = static_cast<int>(i % 2);
    const double row[] = {1.0, static_cast<double>(label)};
    d.add_row(row, label);
  }
  LogisticRegression model;
  model.train(d);
  const double probe[] = {1.0, 1.0};
  const double p = model.predict_proba(probe);
  EXPECT_FALSE(std::isnan(p));
  EXPECT_GT(p, 0.5);
}

TEST(LogisticRegressionTest, RequiresBothClasses) {
  Dataset d({"x"});
  const double row[] = {1.0};
  d.add_row(row, 0);
  LogisticRegression model;
  EXPECT_THROW(model.train(d), util::PreconditionError);
}

TEST(LogisticRegressionTest, UntrainedPredictThrows) {
  LogisticRegression model;
  const double probe[] = {0.0};
  EXPECT_THROW(model.predict_proba(probe), util::PreconditionError);
}

TEST(LogisticRegressionTest, SaveLoadRoundTrip) {
  util::Rng rng(6);
  const auto data = linear_problem(500, rng);
  LogisticRegression model;
  model.train(data);
  std::stringstream buffer;
  model.save(buffer);
  const auto loaded = LogisticRegression::load(buffer);
  for (std::size_t i = 0; i < 100; ++i) {
    EXPECT_NEAR(loaded.predict_proba(data.row(i)), model.predict_proba(data.row(i)), 1e-12);
  }
}

TEST(LogisticRegressionTest, LoadRejectsGarbage) {
  std::stringstream buffer("junk");
  EXPECT_THROW(LogisticRegression::load(buffer), util::ParseError);
}

}  // namespace
}  // namespace seg::ml
