#include <gtest/gtest.h>

#include "ml/metrics.h"
#include "ml/random_forest.h"
#include "util/rng.h"

namespace seg::ml {
namespace {

// Extremely imbalanced problem: 5 positives vs 500 negatives. The plain
// bootstrap frequently feeds trees zero positives; stratified sampling
// guarantees representation.
Dataset rare_positives(util::Rng& rng) {
  Dataset d({"x", "y"});
  for (int i = 0; i < 500; ++i) {
    const double row[] = {rng.next_gaussian(), rng.next_gaussian()};
    d.add_row(row, 0);
  }
  for (int i = 0; i < 5; ++i) {
    const double row[] = {4.0 + rng.next_gaussian() * 0.3, 4.0 + rng.next_gaussian() * 0.3};
    d.add_row(row, 1);
  }
  return d;
}

TEST(StratifiedBootstrapTest, LearnsFromAHandfulOfPositives) {
  util::Rng rng(3);
  const auto data = rare_positives(rng);
  RandomForestConfig config;
  config.num_trees = 40;
  config.num_threads = 1;
  config.stratified_bootstrap = true;
  RandomForest forest(config);
  forest.train(data);

  // Every positive must score clearly above the typical negative.
  const double probe_pos[] = {4.0, 4.0};
  const double probe_neg[] = {0.0, 0.0};
  EXPECT_GT(forest.predict_proba(probe_pos), 0.5);
  EXPECT_LT(forest.predict_proba(probe_neg), 0.2);
}

TEST(StratifiedBootstrapTest, RankingBeatsOrMatchesPlainBootstrapWhenRare) {
  util::Rng rng(7);
  const auto train = rare_positives(rng);
  const auto test = rare_positives(rng);

  const auto auc_for = [&](bool stratified) {
    RandomForestConfig config;
    config.num_trees = 40;
    config.num_threads = 1;
    config.stratified_bootstrap = stratified;
    RandomForest forest(config);
    forest.train(train);
    std::vector<int> labels;
    std::vector<double> scores;
    for (std::size_t i = 0; i < test.num_rows(); ++i) {
      labels.push_back(test.label(i));
      scores.push_back(forest.predict_proba(test.row(i)));
    }
    return RocCurve::compute(labels, scores).auc();
  };
  EXPECT_GE(auc_for(true) + 1e-9, auc_for(false) - 0.05);
  EXPECT_GT(auc_for(true), 0.95);
}

TEST(StratifiedBootstrapTest, DeterministicAcrossThreadCounts) {
  util::Rng rng(11);
  const auto data = rare_positives(rng);
  RandomForestConfig config;
  config.num_trees = 16;
  config.stratified_bootstrap = true;
  config.seed = 5;
  config.num_threads = 1;
  RandomForest a(config);
  a.train(data);
  config.num_threads = 4;
  RandomForest b(config);
  b.train(data);
  for (std::size_t i = 0; i < 50; ++i) {
    EXPECT_DOUBLE_EQ(a.predict_proba(data.row(i)), b.predict_proba(data.row(i)));
  }
}

TEST(StratifiedBootstrapTest, PreservesClassRatioApproximately) {
  // With 100 pos / 300 neg and sample_fraction 1.0, each tree's bootstrap
  // should hold roughly 25% positives (ratio-preserving, not balanced).
  util::Rng rng(13);
  Dataset d({"x"});
  for (int i = 0; i < 300; ++i) {
    const double row[] = {rng.next_double()};
    d.add_row(row, 0);
  }
  for (int i = 0; i < 100; ++i) {
    const double row[] = {rng.next_double() + 2.0};
    d.add_row(row, 1);
  }
  RandomForestConfig config;
  config.num_trees = 10;
  config.num_threads = 1;
  config.stratified_bootstrap = true;
  config.compute_oob = true;
  RandomForest forest(config);
  forest.train(d);
  // Separable 1-D problem: OOB error should be tiny.
  EXPECT_LT(forest.oob_error(), 0.05);
}

}  // namespace
}  // namespace seg::ml
