#include "ml/decision_tree.h"

#include <gtest/gtest.h>

#include <sstream>

#include "util/require.h"
#include "util/rng.h"

namespace seg::ml {
namespace {

// Linearly separable dataset: label = f0 > 0.5.
Dataset separable(std::size_t n, util::Rng& rng) {
  Dataset d({"f0", "f1"});
  for (std::size_t i = 0; i < n; ++i) {
    const double x = rng.next_double();
    const double noise = rng.next_double();
    const double row[] = {x, noise};
    d.add_row(row, x > 0.5 ? 1 : 0);
  }
  return d;
}

// XOR-style dataset: label = (f0 > 0.5) != (f1 > 0.5). Needs depth >= 2.
Dataset xor_data(std::size_t n, util::Rng& rng) {
  Dataset d({"f0", "f1"});
  for (std::size_t i = 0; i < n; ++i) {
    const double a = rng.next_double();
    const double b = rng.next_double();
    const double row[] = {a, b};
    d.add_row(row, (a > 0.5) != (b > 0.5) ? 1 : 0);
  }
  return d;
}

TEST(DecisionTreeTest, FitsSeparableDataPerfectly) {
  util::Rng rng(1);
  const auto data = separable(500, rng);
  DecisionTree tree;
  tree.train(data);
  for (std::size_t i = 0; i < data.num_rows(); ++i) {
    const double p = tree.predict_proba(data.row(i));
    EXPECT_EQ(p >= 0.5 ? 1 : 0, data.label(i));
  }
}

TEST(DecisionTreeTest, LearnsXor) {
  util::Rng rng(2);
  const auto data = xor_data(1000, rng);
  DecisionTree tree;
  tree.train(data);
  std::size_t correct = 0;
  for (std::size_t i = 0; i < data.num_rows(); ++i) {
    correct += (tree.predict_proba(data.row(i)) >= 0.5 ? 1 : 0) == data.label(i) ? 1 : 0;
  }
  EXPECT_GT(static_cast<double>(correct) / static_cast<double>(data.num_rows()), 0.98);
  EXPECT_GE(tree.depth(), 2u);
}

TEST(DecisionTreeTest, PureNodeBecomesLeafImmediately) {
  Dataset d({"f0"});
  for (int i = 0; i < 10; ++i) {
    const double row[] = {static_cast<double>(i)};
    d.add_row(row, 1);
  }
  // All-positive data is rejected upstream by RandomForest but the tree
  // itself should happily produce a single pure leaf.
  DecisionTree tree;
  tree.train(d);
  EXPECT_EQ(tree.node_count(), 1u);
  const double probe[] = {3.0};
  EXPECT_DOUBLE_EQ(tree.predict_proba(probe), 1.0);
}

TEST(DecisionTreeTest, MaxDepthLimitsTree) {
  util::Rng rng(3);
  const auto data = xor_data(500, rng);
  DecisionTreeConfig config;
  config.max_depth = 1;  // a stump cannot learn XOR
  DecisionTree stump(config);
  stump.train(data);
  EXPECT_LE(stump.depth(), 2u);  // root + leaves
}

TEST(DecisionTreeTest, MinSamplesLeafRespected) {
  util::Rng rng(4);
  const auto data = separable(200, rng);
  DecisionTreeConfig config;
  config.min_samples_leaf = 50;
  DecisionTree tree(config);
  tree.train(data);
  // With 200 samples and min leaf 50, at most 4 leaves => at most 7 nodes.
  EXPECT_LE(tree.node_count(), 7u);
}

TEST(DecisionTreeTest, ConstantFeaturesYieldSingleLeaf) {
  Dataset d({"f0"});
  for (int i = 0; i < 20; ++i) {
    const double row[] = {1.0};
    d.add_row(row, i % 2);
  }
  DecisionTree tree;
  tree.train(d);
  EXPECT_EQ(tree.node_count(), 1u);
  const double probe[] = {1.0};
  EXPECT_NEAR(tree.predict_proba(probe), 0.5, 1e-9);
}

TEST(DecisionTreeTest, TrainOnSubsetUsesOnlyThoseRows) {
  Dataset d({"f0"});
  for (int i = 0; i < 10; ++i) {
    const double row[] = {static_cast<double>(i)};
    d.add_row(row, i < 5 ? 0 : 1);
  }
  // Subset where the labels are flipped relative to the full data:
  // only rows {0, 9}, both with extreme values.
  const std::size_t indices[] = {0, 9};
  DecisionTree tree;
  tree.train_on(d, indices);
  const double low[] = {0.0};
  const double high[] = {9.0};
  EXPECT_LT(tree.predict_proba(low), 0.5);
  EXPECT_GT(tree.predict_proba(high), 0.5);
}

TEST(DecisionTreeTest, DeterministicForSameSeed) {
  util::Rng rng(5);
  const auto data = xor_data(300, rng);
  DecisionTreeConfig config;
  config.mtry = 1;
  config.seed = 77;
  DecisionTree t1(config);
  DecisionTree t2(config);
  t1.train(data);
  t2.train(data);
  EXPECT_EQ(t1.node_count(), t2.node_count());
  for (std::size_t i = 0; i < data.num_rows(); ++i) {
    EXPECT_DOUBLE_EQ(t1.predict_proba(data.row(i)), t2.predict_proba(data.row(i)));
  }
}

TEST(DecisionTreeTest, UntrainedPredictThrows) {
  DecisionTree tree;
  const double probe[] = {0.0};
  EXPECT_THROW(tree.predict_proba(probe), util::PreconditionError);
}

TEST(DecisionTreeTest, ArityMismatchThrows) {
  util::Rng rng(6);
  const auto data = separable(50, rng);
  DecisionTree tree;
  tree.train(data);
  const double probe[] = {0.1, 0.2, 0.3};
  EXPECT_THROW(tree.predict_proba(probe), util::PreconditionError);
}

TEST(DecisionTreeTest, EmptyTrainingSetThrows) {
  Dataset d({"f0"});
  DecisionTree tree;
  EXPECT_THROW(tree.train(d), util::PreconditionError);
}

TEST(DecisionTreeTest, FeatureImportanceConcentratesOnInformativeFeature) {
  util::Rng rng(7);
  const auto data = separable(500, rng);  // f0 informative, f1 noise
  DecisionTree tree;
  tree.train(data);
  std::vector<double> importance(2, 0.0);
  tree.add_feature_importance(importance);
  EXPECT_GT(importance[0], importance[1]);
  EXPECT_GT(importance[0], 0.0);
}

TEST(DecisionTreeTest, SaveLoadRoundTrip) {
  util::Rng rng(8);
  const auto data = xor_data(300, rng);
  DecisionTree tree;
  tree.train(data);
  std::stringstream buffer;
  tree.save(buffer);
  const auto loaded = DecisionTree::load(buffer);
  EXPECT_EQ(loaded.node_count(), tree.node_count());
  for (std::size_t i = 0; i < 50; ++i) {
    EXPECT_DOUBLE_EQ(loaded.predict_proba(data.row(i)), tree.predict_proba(data.row(i)));
  }
}

TEST(DecisionTreeTest, LoadRejectsGarbage) {
  std::stringstream buffer("not a tree");
  EXPECT_THROW(DecisionTree::load(buffer), util::ParseError);
}

}  // namespace
}  // namespace seg::ml
