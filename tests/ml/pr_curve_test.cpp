#include <gtest/gtest.h>

#include "ml/metrics.h"
#include "util/require.h"
#include "util/rng.h"

namespace seg::ml {
namespace {

TEST(PrCurveTest, PerfectSeparation) {
  const std::vector<int> labels = {0, 0, 1, 1};
  const std::vector<double> scores = {0.1, 0.2, 0.8, 0.9};
  const auto curve = PrCurve::compute(labels, scores);
  EXPECT_DOUBLE_EQ(curve.average_precision(), 1.0);
  EXPECT_DOUBLE_EQ(curve.precision_at_recall(1.0), 1.0);
}

TEST(PrCurveTest, WorstCaseOrdering) {
  const std::vector<int> labels = {1, 0};
  const std::vector<double> scores = {0.1, 0.9};
  const auto curve = PrCurve::compute(labels, scores);
  // The single positive is only recovered after the false positive.
  EXPECT_DOUBLE_EQ(curve.precision_at_recall(1.0), 0.5);
  EXPECT_DOUBLE_EQ(curve.average_precision(), 0.5);
}

TEST(PrCurveTest, RecallIsMonotoneAndEndsAtOne) {
  util::Rng rng(5);
  std::vector<int> labels;
  std::vector<double> scores;
  for (int i = 0; i < 500; ++i) {
    const int label = static_cast<int>(rng.next_below(2));
    labels.push_back(label);
    scores.push_back(0.4 * label + rng.next_double() * 0.8);
  }
  const auto curve = PrCurve::compute(labels, scores);
  for (std::size_t i = 1; i < curve.points().size(); ++i) {
    EXPECT_GE(curve.points()[i].recall, curve.points()[i - 1].recall);
  }
  EXPECT_DOUBLE_EQ(curve.points().back().recall, 1.0);
}

TEST(PrCurveTest, PrecisionBoundsHold) {
  util::Rng rng(7);
  std::vector<int> labels;
  std::vector<double> scores;
  for (int i = 0; i < 300; ++i) {
    labels.push_back(static_cast<int>(rng.next_below(2)));
    scores.push_back(rng.next_double());
  }
  const auto curve = PrCurve::compute(labels, scores);
  for (const auto& point : curve.points()) {
    EXPECT_GE(point.precision, 0.0);
    EXPECT_LE(point.precision, 1.0);
  }
  EXPECT_GE(curve.average_precision(), 0.0);
  EXPECT_LE(curve.average_precision(), 1.0);
}

TEST(PrCurveTest, UnreachableRecallYieldsZeroPrecision) {
  const std::vector<int> labels = {1, 0};
  const std::vector<double> scores = {0.9, 0.1};
  const auto curve = PrCurve::compute(labels, scores);
  // min_recall 2.0 is unreachable.
  EXPECT_DOUBLE_EQ(curve.precision_at_recall(2.0), 0.0);
}

TEST(PrCurveTest, Validation) {
  EXPECT_THROW(PrCurve::compute(std::vector<int>{}, std::vector<double>{}),
               util::PreconditionError);
  EXPECT_THROW(PrCurve::compute(std::vector<int>{0, 0}, std::vector<double>{0.1, 0.2}),
               util::PreconditionError);
  EXPECT_THROW(PrCurve::compute(std::vector<int>{1}, std::vector<double>{0.1, 0.2}),
               util::PreconditionError);
}

TEST(PrCurveTest, RandomScoresApproximateBaseRate) {
  // With random scores, average precision approaches the positive rate.
  util::Rng rng(11);
  std::vector<int> labels;
  std::vector<double> scores;
  for (int i = 0; i < 20000; ++i) {
    labels.push_back(rng.next_bool(0.2) ? 1 : 0);
    scores.push_back(rng.next_double());
  }
  const auto curve = PrCurve::compute(labels, scores);
  EXPECT_NEAR(curve.average_precision(), 0.2, 0.03);
}

}  // namespace
}  // namespace seg::ml
