#include "ml/random_forest.h"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "ml/metrics.h"
#include "util/require.h"
#include "util/rng.h"

namespace seg::ml {
namespace {

// Noisy two-gaussian problem: positives centered at (1,1), negatives at
// (0,0), overlapping.
Dataset gaussians(std::size_t n, util::Rng& rng, double separation = 1.0) {
  Dataset d({"x", "y"});
  for (std::size_t i = 0; i < n; ++i) {
    const int label = static_cast<int>(i % 2);
    const double cx = label == 1 ? separation : 0.0;
    const double row[] = {cx + rng.next_gaussian() * 0.6, cx + rng.next_gaussian() * 0.6};
    d.add_row(row, label);
  }
  return d;
}

TEST(RandomForestTest, OutperformsChanceOnNoisyData) {
  util::Rng rng(1);
  const auto train = gaussians(2000, rng);
  const auto test = gaussians(500, rng);
  RandomForestConfig config;
  config.num_trees = 50;
  config.num_threads = 2;
  RandomForest forest(config);
  forest.train(train);

  std::vector<int> labels;
  std::vector<double> scores;
  for (std::size_t i = 0; i < test.num_rows(); ++i) {
    labels.push_back(test.label(i));
    scores.push_back(forest.predict_proba(test.row(i)));
  }
  const auto roc = RocCurve::compute(labels, scores);
  EXPECT_GT(roc.auc(), 0.85);
}

TEST(RandomForestTest, ScoresAreProbabilities) {
  util::Rng rng(2);
  const auto data = gaussians(500, rng);
  RandomForestConfig config;
  config.num_trees = 10;
  config.num_threads = 1;
  RandomForest forest(config);
  forest.train(data);
  for (std::size_t i = 0; i < data.num_rows(); ++i) {
    const double p = forest.predict_proba(data.row(i));
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
  }
}

TEST(RandomForestTest, DeterministicAcrossThreadCounts) {
  util::Rng rng(3);
  const auto data = gaussians(400, rng);
  RandomForestConfig config;
  config.num_trees = 16;
  config.seed = 99;
  config.num_threads = 1;
  RandomForest forest1(config);
  forest1.train(data);
  config.num_threads = 4;
  RandomForest forest4(config);
  forest4.train(data);
  for (std::size_t i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(forest1.predict_proba(data.row(i)), forest4.predict_proba(data.row(i)));
  }
}

TEST(RandomForestTest, MoreTreesSmoothScores) {
  // With a single tree, scores are leaf frequencies (mostly 0/1); averaging
  // many trees yields intermediate values for ambiguous points.
  util::Rng rng(4);
  const auto data = gaussians(1000, rng, /*separation=*/0.5);
  RandomForestConfig config1;
  config1.num_trees = 1;
  config1.num_threads = 1;
  RandomForest one(config1);
  one.train(data);
  RandomForestConfig config50 = config1;
  config50.num_trees = 50;
  RandomForest fifty(config50);
  fifty.train(data);

  std::size_t one_extreme = 0;
  std::size_t fifty_extreme = 0;
  for (std::size_t i = 0; i < 200; ++i) {
    const double p1 = one.predict_proba(data.row(i));
    const double p50 = fifty.predict_proba(data.row(i));
    one_extreme += (p1 == 0.0 || p1 == 1.0) ? 1 : 0;
    fifty_extreme += (p50 == 0.0 || p50 == 1.0) ? 1 : 0;
  }
  EXPECT_GT(one_extreme, fifty_extreme);
}

TEST(RandomForestTest, RequiresBothClasses) {
  Dataset d({"f0"});
  const double row[] = {1.0};
  d.add_row(row, 1);
  RandomForest forest;
  EXPECT_THROW(forest.train(d), util::PreconditionError);
}

TEST(RandomForestTest, UntrainedPredictThrows) {
  RandomForest forest;
  const double probe[] = {0.0};
  EXPECT_THROW(forest.predict_proba(probe), util::PreconditionError);
}

TEST(RandomForestTest, FeatureImportanceIsNormalizedAndInformative) {
  util::Rng rng(5);
  Dataset d({"signal", "noise"});
  for (std::size_t i = 0; i < 1000; ++i) {
    const int label = static_cast<int>(i % 2);
    const double row[] = {static_cast<double>(label) + rng.next_gaussian() * 0.2,
                          rng.next_double()};
    d.add_row(row, label);
  }
  RandomForestConfig config;
  config.num_trees = 20;
  config.num_threads = 1;
  RandomForest forest(config);
  forest.train(d);
  const auto importance = forest.feature_importance();
  ASSERT_EQ(importance.size(), 2u);
  EXPECT_NEAR(importance[0] + importance[1], 1.0, 1e-9);
  EXPECT_GT(importance[0], 0.8);
}

TEST(RandomForestTest, OobErrorIsSmallOnSeparableData) {
  util::Rng rng(6);
  const auto data = gaussians(1000, rng, /*separation=*/3.0);
  RandomForestConfig config;
  config.num_trees = 30;
  config.num_threads = 1;
  config.compute_oob = true;
  RandomForest forest(config);
  forest.train(data);
  EXPECT_LT(forest.oob_error(), 0.05);
}

TEST(RandomForestTest, OobErrorThrowsWhenNotComputed) {
  util::Rng rng(7);
  const auto data = gaussians(100, rng);
  RandomForest forest;  // compute_oob defaults to false
  forest.train(data);
  EXPECT_THROW(forest.oob_error(), util::PreconditionError);
}

TEST(RandomForestTest, SaveLoadRoundTrip) {
  util::Rng rng(8);
  const auto data = gaussians(400, rng);
  RandomForestConfig config;
  config.num_trees = 8;
  config.num_threads = 1;
  RandomForest forest(config);
  forest.train(data);
  std::stringstream buffer;
  forest.save(buffer);
  const auto loaded = RandomForest::load(buffer);
  EXPECT_EQ(loaded.tree_count(), forest.tree_count());
  for (std::size_t i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(loaded.predict_proba(data.row(i)), forest.predict_proba(data.row(i)));
  }
}

TEST(RandomForestTest, SaveUntrainedThrows) {
  RandomForest forest;
  std::stringstream buffer;
  EXPECT_THROW(forest.save(buffer), util::PreconditionError);
}

TEST(RandomForestTest, SampleFractionValidation) {
  util::Rng rng(9);
  const auto data = gaussians(50, rng);
  RandomForestConfig config;
  config.sample_fraction = 0.0;
  RandomForest forest(config);
  EXPECT_THROW(forest.train(data), util::PreconditionError);
}

TEST(RandomForestTest, ScoreAllMatchesRowWiseCalls) {
  util::Rng rng(10);
  const auto data = gaussians(100, rng);
  RandomForestConfig config;
  config.num_trees = 5;
  config.num_threads = 1;
  RandomForest forest(config);
  forest.train(data);
  const auto scores = forest.score_all(data);
  ASSERT_EQ(scores.size(), data.num_rows());
  for (std::size_t i = 0; i < data.num_rows(); ++i) {
    EXPECT_DOUBLE_EQ(scores[i], forest.predict_proba(data.row(i)));
  }
}

// Property sweep over forest sizes: AUC should be monotone-ish (not
// strictly, but never collapse) and determinism must hold.
class ForestSizeTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ForestSizeTest, ReasonableAucAtEachSize) {
  util::Rng rng(42);
  const auto train = gaussians(800, rng);
  const auto test = gaussians(300, rng);
  RandomForestConfig config;
  config.num_trees = GetParam();
  config.num_threads = 2;
  RandomForest forest(config);
  forest.train(train);
  std::vector<int> labels;
  std::vector<double> scores;
  for (std::size_t i = 0; i < test.num_rows(); ++i) {
    labels.push_back(test.label(i));
    scores.push_back(forest.predict_proba(test.row(i)));
  }
  EXPECT_GT(RocCurve::compute(labels, scores).auc(), 0.8);
}

INSTANTIATE_TEST_SUITE_P(Sizes, ForestSizeTest, ::testing::Values(1, 5, 20, 60));

}  // namespace
}  // namespace seg::ml
