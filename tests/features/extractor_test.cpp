#include "features/extractor.h"

#include <gtest/gtest.h>

#include "graph/labeling.h"
#include "util/require.h"

namespace seg::features {
namespace {

using graph::GraphBuilder;
using graph::Label;
using graph::NameSet;

class ExtractorTest : public ::testing::Test {
 protected:
  dns::PublicSuffixList psl_ = dns::PublicSuffixList::with_default_rules();
  dns::DomainActivityIndex activity_;
  dns::PassiveDnsDb pdns_;

  // The running example of Figures 4/5: domain "target.net" queried by a
  // mixture of infected and unknown machines. Graph day is 100.
  graph::MachineDomainGraph make_graph() {
    dns::DayTrace trace;
    trace.day = 100;
    const auto add = [&trace](const char* machine, const char* qname,
                              std::initializer_list<const char*> ips = {}) {
      dns::QueryRecord record;
      record.day = 100;
      record.machine = machine;
      record.qname = qname;
      for (const auto* ip : ips) {
        record.resolved_ips.push_back(dns::IpV4::parse(ip));
      }
      trace.records.push_back(std::move(record));
    };
    // Known C&C domains cc1/cc2; infected machines i1, i2, i3.
    add("i1", "cc1.evil.biz");
    add("i2", "cc1.evil.biz");
    add("i2", "cc2.evil.biz");
    add("i3", "cc2.evil.biz");
    // The to-be-classified domain, queried by i1, i2 and unknown u1.
    add("i1", "target.net", {"6.6.6.1", "6.6.6.2"});
    add("i2", "target.net", {"6.6.6.1"});
    add("u1", "target.net", {"6.6.6.2"});
    // u1 also queries an unknown domain; benign machine b1.
    add("u1", "other.org");
    add("b1", "www.good.com");
    GraphBuilder builder(psl_);
    builder.add_trace(trace);
    auto graph = builder.build();
    NameSet blacklist;
    blacklist.insert("cc1.evil.biz");
    blacklist.insert("cc2.evil.biz");
    NameSet whitelist;
    whitelist.insert("good.com");
    apply_labels(graph, blacklist, whitelist);
    return graph;
  }
};

TEST_F(ExtractorTest, MachineBehaviorFractionsForUnknownDomain) {
  const auto graph = make_graph();
  FeatureExtractor extractor(graph, activity_, pdns_);
  const auto target = graph.find_domain("target.net");
  const auto features = extractor.extract(target);
  // S = {i1, i2, u1}; I = {i1, i2}; U = {u1}.
  EXPECT_DOUBLE_EQ(features[kInfectedFraction], 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(features[kUnknownFraction], 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(features[kTotalMachines], 3.0);
}

TEST_F(ExtractorTest, FractionsSumToOne) {
  const auto graph = make_graph();
  FeatureExtractor extractor(graph, activity_, pdns_);
  for (graph::DomainId d = 0; d < graph.domain_count(); ++d) {
    const auto features = extractor.extract(d);
    EXPECT_NEAR(features[kInfectedFraction] + features[kUnknownFraction], 1.0, 1e-12)
        << graph.domain_name(d);
  }
}

TEST_F(ExtractorTest, HidingLabelDemotesSingleEvidenceMachines) {
  const auto graph = make_graph();
  FeatureExtractor extractor(graph, activity_, pdns_);
  const auto cc1 = graph.find_domain("cc1.evil.biz");
  // cc1 is queried by i1 (whose only other malware domain is none: i1
  // queries cc1 only) and i2 (also queries cc2). Hiding cc1: i1 -> unknown,
  // i2 stays malware.
  const auto features = extractor.extract_hiding_label(cc1);
  EXPECT_DOUBLE_EQ(features[kInfectedFraction], 0.5);
  EXPECT_DOUBLE_EQ(features[kUnknownFraction], 0.5);
  EXPECT_DOUBLE_EQ(features[kTotalMachines], 2.0);
}

TEST_F(ExtractorTest, WithoutHidingKnownMalwareDomainLooksFullyInfected) {
  // Sanity check of the paper's motivation for hiding: without it, the
  // first F1 feature of a known malware domain is trivially 1.
  const auto graph = make_graph();
  FeatureExtractor extractor(graph, activity_, pdns_);
  const auto cc1 = graph.find_domain("cc1.evil.biz");
  const auto features = extractor.extract(cc1);
  EXPECT_DOUBLE_EQ(features[kInfectedFraction], 1.0);
  EXPECT_DOUBLE_EQ(features[kUnknownFraction], 0.0);
}

TEST_F(ExtractorTest, HidingBenignLabelDoesNotChangeInfectionCounts) {
  const auto graph = make_graph();
  FeatureExtractor extractor(graph, activity_, pdns_);
  const auto good = graph.find_domain("www.good.com");
  const auto features = extractor.extract_hiding_label(good);
  // b1 is benign; with good.com hidden b1 becomes unknown, not infected.
  EXPECT_DOUBLE_EQ(features[kInfectedFraction], 0.0);
  EXPECT_DOUBLE_EQ(features[kUnknownFraction], 1.0);
  EXPECT_DOUBLE_EQ(features[kTotalMachines], 1.0);
}

TEST_F(ExtractorTest, DomainActivityFeatures) {
  const auto graph = make_graph();
  // target.net active on days 98, 99, 100 (3 consecutive); its e2LD
  // target.net identical here. Another name active long ago.
  for (dns::Day day : {98, 99, 100}) {
    activity_.mark_active("target.net", day);
  }
  FeatureExtractor extractor(graph, activity_, pdns_);
  const auto target = graph.find_domain("target.net");
  const auto features = extractor.extract(target);
  EXPECT_DOUBLE_EQ(features[kFqdnActiveDays], 3.0);
  EXPECT_DOUBLE_EQ(features[kFqdnConsecutiveDays], 3.0);
  EXPECT_DOUBLE_EQ(features[kE2ldActiveDays], 3.0);
  EXPECT_DOUBLE_EQ(features[kE2ldConsecutiveDays], 3.0);
}

TEST_F(ExtractorTest, ActivityWindowIsBounded) {
  const auto graph = make_graph();
  // Active every day from day 1 to day 100: window of n=14 caps the count.
  for (dns::Day day = 1; day <= 100; ++day) {
    activity_.mark_active("target.net", day);
  }
  FeatureExtractor extractor(graph, activity_, pdns_);
  const auto features = extractor.extract(graph.find_domain("target.net"));
  EXPECT_DOUBLE_EQ(features[kFqdnActiveDays], 14.0);
  // Consecutive-days feature is not windowed by n; it reflects the streak.
  EXPECT_DOUBLE_EQ(features[kFqdnConsecutiveDays], 100.0);
}

TEST_F(ExtractorTest, E2ldActivityAggregatesSubdomains) {
  dns::DayTrace trace;
  trace.day = 50;
  trace.records.push_back({50, "m1", "a.zone.org", {}});
  trace.records.push_back({50, "m2", "a.zone.org", {}});
  GraphBuilder builder(psl_);
  builder.add_trace(trace);
  auto graph = builder.build();
  apply_labels(graph, NameSet{}, NameSet{});
  // The FQDN was active only on day 50, but sibling subdomains kept the
  // e2LD active on 48 and 49 too.
  activity_.mark_active("a.zone.org", 50);
  activity_.mark_active("zone.org", 48);
  activity_.mark_active("zone.org", 49);
  activity_.mark_active("zone.org", 50);
  FeatureExtractor extractor(graph, activity_, pdns_);
  const auto features = extractor.extract(graph.find_domain("a.zone.org"));
  EXPECT_DOUBLE_EQ(features[kFqdnActiveDays], 1.0);
  EXPECT_DOUBLE_EQ(features[kE2ldActiveDays], 3.0);
  EXPECT_DOUBLE_EQ(features[kE2ldConsecutiveDays], 3.0);
}

TEST_F(ExtractorTest, IpAbuseFeatures) {
  const auto graph = make_graph();
  // 6.6.6.1 was pointed to by a malware domain 10 days before the graph
  // day; 6.6.6.2 only by unknown domains. Both share the /24 6.6.6.0.
  pdns_.add_observation(90, dns::IpV4::parse("6.6.6.1"), dns::PdnsAssociation::kMalware);
  pdns_.add_observation(95, dns::IpV4::parse("6.6.6.2"), dns::PdnsAssociation::kUnknown);
  FeatureExtractor extractor(graph, activity_, pdns_);
  const auto features = extractor.extract(graph.find_domain("target.net"));
  // A = {6.6.6.1, 6.6.6.2}: one of two IPs malware-associated.
  EXPECT_DOUBLE_EQ(features[kIpMalwareFraction], 0.5);
  // Single /24, and it is malware-associated.
  EXPECT_DOUBLE_EQ(features[kPrefixMalwareFraction], 1.0);
  EXPECT_DOUBLE_EQ(features[kIpUnknownCount], 1.0);
  EXPECT_DOUBLE_EQ(features[kPrefixUnknownCount], 1.0);
}

TEST_F(ExtractorTest, PdnsWindowExcludesObservationsOnGraphDayAndOlderThanW) {
  const auto graph = make_graph();  // day 100, W = 150 -> window [-50, 99]
  pdns_.add_observation(100, dns::IpV4::parse("6.6.6.1"),
                        dns::PdnsAssociation::kMalware);  // same-day: excluded
  pdns_.add_observation(-60, dns::IpV4::parse("6.6.6.2"),
                        dns::PdnsAssociation::kMalware);  // too old: excluded
  FeatureExtractor extractor(graph, activity_, pdns_);
  const auto features = extractor.extract(graph.find_domain("target.net"));
  EXPECT_DOUBLE_EQ(features[kIpMalwareFraction], 0.0);
  EXPECT_DOUBLE_EQ(features[kPrefixMalwareFraction], 0.0);
}

TEST_F(ExtractorTest, DomainWithoutResolvedIpsHasZeroIpFeatures) {
  const auto graph = make_graph();
  FeatureExtractor extractor(graph, activity_, pdns_);
  const auto other = graph.find_domain("other.org");
  const auto features = extractor.extract(other);
  EXPECT_DOUBLE_EQ(features[kIpMalwareFraction], 0.0);
  EXPECT_DOUBLE_EQ(features[kPrefixMalwareFraction], 0.0);
  EXPECT_DOUBLE_EQ(features[kIpUnknownCount], 0.0);
  EXPECT_DOUBLE_EQ(features[kPrefixUnknownCount], 0.0);
}

TEST_F(ExtractorTest, InvalidConfigurationThrows) {
  const auto graph = make_graph();
  FeatureConfig config;
  config.activity_window_days = 0;
  EXPECT_THROW(FeatureExtractor(graph, activity_, pdns_, config), util::PreconditionError);
  config = FeatureConfig{};
  config.pdns_window_days = -1;
  EXPECT_THROW(FeatureExtractor(graph, activity_, pdns_, config), util::PreconditionError);
}

TEST_F(ExtractorTest, DomainIdOutOfRangeThrows) {
  const auto graph = make_graph();
  FeatureExtractor extractor(graph, activity_, pdns_);
  EXPECT_THROW(extractor.extract(static_cast<graph::DomainId>(graph.domain_count())),
               util::PreconditionError);
}

}  // namespace
}  // namespace seg::features
