#include "features/feature_config.h"

#include <gtest/gtest.h>

#include "util/require.h"

namespace seg::features {
namespace {

TEST(FeatureConfigTest, ElevenNamedFeatures) {
  EXPECT_EQ(feature_names().size(), kNumFeatures);
  EXPECT_EQ(kNumFeatures, 11u);
  EXPECT_EQ(feature_names()[kInfectedFraction], "f1_infected_fraction");
  EXPECT_EQ(feature_names()[kPrefixUnknownCount], "f3_prefix_unknown_count");
}

TEST(FeatureConfigTest, GroupAssignment) {
  EXPECT_EQ(feature_group(kInfectedFraction), FeatureGroup::kMachineBehavior);
  EXPECT_EQ(feature_group(kTotalMachines), FeatureGroup::kMachineBehavior);
  EXPECT_EQ(feature_group(kFqdnActiveDays), FeatureGroup::kDomainActivity);
  EXPECT_EQ(feature_group(kE2ldConsecutiveDays), FeatureGroup::kDomainActivity);
  EXPECT_EQ(feature_group(kIpMalwareFraction), FeatureGroup::kIpAbuse);
  EXPECT_EQ(feature_group(kPrefixUnknownCount), FeatureGroup::kIpAbuse);
  EXPECT_THROW(feature_group(kNumFeatures), util::PreconditionError);
}

TEST(FeatureConfigTest, GroupSizesMatchPaper) {
  EXPECT_EQ(feature_indices_for({FeatureGroup::kMachineBehavior}).size(), 3u);
  EXPECT_EQ(feature_indices_for({FeatureGroup::kDomainActivity}).size(), 4u);
  EXPECT_EQ(feature_indices_for({FeatureGroup::kIpAbuse}).size(), 4u);
}

TEST(FeatureConfigTest, ExclusionIsComplement) {
  const auto no_ip = feature_indices_excluding(FeatureGroup::kIpAbuse);
  EXPECT_EQ(no_ip.size(), 7u);
  for (const auto i : no_ip) {
    EXPECT_NE(feature_group(i), FeatureGroup::kIpAbuse);
  }
  const auto no_machine = feature_indices_excluding(FeatureGroup::kMachineBehavior);
  EXPECT_EQ(no_machine.size(), 8u);
  const auto no_activity = feature_indices_excluding(FeatureGroup::kDomainActivity);
  EXPECT_EQ(no_activity.size(), 7u);
}

TEST(FeatureConfigTest, AllGroupsTogetherCoverEverything) {
  const auto all = feature_indices_for({FeatureGroup::kMachineBehavior,
                                        FeatureGroup::kDomainActivity,
                                        FeatureGroup::kIpAbuse});
  EXPECT_EQ(all.size(), kNumFeatures);
  for (std::size_t i = 0; i < kNumFeatures; ++i) {
    EXPECT_EQ(all[i], i);
  }
}

}  // namespace
}  // namespace seg::features
