#include "features/training_set.h"

#include <gtest/gtest.h>

#include <set>

#include "graph/labeling.h"

namespace seg::features {
namespace {

using graph::GraphBuilder;
using graph::Label;
using graph::NameSet;

class TrainingSetTest : public ::testing::Test {
 protected:
  dns::PublicSuffixList psl_ = dns::PublicSuffixList::with_default_rules();
  dns::DomainActivityIndex activity_;
  dns::PassiveDnsDb pdns_;

  graph::MachineDomainGraph make_graph(int benign_domains, int malware_domains,
                                       int unknown_domains) {
    dns::DayTrace trace;
    trace.day = 10;
    const auto add = [&trace](const std::string& machine, const std::string& qname) {
      trace.records.push_back({10, machine, qname, {}});
    };
    NameSet blacklist;
    NameSet whitelist;
    for (int i = 0; i < benign_domains; ++i) {
      const auto name = "good" + std::to_string(i) + ".com";
      add("b1", name);
      add("b2", name);
      whitelist.insert(name);
    }
    for (int i = 0; i < malware_domains; ++i) {
      const auto name = "cc" + std::to_string(i) + ".evil.biz";
      add("i1", name);
      add("i2", name);
      blacklist.insert(name);
    }
    for (int i = 0; i < unknown_domains; ++i) {
      const auto name = "unk" + std::to_string(i) + ".net";
      add("u1", name);
      add("i1", name);
    }
    GraphBuilder builder(psl_);
    builder.add_trace(trace);
    auto graph = builder.build();
    apply_labels(graph, blacklist, whitelist);
    return graph;
  }
};

TEST_F(TrainingSetTest, BuildsRowsForAllKnownDomains) {
  const auto graph = make_graph(5, 3, 2);
  FeatureExtractor extractor(graph, activity_, pdns_);
  const auto result = build_training_set(graph, extractor);
  EXPECT_EQ(result.malware_rows, 3u);
  EXPECT_EQ(result.benign_rows, 5u);
  EXPECT_EQ(result.dataset.num_rows(), 8u);
  EXPECT_EQ(result.dataset.count_label(1), 3u);
  EXPECT_EQ(result.dataset.count_label(0), 5u);
  EXPECT_EQ(result.dataset.num_features(), kNumFeatures);
}

TEST_F(TrainingSetTest, UnknownDomainsAreNotInTrainingSet) {
  const auto graph = make_graph(2, 2, 6);
  FeatureExtractor extractor(graph, activity_, pdns_);
  const auto result = build_training_set(graph, extractor);
  EXPECT_EQ(result.dataset.num_rows(), 4u);
}

TEST_F(TrainingSetTest, ExcludeSetQuarantinesTestDomains) {
  const auto graph = make_graph(4, 4, 0);
  FeatureExtractor extractor(graph, activity_, pdns_);
  NameSet exclude;
  exclude.insert("cc0.evil.biz");
  exclude.insert("good0.com");
  exclude.insert("good1.com");
  TrainingSetOptions options;
  options.exclude = &exclude;
  const auto result = build_training_set(graph, extractor, options);
  EXPECT_EQ(result.excluded, 3u);
  EXPECT_EQ(result.malware_rows, 3u);
  EXPECT_EQ(result.benign_rows, 2u);
}

TEST_F(TrainingSetTest, BenignSubsamplingCapsRows) {
  const auto graph = make_graph(20, 2, 0);
  FeatureExtractor extractor(graph, activity_, pdns_);
  TrainingSetOptions options;
  options.max_benign = 5;
  const auto result = build_training_set(graph, extractor, options);
  EXPECT_EQ(result.benign_rows, 5u);
  EXPECT_EQ(result.malware_rows, 2u);
}

TEST_F(TrainingSetTest, SubsamplingIsDeterministicPerSeed) {
  const auto graph = make_graph(20, 2, 0);
  FeatureExtractor extractor(graph, activity_, pdns_);
  TrainingSetOptions options;
  options.max_benign = 7;
  options.seed = 99;
  const auto a = build_training_set(graph, extractor, options);
  const auto b = build_training_set(graph, extractor, options);
  ASSERT_EQ(a.dataset.num_rows(), b.dataset.num_rows());
  for (std::size_t i = 0; i < a.dataset.num_rows(); ++i) {
    for (std::size_t f = 0; f < kNumFeatures; ++f) {
      EXPECT_DOUBLE_EQ(a.dataset.value(i, f), b.dataset.value(i, f));
    }
  }
}

TEST_F(TrainingSetTest, TrainingRowsUseHiddenLabelSemantics) {
  // A malware domain whose querying machines have no other malware
  // evidence must produce infected_fraction 0 in its training row, not 1.
  dns::DayTrace trace;
  trace.day = 5;
  trace.records.push_back({5, "i1", "only.evil.biz", {}});
  trace.records.push_back({5, "i2", "only.evil.biz", {}});
  trace.records.push_back({5, "b1", "good.com", {}});
  trace.records.push_back({5, "b2", "good.com", {}});
  GraphBuilder builder(psl_);
  builder.add_trace(trace);
  auto graph = builder.build();
  NameSet blacklist;
  blacklist.insert("only.evil.biz");
  NameSet whitelist;
  whitelist.insert("good.com");
  apply_labels(graph, blacklist, whitelist);
  FeatureExtractor extractor(graph, activity_, pdns_);
  const auto result = build_training_set(graph, extractor);
  ASSERT_EQ(result.dataset.num_rows(), 2u);
  // Row 0 is the malware domain (malware rows are emitted first).
  EXPECT_EQ(result.dataset.label(0), 1);
  EXPECT_DOUBLE_EQ(result.dataset.value(0, kInfectedFraction), 0.0);
  EXPECT_DOUBLE_EQ(result.dataset.value(0, kUnknownFraction), 1.0);
}

TEST_F(TrainingSetTest, UnknownSetListsOnlyUnknownDomains) {
  const auto graph = make_graph(3, 2, 4);
  FeatureExtractor extractor(graph, activity_, pdns_);
  const auto unknown = build_unknown_set(graph, extractor);
  EXPECT_EQ(unknown.dataset.num_rows(), 4u);
  ASSERT_EQ(unknown.domain_ids.size(), 4u);
  std::set<std::string> names;
  for (const auto d : unknown.domain_ids) {
    EXPECT_EQ(graph.domain_label(d), Label::kUnknown);
    names.insert(std::string(graph.domain_name(d)));
  }
  EXPECT_TRUE(names.contains("unk0.net"));
  EXPECT_EQ(names.size(), 4u);
}

TEST_F(TrainingSetTest, UnknownSetIsEmptyWhenEverythingIsKnown) {
  const auto graph = make_graph(2, 2, 0);
  FeatureExtractor extractor(graph, activity_, pdns_);
  const auto unknown = build_unknown_set(graph, extractor);
  EXPECT_EQ(unknown.dataset.num_rows(), 0u);
  EXPECT_TRUE(unknown.domain_ids.empty());
}

}  // namespace
}  // namespace seg::features
