#include "sim/world.h"
#include "dns/domain_name.h"

#include <gtest/gtest.h>

#include <set>
#include <unordered_map>

#include "util/require.h"

namespace seg::sim {
namespace {

class WorldTest : public ::testing::Test {
 protected:
  static const World& world() {
    static World instance{ScenarioConfig::small()};
    return instance;
  }
  // A mutable world for generate_day (background state advances).
  static World& mutable_world() { return const_cast<World&>(world()); }
};

TEST_F(WorldTest, ConstructionBuildsOracles) {
  const auto& w = world();
  EXPECT_EQ(w.isp_count(), 2u);
  EXPECT_GT(w.blacklist().records().size(), 0u);
  EXPECT_GT(w.whitelist().size(), 0u);
  EXPECT_GT(w.sandbox().size(), 0u);
  EXPECT_GT(w.pdns().observation_count(), 0u);
  EXPECT_GT(w.activity().tracked_names(), 0u);
}

TEST_F(WorldTest, TraceHasExpectedShape) {
  auto trace = mutable_world().generate_day(0, 0);
  EXPECT_EQ(trace.day, 0);
  EXPECT_GT(trace.records.size(), 1000u);
  std::set<std::string> machines;
  for (const auto& record : trace.records) {
    EXPECT_EQ(record.day, 0);
    EXPECT_FALSE(record.machine.empty());
    EXPECT_TRUE(dns::DomainName::is_valid(record.qname)) << record.qname;
    machines.insert(record.machine);
  }
  // Most of the 400 ISP1 machines appear.
  EXPECT_GT(machines.size(), 300u);
  EXPECT_LE(machines.size(), 400u);
}

TEST_F(WorldTest, TracesAreDeterministicAndOrderIndependent) {
  World w1{ScenarioConfig::small()};
  World w2{ScenarioConfig::small()};
  // Generate in different orders; traces for the same (isp, day) must match.
  const auto a1 = w1.generate_day(0, 1);
  const auto b1 = w1.generate_day(1, 2);
  const auto b2 = w2.generate_day(1, 2);
  const auto a2 = w2.generate_day(0, 1);
  ASSERT_EQ(a1.records.size(), a2.records.size());
  ASSERT_EQ(b1.records.size(), b2.records.size());
  for (std::size_t i = 0; i < a1.records.size(); ++i) {
    EXPECT_EQ(a1.records[i], a2.records[i]);
  }
  for (std::size_t i = 0; i < b1.records.size(); ++i) {
    EXPECT_EQ(b1.records[i], b2.records[i]);
  }
}

TEST_F(WorldTest, DifferentSeedsProduceDifferentWorlds) {
  auto config = ScenarioConfig::small();
  config.seed = 777;
  World other{config};
  EXPECT_NE(other.generate_day(0, 0).records.size(),
            mutable_world().generate_day(0, 0).records.size());
}

TEST_F(WorldTest, InfectedMachinesQueryActiveMalwareDomains) {
  auto& w = mutable_world();
  const auto trace = w.generate_day(0, 0);
  std::size_t malware_queries = 0;
  for (const auto& record : trace.records) {
    if (w.is_true_malware(record.qname)) {
      ++malware_queries;
    }
  }
  EXPECT_GT(malware_queries, 0u);
}

TEST_F(WorldTest, BenignMachinesNeverQueryMalwareDomains) {
  // Machines that query a true malware domain must be the infected ones —
  // the generator enforces intuition (3) by construction. We can verify the
  // contrapositive: the set of machines with malware queries is small.
  auto& w = mutable_world();
  const auto trace = w.generate_day(1, 0);
  std::set<std::string> infected;
  std::set<std::string> all;
  for (const auto& record : trace.records) {
    all.insert(record.machine);
    if (w.is_true_malware(record.qname)) {
      infected.insert(record.machine);
    }
  }
  EXPECT_LT(infected.size(), all.size() / 10);
  EXPECT_GT(infected.size(), 0u);
}

TEST_F(WorldTest, MalwareDomainLifetimesAreConsistent) {
  for (const auto& record : world().blacklist().records()) {
    EXPECT_GE(record.first_active, -ScenarioConfig::small().warmup_days);
    if (record.retired >= 0) {
      EXPECT_GT(record.retired, record.first_active);
    }
    if (record.commercial_listed) {
      EXPECT_GT(record.commercial_day, record.first_active);
    }
    EXPECT_FALSE(record.ips.empty());
    EXPECT_FALSE(record.name.empty());
    EXPECT_TRUE(dns::DomainName::is_valid(record.name));
  }
}

TEST_F(WorldTest, BlacklistViewsGrowOverTime) {
  const auto& blacklist = world().blacklist();
  const auto early = blacklist.as_of(BlacklistKind::kCommercial, 0);
  const auto late = blacklist.as_of(BlacklistKind::kCommercial, 60);
  EXPECT_GT(late.size(), early.size());
}

TEST_F(WorldTest, PublicViewIsSmallerThanCommercial) {
  const auto& blacklist = world().blacklist();
  const auto commercial = blacklist.as_of(BlacklistKind::kCommercial, 30);
  const auto public_view = blacklist.as_of(BlacklistKind::kPublic, 30);
  EXPECT_LT(public_view.size(), commercial.size());
  EXPECT_GT(public_view.size(), 0u);
}

TEST_F(WorldTest, ActiveMalwareDomainsMatchGroundTruth) {
  const auto& w = world();
  const auto active = w.active_malware_domains(10);
  const auto& config = w.config();
  EXPECT_EQ(active.size(), config.families * config.cc_domains_per_family);
  for (const auto& name : active) {
    EXPECT_TRUE(w.is_true_malware(name));
  }
}

TEST_F(WorldTest, WhitelistContainsFreeregNoise) {
  const auto& w = world();
  std::size_t noise = 0;
  // The zones are whitelisted but flagged as noise.
  for (const auto& record : w.blacklist().records()) {
    if (record.under_freereg_zone) {
      ++noise;
    }
  }
  EXPECT_GT(noise, 0u);  // some C&C domains hide under free-reg zones
}

TEST_F(WorldTest, TopWhitelistSubsetIsSmaller) {
  const auto& whitelist = world().whitelist();
  const auto top = whitelist.top(10);
  EXPECT_EQ(top.size(), 10u);
  EXPECT_LT(top.size(), whitelist.size());
}

TEST_F(WorldTest, ActivityIndexKnowsPopularDomainsEveryDay) {
  auto& w = mutable_world();
  w.generate_day(0, 3);  // advance background through day 3
  // Popular apex domains are active every single day of a 14-day window.
  const auto& whitelist_entries = w.whitelist().stable_entries();
  ASSERT_FALSE(whitelist_entries.empty());
  int fully_active = 0;
  int checked = 0;
  for (std::size_t i = 0; i < 50 && i < whitelist_entries.size(); ++i) {
    ++checked;
    if (w.activity().active_days(whitelist_entries[i], -10, 3) == 14) {
      ++fully_active;
    }
  }
  EXPECT_GT(fully_active, checked / 2);
}

TEST_F(WorldTest, PdnsKnowsAbusedIpSpace) {
  // After warmup, at least some abused-pool IPs carry malware associations.
  const auto& w = world();
  std::size_t associated = 0;
  for (const auto& record : w.blacklist().records()) {
    if (!record.commercial_listed || record.commercial_day > -1) {
      continue;
    }
    for (const auto ip : record.ips) {
      if (w.pdns().ip_malware_associated(ip, -w.config().warmup_days, -1)) {
        ++associated;
        break;
      }
    }
  }
  EXPECT_GT(associated, 0u);
}

TEST_F(WorldTest, GenerateDayValidatesArguments) {
  auto& w = mutable_world();
  EXPECT_THROW(w.generate_day(5, 0), util::PreconditionError);
  EXPECT_THROW(w.generate_day(0, -1), util::PreconditionError);
  EXPECT_THROW(w.generate_day(0, World::kHorizonDays + 1), util::PreconditionError);
}

TEST_F(WorldTest, Figure3ShapeMostInfectedMachinesQueryMultipleCcDomains) {
  // The generator must reproduce Figure 3's headline: ~70% of machines
  // that query any malware domain query more than one, and (nearly) none
  // query more than twenty.
  auto& w = mutable_world();
  const auto trace = w.generate_day(1, 1);
  std::unordered_map<std::string, std::set<std::string>> per_machine;
  for (const auto& record : trace.records) {
    if (w.is_true_malware(record.qname)) {
      per_machine[record.machine].insert(record.qname);
    }
  }
  ASSERT_GT(per_machine.size(), 5u);
  std::size_t more_than_one = 0;
  std::size_t more_than_twenty = 0;
  for (const auto& [machine, domains] : per_machine) {
    more_than_one += domains.size() > 1 ? 1 : 0;
    more_than_twenty += domains.size() > 20 ? 1 : 0;
  }
  const double frac = static_cast<double>(more_than_one) /
                      static_cast<double>(per_machine.size());
  EXPECT_GT(frac, 0.5);
  EXPECT_LT(frac, 0.95);
  EXPECT_EQ(more_than_twenty, 0u);
}

}  // namespace
}  // namespace seg::sim
