#include <gtest/gtest.h>

#include <set>
#include <unordered_map>

#include "sim/world.h"

namespace seg::sim {
namespace {

ScenarioConfig prober_config() {
  auto config = ScenarioConfig::small();
  config.prober_fraction = 0.02;  // ~8 probers in ISP1
  config.prober_blacklist_queries = 40;
  return config;
}

TEST(ProberWorldTest, ProbersQueryManyBlacklistedDomains) {
  World world{prober_config()};
  // Probers scan week-old blacklist entries; use a later day so entries
  // exist.
  const dns::Day day = 10;
  const auto trace = world.generate_day(0, day);
  const auto blacklist = world.blacklist().as_of(BlacklistKind::kCommercial, day);
  std::unordered_map<std::string, std::set<std::string>> blacklisted_per_machine;
  for (const auto& record : trace.records) {
    if (blacklist.contains(record.qname)) {
      blacklisted_per_machine[record.machine].insert(record.qname);
    }
  }
  std::size_t heavy = 0;
  for (const auto& [machine, domains] : blacklisted_per_machine) {
    heavy += domains.size() >= 25 ? 1 : 0;
  }
  EXPECT_GE(heavy, 4u);   // the probers stand out
  EXPECT_LE(heavy, 12u);  // and only the probers
}

TEST(ProberWorldTest, ProbersAreNotGroundTruthInfected) {
  World world{prober_config()};
  const auto trace = world.generate_day(0, 10);
  const auto blacklist = world.blacklist().as_of(BlacklistKind::kCommercial, 10);
  std::unordered_map<std::string, std::set<std::string>> blacklisted_per_machine;
  for (const auto& record : trace.records) {
    if (blacklist.contains(record.qname)) {
      blacklisted_per_machine[record.machine].insert(record.qname);
    }
  }
  for (const auto& [machine, domains] : blacklisted_per_machine) {
    if (domains.size() >= 25) {
      EXPECT_FALSE(world.is_infected_machine(machine)) << machine;
    }
  }
}

TEST(ProberWorldTest, DefaultScenarioHasNoProbers) {
  World world{ScenarioConfig::small()};
  const auto trace = world.generate_day(0, 10);
  const auto blacklist = world.blacklist().as_of(BlacklistKind::kCommercial, 10);
  std::unordered_map<std::string, std::set<std::string>> blacklisted_per_machine;
  for (const auto& record : trace.records) {
    if (blacklist.contains(record.qname)) {
      blacklisted_per_machine[record.machine].insert(record.qname);
    }
  }
  for (const auto& [machine, domains] : blacklisted_per_machine) {
    EXPECT_LT(domains.size(), 25u) << machine;
  }
}

TEST(InfectedGroundTruthTest, CountsAndMembershipAgree) {
  World world{ScenarioConfig::small()};
  const auto count = world.infected_machine_count(0);
  EXPECT_GT(count, 0u);
  // Enumerate by probing every machine name that appears in a trace.
  const auto trace = world.generate_day(0, 0);
  std::set<std::string> machines;
  for (const auto& record : trace.records) {
    machines.insert(record.machine);
  }
  std::size_t infected_seen = 0;
  for (const auto& machine : machines) {
    infected_seen += world.is_infected_machine(machine) ? 1 : 0;
  }
  EXPECT_GT(infected_seen, 0u);
  EXPECT_LE(infected_seen, count);
  EXPECT_FALSE(world.is_infected_machine("no-such-machine"));
}

}  // namespace
}  // namespace seg::sim
