// Seed-swept invariants of the traffic model: properties Segugio's
// evaluation relies on must hold for every seed, not just the default.
#include <gtest/gtest.h>

#include <set>
#include <unordered_map>

#include "sim/world.h"

namespace seg::sim {
namespace {

class WorldSeedSweep : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  static ScenarioConfig config_for(std::uint64_t seed) {
    auto config = ScenarioConfig::small();
    config.seed = seed;
    return config;
  }
};

TEST_P(WorldSeedSweep, OnlyInfectedMachinesQueryTrueMalware) {
  // Intuition (3) by construction: benign machines never query
  // malware-only domains.
  World world{config_for(GetParam())};
  const auto trace = world.generate_day(0, 1);
  for (const auto& record : trace.records) {
    if (world.is_true_malware(record.qname)) {
      EXPECT_TRUE(world.is_infected_machine(record.machine))
          << record.machine << " queried " << record.qname;
    }
  }
}

TEST_P(WorldSeedSweep, SameFamilyBotsShareControlDomains) {
  // Intuition (2): machines of the same family query overlapping C&C sets.
  // Weak form checked per-day: every true malware domain queried at all is
  // queried by at least one machine, and popular ones by several.
  World world{config_for(GetParam())};
  const auto trace = world.generate_day(1, 1);
  std::unordered_map<std::string, std::set<std::string>> machines_per_domain;
  for (const auto& record : trace.records) {
    if (world.is_true_malware(record.qname)) {
      machines_per_domain[record.qname].insert(record.machine);
    }
  }
  ASSERT_FALSE(machines_per_domain.empty());
  std::size_t shared = 0;
  for (const auto& [domain, machines] : machines_per_domain) {
    shared += machines.size() >= 2 ? 1 : 0;
  }
  // A meaningful fraction of queried C&C domains have >= 2 querying bots.
  EXPECT_GT(shared * 2, machines_per_domain.size() / 2);
}

TEST_P(WorldSeedSweep, BlacklistOnlyContainsTrueMalwareAndKnownNoise) {
  World world{config_for(GetParam())};
  const auto commercial = world.blacklist().as_of(BlacklistKind::kCommercial, 20);
  for (const auto& name : commercial) {
    EXPECT_TRUE(world.is_true_malware(name)) << name;
  }
  // The public view may contain noise entries, but every noise entry is
  // *not* true malware, by construction.
  const auto public_view = world.blacklist().as_of(BlacklistKind::kPublic, 20);
  std::size_t noise = 0;
  for (const auto& name : public_view) {
    noise += world.is_true_malware(name) ? 0 : 1;
  }
  EXPECT_LE(noise, world.config().public_noise_domains);
}

TEST_P(WorldSeedSweep, ActivityRespectsFqdnImpliesE2ld) {
  World world{config_for(GetParam())};
  world.generate_day(0, 2);
  // Sample whitelisted e2LDs: their activity must dominate any FQDN's.
  const auto& stable = world.whitelist().stable_entries();
  for (std::size_t i = 0; i < 30 && i < stable.size(); ++i) {
    const auto e2ld_days = world.activity().active_days(stable[i], -20, 2);
    const auto www_days = world.activity().active_days("www." + stable[i], -20, 2);
    EXPECT_GE(e2ld_days, www_days) << stable[i];
  }
}

TEST_P(WorldSeedSweep, CcDomainIpsStayFixedForTheirLifetime) {
  // A control domain's hosting does not silently change: the trace always
  // reports the ground-truth record's IPs.
  World world{config_for(GetParam())};
  const auto trace = world.generate_day(0, 3);
  std::unordered_map<std::string, std::vector<dns::IpV4>> seen;
  for (const auto& record : trace.records) {
    if (!world.is_true_malware(record.qname)) {
      continue;
    }
    const auto it = seen.find(record.qname);
    if (it == seen.end()) {
      seen.emplace(record.qname, record.resolved_ips);
    } else {
      EXPECT_EQ(it->second, record.resolved_ips) << record.qname;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WorldSeedSweep, ::testing::Values(1, 99, 4242, 987654321));

}  // namespace
}  // namespace seg::sim
