#include "dns/activity_index.h"

#include <gtest/gtest.h>

namespace seg::dns {
namespace {

TEST(ActivityIndexTest, UnseenNameHasZeroActivity) {
  DomainActivityIndex index;
  EXPECT_EQ(index.active_days("x.com", 0, 100), 0);
  EXPECT_EQ(index.consecutive_days_ending("x.com", 10), 0);
  EXPECT_EQ(index.first_seen("x.com"), std::nullopt);
}

TEST(ActivityIndexTest, ActiveDaysCountsWithinWindow) {
  DomainActivityIndex index;
  for (Day d : {1, 3, 5, 7, 9}) {
    index.mark_active("a.com", d);
  }
  EXPECT_EQ(index.active_days("a.com", 1, 9), 5);
  EXPECT_EQ(index.active_days("a.com", 2, 6), 2);  // days 3, 5
  EXPECT_EQ(index.active_days("a.com", 10, 20), 0);
}

TEST(ActivityIndexTest, MarkActiveIsIdempotentPerDay) {
  DomainActivityIndex index;
  index.mark_active("a.com", 4);
  index.mark_active("a.com", 4);
  EXPECT_EQ(index.active_days("a.com", 4, 4), 1);
}

TEST(ActivityIndexTest, ConsecutiveDaysEnding) {
  DomainActivityIndex index;
  for (Day d : {2, 3, 4, 6, 7}) {
    index.mark_active("a.com", d);
  }
  EXPECT_EQ(index.consecutive_days_ending("a.com", 4), 3);  // 2,3,4
  EXPECT_EQ(index.consecutive_days_ending("a.com", 7), 2);  // 6,7
  EXPECT_EQ(index.consecutive_days_ending("a.com", 5), 0);  // not active on 5
  EXPECT_EQ(index.consecutive_days_ending("a.com", 2), 1);
}

TEST(ActivityIndexTest, OutOfOrderMarking) {
  DomainActivityIndex index;
  index.mark_active("a.com", 9);
  index.mark_active("a.com", 7);
  index.mark_active("a.com", 8);
  EXPECT_EQ(index.consecutive_days_ending("a.com", 9), 3);
  EXPECT_EQ(index.first_seen("a.com"), 7);
}

TEST(ActivityIndexTest, NamesAreIndependent) {
  DomainActivityIndex index;
  index.mark_active("a.com", 1);
  index.mark_active("b.com", 2);
  EXPECT_EQ(index.active_days("a.com", 0, 10), 1);
  EXPECT_EQ(index.active_days("b.com", 0, 10), 1);
  EXPECT_EQ(index.tracked_names(), 2u);
}

TEST(ActivityIndexTest, FirstSeen) {
  DomainActivityIndex index;
  index.mark_active("a.com", 42);
  index.mark_active("a.com", 12);
  EXPECT_EQ(index.first_seen("a.com"), 12);
}

}  // namespace
}  // namespace seg::dns
