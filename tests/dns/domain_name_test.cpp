#include "dns/domain_name.h"

#include <gtest/gtest.h>

#include "util/require.h"

namespace seg::dns {
namespace {

TEST(DomainNameTest, ParseNormalizesCaseAndTrailingDot) {
  EXPECT_EQ(DomainName::parse("WwW.ExAmPlE.CoM").str(), "www.example.com");
  EXPECT_EQ(DomainName::parse("example.com.").str(), "example.com");
}

TEST(DomainNameTest, ParseAcceptsSingleLabel) {
  EXPECT_EQ(DomainName::parse("localhost").str(), "localhost");
}

TEST(DomainNameTest, ParseAcceptsDigitsHyphensUnderscores) {
  EXPECT_EQ(DomainName::parse("_dmarc.ab-1.example.com").str(), "_dmarc.ab-1.example.com");
}

TEST(DomainNameTest, ParseRejectsMalformed) {
  for (const char* bad :
       {"", ".", "..", ".example.com", "example..com", "exa mple.com", "-bad.com",
        "bad-.com", "ex!ample.com"}) {
    EXPECT_THROW(DomainName::parse(bad), util::ParseError) << bad;
  }
}

TEST(DomainNameTest, ParseRejectsOverlongNameAndLabel) {
  const std::string long_label(64, 'a');
  EXPECT_THROW(DomainName::parse(long_label + ".com"), util::ParseError);
  std::string long_name;
  for (int i = 0; i < 64; ++i) {
    long_name += "abcd.";
  }
  long_name += "com";  // > 253 chars
  EXPECT_THROW(DomainName::parse(long_name), util::ParseError);
}

TEST(DomainNameTest, IsValidAgreesWithParse) {
  EXPECT_TRUE(DomainName::is_valid("a.b.c"));
  EXPECT_FALSE(DomainName::is_valid("a..c"));
}

TEST(DomainNameTest, Labels) {
  const auto name = DomainName::parse("www.example.com");
  const auto labels = name.labels();
  ASSERT_EQ(labels.size(), 3u);
  EXPECT_EQ(labels[0], "www");
  EXPECT_EQ(labels[2], "com");
  EXPECT_EQ(name.label_count(), 3u);
}

TEST(DomainNameTest, TldAndParent) {
  const auto name = DomainName::parse("www.example.com");
  EXPECT_EQ(name.tld(), "com");
  EXPECT_EQ(name.parent(), "example.com");
  EXPECT_EQ(DomainName::parse("com").parent(), "");
  EXPECT_EQ(DomainName::parse("com").tld(), "com");
}

TEST(DomainNameTest, IsSubdomainOf) {
  const auto name = DomainName::parse("a.b.example.com");
  EXPECT_TRUE(name.is_subdomain_of("example.com"));
  EXPECT_TRUE(name.is_subdomain_of("b.example.com"));
  EXPECT_TRUE(name.is_subdomain_of("a.b.example.com"));  // itself
  EXPECT_FALSE(name.is_subdomain_of("xample.com"));      // not on label boundary
  EXPECT_FALSE(name.is_subdomain_of("other.com"));
  EXPECT_FALSE(DomainName::parse("example.com").is_subdomain_of("www.example.com"));
}

}  // namespace
}  // namespace seg::dns
