#include "dns/pdns.h"

#include <gtest/gtest.h>

#include <vector>

namespace seg::dns {
namespace {

TEST(PassiveDnsDbTest, EmptyDbHasNoAssociations) {
  PassiveDnsDb db;
  const auto ip = IpV4::parse("1.2.3.4");
  EXPECT_FALSE(db.ip_malware_associated(ip, 0, 100));
  EXPECT_FALSE(db.prefix_malware_associated(ip, 0, 100));
  EXPECT_FALSE(db.ip_unknown_associated(ip, 0, 100));
  EXPECT_FALSE(db.prefix_unknown_associated(ip, 0, 100));
  EXPECT_EQ(db.observation_count(), 0u);
  EXPECT_EQ(db.distinct_ip_count(), 0u);
}

TEST(PassiveDnsDbTest, MalwareAssociationWithinWindow) {
  PassiveDnsDb db;
  const auto ip = IpV4::parse("5.6.7.8");
  db.add_observation(50, ip, PdnsAssociation::kMalware);
  EXPECT_TRUE(db.ip_malware_associated(ip, 0, 100));
  EXPECT_TRUE(db.ip_malware_associated(ip, 50, 50));
  EXPECT_FALSE(db.ip_malware_associated(ip, 0, 49));
  EXPECT_FALSE(db.ip_malware_associated(ip, 51, 100));
}

TEST(PassiveDnsDbTest, PrefixAssociationCoversSiblingIps) {
  PassiveDnsDb db;
  db.add_observation(10, IpV4::parse("9.9.9.1"), PdnsAssociation::kMalware);
  // Different IP, same /24.
  EXPECT_TRUE(db.prefix_malware_associated(IpV4::parse("9.9.9.200"), 0, 20));
  EXPECT_FALSE(db.ip_malware_associated(IpV4::parse("9.9.9.200"), 0, 20));
  // Different /24.
  EXPECT_FALSE(db.prefix_malware_associated(IpV4::parse("9.9.10.1"), 0, 20));
}

TEST(PassiveDnsDbTest, UnknownAndMalwareTrackedSeparately) {
  PassiveDnsDb db;
  const auto ip = IpV4::parse("7.7.7.7");
  db.add_observation(5, ip, PdnsAssociation::kUnknown);
  EXPECT_TRUE(db.ip_unknown_associated(ip, 0, 10));
  EXPECT_FALSE(db.ip_malware_associated(ip, 0, 10));
}

TEST(PassiveDnsDbTest, BenignObservationsAreCountedButNotIndexed) {
  PassiveDnsDb db;
  const auto ip = IpV4::parse("8.8.8.8");
  db.add_observation(5, ip, PdnsAssociation::kBenign);
  EXPECT_EQ(db.observation_count(), 1u);
  EXPECT_FALSE(db.ip_malware_associated(ip, 0, 10));
  EXPECT_FALSE(db.ip_unknown_associated(ip, 0, 10));
}

TEST(PassiveDnsDbTest, AddResolutionRecordsAllIps) {
  PassiveDnsDb db;
  const std::vector<IpV4> ips = {IpV4::parse("1.1.1.1"), IpV4::parse("2.2.2.2")};
  db.add_resolution(3, ips, PdnsAssociation::kMalware);
  EXPECT_TRUE(db.ip_malware_associated(ips[0], 0, 5));
  EXPECT_TRUE(db.ip_malware_associated(ips[1], 0, 5));
  EXPECT_EQ(db.observation_count(), 2u);
}

TEST(PassiveDnsDbTest, OutOfOrderInsertsMaintainSortedQueries) {
  PassiveDnsDb db;
  const auto ip = IpV4::parse("4.4.4.4");
  db.add_observation(30, ip, PdnsAssociation::kMalware);
  db.add_observation(10, ip, PdnsAssociation::kMalware);
  db.add_observation(20, ip, PdnsAssociation::kMalware);
  db.add_observation(20, ip, PdnsAssociation::kMalware);  // duplicate
  EXPECT_TRUE(db.ip_malware_associated(ip, 10, 10));
  EXPECT_TRUE(db.ip_malware_associated(ip, 15, 25));
  EXPECT_TRUE(db.ip_malware_associated(ip, 25, 35));
  EXPECT_FALSE(db.ip_malware_associated(ip, 11, 19));
  EXPECT_FALSE(db.ip_malware_associated(ip, 31, 99));
}

TEST(PassiveDnsDbTest, DistinctIpCountUnionsBothIndexes) {
  PassiveDnsDb db;
  db.add_observation(1, IpV4::parse("1.0.0.1"), PdnsAssociation::kMalware);
  db.add_observation(1, IpV4::parse("1.0.0.2"), PdnsAssociation::kUnknown);
  db.add_observation(1, IpV4::parse("1.0.0.1"), PdnsAssociation::kUnknown);  // both
  EXPECT_EQ(db.distinct_ip_count(), 2u);
}

}  // namespace
}  // namespace seg::dns
