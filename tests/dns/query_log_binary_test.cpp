#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <unistd.h>

#include "dns/query_log.h"
#include "util/require.h"
#include "util/rng.h"

namespace seg::dns {
namespace {

class BinaryTraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = (std::filesystem::temp_directory_path() /
             ("seg_bintrace_" + std::to_string(::getpid()) + ".bin"))
                .string();
    text_path_ = path_ + ".tsv";
  }
  void TearDown() override {
    std::filesystem::remove(path_);
    std::filesystem::remove(text_path_);
  }

  static DayTrace sample_trace(std::size_t records) {
    DayTrace trace;
    trace.day = -12;  // negative days must survive the round trip
    util::Rng rng(77);
    for (std::size_t i = 0; i < records; ++i) {
      QueryRecord record;
      record.day = trace.day;
      record.machine = "machine-" + std::to_string(rng.next_below(50));
      record.qname = "host" + std::to_string(i) + ".example" +
                     std::to_string(rng.next_below(9)) + ".com";
      const auto ips = rng.next_below(4);
      for (std::uint64_t k = 0; k < ips; ++k) {
        record.resolved_ips.push_back(IpV4(static_cast<std::uint32_t>(rng.next())));
      }
      trace.records.push_back(std::move(record));
    }
    return trace;
  }

  std::string path_;
  std::string text_path_;
};

TEST_F(BinaryTraceTest, RoundTrip) {
  const auto trace = sample_trace(500);
  write_trace_binary(trace, path_);
  const auto loaded = read_trace_binary(path_);
  EXPECT_EQ(loaded.day, trace.day);
  ASSERT_EQ(loaded.records.size(), trace.records.size());
  for (std::size_t i = 0; i < trace.records.size(); ++i) {
    EXPECT_EQ(loaded.records[i], trace.records[i]) << i;
  }
}

TEST_F(BinaryTraceTest, EmptyTraceRoundTrips) {
  DayTrace trace;
  trace.day = 3;
  write_trace_binary(trace, path_);
  const auto loaded = read_trace_binary(path_);
  EXPECT_EQ(loaded.day, 3);
  EXPECT_TRUE(loaded.records.empty());
}

TEST_F(BinaryTraceTest, SmallerThanText) {
  const auto trace = sample_trace(2000);
  write_trace_binary(trace, path_);
  write_trace(trace, text_path_);
  const auto binary_size = std::filesystem::file_size(path_);
  const auto text_size = std::filesystem::file_size(text_path_);
  EXPECT_LT(binary_size, text_size);
}

TEST_F(BinaryTraceTest, RejectsBadMagic) {
  {
    std::ofstream out(path_, std::ios::binary);
    out << "NOTATRACEFILE";
  }
  EXPECT_THROW(read_trace_binary(path_), util::ParseError);
}

TEST_F(BinaryTraceTest, RejectsTruncation) {
  const auto trace = sample_trace(100);
  write_trace_binary(trace, path_);
  const auto full = std::filesystem::file_size(path_);
  std::filesystem::resize_file(path_, full / 2);
  EXPECT_THROW(read_trace_binary(path_), util::ParseError);
}

TEST_F(BinaryTraceTest, MissingFileThrows) {
  EXPECT_THROW(read_trace_binary("/nonexistent/trace.bin"), util::ParseError);
}

}  // namespace
}  // namespace seg::dns
