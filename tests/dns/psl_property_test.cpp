// Randomized property sweep over the Public Suffix List: for arbitrary
// generated domain names, the PSL contract must hold.
#include <gtest/gtest.h>

#include <string>

#include "dns/domain_name.h"
#include "dns/public_suffix_list.h"
#include "util/rng.h"

namespace seg::dns {
namespace {

std::string random_label(util::Rng& rng) {
  static constexpr char kChars[] = "abcdefghijklmnopqrstuvwxyz0123456789";
  const auto length = 1 + rng.next_below(12);
  std::string label;
  label.push_back(static_cast<char>('a' + rng.next_below(26)));
  for (std::uint64_t i = 1; i < length; ++i) {
    label.push_back(kChars[rng.next_below(sizeof(kChars) - 1)]);
  }
  return label;
}

std::string random_domain(util::Rng& rng) {
  static constexpr const char* kTails[] = {"com", "co.uk",   "ck",        "dyndns.org",
                                           "zz",  "narod.ru", "blogspot.com", "de"};
  std::string name;
  const auto labels = rng.next_below(4);
  for (std::uint64_t i = 0; i < labels; ++i) {
    name += random_label(rng) + ".";
  }
  name += kTails[rng.next_below(std::size(kTails))];
  return name;
}

class PslFuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PslFuzzTest, ContractHoldsForRandomNames) {
  const auto psl = PublicSuffixList::with_default_rules();
  util::Rng rng(GetParam());
  for (int i = 0; i < 2000; ++i) {
    const auto domain = random_domain(rng);
    ASSERT_TRUE(DomainName::is_valid(domain)) << domain;

    const auto suffix = psl.public_suffix(domain);
    // 1. the suffix is a non-empty suffix of the domain on a label boundary
    ASSERT_FALSE(suffix.empty()) << domain;
    ASSERT_TRUE(domain.ends_with(suffix)) << domain;
    if (suffix.size() < domain.size()) {
      EXPECT_EQ(domain[domain.size() - suffix.size() - 1], '.') << domain;
    }

    const auto registrable = psl.registrable_domain(domain);
    if (registrable.has_value()) {
      // 2. registrable = suffix + exactly one more label
      ASSERT_TRUE(domain.ends_with(*registrable)) << domain;
      ASSERT_TRUE(registrable->ends_with(suffix)) << domain;
      const auto head = registrable->substr(0, registrable->size() - suffix.size() - 1);
      EXPECT_EQ(head.find('.'), std::string_view::npos) << domain;
      // 3. e2ld_or_self agrees
      EXPECT_EQ(psl.e2ld_or_self(domain), *registrable) << domain;
      // 4. idempotence: the registrable domain of the registrable domain is
      // itself
      EXPECT_EQ(psl.registrable_domain(*registrable).value_or(*registrable), *registrable)
          << domain;
    } else {
      // domain IS a public suffix
      EXPECT_EQ(suffix, domain) << domain;
      EXPECT_EQ(psl.e2ld_or_self(domain), domain) << domain;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PslFuzzTest, ::testing::Values(3, 17, 2026));

}  // namespace
}  // namespace seg::dns
