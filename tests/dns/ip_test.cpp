#include "dns/ip.h"

#include <gtest/gtest.h>

#include <unordered_set>

#include "util/require.h"

namespace seg::dns {
namespace {

TEST(IpV4Test, FromOctetsAndValue) {
  const auto ip = IpV4::from_octets(192, 168, 1, 42);
  EXPECT_EQ(ip.value(), 0xc0a8012au);
}

TEST(IpV4Test, ParseValid) {
  EXPECT_EQ(IpV4::parse("192.168.1.42"), IpV4::from_octets(192, 168, 1, 42));
  EXPECT_EQ(IpV4::parse("0.0.0.0"), IpV4(0));
  EXPECT_EQ(IpV4::parse("255.255.255.255"), IpV4(0xffffffffu));
}

TEST(IpV4Test, ParseRejectsMalformed) {
  for (const char* bad : {"", "1.2.3", "1.2.3.4.5", "256.1.1.1", "1.2.3.x", "1..3.4",
                          "-1.2.3.4", " 1.2.3.4", "1.2.3.4 ", "0001.2.3.4"}) {
    EXPECT_THROW(IpV4::parse(bad), util::ParseError) << bad;
  }
}

TEST(IpV4Test, ToStringRoundTrips) {
  for (const char* text : {"10.0.0.1", "172.16.254.3", "8.8.8.8", "255.0.255.0"}) {
    EXPECT_EQ(IpV4::parse(text).to_string(), text);
  }
}

TEST(IpV4Test, Prefix24) {
  const auto ip = IpV4::parse("203.0.113.77");
  EXPECT_EQ(ip.prefix24(), IpV4::parse("203.0.113.0").value());
  EXPECT_EQ(IpV4::parse("203.0.113.1").prefix24(), ip.prefix24());
  EXPECT_NE(IpV4::parse("203.0.114.77").prefix24(), ip.prefix24());
}

TEST(IpV4Test, Ordering) {
  EXPECT_LT(IpV4::parse("1.2.3.4"), IpV4::parse("1.2.3.5"));
  EXPECT_LT(IpV4::parse("1.2.3.4"), IpV4::parse("2.0.0.0"));
}

TEST(IpV4Test, HashableInUnorderedSet) {
  std::unordered_set<IpV4> set;
  set.insert(IpV4::parse("10.0.0.1"));
  set.insert(IpV4::parse("10.0.0.1"));
  set.insert(IpV4::parse("10.0.0.2"));
  EXPECT_EQ(set.size(), 2u);
}

}  // namespace
}  // namespace seg::dns
