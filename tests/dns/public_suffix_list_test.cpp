#include "dns/public_suffix_list.h"

#include <gtest/gtest.h>

#include "util/require.h"

namespace seg::dns {
namespace {

class PslTest : public ::testing::Test {
 protected:
  PublicSuffixList psl_ = PublicSuffixList::with_default_rules();
};

TEST_F(PslTest, DefaultRulesLoaded) {
  EXPECT_GT(psl_.rule_count(), 200u);
}

TEST_F(PslTest, SimpleTld) {
  EXPECT_EQ(psl_.public_suffix("example.com"), "com");
  EXPECT_EQ(psl_.registrable_domain("www.example.com").value(), "example.com");
}

TEST_F(PslTest, MultiLabelSuffix) {
  EXPECT_EQ(psl_.public_suffix("www.bbc.co.uk"), "co.uk");
  EXPECT_EQ(psl_.registrable_domain("www.bbc.co.uk").value(), "bbc.co.uk");
}

TEST_F(PslTest, BareSuffixHasNoRegistrableDomain) {
  EXPECT_FALSE(psl_.registrable_domain("com").has_value());
  EXPECT_FALSE(psl_.registrable_domain("co.uk").has_value());
}

TEST_F(PslTest, E2ldOrSelfFallsBackToSelf) {
  EXPECT_EQ(psl_.e2ld_or_self("co.uk"), "co.uk");
  EXPECT_EQ(psl_.e2ld_or_self("www.bbc.co.uk"), "bbc.co.uk");
}

TEST_F(PslTest, UnknownTldUsesPrevailingStarRule) {
  EXPECT_EQ(psl_.public_suffix("example.zz"), "zz");
  EXPECT_EQ(psl_.registrable_domain("www.example.zz").value(), "example.zz");
}

TEST_F(PslTest, WildcardRule) {
  // "*.ck" means every label under ck is a public suffix.
  EXPECT_EQ(psl_.public_suffix("foo.anything.ck"), "anything.ck");
  EXPECT_EQ(psl_.registrable_domain("bar.foo.anything.ck").value(), "foo.anything.ck");
  EXPECT_FALSE(psl_.registrable_domain("anything.ck").has_value());
}

TEST_F(PslTest, ExceptionRuleBeatsWildcard) {
  // "!www.ck" carves www.ck out of "*.ck": its public suffix is just "ck".
  EXPECT_EQ(psl_.public_suffix("www.ck"), "ck");
  EXPECT_EQ(psl_.registrable_domain("www.ck").value(), "www.ck");
  EXPECT_EQ(psl_.registrable_domain("sub.www.ck").value(), "www.ck");
}

TEST_F(PslTest, DynamicDnsZonesAreSuffixes) {
  // The paper's custom augmentation: each dyndns subdomain registers
  // independently, so e2LD of evil.dyndns.org is evil.dyndns.org.
  EXPECT_EQ(psl_.registrable_domain("evil.dyndns.org").value(), "evil.dyndns.org");
  EXPECT_EQ(psl_.registrable_domain("a.b.no-ip.com").value(), "b.no-ip.com");
}

TEST_F(PslTest, FreeHostingZonesFromFpAnalysis) {
  // Zones highlighted in the paper's Fig. 9 FP examples.
  EXPECT_EQ(psl_.registrable_domain("sjhsjh333.egloos.com").value(), "sjhsjh333.egloos.com");
  EXPECT_EQ(psl_.registrable_domain("thaisqz.sites.uol.com.br").value(),
            "thaisqz.sites.uol.com.br");
  EXPECT_EQ(psl_.registrable_domain("cr0s.interfree.it").value(), "cr0s.interfree.it");
  EXPECT_EQ(psl_.registrable_domain("vk144.narod.ru").value(), "vk144.narod.ru");
}

TEST_F(PslTest, UolBrNormalSubdomainStillGroupsAtUol) {
  // sites.uol.com.br is a free-registration zone, but uol.com.br itself
  // registers under com.br as usual.
  EXPECT_EQ(psl_.registrable_domain("www.uol.com.br").value(), "uol.com.br");
}

TEST(PslRuleTest, EmptyListUsesStarRuleOnly) {
  PublicSuffixList psl;
  EXPECT_EQ(psl.rule_count(), 0u);
  EXPECT_EQ(psl.public_suffix("www.example.com"), "com");
  EXPECT_EQ(psl.registrable_domain("www.example.com").value(), "example.com");
}

TEST(PslRuleTest, AddRuleNormalizesCase) {
  PublicSuffixList psl;
  psl.add_rule("CO.UK");
  EXPECT_EQ(psl.public_suffix("x.co.uk"), "co.uk");
}

TEST(PslRuleTest, MalformedRulesThrow) {
  PublicSuffixList psl;
  for (const char* bad : {"", "  ", ".com", "com.", "a*b.com", "*.", "!"}) {
    EXPECT_THROW(psl.add_rule(bad), util::ParseError) << '"' << bad << '"';
  }
}

TEST(PslRuleTest, AddRulesFromTextSkipsCommentsAndBlanks) {
  PublicSuffixList psl;
  psl.add_rules_from_text("// comment\n\ncom\nco.uk\n  // indented comment\n");
  EXPECT_EQ(psl.rule_count(), 2u);
}

TEST(PslRuleTest, LongestMatchWins) {
  PublicSuffixList psl;
  psl.add_rule("com");
  psl.add_rule("blogspot.com");
  EXPECT_EQ(psl.public_suffix("me.blogspot.com"), "blogspot.com");
  EXPECT_EQ(psl.registrable_domain("me.blogspot.com").value(), "me.blogspot.com");
  EXPECT_EQ(psl.registrable_domain("blogspot.com").has_value(), false);
  EXPECT_EQ(psl.registrable_domain("example.com").value(), "example.com");
}

// Property sweep: registrable_domain must always be a suffix of the input
// with exactly one more label than the public suffix.
class PslPropertyTest : public ::testing::TestWithParam<const char*> {};

TEST_P(PslPropertyTest, RegistrableDomainStructure) {
  const auto psl = PublicSuffixList::with_default_rules();
  const std::string_view domain = GetParam();
  const auto suffix = psl.public_suffix(domain);
  EXPECT_FALSE(suffix.empty());
  EXPECT_TRUE(domain.ends_with(suffix));
  const auto reg = psl.registrable_domain(domain);
  if (reg.has_value()) {
    EXPECT_TRUE(domain.ends_with(*reg));
    EXPECT_TRUE(reg->ends_with(suffix));
    // reg = suffix + exactly one extra label
    const auto head = reg->substr(0, reg->size() - suffix.size() - 1);
    EXPECT_EQ(head.find('.'), std::string_view::npos);
  }
}

INSTANTIATE_TEST_SUITE_P(Domains, PslPropertyTest,
                         ::testing::Values("www.example.com", "a.b.c.d.co.uk",
                                           "x.dyndns.org", "deep.sub.narod.ru",
                                           "example.zz", "a.b.anything.ck",
                                           "www.ck", "single.de",
                                           "many.labels.go.here.example.org"));

}  // namespace
}  // namespace seg::dns
