// Round-trip tests for the text serialization of the history substrates.
#include <gtest/gtest.h>

#include <sstream>

#include "dns/activity_index.h"
#include "dns/pdns.h"
#include "util/require.h"

namespace seg::dns {
namespace {

TEST(ActivityIndexIoTest, RoundTrip) {
  DomainActivityIndex index;
  index.mark_active("a.com", -30);
  index.mark_active("a.com", -29);
  index.mark_active("a.com", 5);
  index.mark_active("b.org", 0);
  std::stringstream blob;
  index.save(blob);
  const auto loaded = DomainActivityIndex::load(blob);
  EXPECT_EQ(loaded.tracked_names(), 2u);
  EXPECT_EQ(loaded.active_days("a.com", -30, 5), 3);
  EXPECT_EQ(loaded.consecutive_days_ending("a.com", -29), 2);
  EXPECT_EQ(loaded.first_seen("b.org"), 0);
  EXPECT_EQ(loaded.first_seen("a.com"), -30);
}

TEST(ActivityIndexIoTest, EmptyIndexRoundTrips) {
  DomainActivityIndex index;
  std::stringstream blob;
  index.save(blob);
  const auto loaded = DomainActivityIndex::load(blob);
  EXPECT_EQ(loaded.tracked_names(), 0u);
}

TEST(ActivityIndexIoTest, LoadRejectsGarbage) {
  std::stringstream blob("wrong header");
  EXPECT_THROW(DomainActivityIndex::load(blob), util::ParseError);
  std::stringstream truncated("activity 3\na.com 1\n");
  EXPECT_THROW(DomainActivityIndex::load(truncated), util::ParseError);
}

TEST(PdnsIoTest, RoundTrip) {
  PassiveDnsDb db;
  db.add_observation(-10, IpV4::parse("1.2.3.4"), PdnsAssociation::kMalware);
  db.add_observation(-5, IpV4::parse("1.2.3.4"), PdnsAssociation::kUnknown);
  db.add_observation(3, IpV4::parse("9.8.7.6"), PdnsAssociation::kMalware);
  std::stringstream blob;
  db.save(blob);
  const auto loaded = PassiveDnsDb::load(blob);
  EXPECT_EQ(loaded.observation_count(), db.observation_count());
  EXPECT_TRUE(loaded.ip_malware_associated(IpV4::parse("1.2.3.4"), -20, 0));
  EXPECT_FALSE(loaded.ip_malware_associated(IpV4::parse("1.2.3.4"), -9, 0));
  EXPECT_TRUE(loaded.ip_unknown_associated(IpV4::parse("1.2.3.4"), -5, -5));
  EXPECT_TRUE(loaded.prefix_malware_associated(IpV4::parse("9.8.7.250"), 0, 5));
  EXPECT_FALSE(loaded.ip_malware_associated(IpV4::parse("5.5.5.5"), -100, 100));
}

TEST(PdnsIoTest, EmptyDbRoundTrips) {
  PassiveDnsDb db;
  std::stringstream blob;
  db.save(blob);
  const auto loaded = PassiveDnsDb::load(blob);
  EXPECT_EQ(loaded.observation_count(), 0u);
  EXPECT_EQ(loaded.distinct_ip_count(), 0u);
}

TEST(PdnsIoTest, LoadRejectsGarbage) {
  std::stringstream blob("nope");
  EXPECT_THROW(PassiveDnsDb::load(blob), util::ParseError);
  std::stringstream missing_section("pdns 0\nip_malware 0\n");
  EXPECT_THROW(PassiveDnsDb::load(missing_section), util::ParseError);
}

// Streams written before the `segf1` format header existed must keep
// loading: the header-less body is the legacy v1 format.
TEST(ActivityIndexIoTest, LegacyHeaderlessStreamLoads) {
  DomainActivityIndex index;
  index.mark_active("a.com", 3);
  index.mark_active("a.com", 4);
  std::stringstream blob;
  index.save(blob);
  auto bytes = blob.str();
  std::istringstream legacy(bytes.substr(bytes.find('\n') + 1));
  const auto loaded = DomainActivityIndex::load(legacy);
  EXPECT_EQ(loaded.active_days("a.com", 0, 10), 2);
  EXPECT_EQ(loaded.consecutive_days_ending("a.com", 4), 2);
}

TEST(PdnsIoTest, LegacyHeaderlessStreamLoads) {
  PassiveDnsDb db;
  db.add_observation(-3, IpV4::parse("1.2.3.4"), PdnsAssociation::kMalware);
  std::stringstream blob;
  db.save(blob);
  auto bytes = blob.str();
  std::istringstream legacy(bytes.substr(bytes.find('\n') + 1));
  const auto loaded = PassiveDnsDb::load(legacy);
  EXPECT_EQ(loaded.observation_count(), 1u);
  EXPECT_TRUE(loaded.ip_malware_associated(IpV4::parse("1.2.3.4"), -10, 0));
}

}  // namespace
}  // namespace seg::dns
