// Wire-format corpus tests: dnstap and pcap round trips, format
// detection, and — the larger half — a malformed-input corpus. Every
// structurally damaged capture must throw util::ParseError; a truncation
// may also read as a clean (shorter) stream when the cut lands exactly on
// a frame boundary, but nothing in between is acceptable and nothing may
// crash. The whole file runs again under asan in the CI matrix's "ingest"
// leg, which is what turns "no crash" into "no UB".
#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <span>
#include <string>
#include <vector>

#include "dns/query_log.h"
#include "dns/trace_source.h"
#include "dns/wire/dns_message.h"
#include "dns/wire/dnstap.h"
#include "dns/wire/pcap.h"
#include "util/require.h"
#include "util/rng.h"

namespace seg::dns {
namespace {

class WireTest : public ::testing::Test {
 protected:
  void SetUp() override {
    base_ = (std::filesystem::temp_directory_path() /
             ("seg_wire_" + std::to_string(::getpid())))
                .string();
  }
  void TearDown() override {
    for (const auto& path : files_) {
      std::filesystem::remove(path);
    }
  }

  std::string temp_path(const std::string& suffix) {
    files_.push_back(base_ + suffix);
    return files_.back();
  }

  static std::vector<unsigned char> read_bytes(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.is_open()) << path;
    return std::vector<unsigned char>(std::istreambuf_iterator<char>(in),
                                      std::istreambuf_iterator<char>());
  }

  std::string write_bytes(const std::string& suffix,
                          const std::vector<unsigned char>& bytes) {
    const auto path = temp_path(suffix);
    std::ofstream out(path, std::ios::binary);
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
    return path;
  }

  // A trace whose machine identifiers are dotted quads, so the lossy wire
  // formats round-trip it exactly (day 20 keeps the pcap u32 timestamp
  // positive).
  static DayTrace wire_trace(std::size_t records, std::uint64_t seed = 11) {
    DayTrace trace;
    trace.day = 20;
    util::Rng rng(seed);
    for (std::size_t i = 0; i < records; ++i) {
      QueryRecord record;
      record.day = trace.day;
      record.machine = IpV4::from_octets(192, 168,
                                         static_cast<std::uint8_t>(rng.next_below(4)),
                                         static_cast<std::uint8_t>(rng.next_below(200)))
                           .to_string();
      record.qname = "host" + std::to_string(i) + ".example" +
                     std::to_string(rng.next_below(7)) + ".com";
      const auto ips = 1 + rng.next_below(3);  // wire readers drop 0-A responses
      for (std::uint64_t k = 0; k < ips; ++k) {
        record.resolved_ips.push_back(IpV4(static_cast<std::uint32_t>(rng.next())));
      }
      trace.records.push_back(std::move(record));
    }
    return trace;
  }

  static std::vector<QueryRecord> drain(TraceSource& source) {
    std::vector<QueryRecord> records;
    QueryRecord record;
    while (source.next(record)) {
      records.push_back(record);
    }
    return records;
  }

  // Feeds every strict prefix of `capture` to `parse`. A prefix must
  // either parse cleanly (cut on a frame boundary) or throw ParseError;
  // anything else — a foreign exception or a crash — fails the test.
  template <typename Parse>
  static void expect_truncations_contained(const std::vector<unsigned char>& capture,
                                           const Parse& parse) {
    std::size_t rejected = 0;
    for (std::size_t length = 0; length < capture.size(); ++length) {
      const std::span<const unsigned char> prefix(capture.data(), length);
      try {
        parse(prefix);
      } catch (const util::ParseError&) {
        ++rejected;  // the expected failure mode
      } catch (const std::exception& error) {
        FAIL() << "prefix of " << length << " bytes escaped ParseError: "
               << error.what();
      }
    }
    EXPECT_GT(rejected, 0u) << "no truncation was ever rejected";
  }

  std::string base_;
  std::vector<std::string> files_;
};

void append_be32(std::vector<unsigned char>& out, std::uint32_t value) {
  out.push_back(static_cast<unsigned char>(value >> 24));
  out.push_back(static_cast<unsigned char>((value >> 16) & 0xff));
  out.push_back(static_cast<unsigned char>((value >> 8) & 0xff));
  out.push_back(static_cast<unsigned char>(value & 0xff));
}

void append_le32(std::vector<unsigned char>& out, std::uint32_t value) {
  out.push_back(static_cast<unsigned char>(value & 0xff));
  out.push_back(static_cast<unsigned char>((value >> 8) & 0xff));
  out.push_back(static_cast<unsigned char>((value >> 16) & 0xff));
  out.push_back(static_cast<unsigned char>(value >> 24));
}

// Minimal protobuf writer for hand-crafting filtered (but well-formed)
// dnstap messages the trace writer never emits.
void append_varint(std::vector<unsigned char>& out, std::uint64_t value) {
  while (value >= 0x80) {
    out.push_back(static_cast<unsigned char>(value) | 0x80);
    value >>= 7;
  }
  out.push_back(static_cast<unsigned char>(value));
}

void append_key(std::vector<unsigned char>& out, std::uint32_t field,
                std::uint32_t wire_type) {
  append_varint(out, (static_cast<std::uint64_t>(field) << 3) | wire_type);
}

// --- dnstap ----------------------------------------------------------------

TEST_F(WireTest, DnstapRoundTripPreservesDottedQuadRecords) {
  const auto trace = wire_trace(200);
  const auto path = temp_path(".dnstap");
  wire::write_dnstap_trace(trace, path);

  const auto capture = read_bytes(path);
  wire::DnstapReader reader(capture);
  QueryRecord record;
  std::size_t index = 0;
  while (reader.next(record)) {
    ASSERT_LT(index, trace.records.size());
    EXPECT_EQ(record, trace.records[index]) << "record " << index;
    ++index;
  }
  EXPECT_EQ(index, trace.records.size());
  EXPECT_EQ(reader.skipped(), 0u);

  // The FileTraceSource path (mmap + autodetection) sees the same stream.
  FileTraceSource source(path);
  EXPECT_EQ(source.format(), TraceFormat::kDnstap);
  EXPECT_EQ(drain(source), trace.records);
}

TEST_F(WireTest, MachineAddressMapsDottedQuadsVerbatimAndHashesTheRest) {
  EXPECT_EQ(wire::machine_address("192.168.3.9").to_string(), "192.168.3.9");
  const auto hashed = wire::machine_address("laptop-7");
  EXPECT_EQ(hashed.value() >> 24, 10u);  // non-addresses land in 10.0.0.0/8
  EXPECT_EQ(wire::machine_address("laptop-7").value(), hashed.value());
  EXPECT_NE(wire::machine_address("laptop-8").value(), hashed.value());
  // A numeric-looking but invalid quad falls back to the hash, not an error.
  EXPECT_EQ(wire::machine_address("999.999.999.999").value() >> 24, 10u);

  DayTrace trace;
  trace.day = 20;
  trace.records.push_back(
      {20, "laptop-7", "c2.example.com", {IpV4::from_octets(203, 0, 113, 9)}});
  const auto path = temp_path(".hashed.dnstap");
  wire::write_dnstap_trace(trace, path);
  FileTraceSource source(path);
  const auto records = drain(source);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].machine, hashed.to_string());
  EXPECT_EQ(records[0].qname, "c2.example.com");
}

TEST_F(WireTest, DnstapEveryTruncationIsParseErrorOrCleanBoundary) {
  const auto path = temp_path(".trunc.dnstap");
  wire::write_dnstap_trace(wire_trace(3), path);
  const auto capture = read_bytes(path);
  expect_truncations_contained(capture, [](std::span<const unsigned char> prefix) {
    wire::DnstapReader reader(prefix);
    QueryRecord record;
    while (reader.next(record)) {
    }
  });
}

TEST_F(WireTest, DnstapRejectsStreamsWithoutStart) {
  // Empty capture: not even the control escape fits.
  EXPECT_THROW(wire::DnstapReader{std::span<const unsigned char>()}, util::ParseError);
  // A nonzero first word is a data frame where START must be.
  const std::vector<unsigned char> garbage = {'G', 'A', 'R', 'B', 'A', 'G', 'E', '!'};
  EXPECT_THROW(wire::DnstapReader{std::span<const unsigned char>(garbage)},
               util::ParseError);
}

TEST_F(WireTest, DnstapRejectsForeignContentType) {
  const auto path = temp_path(".foreign.dnstap");
  wire::write_dnstap_trace(DayTrace{20, {}}, path);
  auto capture = read_bytes(path);
  // The content type string sits inside the START frame; corrupting one
  // byte of "protobuf:dnstap.Dnstap" makes it foreign.
  const std::string_view content = wire::kDnstapContentType;
  auto it = std::search(capture.begin(), capture.end(), content.begin(), content.end());
  ASSERT_NE(it, capture.end());
  *it = 'X';
  EXPECT_THROW(wire::DnstapReader{std::span<const unsigned char>(capture)},
               util::ParseError);
}

TEST_F(WireTest, DnstapRejectsOversizedFrames) {
  const auto path = temp_path(".oversize.dnstap");
  wire::write_dnstap_trace(DayTrace{20, {}}, path);
  auto capture = read_bytes(path);
  capture.resize(capture.size() - 12);  // drop the STOP control frame
  append_be32(capture, wire::kMaxDnstapFrameBytes + 1);
  capture.push_back(0);  // a length prefix promising a gigabyte needs no body

  wire::DnstapReader reader(capture);
  QueryRecord record;
  EXPECT_THROW(reader.next(record), util::ParseError);
}

TEST_F(WireTest, DnstapStopFrameEndsConcatenatedCaptures) {
  // Two captures cat'ed together: the STOP of the first ends the stream;
  // the second capture's records must not leak through.
  const auto first = wire_trace(5, 1);
  const auto second = wire_trace(7, 2);
  const auto path_a = temp_path(".a.dnstap");
  const auto path_b = temp_path(".b.dnstap");
  wire::write_dnstap_trace(first, path_a);
  wire::write_dnstap_trace(second, path_b);
  auto capture = read_bytes(path_a);
  const auto tail = read_bytes(path_b);
  capture.insert(capture.end(), tail.begin(), tail.end());

  wire::DnstapReader reader(capture);
  QueryRecord record;
  std::size_t count = 0;
  while (reader.next(record)) {
    ++count;
  }
  EXPECT_EQ(count, first.records.size());
  EXPECT_FALSE(reader.next(record));  // stays stopped
}

TEST_F(WireTest, DnstapFiltersQueriesWithoutError) {
  // Hand-craft a CLIENT_QUERY (type 5) message: well-formed, irrelevant.
  std::vector<unsigned char> message;
  append_key(message, 1, 0);  // Message.type
  append_varint(message, 5);  // CLIENT_QUERY
  std::vector<unsigned char> envelope;
  append_key(envelope, 15, 0);  // Dnstap.type
  append_varint(envelope, 1);   // MESSAGE
  append_key(envelope, 14, 2);  // Dnstap.message
  append_varint(envelope, message.size());
  envelope.insert(envelope.end(), message.begin(), message.end());

  const auto path = temp_path(".query.dnstap");
  wire::write_dnstap_trace(DayTrace{20, {}}, path);
  auto capture = read_bytes(path);
  capture.resize(capture.size() - 12);  // splice the frame in before STOP
  append_be32(capture, static_cast<std::uint32_t>(envelope.size()));
  capture.insert(capture.end(), envelope.begin(), envelope.end());
  append_be32(capture, 0);
  append_be32(capture, 4);
  append_be32(capture, 0x03);  // STOP

  wire::DnstapReader reader(capture);
  QueryRecord record;
  EXPECT_FALSE(reader.next(record));
  EXPECT_EQ(reader.skipped(), 1u);
}

// --- pcap ------------------------------------------------------------------

TEST_F(WireTest, PcapRoundTripPreservesDottedQuadRecords) {
  const auto trace = wire_trace(150);
  const auto path = temp_path(".pcap");
  wire::write_pcap_trace(trace, path);

  const auto capture = read_bytes(path);
  wire::PcapReader reader(capture);
  QueryRecord record;
  std::size_t index = 0;
  while (reader.next(record)) {
    ASSERT_LT(index, trace.records.size());
    EXPECT_EQ(record, trace.records[index]) << "record " << index;
    ++index;
  }
  EXPECT_EQ(index, trace.records.size());
  EXPECT_EQ(reader.skipped(), 0u);

  FileTraceSource source(path);
  EXPECT_EQ(source.format(), TraceFormat::kPcap);
  EXPECT_EQ(drain(source), trace.records);
}

TEST_F(WireTest, PcapRejectsGarbageHeaders) {
  const std::vector<unsigned char> bad_magic = {0xde, 0xad, 0xbe, 0xef, 0, 0, 0, 0,
                                                0,    0,    0,    0,    0, 0, 0, 0,
                                                0,    0,    0,    0,    0, 0, 0, 0};
  EXPECT_THROW(wire::PcapReader{std::span<const unsigned char>(bad_magic)},
               util::ParseError);

  // Right magic, header cut short.
  std::vector<unsigned char> short_header;
  append_le32(short_header, 0xa1b2c3d4);
  EXPECT_THROW(wire::PcapReader{std::span<const unsigned char>(short_header)},
               util::ParseError);

  // Right magic, unsupported link type (LINKTYPE_IEEE802_11 = 105).
  std::vector<unsigned char> wifi;
  append_le32(wifi, 0xa1b2c3d4);
  append_le32(wifi, 0x00040002);
  append_le32(wifi, 0);
  append_le32(wifi, 0);
  append_le32(wifi, 65535);
  append_le32(wifi, 105);
  EXPECT_THROW(wire::PcapReader{std::span<const unsigned char>(wifi)},
               util::ParseError);
}

TEST_F(WireTest, PcapEveryTruncationIsParseErrorOrCleanBoundary) {
  const auto path = temp_path(".trunc.pcap");
  wire::write_pcap_trace(wire_trace(3), path);
  const auto capture = read_bytes(path);
  expect_truncations_contained(capture, [](std::span<const unsigned char> prefix) {
    wire::PcapReader reader(prefix);
    QueryRecord record;
    while (reader.next(record)) {
    }
  });
}

TEST_F(WireTest, PcapRejectsOversizedPacketRecords) {
  const auto path = temp_path(".oversize.pcap");
  wire::write_pcap_trace(DayTrace{20, {}}, path);
  auto capture = read_bytes(path);  // just the 24-byte global header
  ASSERT_EQ(capture.size(), 24u);
  append_le32(capture, 1728000);  // ts_sec
  append_le32(capture, 0);        // ts_frac
  append_le32(capture, wire::kMaxPcapPacketBytes + 1);
  append_le32(capture, wire::kMaxPcapPacketBytes + 1);

  wire::PcapReader reader(capture);
  QueryRecord record;
  EXPECT_THROW(reader.next(record), util::ParseError);
}

TEST_F(WireTest, PcapSkipsSnaplenTruncatedAndNonDnsPackets) {
  const auto path = temp_path(".skips.pcap");
  const auto trace = wire_trace(1);
  wire::write_pcap_trace(trace, path);
  auto capture = read_bytes(path);

  // Prepend two irrelevant packets after the global header: one truncated
  // by the snaplen (incl_len < orig_len), one full-length non-IPv4 frame
  // (60 zero bytes: ethertype 0x0000). Both are skipped, never errors.
  std::vector<unsigned char> spliced(capture.begin(), capture.begin() + 24);
  append_le32(spliced, 1728000);
  append_le32(spliced, 0);
  append_le32(spliced, 4);    // incl_len
  append_le32(spliced, 400);  // orig_len: the tap cut this packet short
  spliced.insert(spliced.end(), {0xaa, 0xbb, 0xcc, 0xdd});
  append_le32(spliced, 1728000);
  append_le32(spliced, 0);
  append_le32(spliced, 60);
  append_le32(spliced, 60);
  spliced.insert(spliced.end(), 60, 0x00);
  spliced.insert(spliced.end(), capture.begin() + 24, capture.end());

  wire::PcapReader reader(spliced);
  QueryRecord record;
  ASSERT_TRUE(reader.next(record));
  EXPECT_EQ(record, trace.records[0]);
  EXPECT_FALSE(reader.next(record));
  EXPECT_EQ(reader.skipped(), 2u);
}

// --- EDNS0 OPT pseudo-RRs (RFC 6891) ---------------------------------------

// OPT RR wire bytes: root name, type 41, UDP size 4096, zero extended
// rcode/flags, `rdlength` with that many zero rdata bytes appended.
std::vector<unsigned char> opt_rr(std::uint16_t rdlength) {
  std::vector<unsigned char> rr = {0x00, 0x00, 0x29, 0x10, 0x00,
                                   0x00, 0x00, 0x00, 0x00};
  rr.push_back(static_cast<unsigned char>(rdlength >> 8));
  rr.push_back(static_cast<unsigned char>(rdlength & 0xff));
  rr.insert(rr.end(), rdlength, 0x00);
  return rr;
}

// Patches the header's arcount (bytes 10-11) and appends `tail` as the
// additional section.
std::vector<unsigned char> with_additional(std::vector<unsigned char> message,
                                           std::uint16_t arcount,
                                           const std::vector<unsigned char>& tail) {
  message[10] = static_cast<unsigned char>(arcount >> 8);
  message[11] = static_cast<unsigned char>(arcount & 0xff);
  message.insert(message.end(), tail.begin(), tail.end());
  return message;
}

TEST_F(WireTest, SummarizeCountsWellFormedOptRecords) {
  const std::vector<IpV4> ips = {IpV4::from_octets(10, 1, 2, 3)};
  auto tail = opt_rr(0);
  const auto second = opt_rr(6);
  tail.insert(tail.end(), second.begin(), second.end());
  const auto message =
      with_additional(wire::encode_response("cc.example.com", ips), 2, tail);

  const auto summary = wire::summarize(message);
  EXPECT_EQ(summary.qname, "cc.example.com");
  ASSERT_EQ(summary.a_records.size(), 1u);
  EXPECT_EQ(summary.opt_records, 2u);
  EXPECT_EQ(summary.opt_skipped, 0u);
}

TEST_F(WireTest, SummarizeToleratesSnaplenTruncatedOpt) {
  const std::vector<IpV4> ips = {IpV4::from_octets(10, 1, 2, 3)};
  const auto base = wire::encode_response("cc.example.com", ips);

  // Cut right after the OPT's name + type: nothing left for the fixed
  // header. The message still summarizes — answers intact, OPT counted as
  // skipped.
  const auto after_type = with_additional(base, 1, {0x00, 0x00, 0x29});
  auto summary = wire::summarize(after_type);
  ASSERT_EQ(summary.a_records.size(), 1u);
  EXPECT_EQ(summary.opt_records, 0u);
  EXPECT_EQ(summary.opt_skipped, 1u);

  // rdlength promises more rdata than the capture holds.
  auto lying = opt_rr(6);
  lying.resize(lying.size() - 6);
  summary = wire::summarize(with_additional(base, 1, lying));
  ASSERT_EQ(summary.a_records.size(), 1u);
  EXPECT_EQ(summary.opt_records, 0u);
  EXPECT_EQ(summary.opt_skipped, 1u);

  // A truncated OPT ends the additional section: a second record behind it
  // is never reached, and that is leniency, not an error.
  auto pair = opt_rr(6);
  pair.resize(pair.size() - 6);
  summary = wire::summarize(with_additional(base, 2, pair));
  EXPECT_EQ(summary.opt_records, 0u);
  EXPECT_EQ(summary.opt_skipped, 1u);
}

TEST_F(WireTest, SummarizeKeepsNonOptAdditionalStrict) {
  const std::vector<IpV4> ips = {IpV4::from_octets(10, 1, 2, 3)};
  const auto base = wire::encode_response("cc.example.com", ips);

  // arcount lies outright: no additional bytes at all. The name read fails
  // before the OPT leniency can apply.
  EXPECT_THROW(wire::summarize(with_additional(base, 1, {})), util::ParseError);

  // A truncated non-OPT additional record (root name, type A, partial
  // class) stays a hard parse error.
  EXPECT_THROW(
      wire::summarize(with_additional(base, 1, {0x00, 0x00, 0x01, 0x00})),
      util::ParseError);
}

// One UDP/53 response packet (Ethernet + IPv4 + UDP) carrying `dns`,
// appended as a pcap packet record — the same layout write_pcap_trace
// emits, for captures whose DNS payload it cannot produce.
void append_udp53_packet(std::vector<unsigned char>& capture, Day day,
                         const std::string& machine,
                         const std::vector<unsigned char>& dns) {
  std::vector<unsigned char> packet;
  const auto p8 = [&packet](std::uint8_t v) { packet.push_back(v); };
  const auto p16 = [&packet](std::uint16_t v) {
    packet.push_back(static_cast<unsigned char>(v >> 8));
    packet.push_back(static_cast<unsigned char>(v & 0xff));
  };
  const auto p32 = [&packet](std::uint32_t v) {
    packet.push_back(static_cast<unsigned char>(v >> 24));
    packet.push_back(static_cast<unsigned char>((v >> 16) & 0xff));
    packet.push_back(static_cast<unsigned char>((v >> 8) & 0xff));
    packet.push_back(static_cast<unsigned char>(v & 0xff));
  };
  for (int i = 0; i < 12; ++i) {
    p8(static_cast<std::uint8_t>(i < 6 ? 0x02 : 0x04));
  }
  p16(0x0800);  // IPv4
  const auto udp_len = static_cast<std::uint16_t>(8 + dns.size());
  p8(0x45);
  p8(0);
  p16(static_cast<std::uint16_t>(20 + udp_len));
  p16(0);   // id
  p16(0);   // flags/fragment
  p8(64);   // ttl
  p8(17);   // UDP
  p16(0);   // checksum
  p32(IpV4::from_octets(10, 0, 0, 53).value());
  p32(wire::machine_address(machine).value());
  p16(53);
  p16(40000);
  p16(udp_len);
  p16(0);
  packet.insert(packet.end(), dns.begin(), dns.end());

  append_le32(capture, static_cast<std::uint32_t>(static_cast<std::int64_t>(day) * 86400));
  append_le32(capture, 0);
  append_le32(capture, static_cast<std::uint32_t>(packet.size()));
  append_le32(capture, static_cast<std::uint32_t>(packet.size()));
  capture.insert(capture.end(), packet.begin(), packet.end());
}

TEST_F(WireTest, PcapAccumulatesOptCountsAcrossMessages) {
  const auto trace = wire_trace(2);
  const auto dns0 = with_additional(
      wire::encode_response(trace.records[0].qname, trace.records[0].resolved_ips),
      1, opt_rr(4));
  const auto dns1 = with_additional(
      wire::encode_response(trace.records[1].qname, trace.records[1].resolved_ips),
      1, {0x00, 0x00, 0x29});  // snaplen ate the OPT header

  std::vector<unsigned char> capture;
  append_le32(capture, 0xa1b2c3d4);
  append_le32(capture, 0x00040002);
  append_le32(capture, 0);
  append_le32(capture, 0);
  append_le32(capture, wire::kMaxPcapPacketBytes);
  append_le32(capture, 1);  // Ethernet
  append_udp53_packet(capture, trace.day, trace.records[0].machine, dns0);
  append_udp53_packet(capture, trace.day, trace.records[1].machine, dns1);

  wire::PcapReader reader(capture);
  QueryRecord record;
  ASSERT_TRUE(reader.next(record));
  EXPECT_EQ(record, trace.records[0]);
  ASSERT_TRUE(reader.next(record));
  EXPECT_EQ(record, trace.records[1]);
  EXPECT_FALSE(reader.next(record));
  EXPECT_EQ(reader.skipped(), 0u);
  EXPECT_EQ(reader.opt_records(), 1u);
  EXPECT_EQ(reader.opt_skipped(), 1u);
}

TEST_F(WireTest, PcapReadsSwappedByteOrderHeaders) {
  // A big-endian capture of nothing: swapped magic, swapped linktype.
  std::vector<unsigned char> capture;
  append_be32(capture, 0xa1b2c3d4);  // written BE = swapped on this reader
  append_be32(capture, 0x00020004);
  append_be32(capture, 0);
  append_be32(capture, 0);
  append_be32(capture, 65535);
  append_be32(capture, 1);  // Ethernet, in the capture's byte order
  wire::PcapReader reader(capture);
  QueryRecord record;
  EXPECT_FALSE(reader.next(record));
  EXPECT_EQ(reader.skipped(), 0u);
}

// --- format detection and round trips through TraceSource ------------------

TEST_F(WireTest, DetectFormatSniffsAllFourMagics) {
  const auto trace = wire_trace(3);
  const auto sim = temp_path(".tsv");
  const auto binlog = temp_path(".bin");
  const auto dnstap = temp_path(".detect.dnstap");
  const auto pcap = temp_path(".detect.pcap");
  write_trace(trace, sim);
  write_trace_binary(trace, binlog);
  wire::write_dnstap_trace(trace, dnstap);
  wire::write_pcap_trace(trace, pcap);

  EXPECT_EQ(detect_format(sim), TraceFormat::kSim);
  EXPECT_EQ(detect_format(binlog), TraceFormat::kBinlog);
  EXPECT_EQ(detect_format(dnstap), TraceFormat::kDnstap);
  EXPECT_EQ(detect_format(pcap), TraceFormat::kPcap);

  const auto empty = write_bytes(".empty", {});
  EXPECT_EQ(detect_format(empty), TraceFormat::kSim);
  EXPECT_THROW(detect_format(base_ + ".does-not-exist"), util::ParseError);
}

TEST_F(WireTest, FormatNamesRoundTrip) {
  for (const auto format : {TraceFormat::kSim, TraceFormat::kBinlog,
                            TraceFormat::kDnstap, TraceFormat::kPcap}) {
    EXPECT_EQ(parse_format(format_name(format)), format);
  }
  EXPECT_THROW(parse_format("fstrm"), util::ParseError);
  EXPECT_THROW(parse_format(""), util::ParseError);
}

TEST_F(WireTest, RandomizedSimAndBinlogRoundTripsThroughTraceSource) {
  for (const std::uint64_t seed : {7u, 23u, 101u}) {
    util::Rng rng(seed);
    DayTrace trace;
    trace.day = static_cast<Day>(10 + rng.next_below(30));
    const auto records = 50 + rng.next_below(200);
    for (std::uint64_t i = 0; i < records; ++i) {
      QueryRecord record;
      record.day = trace.day;
      // Free-form machine identifiers: the lossless formats keep them.
      record.machine = "isp" + std::to_string(rng.next_below(4)) + "-host-" +
                       std::to_string(rng.next_below(1000));
      record.qname = "q" + std::to_string(rng.next()) + ".example.net";
      const auto ips = 1 + rng.next_below(3);
      for (std::uint64_t k = 0; k < ips; ++k) {
        record.resolved_ips.push_back(IpV4(static_cast<std::uint32_t>(rng.next())));
      }
      trace.records.push_back(std::move(record));
    }

    const auto sim = temp_path(".rt" + std::to_string(seed) + ".tsv");
    const auto binlog = temp_path(".rt" + std::to_string(seed) + ".bin");
    write_trace(trace, sim);
    write_trace_binary(trace, binlog);

    FileTraceSource sim_source(sim);
    EXPECT_EQ(sim_source.format(), TraceFormat::kSim);
    EXPECT_EQ(drain(sim_source), trace.records) << "sim seed " << seed;
    EXPECT_EQ(sim_source.skipped(), 0u);

    FileTraceSource binlog_source(binlog, TraceFormat::kBinlog);
    EXPECT_EQ(drain(binlog_source), trace.records) << "binlog seed " << seed;
  }
}

TEST_F(WireTest, ConcatenatedBinlogSegmentsStreamAsMultipleDays) {
  auto day3 = wire_trace(10, 3);
  day3.day = 3;
  for (auto& record : day3.records) {
    record.day = 3;
  }
  auto day5 = wire_trace(6, 5);
  day5.day = 5;
  for (auto& record : day5.records) {
    record.day = 5;
  }
  const auto path_a = temp_path(".day3.bin");
  const auto path_b = temp_path(".day5.bin");
  write_trace_binary(day3, path_a);
  write_trace_binary(day5, path_b);
  auto merged = read_bytes(path_a);
  const auto tail = read_bytes(path_b);
  merged.insert(merged.end(), tail.begin(), tail.end());
  const auto multiday = write_bytes(".multiday.bin", merged);

  FileTraceSource source(multiday);
  EXPECT_EQ(source.format(), TraceFormat::kBinlog);
  std::vector<DayTrace> days;
  const auto total = collect_days(source, [&](DayTrace&& day) {
    days.push_back(std::move(day));
  });
  EXPECT_EQ(total, day3.records.size() + day5.records.size());
  ASSERT_EQ(days.size(), 2u);
  EXPECT_EQ(days[0].day, 3);
  EXPECT_EQ(days[0].records, day3.records);
  EXPECT_EQ(days[1].day, 5);
  EXPECT_EQ(days[1].records, day5.records);
}

TEST_F(WireTest, CollectDaysRejectsBackwardDays) {
  DayTrace trace;
  trace.day = 5;
  trace.records.push_back({5, "m1", "a.example.com", {}});
  trace.records.push_back({4, "m2", "b.example.com", {}});
  DayTraceSource source(trace);
  EXPECT_THROW(collect_days(source, [](DayTrace&&) {}), util::ParseError);
}

TEST_F(WireTest, BinlogRejectsForeignMagicMidStream) {
  const auto trace = wire_trace(4);
  const auto path = temp_path(".midmagic.bin");
  write_trace_binary(trace, path);
  auto bytes = read_bytes(path);
  bytes.insert(bytes.end(), {'N', 'O', 'T', 'A', 'S', 'E', 'G', '!'});
  const auto corrupted = write_bytes(".corrupted.bin", bytes);

  FileTraceSource source(corrupted, TraceFormat::kBinlog);
  QueryRecord record;
  for (std::size_t i = 0; i < trace.records.size(); ++i) {
    ASSERT_TRUE(source.next(record));
  }
  // The valid leading segment parses; the trailing garbage segment header
  // must throw, not be silently dropped.
  EXPECT_THROW(source.next(record), util::ParseError);
}

}  // namespace
}  // namespace seg::dns
