#include "dns/query_log.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <unistd.h>

#include "util/require.h"

namespace seg::dns {
namespace {

class QueryLogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = (std::filesystem::temp_directory_path() /
             ("seg_trace_test_" + std::to_string(::getpid()) + ".tsv"))
                .string();
  }
  void TearDown() override { std::filesystem::remove(path_); }

  std::string path_;
};

TEST_F(QueryLogTest, RoundTrip) {
  DayTrace trace;
  trace.day = 7;
  trace.records.push_back({7, "m1", "www.example.com", {IpV4::parse("1.2.3.4")}});
  trace.records.push_back(
      {7, "m2", "evil.biz", {IpV4::parse("5.6.7.8"), IpV4::parse("5.6.7.9")}});
  write_trace(trace, path_);

  const auto loaded = read_trace(path_);
  EXPECT_EQ(loaded.day, 7);
  ASSERT_EQ(loaded.records.size(), 2u);
  EXPECT_EQ(loaded.records[0], trace.records[0]);
  EXPECT_EQ(loaded.records[1], trace.records[1]);
}

TEST_F(QueryLogTest, EmptyTraceRoundTrips) {
  DayTrace trace;
  trace.day = 3;
  write_trace(trace, path_);
  const auto loaded = read_trace(path_);
  EXPECT_TRUE(loaded.records.empty());
  EXPECT_EQ(loaded.day, 0);  // day is derived from records; none present
}

TEST_F(QueryLogTest, RecordWithNoIpsRoundTrips) {
  DayTrace trace;
  trace.day = 1;
  trace.records.push_back({1, "m1", "nxd.example.com", {}});
  write_trace(trace, path_);
  const auto loaded = read_trace(path_);
  ASSERT_EQ(loaded.records.size(), 1u);
  EXPECT_TRUE(loaded.records[0].resolved_ips.empty());
}

TEST_F(QueryLogTest, RejectsWrongFieldCount) {
  {
    std::ofstream out(path_);
    out << "1\tm1\twww.example.com\n";  // missing ips column
  }
  EXPECT_THROW(read_trace(path_), util::ParseError);
}

TEST_F(QueryLogTest, RejectsMixedDays) {
  {
    std::ofstream out(path_);
    out << "1\tm1\ta.com\t1.2.3.4\n2\tm1\tb.com\t1.2.3.4\n";
  }
  EXPECT_THROW(read_trace(path_), util::ParseError);
}

TEST_F(QueryLogTest, RejectsMalformedIp) {
  {
    std::ofstream out(path_);
    out << "1\tm1\ta.com\tnot-an-ip\n";
  }
  EXPECT_THROW(read_trace(path_), util::ParseError);
}

}  // namespace
}  // namespace seg::dns
