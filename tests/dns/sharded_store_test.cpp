// Serial-vs-sharded equivalence for the streaming pipeline's history
// stores: every answer, every byte of save() output, and every absorbed
// observation must be independent of the shard count.
#include "dns/sharded_store.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "util/rng.h"

namespace seg::dns {
namespace {

std::string save_bytes(const DomainActivityIndex& index) {
  std::ostringstream blob;
  index.save(blob);
  return std::move(blob).str();
}

std::string save_bytes(const ShardedActivityIndex& index) {
  std::ostringstream blob;
  index.save(blob);
  return std::move(blob).str();
}

std::string save_bytes(const PassiveDnsDb& db) {
  std::ostringstream blob;
  db.save(blob);
  return std::move(blob).str();
}

std::string save_bytes(const ShardedPassiveDnsDb& db) {
  std::ostringstream blob;
  db.save(blob);
  return std::move(blob).str();
}

// A pre-versioning stream: the same bytes minus the `segf1 ...` first line.
std::string as_legacy(const std::string& bytes) {
  return bytes.substr(bytes.find('\n') + 1);
}

// Small IP pool spanning a handful of /24s so prefix lookups aggregate
// observations across sibling IPs.
IpV4 random_ip(util::Rng& rng) {
  const auto prefix = static_cast<std::uint32_t>(rng.next_below(6)) << 8;
  return IpV4((0x0A000000u | prefix) | static_cast<std::uint32_t>(rng.next_below(8)));
}

TEST(ShardedActivityIndexTest, MatchesSerialOnRandomizedWorkload) {
  util::Rng rng(7);
  std::vector<std::string> names;
  for (int i = 0; i < 40; ++i) {
    names.push_back("host" + std::to_string(i) + ".example.com");
  }
  DomainActivityIndex serial;
  ShardedActivityIndex one(1);
  ShardedActivityIndex few(3);
  ShardedActivityIndex many(16);
  for (int i = 0; i < 2000; ++i) {
    const auto& name = names[rng.next_below(names.size())];
    const auto day = static_cast<Day>(rng.next_int(-30, 30));
    serial.mark_active(name, day);
    one.mark_active(name, day);
    few.mark_active(name, day);
    many.mark_active(name, day);
  }

  std::vector<ShardedActivityIndex::Query> queries;
  for (const auto& name : names) {
    const auto from = static_cast<Day>(rng.next_int(-30, 0));
    const auto to = static_cast<Day>(rng.next_int(0, 30));
    queries.push_back({name, from, to, to});
  }
  for (const auto* sharded : {&one, &few, &many}) {
    EXPECT_EQ(sharded->tracked_names(), serial.tracked_names());
    const auto answers = sharded->query_batch(queries);
    ASSERT_EQ(answers.size(), queries.size());
    for (std::size_t i = 0; i < queries.size(); ++i) {
      const auto& q = queries[i];
      EXPECT_EQ(answers[i].active_days, serial.active_days(q.name, q.from, q.to));
      EXPECT_EQ(answers[i].consecutive_days, serial.consecutive_days_ending(q.name, q.ending));
      EXPECT_EQ(sharded->active_days(q.name, q.from, q.to),
                serial.active_days(q.name, q.from, q.to));
      EXPECT_EQ(sharded->first_seen(q.name), serial.first_seen(q.name));
    }
  }
}

TEST(ShardedActivityIndexTest, SaveIsByteIdenticalToSerialAndRoundTrips) {
  util::Rng rng(11);
  DomainActivityIndex serial;
  ShardedActivityIndex sharded(5);
  for (int i = 0; i < 500; ++i) {
    const auto name = "d" + std::to_string(rng.next_below(25)) + ".net";
    const auto day = static_cast<Day>(rng.next_int(-10, 40));
    serial.mark_active(name, day);
    sharded.mark_active(name, day);
  }
  EXPECT_EQ(save_bytes(sharded), save_bytes(serial));

  std::istringstream in(save_bytes(sharded));
  const auto loaded = ShardedActivityIndex::load(in, 7);
  EXPECT_EQ(loaded.tracked_names(), serial.tracked_names());
  EXPECT_EQ(save_bytes(loaded), save_bytes(serial));
}

TEST(ShardedActivityIndexTest, AbsorbIsIdempotentAndLegacyStreamsLoad) {
  DomainActivityIndex serial;
  for (Day d : {1, 2, 3, 7}) {
    serial.mark_active("a.com", d);
  }
  serial.mark_active("b.org", 5);

  ShardedActivityIndex sharded(4);
  sharded.absorb(serial);
  sharded.absorb(serial);  // second absorb must change nothing
  EXPECT_EQ(save_bytes(sharded), save_bytes(serial));
  EXPECT_EQ(sharded.consecutive_days_ending("a.com", 3), 3);

  std::istringstream legacy(as_legacy(save_bytes(serial)));
  const auto loaded = ShardedActivityIndex::load(legacy, 3);
  EXPECT_EQ(loaded.tracked_names(), 2u);
  EXPECT_EQ(loaded.active_days("a.com", 1, 7), 4);
  EXPECT_EQ(loaded.first_seen("b.org"), 5);
}

TEST(ShardedPassiveDnsDbTest, MatchesSerialOnRandomizedWorkload) {
  util::Rng rng(13);
  PassiveDnsDb serial;
  ShardedPassiveDnsDb one(1);
  ShardedPassiveDnsDb few(3);
  ShardedPassiveDnsDb many(16);
  constexpr PdnsAssociation kKinds[] = {PdnsAssociation::kMalware, PdnsAssociation::kUnknown,
                                        PdnsAssociation::kBenign};
  for (int i = 0; i < 2000; ++i) {
    const auto ip = random_ip(rng);
    const auto day = static_cast<Day>(rng.next_int(-60, 20));
    const auto kind = kKinds[rng.next_below(3)];
    serial.add_observation(day, ip, kind);
    one.add_observation(day, ip, kind);
    few.add_observation(day, ip, kind);
    many.add_observation(day, ip, kind);
  }

  std::vector<ShardedPassiveDnsDb::AbuseQuery> queries;
  for (int i = 0; i < 200; ++i) {
    const auto from = static_cast<Day>(rng.next_int(-60, 0));
    const auto to = static_cast<Day>(rng.next_int(0, 20));
    queries.push_back({random_ip(rng), from, to});
  }
  for (const auto* sharded : {&one, &few, &many}) {
    EXPECT_EQ(sharded->observation_count(), serial.observation_count());
    EXPECT_EQ(sharded->distinct_ip_count(), serial.distinct_ip_count());
    const auto answers = sharded->query_batch(queries);
    ASSERT_EQ(answers.size(), queries.size());
    for (std::size_t i = 0; i < queries.size(); ++i) {
      const auto& q = queries[i];
      EXPECT_EQ(answers[i].ip_malware != 0, serial.ip_malware_associated(q.ip, q.from, q.to));
      EXPECT_EQ(answers[i].ip_unknown != 0, serial.ip_unknown_associated(q.ip, q.from, q.to));
      EXPECT_EQ(answers[i].prefix_malware != 0,
                serial.prefix_malware_associated(q.ip, q.from, q.to));
      EXPECT_EQ(answers[i].prefix_unknown != 0,
                serial.prefix_unknown_associated(q.ip, q.from, q.to));
      EXPECT_EQ(sharded->ip_malware_associated(q.ip, q.from, q.to),
                serial.ip_malware_associated(q.ip, q.from, q.to));
    }
  }
}

TEST(ShardedPassiveDnsDbTest, SaveIsByteIdenticalToSerialAndRoundTrips) {
  util::Rng rng(17);
  PassiveDnsDb serial;
  ShardedPassiveDnsDb sharded(6);
  for (int i = 0; i < 800; ++i) {
    const auto ip = random_ip(rng);
    const auto day = static_cast<Day>(rng.next_int(-30, 30));
    const auto kind = rng.next_bool(0.5) ? PdnsAssociation::kMalware : PdnsAssociation::kUnknown;
    serial.add_observation(day, ip, kind);
    sharded.add_observation(day, ip, kind);
  }
  EXPECT_EQ(save_bytes(sharded), save_bytes(serial));

  std::istringstream in(save_bytes(sharded));
  const auto loaded = ShardedPassiveDnsDb::load(in, 9);
  EXPECT_EQ(loaded.observation_count(), serial.observation_count());
  EXPECT_EQ(save_bytes(loaded), save_bytes(serial));
}

TEST(ShardedPassiveDnsDbTest, AbsorbIsIdempotentAndLegacyStreamsLoad) {
  PassiveDnsDb serial;
  serial.add_observation(-10, IpV4::parse("1.2.3.4"), PdnsAssociation::kMalware);
  serial.add_observation(-5, IpV4::parse("1.2.3.9"), PdnsAssociation::kUnknown);
  serial.add_observation(3, IpV4::parse("9.8.7.6"), PdnsAssociation::kMalware);

  ShardedPassiveDnsDb sharded(4);
  sharded.absorb(serial);
  sharded.absorb(serial);  // second absorb must change nothing
  EXPECT_EQ(save_bytes(sharded), save_bytes(serial));
  EXPECT_EQ(sharded.observation_count(), serial.observation_count());
  EXPECT_TRUE(sharded.prefix_malware_associated(IpV4::parse("1.2.3.250"), -20, 0));

  std::istringstream legacy(as_legacy(save_bytes(serial)));
  const auto loaded = ShardedPassiveDnsDb::load(legacy, 3);
  EXPECT_EQ(loaded.observation_count(), 3u);
  EXPECT_TRUE(loaded.ip_malware_associated(IpV4::parse("1.2.3.4"), -20, 0));
  EXPECT_TRUE(loaded.ip_unknown_associated(IpV4::parse("1.2.3.9"), -5, -5));
  EXPECT_FALSE(loaded.ip_malware_associated(IpV4::parse("5.5.5.5"), -100, 100));
}

}  // namespace
}  // namespace seg::dns
