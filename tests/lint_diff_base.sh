#!/usr/bin/env bash
# seg-lint --diff-base end-to-end test: builds a scratch git repo whose base
# commit already carries one contract violation, introduces a second one in
# the working tree, and checks that diff mode reports ONLY the new finding.
set -euo pipefail

SEG_LINT="$1"
[ -x "$SEG_LINT" ] || { echo "seg_lint binary '$SEG_LINT' not executable"; exit 1; }

SCRATCH="$(mktemp -d /tmp/seg-lint-diff-test-XXXXXX)"
trap 'rm -rf "$SCRATCH"' EXIT
cd "$SCRATCH"

git init -q .
git config user.email lint@test
git config user.name lint-test

mkdir -p src/util
# Base commit: one pre-existing R-RACE1 violation.
cat > src/util/old.cpp <<'EOF'
#include <vector>
std::vector<bool> preexisting_flags;
EOF
git add -A
git commit -qm base

# Working tree: the old violation persists and a new one appears.
cat > src/util/new.cpp <<'EOF'
#include <vector>
std::vector<bool> fresh_flags;
EOF

# Full run sees both findings...
full_output="$("$SEG_LINT" src || true)"
echo "$full_output" | grep -q "old.cpp" || { echo "FAIL: full run missed the base finding"; exit 1; }
echo "$full_output" | grep -q "new.cpp" || { echo "FAIL: full run missed the new finding"; exit 1; }

# ...diff mode subtracts the base finding and fails only on the new one.
set +e
diff_output="$("$SEG_LINT" --error-exit --diff-base HEAD src)"
diff_status=$?
set -e
[ "$diff_status" -eq 1 ] || { echo "FAIL: diff run expected exit 1, got $diff_status"; exit 1; }
echo "$diff_output" | grep -q "new.cpp" || { echo "FAIL: diff run missed the new finding"; exit 1; }
if echo "$diff_output" | grep -q "old.cpp"; then
  echo "FAIL: diff run reported the pre-existing finding"
  exit 1
fi

# JSON diff output carries exactly the new finding.
json_output="$("$SEG_LINT" --format=json --diff-base HEAD src || true)"
echo "$json_output" | grep -q '"file": "src/util/new.cpp"' || {
  echo "FAIL: json diff output missing the new finding"; exit 1; }
if echo "$json_output" | grep -q 'old.cpp'; then
  echo "FAIL: json diff output contains the pre-existing finding"
  exit 1
fi

# After reverting the new file, diff mode is clean and exits 0.
rm src/util/new.cpp
"$SEG_LINT" --error-exit --diff-base HEAD src || {
  echo "FAIL: clean diff run expected exit 0"; exit 1; }

echo "PASS"
