#include "graph/labeling.h"

#include <gtest/gtest.h>

#include <vector>

namespace seg::graph {
namespace {

class LabelingTest : public ::testing::Test {
 protected:
  dns::PublicSuffixList psl_ = dns::PublicSuffixList::with_default_rules();

  MachineDomainGraph make_graph() {
    GraphBuilder builder(psl_);
    // m1 queries a malware domain and a benign one.
    builder.add_query("m1", "evil.biz", {});
    builder.add_query("m1", "www.good.com", {});
    // m2 queries only benign domains.
    builder.add_query("m2", "www.good.com", {});
    builder.add_query("m2", "mail.good.com", {});
    // m3 queries a benign and an unknown domain.
    builder.add_query("m3", "www.good.com", {});
    builder.add_query("m3", "strange.net", {});
    return builder.build();
  }
};

TEST_F(LabelingTest, DomainLabelsFromBlacklistAndWhitelist) {
  auto graph = make_graph();
  NameSet blacklist;
  blacklist.insert("evil.biz");
  NameSet whitelist;
  whitelist.insert("good.com");
  const auto result = apply_labels(graph, blacklist, whitelist);

  EXPECT_EQ(graph.domain_label(graph.find_domain("evil.biz")), Label::kMalware);
  EXPECT_EQ(graph.domain_label(graph.find_domain("www.good.com")), Label::kBenign);
  EXPECT_EQ(graph.domain_label(graph.find_domain("mail.good.com")), Label::kBenign);
  EXPECT_EQ(graph.domain_label(graph.find_domain("strange.net")), Label::kUnknown);
  EXPECT_EQ(result.malware_domains, 1u);
  EXPECT_EQ(result.benign_domains, 2u);
}

TEST_F(LabelingTest, MachineLabelPropagation) {
  auto graph = make_graph();
  NameSet blacklist;
  blacklist.insert("evil.biz");
  NameSet whitelist;
  whitelist.insert("good.com");
  const auto result = apply_labels(graph, blacklist, whitelist);

  EXPECT_EQ(graph.machine_label(graph.find_machine("m1")), Label::kMalware);
  EXPECT_EQ(graph.machine_label(graph.find_machine("m2")), Label::kBenign);
  EXPECT_EQ(graph.machine_label(graph.find_machine("m3")), Label::kUnknown);
  EXPECT_EQ(result.malware_machines, 1u);
  EXPECT_EQ(result.benign_machines, 1u);
}

TEST_F(LabelingTest, BlacklistMatchIsFullNameNotE2ld) {
  // Only the exact FQDN is blacklisted; a sibling subdomain is not.
  GraphBuilder builder(psl_);
  builder.add_query("m1", "cc.evil.biz", {});
  builder.add_query("m1", "other.evil.biz", {});
  auto graph = builder.build();
  NameSet blacklist;
  blacklist.insert("cc.evil.biz");
  apply_labels(graph, blacklist, NameSet{});
  EXPECT_EQ(graph.domain_label(graph.find_domain("cc.evil.biz")), Label::kMalware);
  EXPECT_EQ(graph.domain_label(graph.find_domain("other.evil.biz")), Label::kUnknown);
}

TEST_F(LabelingTest, WhitelistMatchIsByE2ld) {
  GraphBuilder builder(psl_);
  builder.add_query("m1", "www.bbc.co.uk", {});
  builder.add_query("m1", "deep.sub.bbc.co.uk", {});
  auto graph = builder.build();
  NameSet whitelist;
  whitelist.insert("bbc.co.uk");
  apply_labels(graph, NameSet{}, whitelist);
  EXPECT_EQ(graph.domain_label(graph.find_domain("www.bbc.co.uk")), Label::kBenign);
  EXPECT_EQ(graph.domain_label(graph.find_domain("deep.sub.bbc.co.uk")), Label::kBenign);
}

TEST_F(LabelingTest, BlacklistWinsOverWhitelist) {
  GraphBuilder builder(psl_);
  builder.add_query("m1", "abused.good.com", {});
  auto graph = builder.build();
  NameSet blacklist;
  blacklist.insert("abused.good.com");
  NameSet whitelist;
  whitelist.insert("good.com");
  apply_labels(graph, blacklist, whitelist);
  EXPECT_EQ(graph.domain_label(graph.find_domain("abused.good.com")), Label::kMalware);
}

TEST_F(LabelingTest, FreeRegistrationZoneSubdomainsAreNotWhitelistedByZone) {
  // egloos.com is a free-registration zone: PSL treats each subdomain as its
  // own e2LD, so whitelisting "egloos.com" does not bless subdomains.
  GraphBuilder builder(psl_);
  builder.add_query("m1", "attacker.egloos.com", {});
  auto graph = builder.build();
  NameSet whitelist;
  whitelist.insert("egloos.com");
  apply_labels(graph, NameSet{}, whitelist);
  EXPECT_EQ(graph.domain_label(graph.find_domain("attacker.egloos.com")), Label::kUnknown);
}

TEST_F(LabelingTest, RelabelMachinesAfterHidingDomainLabel) {
  // Mirrors Fig. 5: hiding the only malware domain of a machine flips the
  // machine back to unknown.
  auto graph = make_graph();
  NameSet blacklist;
  blacklist.insert("evil.biz");
  NameSet whitelist;
  whitelist.insert("good.com");
  apply_labels(graph, blacklist, whitelist);
  ASSERT_EQ(graph.machine_label(graph.find_machine("m1")), Label::kMalware);

  graph.set_domain_label(graph.find_domain("evil.biz"), Label::kUnknown);
  relabel_machines(graph);
  EXPECT_EQ(graph.machine_label(graph.find_machine("m1")), Label::kUnknown);
  // m2 unaffected.
  EXPECT_EQ(graph.machine_label(graph.find_machine("m2")), Label::kBenign);
}

TEST(DeriveMachineLabelTest, Rules) {
  EXPECT_EQ(derive_machine_label(3, 1, 0), Label::kMalware);
  EXPECT_EQ(derive_machine_label(3, 3, 0), Label::kMalware);
  EXPECT_EQ(derive_machine_label(3, 0, 3), Label::kBenign);
  EXPECT_EQ(derive_machine_label(3, 0, 2), Label::kUnknown);
  EXPECT_EQ(derive_machine_label(0, 0, 0), Label::kUnknown);
  EXPECT_EQ(derive_machine_label(1, 1, 1), Label::kMalware);  // malware wins
}

TEST(NameSetTest, Basics) {
  NameSet set;
  EXPECT_TRUE(set.empty());
  set.insert("a.com");
  set.insert("a.com");
  EXPECT_EQ(set.size(), 1u);
  EXPECT_TRUE(set.contains("a.com"));
  EXPECT_FALSE(set.contains("b.com"));
  const std::vector<std::string> names = {"x.com", "y.com"};
  const auto from = NameSet::from(names);
  EXPECT_EQ(from.size(), 2u);
  EXPECT_TRUE(from.contains("y.com"));
}

}  // namespace
}  // namespace seg::graph
