// Determinism contract of the sharded builder (docs/performance.md): for
// every shard/thread count the built graph must be byte-identical to the
// serial GraphBuilder's output — same ids, same CSR contents, same IPs,
// same e2LDs — so the parallel pipeline can replace the serial one without
// invalidating a single figure.
#include "graph/sharded_builder.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "graph/graph_io.h"
#include "graph/labeling.h"
#include "graph/pruning.h"
#include "util/parallel.h"
#include "util/rng.h"

namespace seg::graph {
namespace {

std::string serialized(const MachineDomainGraph& graph) {
  std::ostringstream out;
  save_graph(graph, out);
  return out.str();
}

// A deliberately messy trace: duplicate (machine, domain) pairs, names
// needing normalization (uppercase, trailing dots), invalid names, shared
// e2LDs, and overlapping resolved-IP sets.
dns::DayTrace make_messy_trace(std::size_t records) {
  util::Rng rng(20240806);
  dns::DayTrace trace;
  trace.day = 17;
  trace.records.reserve(records);
  for (std::size_t i = 0; i < records; ++i) {
    dns::QueryRecord record;
    record.day = 17;
    record.machine = "m" + std::to_string(rng.next_below(97));
    const auto host = rng.next_below(211);
    const auto zone = rng.next_below(13);
    std::string qname = "h" + std::to_string(host) + ".zone" + std::to_string(zone) + ".com";
    switch (rng.next_below(7)) {
      case 0:  // uppercase: normalizes to the same name
        qname = "H" + qname.substr(1);
        break;
      case 1:  // trailing dot: normalizes to the same name
        qname += ".";
        break;
      case 2:  // invalid: must be counted as skipped
        qname = "-bad-.example..com";
        break;
      default:
        break;
    }
    const auto ip_count = rng.next_below(3);
    for (std::uint64_t ip = 0; ip <= ip_count; ++ip) {
      record.resolved_ips.push_back(dns::IpV4((10u << 24) | static_cast<std::uint32_t>(
                                                  rng.next_below(50) + host)));
    }
    trace.records.push_back(std::move(record));
  }
  return trace;
}

TEST(ShardedGraphBuilderTest, BitIdenticalToSerialBuilderForAnyShardCount) {
  const auto psl = dns::PublicSuffixList::with_default_rules();
  const auto trace = make_messy_trace(5000);

  GraphBuilder serial(psl);
  serial.add_trace(trace);
  const auto serial_skipped_input = serial.skipped_records();
  const auto reference = serial.build();
  const auto reference_bytes = serialized(reference);

  for (const std::size_t shards : {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
    SCOPED_TRACE("shards=" + std::to_string(shards));
    ShardedGraphBuilder builder(psl, shards);
    builder.add_trace(trace);
    const auto graph = builder.build();
    EXPECT_EQ(builder.skipped_records(), serial_skipped_input);
    EXPECT_EQ(graph.day(), reference.day());
    EXPECT_EQ(serialized(graph), reference_bytes);
    // The retained name index answers lookups on the parallel build too.
    for (DomainId d = 0; d < graph.domain_count(); d += 37) {
      EXPECT_EQ(graph.find_domain(graph.domain_name(d)), d);
    }
    for (MachineId m = 0; m < graph.machine_count(); m += 11) {
      EXPECT_EQ(graph.find_machine(graph.machine_name(m)), m);
    }
  }
}

TEST(ShardedGraphBuilderTest, MultiTraceBuildMatchesSerial) {
  const auto psl = dns::PublicSuffixList::with_default_rules();
  const auto first = make_messy_trace(700);
  auto second = make_messy_trace(900);
  second.day = 19;

  GraphBuilder serial(psl);
  serial.add_trace(first);
  serial.add_trace(second);
  const auto reference = serial.build();

  ShardedGraphBuilder builder(psl, 4);
  builder.add_trace(first);
  builder.add_trace(second);
  const auto graph = builder.build();
  EXPECT_EQ(graph.day(), 19);
  EXPECT_EQ(serialized(graph), serialized(reference));
}

TEST(ShardedGraphBuilderTest, EmptyInputBuildsEmptyGraph) {
  const auto psl = dns::PublicSuffixList::with_default_rules();
  ShardedGraphBuilder builder(psl, 8);
  const auto graph = builder.build();
  EXPECT_EQ(graph.machine_count(), 0u);
  EXPECT_EQ(graph.domain_count(), 0u);
  EXPECT_EQ(graph.edge_count(), 0u);
}

TEST(ShardedGraphBuilderTest, BuilderIsReusableAfterBuild) {
  const auto psl = dns::PublicSuffixList::with_default_rules();
  const auto trace = make_messy_trace(300);
  ShardedGraphBuilder builder(psl, 3);
  builder.add_trace(trace);
  const auto first = builder.build();
  builder.add_trace(trace);
  const auto second = builder.build();
  EXPECT_EQ(serialized(first), serialized(second));
}

// Downstream stages are parallel too; labeling + pruning a sharded-built
// graph must give identical bytes for every pool size.
TEST(ShardedGraphBuilderTest, ParallelPruneMatchesForEveryPoolSize) {
  const auto psl = dns::PublicSuffixList::with_default_rules();
  const auto trace = make_messy_trace(4000);
  NameSet blacklist;
  blacklist.insert("h1.zone1.com");
  blacklist.insert("h2.zone2.com");
  NameSet whitelist;
  whitelist.insert("zone3.com");

  const auto prepare = [&]() {
    ShardedGraphBuilder builder(psl);
    builder.add_trace(trace);
    auto graph = builder.build();
    apply_labels(graph, blacklist, whitelist);
    PruningConfig config;
    config.proxy_degree_percentile = 0.999;
    return serialized(prune(graph, config));
  };

  util::set_parallelism(1);
  const auto serial_bytes = prepare();
  util::set_parallelism(8);
  const auto parallel_bytes = prepare();
  util::set_parallelism(0);  // restore default for other tests
  EXPECT_EQ(serial_bytes, parallel_bytes);
}

}  // namespace
}  // namespace seg::graph
