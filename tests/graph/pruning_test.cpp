#include "graph/pruning.h"

#include <gtest/gtest.h>

#include <string>

#include "graph/labeling.h"
#include "util/require.h"

namespace seg::graph {
namespace {

class PruningTest : public ::testing::Test {
 protected:
  dns::PublicSuffixList psl_ = dns::PublicSuffixList::with_default_rules();

  // Gives machine `name` exactly `n` distinct domain queries in a private
  // namespace so degrees are controlled precisely. Domains are shared with
  // one partner machine ("peer-<name>") so R3 does not remove them.
  void add_active_machine(GraphBuilder& builder, const std::string& name, int n) {
    for (int i = 0; i < n; ++i) {
      const auto domain = name + "-d" + std::to_string(i) + ".com";
      builder.add_query(name, domain, {});
      builder.add_query("peer-" + name, domain, {});
    }
  }
};

TEST_F(PruningTest, R1RemovesInactiveMachines) {
  GraphBuilder builder(psl_);
  add_active_machine(builder, "active", 10);   // degree 10, survives
  add_active_machine(builder, "lazy", 3);      // degree 3 <= 5, pruned
  auto graph = builder.build();
  PruneStats stats;
  const auto pruned = prune(graph, PruningConfig{}, &stats);

  EXPECT_EQ(pruned.find_machine("lazy"), pruned.machine_count());  // gone
  EXPECT_LT(pruned.find_machine("active"), pruned.machine_count());
  EXPECT_GE(stats.machines_removed_r1, 1u);
}

TEST_F(PruningTest, R1ExceptionKeepsMalwareLabeledMachines) {
  GraphBuilder builder(psl_);
  add_active_machine(builder, "active", 10);
  // Infected machine querying only 2 domains, one of them a C&C name.
  builder.add_query("infected", "cc.evil.biz", {});
  builder.add_query("infected", "cc2.evil.biz", {});
  builder.add_query("otherinfected", "cc.evil.biz", {});  // keeps cc.evil.biz degree >= 2
  builder.add_query("otherinfected", "cc2.evil.biz", {});
  auto graph = builder.build();
  NameSet blacklist;
  blacklist.insert("cc.evil.biz");
  apply_labels(graph, blacklist, NameSet{});

  PruneStats stats;
  const auto pruned = prune(graph, PruningConfig{}, &stats);
  EXPECT_LT(pruned.find_machine("infected"), pruned.machine_count());
  EXPECT_GE(stats.malware_machines_kept_by_exception, 1u);
}

TEST_F(PruningTest, R2RemovesProxyLikeMachines) {
  GraphBuilder builder(psl_);
  // 200 ordinary machines with degree 10, one proxy with degree 500.
  for (int m = 0; m < 200; ++m) {
    const auto name = "m" + std::to_string(m);
    for (int d = 0; d < 10; ++d) {
      builder.add_query(name, "shared" + std::to_string((m * 7 + d) % 100) + ".com", {});
    }
  }
  for (int d = 0; d < 500; ++d) {
    builder.add_query("proxy", "proxied" + std::to_string(d) + ".com", {});
  }
  auto graph = builder.build();
  PruningConfig config;
  config.proxy_degree_percentile = 0.99;  // with 201 machines, theta_d = 10
  PruneStats stats;
  const auto pruned = prune(graph, config, &stats);
  EXPECT_EQ(pruned.find_machine("proxy"), pruned.machine_count());
  EXPECT_EQ(stats.machines_removed_r2, 1u);
  EXPECT_EQ(stats.theta_d, 10u);
  // Ordinary machines survive.
  EXPECT_LT(pruned.find_machine("m1"), pruned.machine_count());
}

TEST_F(PruningTest, R2IsANoOpOnFlatDegreeDistributions) {
  GraphBuilder builder(psl_);
  add_active_machine(builder, "a", 10);
  add_active_machine(builder, "b", 10);
  PruneStats stats;
  const auto pruned = prune(builder.build(), PruningConfig{}, &stats);
  EXPECT_EQ(stats.machines_removed_r2, 0u);
  EXPECT_LT(pruned.find_machine("a"), pruned.machine_count());
}

TEST_F(PruningTest, R3RemovesSingleMachineDomains) {
  GraphBuilder builder(psl_);
  add_active_machine(builder, "a", 10);
  add_active_machine(builder, "b", 10);
  builder.add_query("a", "lonely.com", {});  // queried by a single machine
  auto graph = builder.build();
  PruneStats stats;
  const auto pruned = prune(graph, PruningConfig{}, &stats);
  EXPECT_EQ(pruned.find_domain("lonely.com"), pruned.domain_count());
  EXPECT_GE(stats.domains_removed_r3, 1u);
}

TEST_F(PruningTest, R3ExceptionKeepsMalwareDomains) {
  GraphBuilder builder(psl_);
  // Enough machines that theta_m (1/3 of machines) stays above the degree
  // of ordinary two-machine domains.
  for (int i = 0; i < 5; ++i) {
    add_active_machine(builder, "a" + std::to_string(i), 10);
  }
  builder.add_query("a0", "cc.evil.biz", {});  // single-machine malware domain
  auto graph = builder.build();
  NameSet blacklist;
  blacklist.insert("cc.evil.biz");
  apply_labels(graph, blacklist, NameSet{});
  PruneStats stats;
  const auto pruned = prune(graph, PruningConfig{}, &stats);
  EXPECT_LT(pruned.find_domain("cc.evil.biz"), pruned.domain_count());
  EXPECT_EQ(stats.malware_domains_kept_by_exception, 1u);
}

TEST_F(PruningTest, R4RemovesVeryPopularE2lds) {
  GraphBuilder builder(psl_);
  // 30 machines; everybody queries popular.com (and its www), so its e2LD
  // reaches 100% > 1/3 of machines. Fillers are spread so each is queried
  // by exactly 4 machines, below theta_m = ceil(30/3) = 10.
  for (int m = 0; m < 30; ++m) {
    const auto name = "m" + std::to_string(m);
    builder.add_query(name, "www.popular.com", {});
    builder.add_query(name, "popular.com", {});
    for (int d = 0; d < 8; ++d) {
      builder.add_query(name, "filler" + std::to_string((m * 8 + d) % 60) + ".net", {});
    }
  }
  auto graph = builder.build();
  PruneStats stats;
  const auto pruned = prune(graph, PruningConfig{}, &stats);
  EXPECT_EQ(pruned.find_domain("www.popular.com"), pruned.domain_count());
  EXPECT_EQ(pruned.find_domain("popular.com"), pruned.domain_count());
  EXPECT_EQ(stats.domains_removed_r4, 2u);
  EXPECT_EQ(stats.theta_m, 10u);
  EXPECT_GT(pruned.domain_count(), 0u);  // fillers survive
}

TEST_F(PruningTest, R4CountsDistinctMachinesAcrossE2ldSubdomains) {
  GraphBuilder builder(psl_);
  // Each machine queries a *different* subdomain of big.com; individually
  // each FQDN has 1-2 machines but the e2LD aggregates all of them.
  constexpr int kMachines = 12;
  for (int m = 0; m < kMachines; ++m) {
    const auto name = "m" + std::to_string(m);
    builder.add_query(name, "sub" + std::to_string(m) + ".big.com", {});
    builder.add_query(name, "sub" + std::to_string((m + 1) % kMachines) + ".big.com", {});
    // Each filler is queried by exactly 2 machines: above the R3 minimum,
    // far below theta_m = ceil(12/3) = 4.
    for (int d = 0; d < 8; ++d) {
      builder.add_query(name, "filler" + std::to_string((m * 8 + d) % 48) + ".net", {});
    }
  }
  auto graph = builder.build();
  PruneStats stats;
  const auto pruned = prune(graph, PruningConfig{}, &stats);
  // big.com e2LD is queried by all 12 machines >= ceil(12/3)=4 -> removed.
  EXPECT_EQ(stats.domains_removed_r4, static_cast<std::size_t>(kMachines));
  for (int m = 0; m < kMachines; ++m) {
    EXPECT_EQ(pruned.find_domain("sub" + std::to_string(m) + ".big.com"),
              pruned.domain_count());
  }
}

TEST_F(PruningTest, StatsReductionsAreConsistent) {
  GraphBuilder builder(psl_);
  add_active_machine(builder, "a", 10);
  add_active_machine(builder, "b", 10);
  builder.add_query("lazy", "a-d0.com", {});
  auto graph = builder.build();
  PruneStats stats;
  const auto pruned = prune(graph, PruningConfig{}, &stats);
  EXPECT_EQ(stats.machines_before, graph.machine_count());
  EXPECT_EQ(stats.machines_after, pruned.machine_count());
  EXPECT_EQ(stats.domains_before, graph.domain_count());
  EXPECT_EQ(stats.domains_after, pruned.domain_count());
  EXPECT_EQ(stats.edges_before, graph.edge_count());
  EXPECT_EQ(stats.edges_after, pruned.edge_count());
  EXPECT_GE(stats.machine_reduction(), 0.0);
  EXPECT_LE(stats.machine_reduction(), 1.0);
}

TEST_F(PruningTest, LabelsAndAnnotationsSurvivePruning) {
  GraphBuilder builder(psl_);
  add_active_machine(builder, "a", 10);
  for (int i = 0; i < 5; ++i) {
    add_active_machine(builder, "x" + std::to_string(i), 10);  // keep theta_m high
  }
  builder.add_query("a", "keep.evil.biz", std::vector<dns::IpV4>{dns::IpV4::parse("6.6.6.6")});
  builder.add_query("peer-a", "keep.evil.biz", {});
  auto graph = builder.build();
  NameSet blacklist;
  blacklist.insert("keep.evil.biz");
  apply_labels(graph, blacklist, NameSet{});

  const auto pruned = prune(graph, PruningConfig{});
  const auto d = pruned.find_domain("keep.evil.biz");
  ASSERT_LT(d, pruned.domain_count());
  EXPECT_EQ(pruned.domain_label(d), Label::kMalware);
  ASSERT_EQ(pruned.resolved_ips(d).size(), 1u);
  EXPECT_EQ(pruned.resolved_ips(d)[0], dns::IpV4::parse("6.6.6.6"));
  EXPECT_EQ(pruned.e2ld_name(pruned.domain_e2ld(d)), "evil.biz");
  // machine labels carried over
  const auto a = pruned.find_machine("a");
  ASSERT_LT(a, pruned.machine_count());
  EXPECT_EQ(pruned.machine_label(a), Label::kMalware);
}

TEST_F(PruningTest, PrunedGraphAdjacencyIsConsistent) {
  GraphBuilder builder(psl_);
  for (int m = 0; m < 30; ++m) {
    const auto name = "m" + std::to_string(m);
    for (int d = 0; d < 10; ++d) {
      builder.add_query(name, "dom" + std::to_string((m * 3 + d) % 40) + ".com", {});
    }
  }
  auto graph = builder.build();
  const auto pruned = prune(graph, PruningConfig{});
  std::size_t from_machines = 0;
  for (MachineId m = 0; m < pruned.machine_count(); ++m) {
    for (const auto d : pruned.domains_of(m)) {
      ASSERT_LT(d, pruned.domain_count());
      const auto machines = pruned.machines_of(d);
      EXPECT_NE(std::find(machines.begin(), machines.end(), m), machines.end());
    }
    from_machines += pruned.domains_of(m).size();
  }
  EXPECT_EQ(from_machines, pruned.edge_count());
}

TEST_F(PruningTest, InvalidConfigThrows) {
  GraphBuilder builder(psl_);
  builder.add_query("m1", "a.com", {});
  const auto graph = builder.build();
  PruningConfig bad;
  bad.proxy_degree_percentile = 0.0;
  EXPECT_THROW(prune(graph, bad), util::PreconditionError);
  bad = PruningConfig{};
  bad.popular_e2ld_fraction = 1.5;
  EXPECT_THROW(prune(graph, bad), util::PreconditionError);
}

TEST_F(PruningTest, EmptyGraphPrunesToEmpty) {
  GraphBuilder builder(psl_);
  const auto graph = builder.build();
  PruneStats stats;
  const auto pruned = prune(graph, PruningConfig{}, &stats);
  EXPECT_EQ(pruned.machine_count(), 0u);
  EXPECT_EQ(pruned.domain_count(), 0u);
  EXPECT_EQ(stats.machines_removed_r1, 0u);
}

}  // namespace
}  // namespace seg::graph
