// Byte-identity tests for the out-of-core prepare (oocore.h): for every
// chunk size, the streamed trace -> spill -> merge -> packed-write path
// must produce exactly the file the in-memory pipeline produces via
// build + apply_labels + prune + save_graph_compressed(kPacked). Anything
// weaker would let the mmap-served classification drift from the
// heap-resident reference.
#include "graph/oocore.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>
#include <unistd.h>

#include "dns/query_log.h"
#include "graph/graph_compressed.h"
#include "graph/labeling.h"
#include "graph/pruning.h"
#include "util/rng.h"

namespace seg::graph {
namespace {

class OutOfCoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto base = std::filesystem::temp_directory_path() /
                      ("seg_oocore_test_" + std::to_string(::getpid()));
    trace_path_ = base.string() + ".tsv";
    binary_trace_path_ = base.string() + ".bin";
    out_path_ = base.string() + ".graphc";
  }
  void TearDown() override {
    std::filesystem::remove(trace_path_);
    std::filesystem::remove(binary_trace_path_);
    std::filesystem::remove(out_path_);
  }

  dns::PublicSuffixList psl_ = dns::PublicSuffixList::with_default_rules();
  std::string trace_path_;
  std::string binary_trace_path_;
  std::string out_path_;

  // A trace with enough structure to exercise every pruning rule: an
  // inactive malware machine (R1 exception), a proxy-degree machine (R2), a
  // low-degree malware domain (R3 exception), singleton domains (R3), and a
  // popular e2LD shared by most machines (R4).
  dns::DayTrace make_trace() {
    dns::DayTrace trace;
    trace.day = 11;
    util::Rng rng(7);
    const auto add = [&](const std::string& machine, const std::string& qname,
                         std::initializer_list<const char*> ips) {
      dns::QueryRecord record;
      record.day = 11;
      record.machine = machine;
      record.qname = qname;
      for (const auto* ip : ips) {
        record.resolved_ips.push_back(dns::IpV4::parse(ip));
      }
      trace.records.push_back(std::move(record));
    };
    for (int m = 0; m < 24; ++m) {
      const std::string machine = "host-" + std::to_string(m);
      // Popular e2LD across nearly all machines -> R4.
      add(machine, "www.popular.com", {"8.8.8.8"});
      // Per-machine spread of ordinary domains, above the inactive cutoff.
      for (int k = 0; k < 8; ++k) {
        const auto j = rng.next_below(40);
        add(machine, "site" + std::to_string(j) + ".net",
            {("10.0." + std::to_string(j) + ".1").c_str()});
      }
      // Duplicate queries and multi-IP answers must collapse identically.
      add(machine, "site1.net", {"10.0.1.1", "10.0.1.2"});
    }
    // Proxy-like machine touching everything (R2).
    for (int j = 0; j < 40; ++j) {
      add("proxy-0", "site" + std::to_string(j) + ".net", {});
      add("proxy-0", "only" + std::to_string(j) + ".org", {});
    }
    // Inactive malware machine kept by the R1 exception.
    add("bot-quiet", "cc.evil.biz", {"185.1.2.3"});
    add("host-0", "cc.evil.biz", {"185.1.2.3"});
    // Low-degree malware domain (R3 exception) and unlabeled singletons.
    add("host-1", "drop.evil2.biz", {"185.9.9.9"});
    add("host-2", "lonely.example.org", {"1.1.1.1"});
    // Mixed-case and trailing-dot qnames exercise normalization.
    add("host-3", "WWW.Popular.COM.", {"8.8.8.8"});
    // Invalid rows must be skipped, not interned.
    add("host-4", "bad..name", {"2.2.2.2"});
    add("", "site1.net", {"3.3.3.3"});
    return trace;
  }

  NameSet blacklist() {
    NameSet set;
    set.insert("cc.evil.biz");
    set.insert("drop.evil2.biz");
    return set;
  }

  NameSet whitelist() {
    NameSet set;
    set.insert("popular.com");
    set.insert("site1.net");
    return set;
  }

  std::string reference_bytes(const dns::DayTrace& trace, const PruningConfig& config,
                              PruneStats* stats = nullptr) {
    GraphBuilder builder(psl_);
    builder.add_trace(trace);
    auto graph = builder.build();
    apply_labels(graph, blacklist(), whitelist());
    const auto pruned = prune(graph, config, stats);
    std::ostringstream blob;
    save_graph_compressed(pruned, blob, GraphcEncoding::kPacked);
    return std::move(blob).str();
  }

  static std::string file_bytes(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream blob;
    blob << in.rdbuf();
    return std::move(blob).str();
  }
};

TEST_F(OutOfCoreTest, MatchesInMemoryPipelineByteForByteAtEveryChunkSize) {
  const auto trace = make_trace();
  dns::write_trace(trace, trace_path_);
  PruningConfig pruning;
  pruning.proxy_degree_percentile = 0.95;
  PruneStats reference_stats;
  const auto expected = reference_bytes(trace, pruning, &reference_stats);

  // Chunk sizes from degenerate (every pair its own spill segment) to
  // larger-than-input (single segment); the output must not move.
  for (const std::size_t chunk : {std::size_t{1}, std::size_t{7}, std::size_t{64},
                                  std::size_t{1} << 20}) {
    OutOfCoreConfig config;
    config.pruning = pruning;
    config.chunk_records = chunk;
    const auto result = prepare_graph_out_of_core(trace_path_, psl_, blacklist(),
                                                  whitelist(), out_path_, config);
    EXPECT_EQ(file_bytes(out_path_), expected) << "chunk_records " << chunk;
    EXPECT_EQ(result.records, trace.records.size());
    EXPECT_EQ(result.skipped_records, 2u);

    // The streamed prune must report the same breakdown as the in-memory
    // prune (same thresholds, same rule attribution).
    EXPECT_EQ(result.prune_stats.theta_d, reference_stats.theta_d);
    EXPECT_EQ(result.prune_stats.theta_m, reference_stats.theta_m);
    EXPECT_EQ(result.prune_stats.machines_removed_r1, reference_stats.machines_removed_r1);
    EXPECT_EQ(result.prune_stats.machines_removed_r2, reference_stats.machines_removed_r2);
    EXPECT_EQ(result.prune_stats.domains_removed_r3, reference_stats.domains_removed_r3);
    EXPECT_EQ(result.prune_stats.domains_removed_r4, reference_stats.domains_removed_r4);
    EXPECT_EQ(result.prune_stats.machines_after, reference_stats.machines_after);
    EXPECT_EQ(result.prune_stats.domains_after, reference_stats.domains_after);
    EXPECT_EQ(result.prune_stats.edges_after, reference_stats.edges_after);
  }
}

TEST_F(OutOfCoreTest, BinaryTraceInputMatchesTextTraceOutput) {
  const auto trace = make_trace();
  dns::write_trace(trace, trace_path_);
  {
    dns::BinaryTraceWriter writer(binary_trace_path_, trace.day, trace.records.size());
    for (const auto& record : trace.records) {
      writer.add(record.machine, record.qname, record.resolved_ips);
    }
    writer.finish();
  }
  OutOfCoreConfig config;
  config.pruning.proxy_degree_percentile = 0.95;
  config.chunk_records = 32;
  prepare_graph_out_of_core(trace_path_, psl_, blacklist(), whitelist(), out_path_, config);
  const auto from_text = file_bytes(out_path_);
  prepare_graph_out_of_core(binary_trace_path_, psl_, blacklist(), whitelist(), out_path_,
                            config);
  EXPECT_EQ(file_bytes(out_path_), from_text);
}

TEST_F(OutOfCoreTest, OutputIsMappableAndSpillsAreRemoved) {
  const auto trace = make_trace();
  dns::write_trace(trace, trace_path_);
  OutOfCoreConfig config;
  config.pruning.proxy_degree_percentile = 0.95;
  config.chunk_records = 16;
  const auto result = prepare_graph_out_of_core(trace_path_, psl_, blacklist(), whitelist(),
                                                out_path_, config);
  EXPECT_GT(result.spill_segments, 1u);
  EXPECT_GT(result.spill_bytes, 0u);
  EXPECT_FALSE(std::filesystem::exists(out_path_ + ".spill-edges"));
  EXPECT_FALSE(std::filesystem::exists(out_path_ + ".spill-ips"));
  EXPECT_FALSE(std::filesystem::exists(out_path_ + ".spill-swapped"));

  const auto mapped = map_graph(out_path_);
  EXPECT_EQ(mapped.view.day(), 11);
  EXPECT_GT(mapped.view.machine_count(), 0u);
  EXPECT_GT(mapped.view.domain_count(), 0u);
  // The R1-excepted bot and its C&C domain must have survived pruning.
  bool found_cc = false;
  for (DomainId d = 0; d < mapped.view.domain_count(); ++d) {
    found_cc = found_cc || mapped.view.domain_name(d) == "cc.evil.biz";
  }
  EXPECT_TRUE(found_cc);
}

TEST_F(OutOfCoreTest, EmptyTraceProducesEmptyGraph) {
  dns::write_trace(dns::DayTrace{}, trace_path_);
  const auto result =
      prepare_graph_out_of_core(trace_path_, psl_, blacklist(), whitelist(), out_path_, {});
  EXPECT_EQ(result.records, 0u);
  const auto mapped = map_graph(out_path_);
  EXPECT_EQ(mapped.view.machine_count(), 0u);
  EXPECT_EQ(mapped.view.domain_count(), 0u);
  EXPECT_EQ(mapped.view.edge_count(), 0u);
}

}  // namespace
}  // namespace seg::graph
