#include "graph/graph_io.h"

#include <gtest/gtest.h>

#include <sstream>

#include "graph/labeling.h"
#include "util/require.h"

namespace seg::graph {
namespace {

class GraphIoTest : public ::testing::Test {
 protected:
  dns::PublicSuffixList psl_ = dns::PublicSuffixList::with_default_rules();

  MachineDomainGraph make_graph() {
    dns::DayTrace trace;
    trace.day = 42;
    const auto add = [&trace](const char* machine, const char* qname, const char* ip) {
      trace.records.push_back({42, machine, qname, {dns::IpV4::parse(ip)}});
    };
    add("m1", "cc.evil.biz", "185.1.2.3");
    add("m2", "cc.evil.biz", "185.1.2.3");
    add("m1", "www.good.com", "23.4.5.6");
    add("m2", "www.good.com", "23.4.5.7");
    add("m3", "sub.blog.narod.ru", "24.0.0.1");
    add("m1", "sub.blog.narod.ru", "24.0.0.1");
    GraphBuilder builder(psl_);
    builder.add_trace(trace);
    auto graph = builder.build();
    NameSet blacklist;
    blacklist.insert("cc.evil.biz");
    NameSet whitelist;
    whitelist.insert("good.com");
    apply_labels(graph, blacklist, whitelist);
    return graph;
  }
};

TEST_F(GraphIoTest, RoundTripPreservesEverything) {
  const auto graph = make_graph();
  std::stringstream blob;
  save_graph(graph, blob);
  const auto loaded = load_graph(blob);

  EXPECT_EQ(loaded.day(), graph.day());
  ASSERT_EQ(loaded.machine_count(), graph.machine_count());
  ASSERT_EQ(loaded.domain_count(), graph.domain_count());
  EXPECT_EQ(loaded.edge_count(), graph.edge_count());
  EXPECT_EQ(loaded.e2ld_count(), graph.e2ld_count());

  for (MachineId m = 0; m < graph.machine_count(); ++m) {
    EXPECT_EQ(loaded.machine_name(m), graph.machine_name(m));
    EXPECT_EQ(loaded.machine_label(m), graph.machine_label(m));
    const auto a = loaded.domains_of(m);
    const auto b = graph.domains_of(m);
    ASSERT_EQ(a.size(), b.size());
    EXPECT_TRUE(std::equal(a.begin(), a.end(), b.begin()));
  }
  for (DomainId d = 0; d < graph.domain_count(); ++d) {
    EXPECT_EQ(loaded.domain_name(d), graph.domain_name(d));
    EXPECT_EQ(loaded.domain_label(d), graph.domain_label(d));
    EXPECT_EQ(loaded.e2ld_name(loaded.domain_e2ld(d)),
              graph.e2ld_name(graph.domain_e2ld(d)));
    const auto a = loaded.resolved_ips(d);
    const auto b = graph.resolved_ips(d);
    ASSERT_EQ(a.size(), b.size());
    EXPECT_TRUE(std::equal(a.begin(), a.end(), b.begin()));
  }
}

TEST_F(GraphIoTest, EmptyGraphRoundTrips) {
  GraphBuilder builder(psl_);
  const auto graph = builder.build();
  std::stringstream blob;
  save_graph(graph, blob);
  const auto loaded = load_graph(blob);
  EXPECT_EQ(loaded.machine_count(), 0u);
  EXPECT_EQ(loaded.domain_count(), 0u);
}

TEST_F(GraphIoTest, RejectsBadMagic) {
  std::stringstream blob("THISISNOTAGRAPH");
  EXPECT_THROW(load_graph(blob), util::ParseError);
}

TEST_F(GraphIoTest, RejectsTruncation) {
  const auto graph = make_graph();
  std::stringstream blob;
  save_graph(graph, blob);
  const auto full = blob.str();
  std::stringstream truncated(full.substr(0, full.size() / 2));
  EXPECT_THROW(load_graph(truncated), util::ParseError);
}

TEST_F(GraphIoTest, RejectsCorruptLabelByte) {
  const auto graph = make_graph();
  std::stringstream blob;
  save_graph(graph, blob);
  auto bytes = blob.str();
  bytes[bytes.size() - 1] = 0x7f;  // last domain label byte
  std::stringstream corrupted(bytes);
  EXPECT_THROW(load_graph(corrupted), util::ParseError);
}

}  // namespace
}  // namespace seg::graph
