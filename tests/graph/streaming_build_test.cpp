// build_graph_from_file: streaming file-to-graph must be identical to the
// materialize-then-build path, for both on-disk formats.
#include <gtest/gtest.h>

#include <filesystem>
#include <unistd.h>

#include "graph/graph.h"
#include "util/require.h"

namespace seg::graph {
namespace {

class StreamingBuildTest : public ::testing::Test {
 protected:
  void SetUp() override {
    base_ = (std::filesystem::temp_directory_path() /
             ("seg_stream_" + std::to_string(::getpid())))
                .string();
  }
  void TearDown() override {
    std::filesystem::remove(base_ + ".tsv");
    std::filesystem::remove(base_ + ".bin");
  }

  static dns::DayTrace sample_trace() {
    dns::DayTrace trace;
    trace.day = 7;
    for (int m = 0; m < 20; ++m) {
      for (int d = 0; d < 8; ++d) {
        trace.records.push_back({7, "m" + std::to_string(m),
                                 "site" + std::to_string((m + d) % 12) + ".com",
                                 {dns::IpV4::from_octets(23, 0, static_cast<uint8_t>(d), 1)}});
      }
    }
    return trace;
  }

  static void expect_same(const MachineDomainGraph& a, const MachineDomainGraph& b) {
    EXPECT_EQ(a.day(), b.day());
    ASSERT_EQ(a.machine_count(), b.machine_count());
    ASSERT_EQ(a.domain_count(), b.domain_count());
    EXPECT_EQ(a.edge_count(), b.edge_count());
    for (DomainId d = 0; d < a.domain_count(); ++d) {
      EXPECT_EQ(a.domain_name(d), b.domain_name(d));
      EXPECT_EQ(a.machines_of(d).size(), b.machines_of(d).size());
    }
  }

  std::string base_;
};

TEST_F(StreamingBuildTest, TextFileMatchesInMemoryBuild) {
  const auto psl = dns::PublicSuffixList::with_default_rules();
  const auto trace = sample_trace();
  dns::write_trace(trace, base_ + ".tsv");

  GraphBuilder builder(psl);
  builder.add_trace(trace);
  const auto expected = builder.build();
  const auto streamed = build_graph_from_file(base_ + ".tsv", psl);
  expect_same(expected, streamed);
}

TEST_F(StreamingBuildTest, BinaryFileMatchesInMemoryBuild) {
  const auto psl = dns::PublicSuffixList::with_default_rules();
  const auto trace = sample_trace();
  dns::write_trace_binary(trace, base_ + ".bin");

  GraphBuilder builder(psl);
  builder.add_trace(trace);
  const auto expected = builder.build();
  const auto streamed = build_graph_from_file(base_ + ".bin", psl);
  expect_same(expected, streamed);
}

TEST_F(StreamingBuildTest, MissingFileThrows) {
  const auto psl = dns::PublicSuffixList::with_default_rules();
  EXPECT_THROW(build_graph_from_file("/nonexistent/trace.tsv", psl), util::ParseError);
}

TEST_F(StreamingBuildTest, ForEachRecordReturnsDay) {
  const auto trace = sample_trace();
  dns::write_trace(trace, base_ + ".tsv");
  std::size_t count = 0;
  const auto day = dns::for_each_record(base_ + ".tsv",
                                        [&count](const dns::QueryRecord&) { ++count; });
  EXPECT_EQ(day, 7);
  EXPECT_EQ(count, trace.records.size());
}

}  // namespace
}  // namespace seg::graph
