#include "graph/graph.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "util/require.h"

namespace seg::graph {
namespace {

class GraphBuilderTest : public ::testing::Test {
 protected:
  dns::PublicSuffixList psl_ = dns::PublicSuffixList::with_default_rules();
};

std::vector<dns::IpV4> ips(std::initializer_list<const char*> texts) {
  std::vector<dns::IpV4> out;
  for (const auto* t : texts) {
    out.push_back(dns::IpV4::parse(t));
  }
  return out;
}

TEST_F(GraphBuilderTest, BuildsBipartiteAdjacency) {
  GraphBuilder builder(psl_);
  builder.add_query("m1", "a.com", {});
  builder.add_query("m1", "b.com", {});
  builder.add_query("m2", "b.com", {});
  const auto graph = builder.build();

  EXPECT_EQ(graph.machine_count(), 2u);
  EXPECT_EQ(graph.domain_count(), 2u);
  EXPECT_EQ(graph.edge_count(), 3u);

  const auto m1 = graph.find_machine("m1");
  const auto b = graph.find_domain("b.com");
  ASSERT_LT(m1, graph.machine_count());
  ASSERT_LT(b, graph.domain_count());
  EXPECT_EQ(graph.domains_of(m1).size(), 2u);
  EXPECT_EQ(graph.machines_of(b).size(), 2u);
}

TEST_F(GraphBuilderTest, DuplicateQueriesCollapseToOneEdge) {
  GraphBuilder builder(psl_);
  builder.add_query("m1", "a.com", {});
  builder.add_query("m1", "a.com", {});
  builder.add_query("m1", "A.COM.", {});  // normalization collapses too
  const auto graph = builder.build();
  EXPECT_EQ(graph.edge_count(), 1u);
  EXPECT_EQ(graph.domain_count(), 1u);
}

TEST_F(GraphBuilderTest, ResolvedIpsAccumulateAndDeduplicate) {
  GraphBuilder builder(psl_);
  builder.add_query("m1", "a.com", ips({"1.1.1.1", "2.2.2.2"}));
  builder.add_query("m2", "a.com", ips({"2.2.2.2", "3.3.3.3"}));
  const auto graph = builder.build();
  const auto a = graph.find_domain("a.com");
  const auto resolved = graph.resolved_ips(a);
  EXPECT_EQ(resolved.size(), 3u);
  EXPECT_TRUE(std::is_sorted(resolved.begin(), resolved.end()));
}

TEST_F(GraphBuilderTest, InvalidQnamesAreSkippedAndCounted) {
  GraphBuilder builder(psl_);
  builder.add_query("m1", "ok.com", {});
  builder.add_query("m1", "bad..name", {});
  builder.add_query("", "ok.com", {});
  EXPECT_EQ(builder.skipped_records(), 2u);
  const auto graph = builder.build();
  EXPECT_EQ(graph.domain_count(), 1u);
  EXPECT_EQ(graph.machine_count(), 1u);
}

TEST_F(GraphBuilderTest, E2ldAnnotationUsesPsl) {
  GraphBuilder builder(psl_);
  builder.add_query("m1", "www.bbc.co.uk", {});
  builder.add_query("m1", "news.bbc.co.uk", {});
  builder.add_query("m1", "evil.dyndns.org", {});
  const auto graph = builder.build();
  EXPECT_EQ(graph.e2ld_count(), 2u);  // bbc.co.uk and evil.dyndns.org
  const auto www = graph.find_domain("www.bbc.co.uk");
  const auto news = graph.find_domain("news.bbc.co.uk");
  EXPECT_EQ(graph.domain_e2ld(www), graph.domain_e2ld(news));
  EXPECT_EQ(graph.e2ld_name(graph.domain_e2ld(www)), "bbc.co.uk");
  const auto evil = graph.find_domain("evil.dyndns.org");
  EXPECT_EQ(graph.e2ld_name(graph.domain_e2ld(evil)), "evil.dyndns.org");
}

TEST_F(GraphBuilderTest, AddTraceStampsDay) {
  dns::DayTrace trace;
  trace.day = 42;
  trace.records.push_back({42, "m1", "a.com", {}});
  GraphBuilder builder(psl_);
  builder.add_trace(trace);
  const auto graph = builder.build();
  EXPECT_EQ(graph.day(), 42);
}

TEST_F(GraphBuilderTest, LabelsDefaultToUnknown) {
  GraphBuilder builder(psl_);
  builder.add_query("m1", "a.com", {});
  const auto graph = builder.build();
  EXPECT_EQ(graph.machine_label(0), Label::kUnknown);
  EXPECT_EQ(graph.domain_label(0), Label::kUnknown);
}

TEST_F(GraphBuilderTest, AdjacencyListsAreSortedById) {
  GraphBuilder builder(psl_);
  builder.add_query("m1", "c.com", {});
  builder.add_query("m1", "a.com", {});
  builder.add_query("m1", "b.com", {});
  builder.add_query("m2", "a.com", {});
  const auto graph = builder.build();
  const auto m1 = graph.find_machine("m1");
  const auto domains = graph.domains_of(m1);
  EXPECT_TRUE(std::is_sorted(domains.begin(), domains.end()));
  const auto a = graph.find_domain("a.com");
  const auto machines = graph.machines_of(a);
  EXPECT_TRUE(std::is_sorted(machines.begin(), machines.end()));
}

TEST_F(GraphBuilderTest, FindReturnsSizeWhenAbsent) {
  GraphBuilder builder(psl_);
  builder.add_query("m1", "a.com", {});
  const auto graph = builder.build();
  EXPECT_EQ(graph.find_domain("nope.com"), graph.domain_count());
  EXPECT_EQ(graph.find_machine("nope"), graph.machine_count());
}

TEST_F(GraphBuilderTest, OutOfRangeAccessThrows) {
  GraphBuilder builder(psl_);
  builder.add_query("m1", "a.com", {});
  const auto graph = builder.build();
  EXPECT_THROW(graph.domains_of(5), util::PreconditionError);
  EXPECT_THROW(graph.machines_of(5), util::PreconditionError);
  EXPECT_THROW(graph.resolved_ips(5), util::PreconditionError);
}

TEST_F(GraphBuilderTest, ComputeStatsCountsLabels) {
  GraphBuilder builder(psl_);
  builder.add_query("m1", "a.com", {});
  builder.add_query("m2", "b.com", {});
  auto graph = builder.build();
  graph.set_domain_label(graph.find_domain("a.com"), Label::kMalware);
  graph.set_machine_label(graph.find_machine("m1"), Label::kMalware);
  const auto stats = compute_stats(graph);
  EXPECT_EQ(stats.machines, 2u);
  EXPECT_EQ(stats.domains, 2u);
  EXPECT_EQ(stats.edges, 2u);
  EXPECT_EQ(stats.malware_domains, 1u);
  EXPECT_EQ(stats.unknown_domains, 1u);
  EXPECT_EQ(stats.malware_machines, 1u);
  EXPECT_EQ(stats.unknown_machines, 1u);
}

TEST_F(GraphBuilderTest, LargeGraphConsistency) {
  // Property: sum of machine degrees == sum of domain degrees == edge count.
  GraphBuilder builder(psl_);
  for (int m = 0; m < 50; ++m) {
    for (int d = 0; d < 20; ++d) {
      if ((m + d) % 3 == 0) {
        builder.add_query("m" + std::to_string(m), "d" + std::to_string(d) + ".com", {});
      }
    }
  }
  const auto graph = builder.build();
  std::size_t machine_degree_sum = 0;
  for (MachineId m = 0; m < graph.machine_count(); ++m) {
    machine_degree_sum += graph.domains_of(m).size();
  }
  std::size_t domain_degree_sum = 0;
  for (DomainId d = 0; d < graph.domain_count(); ++d) {
    domain_degree_sum += graph.machines_of(d).size();
  }
  EXPECT_EQ(machine_degree_sum, graph.edge_count());
  EXPECT_EQ(domain_degree_sum, graph.edge_count());
}

}  // namespace
}  // namespace seg::graph
