#include "graph/prober_filter.h"

#include <gtest/gtest.h>

#include <string>

#include "graph/labeling.h"
#include "util/require.h"

namespace seg::graph {
namespace {

class ProberFilterTest : public ::testing::Test {
 protected:
  dns::PublicSuffixList psl_ = dns::PublicSuffixList::with_default_rules();

  // A graph with: a prober (queries 40 blacklisted names + 10 benign), an
  // ordinary infection (3 blacklisted of 30 queries), and clean machines.
  MachineDomainGraph make_graph() {
    GraphBuilder builder(psl_);
    NameSet blacklist;
    for (int i = 0; i < 40; ++i) {
      const auto name = "cc" + std::to_string(i) + ".evil.biz";
      blacklist.insert(name);
      builder.add_query("prober", name, {});
      builder.add_query("partner", name, {});  // keeps the C&C nodes 2-degree
    }
    for (int i = 0; i < 10; ++i) {
      builder.add_query("prober", "site" + std::to_string(i) + ".com", {});
    }
    for (int i = 0; i < 3; ++i) {
      builder.add_query("infected", "cc" + std::to_string(i) + ".evil.biz", {});
    }
    for (int i = 0; i < 27; ++i) {
      builder.add_query("infected", "site" + std::to_string(i) + ".com", {});
      builder.add_query("clean", "site" + std::to_string(i) + ".com", {});
    }
    auto graph = builder.build();
    apply_labels(graph, blacklist, NameSet{});
    return graph;
  }
};

TEST_F(ProberFilterTest, DetectsHighVolumeBlacklistQueriers) {
  const auto graph = make_graph();
  const auto probers = detect_probers(graph);
  EXPECT_TRUE(probers[graph.find_machine("prober")]);
  EXPECT_TRUE(probers[graph.find_machine("partner")]);  // also probes 40
  EXPECT_FALSE(probers[graph.find_machine("infected")]);
  EXPECT_FALSE(probers[graph.find_machine("clean")]);
}

TEST_F(ProberFilterTest, OrdinaryInfectionsAreBelowTheVolumeThreshold) {
  // Even a ratio of 100% blacklisted is fine below the volume floor —
  // Figure 3 says infections query at most ~20 C&C names.
  GraphBuilder builder(psl_);
  NameSet blacklist;
  for (int i = 0; i < 10; ++i) {
    const auto name = "cc" + std::to_string(i) + ".evil.biz";
    blacklist.insert(name);
    builder.add_query("smallbot", name, {});
  }
  auto graph = builder.build();
  apply_labels(graph, blacklist, NameSet{});
  const auto probers = detect_probers(graph);
  EXPECT_FALSE(probers[graph.find_machine("smallbot")]);
}

TEST_F(ProberFilterTest, RatioGuardProtectsProxies) {
  // A proxy touching 50 blacklisted names among 5000 total queries is not
  // a prober (ratio 1%); R2 pruning handles proxies instead.
  GraphBuilder builder(psl_);
  NameSet blacklist;
  for (int i = 0; i < 50; ++i) {
    const auto name = "cc" + std::to_string(i) + ".evil.biz";
    blacklist.insert(name);
    builder.add_query("proxy", name, {});
  }
  for (int i = 0; i < 5000; ++i) {
    builder.add_query("proxy", "x" + std::to_string(i) + ".com", {});
  }
  auto graph = builder.build();
  apply_labels(graph, blacklist, NameSet{});
  const auto probers = detect_probers(graph);
  EXPECT_FALSE(probers[graph.find_machine("proxy")]);
}

TEST_F(ProberFilterTest, RemoveProbersDropsOnlyFlaggedMachines) {
  const auto graph = make_graph();
  ProberFilterStats stats;
  const auto filtered = remove_probers(graph, ProberFilterConfig{}, &stats);
  EXPECT_EQ(stats.machines_removed, 2u);
  EXPECT_EQ(filtered.machine_count(), graph.machine_count() - 2);
  EXPECT_EQ(filtered.find_machine("prober"), filtered.machine_count());
  EXPECT_LT(filtered.find_machine("infected"), filtered.machine_count());
  // Domain nodes all survive (pruning happens separately).
  EXPECT_EQ(filtered.domain_count(), graph.domain_count());
}

TEST_F(ProberFilterTest, ConfigValidation) {
  const auto graph = make_graph();
  ProberFilterConfig bad;
  bad.min_blacklisted_ratio = 0.0;
  EXPECT_THROW(detect_probers(graph, bad), util::PreconditionError);
}

TEST_F(ProberFilterTest, NoFalsePositivesOnCleanGraph) {
  GraphBuilder builder(psl_);
  for (int m = 0; m < 20; ++m) {
    for (int d = 0; d < 10; ++d) {
      builder.add_query("m" + std::to_string(m), "d" + std::to_string(d) + ".com", {});
    }
  }
  auto graph = builder.build();
  apply_labels(graph, NameSet{}, NameSet{});
  const auto probers = detect_probers(graph);
  for (const auto flagged : probers) {
    EXPECT_FALSE(flagged);
  }
}

}  // namespace
}  // namespace seg::graph
