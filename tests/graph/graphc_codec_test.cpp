// Codec tests for the varint / delta-run primitives under the compressed
// graph container and the out-of-core spill segments. Corruption must
// surface as util::ParseError, never as silently wrong ids.
#include "util/varint.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <limits>
#include <span>
#include <string>
#include <vector>

#include "util/require.h"
#include "util/rng.h"

namespace seg::util {
namespace {

std::uint64_t decode_all(const std::string& encoded, std::size_t expect_consumed) {
  const auto* p = reinterpret_cast<const unsigned char*>(encoded.data());
  const auto* end = p + encoded.size();
  const auto value = decode_varint(p, end);
  EXPECT_EQ(static_cast<std::size_t>(p - reinterpret_cast<const unsigned char*>(encoded.data())),
            expect_consumed);
  return value;
}

TEST(VarintTest, BoundaryValuesRoundTripAtExpectedWidths) {
  // Every 7-bit width boundary: the largest value of each width and the
  // first value of the next.
  const struct {
    std::uint64_t value;
    std::size_t bytes;
  } cases[] = {
      {0, 1},
      {1, 1},
      {127, 1},
      {128, 2},
      {16383, 2},
      {16384, 3},
      {(std::uint64_t{1} << 21) - 1, 3},
      {std::uint64_t{1} << 21, 4},
      {(std::uint64_t{1} << 28) - 1, 4},
      {std::uint64_t{1} << 28, 5},
      {(std::uint64_t{1} << 35) - 1, 5},
      {(std::uint64_t{1} << 42) - 1, 6},
      {(std::uint64_t{1} << 49) - 1, 7},
      {(std::uint64_t{1} << 56) - 1, 8},
      {(std::uint64_t{1} << 63) - 1, 9},
      {std::uint64_t{1} << 63, 10},
      {std::numeric_limits<std::uint64_t>::max(), 10},
  };
  for (const auto& c : cases) {
    std::string encoded;
    append_varint(encoded, c.value);
    EXPECT_EQ(encoded.size(), c.bytes) << "value " << c.value;
    EXPECT_LE(encoded.size(), kMaxVarintBytes);
    EXPECT_EQ(decode_all(encoded, c.bytes), c.value);
  }
}

TEST(VarintTest, TruncatedStreamThrowsParseError) {
  std::string encoded;
  append_varint(encoded, std::numeric_limits<std::uint64_t>::max());
  ASSERT_EQ(encoded.size(), kMaxVarintBytes);
  // Every proper prefix must reject: the continuation bit of the last
  // retained byte promises more input.
  for (std::size_t keep = 0; keep < encoded.size(); ++keep) {
    const auto* begin = reinterpret_cast<const unsigned char*>(encoded.data());
    const auto* p = begin;
    EXPECT_THROW(decode_varint(p, begin + keep), ParseError) << "prefix " << keep;
  }
}

TEST(VarintTest, OverlongEncodingsAreRejected) {
  // 10 continuation bytes followed by a terminator: longer than any valid
  // 64-bit varint.
  std::string eleven(10, static_cast<char>(0x80));
  eleven.push_back(0x01);
  const auto* p = reinterpret_cast<const unsigned char*>(eleven.data());
  EXPECT_THROW(decode_varint(p, p + eleven.size()), ParseError);

  // 10 bytes, but the final byte carries payload beyond bit 63.
  std::string overflow(9, static_cast<char>(0x80));
  overflow.push_back(0x02);
  p = reinterpret_cast<const unsigned char*>(overflow.data());
  EXPECT_THROW(decode_varint(p, p + overflow.size()), ParseError);

  // Same shape but final byte 0x01 is exactly 2^63 — valid.
  std::string max_bit(9, static_cast<char>(0x80));
  max_bit.push_back(0x01);
  p = reinterpret_cast<const unsigned char*>(max_bit.data());
  EXPECT_EQ(decode_varint(p, p + max_bit.size()), std::uint64_t{1} << 63);
}

TEST(VarintTest, AscendingRunRejectsNonAscendingInput) {
  std::string out;
  const std::uint32_t flat[] = {3, 3};
  EXPECT_THROW(append_ascending_run(out, std::span<const std::uint32_t>(flat)),
               PreconditionError);
  const std::uint32_t down[] = {3, 2};
  EXPECT_THROW(append_ascending_run(out, std::span<const std::uint32_t>(down)),
               PreconditionError);
}

TEST(VarintTest, AscendingRunBoundaries) {
  // Adjacent values cost one byte each after the first; the full-range run
  // {0, 2^64-1} exercises the largest possible delta.
  const std::uint64_t dense[] = {5, 6, 7, 8};
  std::string out;
  append_ascending_run(out, std::span<const std::uint64_t>(dense));
  EXPECT_EQ(out.size(), 4u);  // varint(5) + three zero deltas

  const std::uint64_t extremes[] = {0, std::numeric_limits<std::uint64_t>::max()};
  out.clear();
  append_ascending_run(out, std::span<const std::uint64_t>(extremes));
  const auto* p = reinterpret_cast<const unsigned char*>(out.data());
  std::uint64_t decoded[2] = {1, 1};
  decode_ascending_run(p, p + out.size(), 2, decoded);
  EXPECT_EQ(decoded[0], extremes[0]);
  EXPECT_EQ(decoded[1], extremes[1]);
}

TEST(VarintTest, AscendingRunRangeCheckOnNarrowTarget) {
  // A run whose values exceed uint16 must be rejected when decoded into
  // uint16 storage, at the first offending element.
  const std::uint32_t values[] = {65534, 65535, 65536};
  std::string out;
  append_ascending_run(out, std::span<const std::uint32_t>(values));
  const auto* p = reinterpret_cast<const unsigned char*>(out.data());
  std::uint16_t narrow[3];
  EXPECT_THROW(decode_ascending_run(p, p + out.size(), 3, narrow), ParseError);
}

TEST(VarintTest, RandomizedRoundTrip) {
  Rng rng(20260808);
  for (int iteration = 0; iteration < 200; ++iteration) {
    // Mixed-magnitude values: small ids dominate real streams but wide
    // values must survive too.
    std::vector<std::uint64_t> values;
    const std::size_t count = 1 + rng.next_below(64);
    for (std::size_t i = 0; i < count; ++i) {
      const auto shift = static_cast<unsigned>(rng.next_below(64));
      values.push_back(rng.next() >> shift);
    }
    std::string encoded;
    for (const auto v : values) {
      append_varint(encoded, v);
    }
    const auto* p = reinterpret_cast<const unsigned char*>(encoded.data());
    const auto* end = p + encoded.size();
    for (const auto v : values) {
      EXPECT_EQ(decode_varint(p, end), v);
    }
    EXPECT_EQ(p, end) << "decoder must consume the stream exactly";

    // Delta-run round-trip over the sorted distinct values.
    std::sort(values.begin(), values.end());
    values.erase(std::unique(values.begin(), values.end()), values.end());
    std::string run;
    append_ascending_run(run, std::span<const std::uint64_t>(values));
    std::vector<std::uint64_t> decoded(values.size());
    const auto* rp = reinterpret_cast<const unsigned char*>(run.data());
    decode_ascending_run(rp, rp + run.size(), values.size(), decoded.data());
    EXPECT_EQ(decoded, values);
  }
}

}  // namespace
}  // namespace seg::util
