// Round-trip and zero-copy tests for the `segf1 graphc 1` container
// (graph_compressed.h): both encodings must reload bit-identically, the
// mmap-backed GraphView must serve exactly what the heap graph serves, and
// corruption must surface as util::ParseError.
#include "graph/graph_compressed.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <unistd.h>

#include "graph/graph_io.h"
#include "graph/graph_view.h"
#include "graph/labeling.h"
#include "util/require.h"

namespace seg::graph {
namespace {

class GraphCompressedTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = (std::filesystem::temp_directory_path() /
             ("seg_graphc_test_" + std::to_string(::getpid()) + ".graphc"))
                .string();
  }
  void TearDown() override { std::filesystem::remove(path_); }

  dns::PublicSuffixList psl_ = dns::PublicSuffixList::with_default_rules();
  std::string path_;

  MachineDomainGraph make_graph() {
    dns::DayTrace trace;
    trace.day = 42;
    const auto add = [&trace](const char* machine, const char* qname, const char* ip) {
      trace.records.push_back({42, machine, qname, {dns::IpV4::parse(ip)}});
    };
    add("m1", "cc.evil.biz", "185.1.2.3");
    add("m2", "cc.evil.biz", "185.1.2.3");
    add("m1", "www.good.com", "23.4.5.6");
    add("m2", "www.good.com", "23.4.5.7");
    add("m3", "sub.blog.narod.ru", "24.0.0.1");
    add("m1", "sub.blog.narod.ru", "24.0.0.1");
    add("m3", "cdn.other.net", "9.9.9.9");
    GraphBuilder builder(psl_);
    builder.add_trace(trace);
    auto graph = builder.build();
    NameSet blacklist;
    blacklist.insert("cc.evil.biz");
    NameSet whitelist;
    whitelist.insert("good.com");
    apply_labels(graph, blacklist, whitelist);
    return graph;
  }

  static std::string graph_bytes(const MachineDomainGraph& graph) {
    std::ostringstream blob;
    save_graph(graph, blob);
    return std::move(blob).str();
  }
};

TEST_F(GraphCompressedTest, PackedRoundTripIsLossless) {
  const auto graph = make_graph();
  std::stringstream blob;
  save_graph_compressed(graph, blob, GraphcEncoding::kPacked);
  const auto loaded = load_graph_compressed(blob);
  EXPECT_EQ(graph_bytes(loaded), graph_bytes(graph));
}

TEST_F(GraphCompressedTest, CompactRoundTripIsLossless) {
  const auto graph = make_graph();
  std::stringstream blob;
  save_graph_compressed(graph, blob, GraphcEncoding::kCompact);
  const auto loaded = load_graph_compressed(blob);
  EXPECT_EQ(graph_bytes(loaded), graph_bytes(graph));
}

TEST_F(GraphCompressedTest, EmptyGraphRoundTripsInBothEncodings) {
  // Built-but-empty, not default-constructed: like segf1, graphc
  // serializes graphs produced by the builder/loader (whose offset tables
  // always hold n+1 entries).
  const auto empty = GraphBuilder(psl_).build();
  for (const auto encoding : {GraphcEncoding::kPacked, GraphcEncoding::kCompact}) {
    std::stringstream blob;
    save_graph_compressed(empty, blob, encoding);
    const auto loaded = load_graph_compressed(blob);
    EXPECT_EQ(loaded.machine_count(), 0u);
    EXPECT_EQ(loaded.domain_count(), 0u);
    EXPECT_EQ(loaded.edge_count(), 0u);
  }
}

TEST_F(GraphCompressedTest, MappedViewServesExactlyTheHeapGraph) {
  const auto graph = make_graph();
  {
    std::ofstream out(path_, std::ios::binary);
    save_graph_compressed(graph, out, GraphcEncoding::kPacked);
  }
  const auto mapped = map_graph(path_);
  const auto& view = mapped.view;

  EXPECT_EQ(view.day(), graph.day());
  ASSERT_EQ(view.machine_count(), graph.machine_count());
  ASSERT_EQ(view.domain_count(), graph.domain_count());
  EXPECT_EQ(view.edge_count(), graph.edge_count());
  EXPECT_EQ(view.e2ld_count(), graph.e2ld_count());

  for (MachineId m = 0; m < graph.machine_count(); ++m) {
    EXPECT_EQ(view.machine_name(m), graph.machine_name(m));
    EXPECT_EQ(view.machine_label(m), graph.machine_label(m));
    const auto a = view.domains_of(m);
    const auto b = graph.domains_of(m);
    ASSERT_EQ(a.size(), b.size());
    EXPECT_TRUE(std::equal(a.begin(), a.end(), b.begin()));
  }
  for (DomainId d = 0; d < graph.domain_count(); ++d) {
    EXPECT_EQ(view.domain_name(d), graph.domain_name(d));
    EXPECT_EQ(view.domain_label(d), graph.domain_label(d));
    EXPECT_EQ(view.e2ld_name(view.domain_e2ld(d)), graph.e2ld_name(graph.domain_e2ld(d)));
    const auto a = view.machines_of(d);
    const auto b = graph.machines_of(d);
    ASSERT_EQ(a.size(), b.size());
    EXPECT_TRUE(std::equal(a.begin(), a.end(), b.begin()));
    const auto va = view.resolved_ips(d);
    const auto vb = graph.resolved_ips(d);
    ASSERT_EQ(va.size(), vb.size());
    EXPECT_TRUE(std::equal(va.begin(), va.end(), vb.begin()));
  }
}

TEST_F(GraphCompressedTest, MappedLoadIsByteStableThroughResave) {
  // mmap view -> packed save must reproduce the original file bytes: the
  // view serves the serializer directly, so no information is rewritten.
  const auto graph = make_graph();
  std::ostringstream first;
  save_graph_compressed(graph, first, GraphcEncoding::kPacked);
  {
    std::ofstream out(path_, std::ios::binary);
    out << first.str();
  }
  const auto mapped = map_graph(path_);
  std::ostringstream second;
  save_graph_compressed(mapped.view, second, GraphcEncoding::kPacked);
  EXPECT_EQ(first.str(), second.str());
}

TEST_F(GraphCompressedTest, TruncatedStreamsAreRejected) {
  const auto graph = make_graph();
  for (const auto encoding : {GraphcEncoding::kPacked, GraphcEncoding::kCompact}) {
    std::ostringstream blob;
    save_graph_compressed(graph, blob, encoding);
    const auto full = blob.str();
    // Chop at several depths: inside the text header, the binary header,
    // and the section payloads.
    for (const std::size_t keep :
         {std::size_t{4}, std::size_t{40}, std::size_t{90}, full.size() - 1}) {
      std::istringstream in(full.substr(0, keep));
      EXPECT_THROW(load_graph_compressed(in), util::ParseError)
          << "encoding " << static_cast<int>(encoding) << " keep " << keep;
    }
  }
}

TEST_F(GraphCompressedTest, TruncatedMappedFileIsRejected) {
  const auto graph = make_graph();
  std::ostringstream blob;
  save_graph_compressed(graph, blob, GraphcEncoding::kPacked);
  const auto full = blob.str();
  {
    std::ofstream out(path_, std::ios::binary);
    out << full.substr(0, full.size() - 8);
  }
  EXPECT_THROW(map_graph(path_), util::ParseError);
}

TEST_F(GraphCompressedTest, CompactEncodingRejectsTrailingGarbage) {
  const auto graph = make_graph();
  std::ostringstream blob;
  save_graph_compressed(graph, blob, GraphcEncoding::kCompact);
  std::istringstream in(blob.str() + "x");
  EXPECT_THROW(load_graph_compressed(in), util::ParseError);
}

}  // namespace
}  // namespace seg::graph
