// Cross-module property tests: invariants that must hold for any scenario
// and any configuration, checked on simulator-generated graphs.
#include <gtest/gtest.h>

#include <set>

#include "core/experiment.h"
#include "features/extractor.h"
#include "graph/labeling.h"
#include "graph/pruning.h"
#include "sim/world.h"

namespace seg {
namespace {

sim::World& shared_world() {
  static sim::World world{sim::ScenarioConfig::small()};
  return world;
}

graph::MachineDomainGraph labeled_graph(dns::Day day) {
  auto& world = shared_world();
  const auto trace = world.generate_day(0, day);
  graph::GraphBuilder builder(world.psl());
  builder.add_trace(trace);
  auto graph = builder.build();
  graph::apply_labels(graph, world.blacklist().as_of(sim::BlacklistKind::kCommercial, day),
                      world.whitelist().all());
  return graph;
}

// ---------------------------------------------------------------------------
// Pruning invariants, swept over configurations.
struct PruningCase {
  std::uint32_t inactive_max;
  std::uint32_t min_domain_machines;
  double popular_fraction;
};

class PruningInvariantTest : public ::testing::TestWithParam<PruningCase> {};

TEST_P(PruningInvariantTest, SurvivorsSatisfyTheRules) {
  const auto param = GetParam();
  const auto graph = labeled_graph(0);
  graph::PruningConfig config;
  config.inactive_machine_max_degree = param.inactive_max;
  config.min_domain_machines = param.min_domain_machines;
  config.popular_e2ld_fraction = param.popular_fraction;
  config.proxy_degree_percentile = 0.999;
  graph::PruneStats stats;
  const auto pruned = graph::prune(graph, config, &stats);

  // R1: every surviving machine is either active enough or malware-labeled.
  for (graph::MachineId m = 0; m < pruned.machine_count(); ++m) {
    const bool active = pruned.domains_of(m).size() > param.inactive_max;
    const bool excepted = pruned.machine_label(m) == graph::Label::kMalware;
    // Degrees can only shrink after domain removal, so check against the
    // *original* graph's degree for the same machine.
    const auto original = graph.find_machine(pruned.machine_name(m));
    ASSERT_LT(original, graph.machine_count());
    EXPECT_TRUE(graph.domains_of(original).size() > param.inactive_max || excepted || active)
        << pruned.machine_name(m);
  }

  // R3: surviving non-malware domains had >= min querying machines
  // (measured on surviving machines, i.e. in the pruned graph edges can
  // only have shrunk, so check the original degree).
  for (graph::DomainId d = 0; d < pruned.domain_count(); ++d) {
    if (pruned.domain_label(d) == graph::Label::kMalware) {
      continue;
    }
    const auto original = graph.find_domain(pruned.domain_name(d));
    ASSERT_LT(original, graph.domain_count());
    EXPECT_GE(graph.machines_of(original).size(), param.min_domain_machines)
        << pruned.domain_name(d);
  }

  // Structural: node/edge counts shrink monotonically, stats consistent.
  EXPECT_LE(pruned.machine_count(), graph.machine_count());
  EXPECT_LE(pruned.domain_count(), graph.domain_count());
  EXPECT_LE(pruned.edge_count(), graph.edge_count());
  EXPECT_EQ(stats.machines_after, pruned.machine_count());
  EXPECT_EQ(stats.domains_after, pruned.domain_count());
  EXPECT_EQ(stats.edges_after, pruned.edge_count());

  // Adjacency symmetry in the pruned graph.
  for (graph::MachineId m = 0; m < pruned.machine_count(); ++m) {
    for (const auto d : pruned.domains_of(m)) {
      const auto machines = pruned.machines_of(d);
      EXPECT_NE(std::find(machines.begin(), machines.end(), m), machines.end());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Configs, PruningInvariantTest,
                         ::testing::Values(PruningCase{5, 2, 1.0 / 3.0},
                                           PruningCase{0, 1, 1.0},
                                           PruningCase{10, 3, 0.25},
                                           PruningCase{3, 2, 0.5}));

// ---------------------------------------------------------------------------
// Feature extraction invariants over every domain of a real graph.
TEST(FeatureInvariantTest, AllDomainsProduceSaneFeatures) {
  auto& world = shared_world();
  const auto graph = graph::prune(labeled_graph(1), graph::PruningConfig{});
  const features::FeatureExtractor extractor(graph, world.activity(), world.pdns());
  const auto n = static_cast<dns::Day>(extractor.config().activity_window_days);
  for (graph::DomainId d = 0; d < graph.domain_count(); ++d) {
    const auto f = extractor.extract(d);
    EXPECT_GE(f[features::kInfectedFraction], 0.0);
    EXPECT_LE(f[features::kInfectedFraction], 1.0);
    EXPECT_GE(f[features::kUnknownFraction], 0.0);
    EXPECT_LE(f[features::kUnknownFraction], 1.0);
    EXPECT_NEAR(f[features::kInfectedFraction] + f[features::kUnknownFraction],
                f[features::kTotalMachines] > 0 ? 1.0 : 0.0, 1e-9);
    EXPECT_EQ(f[features::kTotalMachines],
              static_cast<double>(graph.machines_of(d).size()));
    EXPECT_GE(f[features::kFqdnActiveDays], 0.0);
    EXPECT_LE(f[features::kFqdnActiveDays], static_cast<double>(n));
    EXPECT_LE(f[features::kE2ldActiveDays], static_cast<double>(n));
    EXPECT_GE(f[features::kIpMalwareFraction], 0.0);
    EXPECT_LE(f[features::kIpMalwareFraction], 1.0);
    EXPECT_LE(f[features::kPrefixMalwareFraction], 1.0);
    // FQDN activity cannot exceed its e2LD's (every FQDN query marks both).
    EXPECT_LE(f[features::kFqdnActiveDays], f[features::kE2ldActiveDays] + 1e-9);
  }
}

TEST(FeatureInvariantTest, HidingALabelNeverRaisesTheInfectedFraction) {
  auto& world = shared_world();
  const auto graph = graph::prune(labeled_graph(2), graph::PruningConfig{});
  const features::FeatureExtractor extractor(graph, world.activity(), world.pdns());
  for (graph::DomainId d = 0; d < graph.domain_count(); ++d) {
    if (graph.domain_label(d) == graph::Label::kUnknown) {
      continue;
    }
    const auto with = extractor.extract(d);
    const auto hidden = extractor.extract_hiding_label(d);
    EXPECT_LE(hidden[features::kInfectedFraction],
              with[features::kInfectedFraction] + 1e-12)
        << graph.domain_name(d);
    // Hiding only changes F1; the other groups are label-independent.
    for (std::size_t i = features::kFqdnActiveDays; i < features::kNumFeatures; ++i) {
      EXPECT_DOUBLE_EQ(hidden[i], with[i]);
    }
  }
}

// ---------------------------------------------------------------------------
// Multi-day observation windows.
TEST(MultiDayWindowTest, GraphUnionsEdgesAndUsesLatestDay) {
  auto& world = shared_world();
  const auto day3 = world.generate_day(0, 3);
  const auto day4 = world.generate_day(0, 4);

  graph::GraphBuilder single(world.psl());
  single.add_trace(day4);
  const auto single_graph = single.build();

  graph::GraphBuilder window(world.psl());
  window.add_trace(day3);
  window.add_trace(day4);
  const auto window_graph = window.build();

  EXPECT_EQ(window_graph.day(), 4);
  EXPECT_GE(window_graph.edge_count(), single_graph.edge_count());
  EXPECT_GE(window_graph.domain_count(), single_graph.domain_count());

  // Order of addition must not matter for the day stamp.
  graph::GraphBuilder reversed(world.psl());
  reversed.add_trace(day4);
  reversed.add_trace(day3);
  EXPECT_EQ(reversed.build().day(), 4);
}

// ---------------------------------------------------------------------------
// Evaluation protocol invariants.
class TestFractionSweep : public ::testing::TestWithParam<double> {};

TEST_P(TestFractionSweep, SelectionScalesWithFraction) {
  auto& world = shared_world();
  const auto t1 = world.generate_day(0, 5);
  const auto t2 = world.generate_day(0, 6);
  core::ExperimentInputs inputs;
  inputs.train_trace = &t1;
  inputs.test_trace = &t2;
  inputs.psl = &world.psl();
  inputs.activity = &world.activity();
  inputs.pdns = &world.pdns();
  inputs.train_blacklist = world.blacklist().as_of(sim::BlacklistKind::kCommercial, 5);
  inputs.test_blacklist = world.blacklist().as_of(sim::BlacklistKind::kCommercial, 6);
  inputs.whitelist = world.whitelist().all();

  core::SegugioConfig config;
  config.forest.num_trees = 10;
  config.forest.num_threads = 1;
  core::CrossDayOptions options;
  options.test_fraction = GetParam();
  const auto result = core::run_cross_day(inputs, config, options);
  EXPECT_GT(result.outcomes.size(), 0u);

  // All outcome names are unique.
  std::set<std::string> names;
  for (const auto& outcome : result.outcomes) {
    EXPECT_TRUE(names.insert(outcome.name).second) << outcome.name;
    EXPECT_TRUE(outcome.label == 0 || outcome.label == 1);
    EXPECT_GE(outcome.score, 0.0);
    EXPECT_LE(outcome.score, 1.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Fractions, TestFractionSweep, ::testing::Values(0.2, 0.5, 0.8));

}  // namespace
}  // namespace seg
