#include "baselines/notos_like.h"

#include <gtest/gtest.h>

#include "core/segugio.h"
#include "sim/world.h"
#include "util/require.h"

namespace seg::baselines {
namespace {

class NotosLikeTest : public ::testing::Test {
 protected:
  static sim::World& world() {
    static sim::World instance{sim::ScenarioConfig::small()};
    return instance;
  }

  static graph::MachineDomainGraph prepared_graph(dns::Day day) {
    auto& w = world();
    const auto trace = w.generate_day(1, day);
    return core::Segugio::prepare_graph(
               trace, w.psl(), w.blacklist().as_of(sim::BlacklistKind::kCommercial, day),
               w.whitelist().all())
        .graph;
  }

  static NotosConfig fast_config() {
    NotosConfig config;
    config.forest.num_trees = 20;
    config.forest.num_threads = 1;
    return config;
  }
};

TEST_F(NotosLikeTest, TrainsAndScores) {
  auto& w = world();
  const auto graph = prepared_graph(0);
  NotosLikeClassifier notos(fast_config());
  EXPECT_FALSE(notos.is_trained());
  notos.train(graph, w.activity(), w.pdns(),
              w.blacklist().as_of(sim::BlacklistKind::kCommercial, 0),
              w.whitelist().top(100));
  EXPECT_TRUE(notos.is_trained());

  std::size_t scored = 0;
  std::size_t rejected = 0;
  for (graph::DomainId d = 0; d < graph.domain_count(); ++d) {
    const auto score = notos.score(graph, d, w.activity(), w.pdns());
    if (score.has_value()) {
      EXPECT_GE(*score, 0.0);
      EXPECT_LE(*score, 1.0);
      ++scored;
    } else {
      ++rejected;
      EXPECT_TRUE(notos.rejects(graph, d, w.activity(), w.pdns()));
    }
  }
  EXPECT_GT(scored, 0u);
}

TEST_F(NotosLikeTest, RejectOptionDeclinesHistorylessDomains) {
  // A domain whose e2LD was never seen before and whose IP space has no
  // pDNS history must be rejected.
  auto& w = world();
  dns::DayTrace trace;
  trace.day = 5;
  // Fresh domain on never-seen IP space (direct graph, no pruning so the
  // single-machine edge survives).
  trace.records.push_back(
      {5, "m1", "brandnew-zone-xyz.com", {dns::IpV4::parse("99.99.99.99")}});
  graph::GraphBuilder builder(w.psl());
  builder.add_trace(trace);
  const auto graph = builder.build();
  NotosLikeClassifier notos(fast_config());
  EXPECT_TRUE(notos.rejects(graph, 0, w.activity(), w.pdns()));
}

TEST_F(NotosLikeTest, DoesNotRejectKnownZones) {
  auto& w = world();
  const auto graph = prepared_graph(1);
  NotosLikeClassifier notos(fast_config());
  // Whitelisted popular domains have long zone history -> never rejected.
  std::size_t checked = 0;
  for (graph::DomainId d = 0; d < graph.domain_count() && checked < 50; ++d) {
    if (graph.domain_label(d) == graph::Label::kBenign) {
      EXPECT_FALSE(notos.rejects(graph, d, w.activity(), w.pdns()))
          << graph.domain_name(d);
      ++checked;
    }
  }
  EXPECT_GT(checked, 0u);
}

TEST_F(NotosLikeTest, AbusedIpSpaceOverridesYoungZoneRejection) {
  // Fresh zone but pointing into previously-abused space -> classified.
  auto& w = world();
  // Find an abused IP: any commercially-listed record from the warmup.
  dns::IpV4 abused_ip;
  bool found = false;
  for (const auto& record : w.blacklist().records()) {
    if (record.commercial_listed && record.commercial_day < 0) {
      abused_ip = record.ips.front();
      found = true;
      break;
    }
  }
  ASSERT_TRUE(found);
  dns::DayTrace trace;
  trace.day = 5;
  trace.records.push_back({5, "m1", "fresh-but-dirty.com", {abused_ip}});
  graph::GraphBuilder builder(w.psl());
  builder.add_trace(trace);
  const auto graph = builder.build();
  NotosLikeClassifier notos(fast_config());
  EXPECT_FALSE(notos.rejects(graph, 0, w.activity(), w.pdns()));
}

TEST_F(NotosLikeTest, MeasureProducesSaneStringFeatures) {
  auto& w = world();
  dns::DayTrace trace;
  trace.day = 5;
  trace.records.push_back({5, "m1", "ab-1.example2.com", {}});
  graph::GraphBuilder builder(w.psl());
  builder.add_trace(trace);
  const auto graph = builder.build();
  NotosLikeClassifier notos(fast_config());
  const auto features = notos.measure(graph, 0, w.activity(), w.pdns());
  EXPECT_DOUBLE_EQ(features[0], 17.0);  // length
  EXPECT_DOUBLE_EQ(features[1], 3.0);   // labels
  EXPECT_NEAR(features[2], 2.0 / 17.0, 1e-12);  // digits
  EXPECT_DOUBLE_EQ(features[3], 1.0);   // hyphens
  EXPECT_GT(features[4], 0.0);          // entropy
}

TEST_F(NotosLikeTest, ScoreBeforeTrainingThrows) {
  auto& w = world();
  const auto graph = prepared_graph(2);
  NotosLikeClassifier notos(fast_config());
  EXPECT_THROW(notos.score(graph, 0, w.activity(), w.pdns()), util::PreconditionError);
}

}  // namespace
}  // namespace seg::baselines
