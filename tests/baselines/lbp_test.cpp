#include "baselines/lbp.h"

#include <gtest/gtest.h>

#include <cmath>

#include "graph/labeling.h"
#include "util/require.h"

namespace seg::baselines {
namespace {

using graph::GraphBuilder;
using graph::Label;
using graph::NameSet;

class LbpTest : public ::testing::Test {
 protected:
  dns::PublicSuffixList psl_ = dns::PublicSuffixList::with_default_rules();

  // Two communities: infected machines i* query cc domains + the unknown
  // suspicious domain; benign machines b* query good domains + an unknown
  // benign-ish domain.
  graph::MachineDomainGraph make_graph() {
    GraphBuilder builder(psl_);
    for (int i = 0; i < 5; ++i) {
      const auto machine = "i" + std::to_string(i);
      builder.add_query(machine, "cc.evil.biz", {});
      builder.add_query(machine, "suspicious.net", {});
    }
    for (int i = 0; i < 5; ++i) {
      const auto machine = "b" + std::to_string(i);
      builder.add_query(machine, "www.good.com", {});
      builder.add_query(machine, "harmless.org", {});
    }
    auto graph = builder.build();
    NameSet blacklist;
    blacklist.insert("cc.evil.biz");
    NameSet whitelist;
    whitelist.insert("good.com");
    graph::apply_labels(graph, blacklist, whitelist);
    return graph;
  }
};

TEST_F(LbpTest, PropagatesLabelsToUnknownNeighbors) {
  // With the conventional 0.51 homophily potential beliefs move gently but
  // must move in the right direction and rank correctly.
  const auto graph = make_graph();
  const auto result = run_loopy_belief_propagation(graph);
  const auto suspicious = graph.find_domain("suspicious.net");
  const auto harmless = graph.find_domain("harmless.org");
  EXPECT_GT(result.domain_belief[suspicious], 0.52);
  EXPECT_LT(result.domain_belief[harmless], 0.5);
  EXPECT_GT(result.domain_belief[suspicious], result.domain_belief[harmless] + 0.04);
}

TEST_F(LbpTest, LabeledNodesKeepTheirPolarity) {
  const auto graph = make_graph();
  const auto result = run_loopy_belief_propagation(graph);
  EXPECT_GT(result.domain_belief[graph.find_domain("cc.evil.biz")], 0.9);
  EXPECT_LT(result.domain_belief[graph.find_domain("www.good.com")], 0.1);
}

TEST_F(LbpTest, MachineBeliefsFollowCommunities) {
  // Machines carry strong node potentials from their labels; a stronger
  // edge potential makes the separation decisive.
  const auto graph = make_graph();
  LbpConfig config;
  config.edge_potential = 0.7;
  const auto result = run_loopy_belief_propagation(graph, config);
  EXPECT_GT(result.machine_belief[graph.find_machine("i0")], 0.6);
  EXPECT_LT(result.machine_belief[graph.find_machine("b0")], 0.4);
}

TEST_F(LbpTest, ConvergesOnSmallGraphs) {
  const auto graph = make_graph();
  const auto result = run_loopy_belief_propagation(graph);
  EXPECT_TRUE(result.converged);
  EXPECT_GT(result.iterations, 0u);
}

TEST_F(LbpTest, BeliefsAreProbabilities) {
  const auto graph = make_graph();
  const auto result = run_loopy_belief_propagation(graph);
  for (const auto belief : result.domain_belief) {
    EXPECT_GE(belief, 0.0);
    EXPECT_LE(belief, 1.0);
  }
  for (const auto belief : result.machine_belief) {
    EXPECT_GE(belief, 0.0);
    EXPECT_LE(belief, 1.0);
  }
}

TEST_F(LbpTest, UnlabeledGraphStaysAtPrior) {
  GraphBuilder builder(psl_);
  builder.add_query("m1", "a.com", {});
  builder.add_query("m2", "a.com", {});
  const auto graph = builder.build();  // everything unknown
  const auto result = run_loopy_belief_propagation(graph);
  EXPECT_NEAR(result.domain_belief[0], 0.5, 1e-6);
}

TEST_F(LbpTest, StrongerEdgePotentialPropagatesHarder) {
  const auto graph = make_graph();
  LbpConfig weak;
  weak.edge_potential = 0.505;
  LbpConfig strong;
  strong.edge_potential = 0.7;
  const auto weak_result = run_loopy_belief_propagation(graph, weak);
  const auto strong_result = run_loopy_belief_propagation(graph, strong);
  const auto suspicious = graph.find_domain("suspicious.net");
  EXPECT_GT(strong_result.domain_belief[suspicious], weak_result.domain_belief[suspicious]);
}

TEST_F(LbpTest, InvalidConfigThrows) {
  const auto graph = make_graph();
  LbpConfig bad;
  bad.edge_potential = 0.5;
  EXPECT_THROW(run_loopy_belief_propagation(graph, bad), util::PreconditionError);
  bad = LbpConfig{};
  bad.labeled_confidence = 1.0;
  EXPECT_THROW(run_loopy_belief_propagation(graph, bad), util::PreconditionError);
}

TEST_F(LbpTest, HandlesHighDegreeNodesWithoutUnderflow) {
  // A domain queried by 2000 machines: naive probability products would
  // underflow; the log-space implementation must stay finite.
  GraphBuilder builder(psl_);
  for (int i = 0; i < 2000; ++i) {
    const auto machine = "m" + std::to_string(i);
    builder.add_query(machine, "megahub.com", {});
    builder.add_query(machine, "cc.evil.biz", {});
  }
  auto graph = builder.build();
  NameSet blacklist;
  blacklist.insert("cc.evil.biz");
  graph::apply_labels(graph, blacklist, NameSet{});
  const auto result = run_loopy_belief_propagation(graph);
  const auto hub = graph.find_domain("megahub.com");
  EXPECT_TRUE(std::isfinite(result.domain_belief[hub]));
  EXPECT_GT(result.domain_belief[hub], 0.5);  // all its machines are infected
}

TEST_F(LbpTest, ThreadCountDoesNotChangeBeliefs) {
  const auto graph = make_graph();
  LbpConfig one;
  one.num_threads = 1;
  LbpConfig four;
  four.num_threads = 4;
  const auto a = run_loopy_belief_propagation(graph, one);
  const auto b = run_loopy_belief_propagation(graph, four);
  ASSERT_EQ(a.domain_belief.size(), b.domain_belief.size());
  for (std::size_t d = 0; d < a.domain_belief.size(); ++d) {
    EXPECT_DOUBLE_EQ(a.domain_belief[d], b.domain_belief[d]);
  }
  for (std::size_t m = 0; m < a.machine_belief.size(); ++m) {
    EXPECT_DOUBLE_EQ(a.machine_belief[m], b.machine_belief[m]);
  }
  EXPECT_EQ(a.iterations, b.iterations);
  EXPECT_EQ(a.converged, b.converged);
}

}  // namespace
}  // namespace seg::baselines
