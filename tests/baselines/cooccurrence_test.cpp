#include "baselines/cooccurrence.h"

#include <gtest/gtest.h>

#include "graph/labeling.h"

namespace seg::baselines {
namespace {

using graph::GraphBuilder;
using graph::NameSet;

TEST(CooccurrenceTest, ScoresByInfectedMachineFraction) {
  dns::PublicSuffixList psl = dns::PublicSuffixList::with_default_rules();
  GraphBuilder builder(psl);
  builder.add_query("i1", "cc.evil.biz", {});
  builder.add_query("i1", "mixed.net", {});
  builder.add_query("u1", "mixed.net", {});
  builder.add_query("u2", "clean.org", {});
  builder.add_query("u3", "clean.org", {});
  auto graph = builder.build();
  NameSet blacklist;
  blacklist.insert("cc.evil.biz");
  graph::apply_labels(graph, blacklist, NameSet{});

  const auto result = run_cooccurrence(graph);
  EXPECT_DOUBLE_EQ(result.domain_score[graph.find_domain("mixed.net")], 0.5);
  EXPECT_DOUBLE_EQ(result.domain_score[graph.find_domain("clean.org")], 0.0);
  EXPECT_DOUBLE_EQ(result.domain_score[graph.find_domain("cc.evil.biz")], 1.0);
}

TEST(CooccurrenceTest, ZeroCooccurrenceDomainsAreInvisible) {
  // The Sato et al. limitation the paper points out: a C&C domain queried
  // only by machines with no blacklisted queries scores zero.
  dns::PublicSuffixList psl = dns::PublicSuffixList::with_default_rules();
  GraphBuilder builder(psl);
  builder.add_query("u1", "hidden-cc.net", {});
  builder.add_query("u2", "hidden-cc.net", {});
  const auto graph = builder.build();
  const auto result = run_cooccurrence(graph);
  EXPECT_DOUBLE_EQ(result.domain_score[graph.find_domain("hidden-cc.net")], 0.0);
}

TEST(CooccurrenceTest, EmptyGraph) {
  dns::PublicSuffixList psl = dns::PublicSuffixList::with_default_rules();
  GraphBuilder builder(psl);
  const auto graph = builder.build();
  const auto result = run_cooccurrence(graph);
  EXPECT_TRUE(result.domain_score.empty());
}

}  // namespace
}  // namespace seg::baselines
