// In-day cross-validation (referenced in the paper's evaluation summary,
// Section VII: "including cross-validation, cross-day and cross-network
// tests").
//
// Stratified 5-fold cross-validation over the known domains of a single
// day of traffic, per ISP. This is the easiest setting (no train/test time
// gap), so it upper-bounds the cross-day numbers.
#include <cstdio>

#include "bench_common.h"

int main() {
  using namespace seg;
  bench::print_header("In-day 5-fold cross-validation");

  auto& world = bench::bench_world();
  const auto config = bench::bench_config();

  for (std::size_t isp = 0; isp < world.isp_count(); ++isp) {
    const dns::Day day = 8;
    const auto trace = world.generate_day(isp, day);
    const auto folds = core::run_in_day_cross_validation(
        trace, world.psl(), world.blacklist().as_of(sim::BlacklistKind::kCommercial, day),
        world.whitelist().all(), world.activity(), world.pdns(), config);
    const auto merged = core::EvaluationResult::merge(folds);
    bench::print_roc_operating_points(
        "ISP" + std::to_string(isp + 1) + " day " + std::to_string(day) +
            " (pooled over 5 folds)",
        merged.roc());
    std::printf("\n");
  }
  std::printf("expected shape: at or slightly above the Figure 6 cross-day numbers\n"
              "(no behavior drift between training and testing).\n");
  return 0;
}
