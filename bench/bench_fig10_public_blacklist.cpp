// Figure 10 + Section IV-E reproduction: experiments with public
// blacklists.
//
// Part 1 (Figure 10): the cross-day experiment labeled exclusively from
// public C&C blacklists (4,125 domains in the paper; a lower-coverage,
// noisier view here). Paper headline: still above 94% TPs at 0.1% FPs.
//
// Part 2 (cross-blacklist, in-text): train with the commercial blacklist,
// then test on the domains that appear only in the public blacklists —
// "new" malware-control domains the training ground truth never saw. The
// paper observed (TP=57%, FP=0.1%), (74%, 0.5%), (77%, 0.9%) over 53 such
// domains, depressed by public-blacklist noise.
#include <cstdio>

#include "bench_common.h"
#include "graph/labeling.h"

int main() {
  using namespace seg;
  auto& world = bench::bench_world();

  bench::print_header("Figure 10: ISP2 cross-day using only public blacklists");
  {
    const auto bundle =
        bench::make_bundle(world, 1, 2, 1, 20, sim::BlacklistKind::kPublic);
    const auto result = core::run_cross_day(bundle->inputs, bench::bench_config());
    bench::print_roc_operating_points("public-blacklist labels",
                                      result.roc(), {0.92, 0.94, 0.96, 0.98, 0.99});
    std::printf("paper: > 94%% TPs at 0.1%% FPs\n");
  }

  bench::print_header("Section IV-E: cross-blacklist test (train commercial, test public-only)");
  {
    // Train on day 2 with the commercial blacklist; evaluate on day 20 the
    // domains listed publicly (by day 20) but never commercially.
    const auto bundle = bench::make_bundle(world, 1, 2, 1, 20,
                                           sim::BlacklistKind::kCommercial);
    const auto public_list = world.blacklist().as_of(sim::BlacklistKind::kPublic, 20);
    const auto commercial_any = world.blacklist().as_of(sim::BlacklistKind::kCommercial, 120);

    // Build the test graph labeled with the commercial view (day 20): the
    // public-only domains stay *unknown* and are scored as such.
    const auto config = bench::bench_config();
    const auto test_graph = core::Segugio::prepare_graph(*bundle->inputs.test_trace,
                                                         world.psl(),
                                                         bundle->inputs.test_blacklist,
                                                         bundle->inputs.whitelist,
                                                         config.prepare_options())
                                .graph;

    graph::NameSet public_only;
    std::size_t overlap = 0;
    for (const auto& name : public_list) {
      if (commercial_any.contains(name)) {
        ++overlap;
      } else {
        public_only.insert(name);
      }
    }
    std::printf("public-listed domains: %zu; already in the commercial list: %zu; "
                "public-only: %zu (paper: 260 / 207 / 53)\n",
                public_list.size(), overlap, public_only.size());

    const auto train_graph = core::Segugio::prepare_graph(*bundle->inputs.train_trace,
                                                          world.psl(),
                                                          bundle->inputs.train_blacklist,
                                                          bundle->inputs.whitelist,
                                                          config.prepare_options())
                                 .graph;
    core::Segugio segugio(config);
    segugio.train(train_graph, world.activity(), world.pdns());
    const auto report = segugio.classify(test_graph, world.activity(), world.pdns());

    // Positives: public-only domains among the scored unknowns. Negatives:
    // benign (whitelisted) domains, scored with hidden labels via the
    // standard protocol on the same graph.
    std::vector<int> labels;
    std::vector<double> scores;
    std::size_t positives_seen = 0;
    for (const auto& scored : report.scores) {
      if (public_only.contains(scored.name)) {
        labels.push_back(1);
        scores.push_back(scored.score);
        ++positives_seen;
      }
    }
    const features::FeatureExtractor extractor(test_graph, world.activity(), world.pdns(),
                                               config.features);
    for (graph::DomainId d = 0; d < test_graph.domain_count(); ++d) {
      if (test_graph.domain_label(d) == graph::Label::kBenign) {
        labels.push_back(0);
        scores.push_back(segugio.score(extractor.extract_hiding_label(d)));
      }
    }
    std::printf("public-only domains visible in the ISP2 day-20 graph: %zu\n",
                positives_seen);
    if (positives_seen == 0) {
      std::printf("none visible this run; cannot compute TP rates\n");
      return 0;
    }
    const auto roc = ml::RocCurve::compute(labels, scores);
    std::printf("  TP at 0.1%% FPs: %.2f   (paper: 0.57)\n", roc.tpr_at_fpr(0.001));
    std::printf("  TP at 0.5%% FPs: %.2f   (paper: 0.74)\n", roc.tpr_at_fpr(0.005));
    std::printf("  TP at 0.9%% FPs: %.2f   (paper: 0.77)\n", roc.tpr_at_fpr(0.009));
    std::printf("(the paper attributes the depressed TP to the small test set and to\n"
                " benign domains mislabeled as C&C in the public lists; our public view\n"
                " carries the same noise)\n");
  }
  return 0;
}
