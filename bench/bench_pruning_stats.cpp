// Section III reproduction (in-text): graph pruning reductions.
//
// The paper reports that the conservative pruning rules R1-R4 removed on
// average 26.55% of domain nodes, 13.85% of machine nodes, and 26.59% of
// edges. We apply the same rules to our synthetic days and print per-day
// and averaged reductions plus the per-rule breakdown.
#include <cstdio>

#include "bench_common.h"
#include "core/segugio.h"
#include "util/strings.h"
#include "util/table.h"

int main() {
  using namespace seg;
  bench::print_header("Graph pruning reductions (Section III in-text)");

  auto& world = bench::bench_world();
  const auto config = bench::bench_config();

  util::TextTable table({"Graph", "machines -%", "domains -%", "edges -%", "R1", "R2", "R3",
                         "R4", "theta_d", "theta_m"});
  double machine_sum = 0.0;
  double domain_sum = 0.0;
  double edge_sum = 0.0;
  int count = 0;
  for (std::size_t isp = 0; isp < world.isp_count(); ++isp) {
    for (const dns::Day day : {2, 15}) {
      const auto trace = world.generate_day(isp, day);
      const auto stats =
          core::Segugio::prepare_graph(
              trace, world.psl(),
              world.blacklist().as_of(sim::BlacklistKind::kCommercial, day),
              world.whitelist().all(), config.prepare_options())
              .prune_stats;
      table.add_row({"ISP" + std::to_string(isp + 1) + " day " + std::to_string(day),
                     util::format_double(100.0 * stats.machine_reduction(), 2),
                     util::format_double(100.0 * stats.domain_reduction(), 2),
                     util::format_double(100.0 * stats.edge_reduction(), 2),
                     std::to_string(stats.machines_removed_r1),
                     std::to_string(stats.machines_removed_r2),
                     std::to_string(stats.domains_removed_r3),
                     std::to_string(stats.domains_removed_r4),
                     std::to_string(stats.theta_d), std::to_string(stats.theta_m)});
      machine_sum += stats.machine_reduction();
      domain_sum += stats.domain_reduction();
      edge_sum += stats.edge_reduction();
      ++count;
    }
  }
  std::printf("%s", table.render().c_str());
  std::printf("\naverages:  machines -%.2f%%  domains -%.2f%%  edges -%.2f%%\n",
              100.0 * machine_sum / count, 100.0 * domain_sum / count,
              100.0 * edge_sum / count);
  std::printf("paper:     machines -13.85%%  domains -26.55%%  edges -26.59%%\n");
  return 0;
}
