// Section VI reproduction: quantifying the evasion strategies the paper
// discusses.
//
// Two attacker moves from the Limitations section:
//   1. hide C&C channels under legitimate / free-registration zones
//      ("operating a malware-control channel under a legitimate and
//      popular domain name") — we sweep the fraction of C&C domains
//      hidden under free-registration zones;
//   2. query control domains less often than the observation window
//      ("change their malware C&C domains more frequently than the
//      observation window" / phone home rarely) — we sweep the bots' mean
//      daily C&C query count downward.
// For each setting the cross-day experiment reports how far detection
// degrades.
#include <cstdio>

#include "bench_common.h"
#include "util/strings.h"
#include "util/table.h"

namespace {

using namespace seg;

struct Row {
  std::string name;
  double auc;
  double tpr01;
  double tpr1;
};

Row evaluate(const sim::ScenarioConfig& scenario, const std::string& name) {
  sim::World world{scenario};
  const auto bundle = bench::make_bundle(world, 0, 2, 0, 15);
  const auto result = core::run_cross_day(bundle->inputs, bench::bench_config());
  const auto roc = result.roc();
  return {name, roc.auc(), roc.tpr_at_fpr(0.001), roc.tpr_at_fpr(0.01)};
}

}  // namespace

int main() {
  bench::print_header("Section VI: evasion analysis (ISP1 cross-day)");

  util::TextTable table({"attacker strategy", "AUC", "TPR@0.1%", "TPR@1%"});
  const auto add = [&table](const Row& row) {
    table.add_row({row.name, util::format_double(row.auc, 4),
                   util::format_double(row.tpr01, 3), util::format_double(row.tpr1, 3)});
  };

  add(evaluate(sim::ScenarioConfig::bench(), "baseline"));
  for (const double freereg : {0.4, 0.7}) {
    auto scenario = sim::ScenarioConfig::bench();
    scenario.cc_freereg_abuse_prob = freereg;
    add(evaluate(scenario,
                 "hide " + util::format_double(100.0 * freereg, 0) + "% of C&C under free-reg zones"));
  }
  for (const double queries : {2.0, 1.0}) {
    auto scenario = sim::ScenarioConfig::bench();
    scenario.cc_queries_mean = queries;
    add(evaluate(scenario, "bots query only ~" + util::format_double(queries, 0) +
                               " C&C domains/day"));
  }
  {
    auto scenario = sim::ScenarioConfig::bench();
    scenario.cc_relocation_prob = 0.45;  // rotate faster than blacklists react
    add(evaluate(scenario, "rotate domains ~every 2 days"));
  }
  std::printf("%s", table.render().c_str());
  std::printf("\npaper (Section VI): hiding under popular/legitimate zones is possible\n"
              "but exposes the channel to takedown; fast rotation weakens blacklists\n"
              "but Segugio still enumerates the infected machines each day.\n");
  return 0;
}
