// Table II + Figure 6 reproduction: cross-day and cross-network tests.
//
// Three experiments, as in Section IV-A:
//   (a) ISP1 cross-day with a 13-day train/test gap;
//   (b) ISP2 cross-day with an 18-day gap;
//   (c) cross-network: train on ISP1, test on ISP2, 15-day gap.
// Headline: consistently above 92% TPs at 0.1% FPs.
#include <cstdio>

#include "bench_common.h"
#include "util/table.h"

int main() {
  using namespace seg;
  bench::print_header("Table II + Figure 6: cross-day and cross-network tests");

  auto& world = bench::bench_world();
  const auto config = bench::bench_config();

  struct Spec {
    const char* name;
    std::size_t train_isp;
    dns::Day train_day;
    std::size_t test_isp;
    dns::Day test_day;
    const char* paper_sizes;
  };
  const Spec specs[] = {
      {"(a) ISP1 cross-day (13-day gap)", 0, 2, 0, 15, "9,980 mal / 780,707 ben"},
      {"(b) ISP2 cross-day (18-day gap)", 1, 2, 1, 20, "6,490 mal / 820,219 ben"},
      {"(c) ISP1->ISP2 cross-network (15-day gap)", 0, 2, 1, 17, "6,477 mal / 879,328 ben"},
  };
  // Paper Figure 6: all three curves sit above 92% TPR at 0.1% FPR and
  // reach ~1.0 by 1% FPR. Values on our FP grid (read off the curves).
  const std::vector<double> paper_tprs = {0.90, 0.92, 0.95, 0.97, 0.99};

  util::TextTable sizes({"Test experiment", "malicious", "benign", "paper test sizes"});
  for (const auto& spec : specs) {
    const auto bundle = bench::make_bundle(world, spec.train_isp, spec.train_day,
                                           spec.test_isp, spec.test_day);
    const auto result = core::run_cross_day(bundle->inputs, config);
    sizes.add_row({spec.name, std::to_string(result.test_malicious()),
                   std::to_string(result.test_benign()), spec.paper_sizes});
    bench::print_roc_operating_points(spec.name, result.roc(), paper_tprs);
    std::printf("\n");
  }
  std::printf("Table II (test set sizes; ours are ~1:400 scale):\n%s", sizes.render().c_str());
  std::printf("\npaper headline: >= 92%% TPs at 0.1%% FPs in all three experiments\n");
  return 0;
}
