// Figure 12 + Table IV reproduction: comparison with Notos.
//
// Protocol (Section V): both systems are trained on day t_train — Notos
// from a blacklist superset plus the top-popularity whitelist, Segugio
// from the same top whitelist for balance — and tested 24 days later. The
// true positives are the malware-control domains added to the commercial
// blacklist *between* t_train and t_test; false positives are counted over
// the stable whitelist minus the top subset used in training.
//
// Paper findings: Notos needs 16-21% FPs to reach its best TP (< 56%,
// capped by its reject option); Segugio reaches 75-91% TPs below 0.7% FPs.
// Table IV attributes most Notos FPs to domains hosted in "dirty" IP
// space that malware also used.
#include <cstdio>

#include "baselines/notos_like.h"
#include "bench_common.h"
#include "graph/labeling.h"
#include "util/strings.h"
#include "util/table.h"

namespace {

using namespace seg;

struct Scored {
  std::string name;
  int label = 0;
  double segugio = 0.0;
  bool notos_rejected = false;
  double notos = -1.0;  // rejected domains sit below every threshold
  graph::DomainId id = 0;
};

}  // namespace

int main() {
  auto& world = bench::bench_world();
  bench::print_header("Figure 12: Notos vs Segugio (train day 5, test day 29)");

  constexpr dns::Day kTrainDay = 5;
  constexpr dns::Day kTestDay = 29;
  const auto config = bench::bench_config();

  // Top-popularity whitelist used for training both systems; the rest of
  // the whitelist measures FPs.
  const std::size_t top_k = world.whitelist().stable_entries().size() / 5;
  const auto top_whitelist = world.whitelist().top(top_k);
  const auto blacklist_train = world.blacklist().as_of(sim::BlacklistKind::kCommercial, kTrainDay);
  // Notos's blacklist is a superset: commercial plus public view.
  graph::NameSet notos_blacklist = blacklist_train;
  for (const auto& name : world.blacklist().as_of(sim::BlacklistKind::kPublic, kTrainDay)) {
    notos_blacklist.insert(name);
  }

  // --- Training.
  const auto train_trace = world.generate_day(1, kTrainDay);
  const auto train_graph = core::Segugio::prepare_graph(train_trace, world.psl(),
                                                        blacklist_train, top_whitelist,
                                                        config.prepare_options())
                               .graph;
  core::Segugio segugio(config);
  segugio.train(train_graph, world.activity(), world.pdns());

  baselines::NotosConfig notos_config;
  notos_config.forest.num_threads = 0;
  baselines::NotosLikeClassifier notos(notos_config);
  notos.train(train_graph, world.activity(), world.pdns(), notos_blacklist, top_whitelist);

  // --- Test graph: labeled with the *training-day* blacklist so domains
  // blacklisted later stay unknown, and the full whitelist for benign.
  const auto test_trace = world.generate_day(1, kTestDay);
  auto test_graph = core::Segugio::prepare_graph(test_trace, world.psl(), blacklist_train,
                                                 world.whitelist().all(),
                                                 config.prepare_options())
                        .graph;

  // Ground truth positives: commercially listed in (t_train, t_test].
  const auto blacklist_test = world.blacklist().as_of(sim::BlacklistKind::kCommercial, kTestDay);
  graph::NameSet new_malware;
  for (const auto& name : blacklist_test) {
    if (!blacklist_train.contains(name)) {
      new_malware.insert(name);
    }
  }

  const features::FeatureExtractor extractor(test_graph, world.activity(), world.pdns(),
                                             config.features);
  std::vector<Scored> rows;
  for (graph::DomainId d = 0; d < test_graph.domain_count(); ++d) {
    const auto name = std::string(test_graph.domain_name(d));
    const auto label = test_graph.domain_label(d);
    Scored row;
    row.name = name;
    row.id = d;
    if (label == graph::Label::kUnknown && new_malware.contains(name)) {
      row.label = 1;
      row.segugio = segugio.score(extractor.extract(d));
    } else if (label == graph::Label::kBenign &&
               !top_whitelist.contains(test_graph.e2ld_name(test_graph.domain_e2ld(d)))) {
      row.label = 0;
      row.segugio = segugio.score(extractor.extract_hiding_label(d));
    } else {
      continue;
    }
    const auto notos_score = notos.score(test_graph, d, world.activity(), world.pdns());
    row.notos_rejected = !notos_score.has_value();
    row.notos = notos_score.value_or(-1.0);
    rows.push_back(std::move(row));
  }

  std::vector<int> labels;
  std::vector<double> segugio_scores;
  std::vector<double> notos_scores;
  std::size_t positives = 0;
  std::size_t rejected_positives = 0;
  for (const auto& row : rows) {
    labels.push_back(row.label);
    segugio_scores.push_back(row.segugio);
    notos_scores.push_back(row.notos);
    if (row.label == 1) {
      ++positives;
      rejected_positives += row.notos_rejected ? 1 : 0;
    }
  }
  std::printf("newly blacklisted malware-control domains in the test traffic: %zu "
              "(paper: 44 and 36)\n",
              positives);
  std::printf("of which Notos refuses to classify (reject option): %zu\n\n",
              rejected_positives);

  const auto segugio_roc = ml::RocCurve::compute(labels, segugio_scores);
  const auto notos_roc = ml::RocCurve::compute(labels, notos_scores);

  std::printf("%-26s %-18s %s\n", "operating point", "Notos", "Segugio");
  for (const double fpr : {0.001, 0.005, 0.007, 0.05, 0.1, 0.2}) {
    std::printf("TPR at FPR <= %-12s %-18s %s\n",
                (util::format_double(100.0 * fpr, 1) + "%").c_str(),
                util::format_double(notos_roc.tpr_at_fpr(fpr), 3).c_str(),
                util::format_double(segugio_roc.tpr_at_fpr(fpr), 3).c_str());
  }
  std::printf("max TPR below 50%% FPs:     %-18s %s\n",
              util::format_double(notos_roc.tpr_at_fpr(0.5), 3).c_str(),
              util::format_double(segugio_roc.tpr_at_fpr(0.5), 3).c_str());
  std::printf("(rejected domains are undetectable at any practical threshold)\n");
  std::printf("\npaper: Notos needs 16-21%% FPs for its best TPs (< 0.56, reject-capped);\n"
              "Segugio reaches 0.75-0.91 TPs below 0.7%% FPs.\n");

  // --- Table IV: break down Notos's FPs at the threshold where it reaches
  // (95% of) its best achievable TP rate — the paper's "adjust the
  // threshold so Notos detects the blacklisted domains".
  bench::print_header("Table IV: break-down of Notos's false positives");
  double notos_threshold = -1.0;
  {
    const double target = 0.95 * notos_roc.tpr_at_fpr(0.5);
    for (const auto& point : notos_roc.points()) {
      if (point.tpr >= target) {
        notos_threshold = point.threshold;
        break;
      }
    }
  }
  std::size_t fp_total = 0;
  std::size_t dirty_hosting = 0;
  std::size_t sandbox_queried = 0;
  std::size_t ip_malware = 0;
  std::size_t prefix_malware = 0;
  std::size_t no_evidence = 0;
  for (const auto& row : rows) {
    if (row.label != 0 || row.notos_rejected || row.notos < notos_threshold) {
      continue;
    }
    ++fp_total;
    const auto ips = test_graph.resolved_ips(row.id);
    bool in_dirty = false;
    bool ip_hit = false;
    bool prefix_hit = false;
    for (const auto ip : ips) {
      // "Dirty network": the shared pool bulletproof hosting also uses.
      in_dirty |= (ip.value() & 0xff000000u) == 0xB9000000u;
      ip_hit |= world.pdns().ip_malware_associated(ip, kTestDay - 150, kTestDay - 1);
      prefix_hit |= world.pdns().prefix_malware_associated(ip, kTestDay - 150, kTestDay - 1);
    }
    if (in_dirty) {
      ++dirty_hosting;
    } else if (world.sandbox().contacted_by_malware(row.name)) {
      ++sandbox_queried;
    } else if (ip_hit) {
      ++ip_malware;
    } else if (prefix_hit) {
      ++prefix_malware;
    } else {
      ++no_evidence;
    }
  }
  util::TextTable table({"Category", "count", "share", "paper share"});
  const auto share = [&](std::size_t n) {
    return fp_total == 0 ? std::string("-")
                         : util::format_double(100.0 * n / fp_total, 1) + "%";
  };
  table.add_row({"All Notos FPs", std::to_string(fp_total), "100%", "13,432 total"});
  table.add_row({"Hosted in dirty networks", std::to_string(dirty_hosting),
                 share(dirty_hosting), "13.6%"});
  table.add_row({"Queried by sandboxed malware", std::to_string(sandbox_queried),
                 share(sandbox_queried), "1.7%"});
  table.add_row({"IPs previously used by malware", std::to_string(ip_malware),
                 share(ip_malware), "15%"});
  table.add_row({"/24 used by malware", std::to_string(prefix_malware),
                 share(prefix_malware), "54.7%"});
  table.add_row({"No evidence (pure reputation FPs)", std::to_string(no_evidence),
                 share(no_evidence), "15%"});
  std::printf("%s", table.render().c_str());
  return 0;
}
