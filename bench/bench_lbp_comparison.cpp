// Section I (in-text) reproduction: pilot comparison with loopy belief
// propagation (Manadhata et al. [6] / Polonium-style inference).
//
// The paper implemented LBP on GraphLab over the same datasets and found
// Segugio ~45% more accurate on average, with classification in minutes
// instead of the tens of hours LBP needed. We run both on the same labeled
// test graph: LBP scores unknown domains by propagated belief; Segugio by
// its trained classifier. Accuracy is compared at the paper's low-FP
// operating points, runtime on the same machine.
#include <cstdio>

#include "baselines/lbp.h"
#include "bench_common.h"
#include "graph/labeling.h"
#include "util/obs/trace.h"
#include "util/strings.h"

int main() {
  using namespace seg;
  bench::print_header("Pilot comparison: Segugio vs loopy belief propagation");

  auto& world = bench::bench_world();
  const auto config = bench::bench_config();
  const auto bundle = bench::make_bundle(world, 0, 2, 0, 15);

  // --- Segugio via the standard protocol.
  obs::Span segugio_span("bench/segugio");
  const auto result = core::run_cross_day(bundle->inputs, config);
  const double segugio_seconds = segugio_span.close();
  const auto segugio_roc = result.roc();

  // --- LBP on the identical hidden-label test graph: rebuild it the same
  // way run_cross_day does, then hide the same test domains.
  const auto test_graph = core::Segugio::prepare_graph(*bundle->inputs.test_trace,
                                                       world.psl(),
                                                       bundle->inputs.test_blacklist,
                                                       bundle->inputs.whitelist,
                                                       config.prepare_options())
                              .graph;
  graph::NameSet test_names;
  for (const auto& outcome : result.outcomes) {
    test_names.insert(outcome.name);
  }
  auto hidden = test_graph;
  std::vector<std::pair<graph::DomainId, int>> test_rows;
  for (graph::DomainId d = 0; d < hidden.domain_count(); ++d) {
    if (test_names.contains(hidden.domain_name(d))) {
      test_rows.emplace_back(d, hidden.domain_label(d) == graph::Label::kMalware ? 1 : 0);
      hidden.set_domain_label(d, graph::Label::kUnknown);
    }
  }
  graph::relabel_machines(hidden);

  obs::Span lbp_span("bench/lbp");
  const auto lbp = baselines::run_loopy_belief_propagation(hidden);
  const double lbp_seconds = lbp_span.close();

  std::vector<int> labels;
  std::vector<double> scores;
  for (const auto& [d, label] : test_rows) {
    labels.push_back(label);
    scores.push_back(lbp.domain_belief[d]);
  }
  const auto lbp_roc = ml::RocCurve::compute(labels, scores);

  std::printf("%-28s %-14s %s\n", "metric", "LBP", "Segugio");
  std::printf("%-28s %-14s %s\n", "AUC", util::format_double(lbp_roc.auc(), 4).c_str(),
              util::format_double(segugio_roc.auc(), 4).c_str());
  for (const double fpr : {0.001, 0.005, 0.01, 0.05}) {
    std::printf("TPR at FPR <= %-14s %-14s %s\n",
                (util::format_double(100.0 * fpr, 1) + "%").c_str(),
                util::format_double(lbp_roc.tpr_at_fpr(fpr), 3).c_str(),
                util::format_double(segugio_roc.tpr_at_fpr(fpr), 3).c_str());
  }
  std::printf("%-28s %-14s %s\n", "wall time (s)",
              util::format_double(lbp_seconds, 2).c_str(),
              util::format_double(segugio_seconds, 2).c_str());
  std::printf("  (LBP: %zu iterations, converged=%s)\n", lbp.iterations,
              lbp.converged ? "yes" : "no");

  const double lbp_acc = lbp_roc.tpr_at_fpr(0.005);
  const double seg_acc = segugio_roc.tpr_at_fpr(0.005);
  if (lbp_acc > 0.0) {
    std::printf("\nSegugio detects %.0f%% more of the test malware at 0.5%% FPs\n",
                100.0 * (seg_acc - lbp_acc) / lbp_acc);
  }
  std::printf("paper: Segugio ~45%% more accurate on average; a day of traffic in\n"
              "minutes rather than the tens of hours LBP needed at full scale.\n");
  return 0;
}
