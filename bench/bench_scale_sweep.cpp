// Scalability sweep: pipeline cost and peak memory versus ISP population.
//
// Section IV-G's claim is that the pipeline handles ISP scale (millions of
// machines, hundreds of millions of edges) in about an hour of learning
// and minutes of classification. We cannot host millions of machines on
// one core, but we can show the two curves that make the paper-scale
// extrapolation a multiplication instead of a hope:
//
//   - cost: double the machines, roughly double the work (edges/sec flat);
//   - memory: the heap pipeline's peak RSS grows with the day, while the
//     out-of-core prepare (graph/oocore.h) stays node-bound — its 10x-larger
//     scale point must peak BELOW the heap pipeline's largest point.
//
// Peak RSS (ru_maxrss) is monotone per process, so every scale point runs
// in its own subprocess (this binary re-invoked with --point) and reports
// back through a scratch file. Results land on stdout and in the "scale"
// section of BENCH_pipeline.json next to bench_perf_efficiency's output.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/pipeline.h"
#include "dns/query_log.h"
#include "graph/graph_compressed.h"
#include "graph/oocore.h"
#include "util/obs/process.h"
#include "util/obs/trace.h"
#include "util/strings.h"
#include "util/table.h"

namespace {

using namespace seg;

// One scale point's self-reported measurements, exchanged with the child
// process as "key value" lines.
struct PointResult {
  std::size_t machines = 0;
  std::size_t records = 0;
  std::size_t edges = 0;          // graph edges after prepare
  double prepare_seconds = 0.0;   // heap: ingest+train ("learn"); oocore: prepare
  double classify_seconds = 0.0;  // heap only; 0 for the oocore point
  double edges_per_second = 0.0;  // pre-prune edge stream rate through prepare
  std::uint64_t rss_peak_kb = 0;
};

void write_point(const std::string& path, const PointResult& r) {
  std::ofstream out(path);
  out << "machines " << r.machines << "\nrecords " << r.records << "\nedges " << r.edges
      << "\nprepare_seconds " << r.prepare_seconds << "\nclassify_seconds "
      << r.classify_seconds << "\nedges_per_second " << r.edges_per_second
      << "\nrss_peak_kb " << r.rss_peak_kb << "\n";
}

bool read_point(const std::string& path, PointResult& r) {
  std::ifstream in(path);
  if (!in.is_open()) {
    return false;
  }
  std::string key;
  while (in >> key) {
    if (key == "machines") in >> r.machines;
    else if (key == "records") in >> r.records;
    else if (key == "edges") in >> r.edges;
    else if (key == "prepare_seconds") in >> r.prepare_seconds;
    else if (key == "classify_seconds") in >> r.classify_seconds;
    else if (key == "edges_per_second") in >> r.edges_per_second;
    else if (key == "rss_peak_kb") in >> r.rss_peak_kb;
    else { std::string skip; in >> skip; }
  }
  return r.machines != 0;
}

// --- heap scale point: the full pipeline (ingest, train, classify) over a
// simulated day, exactly the flow ISP deployments run in memory.
int run_heap_point(std::size_t machines, const std::string& out_path) {
  auto scenario = sim::ScenarioConfig::bench();
  scenario.isp_machines = {machines};
  sim::World world{scenario};
  const auto trace = world.generate_day(0, 2);
  const auto config = bench::bench_config();

  obs::Span learn_span("bench/learn");
  core::Pipeline pipeline(world.psl(), world.activity(), world.pdns(), config);
  const auto& blacklist = world.blacklist().as_of(sim::BlacklistKind::kCommercial, 2);
  core::PreparedDay day;
  dns::DayTraceSource source(trace);
  pipeline.ingest_stream(
      source, [&](dns::Day) -> const graph::NameSet& { return blacklist; },
      world.whitelist().all(), [&](core::PreparedDay&& ingested) { day = std::move(ingested); });
  pipeline.train(day);
  const double learn_seconds = learn_span.close();

  obs::Span classify_span("bench/classify");
  (void)pipeline.classify(day);
  const double classify_seconds = classify_span.close();

  PointResult r;
  r.machines = machines;
  r.records = trace.records.size();
  r.edges = day.graph.edge_count();
  r.prepare_seconds = learn_seconds;
  r.classify_seconds = classify_seconds;
  r.edges_per_second = static_cast<double>(day.graph.edge_count()) / learn_seconds;
  r.rss_peak_kb = obs::sample_process().rss_peak_kb;
  write_point(out_path, r);
  return 0;
}

// --- out-of-core scale point: a synthetic day 10x past the largest heap
// point, streamed through prepare_graph_out_of_core. The trace is generated
// record by record (BinaryTraceWriter) and consumed record by record, so
// nothing in the child ever holds the day in memory.
constexpr std::size_t kOocoreDomainPool = 200000;
constexpr std::size_t kOocoreDegree = 64;

int run_oocore_point(std::size_t machines, const std::string& out_path) {
  const std::string trace_path = "scale_sweep_oocore_trace.bin";
  const std::string graph_path = "scale_sweep_oocore.graphc";
  const std::size_t total_records = machines * kOocoreDegree;
  {
    dns::BinaryTraceWriter writer(trace_path, /*day=*/2, total_records);
    std::vector<dns::IpV4> ips(1);
    std::uint64_t state = 0x243f6a8885a308d3ULL;  // fixed seed: deterministic day
    for (std::size_t m = 0; m < machines; ++m) {
      const std::string machine = "host-" + std::to_string(m);
      for (std::size_t k = 0; k < kOocoreDegree; ++k) {
        state = state * 6364136223846793005ULL + 1442695040888963407ULL;
        const auto j = static_cast<std::size_t>((state >> 33) % kOocoreDomainPool);
        const std::string qname =
            "d" + std::to_string(j) + ".s" + std::to_string(j / 8) + ".com";
        ips[0] = dns::IpV4(static_cast<std::uint32_t>(0x0a000000u + j));
        writer.add(machine, qname, ips);
      }
    }
    writer.finish();
  }

  graph::NameSet blacklist;
  blacklist.insert("d0.s0.com");
  graph::NameSet whitelist;
  whitelist.insert("s1.com");

  obs::Span prepare_span("bench/oocore-prepare");
  const auto result = graph::prepare_graph_out_of_core(
      trace_path, dns::PublicSuffixList::with_default_rules(), blacklist, whitelist,
      graph_path);
  const double prepare_seconds = prepare_span.close();

  PointResult r;
  r.machines = machines;
  r.records = result.records;
  r.edges = result.prune_stats.edges_after;
  r.prepare_seconds = prepare_seconds;
  r.edges_per_second = static_cast<double>(result.prune_stats.edges_before) / prepare_seconds;
  r.rss_peak_kb = obs::sample_process().rss_peak_kb;
  write_point(out_path, r);
  std::remove(trace_path.c_str());
  std::remove(graph_path.c_str());
  return 0;
}

// Splices the "scale" section into BENCH_pipeline.json. The file is owned
// by bench_perf_efficiency (which rewrites it wholesale); this sweep only
// appends/replaces its own trailing section, creating a minimal file when
// none exists yet.
void merge_scale_section(const std::string& section) {
  const char* path = "BENCH_pipeline.json";
  std::string existing;
  {
    std::ifstream in(path);
    if (in.is_open()) {
      std::ostringstream blob;
      blob << in.rdbuf();
      existing = std::move(blob).str();
    }
  }
  std::string head;
  if (existing.empty()) {
    head = "{\n";
  } else if (const auto at = existing.find(",\n  \"scale\":"); at != std::string::npos) {
    head = existing.substr(0, at) + ",\n";
  } else if (const auto brace = existing.rfind('}'); brace != std::string::npos) {
    head = existing.substr(0, brace);
    while (!head.empty() && (head.back() == '\n' || head.back() == ' ')) {
      head.pop_back();
    }
    head += ",\n";
  } else {
    head = "{\n";
  }
  std::ofstream out(path);
  out << head << "  \"scale\": " << section << "\n}\n";
  std::printf("\nwrote \"scale\" section of %s\n", path);
}

std::string render_scale_json(const std::vector<std::pair<std::string, PointResult>>& points,
                              bool rss_bounded) {
  std::ostringstream json;
  json << "{\n    \"points\": [\n";
  for (std::size_t i = 0; i < points.size(); ++i) {
    const auto& [mode, r] = points[i];
    char line[512];
    std::snprintf(line, sizeof(line),
                  "      {\"mode\": \"%s\", \"machines\": %zu, \"records\": %zu, "
                  "\"edges\": %zu, \"prepare_seconds\": %.6f, \"classify_seconds\": %.6f, "
                  "\"edges_per_sec\": %.1f, \"rss_peak_kb\": %llu}%s\n",
                  mode.c_str(), r.machines, r.records, r.edges, r.prepare_seconds,
                  r.classify_seconds, r.edges_per_second,
                  static_cast<unsigned long long>(r.rss_peak_kb),
                  i + 1 < points.size() ? "," : "");
    json << line;
  }
  json << "    ],\n    \"oocore_rss_below_largest_heap_point\": "
       << (rss_bounded ? "true" : "false") << "\n  }";
  return json.str();
}

}  // namespace

int main(int argc, char** argv) {
  // Child mode: one scale point, then exit (peak RSS stays point-local).
  if (argc == 5 && std::strcmp(argv[1], "--point") == 0) {
    const std::size_t machines = static_cast<std::size_t>(std::atoll(argv[3]));
    if (std::strcmp(argv[2], "heap") == 0) {
      return run_heap_point(machines, argv[4]);
    }
    if (std::strcmp(argv[2], "oocore") == 0) {
      return run_oocore_point(machines, argv[4]);
    }
    std::fprintf(stderr, "unknown point mode '%s'\n", argv[2]);
    return 1;
  }

  bench::print_header("Scalability sweep: cost and peak RSS vs machine population");

  const auto run_child = [&](const char* mode, std::size_t machines,
                             PointResult& result) -> bool {
    const std::string scratch =
        "scale_sweep_point_" + std::string(mode) + "_" + std::to_string(machines) + ".txt";
    const std::string command = std::string("\"") + argv[0] + "\" --point " + mode + " " +
                                std::to_string(machines) + " " + scratch;
    const int status = std::system(command.c_str());
    const bool ok = status == 0 && read_point(scratch, result);
    std::remove(scratch.c_str());
    if (!ok) {
      std::fprintf(stderr, "scale point %s/%zu failed (status %d)\n", mode, machines, status);
    }
    return ok;
  };

  std::vector<std::pair<std::string, PointResult>> points;
  util::TextTable table({"machines", "mode", "records/day", "edges", "prepare s",
                         "classify s", "edges/s", "peak RSS MB"});
  const auto add_row = [&](const char* mode, const PointResult& r) {
    table.add_row({std::to_string(r.machines), mode, util::format_count(r.records),
                   util::format_count(r.edges), util::format_double(r.prepare_seconds, 2),
                   r.classify_seconds > 0.0 ? util::format_double(r.classify_seconds, 3) : "-",
                   util::format_count(static_cast<std::uint64_t>(r.edges_per_second)),
                   std::to_string(r.rss_peak_kb / 1024)});
  };

  PointResult largest_heap;
  for (const std::size_t machines : {2000, 4000, 8000, 16000}) {
    PointResult r;
    if (!run_child("heap", machines, r)) {
      return 1;
    }
    points.emplace_back("heap", r);
    add_row("heap", r);
    largest_heap = r;
  }

  // The out-of-core point: 10x the largest heap population. Its peak RSS
  // must undercut the heap pipeline's largest point — that bound, not the
  // wall clock, is what makes 10^6-10^7 machines per box plausible.
  PointResult oocore;
  const bool oocore_ok = run_child("oocore", 10 * largest_heap.machines, oocore);
  if (oocore_ok) {
    points.emplace_back("oocore", oocore);
    add_row("oocore", oocore);
  }

  std::printf("%s", table.render().c_str());
  std::printf("\nexpected shape: near-linear prepare cost in machines/edges, classification\n"
              "a small fraction of learning (the paper's ~20x); heap RSS grows with the\n"
              "day while the out-of-core prepare stays node-bound.\n");

  bool rss_bounded = false;
  if (oocore_ok) {
    rss_bounded = oocore.rss_peak_kb < largest_heap.rss_peak_kb;
    std::printf("\nout-of-core %zu machines peaked at %llu MB vs heap %zu machines at %llu MB"
                " — bound %s\n",
                oocore.machines,
                static_cast<unsigned long long>(oocore.rss_peak_kb / 1024),
                largest_heap.machines,
                static_cast<unsigned long long>(largest_heap.rss_peak_kb / 1024),
                rss_bounded ? "holds" : "VIOLATED");
  }

  merge_scale_section(render_scale_json(points, rss_bounded));
  return oocore_ok && rss_bounded ? 0 : 1;
}
