// Scalability sweep: pipeline cost versus ISP population.
//
// Section IV-G's claim is that the pipeline handles ISP scale (millions of
// machines, hundreds of millions of edges) in about an hour of learning
// and minutes of classification. We cannot host millions of machines on
// one core, but we can show the cost curve: double the machines, roughly
// double the work — the pipeline is linear in the traffic volume, so the
// paper-scale extrapolation is a multiplication, not a hope.
#include <cstdio>

#include "bench_common.h"
#include "core/pipeline.h"
#include "util/obs/trace.h"
#include "util/strings.h"
#include "util/table.h"

int main() {
  using namespace seg;
  bench::print_header("Scalability sweep: cost vs machine population");

  util::TextTable table({"machines", "records/day", "edges", "learn s", "classify s",
                         "edges/s (learn)"});
  for (const std::size_t machines : {2000, 4000, 8000, 16000}) {
    auto scenario = sim::ScenarioConfig::bench();
    scenario.isp_machines = {machines};
    sim::World world{scenario};
    const auto trace = world.generate_day(0, 2);
    const auto config = bench::bench_config();

    obs::Span learn_span("bench/learn");
    core::Pipeline pipeline(world.psl(), world.activity(), world.pdns(), config);
    const auto day = pipeline.ingest_day(
        trace, world.blacklist().as_of(sim::BlacklistKind::kCommercial, 2),
        world.whitelist().all());
    const auto& graph = day.graph;
    pipeline.train(day);
    const double learn_seconds = learn_span.close();

    obs::Span classify_span("bench/classify");
    const auto report = pipeline.classify(day);
    const double classify_seconds = classify_span.close();

    table.add_row({std::to_string(machines), util::format_count(trace.records.size()),
                   util::format_count(graph.edge_count()),
                   util::format_double(learn_seconds, 2),
                   util::format_double(classify_seconds, 3),
                   util::format_count(static_cast<std::uint64_t>(
                       static_cast<double>(graph.edge_count()) / learn_seconds))});
  }
  std::printf("%s", table.render().c_str());
  std::printf("\nexpected shape: near-linear learn cost in machines/edges; classification\n"
              "stays a small fraction of learning at every scale (the paper's ~20x).\n");
  return 0;
}
