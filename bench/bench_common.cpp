#include "bench_common.h"

#include <cstdio>

#include "util/strings.h"

namespace seg::bench {

sim::World& bench_world() {
  static sim::World world{sim::ScenarioConfig::bench()};
  return world;
}

std::unique_ptr<InputBundle> make_bundle(sim::World& world, std::size_t train_isp,
                                         dns::Day train_day, std::size_t test_isp,
                                         dns::Day test_day, sim::BlacklistKind kind) {
  auto bundle = std::make_unique<InputBundle>();
  bundle->train_trace = world.generate_day(train_isp, train_day);
  bundle->test_trace = world.generate_day(test_isp, test_day);
  bundle->inputs.train_trace = &bundle->train_trace;
  bundle->inputs.test_trace = &bundle->test_trace;
  bundle->inputs.psl = &world.psl();
  bundle->inputs.activity = &world.activity();
  bundle->inputs.pdns = &world.pdns();
  bundle->inputs.train_blacklist = world.blacklist().as_of(kind, train_day);
  bundle->inputs.test_blacklist = world.blacklist().as_of(kind, test_day);
  bundle->inputs.whitelist = world.whitelist().all();
  return bundle;
}

core::SegugioConfig bench_config() {
  core::SegugioConfig config;
  config.forest.num_trees = 100;  // paper-style Random Forest
  config.forest.num_threads = 0;  // use all cores
  return config;
}

void print_header(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

const std::vector<double>& fpr_grid() {
  static const std::vector<double> grid = {0.0005, 0.001, 0.002, 0.005, 0.01};
  return grid;
}

void print_roc_operating_points(const std::string& label, const ml::RocCurve& roc,
                                const std::vector<double>& paper_tprs) {
  std::printf("%s (AUC %.4f; %zu malicious / %zu benign test domains)\n", label.c_str(),
              roc.auc(), roc.positives(), roc.negatives());
  std::printf("  %-12s %-10s %s\n", "FPR", "TPR", paper_tprs.empty() ? "" : "paper TPR");
  for (std::size_t i = 0; i < fpr_grid().size(); ++i) {
    const double fpr = fpr_grid()[i];
    std::printf("  %-12s %-10s", (util::format_double(100.0 * fpr, 2) + "%").c_str(),
                util::format_double(roc.tpr_at_fpr(fpr), 3).c_str());
    if (i < paper_tprs.size() && paper_tprs[i] >= 0.0) {
      std::printf(" ~%s", util::format_double(paper_tprs[i], 2).c_str());
    }
    std::printf("\n");
  }
}

}  // namespace seg::bench
