// Table III reproduction: analysis of Segugio's false positives.
//
// For each of the three Figure 6 experiments, pick the detection threshold
// that keeps overall FPs at ~0.05% with high TPs, then break the resulting
// FP domains down as the paper does: distinct FQDs and e2LDs, the share of
// the top-10 e2LDs, and how many FPs (i) were queried by a machine
// population >90% known-infected, (ii) resolved into previously abused IP
// space, (iii) were active <= 3 days, and (iv) were contacted by sandboxed
// malware — evidence that many "false" positives are real malware pages
// under free-registration zones (Figure 9).
#include <cstdio>

#include "bench_common.h"
#include "core/fp_analysis.h"
#include "util/strings.h"
#include "util/table.h"

int main() {
  using namespace seg;
  bench::print_header("Table III: analysis of Segugio's false positives");

  auto& world = bench::bench_world();
  const auto config = bench::bench_config();

  struct Spec {
    const char* name;
    std::size_t train_isp;
    dns::Day train_day;
    std::size_t test_isp;
    dns::Day test_day;
  };
  const Spec specs[] = {
      {"(a) ISP1 cross-day", 0, 2, 0, 15},
      {"(b) ISP2 cross-day", 1, 2, 1, 20},
      {"(c) cross-network", 0, 2, 1, 17},
  };

  util::TextTable table({"Metric", "(a)", "(b)", "(c)", "paper (a)/(b)/(c)"});
  std::vector<core::FpBreakdown> breakdowns;
  std::vector<double> tprs;
  std::vector<std::string> examples;
  for (const auto& spec : specs) {
    const auto bundle = bench::make_bundle(world, spec.train_isp, spec.train_day,
                                           spec.test_isp, spec.test_day);
    const auto result = core::run_cross_day(bundle->inputs, config);
    const auto roc = result.roc();
    // Paper operating point: <= 0.05% FPs with > 90% TPs. At our scale a
    // 0.05% budget rounds to ~2 domains, so we widen to 0.5% when needed to
    // get a measurable FP population, like-for-like across experiments.
    double budget = 0.0005;
    if (roc.tpr_at_fpr(budget) < 0.01 ||
        static_cast<double>(roc.negatives()) * budget < 4.0) {
      budget = 0.005;
    }
    const double threshold = roc.threshold_for_fpr(budget);
    tprs.push_back(roc.tpr_at_fpr(budget));
    breakdowns.push_back(core::analyze_false_positives(
        result, threshold,
        [&world](std::string_view name) { return world.sandbox().contacted_by_malware(name); }));
    if (examples.empty()) {
      examples = breakdowns.back().examples;
    }
  }

  const auto row = [&](const char* name, auto getter, const char* paper) {
    std::vector<std::string> cells{name};
    for (const auto& b : breakdowns) {
      cells.push_back(getter(b));
    }
    cells.push_back(paper);
    table.add_row(std::move(cells));
  };
  row("False-positive FQDs", [](const core::FpBreakdown& b) {
        return std::to_string(b.fqdn_count);
      },
      "724 / 807 / 786");
  row("Distinct e2LDs", [](const core::FpBreakdown& b) {
        return std::to_string(b.e2ld_count);
      },
      "401 / 410 / 451");
  row("Top-10 e2LD share", [](const core::FpBreakdown& b) {
        return util::format_double(100.0 * b.top10_share, 0) + "%";
      },
      "32% / 38% / 31%");
  row(">90% infected machines", [](const core::FpBreakdown& b) {
        return util::format_double(100.0 * b.frac_high_infected, 0) + "%";
      },
      "73% / 71% / 55%");
  row("Past abused IPs", [](const core::FpBreakdown& b) {
        return util::format_double(100.0 * b.frac_past_abused_ips, 0) + "%";
      },
      "86% / 85% / 80%");
  row("Active <= 3 days", [](const core::FpBreakdown& b) {
        return util::format_double(100.0 * b.frac_short_activity, 0) + "%";
      },
      "26% / 20% / 27%");
  row("Queried by sandboxed malware", [](const core::FpBreakdown& b) {
        return util::format_double(100.0 * b.frac_sandbox_contacted, 0) + "%";
      },
      "21% / 23% / 19%");
  std::printf("%s", table.render().c_str());

  std::printf("\nTPR at the chosen operating points: %.3f / %.3f / %.3f (paper: > 0.90)\n",
              tprs[0], tprs[1], tprs[2]);
  std::printf("\nexample FP domains (cf. Figure 9 — note the free-registration zones):\n");
  for (const auto& name : examples) {
    std::printf("  %s\n", name.c_str());
  }
  return 0;
}
