// Section VI reproduction: "probing" clients and their mitigation.
//
// The paper warns that clients running security tools which continuously
// probe large lists of malware-related domains introduce noise into the
// machine-domain graph, and says the authors verified (via heuristics)
// that their pruned graphs were free of such clients. We quantify both
// halves: a world where 0.4% of machines are probers, evaluated (1)
// pretending the problem doesn't exist, and (2) with the prober-filter
// heuristic enabled.
#include <cstdio>

#include "bench_common.h"
#include "util/strings.h"
#include "util/table.h"

int main() {
  using namespace seg;
  bench::print_header("Section VI: probing-client noise and the filtering heuristic");

  auto config_with_probers = sim::ScenarioConfig::bench();
  config_with_probers.prober_fraction = 0.004;  // ~32 / ~64 probers per ISP
  sim::World world{config_with_probers};

  const auto bundle = bench::make_bundle(world, 0, 2, 0, 15);

  util::TextTable table(
      {"setup", "AUC", "TPR@0.1%", "TPR@0.5%", "benign inf-frac", "probers removed"});

  // Mean infected-machine fraction measured on the benign test domains —
  // the direct contamination metric (probers plant "infected" evidence on
  // benign blogs and obscure sites they probe).
  const auto benign_contamination = [](const core::EvaluationResult& result) {
    double sum = 0.0;
    std::size_t count = 0;
    for (const auto& outcome : result.outcomes) {
      if (outcome.label == 0) {
        sum += outcome.features[features::kInfectedFraction];
        ++count;
      }
    }
    return count == 0 ? 0.0 : sum / static_cast<double>(count);
  };

  {
    auto config = bench::bench_config();
    config.prober_filter.reset();  // ignore the problem
    const auto result = core::run_cross_day(bundle->inputs, config);
    const auto roc = result.roc();
    table.add_row({"probers present, no filter", util::format_double(roc.auc(), 4),
                   util::format_double(roc.tpr_at_fpr(0.001), 3),
                   util::format_double(roc.tpr_at_fpr(0.005), 3),
                   util::format_double(benign_contamination(result), 4), "-"});
  }
  {
    auto config = bench::bench_config();
    config.prober_filter = graph::ProberFilterConfig{};
    const auto result = core::run_cross_day(bundle->inputs, config);
    const auto roc = result.roc();
    const double contamination = benign_contamination(result);
    // Count what the filter removes on the test graph.
    const auto raw = [&] {
      graph::GraphBuilder builder(world.psl());
      builder.add_trace(*bundle->inputs.test_trace);
      auto g = builder.build();
      graph::apply_labels(g, bundle->inputs.test_blacklist, bundle->inputs.whitelist);
      return g;
    }();
    graph::ProberFilterStats stats;
    graph::remove_probers(raw, graph::ProberFilterConfig{}, &stats);
    table.add_row({"probers present, filter on", util::format_double(roc.auc(), 4),
                   util::format_double(roc.tpr_at_fpr(0.001), 3),
                   util::format_double(roc.tpr_at_fpr(0.005), 3),
                   util::format_double(contamination, 4),
                   std::to_string(stats.machines_removed)});
  }
  {
    // Reference: the clean world used by all other benches.
    auto& clean = bench::bench_world();
    const auto clean_bundle = bench::make_bundle(clean, 0, 2, 0, 15);
    const auto result = core::run_cross_day(clean_bundle->inputs, bench::bench_config());
    const auto roc = result.roc();
    table.add_row({"no probers (reference)", util::format_double(roc.auc(), 4),
                   util::format_double(roc.tpr_at_fpr(0.001), 3),
                   util::format_double(roc.tpr_at_fpr(0.005), 3),
                   util::format_double(benign_contamination(result), 4), "-"});
  }
  std::printf("%s", table.render().c_str());
  std::printf("\nreading the table: probers contaminate the *benign* side — the mean\n"
              "infected-machine fraction of benign test domains rises ~50%% (they probe\n"
              "blogs and obscure sites 'for research'), and the filter restores the\n"
              "clean-world level. The higher TPR without the filter is an evaluation\n"
              "artifact, not a benefit: test positives are *already-listed* domains,\n"
              "which probers deliberately query, planting infected-looking evidence\n"
              "that genuinely new C&C domains would never receive in deployment.\n"
              "\npaper (Section VI): probing clients 'may introduce noise into our\n"
              "bipartite machine-domain graph, potentially degrading Segugio's\n"
              "accuracy'; the deployment used heuristics to keep graphs free of them.\n");
  return 0;
}
