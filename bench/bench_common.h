// Shared plumbing for the paper-reproduction benchmark binaries.
//
// Every bench builds the same deterministic bench-scale world (about 1:400
// of the paper's ISP populations; see DESIGN.md for the substitution
// rationale), runs one experiment, and prints the corresponding table or
// figure side by side with the paper's reported values where the paper
// gives any.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/experiment.h"
#include "ml/metrics.h"
#include "sim/world.h"

namespace seg::bench {

/// The shared bench-scale world (constructed on first use).
sim::World& bench_world();

/// Owns the traces an ExperimentInputs points into.
struct InputBundle {
  dns::DayTrace train_trace;
  dns::DayTrace test_trace;
  core::ExperimentInputs inputs;
};

/// Generates traces and wires an ExperimentInputs. Blacklist kind applies
/// to both the train-day and test-day label sets.
std::unique_ptr<InputBundle> make_bundle(sim::World& world, std::size_t train_isp,
                                         dns::Day train_day, std::size_t test_isp,
                                         dns::Day test_day,
                                         sim::BlacklistKind kind = sim::BlacklistKind::kCommercial);

/// Default experiment configuration for the bench scale.
core::SegugioConfig bench_config();

/// Prints a section header.
void print_header(const std::string& title);

/// Prints TPR at the standard FP grid; `paper` (if non-empty, same length
/// as the grid) is shown alongside.
void print_roc_operating_points(const std::string& label, const ml::RocCurve& roc,
                                const std::vector<double>& paper_tprs = {});

/// The standard FP grid used by print_roc_operating_points.
const std::vector<double>& fpr_grid();

}  // namespace seg::bench
