// Figure 8 reproduction: cross-malware-family tests.
//
// Blacklisted domains are partitioned into balanced folds *by malware
// family*; every test domain belongs to a family never used in training.
// Paper headline: >= 85% TPs at 0.1% FPs — new families are detectable
// thanks to multi-infections, recent-activity and IP-abuse evidence. The
// paper also reports that removing the machine-behavior features (F1)
// makes the cross-family detection rate drop significantly; we rerun the
// folds without F1 to show the same effect.
#include <cstdio>
#include <unordered_map>

#include "bench_common.h"
#include "features/feature_config.h"

int main() {
  using namespace seg;
  bench::print_header("Figure 8: cross-malware-family tests (ISP1)");

  auto& world = bench::bench_world();
  const auto bundle = bench::make_bundle(world, 0, 2, 0, 15);

  std::unordered_map<std::string, std::uint32_t> family_of;
  for (const auto& record : world.blacklist().records()) {
    family_of.emplace(record.name, record.family);
  }
  std::printf("families in ground truth: %zu (the paper had >1000 at full scale)\n\n",
              world.blacklist().family_count());

  core::CrossFamilyOptions options;
  options.folds = 5;

  {
    const auto folds = core::run_cross_family(bundle->inputs, bench::bench_config(),
                                              family_of, options);
    const auto merged = core::EvaluationResult::merge(folds);
    bench::print_roc_operating_points("All features (pooled over 5 family folds)",
                                      merged.roc(), {0.80, 0.85, 0.88, 0.92, 0.96});
  }
  std::printf("\n");
  {
    auto config = bench::bench_config();
    config.feature_subset =
        features::feature_indices_excluding(features::FeatureGroup::kMachineBehavior);
    const auto folds = core::run_cross_family(bundle->inputs, config, family_of, options);
    const auto merged = core::EvaluationResult::merge(folds);
    bench::print_roc_operating_points("No machine-behavior features (F1 removed)",
                                      merged.roc());
  }
  std::printf("\npaper: >= 85%% TPs at 0.1%% FPs with all features; dropping F1 lowers\n"
              "the detection rate significantly at low FP rates.\n");
  return 0;
}
