// Section VI reproduction: infected-machine enumeration.
//
// The paper argues that even if attackers rotate C&C domains faster than
// blacklists react, Segugio "can detect both malware-control domains and
// the infected machines that query them at the same time", so infections
// can still be enumerated for remediation. We measure that directly: on a
// detection day, how many of the ISP's (ground-truth) infected machines
// does the worklist contain, at what precision — and how many of them a
// blacklist-only workflow would have missed.
#include <cstdio>

#include "bench_common.h"
#include "core/infection_report.h"
#include "util/strings.h"
#include "util/table.h"

int main() {
  using namespace seg;
  bench::print_header("Section VI: infected-machine enumeration (remediation worklist)");

  auto& world = bench::bench_world();
  const auto config = bench::bench_config();

  util::TextTable table({"ISP/day", "worklist", "true infected on list", "precision",
                         "recall", "blacklist-only recall", "newly implicated"});
  for (std::size_t isp = 0; isp < world.isp_count(); ++isp) {
    const dns::Day train_day = 2;
    const dns::Day test_day = 15;
    const auto train_trace = world.generate_day(isp, train_day);
    const auto test_trace = world.generate_day(isp, test_day);
    const auto train_graph =
        core::Segugio::prepare_graph(
            train_trace, world.psl(),
            world.blacklist().as_of(sim::BlacklistKind::kCommercial, train_day),
            world.whitelist().all(), config.prepare_options())
            .graph;
    core::Segugio segugio(config);
    segugio.train(train_graph, world.activity(), world.pdns());

    const auto test_graph =
        core::Segugio::prepare_graph(
            test_trace, world.psl(),
            world.blacklist().as_of(sim::BlacklistKind::kCommercial, test_day),
            world.whitelist().all(), config.prepare_options())
            .graph;
    const auto detections = segugio.classify(test_graph, world.activity(), world.pdns());
    const double threshold = 0.7;
    const auto report = core::enumerate_infections(test_graph, detections, threshold);

    std::size_t true_on_list = 0;
    std::size_t blacklist_only_true = 0;
    for (const auto& machine : report.machines) {
      const bool infected = world.is_infected_machine(machine.name);
      true_on_list += infected ? 1 : 0;
      if (!machine.known_domains.empty() && infected) {
        ++blacklist_only_true;
      }
    }
    const auto total_infected = world.infected_machine_count(isp);
    table.add_row(
        {"ISP" + std::to_string(isp + 1) + " day " + std::to_string(test_day),
         std::to_string(report.machines.size()), std::to_string(true_on_list),
         util::format_double(report.machines.empty()
                                 ? 0.0
                                 : 100.0 * static_cast<double>(true_on_list) /
                                       static_cast<double>(report.machines.size()),
                             1) + "%",
         util::format_double(
             100.0 * static_cast<double>(true_on_list) / static_cast<double>(total_infected),
             1) + "%",
         util::format_double(100.0 * static_cast<double>(blacklist_only_true) /
                                 static_cast<double>(total_infected),
                             1) + "%",
         std::to_string(report.newly_implicated)});
  }
  std::printf("%s", table.render().c_str());
  std::printf("\nreading the table: Segugio's worklist covers more of the truly infected\n"
              "population than the blacklist alone, and the 'newly implicated' machines\n"
              "are infections the blacklist workflow would have missed that day.\n");
  return 0;
}
