// Figure 7 reproduction: feature-group ablations.
//
// Train/test with one of the three feature groups removed at a time:
//   "No IP"       — without the IP-abuse features (F3);
//   "No machine"  — without the machine-behavior features (F1);
//   "No activity" — without the domain-activity features (F2);
// versus all features. The paper's findings: even without IP-abuse
// features Segugio exceeds 80% TPs below 0.2% FPs; removing the machine
// behavior features causes a noticeable TP drop at FP rates below 0.5%;
// all three groups together are best.
#include <cstdio>

#include "bench_common.h"
#include "features/feature_config.h"

int main() {
  using namespace seg;
  bench::print_header("Figure 7: feature-group ablation (ISP1 cross-day)");

  auto& world = bench::bench_world();
  const auto bundle = bench::make_bundle(world, 0, 2, 0, 15);

  struct Variant {
    const char* name;
    std::vector<std::size_t> subset;
  };
  const Variant variants[] = {
      {"All features", {}},
      {"No IP (F3 removed)",
       features::feature_indices_excluding(features::FeatureGroup::kIpAbuse)},
      {"No machine (F1 removed)",
       features::feature_indices_excluding(features::FeatureGroup::kMachineBehavior)},
      {"No activity (F2 removed)",
       features::feature_indices_excluding(features::FeatureGroup::kDomainActivity)},
  };

  double all_auc = 0.0;
  for (const auto& variant : variants) {
    auto config = bench::bench_config();
    config.feature_subset = variant.subset;
    const auto result = core::run_cross_day(bundle->inputs, config);
    const auto roc = result.roc();
    bench::print_roc_operating_points(variant.name, roc);
    if (variant.subset.empty()) {
      all_auc = roc.auc();
    } else if (roc.auc() > all_auc + 1e-9) {
      std::printf("  note: ablation beat the full model on AUC this run\n");
    }
    std::printf("\n");
  }
  std::printf("paper: 'No IP' still >80%% TPs below 0.2%% FPs; removing the machine\n"
              "behavior features causes the largest TP drop at low FP rates; the\n"
              "combination of all three groups is best.\n");
  return 0;
}
