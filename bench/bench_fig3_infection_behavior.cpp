// Figure 3 reproduction: distribution of the number of malware-control
// domains queried per infected machine in one day of traffic.
//
// Paper headline: about 70% of known malware-infected machines query more
// than one malware-control domain, and it is extremely unlikely that a
// machine queries more than twenty. The paper also verified the shape is
// consistent across days and ISPs — we print both ISPs and two days each.
#include <cstdio>
#include <set>
#include <string>
#include <map>

#include "bench_common.h"
#include "util/histogram.h"
#include "util/strings.h"

int main() {
  using namespace seg;
  bench::print_header(
      "Figure 3: malware-control domains queried per infected machine");

  auto& world = bench::bench_world();
  for (std::size_t isp = 0; isp < world.isp_count(); ++isp) {
    for (const dns::Day day : {2, 20}) {
      const auto trace = world.generate_day(isp, day);
      const auto blacklist = world.blacklist().as_of(sim::BlacklistKind::kCommercial, day);
      // Machines are "known infected" when they query a blacklisted domain;
      // count how many distinct blacklisted domains each queries.
      // Ordered map: the histogram below iterates it while printing, and
      // deterministic iteration keeps the rendered figure byte-stable.
      std::map<std::string, std::set<std::string>> per_machine;
      for (const auto& record : trace.records) {
        if (blacklist.contains(record.qname)) {
          per_machine[record.machine].insert(record.qname);
        }
      }
      util::Histogram histogram;
      for (const auto& [machine, domains] : per_machine) {
        histogram.add(domains.size());
      }
      std::printf("\nISP%zu day %d: %zu infected machines\n", isp + 1, day,
                  per_machine.size());
      std::printf("%s", histogram.render(16, 40).c_str());
      std::printf("  fraction querying > 1 malware domain: %.1f%%   (paper: ~70%%)\n",
                  100.0 * histogram.fraction_above(1));
      std::printf("  fraction querying > 20:               %.2f%%   (paper: ~0%%)\n",
                  100.0 * histogram.fraction_above(20));
      std::printf("  99th percentile: %llu domains\n",
                  static_cast<unsigned long long>(histogram.quantile(0.99)));
    }
  }
  return 0;
}
