// Ablation: observation-window length.
//
// The paper fixes the observation window T to one day ("e.g., one day")
// and builds one graph per day. The graph builder also supports multi-day
// windows (traces union; features measured at the window's end), so we
// quantify what longer training windows buy: denser co-occurrence evidence
// per domain versus staler behavior.
#include <cstdio>

#include "bench_common.h"
#include "graph/labeling.h"
#include "util/strings.h"
#include "util/table.h"

int main() {
  using namespace seg;
  bench::print_header("Ablation: training observation window T (test day 15, ISP1)");

  auto& world = bench::bench_world();
  const auto config = bench::bench_config();

  // Fixed test day.
  const dns::Day test_day = 15;
  const auto test_trace = world.generate_day(0, test_day);

  util::TextTable table({"train window", "train domains", "train malware", "AUC",
                         "TPR@0.1%", "TPR@1%"});
  for (const int window : {1, 2, 3}) {
    // Window ends at day 2 + window - 1 (still 12+ days before the test).
    std::vector<dns::DayTrace> traces;
    for (int k = 0; k < window; ++k) {
      traces.push_back(world.generate_day(0, 2 + k));
    }
    const dns::Day train_end = 2 + window - 1;
    const auto blacklist = world.blacklist().as_of(sim::BlacklistKind::kCommercial, train_end);

    graph::GraphBuilder builder(world.psl());
    for (const auto& trace : traces) {
      builder.add_trace(trace);
    }
    auto train_graph = builder.build();
    graph::apply_labels(train_graph, blacklist, world.whitelist().all());
    train_graph = graph::prune(train_graph, config.pruning);

    core::Segugio segugio(config);
    segugio.train(train_graph, world.activity(), world.pdns());

    // Standard hidden-label evaluation on the test day.
    auto test_graph = core::Segugio::prepare_graph(
                          test_trace, world.psl(),
                          world.blacklist().as_of(sim::BlacklistKind::kCommercial, test_day),
                          world.whitelist().all(), config.prepare_options())
                          .graph;
    const features::FeatureExtractor probe(test_graph, world.activity(), world.pdns(),
                                           config.features);
    std::vector<int> labels;
    std::vector<double> scores;
    for (graph::DomainId d = 0; d < test_graph.domain_count(); ++d) {
      const auto label = test_graph.domain_label(d);
      if (label == graph::Label::kUnknown) {
        continue;
      }
      labels.push_back(label == graph::Label::kMalware ? 1 : 0);
      scores.push_back(segugio.score(probe.extract_hiding_label(d)));
    }
    const auto roc = ml::RocCurve::compute(labels, scores);
    table.add_row({std::to_string(window) + " day(s)",
                   util::format_count(train_graph.domain_count()),
                   std::to_string(train_graph.count_domains_with(graph::Label::kMalware)),
                   util::format_double(roc.auc(), 4),
                   util::format_double(roc.tpr_at_fpr(0.001), 3),
                   util::format_double(roc.tpr_at_fpr(0.01), 3)});
  }
  std::printf("%s", table.render().c_str());
  std::printf("\nexpected shape: one day already suffices (the paper's operating point);\n"
              "longer windows add labeled malware domains and co-occurrence density\n"
              "with mild gains, at proportionally higher graph cost.\n");
  return 0;
}
