// Figure 11 reproduction: early detection of malware-control domains.
//
// Four consecutive days from each ISP (8 train/detect days total). Each
// day Segugio trains on the day's traffic with the detection threshold set
// for <= 0.1% FPs (calibrated on the day's own known domains with hidden
// labels), classifies the still-unknown domains, and files detections. A
// detection is confirmed when the commercial blacklist adds the domain
// within the following 35 days; the histogram of (blacklist day −
// detection day) is the figure. Paper: 38 confirmed domains over 8 days,
// many confirmed days or weeks later.
#include <cstdio>
#include <map>
#include <string>

#include "bench_common.h"
#include "core/calibration.h"
#include "core/pipeline.h"
#include "util/histogram.h"

int main() {
  using namespace seg;
  bench::print_header("Figure 11: early detection vs. the blacklist");

  auto& world = bench::bench_world();
  const auto config = bench::bench_config();
  constexpr dns::Day kLookahead = 35;
  constexpr double kFprBudget = 0.001;

  std::map<std::string, dns::Day> flagged;  // first detection day
  for (std::size_t isp = 0; isp < world.isp_count(); ++isp) {
    // One streaming session per ISP: the pipeline carries the name
    // dictionary and sharded history stores across the four days.
    core::Pipeline pipeline(world.psl(), config);
    for (dns::Day day = 10; day <= 13; ++day) {
      const auto trace = world.generate_day(isp, day);
      const auto blacklist = world.blacklist().as_of(sim::BlacklistKind::kCommercial, day);
      pipeline.absorb_history(world.activity(), world.pdns());
      core::PreparedDay prepared;
      dns::DayTraceSource source(trace);
      pipeline.ingest_stream(
          source, [&](dns::Day) -> const graph::NameSet& { return blacklist; },
          world.whitelist().all(),
          [&](core::PreparedDay&& ingested) { prepared = std::move(ingested); });
      const auto& graph = prepared.graph;
      pipeline.train(prepared);

      // Calibrate the threshold on the training day's known domains.
      const double threshold =
          core::calibrate_threshold(pipeline.detector(), graph, pipeline.activity(),
                                    pipeline.pdns(), kFprBudget)
              .threshold;

      const auto report = pipeline.classify(prepared);
      std::size_t new_flags = 0;
      for (const auto& scored : report.scores) {
        if (scored.score >= threshold && !flagged.contains(scored.name)) {
          flagged.emplace(scored.name, day);
          ++new_flags;
        }
      }
      std::printf("ISP%zu day %d: threshold %.3f, %zu unknown domains, %zu new detections\n",
                  isp + 1, day, threshold, report.scores.size(), new_flags);
    }
  }

  util::Histogram gaps;
  std::size_t confirmed = 0;
  std::size_t flagged_true_malware = 0;
  for (const auto& [name, detect_day] : flagged) {
    if (world.is_true_malware(name)) {
      ++flagged_true_malware;
    }
    const auto listed = world.blacklist().listed_day(name, sim::BlacklistKind::kCommercial);
    if (listed.has_value() && *listed > detect_day && *listed <= detect_day + kLookahead) {
      ++confirmed;
      gaps.add(static_cast<std::uint64_t>(*listed - detect_day));
    }
  }
  std::printf("\ndetections filed: %zu (of which %zu are true malware-control domains)\n",
              flagged.size(), flagged_true_malware);
  std::printf("confirmed by the blacklist within %d days: %zu (paper: 38)\n", kLookahead,
              confirmed);
  std::printf("\nhistogram: days between Segugio's detection and blacklist inclusion\n");
  std::printf("%s", gaps.render(20, 40).c_str());
  if (!gaps.empty()) {
    std::printf("median lead time: %llu days; max: %llu days\n",
                static_cast<unsigned long long>(gaps.quantile(0.5)),
                static_cast<unsigned long long>(gaps.max_value()));
  }
  return 0;
}
