// Ablation: classifier choice and forest size.
//
// The paper names Random Forest and Logistic Regression as candidate
// classifiers (Section II-A3). We compare them on the ISP1 cross-day task,
// plus a sweep over forest sizes, and report the co-occurrence baseline
// (Sato et al. [21]) as a floor — it is what the F1 infected-fraction
// feature achieves on its own.
#include <cstdio>

#include "baselines/cooccurrence.h"
#include "bench_common.h"
#include "graph/labeling.h"
#include "util/strings.h"
#include "util/table.h"

int main() {
  using namespace seg;
  bench::print_header("Ablation: classifier choice (ISP1 cross-day)");

  auto& world = bench::bench_world();
  const auto bundle = bench::make_bundle(world, 0, 2, 0, 15);

  util::TextTable table({"classifier", "AUC", "TPR@0.1%", "TPR@0.5%", "TPR@1%", "fit s"});

  for (const std::size_t trees : {10, 50, 100, 200}) {
    auto config = bench::bench_config();
    config.forest.num_trees = trees;
    const auto result = core::run_cross_day(bundle->inputs, config);
    const auto roc = result.roc();
    table.add_row({"random forest, " + std::to_string(trees) + " trees",
                   util::format_double(roc.auc(), 4),
                   util::format_double(roc.tpr_at_fpr(0.001), 3),
                   util::format_double(roc.tpr_at_fpr(0.005), 3),
                   util::format_double(roc.tpr_at_fpr(0.01), 3),
                   util::format_double(result.timings.train_fit_seconds, 2)});
  }
  {
    auto config = bench::bench_config();
    config.classifier = core::ClassifierKind::kLogisticRegression;
    const auto result = core::run_cross_day(bundle->inputs, config);
    const auto roc = result.roc();
    table.add_row({"logistic regression", util::format_double(roc.auc(), 4),
                   util::format_double(roc.tpr_at_fpr(0.001), 3),
                   util::format_double(roc.tpr_at_fpr(0.005), 3),
                   util::format_double(roc.tpr_at_fpr(0.01), 3),
                   util::format_double(result.timings.train_fit_seconds, 2)});
  }
  {
    // Co-occurrence floor: score test domains by infected-machine fraction
    // on the hidden-label test graph.
    const auto config = bench::bench_config();
    const auto result = core::run_cross_day(bundle->inputs, config);
    std::vector<int> labels;
    std::vector<double> scores;
    for (const auto& outcome : result.outcomes) {
      labels.push_back(outcome.label);
      scores.push_back(outcome.features[features::kInfectedFraction]);
    }
    const auto roc = ml::RocCurve::compute(labels, scores);
    table.add_row({"co-occurrence baseline [21]", util::format_double(roc.auc(), 4),
                   util::format_double(roc.tpr_at_fpr(0.001), 3),
                   util::format_double(roc.tpr_at_fpr(0.005), 3),
                   util::format_double(roc.tpr_at_fpr(0.01), 3), "-"});
  }
  std::printf("%s", table.render().c_str());
  std::printf("\nexpected shape: forests dominate the linear model at low FP rates;\n"
              "the single-signal co-occurrence baseline trails both (the paper's\n"
              "argument for combining F1 with F2/F3).\n");
  return 0;
}
