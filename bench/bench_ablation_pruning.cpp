// Ablation: what the conservative pruning rules buy.
//
// DESIGN.md calls out pruning as a design choice worth ablating: the paper
// prunes to "boost performance and reduce noise". We run the ISP1
// cross-day experiment with (a) the standard rules, (b) pruning disabled
// as far as the configuration allows, and (c) aggressive pruning, and
// report accuracy, graph sizes, and wall time.
#include <cstdio>

#include "bench_common.h"
#include "util/strings.h"
#include "util/table.h"

int main() {
  using namespace seg;
  bench::print_header("Ablation: graph pruning (ISP1 cross-day)");

  auto& world = bench::bench_world();
  const auto bundle = bench::make_bundle(world, 0, 2, 0, 15);

  struct Variant {
    const char* name;
    graph::PruningConfig pruning;
  };
  Variant variants[3];
  variants[0] = {"paper rules (scaled)", core::SegugioConfig::scaled_pruning_defaults()};
  variants[1] = {"minimal pruning", {}};
  variants[1].pruning.inactive_machine_max_degree = 0;  // R1 off
  variants[1].pruning.min_domain_machines = 1;          // R3 off
  variants[1].pruning.proxy_degree_percentile = 1.0;    // R2 as weak as allowed
  variants[1].pruning.popular_e2ld_fraction = 1.0;      // R4 as weak as allowed
  variants[2] = {"aggressive", core::SegugioConfig::scaled_pruning_defaults()};
  variants[2].pruning.inactive_machine_max_degree = 10;
  variants[2].pruning.min_domain_machines = 3;
  variants[2].pruning.popular_e2ld_fraction = 0.2;

  util::TextTable table({"variant", "domains", "edges", "AUC", "TPR@0.1%", "TPR@1%",
                         "train+test s"});
  for (const auto& variant : variants) {
    auto config = bench::bench_config();
    config.pruning = variant.pruning;
    const auto result = core::run_cross_day(bundle->inputs, config);
    const auto roc = result.roc();
    table.add_row({variant.name, util::format_count(result.test_prune.domains_after),
                   util::format_count(result.test_prune.edges_after),
                   util::format_double(roc.auc(), 4),
                   util::format_double(roc.tpr_at_fpr(0.001), 3),
                   util::format_double(roc.tpr_at_fpr(0.01), 3),
                   util::format_double(result.train_seconds + result.test_seconds, 2)});
  }
  std::printf("%s", table.render().c_str());
  std::printf("\nexpected shape: minimal pruning keeps noise nodes and costs time with\n"
              "no accuracy win; the paper's conservative rules shrink the graph ~25%%\n"
              "without hurting detection.\n");
  return 0;
}
