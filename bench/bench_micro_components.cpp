// Micro-benchmarks of the hot components (google-benchmark).
//
// These are the per-operation costs behind the Section IV-G pipeline
// numbers: PSL e2LD extraction, graph construction, pruning, passive-DNS
// range queries, per-domain feature measurement, and forest scoring.
#include <benchmark/benchmark.h>

#include "dns/domain_name.h"

#include "core/segugio.h"
#include "features/extractor.h"
#include "graph/labeling.h"
#include "sim/world.h"

namespace {

using namespace seg;

sim::World& micro_world() {
  static sim::World world{sim::ScenarioConfig::small()};
  return world;
}

const dns::DayTrace& micro_trace() {
  static const dns::DayTrace trace = micro_world().generate_day(0, 0);
  return trace;
}

const graph::MachineDomainGraph& micro_graph() {
  static const graph::MachineDomainGraph graph = [] {
    auto& world = micro_world();
    graph::GraphBuilder builder(world.psl());
    builder.add_trace(micro_trace());
    auto g = builder.build();
    graph::apply_labels(g, world.blacklist().as_of(sim::BlacklistKind::kCommercial, 0),
                        world.whitelist().all());
    return g;
  }();
  return graph;
}

void BM_PslRegistrableDomain(benchmark::State& state) {
  const auto psl = dns::PublicSuffixList::with_default_rules();
  const char* names[] = {"www.example.com", "a.b.c.co.uk", "x.blogspot.com",
                         "deep.sub.narod.ru", "plain.de"};
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(psl.registrable_domain(names[i++ % std::size(names)]));
  }
}
BENCHMARK(BM_PslRegistrableDomain);

void BM_DomainNameParse(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(dns::DomainName::parse("WwW.Some-Host.Example.COM."));
  }
}
BENCHMARK(BM_DomainNameParse);

void BM_GraphBuild(benchmark::State& state) {
  auto& world = micro_world();
  const auto& trace = micro_trace();
  for (auto _ : state) {
    graph::GraphBuilder builder(world.psl());
    builder.add_trace(trace);
    benchmark::DoNotOptimize(builder.build());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(trace.records.size()));
}
BENCHMARK(BM_GraphBuild);

void BM_GraphPrune(benchmark::State& state) {
  const auto& graph = micro_graph();
  const auto config = core::SegugioConfig::scaled_pruning_defaults();
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::prune(graph, config));
  }
}
BENCHMARK(BM_GraphPrune);

void BM_PdnsRangeQuery(benchmark::State& state) {
  const auto& pdns = micro_world().pdns();
  const auto ip = dns::IpV4::parse("185.0.0.1");
  for (auto _ : state) {
    benchmark::DoNotOptimize(pdns.ip_malware_associated(ip, -40, -1));
    benchmark::DoNotOptimize(pdns.prefix_malware_associated(ip, -40, -1));
  }
}
BENCHMARK(BM_PdnsRangeQuery);

void BM_FeatureExtraction(benchmark::State& state) {
  auto& world = micro_world();
  const auto& graph = micro_graph();
  const features::FeatureExtractor extractor(graph, world.activity(), world.pdns());
  graph::DomainId d = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(extractor.extract(d));
    d = (d + 1) % static_cast<graph::DomainId>(graph.domain_count());
  }
}
BENCHMARK(BM_FeatureExtraction);

void BM_ForestScore(benchmark::State& state) {
  auto& world = micro_world();
  const auto& graph = micro_graph();
  const features::FeatureExtractor extractor(graph, world.activity(), world.pdns());
  core::SegugioConfig config;
  config.forest.num_trees = static_cast<std::size_t>(state.range(0));
  config.forest.num_threads = 1;
  core::Segugio segugio(config);
  segugio.train(graph, world.activity(), world.pdns());
  const auto features = extractor.extract(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(segugio.score(features));
  }
}
BENCHMARK(BM_ForestScore)->Arg(10)->Arg(100);

}  // namespace

BENCHMARK_MAIN();
