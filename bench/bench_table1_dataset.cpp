// Table I reproduction: per-day dataset sizes (before graph pruning).
//
// The paper samples four days of April 2013 per ISP and reports, for each,
// the total/benign/malware domain counts, total/malware machine counts,
// and edge counts. Our synthetic ISPs run at roughly 1:400 of the paper's
// machine populations, so the interesting check is the *ratios* (benign
// share of domains, malware machine share, edges per machine), printed
// next to the paper's.
#include <cstdio>

#include "bench_common.h"
#include "graph/labeling.h"
#include "util/strings.h"
#include "util/table.h"

namespace {

struct PaperRow {
  const char* source;
  double domains;  // millions
  double benign_domains;
  double malware_domains;  // absolute
  double machines;         // millions
  double malware_machines; // absolute
  double edges;            // millions
};

// Table I of the paper.
constexpr PaperRow kPaperRows[] = {
    {"ISP1 Day1 (Apr.02)", 9.0e6, 1.8e6, 13239, 1.6e6, 50339, 319.9e6},
    {"ISP1 Day2 (Apr.15)", 9.0e6, 1.9e6, 20277, 1.6e6, 49944, 324.2e6},
    {"ISP1 Day3 (Apr.23)", 8.2e6, 1.8e6, 18020, 1.6e6, 47506, 310.7e6},
    {"ISP1 Day4 (Apr.28)", 10.0e6, 1.9e6, 11597, 1.6e6, 44299, 312.3e6},
    {"ISP2 Day1 (Apr.08)", 10.2e6, 2.0e6, 15706, 4.0e6, 78990, 352.6e6},
    {"ISP2 Day2 (Apr.20)", 9.8e6, 2.0e6, 14279, 3.9e6, 74098, 347.1e6},
    {"ISP2 Day3 (Apr.26)", 9.6e6, 2.0e6, 36758, 3.9e6, 69773, 333.7e6},
    {"ISP2 Day4 (Apr.30)", 10.6e6, 2.2e6, 13467, 4.0e6, 72519, 355.6e6},
};

}  // namespace

int main() {
  using namespace seg;
  bench::print_header("Table I: experiment data (before graph pruning)");

  auto& world = bench::bench_world();
  // The paper samples four days per ISP across a month; we sample four
  // days across the horizon.
  const dns::Day days[4] = {2, 15, 23, 28};

  util::TextTable table({"Traffic Source", "Domains", "Benign", "Malware", "Machines",
                         "Mal.Machines", "Edges"});
  std::size_t paper_index = 0;
  double measured_benign_share = 0.0;
  double paper_benign_share = 0.0;
  double measured_malmach_share = 0.0;
  double paper_malmach_share = 0.0;
  for (std::size_t isp = 0; isp < world.isp_count(); ++isp) {
    for (const auto day : days) {
      const auto trace = world.generate_day(isp, day);
      graph::GraphBuilder builder(world.psl());
      builder.add_trace(trace);
      auto graph = builder.build();
      graph::apply_labels(graph, world.blacklist().as_of(sim::BlacklistKind::kCommercial, day),
                          world.whitelist().all());
      const auto stats = graph::compute_stats(graph);
      table.add_row({"ISP" + std::to_string(isp + 1) + " Day " + std::to_string(day),
                     util::format_count(stats.domains), util::format_count(stats.benign_domains),
                     util::format_count(stats.malware_domains),
                     util::format_count(stats.machines),
                     util::format_count(stats.malware_machines),
                     util::format_count(stats.edges)});
      const auto& paper = kPaperRows[paper_index++];
      measured_benign_share +=
          static_cast<double>(stats.benign_domains) / static_cast<double>(stats.domains);
      paper_benign_share += paper.benign_domains / paper.domains;
      measured_malmach_share +=
          static_cast<double>(stats.malware_machines) / static_cast<double>(stats.machines);
      paper_malmach_share += paper.malware_machines / paper.machines;
    }
  }
  std::printf("%s", table.render().c_str());

  std::printf("\npaper (Table I), for reference:\n");
  util::TextTable paper_table({"Traffic Source", "Domains", "Benign", "Malware", "Machines",
                               "Mal.Machines", "Edges"});
  for (const auto& row : kPaperRows) {
    paper_table.add_row({row.source, util::format_count(static_cast<std::uint64_t>(row.domains)),
                         util::format_count(static_cast<std::uint64_t>(row.benign_domains)),
                         util::format_count(static_cast<std::uint64_t>(row.malware_domains)),
                         util::format_count(static_cast<std::uint64_t>(row.machines)),
                         util::format_count(static_cast<std::uint64_t>(row.malware_machines)),
                         util::format_count(static_cast<std::uint64_t>(row.edges))});
  }
  std::printf("%s", paper_table.render().c_str());

  const double n = static_cast<double>(std::size(kPaperRows));
  std::printf("\nshape checks (averages over the 8 days):\n");
  std::printf("  benign share of domains:   measured %.1f%%  paper %.1f%%\n",
              100.0 * measured_benign_share / n, 100.0 * paper_benign_share / n);
  std::printf("  malware share of machines: measured %.2f%%  paper %.2f%%\n",
              100.0 * measured_malmach_share / n, 100.0 * paper_malmach_share / n);
  std::printf("  (absolute sizes are ~1:400 of the paper's ISPs by design)\n");
  return 0;
}
