// Section IV-G reproduction: pipeline efficiency.
//
// The paper reports (for ISP-scale data on their hardware): learning —
// graph build, annotation/labeling, pruning, classifier training —
// took about 60 minutes per day of traffic; measuring features and
// classifying all unknown domains took about 3 minutes. We time the same
// stages at our 1:400 scale and report per-stage wall time plus simple
// per-node throughput numbers, which are the scale-free comparison.
#include <cstdio>

#include "bench_common.h"
#include "graph/labeling.h"
#include "util/stopwatch.h"

int main() {
  using namespace seg;
  bench::print_header("Section IV-G: pipeline efficiency");

  auto& world = bench::bench_world();
  const auto config = bench::bench_config();

  double graph_seconds = 0.0;
  double prune_seconds = 0.0;
  double train_feature_seconds = 0.0;
  double fit_seconds = 0.0;
  double classify_seconds = 0.0;
  std::size_t days = 0;
  std::size_t unknown_domains = 0;
  std::size_t edges = 0;

  for (std::size_t isp = 0; isp < world.isp_count(); ++isp) {
    for (dns::Day day = 10; day <= 13; ++day) {
      const auto trace = world.generate_day(isp, day);
      const auto blacklist = world.blacklist().as_of(sim::BlacklistKind::kCommercial, day);

      util::Stopwatch watch;
      graph::GraphBuilder builder(world.psl());
      builder.add_trace(trace);
      auto unpruned = builder.build();
      graph::apply_labels(unpruned, blacklist, world.whitelist().all());
      graph_seconds += watch.elapsed_seconds();

      watch.restart();
      const auto graph = graph::prune(unpruned, config.pruning);
      prune_seconds += watch.elapsed_seconds();

      core::Segugio segugio(config);
      segugio.train(graph, world.activity(), world.pdns());
      train_feature_seconds += segugio.timings().train_feature_seconds;
      fit_seconds += segugio.timings().train_fit_seconds;

      watch.restart();
      const auto report = segugio.classify(graph, world.activity(), world.pdns());
      classify_seconds += watch.elapsed_seconds();

      unknown_domains += report.scores.size();
      edges += unpruned.edge_count();
      ++days;
    }
  }

  const auto avg = [&](double total) { return total / static_cast<double>(days); };
  std::printf("averages over %zu simulated ISP-days:\n", days);
  std::printf("  graph build + labeling : %8.3f s\n", avg(graph_seconds));
  std::printf("  pruning                : %8.3f s\n", avg(prune_seconds));
  std::printf("  training features      : %8.3f s\n", avg(train_feature_seconds));
  std::printf("  classifier fit         : %8.3f s\n", avg(fit_seconds));
  std::printf("  -- learning total      : %8.3f s   (paper: ~60 min at ~400x scale)\n",
              avg(graph_seconds + prune_seconds + train_feature_seconds + fit_seconds));
  std::printf("  classify all unknowns  : %8.3f s   (paper: ~3 min at ~400x scale)\n",
              avg(classify_seconds));
  std::printf("\nthroughput:\n");
  std::printf("  edges ingested/s (build+label):   %.0f\n",
              static_cast<double>(edges) / graph_seconds);
  std::printf("  unknown domains classified/s:     %.0f\n",
              static_cast<double>(unknown_domains) / classify_seconds);
  std::printf("\nshape check: classification is ~%0.fx faster than learning, matching the\n"
              "paper's 60min-vs-3min split (about 20x).\n",
              avg(graph_seconds + prune_seconds + train_feature_seconds + fit_seconds) /
                  avg(classify_seconds));
  return 0;
}
