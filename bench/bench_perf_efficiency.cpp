// Section IV-G reproduction: pipeline efficiency.
//
// The paper reports (for ISP-scale data on their hardware): learning —
// graph build, annotation/labeling, pruning, classifier training —
// took about 60 minutes per day of traffic; measuring features and
// classifying all unknown domains took about 3 minutes. We time the same
// stages at our 1:400 scale, and we time them twice: once pinned to one
// worker and once with parallel_thread_count() workers (8 by default, 1 on
// single-core hosts, SEG_THREADS when set), because the whole per-day loop
// (sharded graph build, pruning, feature extraction, classification) is
// thread-parallel with a bit-identical-output guarantee. The run fails if
// the two runs' domain scores differ in any bit.
//
// Per-stage seconds and throughput land in BENCH_pipeline.json so future
// changes have a machine-readable perf trajectory to regress against.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include <sstream>

#include "bench_common.h"
#include "core/pipeline.h"
#include "dns/trace_source.h"
#include "dns/wire/dnstap.h"
#include "dns/wire/pcap.h"
#include "util/obs/health.h"
#include "util/obs/journal.h"
#include "util/obs/metrics.h"
#include "util/obs/process.h"
#include "util/obs/trace.h"
#include "util/parallel.h"

namespace {

constexpr std::size_t kDefaultParallelThreads = 8;

// The parallel leg's thread count. SEG_THREADS (when set) wins so pinned
// containers can keep the run honest; otherwise 8, the tentpole's reference
// configuration. Single-core hosts get 1 — a "speedup" row measured by
// oversubscribing one core would only report scheduler noise.
std::size_t parallel_thread_count() {
  if (const char* env = std::getenv("SEG_THREADS"); env != nullptr && *env != '\0') {
    const long parsed = std::atol(env);
    if (parsed > 0) {
      return static_cast<std::size_t>(parsed);
    }
  }
  const std::size_t cores = std::thread::hardware_concurrency();
  if (cores <= 1) {
    return 1;
  }
  return kDefaultParallelThreads;
}

struct StageTotals {
  double build_seconds = 0.0;     // sharded graph construction
  double build_scan_seconds = 0.0;      // build: parallel shard scan
  double build_merge_seconds = 0.0;     // build: dictionary merge + edge dedup
  double build_assemble_seconds = 0.0;  // build: CSR fill, IPs, e2LDs
  double label_seconds = 0.0;     // blacklist/whitelist annotation
  double prune_seconds = 0.0;     // R1-R4
  double train_feature_seconds = 0.0;
  double fit_seconds = 0.0;
  double classify_seconds = 0.0;  // features + scoring of all unknowns
  std::size_t records = 0;
  std::size_t edges = 0;
  std::size_t unknown_domains = 0;
  std::size_t days = 0;

  double learning_seconds() const {
    return build_seconds + label_seconds + prune_seconds + train_feature_seconds + fit_seconds;
  }
  /// The stages the tentpole parallelised (classifier fit was already
  /// parallel before); this is the 3x-speedup comparison surface.
  double parallel_stage_seconds() const {
    return build_seconds + prune_seconds + classify_seconds;
  }
};

StageTotals run_pipeline(std::size_t threads, std::vector<double>* scores_out) {
  using namespace seg;
  util::set_parallelism(threads);
  auto& world = seg::bench::bench_world();
  const auto config = seg::bench::bench_config();

  StageTotals totals;
  for (std::size_t isp = 0; isp < world.isp_count(); ++isp) {
    for (dns::Day day = 10; day <= 13; ++day) {
      const auto trace = world.generate_day(isp, day);
      const auto blacklist = world.blacklist().as_of(sim::BlacklistKind::kCommercial, day);

      const auto prep = core::Segugio::prepare_graph(trace, world.psl(), blacklist,
                                                     world.whitelist().all(),
                                                     config.prepare_options());
      const auto& graph = prep.graph;
      totals.build_seconds += prep.timings.build.total_seconds();
      totals.build_scan_seconds += prep.timings.build.shard_scan_seconds;
      totals.build_merge_seconds += prep.timings.build.merge_seconds;
      totals.build_assemble_seconds += prep.timings.build.assemble_seconds;
      totals.label_seconds += prep.timings.label_seconds;
      totals.prune_seconds += prep.timings.prune_seconds;
      totals.records += prep.timings.build.records;
      totals.edges += prep.timings.build.edges;

      core::Segugio segugio(config);
      segugio.train(graph, world.activity(), world.pdns());
      totals.train_feature_seconds += segugio.timings().train_feature_seconds;
      totals.fit_seconds += segugio.timings().train_fit_seconds;

      obs::Span classify_span("bench/classify");
      const auto report = segugio.classify(graph, world.activity(), world.pdns());
      totals.classify_seconds += classify_span.close();

      totals.unknown_domains += report.scores.size();
      ++totals.days;
      if (scores_out != nullptr) {
        for (const auto& scored : report.scores) {
          scores_out->push_back(scored.score);
        }
      }
    }
  }
  return totals;
}

// Chains the per-day traces of one ISP into a single multi-day record
// stream — what a continuous tap would deliver.
class ChainedTraceSource final : public seg::dns::TraceSource {
 public:
  explicit ChainedTraceSource(const std::vector<seg::dns::DayTrace>& traces) {
    for (const auto& trace : traces) {
      sources_.emplace_back(trace);
    }
  }

  bool next(seg::dns::QueryRecord& record) override {
    while (index_ < sources_.size()) {
      if (sources_[index_].next(record)) {
        return true;
      }
      ++index_;
    }
    return false;
  }

 private:
  std::vector<seg::dns::DayTraceSource> sources_;
  std::size_t index_ = 0;
};

// The streaming leg: one core::Pipeline session per ISP, the ISP's days
// chained into one stream and ingested through the back-pressured queue so
// the carried name dictionary and sharded stores do their job.
struct StreamingTotals {
  std::vector<double> ingest_seconds;       // per ISP-day, in run order
  std::vector<double> reuse_ratios;         // name-dictionary reuse per day
  std::size_t cached_names = 0;             // dictionary size after last day
  double activity_queries_per_second = 0.0; // sharded F2 batch lookup rate
  double pdns_queries_per_second = 0.0;     // sharded F3 batch lookup rate
  std::vector<double> scores;               // for the bit-identity check
  double stream_wall_seconds = 0.0;         // ingest_stream wall clock, summed
  std::uint64_t stream_records = 0;         // records through the queue
  seg::util::IngestQueueStats queue;        // summed queue counters
};

StreamingTotals run_streaming(std::size_t threads, std::size_t max_isps) {
  using namespace seg;
  util::set_parallelism(threads);
  auto& world = seg::bench::bench_world();
  const auto config = seg::bench::bench_config();

  StreamingTotals totals;
  for (std::size_t isp = 0; isp < std::min(world.isp_count(), max_isps); ++isp) {
    core::Pipeline pipeline(world.psl(), config);
    core::PreparedDay last_day;
    std::vector<dns::DayTrace> traces;
    std::vector<graph::NameSet> blacklists;
    for (dns::Day day = 10; day <= 13; ++day) {
      traces.push_back(world.generate_day(isp, day));
      blacklists.push_back(world.blacklist().as_of(sim::BlacklistKind::kCommercial, day));
    }
    // prepare never reads the history stores (only train/classify do), and
    // post-warm-up the world's stores are already final for these days, so
    // one absorb up front equals the old absorb-before-every-day loop.
    pipeline.absorb_history(world.activity(), world.pdns());

    ChainedTraceSource source(traces);
    obs::Span stream_span("bench/ingest_stream");
    const auto ingest_stats = pipeline.ingest_stream(
        source,
        [&](dns::Day day) -> const graph::NameSet& {
          return blacklists[static_cast<std::size_t>(day - 10)];
        },
        world.whitelist().all(),
        [&](core::PreparedDay&& prepared) {
          pipeline.train(prepared);
          const auto report = pipeline.classify(prepared);
          for (const auto& scored : report.scores) {
            totals.scores.push_back(scored.score);
          }
          last_day = std::move(prepared);
        });
    totals.stream_wall_seconds += stream_span.close();
    totals.stream_records += ingest_stats.records;
    totals.queue.pushed_batches += ingest_stats.queue.pushed_batches;
    totals.queue.pushed_records += ingest_stats.queue.pushed_records;
    totals.queue.dropped_batches += ingest_stats.queue.dropped_batches;
    totals.queue.dropped_records += ingest_stats.queue.dropped_records;
    totals.queue.blocked_pushes += ingest_stats.queue.blocked_pushes;
    totals.queue.max_depth = std::max(totals.queue.max_depth, ingest_stats.queue.max_depth);
    const auto& stats = pipeline.streaming_stats();
    totals.ingest_seconds.insert(totals.ingest_seconds.end(), stats.ingest_seconds.begin(),
                                 stats.ingest_seconds.end());
    totals.reuse_ratios.insert(totals.reuse_ratios.end(), stats.reuse_ratios.begin(),
                               stats.reuse_ratios.end());
    totals.cached_names += stats.cached_names;

    // Batch-lookup throughput, measured on the last ingested day's graph:
    // the same F2/F3 query mix the feature extractor issues.
    const auto& graph = last_day.graph;
    const dns::Day t_now = graph.day();
    std::vector<dns::ShardedActivityIndex::Query> activity_queries;
    for (graph::DomainId d = 0; d < graph.domain_count(); ++d) {
      activity_queries.push_back(
          {graph.domain_name(d), t_now - config.features.activity_window_days + 1, t_now,
           t_now});
    }
    std::vector<dns::ShardedPassiveDnsDb::AbuseQuery> pdns_queries;
    for (graph::DomainId d = 0; d < graph.domain_count(); ++d) {
      for (const auto ip : graph.resolved_ips(d)) {
        pdns_queries.push_back({ip, t_now - config.features.pdns_window_days, t_now - 1});
      }
    }
    obs::Span activity_span("bench/activity_batch");
    (void)pipeline.activity().query_batch(activity_queries);
    const double activity_seconds = activity_span.close();
    obs::Span pdns_span("bench/pdns_batch");
    (void)pipeline.pdns().query_batch(pdns_queries);
    const double pdns_seconds = pdns_span.close();
    if (activity_seconds > 0.0) {
      totals.activity_queries_per_second =
          static_cast<double>(activity_queries.size()) / activity_seconds;
    }
    if (pdns_seconds > 0.0) {
      totals.pdns_queries_per_second =
          static_cast<double>(pdns_queries.size()) / pdns_seconds;
    }
  }
  return totals;
}

// The wire-replay leg: ISP 0's bench days serialized to real capture files
// (a multi-segment SEGTRC1 binlog, a dnstap frame stream, a classic pcap)
// and replayed through FileTraceSource. Parse-only qps is the number the
// ROADMAP's 10^4-10^5 qps ingestion target is measured against; the
// end-to-end figure (including graph preparation) and the queue counters
// come from the streaming leg.
struct IngestSection {
  std::uint64_t records = 0;
  double binlog_replay_qps = 0.0;
  double dnstap_replay_qps = 0.0;
  double pcap_replay_qps = 0.0;
  double end_to_end_qps = 0.0;
  seg::util::IngestQueueStats queue;
};

double replay_qps(const std::string& path, std::uint64_t expected) {
  seg::dns::FileTraceSource source(path);
  seg::dns::QueryRecord record;
  std::uint64_t count = 0;
  seg::obs::Span span("bench/ingest_replay");
  while (source.next(record)) {
    ++count;
  }
  const double seconds = span.close();
  if (count != expected) {
    std::fprintf(stderr, "warning: %s replayed %llu of %llu records\n", path.c_str(),
                 static_cast<unsigned long long>(count),
                 static_cast<unsigned long long>(expected));
  }
  return seconds > 0.0 ? static_cast<double>(count) / seconds : 0.0;
}

// One SEGTRC1 segment per day, concatenated — the multi-day binlog layout
// FileTraceSource replays across day boundaries.
void write_multiday_binlog(const std::vector<seg::dns::DayTrace>& traces,
                           const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  const std::string segment_path = path + ".segment";
  for (const auto& trace : traces) {
    seg::dns::write_trace_binary(trace, segment_path);
    std::ifstream segment(segment_path, std::ios::binary);
    out << segment.rdbuf();
  }
  std::remove(segment_path.c_str());
}

IngestSection measure_ingest(const StreamingTotals& streaming) {
  using namespace seg;
  auto& world = seg::bench::bench_world();

  std::vector<dns::DayTrace> traces;
  dns::DayTrace merged;
  merged.day = 10;
  for (dns::Day day = 10; day <= 13; ++day) {
    traces.push_back(world.generate_day(0, day));
    merged.records.insert(merged.records.end(), traces.back().records.begin(),
                          traces.back().records.end());
  }

  const std::string base = "BENCH_ingest_replay";
  write_multiday_binlog(traces, base + ".bin");
  dns::wire::write_dnstap_trace(merged, base + ".dnstap");
  dns::wire::write_pcap_trace(merged, base + ".pcap");

  IngestSection section;
  section.records = merged.records.size();
  section.binlog_replay_qps = replay_qps(base + ".bin", section.records);
  section.dnstap_replay_qps = replay_qps(base + ".dnstap", section.records);
  section.pcap_replay_qps = replay_qps(base + ".pcap", section.records);
  std::remove((base + ".bin").c_str());
  std::remove((base + ".dnstap").c_str());
  std::remove((base + ".pcap").c_str());

  if (streaming.stream_wall_seconds > 0.0) {
    section.end_to_end_qps =
        static_cast<double>(streaming.stream_records) / streaming.stream_wall_seconds;
  }
  section.queue = streaming.queue;
  return section;
}

// seg::obs v2 overhead: the same streamed multi-day session (ISP 0, days
// 10-13, train on day 10, classify every day) run twice — first with every
// obs surface off, then with the tracer recording, the per-day journal
// attached, and the health sampler thread running throughout. The wall-time
// delta is the overhead budget; the score comparison feeds the bit-identity
// exit gate, making "obs never perturbs scores" a measured invariant here
// too, not just a unit-test one.
struct ObsOverheadSection {
  double off_wall_seconds = 0.0;
  double on_wall_seconds = 0.0;
  double journal_append_seconds = 0.0;  ///< summed obs/journal_append spans
  std::size_t journal_bytes = 0;
  std::size_t journal_entries = 0;
  bool journal_valid = false;
  bool scores_identical = false;
};

ObsOverheadSection measure_obs_overhead(std::size_t threads) {
  using namespace seg;
  util::set_parallelism(threads);
  auto& world = seg::bench::bench_world();
  const auto config = seg::bench::bench_config();

  std::vector<dns::DayTrace> traces;
  std::vector<graph::NameSet> blacklists;
  for (dns::Day day = 10; day <= 13; ++day) {
    traces.push_back(world.generate_day(0, day));
    blacklists.push_back(world.blacklist().as_of(sim::BlacklistKind::kCommercial, day));
  }

  const auto run_once = [&](std::ostringstream* journal, std::vector<double>& scores) {
    core::Pipeline pipeline(world.psl(), config);
    pipeline.absorb_history(world.activity(), world.pdns());
    if (journal != nullptr) {
      pipeline.set_journal(journal);
    }
    ChainedTraceSource source(traces);
    bool trained = false;
    obs::Span wall("bench/obs_overhead_session");
    pipeline.ingest_stream(
        source,
        [&](dns::Day day) -> const graph::NameSet& {
          return blacklists[static_cast<std::size_t>(day - 10)];
        },
        world.whitelist().all(),
        [&](core::PreparedDay&& prepared) {
          if (!trained) {
            pipeline.train(prepared);
            trained = true;
          }
          const auto report = pipeline.classify(prepared);
          for (const auto& scored : report.scores) {
            scores.push_back(scored.score);
          }
        });
    pipeline.flush_journal();
    return wall.close();
  };

  ObsOverheadSection section;
  std::vector<double> off_scores;
  section.off_wall_seconds = run_once(nullptr, off_scores);

  obs::Tracer::instance().clear();
  obs::Tracer::instance().set_enabled(true);
  obs::HealthSampler health;
  health.start();
  std::ostringstream journal;
  std::vector<double> on_scores;
  section.on_wall_seconds = run_once(&journal, on_scores);
  health.sample_once();
  health.stop();
  obs::Tracer::instance().set_enabled(false);
  for (const auto& record : obs::Tracer::instance().snapshot()) {
    if (record.name == "obs/journal_append") {
      section.journal_append_seconds += static_cast<double>(record.dur_ns) * 1e-9;
    }
  }
  obs::Tracer::instance().clear();
  util::set_parallelism(0);

  const std::string journal_text = std::move(journal).str();
  section.journal_bytes = journal_text.size();
  section.journal_valid = obs::validate_obs_journal(journal_text).empty();
  if (section.journal_valid) {
    std::istringstream in(journal_text);
    section.journal_entries = obs::read_journal(in).size();
  }
  section.scores_identical = off_scores == on_scores;
  return section;
}

void print_obs_overhead(const ObsOverheadSection& s) {
  std::printf("\n[obs_overhead] streamed 4-day session, obs off vs journal+tracer+health on:\n");
  std::printf("  obs off                : %8.3f s\n", s.off_wall_seconds);
  std::printf("  obs on                 : %8.3f s (%.1f%% overhead)\n", s.on_wall_seconds,
              s.off_wall_seconds > 0.0
                  ? 100.0 * (s.on_wall_seconds - s.off_wall_seconds) / s.off_wall_seconds
                  : 0.0);
  std::printf("  journal append cost    : %8.6f s over %zu entries (%zu bytes, %s)\n",
              s.journal_append_seconds, s.journal_entries, s.journal_bytes,
              s.journal_valid ? "validator-clean" : "INVALID");
  std::printf("  scores bit-identical   : %s\n",
              s.scores_identical ? "yes" : "NO — OBS PERTURBED SCORES");
}

void write_obs_overhead_json(std::FILE* out, const ObsOverheadSection& s) {
  std::fprintf(out,
               "  \"obs_overhead\": {\n"
               "    \"session_wall_seconds\": {\n"
               "      \"obs_off\": %.6f,\n"
               "      \"obs_on\": %.6f\n"
               "    },\n"
               "    \"overhead_ratio\": %.4f,\n"
               "    \"journal_append_seconds\": %.6f,\n"
               "    \"journal_bytes\": %zu,\n"
               "    \"journal_entries\": %zu,\n"
               "    \"journal_valid\": %s,\n"
               "    \"scores_bit_identical\": %s\n"
               "  }",
               s.off_wall_seconds, s.on_wall_seconds,
               s.off_wall_seconds > 0.0 ? s.on_wall_seconds / s.off_wall_seconds : 0.0,
               s.journal_append_seconds, s.journal_bytes, s.journal_entries,
               s.journal_valid ? "true" : "false", s.scores_identical ? "true" : "false");
}

void print_ingest(const IngestSection& section) {
  std::printf("\n[ingest] wire replay over %llu records (ISP 0, days 10-13):\n",
              static_cast<unsigned long long>(section.records));
  std::printf("  binlog replay          : %10.0f qps\n", section.binlog_replay_qps);
  std::printf("  dnstap replay          : %10.0f qps\n", section.dnstap_replay_qps);
  std::printf("  pcap replay            : %10.0f qps\n", section.pcap_replay_qps);
  std::printf("  streamed end-to-end    : %10.0f qps (incl. graph preparation)\n",
              section.end_to_end_qps);
  std::printf("  queue: %llu batches pushed, %llu blocked pushes, depth high-water %zu, "
              "%llu records dropped\n",
              static_cast<unsigned long long>(section.queue.pushed_batches),
              static_cast<unsigned long long>(section.queue.blocked_pushes),
              section.queue.max_depth,
              static_cast<unsigned long long>(section.queue.dropped_records));
}

void write_ingest_json(std::FILE* out, const IngestSection& ingest) {
  std::fprintf(out,
               "  \"ingest\": {\n"
               "    \"records\": %llu,\n"
               "    \"replay_qps\": {\n"
               "      \"binlog\": %.1f,\n"
               "      \"dnstap\": %.1f,\n"
               "      \"pcap\": %.1f\n"
               "    },\n"
               "    \"stream_end_to_end_qps\": %.1f,\n"
               "    \"queue\": {\n"
               "      \"pushed_batches\": %llu,\n"
               "      \"pushed_records\": %llu,\n"
               "      \"blocked_pushes\": %llu,\n"
               "      \"max_depth\": %zu,\n"
               "      \"dropped_batches\": %llu,\n"
               "      \"dropped_records\": %llu\n"
               "    }\n"
               "  }",
               static_cast<unsigned long long>(ingest.records), ingest.binlog_replay_qps,
               ingest.dnstap_replay_qps, ingest.pcap_replay_qps, ingest.end_to_end_qps,
               static_cast<unsigned long long>(ingest.queue.pushed_batches),
               static_cast<unsigned long long>(ingest.queue.pushed_records),
               static_cast<unsigned long long>(ingest.queue.blocked_pushes),
               ingest.queue.max_depth,
               static_cast<unsigned long long>(ingest.queue.dropped_batches),
               static_cast<unsigned long long>(ingest.queue.dropped_records));
}

void print_totals(const char* label, const StageTotals& t) {
  const auto avg = [&](double total) { return total / static_cast<double>(t.days); };
  std::printf("\n[%s] averages over %zu simulated ISP-days:\n", label, t.days);
  std::printf("  graph build (sharded)  : %8.3f s\n", avg(t.build_seconds));
  std::printf("    scan / merge / asm   : %8.3f / %.3f / %.3f s\n",
              avg(t.build_scan_seconds), avg(t.build_merge_seconds),
              avg(t.build_assemble_seconds));
  std::printf("  labeling               : %8.3f s\n", avg(t.label_seconds));
  std::printf("  pruning                : %8.3f s\n", avg(t.prune_seconds));
  std::printf("  training features      : %8.3f s\n", avg(t.train_feature_seconds));
  std::printf("  classifier fit         : %8.3f s\n", avg(t.fit_seconds));
  std::printf("  -- learning total      : %8.3f s   (paper: ~60 min at ~400x scale)\n",
              avg(t.learning_seconds()));
  std::printf("  classify all unknowns  : %8.3f s   (paper: ~3 min at ~400x scale)\n",
              avg(t.classify_seconds));
  std::printf("  edges ingested/s       : %10.0f\n",
              static_cast<double>(t.edges) / (t.build_seconds + t.label_seconds));
  std::printf("  unknowns classified/s  : %10.0f\n",
              static_cast<double>(t.unknown_domains) / t.classify_seconds);
}

// Shard-imbalance snapshot of the parallel leg plus process peak memory —
// the concrete fields the ROADMAP multi-core measurement item asks for.
struct ObsSection {
  std::vector<double> bounds;
  std::vector<std::uint64_t> buckets;
  std::uint64_t shard_observations = 0;
  std::uint64_t rss_peak_kb = 0;
};

ObsSection collect_obs_section() {
  ObsSection section;
  auto& hist = seg::obs::Registry::instance().histogram(
      "seg_build_shard_edges", seg::obs::exponential_bounds(64, 4.0, 12));
  section.bounds = hist.bounds();
  section.buckets = hist.bucket_counts();
  section.shard_observations = hist.count();
  section.rss_peak_kb = seg::obs::sample_process().rss_peak_kb;
  return section;
}

void write_json(const char* path, const StageTotals& serial, const StageTotals& parallel,
                const StreamingTotals& streaming, const IngestSection& ingest,
                const ObsSection& obs_section, const ObsOverheadSection& overhead,
                std::size_t parallel_threads, bool identical) {
  std::FILE* out = std::fopen(path, "w");
  if (out == nullptr) {
    std::fprintf(stderr, "warning: cannot write %s\n", path);
    return;
  }
  const auto run = [&](const char* name, std::size_t threads, const StageTotals& t) {
    std::fprintf(out,
                 "  \"%s\": {\n"
                 "    \"threads\": %zu,\n"
                 "    \"isp_days\": %zu,\n"
                 "    \"records\": %zu,\n"
                 "    \"edges\": %zu,\n"
                 "    \"unknown_domains\": %zu,\n"
                 "    \"stages_seconds\": {\n"
                 "      \"graph_build\": %.6f,\n"
                 "      \"graph_build_scan\": %.6f,\n"
                 "      \"graph_build_merge\": %.6f,\n"
                 "      \"graph_build_assemble\": %.6f,\n"
                 "      \"labeling\": %.6f,\n"
                 "      \"pruning\": %.6f,\n"
                 "      \"train_features\": %.6f,\n"
                 "      \"classifier_fit\": %.6f,\n"
                 "      \"classify\": %.6f\n"
                 "    },\n"
                 "    \"learning_total_seconds\": %.6f,\n"
                 "    \"throughput\": {\n"
                 "      \"build_edges_per_sec\": %.1f,\n"
                 "      \"build_records_per_sec\": %.1f,\n"
                 "      \"prune_edges_per_sec\": %.1f,\n"
                 "      \"classify_domains_per_sec\": %.1f\n"
                 "    }\n"
                 "  }",
                 name, threads, t.days, t.records, t.edges, t.unknown_domains, t.build_seconds,
                 t.build_scan_seconds, t.build_merge_seconds, t.build_assemble_seconds,
                 t.label_seconds, t.prune_seconds, t.train_feature_seconds, t.fit_seconds,
                 t.classify_seconds, t.learning_seconds(),
                 static_cast<double>(t.edges) / t.build_seconds,
                 static_cast<double>(t.records) / t.build_seconds,
                 static_cast<double>(t.edges) / t.prune_seconds,
                 static_cast<double>(t.unknown_domains) / t.classify_seconds);
  };
  const auto ratio = [](double a, double b) { return b > 0.0 ? a / b : 0.0; };
  std::fprintf(out, "{\n");
  // hardware_concurrency makes the trajectory interpretable: a ~1.0x
  // "speedup" from a single-core CI container is expected, not a
  // regression, and multi-core measurements say how many cores they had.
  std::fprintf(out, "  \"hardware_concurrency\": %u,\n",
               std::thread::hardware_concurrency());
  std::fprintf(out, "  \"speedup_measurable\": %s,\n",
               parallel_threads > 1 ? "true" : "false");
  run("serial", 1, serial);
  std::fprintf(out, ",\n");
  run("parallel", parallel_threads, parallel);
  if (parallel_threads > 1) {
    std::fprintf(out,
                 ",\n  \"speedup\": {\n"
                 "    \"graph_build\": %.3f,\n"
                 "    \"pruning\": %.3f,\n"
                 "    \"classify\": %.3f,\n"
                 "    \"build_prune_classify\": %.3f,\n"
                 "    \"learning_total\": %.3f\n"
                 "  }",
                 ratio(serial.build_seconds, parallel.build_seconds),
                 ratio(serial.prune_seconds, parallel.prune_seconds),
                 ratio(serial.classify_seconds, parallel.classify_seconds),
                 ratio(serial.parallel_stage_seconds(), parallel.parallel_stage_seconds()),
                 ratio(serial.learning_seconds(), parallel.learning_seconds()));
  }
  const auto array = [&](const std::vector<double>& values) {
    std::fprintf(out, "[");
    for (std::size_t i = 0; i < values.size(); ++i) {
      std::fprintf(out, "%s%.6f", i == 0 ? "" : ", ", values[i]);
    }
    std::fprintf(out, "]");
  };
  std::fprintf(out, ",\n  \"streaming\": {\n    \"isp_days\": %zu,\n",
               streaming.ingest_seconds.size());
  std::fprintf(out, "    \"ingest_seconds\": ");
  array(streaming.ingest_seconds);
  std::fprintf(out, ",\n    \"intern_reuse_ratio\": ");
  array(streaming.reuse_ratios);
  std::fprintf(out,
               ",\n    \"cached_names\": %zu,\n"
               "    \"activity_batch_queries_per_sec\": %.1f,\n"
               "    \"pdns_batch_queries_per_sec\": %.1f\n  }",
               streaming.cached_names, streaming.activity_queries_per_second,
               streaming.pdns_queries_per_second);
  std::fprintf(out, ",\n");
  write_ingest_json(out, ingest);
  std::fprintf(out, ",\n  \"obs\": {\n    \"shard_edge_histogram\": {\n      \"bounds\": ");
  array(obs_section.bounds);
  std::fprintf(out, ",\n      \"buckets\": [");
  for (std::size_t i = 0; i < obs_section.buckets.size(); ++i) {
    std::fprintf(out, "%s%llu", i == 0 ? "" : ", ",
                 static_cast<unsigned long long>(obs_section.buckets[i]));
  }
  std::fprintf(out,
               "],\n      \"shard_observations\": %llu\n    },\n"
               "    \"rss_peak_kb\": %llu\n  }",
               static_cast<unsigned long long>(obs_section.shard_observations),
               static_cast<unsigned long long>(obs_section.rss_peak_kb));
  std::fprintf(out, ",\n");
  write_obs_overhead_json(out, overhead);
  std::fprintf(out, ",\n  \"scores_bit_identical\": %s\n}\n",
               identical ? "true" : "false");
  std::fclose(out);
  std::printf("\nwrote %s\n", path);
}

}  // namespace

int main() {
  seg::bench::print_header("Section IV-G: pipeline efficiency");

  // Warm-up pass: generate_day advances the world's activity index as a
  // side effect, so the first generation of a day changes features for the
  // next. Touch every ISP-day once up front so both timed runs (re-created
  // deterministically from the same RNG streams) see identical world state
  // and their scores are comparable bit-for-bit.
  {
    auto& world = seg::bench::bench_world();
    for (std::size_t isp = 0; isp < world.isp_count(); ++isp) {
      for (seg::dns::Day day = 10; day <= 13; ++day) {
        (void)world.generate_day(isp, day);
      }
    }
  }

  const std::size_t parallel_threads = parallel_thread_count();

  // SEG_BENCH_INGEST_ONLY=1 (the ci_matrix `ingest` leg): skip the two
  // full pipeline legs and measure only the wire-replay/queue section on
  // ISP 0, writing a reduced BENCH_pipeline.json. Fails when the blocking
  // queue dropped anything — it must never.
  if (const char* env = std::getenv("SEG_BENCH_INGEST_ONLY"); env != nullptr && *env == '1') {
    const auto streaming = run_streaming(parallel_threads, /*max_isps=*/1);
    seg::util::set_parallelism(0);
    const auto ingest = measure_ingest(streaming);
    print_ingest(ingest);
    if (std::FILE* out = std::fopen("BENCH_pipeline.json", "w")) {
      std::fprintf(out, "{\n  \"hardware_concurrency\": %u,\n",
                   std::thread::hardware_concurrency());
      write_ingest_json(out, ingest);
      std::fprintf(out, "\n}\n");
      std::fclose(out);
      std::printf("\nwrote BENCH_pipeline.json (ingest section only)\n");
    }
    const bool clean = ingest.queue.dropped_batches == 0 && ingest.queue.dropped_records == 0;
    if (!clean) {
      std::printf("FAIL: blocking ingest queue dropped data\n");
    }
    return clean ? 0 : 1;
  }

  // SEG_BENCH_OBS_ONLY=1 (the ci_matrix `obs` leg): skip the pipeline legs
  // and measure only the obs-overhead section on ISP 0, writing a reduced
  // BENCH_pipeline.json. Fails when obs perturbs scores or the journal
  // fails validation — the acceptance gate, measured on real bench data.
  if (const char* env = std::getenv("SEG_BENCH_OBS_ONLY"); env != nullptr && *env == '1') {
    const auto overhead = measure_obs_overhead(parallel_threads);
    print_obs_overhead(overhead);
    if (std::FILE* out = std::fopen("BENCH_pipeline.json", "w")) {
      std::fprintf(out, "{\n  \"hardware_concurrency\": %u,\n",
                   std::thread::hardware_concurrency());
      write_obs_overhead_json(out, overhead);
      std::fprintf(out, "\n}\n");
      std::fclose(out);
      std::printf("\nwrote BENCH_pipeline.json (obs_overhead section only)\n");
    }
    if (!overhead.scores_identical) {
      std::printf("FAIL: obs-on session diverged from obs-off scores\n");
    }
    if (!overhead.journal_valid) {
      std::printf("FAIL: obs journal failed validation\n");
    }
    return overhead.scores_identical && overhead.journal_valid ? 0 : 1;
  }

  std::vector<double> serial_scores;
  const auto serial = run_pipeline(1, &serial_scores);
  print_totals("1 thread", serial);

  // Reset the metric registry so the shard-imbalance histogram snapshots
  // exactly the parallel leg's builds.
  seg::obs::Registry::instance().reset();
  std::vector<double> parallel_scores;
  const auto parallel = run_pipeline(parallel_threads, &parallel_scores);
  print_totals((std::to_string(parallel_threads) + " threads").c_str(), parallel);
  const auto obs_section = collect_obs_section();

  const auto streaming = run_streaming(parallel_threads, seg::bench::bench_world().isp_count());
  const auto overhead = measure_obs_overhead(parallel_threads);
  seg::util::set_parallelism(0);
  const auto ingest = measure_ingest(streaming);

  const bool identical =
      serial_scores == parallel_scores && serial_scores == streaming.scores;
  std::printf("\ndomain scores bit-identical across thread counts and the streaming\n"
              "pipeline: %s (%zu scores)\n",
              identical ? "yes" : "NO — DETERMINISM VIOLATION", serial_scores.size());
  if (!streaming.reuse_ratios.empty()) {
    std::printf("streaming: %zu ISP-days ingested; day-2+ name-dictionary reuse ",
                streaming.ingest_seconds.size());
    double reuse_sum = 0.0;
    std::size_t reuse_count = 0;
    for (std::size_t i = 0; i < streaming.reuse_ratios.size(); ++i) {
      if (i % 4 != 0) {  // skip each session's first day (nothing to reuse yet)
        reuse_sum += streaming.reuse_ratios[i];
        ++reuse_count;
      }
    }
    std::printf("%.1f%% on average; batch lookups: %.0f activity q/s, %.0f pdns q/s\n",
                reuse_count > 0 ? 100.0 * reuse_sum / static_cast<double>(reuse_count) : 0.0,
                streaming.activity_queries_per_second, streaming.pdns_queries_per_second);
  }

  if (parallel_threads > 1) {
    const auto speedup = serial.parallel_stage_seconds() / parallel.parallel_stage_seconds();
    std::printf("build+prune+classify speedup at %zu threads: %.2fx\n", parallel_threads,
                speedup);
  } else {
    std::printf("single worker available (hardware_concurrency=%u or SEG_THREADS=1);\n"
                "skipping the speedup row — both legs validate determinism only.\n",
                std::thread::hardware_concurrency());
  }
  std::printf("\nshape check: classification is ~%0.fx faster than learning, matching the\n"
              "paper's 60min-vs-3min split (about 20x).\n",
              parallel.learning_seconds() / parallel.classify_seconds);
  print_ingest(ingest);
  print_obs_overhead(overhead);

  write_json("BENCH_pipeline.json", serial, parallel, streaming, ingest, obs_section,
             overhead, parallel_threads, identical);
  const bool queue_clean =
      ingest.queue.dropped_batches == 0 && ingest.queue.dropped_records == 0;
  if (!queue_clean) {
    std::printf("FAIL: blocking ingest queue dropped data\n");
  }
  const bool obs_clean = overhead.scores_identical && overhead.journal_valid;
  if (!obs_clean) {
    std::printf("FAIL: obs-on session perturbed scores or wrote an invalid journal\n");
  }
  return identical && queue_clean && obs_clean ? 0 : 1;
}
