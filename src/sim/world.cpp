#include "sim/world.h"

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "util/hash.h"
#include "util/require.h"

namespace seg::sim {

namespace {

// Distinct stream ids for forked RNGs, so every phase and every (isp, day)
// pair draws from an independent deterministic stream.
constexpr std::uint64_t kStreamCatalog = 1;
constexpr std::uint64_t kStreamFamilies = 2;
constexpr std::uint64_t kStreamMachines = 3;
constexpr std::uint64_t kStreamOracles = 4;
constexpr std::uint64_t kStreamDormancy = 5;
constexpr std::uint64_t kStreamBackgroundBase = 1000;
constexpr std::uint64_t kStreamTrafficBase = 1'000'000;

const char* const kTlds[] = {"com", "net", "org", "biz", "info"};

}  // namespace

World::World(ScenarioConfig config)
    : config_(std::move(config)),
      psl_(dns::PublicSuffixList::with_default_rules()),
      master_(config_.seed) {
  util::require(!config_.isp_machines.empty(), "World: need at least one ISP");
  util::require(config_.families > 0, "World: need at least one malware family");
  util::require(config_.warmup_days > 0, "World: warmup must be positive");

  {
    util::Rng rng = master_.fork(kStreamCatalog);
    build_catalog(rng);
  }
  {
    util::Rng rng = master_.fork(kStreamFamilies);
    evolve_families(rng);
  }
  {
    util::Rng rng = master_.fork(kStreamMachines);
    build_machines(rng);
  }
  {
    util::Rng rng = master_.fork(kStreamOracles);
    build_oracles(rng);
  }
  // Dormancy: some C&C names show sporadic activity for weeks before they
  // go live, so their activity features do not trivially give them away.
  {
    util::Rng rng = master_.fork(kStreamDormancy);
    for (const auto& record : malware_) {
      if (!rng.next_bool(config_.cc_dormant_prob)) {
        continue;
      }
      const auto e2ld = std::string(psl_.e2ld_or_self(record.name));
      for (dns::Day day = record.first_active - config_.cc_dormant_days;
           day < record.first_active; ++day) {
        if (rng.next_bool(config_.cc_dormant_activity_prob)) {
          activity_.mark_active(record.name, day);
          activity_.mark_active(e2ld, day);
        }
      }
    }
  }

  // Pre-day-0 history for the activity index and the pDNS database.
  replay_background(-config_.warmup_days, -1);
  background_cursor_ = 0;
}

std::string World::random_label(util::Rng& rng, std::size_t length) {
  static constexpr char kAlphabet[] = "abcdefghijklmnopqrstuvwxyz0123456789";
  std::string label;
  label.reserve(length);
  label.push_back(static_cast<char>('a' + rng.next_below(26)));
  for (std::size_t i = 1; i < length; ++i) {
    label.push_back(kAlphabet[rng.next_below(sizeof(kAlphabet) - 1)]);
  }
  return label;
}

dns::IpV4 World::random_fresh_ip(util::Rng& rng) {
  // "Fresh" space: rented VPSes in the same cheap shared-hosting region the
  // unpopular long tail lives in (25.x), so a never-abused address is not
  // by itself a fingerprint — its /24 usually hosts unknown domains too.
  return dns::IpV4(0x19000000u | static_cast<std::uint32_t>(rng.next_below(1u << 22)));
}

dns::IpV4 World::random_abused_ip(util::Rng& rng) const {
  const auto prefix = abused_prefixes_[rng.next_below(abused_prefixes_.size())];
  return dns::IpV4(prefix | static_cast<std::uint32_t>(1 + rng.next_below(254)));
}

dns::IpV4 World::freereg_zone_ip(std::size_t zone, util::Rng& rng) {
  // Shared hosting /24 per zone in the 24.0.z.0/24 region.
  return dns::IpV4(0x18000000u | (static_cast<std::uint32_t>(zone & 0xffff) << 8) |
                   static_cast<std::uint32_t>(1 + rng.next_below(254)));
}

void World::build_catalog(util::Rng& rng) {
  popular_.reserve(config_.popular_e2lds);
  for (std::size_t i = 0; i < config_.popular_e2lds; ++i) {
    Site site;
    site.e2ld = random_label(rng, 4 + rng.next_below(8)) + "." +
                kTlds[rng.next_below(std::size(kTlds))];
    site.fqdns.push_back(site.e2ld);  // apex
    static constexpr const char* kSubs[] = {"www", "mail", "cdn", "api", "img"};
    const std::size_t extra = rng.next_below(config_.max_fqdns_per_e2ld);
    for (std::size_t s = 0; s < extra; ++s) {
      site.fqdns.push_back(std::string(kSubs[s % std::size(kSubs)]) + "." + site.e2ld);
    }
    // Dedicated benign /24 per site (23.x.y.0/24 region).
    const std::uint32_t prefix =
        0x17000000u | (static_cast<std::uint32_t>(i % (1u << 16)) << 8);
    const std::size_t ip_count = 1 + rng.next_below(3);
    for (std::size_t k = 0; k < ip_count; ++k) {
      site.ips.push_back(dns::IpV4(prefix | static_cast<std::uint32_t>(1 + rng.next_below(254))));
    }
    popular_.push_back(std::move(site));
    // "Dirty hosting": some popular sites also resolve into the shared
    // pool that bulletproof C&C hosting reuses. Handled after the abused
    // pool exists (see below).
  }
  popularity_ = std::make_unique<util::ZipfSampler>(popular_.size(), config_.zipf_exponent);

  // Free-registration zones and the benign subdomains browsed under them.
  // NOTE: the zones are deliberately NOT added to the public suffix list —
  // they model the zones the paper's filtering missed (Section IV-D).
  for (std::size_t z = 0; z < config_.freereg_zones; ++z) {
    freereg_zone_names_.push_back(random_label(rng, 5 + rng.next_below(4)) + "host.com");
  }
  for (std::size_t z = 0; z < config_.freereg_zones; ++z) {
    for (std::size_t s = 0; s < config_.freereg_subdomains; ++s) {
      Site site;
      site.e2ld = freereg_zone_names_[z];
      site.fqdns.push_back(random_label(rng, 4 + rng.next_below(6)) + "." +
                           freereg_zone_names_[z]);
      // Every subdomain of a zone is served from the zone's shared /24
      // (24.0.z.0/24): benign blogs and abused pages alike.
      site.ips.push_back(freereg_zone_ip(z, rng));
      // New blogs keep appearing: a fraction of the subdomains are born
      // during the simulated period instead of predating it.
      if (rng.next_bool(config_.freereg_sub_young_fraction)) {
        site.born = -config_.warmup_days +
                    static_cast<dns::Day>(rng.next_below(
                        static_cast<std::uint64_t>(config_.warmup_days) + kHorizonDays));
      }
      freereg_benign_.push_back(std::move(site));
    }
  }

  // Bulletproof hosting pool: /24 prefixes reused by C&C domains across
  // families (185.x region).
  abused_prefixes_.reserve(config_.abused_prefixes);
  for (std::size_t p = 0; p < config_.abused_prefixes; ++p) {
    abused_prefixes_.push_back(0xB9000000u |
                               (static_cast<std::uint32_t>(rng.next_below(1u << 16)) << 8));
  }

  // Dirty hosting: a fraction of popular sites also resolve into the
  // shared pool, which reputation-only baselines mistake for abuse.
  for (auto& site : popular_) {
    if (rng.next_bool(config_.dirty_hosting_prob)) {
      site.ips.push_back(random_abused_ip(rng));
    }
  }

  // Unpopular-but-real domains: the long tail of the web. Each is visited
  // by a handful of machines; pruning keeps most of them as the *unknown*
  // classification load.
  unpopular_.reserve(config_.unpopular_pool_size);
  for (std::size_t i = 0; i < config_.unpopular_pool_size; ++i) {
    Site site;
    site.e2ld = random_label(rng, 6 + rng.next_below(8)) + "." +
                kTlds[rng.next_below(std::size(kTlds))];
    site.fqdns.push_back(site.e2ld);
    // Cheap shared hosting (25.x region).
    site.ips.push_back(dns::IpV4(0x19000000u |
                                 static_cast<std::uint32_t>(rng.next_below(1u << 22))));
    unpopular_.push_back(std::move(site));
  }
  if (!unpopular_.empty()) {
    unpopularity_ = std::make_unique<util::ZipfSampler>(unpopular_.size(),
                                                        config_.unpopular_zipf_exponent);
  }
}

void World::evolve_families(util::Rng& rng) {
  const dns::Day first_day = -config_.warmup_days;
  const std::size_t total_days = static_cast<std::size_t>(config_.warmup_days) + kHorizonDays + 1;
  family_active_.assign(total_days, {});

  // Stealthy families rotate faster, evade blacklists more often, and
  // avoid recycled bulletproof IP space — the hard tail of the problem.
  std::vector<std::uint8_t> stealthy(config_.families);
  for (std::size_t f = 0; f < config_.families; ++f) {
    stealthy[f] = rng.next_bool(config_.stealthy_family_fraction) ? 1 : 0;
  }

  const auto mint = [&](FamilyId f, dns::Day day) {
    const double coverage_mult =
        stealthy[f] != 0 ? config_.stealth_coverage_multiplier : 1.0;
    const double abused_mult =
        stealthy[f] != 0 ? config_.stealth_abused_ip_multiplier : 1.0;
    MalwareDomainInfo info;
    info.family = f;
    info.first_active = day;
    if (rng.next_bool(config_.cc_freereg_abuse_prob) && !freereg_zone_names_.empty()) {
      // Control page hidden under a free-registration zone: the name lives
      // under the zone and is served from the zone's shared hosting /24 —
      // indistinguishable from a benign blog except for who queries it.
      info.under_freereg_zone = true;
      const auto zone = rng.next_below(freereg_zone_names_.size());
      info.name = random_label(rng, 5 + rng.next_below(5)) + "." + freereg_zone_names_[zone];
      info.ips.push_back(freereg_zone_ip(zone, rng));
    } else {
      info.name = random_label(rng, 6 + rng.next_below(7)) + "." +
                  kTlds[rng.next_below(std::size(kTlds))];
      if (rng.next_bool(0.3)) {
        info.name = random_label(rng, 3 + rng.next_below(4)) + "." + info.name;
      }
      const std::size_t ip_count = 1 + rng.next_below(2);
      for (std::size_t k = 0; k < ip_count; ++k) {
        info.ips.push_back(rng.next_bool(config_.cc_abused_ip_prob * abused_mult)
                               ? random_abused_ip(rng)
                               : random_fresh_ip(rng));
      }
    }
    // Blacklist discovery draws, made at mint time (lag counted from the
    // first active day).
    if (rng.next_bool(config_.commercial_coverage * coverage_mult)) {
      info.commercial_listed = true;
      // Mostly prompt vetting, with a heavy tail: some domains take weeks
      // to be confirmed (the long bars of Figure 11).
      const auto lag = rng.next_bool(0.8)
                           ? rng.next_poisson(config_.commercial_lag_mean)
                           : 7 + rng.next_poisson(4.0 * config_.commercial_lag_mean);
      info.commercial_day = day + 1 + static_cast<dns::Day>(lag);
    }
    if (rng.next_bool(config_.public_coverage * coverage_mult)) {
      info.public_listed = true;
      info.public_day =
          day + 1 + static_cast<dns::Day>(rng.next_poisson(config_.public_lag_mean));
    }
    info.in_sandbox_db = rng.next_bool(config_.sandbox_coverage);
    malware_.push_back(std::move(info));
    return malware_.size() - 1;
  };

  // Day -warmup: every family starts with a full active set.
  auto& day0 = family_active_[0];
  day0.resize(config_.families);
  for (FamilyId f = 0; f < config_.families; ++f) {
    for (std::size_t k = 0; k < config_.cc_domains_per_family; ++k) {
      day0[f].push_back(mint(f, first_day));
    }
  }

  // Subsequent days: per-domain relocation.
  for (std::size_t di = 1; di < total_days; ++di) {
    const dns::Day day = first_day + static_cast<dns::Day>(di);
    auto& today = family_active_[di];
    today.resize(config_.families);
    for (FamilyId f = 0; f < config_.families; ++f) {
      const double relocation = std::min(
          0.9, config_.cc_relocation_prob *
                   (stealthy[f] != 0 ? config_.stealth_relocation_multiplier : 1.0));
      for (const auto domain_index : family_active_[di - 1][f]) {
        if (rng.next_bool(relocation)) {
          malware_[domain_index].retired = day;
          today[f].push_back(mint(f, day));
        } else {
          today[f].push_back(domain_index);
        }
      }
    }
  }
}

void World::build_machines(util::Rng& rng) {
  // Family prevalence is skewed: a few large families, a long tail.
  util::ZipfSampler family_popularity(config_.families,
                                      config_.family_prevalence_exponent);

  machines_.resize(config_.isp_machines.size());
  for (std::size_t isp = 0; isp < config_.isp_machines.size(); ++isp) {
    const std::size_t n = config_.isp_machines[isp];
    auto& machines = machines_[isp];
    machines.reserve(n);
    const auto n_proxy = static_cast<std::size_t>(config_.proxy_fraction * n) + 1;
    const auto n_prober = static_cast<std::size_t>(config_.prober_fraction * n);
    const auto n_inactive = static_cast<std::size_t>(config_.inactive_fraction * n);
    const auto n_infected = static_cast<std::size_t>(config_.infected_fraction * n);
    for (std::size_t j = 0; j < n; ++j) {
      Machine machine;
      machine.name = "isp" + std::to_string(isp + 1) + "-m" + std::to_string(j);
      if (j < n_proxy) {
        machine.kind = MachineKind::kProxy;
      } else if (j < n_proxy + n_prober) {
        machine.kind = MachineKind::kProber;
      } else if (j < n_proxy + n_prober + n_inactive) {
        machine.kind = MachineKind::kInactive;
      } else if (j < n_proxy + n_prober + n_inactive + n_infected) {
        machine.kind = MachineKind::kInfected;
        machine.families.push_back(
            static_cast<FamilyId>(family_popularity.sample(rng)));
        double p = config_.multi_infection_prob;
        while (rng.next_bool(p) && machine.families.size() < 4) {
          const auto extra = static_cast<FamilyId>(family_popularity.sample(rng));
          if (std::find(machine.families.begin(), machine.families.end(), extra) ==
              machine.families.end()) {
            machine.families.push_back(extra);
          }
          p *= p;  // third/fourth infections increasingly unlikely
        }
      }
      const double base = std::max(2.0, config_.mean_e2lds_per_day - 8.0);
      machine.browse_budget = 8.0 + static_cast<double>(rng.next_poisson(base));
      machines.push_back(std::move(machine));
    }
  }
}

void World::build_oracles(util::Rng& rng) {
  // Whitelist: popular e2LDs that stayed in the "top list" all year
  // (a random whitelist_coverage fraction of the catalog), plus the
  // free-registration zones as deliberate noise.
  std::vector<std::string> stable;
  stable.reserve(popular_.size());
  for (const auto& site : popular_) {
    if (rng.next_bool(config_.whitelist_coverage)) {
      stable.push_back(site.e2ld);
    }
  }
  whitelist_ = std::make_unique<WhitelistService>(stable, freereg_zone_names_);

  // Public blacklist noise: a few benign names mislabeled as C&C — obscure
  // ones, like the paper's recsports.uga.edu example (Section IV-E).
  std::vector<std::string> public_noise;
  if (popular_.size() > 1000) {
    for (std::size_t i = 0; i < config_.public_noise_domains; ++i) {
      const auto& site =
          popular_[1000 + rng.next_below(popular_.size() - 1000)];
      public_noise.push_back(site.fqdns[rng.next_below(site.fqdns.size())]);
    }
  }
  blacklist_ = std::make_unique<BlacklistService>(malware_, std::move(public_noise));

  // Sandbox DB: flagged C&C domains plus popular benign domains that
  // sandboxed malware also touches (connectivity checks etc.).
  graph::NameSet contacted;
  for (const auto& record : malware_) {
    if (record.in_sandbox_db) {
      contacted.insert(record.name);
    }
  }
  for (std::size_t i = 0; i < 20 && i < popular_.size(); ++i) {
    contacted.insert(popular_[i].fqdns.front());
  }
  sandbox_ = SandboxTraceDb(std::move(contacted));
}

const std::vector<std::size_t>& World::family_active(FamilyId f, dns::Day day) const {
  const auto index = static_cast<std::size_t>(day + config_.warmup_days);
  return family_active_[index][f];
}

void World::replay_background(dns::Day from, dns::Day to) {
  for (dns::Day day = from; day <= to; ++day) {
    util::Rng rng = master_.fork(kStreamBackgroundBase +
                                 static_cast<std::uint64_t>(day + config_.warmup_days));
    // Popular sites: the apex is active nearly every day (rare monitoring
    // gaps keep the activity features from becoming exact indicators);
    // extra FQDNs most days.
    for (const auto& site : popular_) {
      // Any FQDN query necessarily implies an e2LD query, so the e2LD is
      // marked whenever any name under it is.
      if (rng.next_bool(0.97)) {
        activity_.mark_active(site.fqdns.front(), day);
        activity_.mark_active(site.e2ld, day);
      }
      pdns_.add_observation(day, site.ips.front(), dns::PdnsAssociation::kBenign);
      for (std::size_t s = 1; s < site.fqdns.size(); ++s) {
        if (rng.next_bool(0.6)) {
          activity_.mark_active(site.fqdns[s], day);
          activity_.mark_active(site.e2ld, day);
        }
      }
      // Shared-hosting noise: occasionally an unknown domain uses this IP.
      if (rng.next_bool(0.05)) {
        pdns_.add_observation(day, site.ips.front(), dns::PdnsAssociation::kUnknown);
      }
    }
    // Unpopular tail domains: real sites, active most days somewhere on
    // the net even if few local machines visit them.
    for (const auto& site : unpopular_) {
      if (rng.next_bool(0.9)) {
        activity_.mark_active(site.fqdns.front(), day);
        activity_.mark_active(site.e2ld, day);
        pdns_.add_observation(day, site.ips.front(), dns::PdnsAssociation::kUnknown);
      }
    }
    // Free-registration benign subdomains (only the ones already born).
    for (const auto& site : freereg_benign_) {
      if (site.born <= day && rng.next_bool(0.5)) {
        activity_.mark_active(site.fqdns.front(), day);
        activity_.mark_active(site.e2ld, day);
        pdns_.add_observation(day, site.ips.front(), dns::PdnsAssociation::kUnknown);
      }
    }
    // Active C&C domains: queried somewhere most days; pDNS association
    // reflects what was *known* on that day (unknown until blacklisted).
    const auto day_index = static_cast<std::size_t>(day + config_.warmup_days);
    for (const auto& per_family : family_active_[day_index]) {
      for (const auto domain_index : per_family) {
        const auto& record = malware_[domain_index];
        // Bots do not necessarily resolve every control domain every day;
        // the cadence matches casual blog traffic so activity streaks are
        // not a fingerprint on their own.
        if (!rng.next_bool(0.55)) {
          continue;
        }
        activity_.mark_active(record.name, day);
        activity_.mark_active(psl_.e2ld_or_self(record.name), day);
        const bool known = record.commercial_listed && record.commercial_day <= day;
        pdns_.add_resolution(day, record.ips,
                             known ? dns::PdnsAssociation::kMalware
                                   : dns::PdnsAssociation::kUnknown);
      }
    }
  }
}

dns::DayTrace World::generate_day(std::size_t isp, dns::Day day) {
  util::require(isp < machines_.size(), "World::generate_day: ISP index out of range");
  util::require(day >= 0 && day <= kHorizonDays,
                "World::generate_day: day outside the simulated horizon");
  if (day >= background_cursor_) {
    replay_background(background_cursor_, day);
    background_cursor_ = day + 1;
  }

  util::Rng rng = master_.fork(kStreamTrafficBase +
                               static_cast<std::uint64_t>(isp) * (kHorizonDays + 1) +
                               static_cast<std::uint64_t>(day));

  dns::DayTrace trace;
  trace.day = day;

  const auto emit = [&](const std::string& machine, const std::string& qname,
                        const std::vector<dns::IpV4>& ips) {
    trace.records.push_back({day, machine, qname, ips});
    activity_.mark_active(qname, day);
    activity_.mark_active(psl_.e2ld_or_self(qname), day);
  };

  const auto emit_popular_visit = [&](const std::string& machine) {
    const auto& site = popular_[popularity_->sample(rng)];
    const std::size_t fqdn =
        site.fqdns.size() == 1 || rng.next_bool(0.6) ? 0 : 1 + rng.next_below(site.fqdns.size() - 1);
    emit(machine, site.fqdns[fqdn], site.ips);
  };

  // Malware records a prober would scan: blacklist dumps propagate to
  // third-party tools with delay, so probers work from week-old entries.
  std::vector<std::size_t> listed_today;
  if (config_.prober_fraction > 0.0) {
    for (std::size_t i = 0; i < malware_.size(); ++i) {
      if (malware_[i].commercial_listed && malware_[i].commercial_day <= day - 7) {
        listed_today.push_back(i);
      }
    }
  }

  for (const auto& machine : machines_[isp]) {
    switch (machine.kind) {
      case MachineKind::kProxy: {
        for (std::size_t k = 0; k < config_.proxy_domains_per_day; ++k) {
          emit_popular_visit(machine.name);
        }
        // Proxies also forward one-off junk from behind the NAT.
        const auto junk = rng.next_poisson(20.0);
        for (std::uint64_t k = 0; k < junk; ++k) {
          emit(machine.name,
               random_label(rng, 10) + "." + random_label(rng, 7) + ".net",
               {random_fresh_ip(rng)});
        }
        break;
      }
      case MachineKind::kInactive: {
        const std::size_t k = 1 + rng.next_below(5);
        for (std::size_t i = 0; i < k; ++i) {
          emit_popular_visit(machine.name);
        }
        break;
      }
      case MachineKind::kProber: {
        // A security tool probing the blacklist: hundreds of known-malware
        // queries plus a little ordinary browsing for cover.
        for (std::size_t i = 0; i < 15; ++i) {
          emit_popular_visit(machine.name);
        }
        const std::size_t k =
            std::min(config_.prober_blacklist_queries, listed_today.size());
        if (k > 0) {
          const auto chosen = rng.sample_without_replacement(listed_today.size(), k);
          for (const auto pick : chosen) {
            const auto& record = malware_[listed_today[pick]];
            emit(machine.name, record.name, record.ips);
          }
        }
        // Scanners also probe whatever merely *looks* suspicious: obscure
        // sites and free-registration blogs. This is the noise the paper
        // warns about — it plants "infected machine" evidence on benign
        // domains.
        for (std::size_t i = 0; i < config_.prober_blacklist_queries / 3; ++i) {
          if (!freereg_benign_.empty() && rng.next_bool(0.5)) {
            const auto& site = freereg_benign_[rng.next_below(freereg_benign_.size())];
            if (site.born <= day) {
              emit(machine.name, site.fqdns.front(), site.ips);
            }
          } else if (!unpopular_.empty()) {
            const auto& site = unpopular_[rng.next_below(unpopular_.size())];
            emit(machine.name, site.fqdns.front(), site.ips);
          }
        }
        break;
      }
      case MachineKind::kBenign:
      case MachineKind::kInfected: {
        const auto visits =
            std::max<std::uint64_t>(6, rng.next_poisson(machine.browse_budget));
        for (std::uint64_t i = 0; i < visits; ++i) {
          emit_popular_visit(machine.name);
        }
        // Free-registration zone browsing (skip not-yet-born blogs).
        // Users whose machines end up infected browse riskier corners of
        // the web more often — which also puts benign blogs in front of
        // infected machines and stresses the machine-behavior features.
        const double freereg_visit_prob =
            machine.kind == MachineKind::kInfected ? 0.4 : 0.15;
        if (!freereg_benign_.empty() && rng.next_bool(freereg_visit_prob)) {
          const auto& site = freereg_benign_[rng.next_below(freereg_benign_.size())];
          if (site.born <= day) {
            emit(machine.name, site.fqdns.front(), site.ips);
          }
        }
        // Long-tail browsing: a few visits to unpopular-but-real domains.
        if (unpopularity_ != nullptr) {
          const auto visits_to_tail = rng.next_poisson(config_.unpopular_visits_per_day);
          for (std::uint64_t t = 0; t < visits_to_tail; ++t) {
            const auto& site = unpopular_[unpopularity_->sample(rng)];
            emit(machine.name, site.fqdns.front(), site.ips);
          }
        }
        // One-off tail domains (single-machine noise; R3 fodder).
        const auto tails = rng.next_poisson(config_.tail_domains_per_day);
        for (std::uint64_t t = 0; t < tails; ++t) {
          const auto name = random_label(rng, 10) + "." + random_label(rng, 7) + ".net";
          const auto ip = random_fresh_ip(rng);
          emit(machine.name, name, {ip});
          pdns_.add_observation(day, ip, dns::PdnsAssociation::kUnknown);
        }
        // Malware C&C traffic.
        if (machine.kind == MachineKind::kInfected) {
          for (const auto family : machine.families) {
            const auto& active = family_active(family, day);
            if (active.empty()) {
              continue;
            }
            // ~1/5 of infections phone a single domain; the rest spread
            // over several, with the configured mean (drives Figure 3).
            // Means below 2 model deliberately quiet bots.
            std::uint64_t q;
            if (config_.cc_queries_mean <= 2.0) {
              q = 1 + rng.next_poisson(std::max(0.0, config_.cc_queries_mean - 1.0));
            } else {
              q = rng.next_bool(0.22) ? 1 : 2 + rng.next_poisson(config_.cc_queries_mean - 2.0);
            }
            q = std::min<std::uint64_t>(q, active.size());
            const auto chosen =
                rng.sample_without_replacement(active.size(), static_cast<std::size_t>(q));
            for (const auto pick : chosen) {
              const auto& record = malware_[active[pick]];
              emit(machine.name, record.name, record.ips);
            }
          }
        }
        break;
      }
    }
  }
  return trace;
}

bool World::is_true_malware(std::string_view domain) const {
  return blacklist_->family_of(domain).has_value();
}

bool World::is_infected_machine(std::string_view machine) const {
  for (const auto& machines : machines_) {
    for (const auto& entry : machines) {
      if (entry.name == machine) {
        return entry.kind == MachineKind::kInfected;
      }
    }
  }
  return false;
}

std::size_t World::infected_machine_count(std::size_t isp) const {
  util::require(isp < machines_.size(), "infected_machine_count: ISP index out of range");
  std::size_t count = 0;
  for (const auto& entry : machines_[isp]) {
    count += entry.kind == MachineKind::kInfected ? 1 : 0;
  }
  return count;
}

std::vector<std::string> World::active_malware_domains(dns::Day day) const {
  util::require(day >= -config_.warmup_days && day <= kHorizonDays,
                "World::active_malware_domains: day outside horizon");
  std::vector<std::string> names;
  const auto index = static_cast<std::size_t>(day + config_.warmup_days);
  for (const auto& per_family : family_active_[index]) {
    for (const auto domain_index : per_family) {
      names.push_back(malware_[domain_index].name);
    }
  }
  return names;
}

}  // namespace seg::sim
