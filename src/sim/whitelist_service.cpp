#include "sim/whitelist_service.h"

#include <algorithm>

namespace seg::sim {

WhitelistService::WhitelistService(std::vector<std::string> stable,
                                   std::vector<std::string> freereg_noise)
    : stable_(std::move(stable)) {
  for (const auto& name : stable_) {
    all_.insert(name);
  }
  for (const auto& name : freereg_noise) {
    all_.insert(name);
    noise_.insert(name);
  }
}

graph::NameSet WhitelistService::top(std::size_t k) const {
  graph::NameSet set;
  const std::size_t n = std::min(k, stable_.size());
  for (std::size_t i = 0; i < n; ++i) {
    set.insert(stable_[i]);
  }
  return set;
}

}  // namespace seg::sim
