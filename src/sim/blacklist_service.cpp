#include "sim/blacklist_service.h"

#include <algorithm>

namespace seg::sim {

BlacklistService::BlacklistService(std::vector<MalwareDomainInfo> domains,
                                   std::vector<std::string> public_noise)
    : records_(std::move(domains)), public_noise_(std::move(public_noise)) {
  index_.reserve(records_.size());
  for (std::size_t i = 0; i < records_.size(); ++i) {
    index_.emplace(records_[i].name, i);
    family_count_ = std::max<std::size_t>(family_count_, records_[i].family + 1);
  }
}

graph::NameSet BlacklistService::as_of(BlacklistKind kind, dns::Day day) const {
  graph::NameSet set;
  for (const auto& record : records_) {
    const bool listed = kind == BlacklistKind::kCommercial ? record.commercial_listed
                                                           : record.public_listed;
    const dns::Day listed_day =
        kind == BlacklistKind::kCommercial ? record.commercial_day : record.public_day;
    if (listed && listed_day <= day) {
      set.insert(record.name);
    }
  }
  if (kind == BlacklistKind::kPublic) {
    for (const auto& noise : public_noise_) {
      set.insert(noise);
    }
  }
  return set;
}

std::optional<FamilyId> BlacklistService::family_of(std::string_view domain) const {
  const auto it = index_.find(domain);
  if (it == index_.end()) {
    return std::nullopt;
  }
  return records_[it->second].family;
}

std::optional<dns::Day> BlacklistService::listed_day(std::string_view domain,
                                                     BlacklistKind kind) const {
  const auto it = index_.find(domain);
  if (it == index_.end()) {
    return std::nullopt;
  }
  const auto& record = records_[it->second];
  if (kind == BlacklistKind::kCommercial) {
    return record.commercial_listed ? std::optional<dns::Day>(record.commercial_day)
                                    : std::nullopt;
  }
  return record.public_listed ? std::optional<dns::Day>(record.public_day) : std::nullopt;
}

}  // namespace seg::sim
