// Ground-truth records shared by the simulator's oracle services.
#pragma once

#include <string>
#include <vector>

#include "dns/ip.h"
#include "dns/types.h"

namespace seg::sim {

/// Identifier of a malware family (dense, assigned by the world).
using FamilyId = std::uint32_t;

/// Everything the world knows about one true malware-control domain.
struct MalwareDomainInfo {
  std::string name;
  FamilyId family = 0;
  dns::Day first_active = 0;         ///< day the domain went live
  dns::Day retired = -1;             ///< day it stopped being used (-1: still active)
  std::vector<dns::IpV4> ips;        ///< control server addresses
  bool under_freereg_zone = false;   ///< hosted under a free-registration zone

  bool commercial_listed = false;    ///< ever discovered by the commercial list
  dns::Day commercial_day = 0;       ///< day it enters the commercial list
  bool public_listed = false;
  dns::Day public_day = 0;
  bool in_sandbox_db = false;        ///< observed in sandbox malware runs
};

}  // namespace seg::sim
