// Scenario configuration for the synthetic ISP traffic model.
//
// The real evaluation data (two regional ISPs' resolver traffic, a
// commercial C&C blacklist, an Alexa archive, a passive DNS database) is
// unobtainable; this generator substitutes synthetic equivalents that
// exercise the same code paths and preserve the structural properties
// Segugio's features key on. See DESIGN.md ("Data gates and substitutions")
// for the full rationale.
#pragma once

#include <cstdint>
#include <vector>

#include "dns/types.h"

namespace seg::sim {

struct ScenarioConfig {
  std::uint64_t seed = 20150622;  // DSN'15 presentation date, arbitrary

  // --- Benign domain catalog -------------------------------------------
  /// Number of popular registrable domains (e2LDs). Popularity over them is
  /// Zipf(zipf_exponent).
  std::size_t popular_e2lds = 5000;
  /// Maximum FQDNs (www, mail, cdn, apex, ...) under each popular e2LD.
  std::size_t max_fqdns_per_e2ld = 4;
  double zipf_exponent = 1.0;
  /// "Free registration" zones (egloos.com-style). They are popular enough
  /// to be whitelisted but are NOT in the public suffix list — exactly the
  /// whitelist noise the paper's FP analysis traces (Section IV-D).
  std::size_t freereg_zones = 12;
  /// Benign subdomains browsed under each free-registration zone.
  std::size_t freereg_subdomains = 40;

  // --- Malware families -------------------------------------------------
  std::size_t families = 40;
  /// Active C&C domains per family at any time.
  std::size_t cc_domains_per_family = 8;
  /// Daily probability that an active C&C domain relocates (retire + mint),
  /// the paper's "network agility" (intuition 1).
  double cc_relocation_prob = 0.10;
  /// Probability a newly minted C&C domain hides under a free-registration
  /// zone instead of a dedicated registration.
  double cc_freereg_abuse_prob = 0.15;
  /// Probability a C&C domain points into the shared "bulletproof" abused
  /// IP pools (reused across families) rather than fresh space.
  double cc_abused_ip_prob = 0.7;
  /// Number of /24s in the shared abused pool.
  std::size_t abused_prefixes = 25;
  /// Probability a popular benign site also has an address in "dirty"
  /// shared hosting space (the abused pool). Reputation-only systems
  /// mislabel such domains (Table IV's Notos FP breakdown); Segugio's
  /// machine-behavior features keep them clean.
  double dirty_hosting_prob = 0.08;

  /// Fraction of families that are "stealthy": they rotate control domains
  /// faster, evade blacklists more often, and prefer fresh IP space. Their
  /// domains are the hard cases that keep the TP rate below 100% at low
  /// FP budgets, as in the paper's ROC curves.
  double stealthy_family_fraction = 0.3;
  double stealth_relocation_multiplier = 2.5;
  double stealth_coverage_multiplier = 0.4;
  double stealth_abused_ip_multiplier = 0.25;

  /// Probability a C&C domain was registered early and kept lightly
  /// "dormant" before weaponization (Section II-A3 motivates the activity
  /// features with exactly this case): its name shows sporadic background
  /// activity for the weeks before first_active.
  double cc_dormant_prob = 0.45;
  dns::Day cc_dormant_days = 30;
  double cc_dormant_activity_prob = 0.4;

  /// Fraction of benign free-registration subdomains that are born during
  /// the simulated period rather than existing since the beginning (new
  /// blogs appear all the time); a newborn benign blog under an old zone
  /// is the classic false-positive shape.
  double freereg_sub_young_fraction = 0.5;

  // --- Machine populations (one entry per simulated ISP) ----------------
  std::vector<std::size_t> isp_machines = {8000, 16000};
  double infected_fraction = 0.05;
  /// Zipf exponent of family prevalence across infected machines (0 would
  /// be uniform; higher concentrates infections in a few big botnets).
  double family_prevalence_exponent = 0.45;
  /// Probability an infected machine carries a second (and, squared, a
  /// third) family — the multi-infection effect behind the cross-family
  /// result (Section IV-C).
  double multi_infection_prob = 0.3;
  double proxy_fraction = 0.0008;
  /// Fraction of machines that query <= 5 domains per day (R1 fodder).
  double inactive_fraction = 0.13;
  /// Fraction of machines running security "probers" that continuously
  /// query large lists of known malware domains (Section VI noise). Off by
  /// default; bench_probing_noise turns it on.
  double prober_fraction = 0.0;
  /// Known-malware domains a prober checks per day.
  std::size_t prober_blacklist_queries = 120;

  // --- Daily browsing behaviour -----------------------------------------
  /// Mean distinct e2LDs visited per active machine per day.
  double mean_e2lds_per_day = 22.0;
  /// Mean one-off "tail" domains (queried by a single machine, R3 fodder)
  /// per machine per day.
  double tail_domains_per_day = 0.25;
  /// Pool of unpopular-but-real domains visited by a few machines each;
  /// most survive pruning as *unknown* nodes (the classification load).
  /// Keeps the pruned-domain share near the paper's ~26%.
  std::size_t unpopular_pool_size = 18000;
  double unpopular_zipf_exponent = 0.8;
  double unpopular_visits_per_day = 5.0;
  /// Mean queries an infected machine makes to its families' C&C sets per
  /// day (drives Figure 3's distribution).
  double cc_queries_mean = 4.0;
  /// Proxy nodes query this many distinct domains per day.
  std::size_t proxy_domains_per_day = 1500;

  // --- Ground-truth services ---------------------------------------------
  /// Commercial blacklist: coverage of true C&C domains and mean discovery
  /// lag in days (geometric-ish tail up to several weeks, Figure 11).
  double commercial_coverage = 0.85;
  double commercial_lag_mean = 2.5;
  /// Public blacklists: lower coverage, slower, slightly noisy (IV-E).
  double public_coverage = 0.35;
  double public_lag_mean = 8.0;
  std::size_t public_noise_domains = 4;
  /// Whitelist: fraction of popular e2LDs that made the stable top list.
  double whitelist_coverage = 0.9;
  /// Sandbox trace DB: fraction of true C&C domains ever seen in sandbox
  /// runs, plus a few popular benign names (malware queries those too).
  double sandbox_coverage = 0.25;

  // --- History -----------------------------------------------------------
  /// Days of pre-history simulated for the activity index and the pDNS
  /// database before day 0 (paper: W ~ 5 months).
  dns::Day warmup_days = 150;

  /// Small scenario for unit tests (hundreds of machines, fast).
  static ScenarioConfig small();

  /// Default benchmark scale (about 1:400 of the paper's ISPs; one core).
  static ScenarioConfig bench();
};

}  // namespace seg::sim
