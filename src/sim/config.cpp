#include "sim/config.h"

namespace seg::sim {

ScenarioConfig ScenarioConfig::small() {
  ScenarioConfig config;
  config.popular_e2lds = 300;
  config.freereg_zones = 4;
  config.freereg_subdomains = 10;
  config.families = 6;
  config.cc_domains_per_family = 6;
  config.cc_relocation_prob = 0.08;
  config.commercial_lag_mean = 1.5;
  config.abused_prefixes = 8;
  config.isp_machines = {400, 600};
  config.infected_fraction = 0.06;
  config.multi_infection_prob = 0.35;
  config.cc_queries_mean = 3.0;
  config.mean_e2lds_per_day = 15.0;
  config.tail_domains_per_day = 0.5;
  config.unpopular_pool_size = 2000;
  config.unpopular_visits_per_day = 2.0;
  config.proxy_domains_per_day = 300;
  config.warmup_days = 40;
  return config;
}

ScenarioConfig ScenarioConfig::bench() {
  return ScenarioConfig{};  // the defaults are the bench scale
}

}  // namespace seg::sim
