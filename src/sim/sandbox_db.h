// Sandbox network-trace database.
//
// The paper uses "a separate large database of malware network traces
// obtained by executing malware samples in a sandbox" to vet false
// positives (Table III) and to explain Notos's FPs (Table IV). This store
// answers one question: was this domain ever contacted by a sandboxed
// malware sample?
#pragma once

#include <string_view>

#include "graph/labeling.h"

namespace seg::sim {

class SandboxTraceDb {
 public:
  SandboxTraceDb() = default;
  explicit SandboxTraceDb(graph::NameSet contacted) : contacted_(std::move(contacted)) {}

  bool contacted_by_malware(std::string_view domain) const {
    return contacted_.contains(domain);
  }

  std::size_t size() const { return contacted_.size(); }

 private:
  graph::NameSet contacted_;
};

}  // namespace seg::sim
