// Whitelist oracle: "consistently popular" effective 2LDs.
//
// Mirrors the paper's one-year Alexa archive filtering (Section III): a
// large list of stable popular e2LDs, *including* — as deliberate noise —
// the free-registration zones the authors failed to filter out, which is
// the dominant source of their measured false positives (Section IV-D).
#pragma once

#include <string>
#include <vector>

#include "graph/labeling.h"

namespace seg::sim {

class WhitelistService {
 public:
  /// `stable` are ordinary popular e2LDs in decreasing popularity order;
  /// `freereg_noise` are free-registration zone e2LDs that slipped in.
  WhitelistService(std::vector<std::string> stable, std::vector<std::string> freereg_noise);

  /// The full whitelist (stable + noise), as used to label benign domains.
  const graph::NameSet& all() const { return all_; }

  /// The most popular `k` stable e2LDs (no noise) — the "top 100K Alexa"
  /// style subset used to train Notos and Segugio in Section V.
  graph::NameSet top(std::size_t k) const;

  std::size_t size() const { return all_.size(); }

  /// True when the e2LD is one of the noisy free-registration zones.
  bool is_freereg_noise(std::string_view e2ld) const { return noise_.contains(e2ld); }

  const std::vector<std::string>& stable_entries() const { return stable_; }

 private:
  std::vector<std::string> stable_;
  graph::NameSet all_;
  graph::NameSet noise_;
};

}  // namespace seg::sim
