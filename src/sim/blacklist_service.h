// Blacklist oracle with coverage and discovery lag.
//
// The paper labels ground truth from a commercial C&C blacklist (carefully
// vetted, with malware-family annotations) and, in Section IV-E, from a
// smaller set of public blacklists (lower coverage, some mislabeled
// entries). Both are views over the simulator's true malware-domain
// population: a domain enters a view only if that view "discovered" it
// (coverage), and only from its discovery day onward (lag) — the lag is
// what the early-detection experiment (Figure 11) measures against.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "dns/types.h"
#include "graph/labeling.h"
#include "sim/ground_truth.h"

namespace seg::sim {

enum class BlacklistKind { kCommercial, kPublic };

class BlacklistService {
 public:
  /// `domains` are the world's ground-truth records (copied; the service
  /// also owns the public list's noise entries).
  BlacklistService(std::vector<MalwareDomainInfo> domains,
                   std::vector<std::string> public_noise);

  /// Domains present in the given view as of (i.e. with discovery day <=)
  /// `day`. Public views include their noise entries on every day.
  graph::NameSet as_of(BlacklistKind kind, dns::Day day) const;

  /// Family of a blacklisted domain (commercial metadata). Empty for noise
  /// entries and unknown names.
  std::optional<FamilyId> family_of(std::string_view domain) const;

  /// Day the domain entered the view; nullopt when never discovered by it.
  std::optional<dns::Day> listed_day(std::string_view domain, BlacklistKind kind) const;

  /// All ground-truth records (for evaluation code that needs the truth).
  const std::vector<MalwareDomainInfo>& records() const { return records_; }

  /// Distinct families across all records.
  std::size_t family_count() const { return family_count_; }

 private:
  struct StringHash {
    using is_transparent = void;
    std::size_t operator()(std::string_view s) const noexcept {
      return std::hash<std::string_view>{}(s);
    }
  };

  std::vector<MalwareDomainInfo> records_;
  std::vector<std::string> public_noise_;
  std::unordered_map<std::string, std::size_t, StringHash, std::equal_to<>> index_;
  std::size_t family_count_ = 0;
};

}  // namespace seg::sim
