// The synthetic ISP world: machines, domains, malware families, and the
// oracle services derived from them.
//
// The world is fully deterministic given the scenario seed. At
// construction it:
//   1. builds the benign domain catalog (popular sites with Zipf
//      popularity, free-registration zones, hosting IPs);
//   2. evolves every malware family day-by-day from -warmup_days through
//      +horizon_days, recording each control domain's lifetime, hosting
//      IPs, and (lagged) discovery by the commercial and public blacklists;
//   3. replays the warmup period into the domain-activity index and the
//      passive DNS database, so day-0 graphs see a realistic history;
//   4. materializes the blacklist/whitelist/sandbox oracles.
//
// Afterwards, generate_day(isp, day) produces one day of query-log records
// for one ISP. Per-(isp, day) RNG forking makes traces independent of call
// order, and background state (activity, pDNS) is advanced for *all* days
// up to the requested one, so sparse sampling of days (the paper's
// cross-day gaps) still sees a continuous history.
#pragma once

#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "dns/activity_index.h"
#include "dns/pdns.h"
#include "dns/public_suffix_list.h"
#include "dns/query_log.h"
#include "sim/blacklist_service.h"
#include "sim/config.h"
#include "sim/ground_truth.h"
#include "sim/sandbox_db.h"
#include "sim/whitelist_service.h"
#include "util/rng.h"

namespace seg::sim {

class World {
 public:
  /// Simulation horizon: generate_day accepts days in [0, kHorizonDays].
  static constexpr dns::Day kHorizonDays = 120;

  explicit World(ScenarioConfig config);

  std::size_t isp_count() const { return machines_.size(); }

  /// One day of DNS traffic for one ISP. `day` in [0, kHorizonDays].
  /// Deterministic per (isp, day); independent of call order.
  dns::DayTrace generate_day(std::size_t isp, dns::Day day);

  const ScenarioConfig& config() const { return config_; }
  const dns::PublicSuffixList& psl() const { return psl_; }
  const dns::DomainActivityIndex& activity() const { return activity_; }
  const dns::PassiveDnsDb& pdns() const { return pdns_; }
  const BlacklistService& blacklist() const { return *blacklist_; }
  const WhitelistService& whitelist() const { return *whitelist_; }
  const SandboxTraceDb& sandbox() const { return sandbox_; }

  /// Ground truth: true iff `domain` is a real malware-control domain
  /// (regardless of whether any blacklist discovered it).
  bool is_true_malware(std::string_view domain) const;

  /// Ground truth: true iff `machine` is one of the infected machines
  /// (regardless of what its traffic revealed so far).
  bool is_infected_machine(std::string_view machine) const;

  /// Total infected machines in the given ISP.
  std::size_t infected_machine_count(std::size_t isp) const;

  /// True malware-control domains active (queried by bots) on `day`.
  std::vector<std::string> active_malware_domains(dns::Day day) const;

 private:
  struct Site {
    std::string e2ld;
    std::vector<std::string> fqdns;
    std::vector<dns::IpV4> ips;
    /// First day the site exists (relevant for free-registration
    /// subdomains, which are born throughout the simulation).
    dns::Day born = std::numeric_limits<dns::Day>::min();
  };

  enum class MachineKind : unsigned char { kBenign, kInfected, kProxy, kInactive, kProber };

  struct Machine {
    std::string name;
    MachineKind kind = MachineKind::kBenign;
    std::vector<FamilyId> families;  // non-empty iff kInfected
    double browse_budget = 20.0;     // mean distinct e2LDs per day
  };

  void build_catalog(util::Rng& rng);
  void build_machines(util::Rng& rng);
  void evolve_families(util::Rng& rng);
  void build_oracles(util::Rng& rng);
  void replay_background(dns::Day from, dns::Day to);

  dns::IpV4 random_abused_ip(util::Rng& rng) const;
  static dns::IpV4 random_fresh_ip(util::Rng& rng);
  static dns::IpV4 freereg_zone_ip(std::size_t zone, util::Rng& rng);
  static std::string random_label(util::Rng& rng, std::size_t length);

  // Active C&C domain indices (into malware_) for family f on `day`.
  const std::vector<std::size_t>& family_active(FamilyId f, dns::Day day) const;

  ScenarioConfig config_;
  dns::PublicSuffixList psl_;

  // Catalog.
  std::vector<Site> popular_;
  std::unique_ptr<util::ZipfSampler> popularity_;
  std::vector<Site> unpopular_;
  std::unique_ptr<util::ZipfSampler> unpopularity_;
  std::vector<std::string> freereg_zone_names_;
  std::vector<Site> freereg_benign_;  // benign subdomain sites under zones
  std::vector<std::uint32_t> abused_prefixes_;

  // Malware ground truth and per-day family state.
  std::vector<MalwareDomainInfo> malware_;
  // family_active_[day + warmup][family] -> indices into malware_.
  std::vector<std::vector<std::vector<std::size_t>>> family_active_;

  // Machines per ISP.
  std::vector<std::vector<Machine>> machines_;

  // Background state.
  dns::DomainActivityIndex activity_;
  dns::PassiveDnsDb pdns_;
  dns::Day background_cursor_ = 0;  // next background day to replay

  // Oracles.
  std::unique_ptr<BlacklistService> blacklist_;
  std::unique_ptr<WhitelistService> whitelist_;
  SandboxTraceDb sandbox_;

  util::Rng master_;
};

}  // namespace seg::sim
