#include "baselines/cooccurrence.h"

namespace seg::baselines {

CooccurrenceResult run_cooccurrence(const graph::MachineDomainGraph& graph) {
  CooccurrenceResult result;
  result.domain_score.assign(graph.domain_count(), 0.0);
  for (graph::DomainId d = 0; d < graph.domain_count(); ++d) {
    const auto machines = graph.machines_of(d);
    if (machines.empty()) {
      continue;
    }
    std::size_t cooccurring = 0;
    for (const auto m : machines) {
      cooccurring += graph.machine_label(m) == graph::Label::kMalware ? 1 : 0;
    }
    result.domain_score[d] =
        static_cast<double>(cooccurring) / static_cast<double>(machines.size());
  }
  return result;
}

}  // namespace seg::baselines
