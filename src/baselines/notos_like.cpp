#include "baselines/notos_like.h"

#include <algorithm>
#include <cmath>

#include "util/require.h"

namespace seg::baselines {

namespace {

const std::vector<std::string>& notos_feature_names() {
  static const std::vector<std::string> names = {
      "name_length",     "num_labels",       "digit_fraction", "hyphen_count",
      "char_entropy",    "e2ld_age_days",    "e2ld_active_30", "ip_malware_fraction",
      "prefix_malware_fraction", "resolved_ip_count"};
  return names;
}

double character_entropy(std::string_view name) {
  std::array<std::size_t, 256> counts{};
  std::size_t total = 0;
  for (const char c : name) {
    if (c == '.') {
      continue;
    }
    ++counts[static_cast<unsigned char>(c)];
    ++total;
  }
  if (total == 0) {
    return 0.0;
  }
  double entropy = 0.0;
  for (const auto count : counts) {
    if (count == 0) {
      continue;
    }
    const double p = static_cast<double>(count) / static_cast<double>(total);
    entropy -= p * std::log2(p);
  }
  return entropy;
}

}  // namespace

NotosLikeClassifier::NotosLikeClassifier(NotosConfig config) : config_(config) {}

std::array<double, kNotosFeatureCount> NotosLikeClassifier::measure(
    const graph::MachineDomainGraph& graph, graph::DomainId d,
    const dns::DomainActivityIndex& activity, const dns::PassiveDnsDb& pdns) const {
  std::array<double, kNotosFeatureCount> features{};
  const auto name = graph.domain_name(d);
  const auto e2ld = graph.e2ld_name(graph.domain_e2ld(d));
  const dns::Day t_now = graph.day();

  // String statistics.
  features[0] = static_cast<double>(name.size());
  features[1] = static_cast<double>(1 + std::count(name.begin(), name.end(), '.'));
  const auto digits = std::count_if(name.begin(), name.end(),
                                    [](char c) { return c >= '0' && c <= '9'; });
  features[2] = static_cast<double>(digits) / static_cast<double>(name.size());
  features[3] = static_cast<double>(std::count(name.begin(), name.end(), '-'));
  features[4] = character_entropy(name);

  // Zone history.
  const auto first_seen = activity.first_seen(e2ld);
  features[5] = !first_seen.has_value()
                    ? 0.0
                    : std::min(365.0, static_cast<double>(t_now - *first_seen));
  features[6] = activity.active_days(e2ld, t_now - 29, t_now);

  // Network evidence.
  const auto ips = graph.resolved_ips(d);
  if (!ips.empty()) {
    const dns::Day from = t_now - config_.pdns_window_days;
    const dns::Day to = t_now - 1;
    std::size_t ip_malware = 0;
    std::size_t prefix_malware = 0;
    for (const auto ip : ips) {
      ip_malware += pdns.ip_malware_associated(ip, from, to) ? 1 : 0;
      prefix_malware += pdns.prefix_malware_associated(ip, from, to) ? 1 : 0;
    }
    features[7] = static_cast<double>(ip_malware) / static_cast<double>(ips.size());
    features[8] = static_cast<double>(prefix_malware) / static_cast<double>(ips.size());
  }
  features[9] = static_cast<double>(ips.size());
  return features;
}

bool NotosLikeClassifier::rejects(const graph::MachineDomainGraph& graph, graph::DomainId d,
                                  const dns::DomainActivityIndex& activity,
                                  const dns::PassiveDnsDb& pdns) const {
  const auto e2ld = graph.e2ld_name(graph.domain_e2ld(d));
  const dns::Day t_now = graph.day();
  const auto first_seen = activity.first_seen(e2ld);
  const bool young_zone =
      !first_seen.has_value() || (t_now - *first_seen) < config_.min_history_days;
  if (!young_zone) {
    return false;
  }
  // Young zone: classify anyway only when the *exact* resolved addresses
  // carry labeled reputation history. Sightings of other unknown domains
  // on the address are not reputation evidence, and neighbors in the /24
  // are not enough to build a reputation for this domain.
  const dns::Day from = t_now - config_.pdns_window_days;
  const dns::Day to = t_now - 1;
  for (const auto ip : graph.resolved_ips(d)) {
    if (pdns.ip_malware_associated(ip, from, to)) {
      return false;
    }
  }
  return true;
}

void NotosLikeClassifier::train(const graph::MachineDomainGraph& graph,
                                const dns::DomainActivityIndex& activity,
                                const dns::PassiveDnsDb& pdns, const graph::NameSet& blacklist,
                                const graph::NameSet& whitelist_e2lds) {
  ml::Dataset dataset(notos_feature_names());
  for (graph::DomainId d = 0; d < graph.domain_count(); ++d) {
    const auto name = graph.domain_name(d);
    const auto e2ld = graph.e2ld_name(graph.domain_e2ld(d));
    int label;
    if (blacklist.contains(name)) {
      label = 1;
    } else if (whitelist_e2lds.contains(e2ld)) {
      label = 0;
    } else {
      continue;
    }
    dataset.add_row(measure(graph, d, activity, pdns), label);
  }
  util::require(dataset.count_label(0) > 0 && dataset.count_label(1) > 0,
                "NotosLikeClassifier::train: need both classes in the training graph");
  forest_ = std::make_unique<ml::RandomForest>(config_.forest);
  forest_->train(dataset);
}

bool NotosLikeClassifier::is_trained() const {
  return forest_ != nullptr && forest_->is_trained();
}

std::optional<double> NotosLikeClassifier::score(const graph::MachineDomainGraph& graph,
                                                 graph::DomainId d,
                                                 const dns::DomainActivityIndex& activity,
                                                 const dns::PassiveDnsDb& pdns) const {
  util::require(is_trained(), "NotosLikeClassifier::score: not trained");
  if (rejects(graph, d, activity, pdns)) {
    return std::nullopt;
  }
  return forest_->predict_proba(measure(graph, d, activity, pdns));
}

}  // namespace seg::baselines
