#include "baselines/lbp.h"

#include <algorithm>
#include <cmath>

#include "util/require.h"
#include "util/thread_pool.h"

namespace seg::baselines {

namespace {

constexpr double kMessageFloor = 1e-9;

double clamp_prob(double p) {
  return std::clamp(p, kMessageFloor, 1.0 - kMessageFloor);
}

// log node potential for (benign, malware) given a label.
std::pair<double, double> log_potential(graph::Label label, const LbpConfig& config) {
  switch (label) {
    case graph::Label::kMalware:
      return {std::log(1.0 - config.labeled_confidence), std::log(config.labeled_confidence)};
    case graph::Label::kBenign:
      return {std::log(config.labeled_confidence), std::log(1.0 - config.labeled_confidence)};
    case graph::Label::kUnknown:
      return {std::log(1.0 - config.unknown_prior), std::log(config.unknown_prior)};
  }
  return {0.0, 0.0};
}

}  // namespace

LbpResult run_loopy_belief_propagation(const graph::MachineDomainGraph& graph,
                                       const LbpConfig& config) {
  util::require(config.edge_potential > 0.5 && config.edge_potential < 1.0,
                "LBP: edge_potential must be in (0.5, 1)");
  util::require(config.labeled_confidence > 0.5 && config.labeled_confidence < 1.0,
                "LBP: labeled_confidence must be in (0.5, 1)");

  const std::size_t num_machines = graph.machine_count();
  const std::size_t num_domains = graph.domain_count();
  const std::size_t num_edges = graph.edge_count();

  // Edge-slot base offset per node in each CSR direction.
  std::vector<std::size_t> machine_base(num_machines + 1, 0);
  for (graph::MachineId m = 0; m < num_machines; ++m) {
    machine_base[m + 1] = machine_base[m] + graph.domains_of(m).size();
  }
  std::vector<std::size_t> domain_base(num_domains + 1, 0);
  for (graph::DomainId d = 0; d < num_domains; ++d) {
    domain_base[d + 1] = domain_base[d] + graph.machines_of(d).size();
  }

  // Cross-index between the two CSR directions: for the k-th edge slot of
  // machine m (pointing at domain d), dm_slot[k] is the slot of the same
  // edge in d's machine list, and vice versa. Machine adjacency lists are
  // sorted by domain id and domain lists by machine id, so a binary search
  // per edge suffices.
  std::vector<std::size_t> dm_slot_of_md(num_edges);
  std::vector<std::size_t> md_slot_of_dm(num_edges);
  {
    std::size_t dm = 0;
    for (graph::DomainId d = 0; d < num_domains; ++d) {
      for (const auto m : graph.machines_of(d)) {
        const auto domains = graph.domains_of(m);
        const auto it = std::lower_bound(domains.begin(), domains.end(), d);
        const auto md = machine_base[m] + static_cast<std::size_t>(it - domains.begin());
        dm_slot_of_md[md] = dm;
        md_slot_of_dm[dm] = md;
        ++dm;
      }
    }
  }

  // Messages hold P(malware); P(benign) = 1 - value. msg_md: machine ->
  // domain (indexed by machine CSR slot); msg_dm: domain -> machine.
  std::vector<double> msg_md(num_edges, 0.5);
  std::vector<double> msg_dm(num_edges, 0.5);
  std::vector<double> next_md(num_edges);
  std::vector<double> next_dm(num_edges);

  const double e = config.edge_potential;

  LbpResult result;
  result.domain_belief.assign(num_domains, config.unknown_prior);
  result.machine_belief.assign(num_machines, config.unknown_prior);

  // The synchronous schedule makes every node's update independent within
  // a half-iteration, so both sweeps parallelize with identical results
  // for any thread count.
  util::ThreadPool pool(config.num_threads);
  std::vector<double> machine_delta(num_machines, 0.0);
  std::vector<double> domain_delta(num_domains, 0.0);

  // Sends messages from one node to all its neighbors given its potential
  // and incoming messages; returns the largest message change.
  const auto update_node = [&](const std::pair<double, double>& potential,
                               std::size_t degree, std::size_t out_base,
                               const auto& incoming_slot, std::vector<double>& out,
                               const std::vector<double>& current_out,
                               const std::vector<double>& in) {
    double sum_b = potential.first;
    double sum_m = potential.second;
    for (std::size_t k = 0; k < degree; ++k) {
      const double incoming = clamp_prob(in[incoming_slot(k)]);
      sum_b += std::log(1.0 - incoming);
      sum_m += std::log(incoming);
    }
    double max_delta = 0.0;
    for (std::size_t k = 0; k < degree; ++k) {
      const double incoming = clamp_prob(in[incoming_slot(k)]);
      const double a_b = sum_b - std::log(1.0 - incoming);
      const double a_m = sum_m - std::log(incoming);
      const double shift = std::max(a_b, a_m);
      const double pb = std::exp(a_b - shift);
      const double pm = std::exp(a_m - shift);
      // message(y) = sum_x p(x) * psi(x, y)
      const double out_b = pb * e + pm * (1.0 - e);
      const double out_m = pb * (1.0 - e) + pm * e;
      const double normalized = clamp_prob(out_m / (out_b + out_m));
      max_delta = std::max(max_delta, std::abs(normalized - current_out[out_base + k]));
      out[out_base + k] = normalized;
    }
    return max_delta;
  };

  for (std::size_t iteration = 0; iteration < config.max_iterations; ++iteration) {
    // Machine -> domain messages.
    pool.parallel_for(num_machines, [&](std::size_t m_index) {
      const auto m = static_cast<graph::MachineId>(m_index);
      const auto base = machine_base[m];
      machine_delta[m] = update_node(
          log_potential(graph.machine_label(m), config), graph.domains_of(m).size(), base,
          [&](std::size_t k) { return dm_slot_of_md[base + k]; }, next_md, msg_md, msg_dm);
    });
    // Domain -> machine messages.
    pool.parallel_for(num_domains, [&](std::size_t d_index) {
      const auto d = static_cast<graph::DomainId>(d_index);
      const auto base = domain_base[d];
      domain_delta[d] = update_node(
          log_potential(graph.domain_label(d), config), graph.machines_of(d).size(), base,
          [&](std::size_t k) { return md_slot_of_dm[base + k]; }, next_dm, msg_dm, msg_md);
    });

    double max_delta = 0.0;
    for (const auto delta : machine_delta) {
      max_delta = std::max(max_delta, delta);
    }
    for (const auto delta : domain_delta) {
      max_delta = std::max(max_delta, delta);
    }
    msg_md.swap(next_md);
    msg_dm.swap(next_dm);
    result.iterations = iteration + 1;
    if (max_delta < config.convergence_epsilon) {
      result.converged = true;
      break;
    }
  }

  // Beliefs.
  pool.parallel_for(num_machines, [&](std::size_t m_index) {
    const auto m = static_cast<graph::MachineId>(m_index);
    const auto [log_b, log_m] = log_potential(graph.machine_label(m), config);
    double sum_b = log_b;
    double sum_m = log_m;
    const auto base = machine_base[m];
    for (std::size_t k = 0; k < graph.domains_of(m).size(); ++k) {
      const double incoming = clamp_prob(msg_dm[dm_slot_of_md[base + k]]);
      sum_b += std::log(1.0 - incoming);
      sum_m += std::log(incoming);
    }
    const double shift = std::max(sum_b, sum_m);
    const double pb = std::exp(sum_b - shift);
    const double pm = std::exp(sum_m - shift);
    result.machine_belief[m] = pm / (pb + pm);
  });
  pool.parallel_for(num_domains, [&](std::size_t d_index) {
    const auto d = static_cast<graph::DomainId>(d_index);
    const auto [log_b, log_m] = log_potential(graph.domain_label(d), config);
    double sum_b = log_b;
    double sum_m = log_m;
    const auto base = domain_base[d];
    for (std::size_t k = 0; k < graph.machines_of(d).size(); ++k) {
      const double incoming = clamp_prob(msg_md[md_slot_of_dm[base + k]]);
      sum_b += std::log(1.0 - incoming);
      sum_m += std::log(incoming);
    }
    const double shift = std::max(sum_b, sum_m);
    const double pb = std::exp(sum_b - shift);
    const double pm = std::exp(sum_m - shift);
    result.domain_belief[d] = pm / (pb + pm);
  });
  return result;
}

}  // namespace seg::baselines
