// Query co-occurrence baseline (Sato et al., LEET'10 — the paper's
// reference [21]).
//
// Scores an unknown domain by how strongly its querying machines co-occur
// with queries to known (blacklisted) C&C domains: the fraction of the
// domain's querying machines that also queried at least one blacklisted
// domain in the same window. Domains with zero co-occurrence are
// undetectable — the limitation Segugio's extra feature groups remove.
#pragma once

#include <vector>

#include "graph/graph.h"

namespace seg::baselines {

struct CooccurrenceResult {
  /// Score in [0, 1] per domain node (1 = all querying machines also touch
  /// blacklisted domains). Labeled domains get their trivial score too.
  std::vector<double> domain_score;
};

CooccurrenceResult run_cooccurrence(const graph::MachineDomainGraph& graph);

}  // namespace seg::baselines
