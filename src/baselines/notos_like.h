// Notos-style domain reputation baseline (Antonakakis et al., USENIX
// Security'10 — the paper's reference [3], compared against in Section V).
//
// A reputation system in Notos's spirit, with the same information
// constraints the paper's comparison hinges on:
//
//   - it models the domain NAME (string statistics) and its HISTORY
//     (how long the zone has been seen, what IP space it maps into,
//     whether that space was previously abused) — but never *who queries
//     it*, the signal Segugio is built on;
//   - it has a REJECT OPTION: domains without enough historic evidence
//     (young zone, never-seen IP space) are not classified at all, which
//     caps the achievable TP rate on fresh malware-control domains
//     (Figure 12a's plateau).
//
// Trained like the paper's setup: a malicious-domain blacklist plus the
// top-100K popular whitelist, both as of the training day.
#pragma once

#include <array>
#include <memory>
#include <optional>

#include "dns/activity_index.h"
#include "dns/pdns.h"
#include "graph/labeling.h"
#include "ml/random_forest.h"

namespace seg::baselines {

inline constexpr std::size_t kNotosFeatureCount = 10;

struct NotosConfig {
  /// A domain is scored only if its e2LD has been seen for at least this
  /// many days OR its exact resolved IPs carry prior pDNS evidence.
  /// Reputation needs history: young zones on never-seen addresses are
  /// rejected, which caps the TP rate on fresh malware-control domains.
  dns::Day min_history_days = 20;
  /// pDNS lookback window (days).
  dns::Day pdns_window_days = dns::kDefaultPdnsWindowDays;
  ml::RandomForestConfig forest;
};

class NotosLikeClassifier {
 public:
  explicit NotosLikeClassifier(NotosConfig config = {});

  /// Trains on the labeled domains of `graph` that match the given lists
  /// (blacklist = positives, whitelist e2LDs = negatives).
  void train(const graph::MachineDomainGraph& graph, const dns::DomainActivityIndex& activity,
             const dns::PassiveDnsDb& pdns, const graph::NameSet& blacklist,
             const graph::NameSet& whitelist_e2lds);

  bool is_trained() const;

  /// Reputation-based malware score of a domain in `graph`, or nullopt
  /// when the reject option declines to classify it.
  std::optional<double> score(const graph::MachineDomainGraph& graph, graph::DomainId d,
                              const dns::DomainActivityIndex& activity,
                              const dns::PassiveDnsDb& pdns) const;

  /// Feature measurement (exposed for tests).
  std::array<double, kNotosFeatureCount> measure(const graph::MachineDomainGraph& graph,
                                                 graph::DomainId d,
                                                 const dns::DomainActivityIndex& activity,
                                                 const dns::PassiveDnsDb& pdns) const;

  /// True when the reject option would decline this domain.
  bool rejects(const graph::MachineDomainGraph& graph, graph::DomainId d,
               const dns::DomainActivityIndex& activity, const dns::PassiveDnsDb& pdns) const;

 private:
  NotosConfig config_;
  std::unique_ptr<ml::RandomForest> forest_;
};

}  // namespace seg::baselines
