// Loopy belief propagation baseline (Manadhata et al., ESORICS'14 — the
// paper's reference [6]; also the inference engine of Polonium [17]).
//
// Sum-product message passing on the machine-domain bipartite graph with a
// homophily edge potential: neighbors of malware-labeled nodes drift toward
// malware, neighbors of benign nodes toward benign. Unlike Segugio, the
// method uses *only* the graph structure — no domain-activity or IP-abuse
// evidence — which is exactly the gap the paper's pilot comparison
// quantifies (Section I: ~45% better accuracy for Segugio, minutes instead
// of hours).
#pragma once

#include <cstddef>
#include <vector>

#include "graph/graph.h"

namespace seg::baselines {

struct LbpConfig {
  /// Homophily strength: P(neighbor same class) = edge_potential. Must be
  /// in (0.5, 1) for the usual attraction semantics.
  double edge_potential = 0.51;
  /// Prior P(malware) for labeled malware nodes (benign symmetric).
  double labeled_confidence = 0.99;
  /// Prior P(malware) for unknown nodes.
  double unknown_prior = 0.5;
  std::size_t max_iterations = 15;
  /// Stop when the largest belief change falls below this.
  double convergence_epsilon = 1e-4;
  /// Worker threads for the synchronous message updates (the paper ran
  /// this baseline on GraphLab's parallel engine); 0 = hardware
  /// concurrency. Results are identical for any thread count.
  std::size_t num_threads = 0;
};

struct LbpResult {
  /// P(malware) per domain node.
  std::vector<double> domain_belief;
  /// P(malware) per machine node.
  std::vector<double> machine_belief;
  std::size_t iterations = 0;
  bool converged = false;
};

/// Runs synchronous-schedule LBP over a labeled graph.
LbpResult run_loopy_belief_propagation(const graph::MachineDomainGraph& graph,
                                       const LbpConfig& config = {});

}  // namespace seg::baselines
