// Common interface for Segugio's binary classifiers.
//
// The paper trains a statistical classifier (Random Forest or Logistic
// Regression, Section II-A3) mapping an 11-dimensional feature vector to a
// "malware score" in [0, 1]. The detection threshold is then tuned for the
// desired TP/FP trade-off.
#pragma once

#include <iosfwd>
#include <span>
#include <vector>

#include "ml/dataset.h"

namespace seg::ml {

class Classifier {
 public:
  virtual ~Classifier() = default;

  /// Trains on the dataset. Requires at least one row of each class.
  virtual void train(const Dataset& dataset) = 0;

  /// Malware score in [0, 1] for one feature vector. Requires train().
  virtual double predict_proba(std::span<const double> features) const = 0;

  /// True once train() has completed.
  virtual bool is_trained() const = 0;

  /// Scores every row of `dataset` (labels ignored).
  std::vector<double> score_all(const Dataset& dataset) const;
};

}  // namespace seg::ml
