// Random Forest classifier (Breiman 2001; the paper's default classifier).
//
// Bagged CART trees with per-split feature subsampling. Scores are the mean
// of per-tree leaf probabilities, giving the smooth "malware score" the
// paper thresholds for its TP/FP trade-offs. Training parallelizes across
// trees; everything is deterministic given the seed.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <vector>

#include "ml/decision_tree.h"

namespace seg::ml {

struct RandomForestConfig {
  std::size_t num_trees = 100;
  std::size_t max_depth = 30;
  std::size_t min_samples_leaf = 1;
  /// Features per split; 0 means floor(sqrt(num_features)).
  std::size_t mtry = 0;
  /// Bootstrap sample size as a fraction of the training set.
  double sample_fraction = 1.0;
  /// Stratified bootstrap: sample each class separately (preserving the
  /// class ratio, but guaranteeing every tree sees at least one sample of
  /// each class). Essential when positives are very rare, as with a
  /// handful of blacklisted domains against hundreds of thousands of
  /// whitelisted ones.
  bool stratified_bootstrap = false;
  std::uint64_t seed = 42;
  /// Worker threads for training; 0 = hardware concurrency.
  std::size_t num_threads = 0;
  /// Track out-of-bag score estimates during training.
  bool compute_oob = false;
};

class RandomForest final : public Classifier {
 public:
  explicit RandomForest(RandomForestConfig config = {}) : config_(config) {}

  void train(const Dataset& dataset) override;
  double predict_proba(std::span<const double> features) const override;
  bool is_trained() const override { return !trees_.empty(); }

  std::size_t tree_count() const { return trees_.size(); }

  /// Mean-decrease-impurity feature importance, normalized to sum to 1.
  /// Requires training.
  std::vector<double> feature_importance() const;

  /// Out-of-bag error estimate (fraction misclassified at threshold 0.5).
  /// Requires config.compute_oob and training.
  double oob_error() const;

  void save(std::ostream& out) const;
  static RandomForest load(std::istream& in);

 private:
  RandomForestConfig config_;
  std::vector<DecisionTree> trees_;
  std::size_t num_features_ = 0;
  double oob_error_ = -1.0;
};

}  // namespace seg::ml
