#include "ml/logistic_regression.h"

#include <algorithm>
#include <cmath>
#include <istream>
#include <numeric>
#include <ostream>

#include "util/require.h"
#include "util/rng.h"

namespace seg::ml {

namespace {

double sigmoid(double z) {
  if (z >= 0.0) {
    const double e = std::exp(-z);
    return 1.0 / (1.0 + e);
  }
  const double e = std::exp(z);
  return e / (1.0 + e);
}

}  // namespace

void LogisticRegression::train(const Dataset& dataset) {
  util::require(dataset.num_rows() > 0, "LogisticRegression::train: empty dataset");
  util::require(dataset.count_label(0) > 0 && dataset.count_label(1) > 0,
                "LogisticRegression::train: need both classes present");

  const std::size_t n = dataset.num_rows();
  const std::size_t d = dataset.num_features();

  // Standardization statistics.
  mean_.assign(d, 0.0);
  stddev_.assign(d, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    const auto row = dataset.row(i);
    for (std::size_t f = 0; f < d; ++f) {
      mean_[f] += row[f];
    }
  }
  for (auto& m : mean_) {
    m /= static_cast<double>(n);
  }
  for (std::size_t i = 0; i < n; ++i) {
    const auto row = dataset.row(i);
    for (std::size_t f = 0; f < d; ++f) {
      const double delta = row[f] - mean_[f];
      stddev_[f] += delta * delta;
    }
  }
  for (auto& s : stddev_) {
    s = std::sqrt(s / static_cast<double>(n));
    if (s < 1e-12) {
      s = 1.0;  // constant feature: pass through unscaled
    }
  }

  const double pos_weight =
      config_.positive_weight > 0.0
          ? config_.positive_weight
          : static_cast<double>(dataset.count_label(0)) /
                static_cast<double>(dataset.count_label(1));

  weights_.assign(d, 0.0);
  bias_ = 0.0;

  // Mini-batch-free full-gradient descent with a mild decay schedule; the
  // problem sizes here (tens of thousands x 11) make full passes cheap.
  std::vector<double> grad(d);
  std::vector<double> z(d);
  for (std::size_t epoch = 0; epoch < config_.epochs; ++epoch) {
    std::fill(grad.begin(), grad.end(), 0.0);
    double grad_bias = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const auto row = dataset.row(i);
      double dot = bias_;
      for (std::size_t f = 0; f < d; ++f) {
        z[f] = (row[f] - mean_[f]) / stddev_[f];
        dot += weights_[f] * z[f];
      }
      const double y = static_cast<double>(dataset.label(i));
      const double weight = dataset.label(i) == 1 ? pos_weight : 1.0;
      const double error = (sigmoid(dot) - y) * weight;
      for (std::size_t f = 0; f < d; ++f) {
        grad[f] += error * z[f];
      }
      grad_bias += error;
    }
    const double lr =
        config_.learning_rate / (1.0 + 0.01 * static_cast<double>(epoch));
    for (std::size_t f = 0; f < d; ++f) {
      weights_[f] -= lr * (grad[f] / static_cast<double>(n) + config_.l2 * weights_[f]);
    }
    bias_ -= lr * grad_bias / static_cast<double>(n);
  }
}

double LogisticRegression::predict_proba(std::span<const double> features) const {
  util::require(is_trained(), "LogisticRegression::predict_proba: not trained");
  util::require(features.size() == weights_.size(),
                "LogisticRegression::predict_proba: feature arity mismatch");
  double dot = bias_;
  for (std::size_t f = 0; f < weights_.size(); ++f) {
    dot += weights_[f] * (features[f] - mean_[f]) / stddev_[f];
  }
  return sigmoid(dot);
}

void LogisticRegression::save(std::ostream& out) const {
  util::require(is_trained(), "LogisticRegression::save: not trained");
  out << "logreg " << weights_.size() << "\n";
  out.precision(17);
  out << bias_ << "\n";
  for (std::size_t f = 0; f < weights_.size(); ++f) {
    out << weights_[f] << " " << mean_[f] << " " << stddev_[f] << "\n";
  }
}

LogisticRegression LogisticRegression::load(std::istream& in) {
  std::string tag;
  std::size_t d = 0;
  in >> tag >> d;
  util::require_data(static_cast<bool>(in) && tag == "logreg",
                     "LogisticRegression::load: malformed header");
  LogisticRegression model;
  in >> model.bias_;
  model.weights_.resize(d);
  model.mean_.resize(d);
  model.stddev_.resize(d);
  for (std::size_t f = 0; f < d; ++f) {
    in >> model.weights_[f] >> model.mean_[f] >> model.stddev_[f];
  }
  util::require_data(static_cast<bool>(in), "LogisticRegression::load: truncated model");
  return model;
}

}  // namespace seg::ml
