#include "ml/metrics.h"

#include <algorithm>
#include <limits>
#include <numeric>

#include "util/require.h"

namespace seg::ml {

RocCurve RocCurve::compute(std::span<const int> labels, std::span<const double> scores) {
  util::require(labels.size() == scores.size(), "RocCurve: labels/scores size mismatch");
  util::require(!labels.empty(), "RocCurve: empty input");

  RocCurve curve;
  for (const auto label : labels) {
    util::require(label == 0 || label == 1, "RocCurve: labels must be 0/1");
    ++(label == 1 ? curve.positives_ : curve.negatives_);
  }
  util::require(curve.positives_ > 0 && curve.negatives_ > 0,
                "RocCurve: need both classes to compute a curve");

  std::vector<std::size_t> order(labels.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return scores[a] > scores[b]; });

  curve.points_.push_back({0.0, 0.0, std::numeric_limits<double>::infinity()});
  std::size_t tp = 0;
  std::size_t fp = 0;
  std::size_t i = 0;
  while (i < order.size()) {
    const double score = scores[order[i]];
    // Consume the whole tie group at this score.
    while (i < order.size() && scores[order[i]] == score) {
      ++(labels[order[i]] == 1 ? tp : fp);
      ++i;
    }
    curve.points_.push_back({static_cast<double>(fp) / static_cast<double>(curve.negatives_),
                             static_cast<double>(tp) / static_cast<double>(curve.positives_),
                             score});
  }
  return curve;
}

double RocCurve::auc() const {
  double area = 0.0;
  for (std::size_t i = 1; i < points_.size(); ++i) {
    const auto& a = points_[i - 1];
    const auto& b = points_[i];
    area += (b.fpr - a.fpr) * (a.tpr + b.tpr) / 2.0;
  }
  return area;
}

double RocCurve::tpr_at_fpr(double max_fpr) const {
  double best = 0.0;
  for (const auto& point : points_) {
    if (point.fpr <= max_fpr) {
      best = std::max(best, point.tpr);
    }
  }
  return best;
}

double RocCurve::threshold_for_fpr(double max_fpr) const {
  double best_threshold = std::numeric_limits<double>::infinity();
  double best_tpr = -1.0;
  for (const auto& point : points_) {
    if (point.fpr <= max_fpr && point.tpr > best_tpr) {
      best_tpr = point.tpr;
      best_threshold = point.threshold;
    }
  }
  return best_threshold;
}

PrCurve PrCurve::compute(std::span<const int> labels, std::span<const double> scores) {
  util::require(labels.size() == scores.size(), "PrCurve: labels/scores size mismatch");
  util::require(!labels.empty(), "PrCurve: empty input");
  std::size_t positives = 0;
  for (const auto label : labels) {
    util::require(label == 0 || label == 1, "PrCurve: labels must be 0/1");
    positives += label == 1 ? 1 : 0;
  }
  util::require(positives > 0, "PrCurve: need at least one positive");

  std::vector<std::size_t> order(labels.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return scores[a] > scores[b]; });

  PrCurve curve;
  std::size_t tp = 0;
  std::size_t fp = 0;
  std::size_t i = 0;
  while (i < order.size()) {
    const double score = scores[order[i]];
    while (i < order.size() && scores[order[i]] == score) {
      ++(labels[order[i]] == 1 ? tp : fp);
      ++i;
    }
    curve.points_.push_back({static_cast<double>(tp) / static_cast<double>(positives),
                             static_cast<double>(tp) / static_cast<double>(tp + fp), score});
  }
  return curve;
}

double PrCurve::average_precision() const {
  double area = 0.0;
  double previous_recall = 0.0;
  for (const auto& point : points_) {
    area += (point.recall - previous_recall) * point.precision;
    previous_recall = point.recall;
  }
  return area;
}

double PrCurve::precision_at_recall(double min_recall) const {
  double best = 0.0;
  for (const auto& point : points_) {
    if (point.recall >= min_recall) {
      best = std::max(best, point.precision);
    }
  }
  return best;
}

Confusion confusion_at(std::span<const int> labels, std::span<const double> scores,
                       double threshold) {
  util::require(labels.size() == scores.size(), "confusion_at: size mismatch");
  Confusion c;
  for (std::size_t i = 0; i < labels.size(); ++i) {
    const bool predicted = scores[i] >= threshold;
    if (labels[i] == 1) {
      ++(predicted ? c.tp : c.fn);
    } else {
      ++(predicted ? c.fp : c.tn);
    }
  }
  return c;
}

}  // namespace seg::ml
