// CART-style binary classification tree.
//
// Splits minimize weighted Gini impurity; leaves store the positive-class
// fraction of their training samples. Supports per-split feature
// subsampling (mtry) so it can serve as the base learner of the random
// forest (Breiman 2001, the paper's reference [9]).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>
#include <vector>

#include "ml/classifier.h"
#include "ml/dataset.h"
#include "util/rng.h"

namespace seg::ml {

struct DecisionTreeConfig {
  std::size_t max_depth = 30;
  std::size_t min_samples_split = 2;
  std::size_t min_samples_leaf = 1;
  /// Number of candidate features per split; 0 means all features.
  std::size_t mtry = 0;
  std::uint64_t seed = 1;
};

class DecisionTree final : public Classifier {
 public:
  explicit DecisionTree(DecisionTreeConfig config = {}) : config_(config) {}

  void train(const Dataset& dataset) override;

  /// Trains on a subset of rows (duplicates allowed — bootstrap samples).
  void train_on(const Dataset& dataset, std::span<const std::size_t> indices);

  double predict_proba(std::span<const double> features) const override;
  bool is_trained() const override { return !nodes_.empty(); }

  std::size_t node_count() const { return nodes_.size(); }
  std::size_t depth() const;

  /// Accumulates this tree's impurity-decrease importance per feature into
  /// `importance` (size num_features).
  void add_feature_importance(std::span<double> importance) const;

  void save(std::ostream& out) const;
  static DecisionTree load(std::istream& in);

 private:
  struct Node {
    // Internal node: feature >= 0; leaf: feature == -1 and prob valid.
    std::int32_t feature = -1;
    double threshold = 0.0;
    std::int32_t left = -1;   // index of the <= threshold child
    std::int32_t right = -1;  // index of the > threshold child
    double prob = 0.0;        // leaf: positive fraction
    double importance = 0.0;  // internal: impurity decrease * sample weight
  };

  std::int32_t build_node(const Dataset& dataset, std::vector<std::size_t>& indices,
                          std::size_t begin, std::size_t end, std::size_t depth,
                          util::Rng& rng);

  DecisionTreeConfig config_;
  std::vector<Node> nodes_;
  std::size_t num_features_ = 0;
};

}  // namespace seg::ml
