#include "ml/random_forest.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <istream>
#include <numeric>
#include <ostream>

#include "util/obs/trace.h"
#include "util/require.h"
#include "util/thread_pool.h"

namespace seg::ml {

void RandomForest::train(const Dataset& dataset) {
  SEG_SPAN("ml/forest_train");
  util::require(dataset.num_rows() > 0, "RandomForest::train: empty dataset");
  util::require(dataset.count_label(0) > 0 && dataset.count_label(1) > 0,
                "RandomForest::train: need both classes present");
  util::require(config_.num_trees > 0, "RandomForest::train: num_trees must be positive");
  util::require(config_.sample_fraction > 0.0 && config_.sample_fraction <= 1.0,
                "RandomForest::train: sample_fraction must be in (0, 1]");

  num_features_ = dataset.num_features();
  const std::size_t mtry =
      config_.mtry != 0
          ? config_.mtry
          : std::max<std::size_t>(
                1, static_cast<std::size_t>(std::sqrt(static_cast<double>(num_features_))));

  const std::size_t n = dataset.num_rows();
  const auto sample_size = std::max<std::size_t>(
      1, static_cast<std::size_t>(config_.sample_fraction * static_cast<double>(n)));

  trees_.assign(config_.num_trees, DecisionTree{});
  // Pre-fork one RNG per tree so parallel execution order cannot change the
  // result.
  util::Rng root(config_.seed);
  std::vector<util::Rng> tree_rngs;
  tree_rngs.reserve(config_.num_trees);
  for (std::size_t t = 0; t < config_.num_trees; ++t) {
    tree_rngs.push_back(root.fork(t + 1));
  }

  // Out-of-bag bookkeeping (aggregated after training to stay deterministic).
  std::vector<std::vector<std::size_t>> bootstraps(config_.num_trees);

  // Per-class index lists for the stratified bootstrap.
  std::vector<std::size_t> positives;
  std::vector<std::size_t> negatives;
  if (config_.stratified_bootstrap) {
    for (std::size_t i = 0; i < n; ++i) {
      (dataset.label(i) == 1 ? positives : negatives).push_back(i);
    }
  }

  util::ThreadPool pool(config_.num_threads);
  pool.parallel_for(config_.num_trees, [&](std::size_t t) {
    auto& rng = tree_rngs[t];
    auto& sample = bootstraps[t];
    if (config_.stratified_bootstrap) {
      const auto pos_size = std::max<std::size_t>(
          1, static_cast<std::size_t>(static_cast<double>(sample_size) *
                                      static_cast<double>(positives.size()) /
                                      static_cast<double>(n) +
                                      0.5));
      const auto neg_size = std::max<std::size_t>(1, sample_size - pos_size);
      sample.reserve(pos_size + neg_size);
      for (std::size_t i = 0; i < pos_size; ++i) {
        sample.push_back(positives[rng.next_below(positives.size())]);
      }
      for (std::size_t i = 0; i < neg_size; ++i) {
        sample.push_back(negatives[rng.next_below(negatives.size())]);
      }
    } else {
      sample.resize(sample_size);
      for (auto& index : sample) {
        index = static_cast<std::size_t>(rng.next_below(n));
      }
    }
    DecisionTreeConfig tree_config;
    tree_config.max_depth = config_.max_depth;
    tree_config.min_samples_leaf = config_.min_samples_leaf;
    tree_config.mtry = mtry;
    tree_config.seed = rng.next();
    trees_[t] = DecisionTree(tree_config);
    trees_[t].train_on(dataset, sample);
  });

  if (config_.compute_oob) {
    std::vector<double> score_sum(n, 0.0);
    std::vector<std::uint32_t> votes(n, 0);
    std::vector<std::uint8_t> in_bag(n);
    for (std::size_t t = 0; t < config_.num_trees; ++t) {
      std::fill(in_bag.begin(), in_bag.end(), 0);
      for (const auto i : bootstraps[t]) {
        in_bag[i] = 1;
      }
      for (std::size_t i = 0; i < n; ++i) {
        if (in_bag[i] == 0) {
          score_sum[i] += trees_[t].predict_proba(dataset.row(i));
          ++votes[i];
        }
      }
    }
    std::size_t evaluated = 0;
    std::size_t wrong = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (votes[i] == 0) {
        continue;
      }
      ++evaluated;
      const int predicted = score_sum[i] / votes[i] >= 0.5 ? 1 : 0;
      wrong += predicted != dataset.label(i) ? 1 : 0;
    }
    oob_error_ = evaluated == 0 ? -1.0
                                : static_cast<double>(wrong) / static_cast<double>(evaluated);
  }
}

double RandomForest::predict_proba(std::span<const double> features) const {
  util::require(is_trained(), "RandomForest::predict_proba: not trained");
  double sum = 0.0;
  for (const auto& tree : trees_) {
    sum += tree.predict_proba(features);
  }
  return sum / static_cast<double>(trees_.size());
}

std::vector<double> RandomForest::feature_importance() const {
  util::require(is_trained(), "RandomForest::feature_importance: not trained");
  std::vector<double> importance(num_features_, 0.0);
  for (const auto& tree : trees_) {
    tree.add_feature_importance(importance);
  }
  const double total = std::accumulate(importance.begin(), importance.end(), 0.0);
  if (total > 0.0) {
    for (auto& v : importance) {
      v /= total;
    }
  }
  return importance;
}

double RandomForest::oob_error() const {
  util::require(oob_error_ >= 0.0,
                "RandomForest::oob_error: not computed (enable config.compute_oob)");
  return oob_error_;
}

void RandomForest::save(std::ostream& out) const {
  util::require(is_trained(), "RandomForest::save: not trained");
  out << "forest " << num_features_ << " " << trees_.size() << "\n";
  for (const auto& tree : trees_) {
    tree.save(out);
  }
}

RandomForest RandomForest::load(std::istream& in) {
  std::string tag;
  std::size_t num_features = 0;
  std::size_t num_trees = 0;
  in >> tag >> num_features >> num_trees;
  util::require_data(static_cast<bool>(in) && tag == "forest",
                     "RandomForest::load: malformed header");
  RandomForest forest;
  forest.num_features_ = num_features;
  forest.trees_.reserve(num_trees);
  for (std::size_t t = 0; t < num_trees; ++t) {
    forest.trees_.push_back(DecisionTree::load(in));
  }
  return forest;
}

}  // namespace seg::ml
