#include "ml/decision_tree.h"

#include <algorithm>
#include <cmath>
#include <istream>
#include <limits>
#include <numeric>
#include <ostream>

#include "util/require.h"

namespace seg::ml {

namespace {

double gini(std::size_t pos, std::size_t n) {
  if (n == 0) {
    return 0.0;
  }
  const double p = static_cast<double>(pos) / static_cast<double>(n);
  return 2.0 * p * (1.0 - p);
}

}  // namespace

void DecisionTree::train(const Dataset& dataset) {
  std::vector<std::size_t> indices(dataset.num_rows());
  std::iota(indices.begin(), indices.end(), std::size_t{0});
  train_on(dataset, indices);
}

void DecisionTree::train_on(const Dataset& dataset, std::span<const std::size_t> indices) {
  util::require(!indices.empty(), "DecisionTree::train_on: empty training set");
  nodes_.clear();
  num_features_ = dataset.num_features();
  std::vector<std::size_t> work(indices.begin(), indices.end());
  util::Rng rng(config_.seed);
  build_node(dataset, work, 0, work.size(), 0, rng);
}

std::int32_t DecisionTree::build_node(const Dataset& dataset, std::vector<std::size_t>& indices,
                                      std::size_t begin, std::size_t end, std::size_t depth,
                                      util::Rng& rng) {
  const std::size_t n = end - begin;
  std::size_t pos = 0;
  for (std::size_t i = begin; i < end; ++i) {
    pos += static_cast<std::size_t>(dataset.label(indices[i]));
  }

  const auto node_index = static_cast<std::int32_t>(nodes_.size());
  nodes_.emplace_back();
  nodes_[node_index].prob = static_cast<double>(pos) / static_cast<double>(n);

  const bool pure = pos == 0 || pos == n;
  if (pure || depth >= config_.max_depth || n < config_.min_samples_split) {
    return node_index;  // leaf
  }

  // Candidate features for this split.
  const std::size_t d = dataset.num_features();
  const std::size_t mtry = config_.mtry == 0 ? d : std::min(config_.mtry, d);
  std::vector<std::size_t> candidates = rng.sample_without_replacement(d, mtry);

  const double parent_gini = gini(pos, n);
  double best_gain = 1e-12;  // require a strictly positive gain
  std::size_t best_feature = d;
  double best_threshold = 0.0;

  std::vector<std::pair<double, std::int8_t>> values;
  values.reserve(n);
  for (const auto f : candidates) {
    values.clear();
    for (std::size_t i = begin; i < end; ++i) {
      values.emplace_back(dataset.value(indices[i], f),
                          static_cast<std::int8_t>(dataset.label(indices[i])));
    }
    std::sort(values.begin(), values.end());
    if (values.front().first == values.back().first) {
      continue;  // constant feature in this node
    }
    std::size_t left_pos = 0;
    for (std::size_t i = 0; i + 1 < n; ++i) {
      left_pos += static_cast<std::size_t>(values[i].second);
      if (values[i].first == values[i + 1].first) {
        continue;  // can only split between distinct values
      }
      const std::size_t left_n = i + 1;
      const std::size_t right_n = n - left_n;
      if (left_n < config_.min_samples_leaf || right_n < config_.min_samples_leaf) {
        continue;
      }
      const double child_gini =
          (static_cast<double>(left_n) * gini(left_pos, left_n) +
           static_cast<double>(right_n) * gini(pos - left_pos, right_n)) /
          static_cast<double>(n);
      const double gain = parent_gini - child_gini;
      if (gain > best_gain) {
        best_gain = gain;
        best_feature = f;
        best_threshold = values[i].first + (values[i + 1].first - values[i].first) / 2.0;
      }
    }
  }

  if (best_feature == d) {
    return node_index;  // no useful split among the sampled features
  }

  // Partition [begin, end) by the chosen split.
  const auto mid_it = std::partition(
      indices.begin() + static_cast<std::ptrdiff_t>(begin),
      indices.begin() + static_cast<std::ptrdiff_t>(end),
      [&](std::size_t row) { return dataset.value(row, best_feature) <= best_threshold; });
  const auto mid = static_cast<std::size_t>(mid_it - indices.begin());
  // The threshold lies strictly between two observed values, so neither side
  // can be empty; guard anyway against pathological float behavior.
  if (mid == begin || mid == end) {
    return node_index;
  }

  nodes_[node_index].feature = static_cast<std::int32_t>(best_feature);
  nodes_[node_index].threshold = best_threshold;
  nodes_[node_index].importance = best_gain * static_cast<double>(n);

  const auto left = build_node(dataset, indices, begin, mid, depth + 1, rng);
  const auto right = build_node(dataset, indices, mid, end, depth + 1, rng);
  nodes_[node_index].left = left;
  nodes_[node_index].right = right;
  return node_index;
}

double DecisionTree::predict_proba(std::span<const double> features) const {
  util::require(is_trained(), "DecisionTree::predict_proba: not trained");
  util::require(features.size() == num_features_,
                "DecisionTree::predict_proba: feature arity mismatch");
  std::int32_t node = 0;
  while (nodes_[node].feature >= 0) {
    node = features[static_cast<std::size_t>(nodes_[node].feature)] <= nodes_[node].threshold
               ? nodes_[node].left
               : nodes_[node].right;
  }
  return nodes_[node].prob;
}

std::size_t DecisionTree::depth() const {
  if (nodes_.empty()) {
    return 0;
  }
  // Iterative depth computation over the implicit tree.
  std::vector<std::pair<std::int32_t, std::size_t>> stack{{0, 1}};
  std::size_t max_depth = 0;
  while (!stack.empty()) {
    const auto [node, depth] = stack.back();
    stack.pop_back();
    max_depth = std::max(max_depth, depth);
    if (nodes_[node].feature >= 0) {
      stack.emplace_back(nodes_[node].left, depth + 1);
      stack.emplace_back(nodes_[node].right, depth + 1);
    }
  }
  return max_depth;
}

void DecisionTree::add_feature_importance(std::span<double> importance) const {
  util::require(importance.size() == num_features_,
                "DecisionTree::add_feature_importance: arity mismatch");
  for (const auto& node : nodes_) {
    if (node.feature >= 0) {
      importance[static_cast<std::size_t>(node.feature)] += node.importance;
    }
  }
}

void DecisionTree::save(std::ostream& out) const {
  out << "tree " << num_features_ << " " << nodes_.size() << "\n";
  out.precision(17);
  for (const auto& node : nodes_) {
    out << node.feature << " " << node.threshold << " " << node.left << " " << node.right
        << " " << node.prob << " " << node.importance << "\n";
  }
}

DecisionTree DecisionTree::load(std::istream& in) {
  std::string tag;
  std::size_t num_features = 0;
  std::size_t num_nodes = 0;
  in >> tag >> num_features >> num_nodes;
  util::require_data(static_cast<bool>(in) && tag == "tree",
                     "DecisionTree::load: malformed header");
  DecisionTree tree;
  tree.num_features_ = num_features;
  tree.nodes_.resize(num_nodes);
  for (auto& node : tree.nodes_) {
    in >> node.feature >> node.threshold >> node.left >> node.right >> node.prob >>
        node.importance;
  }
  util::require_data(static_cast<bool>(in), "DecisionTree::load: truncated node list");
  return tree;
}

}  // namespace seg::ml
