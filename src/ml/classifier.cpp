#include "ml/classifier.h"

namespace seg::ml {

std::vector<double> Classifier::score_all(const Dataset& dataset) const {
  std::vector<double> scores;
  scores.reserve(dataset.num_rows());
  for (std::size_t i = 0; i < dataset.num_rows(); ++i) {
    scores.push_back(predict_proba(dataset.row(i)));
  }
  return scores;
}

}  // namespace seg::ml
