// L2-regularized logistic regression trained by gradient descent, the
// paper's alternative classifier (reference [10], liblinear-style).
//
// Features are standardized internally (z-scores from training statistics),
// so callers can feed raw Segugio feature vectors.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "ml/classifier.h"

namespace seg::ml {

struct LogisticRegressionConfig {
  double learning_rate = 0.1;
  double l2 = 1e-4;
  std::size_t epochs = 200;
  std::uint64_t seed = 7;
  /// Weight applied to positive-class samples to counter imbalance; 0 means
  /// auto (negatives / positives).
  double positive_weight = 0.0;
};

class LogisticRegression final : public Classifier {
 public:
  explicit LogisticRegression(LogisticRegressionConfig config = {}) : config_(config) {}

  void train(const Dataset& dataset) override;
  double predict_proba(std::span<const double> features) const override;
  bool is_trained() const override { return !weights_.empty(); }

  const std::vector<double>& weights() const { return weights_; }
  double bias() const { return bias_; }

  void save(std::ostream& out) const;
  static LogisticRegression load(std::istream& in);

 private:
  LogisticRegressionConfig config_;
  std::vector<double> weights_;
  double bias_ = 0.0;
  std::vector<double> mean_;
  std::vector<double> stddev_;
};

}  // namespace seg::ml
