// In-memory labeled dataset for binary classification.
//
// Rows are feature vectors (row-major, contiguous); labels are 0 (negative,
// benign) or 1 (positive, malware). The container is intentionally dumb:
// feature semantics live in seg::features, model logic in the classifiers.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "util/rng.h"

namespace seg::ml {

class Dataset {
 public:
  Dataset() = default;

  /// Creates an empty dataset with named feature columns.
  explicit Dataset(std::vector<std::string> feature_names);

  std::size_t num_rows() const { return labels_.size(); }
  std::size_t num_features() const { return feature_names_.size(); }
  bool empty() const { return labels_.empty(); }

  const std::vector<std::string>& feature_names() const { return feature_names_; }

  /// Appends a row; `features.size()` must equal num_features(); label must
  /// be 0 or 1.
  void add_row(std::span<const double> features, int label);

  std::span<const double> row(std::size_t i) const;
  int label(std::size_t i) const;

  double value(std::size_t row, std::size_t feature) const {
    return data_[row * feature_names_.size() + feature];
  }

  std::size_t count_label(int label) const;

  /// Extracts the subset of rows with the given indices (duplicates allowed,
  /// e.g. bootstrap samples).
  Dataset subset(std::span<const std::size_t> indices) const;

  /// Returns a copy keeping only the feature columns in `features`
  /// (used for feature-group ablations, Section IV-B).
  Dataset select_features(std::span<const std::size_t> features) const;

 private:
  std::vector<std::string> feature_names_;
  std::vector<double> data_;  // row-major
  std::vector<std::int8_t> labels_;
};

/// Row indices split into train/test with per-class proportions preserved.
struct SplitIndices {
  std::vector<std::size_t> train;
  std::vector<std::size_t> test;
};

/// Stratified random split: `test_fraction` of each class goes to test.
SplitIndices stratified_split(const Dataset& dataset, double test_fraction, util::Rng& rng);

/// Stratified k-fold partition; returns k disjoint index sets covering all
/// rows, each with per-class proportions preserved.
std::vector<std::vector<std::size_t>> stratified_folds(const Dataset& dataset, std::size_t k,
                                                       util::Rng& rng);

}  // namespace seg::ml
