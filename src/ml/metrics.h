// Detection metrics: ROC curves, AUC, and the TP@FP operating points the
// paper reports ("94% TPs at less than 0.1% FPs").
#pragma once

#include <span>
#include <vector>

namespace seg::ml {

/// One point of an ROC curve, with the score threshold that produces it
/// (predict positive when score >= threshold).
struct RocPoint {
  double fpr = 0.0;
  double tpr = 0.0;
  double threshold = 0.0;
};

class RocCurve {
 public:
  /// Builds the curve from binary labels and scores. Ties in score collapse
  /// to a single point (both counts move together), so the curve is exact.
  static RocCurve compute(std::span<const int> labels, std::span<const double> scores);

  const std::vector<RocPoint>& points() const { return points_; }

  /// Area under the curve, trapezoidal.
  double auc() const;

  /// Highest TPR achievable with FPR <= max_fpr (step interpolation; this is
  /// what "X% TPs at Y% FPs" means in the paper).
  double tpr_at_fpr(double max_fpr) const;

  /// Smallest threshold whose FPR stays <= max_fpr (i.e. the most sensitive
  /// operating point within the FP budget). Returns +inf when even the
  /// strictest threshold exceeds the budget.
  double threshold_for_fpr(double max_fpr) const;

  std::size_t positives() const { return positives_; }
  std::size_t negatives() const { return negatives_; }

 private:
  std::vector<RocPoint> points_;  // ascending fpr
  std::size_t positives_ = 0;
  std::size_t negatives_ = 0;
};

/// Binary confusion counts at a fixed threshold (score >= threshold ->
/// positive).
struct Confusion {
  std::size_t tp = 0;
  std::size_t fp = 0;
  std::size_t tn = 0;
  std::size_t fn = 0;

  double tpr() const { return tp + fn == 0 ? 0.0 : static_cast<double>(tp) / (tp + fn); }
  double fpr() const { return fp + tn == 0 ? 0.0 : static_cast<double>(fp) / (fp + tn); }
  double precision() const {
    return tp + fp == 0 ? 0.0 : static_cast<double>(tp) / (tp + fp);
  }
  double accuracy() const {
    const auto total = tp + fp + tn + fn;
    return total == 0 ? 0.0 : static_cast<double>(tp + tn) / static_cast<double>(total);
  }
};

Confusion confusion_at(std::span<const int> labels, std::span<const double> scores,
                       double threshold);

/// One point of a precision-recall curve.
struct PrPoint {
  double recall = 0.0;
  double precision = 1.0;
  double threshold = 0.0;
};

/// Precision-recall curve; the complementary view for heavily imbalanced
/// detection problems (a 0.1% FPR can still mean most alerts are noise
/// when positives are rare).
class PrCurve {
 public:
  static PrCurve compute(std::span<const int> labels, std::span<const double> scores);

  const std::vector<PrPoint>& points() const { return points_; }

  /// Average precision (area under the PR curve, step interpolation).
  double average_precision() const;

  /// Highest precision achievable with recall >= min_recall (0 when the
  /// recall floor is unreachable).
  double precision_at_recall(double min_recall) const;

 private:
  std::vector<PrPoint> points_;  // ascending recall
};

}  // namespace seg::ml
