#include "ml/dataset.h"

#include <algorithm>

#include "util/require.h"

namespace seg::ml {

Dataset::Dataset(std::vector<std::string> feature_names)
    : feature_names_(std::move(feature_names)) {
  util::require(!feature_names_.empty(), "Dataset: need at least one feature");
}

void Dataset::add_row(std::span<const double> features, int label) {
  util::require(features.size() == feature_names_.size(),
                "Dataset::add_row: feature arity mismatch");
  util::require(label == 0 || label == 1, "Dataset::add_row: label must be 0 or 1");
  data_.insert(data_.end(), features.begin(), features.end());
  labels_.push_back(static_cast<std::int8_t>(label));
}

std::span<const double> Dataset::row(std::size_t i) const {
  util::require(i < num_rows(), "Dataset::row: index out of range");
  return {data_.data() + i * feature_names_.size(), feature_names_.size()};
}

int Dataset::label(std::size_t i) const {
  util::require(i < num_rows(), "Dataset::label: index out of range");
  return labels_[i];
}

std::size_t Dataset::count_label(int label) const {
  return static_cast<std::size_t>(
      std::count(labels_.begin(), labels_.end(), static_cast<std::int8_t>(label)));
}

Dataset Dataset::subset(std::span<const std::size_t> indices) const {
  Dataset out(feature_names_);
  for (const auto i : indices) {
    out.add_row(row(i), label(i));
  }
  return out;
}

Dataset Dataset::select_features(std::span<const std::size_t> features) const {
  util::require(!features.empty(), "Dataset::select_features: need at least one feature");
  std::vector<std::string> names;
  names.reserve(features.size());
  for (const auto f : features) {
    util::require(f < num_features(), "Dataset::select_features: feature index out of range");
    names.push_back(feature_names_[f]);
  }
  Dataset out(std::move(names));
  std::vector<double> row_buffer(features.size());
  for (std::size_t i = 0; i < num_rows(); ++i) {
    for (std::size_t j = 0; j < features.size(); ++j) {
      row_buffer[j] = value(i, features[j]);
    }
    out.add_row(row_buffer, label(i));
  }
  return out;
}

namespace {

// Indices of each class, shuffled.
std::pair<std::vector<std::size_t>, std::vector<std::size_t>> shuffled_class_indices(
    const Dataset& dataset, util::Rng& rng) {
  std::vector<std::size_t> neg;
  std::vector<std::size_t> pos;
  for (std::size_t i = 0; i < dataset.num_rows(); ++i) {
    (dataset.label(i) == 1 ? pos : neg).push_back(i);
  }
  rng.shuffle(std::span<std::size_t>(neg));
  rng.shuffle(std::span<std::size_t>(pos));
  return {std::move(neg), std::move(pos)};
}

}  // namespace

SplitIndices stratified_split(const Dataset& dataset, double test_fraction, util::Rng& rng) {
  util::require(test_fraction >= 0.0 && test_fraction <= 1.0,
                "stratified_split: test_fraction must be in [0, 1]");
  auto [neg, pos] = shuffled_class_indices(dataset, rng);
  SplitIndices split;
  const auto take = [&](std::vector<std::size_t>& indices) {
    const auto n_test = static_cast<std::size_t>(
        static_cast<double>(indices.size()) * test_fraction + 0.5);
    for (std::size_t i = 0; i < indices.size(); ++i) {
      (i < n_test ? split.test : split.train).push_back(indices[i]);
    }
  };
  take(neg);
  take(pos);
  rng.shuffle(std::span<std::size_t>(split.train));
  rng.shuffle(std::span<std::size_t>(split.test));
  return split;
}

std::vector<std::vector<std::size_t>> stratified_folds(const Dataset& dataset, std::size_t k,
                                                       util::Rng& rng) {
  util::require(k >= 2, "stratified_folds: k must be >= 2");
  auto [neg, pos] = shuffled_class_indices(dataset, rng);
  std::vector<std::vector<std::size_t>> folds(k);
  const auto deal = [&](const std::vector<std::size_t>& indices) {
    for (std::size_t i = 0; i < indices.size(); ++i) {
      folds[i % k].push_back(indices[i]);
    }
  };
  deal(neg);
  deal(pos);
  for (auto& fold : folds) {
    rng.shuffle(std::span<std::size_t>(fold));
  }
  return folds;
}

}  // namespace seg::ml
