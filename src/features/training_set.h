// Training / evaluation dataset construction (Figure 5).
//
// For every known benign or malware domain in a labeled (pruned) graph, the
// builder measures features with the domain's own label hidden, then emits
// the feature vector with the original label restored. Known domains can be
// excluded (the cross-day protocol of Section IV-A quarantines test-domain
// names from training), and the dominant benign class can be subsampled.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "features/extractor.h"
#include "graph/labeling.h"
#include "ml/dataset.h"
#include "util/rng.h"

namespace seg::features {

struct TrainingSetOptions {
  /// Cap on benign rows (0 = no cap); subsampled uniformly when exceeded.
  std::size_t max_benign = 0;
  /// Cap on malware rows (0 = no cap).
  std::size_t max_malware = 0;
  /// Domains whose *names* appear here are skipped entirely (test
  /// quarantine). May be null.
  const graph::NameSet* exclude = nullptr;
  std::uint64_t seed = 1234;
};

struct TrainingSetResult {
  ml::Dataset dataset;
  std::size_t malware_rows = 0;
  std::size_t benign_rows = 0;
  std::size_t excluded = 0;
};

/// Builds the labeled training set from all known domains in the graph.
/// The GraphView overload works over any backing (graph_view.h).
TrainingSetResult build_training_set(const graph::GraphView& graph,
                                     const FeatureExtractor& extractor,
                                     const TrainingSetOptions& options = {});
TrainingSetResult build_training_set(const graph::MachineDomainGraph& graph,
                                     const FeatureExtractor& extractor,
                                     const TrainingSetOptions& options = {});

/// Feature rows for every *unknown* domain in the graph, plus the matching
/// domain ids (row i describes domain ids[i]). Used at classification time.
struct UnknownSet {
  ml::Dataset dataset;
  std::vector<graph::DomainId> domain_ids;
};

UnknownSet build_unknown_set(const graph::GraphView& graph,
                             const FeatureExtractor& extractor);
UnknownSet build_unknown_set(const graph::MachineDomainGraph& graph,
                             const FeatureExtractor& extractor);

}  // namespace seg::features
