#include "features/extractor.h"

#include <algorithm>

#include "util/require.h"

namespace seg::features {

FeatureExtractor::FeatureExtractor(const graph::MachineDomainGraph& graph,
                                   const dns::DomainActivityIndex& activity,
                                   const dns::PassiveDnsDb& pdns, FeatureConfig config)
    : graph_(&graph), activity_(&activity), pdns_(&pdns), config_(config) {
  util::require(config_.activity_window_days > 0,
                "FeatureExtractor: activity window must be positive");
  util::require(config_.pdns_window_days > 0, "FeatureExtractor: pDNS window must be positive");
  machine_malware_degree_.assign(graph.machine_count(), 0);
  for (graph::MachineId m = 0; m < graph.machine_count(); ++m) {
    std::uint32_t count = 0;
    for (const auto d : graph.domains_of(m)) {
      count += graph.domain_label(d) == graph::Label::kMalware ? 1 : 0;
    }
    machine_malware_degree_[m] = count;
  }
}

FeatureVector FeatureExtractor::extract(graph::DomainId d) const {
  return extract_impl(d, /*hide_label=*/false);
}

FeatureVector FeatureExtractor::extract_hiding_label(graph::DomainId d) const {
  return extract_impl(d, /*hide_label=*/true);
}

FeatureVector FeatureExtractor::extract_impl(graph::DomainId d, bool hide_label) const {
  util::require(d < graph_->domain_count(), "FeatureExtractor: domain id out of range");
  FeatureVector features{};

  const bool domain_is_malware = graph_->domain_label(d) == graph::Label::kMalware;

  // --- F1: machine behavior. Every machine in S queries d; when d is (or
  // is treated as) unknown, none of them can be benign-labeled, so each is
  // either known-infected or unknown.
  const auto machines = graph_->machines_of(d);
  std::size_t infected = 0;
  for (const auto m : machines) {
    std::uint32_t malware_degree = machine_malware_degree_[m];
    if (hide_label && domain_is_malware) {
      // Hiding d's label removes it from every querying machine's malware
      // evidence (Figure 5: M1 flips to unknown when d was its only one).
      --malware_degree;
    }
    infected += malware_degree > 0 ? 1 : 0;
  }
  const auto total = machines.size();
  if (total > 0) {
    features[kInfectedFraction] = static_cast<double>(infected) / static_cast<double>(total);
    features[kUnknownFraction] =
        static_cast<double>(total - infected) / static_cast<double>(total);
  }
  features[kTotalMachines] = static_cast<double>(total);

  // --- F2: domain activity over [t_now - n + 1, t_now].
  const dns::Day t_now = graph_->day();
  const dns::Day from = t_now - config_.activity_window_days + 1;
  const auto fqdn = graph_->domain_name(d);
  const auto e2ld = graph_->e2ld_name(graph_->domain_e2ld(d));
  features[kFqdnActiveDays] = activity_->active_days(fqdn, from, t_now);
  features[kFqdnConsecutiveDays] = activity_->consecutive_days_ending(fqdn, t_now);
  features[kE2ldActiveDays] = activity_->active_days(e2ld, from, t_now);
  features[kE2ldConsecutiveDays] = activity_->consecutive_days_ending(e2ld, t_now);

  // --- F3: IP abuse over the W days strictly before t_now.
  const dns::Day w_from = t_now - config_.pdns_window_days;
  const dns::Day w_to = t_now - 1;
  const auto ips = graph_->resolved_ips(d);
  if (!ips.empty()) {
    std::size_t ip_malware = 0;
    std::size_t ip_unknown = 0;
    for (const auto ip : ips) {
      ip_malware += pdns_->ip_malware_associated(ip, w_from, w_to) ? 1 : 0;
      ip_unknown += pdns_->ip_unknown_associated(ip, w_from, w_to) ? 1 : 0;
    }
    // Distinct /24 prefixes of A.
    std::vector<std::uint32_t> prefixes;
    prefixes.reserve(ips.size());
    for (const auto ip : ips) {
      prefixes.push_back(ip.prefix24());
    }
    std::sort(prefixes.begin(), prefixes.end());
    prefixes.erase(std::unique(prefixes.begin(), prefixes.end()), prefixes.end());
    std::size_t prefix_malware = 0;
    std::size_t prefix_unknown = 0;
    for (const auto prefix : prefixes) {
      const dns::IpV4 representative(prefix);
      prefix_malware += pdns_->prefix_malware_associated(representative, w_from, w_to) ? 1 : 0;
      prefix_unknown += pdns_->prefix_unknown_associated(representative, w_from, w_to) ? 1 : 0;
    }
    features[kIpMalwareFraction] =
        static_cast<double>(ip_malware) / static_cast<double>(ips.size());
    features[kPrefixMalwareFraction] =
        static_cast<double>(prefix_malware) / static_cast<double>(prefixes.size());
    features[kIpUnknownCount] = static_cast<double>(ip_unknown);
    features[kPrefixUnknownCount] = static_cast<double>(prefix_unknown);
  }
  return features;
}

}  // namespace seg::features
