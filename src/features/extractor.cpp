#include "features/extractor.h"

#include <algorithm>

#include "util/obs/trace.h"
#include "util/parallel.h"
#include "util/require.h"

namespace seg::features {

FeatureExtractor::FeatureExtractor(graph::GraphView graph,
                                   const dns::DomainActivityIndex& activity,
                                   const dns::PassiveDnsDb& pdns, FeatureConfig config)
    : graph_(graph), activity_(&activity), pdns_(&pdns), config_(config) {
  util::require(config_.activity_window_days > 0,
                "FeatureExtractor: activity window must be positive");
  util::require(config_.pdns_window_days > 0, "FeatureExtractor: pDNS window must be positive");
  precompute_machine_degrees();
}

FeatureExtractor::FeatureExtractor(graph::GraphView graph,
                                   const dns::ShardedActivityIndex& activity,
                                   const dns::ShardedPassiveDnsDb& pdns, FeatureConfig config)
    : graph_(graph), config_(config) {
  util::require(config_.activity_window_days > 0,
                "FeatureExtractor: activity window must be positive");
  util::require(config_.pdns_window_days > 0, "FeatureExtractor: pDNS window must be positive");
  precompute_machine_degrees();
  precompute_history(activity, pdns);
}

FeatureExtractor::FeatureExtractor(const graph::MachineDomainGraph& graph,
                                   const dns::DomainActivityIndex& activity,
                                   const dns::PassiveDnsDb& pdns, FeatureConfig config)
    : FeatureExtractor(graph.view(), activity, pdns, config) {}

FeatureExtractor::FeatureExtractor(const graph::MachineDomainGraph& graph,
                                   const dns::ShardedActivityIndex& activity,
                                   const dns::ShardedPassiveDnsDb& pdns, FeatureConfig config)
    : FeatureExtractor(graph.view(), activity, pdns, config) {}

void FeatureExtractor::precompute_machine_degrees() {
  machine_malware_degree_.assign(graph_.machine_count(), 0);
  for (graph::MachineId m = 0; m < graph_.machine_count(); ++m) {
    std::uint32_t count = 0;
    for (const auto d : graph_.domains_of(m)) {
      count += graph_.domain_label(d) == graph::Label::kMalware ? 1 : 0;
    }
    machine_malware_degree_[m] = count;
  }
}

void FeatureExtractor::precompute_history(const dns::ShardedActivityIndex& activity,
                                          const dns::ShardedPassiveDnsDb& pdns) {
  SEG_SPAN("features/precompute_history");
  const std::size_t num_domains = graph_.domain_count();
  const std::size_t num_e2lds = graph_.e2ld_count();
  const dns::Day t_now = graph_.day();
  const dns::Day from = t_now - config_.activity_window_days + 1;

  // --- F2: one batched lookup covering every FQDN and every distinct e2LD.
  std::vector<dns::ShardedActivityIndex::Query> activity_queries;
  activity_queries.reserve(num_domains + num_e2lds);
  for (graph::DomainId d = 0; d < num_domains; ++d) {
    activity_queries.push_back({graph_.domain_name(d), from, t_now, t_now});
  }
  for (graph::E2ldId e = 0; e < num_e2lds; ++e) {
    activity_queries.push_back({graph_.e2ld_name(e), from, t_now, t_now});
  }
  const auto activity_answers = activity.query_batch(activity_queries);
  fqdn_active_.resize(num_domains);
  fqdn_consec_.resize(num_domains);
  e2ld_active_.resize(num_e2lds);
  e2ld_consec_.resize(num_e2lds);
  for (graph::DomainId d = 0; d < num_domains; ++d) {
    fqdn_active_[d] = activity_answers[d].active_days;
    fqdn_consec_[d] = activity_answers[d].consecutive_days;
  }
  for (graph::E2ldId e = 0; e < num_e2lds; ++e) {
    e2ld_active_[e] = activity_answers[num_domains + e].active_days;
    e2ld_consec_[e] = activity_answers[num_domains + e].consecutive_days;
  }

  // --- F3: one batched lookup per distinct resolved IP and per distinct
  // /24, then a parallel per-domain aggregation over the shared answers.
  const dns::Day w_from = t_now - config_.pdns_window_days;
  const dns::Day w_to = t_now - 1;
  std::vector<dns::IpV4> distinct_ips;
  for (graph::DomainId d = 0; d < num_domains; ++d) {
    const auto ips = graph_.resolved_ips(d);
    distinct_ips.insert(distinct_ips.end(), ips.begin(), ips.end());
  }
  std::sort(distinct_ips.begin(), distinct_ips.end());
  distinct_ips.erase(std::unique(distinct_ips.begin(), distinct_ips.end()),
                     distinct_ips.end());
  std::vector<dns::IpV4> distinct_prefixes;
  distinct_prefixes.reserve(distinct_ips.size());
  for (const auto ip : distinct_ips) {  // sorted ips => non-decreasing prefixes
    const dns::IpV4 representative(ip.prefix24());
    if (distinct_prefixes.empty() || distinct_prefixes.back() != representative) {
      distinct_prefixes.push_back(representative);
    }
  }
  std::vector<dns::ShardedPassiveDnsDb::AbuseQuery> pdns_queries;
  pdns_queries.reserve(distinct_ips.size() + distinct_prefixes.size());
  for (const auto ip : distinct_ips) {
    pdns_queries.push_back({ip, w_from, w_to});
  }
  for (const auto prefix : distinct_prefixes) {
    pdns_queries.push_back({prefix, w_from, w_to});
  }
  const auto pdns_answers = pdns.query_batch(pdns_queries);
  const auto ip_answer = [&](dns::IpV4 ip) -> const dns::ShardedPassiveDnsDb::AbuseAnswer& {
    const auto it = std::lower_bound(distinct_ips.begin(), distinct_ips.end(), ip);
    return pdns_answers[static_cast<std::size_t>(it - distinct_ips.begin())];
  };
  const auto prefix_answer =
      [&](dns::IpV4 representative) -> const dns::ShardedPassiveDnsDb::AbuseAnswer& {
    const auto it =
        std::lower_bound(distinct_prefixes.begin(), distinct_prefixes.end(), representative);
    return pdns_answers[distinct_ips.size() +
                        static_cast<std::size_t>(it - distinct_prefixes.begin())];
  };
  f3_.assign(num_domains, {});
  util::parallel_for(num_domains, [&](std::size_t d) {
    const auto ips = graph_.resolved_ips(static_cast<graph::DomainId>(d));
    if (ips.empty()) {
      return;
    }
    std::size_t ip_malware = 0;
    std::size_t ip_unknown = 0;
    std::size_t prefix_malware = 0;
    std::size_t prefix_unknown = 0;
    std::size_t prefix_count = 0;
    std::uint32_t last_prefix = 0;
    bool have_prefix = false;
    for (const auto ip : ips) {  // sorted => prefixes dedupe in one pass
      const auto& answer = ip_answer(ip);
      ip_malware += answer.ip_malware;
      ip_unknown += answer.ip_unknown;
      if (!have_prefix || ip.prefix24() != last_prefix) {
        have_prefix = true;
        last_prefix = ip.prefix24();
        ++prefix_count;
        const auto& prefix_flags = prefix_answer(dns::IpV4(last_prefix));
        prefix_malware += prefix_flags.prefix_malware;
        prefix_unknown += prefix_flags.prefix_unknown;
      }
    }
    f3_[d] = {static_cast<double>(ip_malware) / static_cast<double>(ips.size()),
              static_cast<double>(prefix_malware) / static_cast<double>(prefix_count),
              static_cast<double>(ip_unknown), static_cast<double>(prefix_unknown)};
  });
  precomputed_ = true;
}

FeatureVector FeatureExtractor::extract(graph::DomainId d) const {
  return extract_impl(d, /*hide_label=*/false);
}

FeatureVector FeatureExtractor::extract_hiding_label(graph::DomainId d) const {
  return extract_impl(d, /*hide_label=*/true);
}

FeatureVector FeatureExtractor::extract_impl(graph::DomainId d, bool hide_label) const {
  util::require(d < graph_.domain_count(), "FeatureExtractor: domain id out of range");
  FeatureVector features{};

  const bool domain_is_malware = graph_.domain_label(d) == graph::Label::kMalware;

  // --- F1: machine behavior. Every machine in S queries d; when d is (or
  // is treated as) unknown, none of them can be benign-labeled, so each is
  // either known-infected or unknown.
  const auto machines = graph_.machines_of(d);
  std::size_t infected = 0;
  for (const auto m : machines) {
    std::uint32_t malware_degree = machine_malware_degree_[m];
    if (hide_label && domain_is_malware) {
      // Hiding d's label removes it from every querying machine's malware
      // evidence (Figure 5: M1 flips to unknown when d was its only one).
      --malware_degree;
    }
    infected += malware_degree > 0 ? 1 : 0;
  }
  const auto total = machines.size();
  if (total > 0) {
    features[kInfectedFraction] = static_cast<double>(infected) / static_cast<double>(total);
    features[kUnknownFraction] =
        static_cast<double>(total - infected) / static_cast<double>(total);
  }
  features[kTotalMachines] = static_cast<double>(total);

  // --- F2: domain activity over [t_now - n + 1, t_now].
  if (precomputed_) {
    // Sharded mode: history was batch-queried at construction; F2/F3 do
    // not depend on hide_label, so the precomputed values serve both modes.
    const auto e = graph_.domain_e2ld(d);
    features[kFqdnActiveDays] = fqdn_active_[d];
    features[kFqdnConsecutiveDays] = fqdn_consec_[d];
    features[kE2ldActiveDays] = e2ld_active_[e];
    features[kE2ldConsecutiveDays] = e2ld_consec_[e];
    features[kIpMalwareFraction] = f3_[d][0];
    features[kPrefixMalwareFraction] = f3_[d][1];
    features[kIpUnknownCount] = f3_[d][2];
    features[kPrefixUnknownCount] = f3_[d][3];
    return features;
  }
  const dns::Day t_now = graph_.day();
  const dns::Day from = t_now - config_.activity_window_days + 1;
  const auto fqdn = graph_.domain_name(d);
  const auto e2ld = graph_.e2ld_name(graph_.domain_e2ld(d));
  features[kFqdnActiveDays] = activity_->active_days(fqdn, from, t_now);
  features[kFqdnConsecutiveDays] = activity_->consecutive_days_ending(fqdn, t_now);
  features[kE2ldActiveDays] = activity_->active_days(e2ld, from, t_now);
  features[kE2ldConsecutiveDays] = activity_->consecutive_days_ending(e2ld, t_now);

  // --- F3: IP abuse over the W days strictly before t_now.
  const dns::Day w_from = t_now - config_.pdns_window_days;
  const dns::Day w_to = t_now - 1;
  const auto ips = graph_.resolved_ips(d);
  if (!ips.empty()) {
    std::size_t ip_malware = 0;
    std::size_t ip_unknown = 0;
    for (const auto ip : ips) {
      ip_malware += pdns_->ip_malware_associated(ip, w_from, w_to) ? 1 : 0;
      ip_unknown += pdns_->ip_unknown_associated(ip, w_from, w_to) ? 1 : 0;
    }
    // Distinct /24 prefixes of A.
    std::vector<std::uint32_t> prefixes;
    prefixes.reserve(ips.size());
    for (const auto ip : ips) {
      prefixes.push_back(ip.prefix24());
    }
    std::sort(prefixes.begin(), prefixes.end());
    prefixes.erase(std::unique(prefixes.begin(), prefixes.end()), prefixes.end());
    std::size_t prefix_malware = 0;
    std::size_t prefix_unknown = 0;
    for (const auto prefix : prefixes) {
      const dns::IpV4 representative(prefix);
      prefix_malware += pdns_->prefix_malware_associated(representative, w_from, w_to) ? 1 : 0;
      prefix_unknown += pdns_->prefix_unknown_associated(representative, w_from, w_to) ? 1 : 0;
    }
    features[kIpMalwareFraction] =
        static_cast<double>(ip_malware) / static_cast<double>(ips.size());
    features[kPrefixMalwareFraction] =
        static_cast<double>(prefix_malware) / static_cast<double>(prefixes.size());
    features[kIpUnknownCount] = static_cast<double>(ip_unknown);
    features[kPrefixUnknownCount] = static_cast<double>(prefix_unknown);
  }
  return features;
}

}  // namespace seg::features
