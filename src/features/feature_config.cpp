#include "features/feature_config.h"

#include <algorithm>

#include "util/require.h"

namespace seg::features {

const std::vector<std::string>& feature_names() {
  static const std::vector<std::string> names = {
      "f1_infected_fraction",   "f1_unknown_fraction",      "f1_total_machines",
      "f2_fqdn_active_days",    "f2_fqdn_consecutive_days", "f2_e2ld_active_days",
      "f2_e2ld_consecutive_days", "f3_ip_malware_fraction", "f3_prefix_malware_fraction",
      "f3_ip_unknown_count",    "f3_prefix_unknown_count"};
  return names;
}

FeatureGroup feature_group(std::size_t index) {
  util::require(index < kNumFeatures, "feature_group: index out of range");
  if (index <= kTotalMachines) {
    return FeatureGroup::kMachineBehavior;
  }
  if (index <= kE2ldConsecutiveDays) {
    return FeatureGroup::kDomainActivity;
  }
  return FeatureGroup::kIpAbuse;
}

std::vector<std::size_t> feature_indices_for(std::initializer_list<FeatureGroup> groups) {
  std::vector<std::size_t> indices;
  for (std::size_t i = 0; i < kNumFeatures; ++i) {
    if (std::find(groups.begin(), groups.end(), feature_group(i)) != groups.end()) {
      indices.push_back(i);
    }
  }
  return indices;
}

std::vector<std::size_t> feature_indices_excluding(FeatureGroup excluded) {
  std::vector<std::size_t> indices;
  for (std::size_t i = 0; i < kNumFeatures; ++i) {
    if (feature_group(i) != excluded) {
      indices.push_back(i);
    }
  }
  return indices;
}

}  // namespace seg::features
