#include "features/feature_config.h"

#include <algorithm>

#include "util/require.h"

namespace seg::features {

const std::vector<std::string>& feature_names() {
  static const std::vector<std::string> names = {
      "f1_infected_fraction",   "f1_unknown_fraction",      "f1_total_machines",
      "f2_fqdn_active_days",    "f2_fqdn_consecutive_days", "f2_e2ld_active_days",
      "f2_e2ld_consecutive_days", "f3_ip_malware_fraction", "f3_prefix_malware_fraction",
      "f3_ip_unknown_count",    "f3_prefix_unknown_count"};
  return names;
}

FeatureGroup feature_group(std::size_t index) {
  util::require(index < kNumFeatures, "feature_group: index out of range");
  if (index <= kTotalMachines) {
    return FeatureGroup::kMachineBehavior;
  }
  if (index <= kE2ldConsecutiveDays) {
    return FeatureGroup::kDomainActivity;
  }
  return FeatureGroup::kIpAbuse;
}

const std::vector<double>& feature_histogram_bounds(std::size_t index) {
  util::require(index < kNumFeatures, "feature_histogram_bounds: index out of range");
  static const std::vector<double> fraction_bounds = {0.1, 0.2, 0.3, 0.4, 0.5,
                                                      0.6, 0.7, 0.8, 0.9, 1.0};
  static const std::vector<double> day_bounds = {0.0, 1.0, 2.0, 3.0, 5.0, 7.0, 10.0, 14.0};
  static const std::vector<double> count_bounds = {0.0,  1.0,  2.0,   4.0,   8.0,  16.0,
                                                   32.0, 64.0, 128.0, 256.0, 512.0, 1024.0};
  switch (index) {
    case kInfectedFraction:
    case kUnknownFraction:
    case kIpMalwareFraction:
    case kPrefixMalwareFraction:
      return fraction_bounds;
    case kFqdnActiveDays:
    case kFqdnConsecutiveDays:
    case kE2ldActiveDays:
    case kE2ldConsecutiveDays:
      return day_bounds;
    default:
      return count_bounds;
  }
}

std::vector<std::size_t> feature_indices_for(std::initializer_list<FeatureGroup> groups) {
  std::vector<std::size_t> indices;
  for (std::size_t i = 0; i < kNumFeatures; ++i) {
    if (std::find(groups.begin(), groups.end(), feature_group(i)) != groups.end()) {
      indices.push_back(i);
    }
  }
  return indices;
}

std::vector<std::size_t> feature_indices_excluding(FeatureGroup excluded) {
  std::vector<std::size_t> indices;
  for (std::size_t i = 0; i < kNumFeatures; ++i) {
    if (feature_group(i) != excluded) {
      indices.push_back(i);
    }
  }
  return indices;
}

}  // namespace seg::features
