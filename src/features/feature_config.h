// Configuration and naming for Segugio's 11 statistical features
// (Section II-A3).
//
// Three groups:
//   F1 machine behavior (3): fraction of known-infected machines querying
//      the domain, fraction of unknown machines, total querying machines;
//   F2 domain activity (4): active days and consecutive active days within
//      the n-day window, for the FQDN and for its effective 2LD;
//   F3 IP abuse (4): fraction of the domain's resolved IPs (and /24s)
//      previously pointed to by known malware domains within the W-day pDNS
//      window, and the counts of resolved IPs (and /24s) used by unknown
//      domains within W.
#pragma once

#include <array>
#include <cstddef>
#include <string>
#include <vector>

#include "dns/types.h"

namespace seg::features {

enum class FeatureGroup : unsigned char { kMachineBehavior, kDomainActivity, kIpAbuse };

inline constexpr std::size_t kNumFeatures = 11;

/// Index layout of the full feature vector.
enum FeatureIndex : std::size_t {
  kInfectedFraction = 0,    // F1: |I| / |S|
  kUnknownFraction = 1,     // F1: |U| / |S|
  kTotalMachines = 2,       // F1: |S|
  kFqdnActiveDays = 3,      // F2: days active in window
  kFqdnConsecutiveDays = 4, // F2: consecutive days ending at t_now
  kE2ldActiveDays = 5,      // F2: same, effective 2LD
  kE2ldConsecutiveDays = 6, // F2
  kIpMalwareFraction = 7,   // F3: fraction of resolved IPs previously abused
  kPrefixMalwareFraction = 8,  // F3: same over /24 prefixes
  kIpUnknownCount = 9,      // F3: resolved IPs used by unknown domains in W
  kPrefixUnknownCount = 10, // F3: same over /24 prefixes
};

struct FeatureConfig {
  /// F2 window length n (days), paper default 14.
  dns::Day activity_window_days = dns::kDefaultActivityWindowDays;
  /// F3 pDNS history window W (days), paper default ~5 months.
  dns::Day pdns_window_days = dns::kDefaultPdnsWindowDays;
};

/// Names of all 11 features, in FeatureIndex order.
const std::vector<std::string>& feature_names();

/// Group of each feature index.
FeatureGroup feature_group(std::size_t index);

/// Summary-histogram bucket upper bounds for each feature, used by the
/// per-day obs journal (see docs/observability.md). Fraction-valued
/// features get 10 uniform bins over [0, 1]; day counts bin over the
/// F2 activity window; machine/IP counts get doubling buckets. Fixed
/// across runs so journaled histograms are comparable day over day.
const std::vector<double>& feature_histogram_bounds(std::size_t index);

/// Feature indices belonging to the given groups (for ablation experiments,
/// Section IV-B). Order follows FeatureIndex.
std::vector<std::size_t> feature_indices_for(std::initializer_list<FeatureGroup> groups);

/// All indices except those in `excluded` — the "No <group>" curves of
/// Figure 7.
std::vector<std::size_t> feature_indices_excluding(FeatureGroup excluded);

}  // namespace seg::features
