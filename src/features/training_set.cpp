#include "features/training_set.h"

#include <algorithm>
#include <span>

#include "util/parallel.h"
#include "util/require.h"

namespace seg::features {

namespace {

// Extracts features for a batch of domains in parallel; the output order
// matches `ids` exactly, so results are deterministic for any thread count.
std::vector<FeatureVector> extract_batch(const FeatureExtractor& extractor,
                                         std::span<const graph::DomainId> ids,
                                         bool hide_labels) {
  std::vector<FeatureVector> rows(ids.size());
  util::parallel_for(ids.size(), [&](std::size_t i) {
    rows[i] = hide_labels ? extractor.extract_hiding_label(ids[i])
                          : extractor.extract(ids[i]);
  });
  return rows;
}

}  // namespace

TrainingSetResult build_training_set(const graph::GraphView& graph,
                                     const FeatureExtractor& extractor,
                                     const TrainingSetOptions& options) {
  std::vector<graph::DomainId> malware_ids;
  std::vector<graph::DomainId> benign_ids;
  std::size_t excluded = 0;
  for (graph::DomainId d = 0; d < graph.domain_count(); ++d) {
    const auto label = graph.domain_label(d);
    if (label == graph::Label::kUnknown) {
      continue;
    }
    if (options.exclude != nullptr && options.exclude->contains(graph.domain_name(d))) {
      ++excluded;
      continue;
    }
    (label == graph::Label::kMalware ? malware_ids : benign_ids).push_back(d);
  }

  util::Rng rng(options.seed);
  const auto subsample = [&rng](std::vector<graph::DomainId>& ids, std::size_t cap) {
    if (cap == 0 || ids.size() <= cap) {
      return;
    }
    const auto chosen = rng.sample_without_replacement(ids.size(), cap);
    std::vector<graph::DomainId> kept;
    kept.reserve(cap);
    for (const auto i : chosen) {
      kept.push_back(ids[i]);
    }
    std::sort(kept.begin(), kept.end());
    ids = std::move(kept);
  };
  subsample(benign_ids, options.max_benign);
  subsample(malware_ids, options.max_malware);

  TrainingSetResult result{ml::Dataset(feature_names()), malware_ids.size(),
                           benign_ids.size(), excluded};
  for (const auto& features : extract_batch(extractor, malware_ids, /*hide_labels=*/true)) {
    result.dataset.add_row(features, 1);
  }
  for (const auto& features : extract_batch(extractor, benign_ids, /*hide_labels=*/true)) {
    result.dataset.add_row(features, 0);
  }
  return result;
}

UnknownSet build_unknown_set(const graph::GraphView& graph,
                             const FeatureExtractor& extractor) {
  UnknownSet result{ml::Dataset(feature_names()), {}};
  for (graph::DomainId d = 0; d < graph.domain_count(); ++d) {
    if (graph.domain_label(d) == graph::Label::kUnknown) {
      result.domain_ids.push_back(d);
    }
  }
  for (const auto& features :
       extract_batch(extractor, result.domain_ids, /*hide_labels=*/false)) {
    // The dataset requires a label; unknown rows get a placeholder 0 that
    // callers must ignore (scores are what matters here).
    result.dataset.add_row(features, 0);
  }
  return result;
}


TrainingSetResult build_training_set(const graph::MachineDomainGraph& graph,
                                     const FeatureExtractor& extractor,
                                     const TrainingSetOptions& options) {
  return build_training_set(graph.view(), extractor, options);
}

UnknownSet build_unknown_set(const graph::MachineDomainGraph& graph,
                             const FeatureExtractor& extractor) {
  return build_unknown_set(graph.view(), extractor);
}

}  // namespace seg::features
