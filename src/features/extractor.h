// Per-domain feature measurement (Figure 4).
//
// The extractor combines three views of a domain:
//   - the behavior graph (who queries it, with what labels) for F1;
//   - the domain activity index (how many of the past n days it was
//     queried) for F2;
//   - the passive DNS database (was its resolved IP space previously
//     abused) for F3.
//
// Two modes:
//   extract()              — for *unknown* domains at deployment time;
//   extract_hiding_label() — for known benign/malware domains during
//     training-set preparation, which first "hides" the domain's own label
//     and relabels the machines that would lose their only evidence
//     (Figure 5), so training features are measured exactly like
//     deployment features.
#pragma once

#include <array>
#include <span>

#include "dns/activity_index.h"
#include "dns/pdns.h"
#include "dns/sharded_store.h"
#include "features/feature_config.h"
#include "graph/graph_view.h"

namespace seg::features {

using FeatureVector = std::array<double, kNumFeatures>;

class FeatureExtractor {
 public:
  /// All referenced objects (including the view's backing graph) must
  /// outlive the extractor. `graph` must be labeled (and normally pruned).
  /// GraphView overloads accept any backing — a heap graph's view() or an
  /// mmap-resident graph from graph::map_graph().
  FeatureExtractor(graph::GraphView graph, const dns::DomainActivityIndex& activity,
                   const dns::PassiveDnsDb& pdns, FeatureConfig config = {});
  FeatureExtractor(const graph::MachineDomainGraph& graph,
                   const dns::DomainActivityIndex& activity, const dns::PassiveDnsDb& pdns,
                   FeatureConfig config = {});

  /// Sharded-store constructor: the F2/F3 history lookups for every graph
  /// domain are precomputed here through the stores' parallel query_batch
  /// (valid for both extract modes — hiding a label only changes F1).
  /// Must be constructed from the top level, never inside a parallel_for
  /// body (the batch queries use the shared pool); the per-domain
  /// extract() calls afterwards touch no store and may run in parallel.
  FeatureExtractor(graph::GraphView graph, const dns::ShardedActivityIndex& activity,
                   const dns::ShardedPassiveDnsDb& pdns, FeatureConfig config = {});
  FeatureExtractor(const graph::MachineDomainGraph& graph,
                   const dns::ShardedActivityIndex& activity,
                   const dns::ShardedPassiveDnsDb& pdns, FeatureConfig config = {});

  /// Features of domain `d` using current graph labels as-is.
  FeatureVector extract(graph::DomainId d) const;

  /// Features of domain `d` with its own label hidden: machines whose
  /// *only* malware evidence is `d` are treated as unknown for F1
  /// (Figure 5 semantics). Use for known domains when building training
  /// (or evaluation) sets.
  FeatureVector extract_hiding_label(graph::DomainId d) const;

  const FeatureConfig& config() const { return config_; }

 private:
  FeatureVector extract_impl(graph::DomainId d, bool hide_label) const;
  void precompute_machine_degrees();
  void precompute_history(const dns::ShardedActivityIndex& activity,
                          const dns::ShardedPassiveDnsDb& pdns);

  graph::GraphView graph_;
  const dns::DomainActivityIndex* activity_ = nullptr;  ///< null in sharded mode
  const dns::PassiveDnsDb* pdns_ = nullptr;             ///< null in sharded mode
  FeatureConfig config_;

  // Per-machine count of queried malware-labeled domains, precomputed so
  // hiding a label is O(|S|) instead of O(sum of machine degrees).
  std::vector<std::uint32_t> machine_malware_degree_;

  // Sharded-mode precomputed history. F2 by DomainId / E2ldId; F3 holds the
  // four final feature values by DomainId.
  bool precomputed_ = false;
  std::vector<double> fqdn_active_;
  std::vector<double> fqdn_consec_;
  std::vector<double> e2ld_active_;
  std::vector<double> e2ld_consec_;
  std::vector<std::array<double, 4>> f3_;
};

}  // namespace seg::features
