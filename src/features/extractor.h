// Per-domain feature measurement (Figure 4).
//
// The extractor combines three views of a domain:
//   - the behavior graph (who queries it, with what labels) for F1;
//   - the domain activity index (how many of the past n days it was
//     queried) for F2;
//   - the passive DNS database (was its resolved IP space previously
//     abused) for F3.
//
// Two modes:
//   extract()              — for *unknown* domains at deployment time;
//   extract_hiding_label() — for known benign/malware domains during
//     training-set preparation, which first "hides" the domain's own label
//     and relabels the machines that would lose their only evidence
//     (Figure 5), so training features are measured exactly like
//     deployment features.
#pragma once

#include <array>
#include <span>

#include "dns/activity_index.h"
#include "dns/pdns.h"
#include "features/feature_config.h"
#include "graph/graph.h"

namespace seg::features {

using FeatureVector = std::array<double, kNumFeatures>;

class FeatureExtractor {
 public:
  /// All referenced objects must outlive the extractor. `graph` must be
  /// labeled (and normally pruned).
  FeatureExtractor(const graph::MachineDomainGraph& graph,
                   const dns::DomainActivityIndex& activity, const dns::PassiveDnsDb& pdns,
                   FeatureConfig config = {});

  /// Features of domain `d` using current graph labels as-is.
  FeatureVector extract(graph::DomainId d) const;

  /// Features of domain `d` with its own label hidden: machines whose
  /// *only* malware evidence is `d` are treated as unknown for F1
  /// (Figure 5 semantics). Use for known domains when building training
  /// (or evaluation) sets.
  FeatureVector extract_hiding_label(graph::DomainId d) const;

  const FeatureConfig& config() const { return config_; }

 private:
  FeatureVector extract_impl(graph::DomainId d, bool hide_label) const;

  const graph::MachineDomainGraph* graph_;
  const dns::DomainActivityIndex* activity_;
  const dns::PassiveDnsDb* pdns_;
  FeatureConfig config_;

  // Per-machine count of queried malware-labeled domains, precomputed so
  // hiding a label is O(|S|) instead of O(sum of machine degrees).
  std::vector<std::uint32_t> machine_malware_degree_;
};

}  // namespace seg::features
