// Infected-machine enumeration (Section VI).
//
// "Segugio can detect both malware-control domains and the infected
// machines that query them at the same time. Therefore, infections can
// still be enumerated, thus allowing network administrators to track and
// remediate the compromised machines."
//
// This module turns a day's detections into a remediation worklist: every
// machine that queried a known (blacklisted) or newly detected
// malware-control domain, with the evidence that implicates it.
#pragma once

#include <string>
#include <vector>

#include "core/segugio.h"

namespace seg::core {

/// One machine implicated by malware-control traffic.
struct InfectedMachine {
  std::string name;
  /// Known (blacklisted) malware domains the machine queried.
  std::vector<std::string> known_domains;
  /// Newly detected (previously unknown) domains it queried, with scores.
  std::vector<DomainScore> detected_domains;

  /// Evidence strength: number of distinct implicating domains.
  std::size_t evidence() const { return known_domains.size() + detected_domains.size(); }
};

struct InfectionReport {
  /// Implicated machines, strongest evidence first.
  std::vector<InfectedMachine> machines;

  /// Machines implicated only by newly detected domains (i.e. infections a
  /// blacklist-based workflow would have missed today).
  std::size_t newly_implicated = 0;
};

/// Builds the remediation report from a labeled graph and the day's
/// detection output at `threshold`.
InfectionReport enumerate_infections(const graph::MachineDomainGraph& graph,
                                     const DetectionReport& detections, double threshold);

}  // namespace seg::core
