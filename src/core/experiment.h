// Evaluation protocols (Section IV).
//
// run_cross_day implements the train/test procedure of Section IV-A:
//
//   1. build the labeled, pruned test-day graph;
//   2. pick a stratified subset of its *known* benign and malware domains
//      as the test set;
//   3. build the train-day graph with the test malware names stripped from
//      its blacklist, train Segugio with the test names additionally
//      quarantined from the training set;
//   4. hide the test domains' labels in the test graph (relabeling
//      machines, Figure 5), measure their features as if unknown, score
//      them, and return per-domain outcomes.
//
// run_cross_family implements Section IV-C: folds partition *malware
// families* so every test domain belongs to a family never seen in
// training.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/segugio.h"
#include "ml/metrics.h"

namespace seg::core {

/// Everything an experiment needs. Pointers must outlive the call.
struct ExperimentInputs {
  const dns::DayTrace* train_trace = nullptr;
  const dns::DayTrace* test_trace = nullptr;
  const dns::PublicSuffixList* psl = nullptr;
  const dns::DomainActivityIndex* activity = nullptr;
  const dns::PassiveDnsDb* pdns = nullptr;
  graph::NameSet train_blacklist;  ///< C&C blacklist as of the train day
  graph::NameSet test_blacklist;   ///< C&C blacklist as of the test day
  graph::NameSet whitelist;        ///< popular-e2LD whitelist
};

/// One scored test domain with the context needed for later analysis.
struct TestOutcome {
  std::string name;
  std::string e2ld;
  int label = 0;  ///< 1 = malware ground truth, 0 = benign
  double score = 0.0;
  features::FeatureVector features{};  ///< as measured with hidden label
};

struct EvaluationResult {
  std::vector<TestOutcome> outcomes;
  double train_seconds = 0.0;
  double test_seconds = 0.0;
  graph::PruneStats train_prune;
  graph::PruneStats test_prune;
  PipelineTimings timings;

  std::vector<int> labels() const;
  std::vector<double> scores() const;
  ml::RocCurve roc() const;
  std::size_t test_malicious() const;
  std::size_t test_benign() const;

  /// Merges several results (e.g. cross-family folds) into one pooled
  /// result for a single ROC.
  static EvaluationResult merge(const std::vector<EvaluationResult>& results);
};

struct CrossDayOptions {
  /// Fraction of known domains (per class) held out for testing.
  double test_fraction = 0.5;
  std::uint64_t seed = 2013'04'02;
};

EvaluationResult run_cross_day(const ExperimentInputs& inputs, const SegugioConfig& config,
                               const CrossDayOptions& options = {});

struct CrossFamilyOptions {
  std::size_t folds = 5;
  /// Benign domains are still split at random (families only exist for
  /// malware).
  double benign_test_fraction = 0.5;
  std::uint64_t seed = 2013'04'15;
};

/// Per-fold results; pool with EvaluationResult::merge.
std::vector<EvaluationResult> run_cross_family(
    const ExperimentInputs& inputs, const SegugioConfig& config,
    const std::unordered_map<std::string, std::uint32_t>& family_of,
    const CrossFamilyOptions& options = {});

struct CrossValidationOptions {
  std::size_t folds = 5;
  std::uint64_t seed = 2013'04'23;
};

/// Stratified k-fold cross-validation *within* one day of traffic: each
/// fold's known domains are hidden (graph labels reset, machines
/// relabeled), the model trains on the remaining known domains of the same
/// graph, and the fold is scored as unknown. Pool with
/// EvaluationResult::merge.
std::vector<EvaluationResult> run_in_day_cross_validation(
    const dns::DayTrace& trace, const dns::PublicSuffixList& psl,
    const graph::NameSet& blacklist, const graph::NameSet& whitelist,
    const dns::DomainActivityIndex& activity, const dns::PassiveDnsDb& pdns,
    const SegugioConfig& config, const CrossValidationOptions& options = {});

}  // namespace seg::core
