// Detection-threshold calibration.
//
// The paper tunes the detection threshold "to obtain the desired trade-off
// between true and false positives" (Section II-A3), e.g. <= 0.1% FPs for
// the early-detection deployment (Section IV-F). Operationally the
// threshold is picked on the training day itself: score the day's *known*
// domains with their labels hidden (exactly like training rows) and choose
// the smallest threshold that keeps the FP rate within budget.
#pragma once

#include "core/segugio.h"

namespace seg::core {

struct CalibrationResult {
  double threshold = 0.0;
  double achieved_tpr = 0.0;
  double achieved_fpr = 0.0;
  std::size_t malware_domains = 0;
  std::size_t benign_domains = 0;
};

/// Calibrates on `graph`'s known domains (hidden-label scores) for an FP
/// budget of `max_fpr`. Requires a trained detector and a graph holding
/// both known classes.
CalibrationResult calibrate_threshold(const Segugio& segugio,
                                      const graph::MachineDomainGraph& graph,
                                      const dns::DomainActivityIndex& activity,
                                      const dns::PassiveDnsDb& pdns, double max_fpr);

/// Sharded-store overload, used by the streaming pipeline. Top-level
/// calls only (see dns/sharded_store.h).
CalibrationResult calibrate_threshold(const Segugio& segugio,
                                      const graph::MachineDomainGraph& graph,
                                      const dns::ShardedActivityIndex& activity,
                                      const dns::ShardedPassiveDnsDb& pdns, double max_fpr);

}  // namespace seg::core
