// The streaming multi-day pipeline (Figure 2, run day after day).
//
// A Pipeline is a long-lived session over one monitored network. It owns
// the history stores (domain activity, passive DNS) in their sharded form
// and a carried name dictionary, so consecutive days share work:
//
//   - name validation/normalization/e2LD facts computed on day t are
//     reused on day t+1 (only genuinely new names pay the full cost);
//   - F2/F3 history lookups run as parallel batches against the sharded
//     stores instead of one hash probe at a time.
//
// Determinism contract: every PreparedDay graph and every classify()
// score is bit-identical to what a from-scratch Segugio::prepare_graph /
// train / classify over the same inputs produces, for every thread and
// shard count (tests/core/pipeline_test.cpp asserts byte equality of the
// serialized graphs and exact score equality at 1 and 8 threads).
//
// Typical deployment session:
//
//   core::Pipeline pipeline(psl, config);
//   pipeline.absorb_history(warmup_activity, warmup_pdns);
//   auto day1 = pipeline.ingest_day(trace_t1, blacklist_t1, whitelist);
//   pipeline.train(day1);
//   auto day2 = pipeline.ingest_day(trace_t2, blacklist_t2, whitelist);
//   auto report = pipeline.classify(day2);
//   for (auto& hit : report.detections_at(threshold)) ...
#pragma once

#include <cstddef>
#include <iosfwd>
#include <vector>

#include "core/segugio.h"
#include "dns/sharded_store.h"
#include "graph/name_cache.h"

namespace seg::core {

/// One ingested observation day, ready for train() / classify().
struct PreparedDay {
  graph::MachineDomainGraph graph;  ///< labeled, (filtered,) pruned
  graph::PruneStats prune_stats;    ///< R1-R4 breakdown
  PrepareTimings timings;           ///< per-stage wall clock
  graph::CarryStats carry;          ///< name-dictionary reuse for this day
  dns::Day day = 0;                 ///< the observation day
};

/// Cumulative counters over every ingest_day() of the session.
struct StreamingStats {
  std::size_t days_ingested = 0;
  std::vector<double> ingest_seconds;  ///< wall clock per ingested day
  std::vector<double> reuse_ratios;    ///< name-dictionary reuse per day
  std::size_t cached_names = 0;        ///< dictionary size after last day
};

class Pipeline {
 public:
  /// Fresh session with empty history stores. `psl` must outlive the
  /// pipeline.
  explicit Pipeline(const dns::PublicSuffixList& psl, SegugioConfig config = {});

  /// Session seeded from existing serial history (e.g. a warmup period or
  /// stores loaded from disk); the stores are absorbed by copy.
  Pipeline(const dns::PublicSuffixList& psl, const dns::DomainActivityIndex& activity,
           const dns::PassiveDnsDb& pdns, SegugioConfig config = {});

  /// Folds serial history into the session's sharded stores. Idempotent:
  /// absorbing the same snapshot twice changes nothing, so callers may
  /// re-absorb a growing store after each day.
  void absorb_history(const dns::DomainActivityIndex& activity, const dns::PassiveDnsDb& pdns);

  /// Builds, labels, (optionally) prober-filters, and prunes the day's
  /// behavior graph in streaming mode. History stores are fed separately
  /// through absorb_history(), keeping feature inputs identical to the
  /// one-shot flow. Top-level calls only (the build uses the shared pool).
  PreparedDay ingest_day(const dns::DayTrace& trace, const graph::NameSet& cc_blacklist,
                         const graph::NameSet& e2ld_whitelist);

  /// Trains the detector from the day's known domains (Figure 5 protocol),
  /// with history served by the sharded stores.
  void train(const PreparedDay& day);

  /// Scores the day's unknown domains; the report is self-contained (see
  /// DetectionReport).
  DetectionReport classify(const PreparedDay& day) const;

  /// Persists the session state that is NOT reconstructible from the serial
  /// history stores: the carried name dictionary (`segf1 pipeline-session`
  /// stream embedding a `segf1 namecache` payload). The activity/pdns
  /// history keeps using the serial stores' own save/load plus
  /// absorb_history(), so a restart is:
  ///
  ///   save:  activity.save(a); pdns.save(p); pipeline.save_session(s);
  ///   load:  Pipeline fresh(psl, config);
  ///          fresh.absorb_history(load(a), load(p));
  ///          fresh.load_session(s);
  ///
  /// after which ingest_day() produces bit-identical graphs and reuse
  /// ratios carry over instead of resetting to zero.
  void save_session(std::ostream& out) const;

  /// Restores a save_session() stream into this session, replacing the
  /// carried dictionary. Throws util::ParseError on malformed or headerless
  /// input (there is no legacy session format).
  void load_session(std::istream& in);

  const Segugio& detector() const { return detector_; }
  Segugio& detector() { return detector_; }
  const SegugioConfig& config() const { return detector_.config(); }
  const dns::ShardedActivityIndex& activity() const { return activity_; }
  const dns::ShardedPassiveDnsDb& pdns() const { return pdns_; }
  const StreamingStats& streaming_stats() const { return stats_; }

 private:
  const dns::PublicSuffixList* psl_;
  Segugio detector_;
  graph::NameCache cache_;
  dns::ShardedActivityIndex activity_;
  dns::ShardedPassiveDnsDb pdns_;
  StreamingStats stats_;
};

}  // namespace seg::core
