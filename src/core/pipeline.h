// The streaming multi-day pipeline (Figure 2, run day after day).
//
// A Pipeline is a long-lived session over one monitored network. It owns
// the history stores (domain activity, passive DNS) in their sharded form
// and a carried name dictionary, so consecutive days share work:
//
//   - name validation/normalization/e2LD facts computed on day t are
//     reused on day t+1 (only genuinely new names pay the full cost);
//   - F2/F3 history lookups run as parallel batches against the sharded
//     stores instead of one hash probe at a time.
//
// Records enter through ingest_stream(): a TraceSource (dnstap capture,
// pcap, SEGTRC1 binlog, sim TSV, or an in-memory trace) is parsed on a
// producer thread, micro-batched through a bounded back-pressured
// util::IngestQueue, assembled into observation days on the caller
// thread, and each completed day is prepared and handed to a callback.
// The legacy one-day batch entry point, ingest_day(), survives as a thin
// adapter over an in-memory source.
//
// Determinism contract: every PreparedDay graph and every classify()
// score is bit-identical to what a from-scratch Segugio::prepare_graph /
// train / classify over the same inputs produces, for every thread and
// shard count (tests/core/pipeline_test.cpp asserts byte equality of the
// serialized graphs and exact score equality at 1 and 8 threads) — and a
// streamed session is byte-identical to the equivalent day-batch session
// under the blocking back-pressure policy, the only policy that never
// drops records (tests/core/pipeline_stream_test.cpp).
//
// Typical deployment session:
//
//   core::Pipeline pipeline(psl, config);
//   pipeline.absorb_history(warmup_activity, warmup_pdns);
//   dns::FileTraceSource tap("resolver.dnstap");
//   pipeline.ingest_stream(tap, blacklist_for_day, whitelist,
//                          [&](PreparedDay&& day) {
//                            auto report = pipeline.classify(day);
//                            ...archive report, maybe re-train...
//                          });
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <memory>
#include <optional>
#include <vector>

#include "core/segugio.h"
#include "dns/sharded_store.h"
#include "dns/trace_source.h"
#include "graph/name_cache.h"
#include "util/ingest_queue.h"
#include "util/obs/drift.h"
#include "util/obs/journal.h"

namespace seg::core {

/// One ingested observation day, ready for train() / classify().
struct PreparedDay {
  graph::MachineDomainGraph graph;  ///< labeled, (filtered,) pruned
  graph::PruneStats prune_stats;    ///< R1-R4 breakdown
  PrepareTimings timings;           ///< per-stage wall clock
  graph::CarryStats carry;          ///< name-dictionary reuse for this day
  dns::Day day = 0;                 ///< the observation day
};

/// Cumulative counters over every day the session ingested (through
/// ingest_stream() or the legacy adapter — both funnel into the same
/// per-day preparation, so there is exactly one timing mechanism:
/// ingest_seconds[i] is the close of the i-th "pipeline/ingest_day" span).
struct StreamingStats {
  std::size_t days_ingested = 0;
  std::vector<double> ingest_seconds;  ///< wall clock per ingested day
  std::vector<double> reuse_ratios;    ///< name-dictionary reuse per day
  std::size_t cached_names = 0;        ///< dictionary size after last day
};

/// Tuning for ingest_stream()'s producer/queue stage.
struct IngestOptions {
  std::size_t batch_records = 1024;  ///< records per micro-batch pushed
  std::size_t queue_capacity = 256;  ///< max queued batches (back-pressure)
  util::BackpressurePolicy policy = util::BackpressurePolicy::kBlock;
  /// When false, the source is parsed inline on the caller thread with no
  /// producer thread and no queue (the adapter path; also handy in tests).
  bool use_queue = true;
  /// kCountAndDrop only: shed overload as a uniform per-record sample
  /// instead of whole contiguous batches (see util::IngestQueueOptions).
  /// Irrelevant under the default kBlock policy, which never drops.
  bool sampled_admission = true;
};

/// Tuning for the per-day obs journal (Pipeline::set_journal()). All of it
/// is telemetry configuration: none of these fields can change a score.
struct JournalOptions {
  /// Alert trip points for the drift gauges.
  obs::DriftThresholds drift;
  /// FP budget for the calibration gauges journaled on train() days.
  double calibration_max_fpr = 0.01;
  /// Journal threshold calibration on train() days (costs one hidden-label
  /// scoring pass over the day's known domains).
  bool calibrate = true;
  /// Include wall-clock/RSS extras in a "runtime" sub-object. Off by
  /// default: without it a journal is byte-identical across thread counts
  /// and machines for the same inputs.
  bool include_runtime = false;
  /// Score-histogram resolution over [0, 1].
  std::size_t score_bins = 20;
  /// Drift baseline day; -1 pins the first day that was classified.
  std::int64_t baseline_day = -1;
};

/// What one ingest_stream() call observed.
struct IngestStats {
  std::uint64_t records = 0;       ///< records assembled into days
  std::uint64_t wire_skipped = 0;  ///< filtered wire messages (FileTraceSource)
  std::size_t days = 0;            ///< completed days handed to the callback
  util::IngestQueueStats queue;    ///< final queue counters (zeros if no queue)
};

class Pipeline {
 public:
  /// Serves the ground-truth C&C blacklist for an observation day —
  /// blacklists evolve, so a multi-day stream looks the day's list up as
  /// each day completes. The returned reference must stay valid for the
  /// duration of that day's preparation.
  using BlacklistProvider = std::function<const graph::NameSet&(dns::Day)>;

  /// Receives each completed, prepared day in stream order.
  using DayCallback = std::function<void(PreparedDay&&)>;

  /// Fresh session with empty history stores. `psl` must outlive the
  /// pipeline.
  explicit Pipeline(const dns::PublicSuffixList& psl, SegugioConfig config = {});

  /// Session seeded from existing serial history (e.g. a warmup period or
  /// stores loaded from disk); the stores are absorbed by copy.
  Pipeline(const dns::PublicSuffixList& psl, const dns::DomainActivityIndex& activity,
           const dns::PassiveDnsDb& pdns, SegugioConfig config = {});

  /// Folds serial history into the session's sharded stores. Idempotent:
  /// absorbing the same snapshot twice changes nothing, so callers may
  /// re-absorb a growing store after each day.
  void absorb_history(const dns::DomainActivityIndex& activity, const dns::PassiveDnsDb& pdns);

  /// Consumes `source` to exhaustion: parses records on a producer thread,
  /// moves them through a bounded back-pressured queue (see IngestOptions),
  /// cuts the stream at day boundaries (days must be non-decreasing;
  /// util::ParseError otherwise), prepares each completed day exactly as
  /// ingest_day() would, and hands it to `on_day`. Under the default
  /// kBlock policy the result is bit-identical to per-day batch ingestion;
  /// kCountAndDrop trades completeness for liveness and reports drops in
  /// the returned stats. Exceptions from the producer (malformed wire
  /// data) or from `on_day` propagate to the caller after the producer
  /// thread is joined. Top-level calls only (the build uses the shared
  /// pool).
  IngestStats ingest_stream(dns::TraceSource& source, const BlacklistProvider& cc_blacklist,
                            const graph::NameSet& e2ld_whitelist, const DayCallback& on_day,
                            const IngestOptions& options = {});

  /// Builds, labels, (optionally) prober-filters, and prunes one day's
  /// behavior graph from a materialized trace. History stores are fed
  /// separately through absorb_history(), keeping feature inputs identical
  /// to the one-shot flow. Kept as an adapter over ingest_stream() for
  /// callers that already hold a DayTrace; new code should stream.
  // seg-deprecated
  PreparedDay ingest_day(const dns::DayTrace& trace, const graph::NameSet& cc_blacklist,
                         const graph::NameSet& e2ld_whitelist);

  /// Trains the detector from the day's known domains (Figure 5 protocol),
  /// with history served by the sharded stores.
  void train(const PreparedDay& day);

  /// Scores the day's unknown domains; the report is self-contained (see
  /// DetectionReport).
  DetectionReport classify(const PreparedDay& day) const;

  /// Persists the session state that is NOT reconstructible from the serial
  /// history stores: the carried name dictionary (`segf1 pipeline-session`
  /// stream embedding a `segf1 namecache` payload). The activity/pdns
  /// history keeps using the serial stores' own save/load plus
  /// absorb_history(), so a restart is:
  ///
  ///   save:  activity.save(a); pdns.save(p); pipeline.save_session(s);
  ///   load:  Pipeline fresh(psl, config);
  ///          fresh.absorb_history(load(a), load(p));
  ///          fresh.load_session(s);
  ///
  /// after which ingest_day() produces bit-identical graphs and reuse
  /// ratios carry over instead of resetting to zero.
  void save_session(std::ostream& out) const;

  /// Restores a save_session() stream into this session, replacing the
  /// carried dictionary. Throws util::ParseError on malformed or headerless
  /// input (there is no legacy session format).
  void load_session(std::istream& in);

  /// Attaches (or, with nullptr, detaches) a per-day obs journal: one
  /// `segf1 obsjournal 1` JSONL entry per ingested day, written to `out`
  /// at each day rollover. The entry for a day collects that day's
  /// graph/prune/carry counters at preparation time, calibration gauges
  /// when train() runs on it, and the score/feature histograms plus drift
  /// gauges when classify() runs on it; it is appended when the next day
  /// opens (or on flush_journal()/set_journal()). `out` must outlive the
  /// journaling session. Attaching a journal never perturbs scores or
  /// serialized artifacts — the same obs contract as spans and metrics.
  void set_journal(std::ostream* out, JournalOptions options = {});

  /// Appends the pending day's entry, if any. Idempotent; call at session
  /// end so the last day is not lost.
  void flush_journal();

  bool journal_enabled() const { return journal_writer_ != nullptr; }

  /// The pinned drift baseline entry (first classified day, or
  /// JournalOptions::baseline_day); nullptr until one is captured.
  const obs::JournalEntry* journal_baseline() const {
    return journal_baseline_ ? &*journal_baseline_ : nullptr;
  }

  const Segugio& detector() const { return detector_; }
  Segugio& detector() { return detector_; }
  const SegugioConfig& config() const { return detector_.config(); }
  const dns::ShardedActivityIndex& activity() const { return activity_; }
  const dns::ShardedPassiveDnsDb& pdns() const { return pdns_; }
  const StreamingStats& streaming_stats() const { return stats_; }

 private:
  /// The one per-day preparation path both entry points share (and the
  /// single source of StreamingStats::ingest_seconds timings).
  PreparedDay prepare_one_day(const dns::DayTrace& trace, const graph::NameSet& cc_blacklist,
                              const graph::NameSet& e2ld_whitelist);

  /// Opens the journal entry for a freshly prepared day (flushing the
  /// previous one — the rollover write).
  void journal_open_day(const PreparedDay& day, std::size_t records, double ingest_seconds);

  /// Folds the day's score/feature histograms and drift gauges into the
  /// pending entry. Const because classify() is; the journal members are
  /// mutable telemetry (like Segugio's timings).
  void journal_annotate_classify(const PreparedDay& day, const DetectionReport& report) const;

  const dns::PublicSuffixList* psl_;
  Segugio detector_;
  graph::NameCache cache_;
  dns::ShardedActivityIndex activity_;
  dns::ShardedPassiveDnsDb pdns_;
  StreamingStats stats_;

  JournalOptions journal_options_;
  std::unique_ptr<obs::JournalWriter> journal_writer_;
  mutable std::optional<obs::JournalEntry> journal_pending_;
  mutable std::optional<obs::JournalEntry> journal_baseline_;
};

}  // namespace seg::core
