#include "core/infection_report.h"

#include <algorithm>
#include <unordered_map>

namespace seg::core {

InfectionReport enumerate_infections(const graph::MachineDomainGraph& graph,
                                     const DetectionReport& detections, double threshold) {
  // machine id -> accumulating entry
  std::unordered_map<graph::MachineId, InfectedMachine> by_machine;

  // Known infections: machines querying blacklist-labeled domains.
  for (graph::DomainId d = 0; d < graph.domain_count(); ++d) {
    if (graph.domain_label(d) != graph::Label::kMalware) {
      continue;
    }
    for (const auto m : graph.machines_of(d)) {
      auto& entry = by_machine[m];
      if (entry.name.empty()) {
        entry.name = graph.machine_name(m);
      }
      entry.known_domains.emplace_back(graph.domain_name(d));
    }
  }

  // New detections extend the worklist.
  std::unordered_map<graph::MachineId, bool> known_before;
  for (const auto& [m, entry] : by_machine) {
    known_before.emplace(m, true);
  }
  for (const auto& scored : detections.scores) {
    if (scored.score < threshold) {
      continue;
    }
    for (const auto m : graph.machines_of(scored.id)) {
      auto& entry = by_machine[m];
      if (entry.name.empty()) {
        entry.name = graph.machine_name(m);
      }
      entry.detected_domains.push_back(scored);
    }
  }

  InfectionReport report;
  report.machines.reserve(by_machine.size());
  for (auto& [m, entry] : by_machine) {
    if (!known_before.contains(m)) {
      ++report.newly_implicated;
    }
    std::sort(entry.detected_domains.begin(), entry.detected_domains.end(),
              [](const DomainScore& a, const DomainScore& b) { return a.score > b.score; });
    std::sort(entry.known_domains.begin(), entry.known_domains.end());
    report.machines.push_back(std::move(entry));
  }
  std::sort(report.machines.begin(), report.machines.end(),
            [](const InfectedMachine& a, const InfectedMachine& b) {
              if (a.evidence() != b.evidence()) {
                return a.evidence() > b.evidence();
              }
              return a.name < b.name;
            });
  return report;
}

}  // namespace seg::core
