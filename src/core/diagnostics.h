// Human-readable model diagnostics ("model card") for a trained detector.
#pragma once

#include <string>

#include "core/segugio.h"

namespace seg::core {

/// Renders a text description of a trained detector: classifier backend,
/// configured feature set (names), per-feature importances (forest only),
/// feature windows, and the pruning thresholds that travel with the model.
std::string describe_model(const Segugio& segugio);

}  // namespace seg::core
