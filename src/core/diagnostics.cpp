#include "core/diagnostics.h"

#include <sstream>

#include "features/feature_config.h"
#include "util/require.h"
#include "util/strings.h"
#include "util/table.h"

namespace seg::core {

std::string describe_model(const Segugio& segugio) {
  util::require(segugio.is_trained(), "describe_model: detector not trained");
  const auto& config = segugio.config();
  std::ostringstream out;

  out << "Segugio detector\n";
  out << "  classifier:      "
      << (config.classifier == ClassifierKind::kRandomForest ? "random forest"
                                                             : "logistic regression")
      << "\n";
  out << "  activity window: " << config.features.activity_window_days << " days (n)\n";
  out << "  pDNS window:     " << config.features.pdns_window_days << " days (W)\n";
  out << "  pruning:         R1 <= " << config.pruning.inactive_machine_max_degree
      << " domains, R2 pct " << util::format_double(config.pruning.proxy_degree_percentile, 4)
      << ", R3 < " << config.pruning.min_domain_machines << " machines, R4 >= "
      << util::format_double(config.pruning.popular_e2ld_fraction, 3) << " of machines\n";
  out << "  prober filter:   " << (config.prober_filter.has_value() ? "on" : "off") << "\n";

  // Active features and (for forests) their importances.
  const auto& names = features::feature_names();
  std::vector<std::size_t> active = config.feature_subset;
  if (active.empty()) {
    for (std::size_t i = 0; i < features::kNumFeatures; ++i) {
      active.push_back(i);
    }
  }
  const auto importance = segugio.feature_importance();
  util::TextTable table(importance.empty()
                            ? std::vector<std::string>{"feature"}
                            : std::vector<std::string>{"feature", "importance"});
  for (std::size_t i = 0; i < active.size(); ++i) {
    if (importance.empty()) {
      table.add_row({names[active[i]]});
    } else {
      table.add_row({names[active[i]], util::format_double(importance[i], 4)});
    }
  }
  out << table.render();
  return out.str();
}

}  // namespace seg::core
