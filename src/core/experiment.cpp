#include "core/experiment.h"

#include <algorithm>

#include "graph/labeling.h"
#include "util/require.h"
#include "util/rng.h"
#include "util/obs/trace.h"

namespace seg::core {

std::vector<int> EvaluationResult::labels() const {
  std::vector<int> out;
  out.reserve(outcomes.size());
  for (const auto& outcome : outcomes) {
    out.push_back(outcome.label);
  }
  return out;
}

std::vector<double> EvaluationResult::scores() const {
  std::vector<double> out;
  out.reserve(outcomes.size());
  for (const auto& outcome : outcomes) {
    out.push_back(outcome.score);
  }
  return out;
}

ml::RocCurve EvaluationResult::roc() const {
  return ml::RocCurve::compute(labels(), scores());
}

std::size_t EvaluationResult::test_malicious() const {
  return static_cast<std::size_t>(
      std::count_if(outcomes.begin(), outcomes.end(),
                    [](const TestOutcome& o) { return o.label == 1; }));
}

std::size_t EvaluationResult::test_benign() const {
  return outcomes.size() - test_malicious();
}

EvaluationResult EvaluationResult::merge(const std::vector<EvaluationResult>& results) {
  EvaluationResult merged;
  for (const auto& result : results) {
    merged.outcomes.insert(merged.outcomes.end(), result.outcomes.begin(),
                           result.outcomes.end());
    merged.train_seconds += result.train_seconds;
    merged.test_seconds += result.test_seconds;
  }
  if (!results.empty()) {
    merged.train_prune = results.front().train_prune;
    merged.test_prune = results.front().test_prune;
    merged.timings = results.front().timings;
  }
  return merged;
}

namespace {

// Stratified random selection of test domains from the known domains of a
// labeled graph. Returns (domain, label) pairs and the name quarantine set.
struct TestSelection {
  std::vector<std::pair<graph::DomainId, int>> rows;
  graph::NameSet names;
};

TestSelection select_stratified_test_set(const graph::MachineDomainGraph& graph,
                                         double malware_fraction, double benign_fraction,
                                         util::Rng& rng) {
  std::vector<graph::DomainId> malware_ids;
  std::vector<graph::DomainId> benign_ids;
  for (graph::DomainId d = 0; d < graph.domain_count(); ++d) {
    switch (graph.domain_label(d)) {
      case graph::Label::kMalware:
        malware_ids.push_back(d);
        break;
      case graph::Label::kBenign:
        benign_ids.push_back(d);
        break;
      case graph::Label::kUnknown:
        break;
    }
  }
  TestSelection selection;
  const auto take = [&](std::vector<graph::DomainId>& ids, double fraction, int label) {
    rng.shuffle(std::span<graph::DomainId>(ids));
    const auto n = static_cast<std::size_t>(fraction * static_cast<double>(ids.size()) + 0.5);
    for (std::size_t i = 0; i < n; ++i) {
      selection.rows.emplace_back(ids[i], label);
      selection.names.insert(graph.domain_name(ids[i]));
    }
  };
  take(malware_ids, malware_fraction, 1);
  take(benign_ids, benign_fraction, 0);
  return selection;
}

// Shared tail of every protocol: train on the train-day trace with the test
// names quarantined, hide the test labels in the (already prepared) test
// graph, and score the test rows.
EvaluationResult evaluate_with_test_set(const ExperimentInputs& inputs,
                                        const SegugioConfig& config,
                                        const graph::MachineDomainGraph& test_graph,
                                        const graph::PruneStats& test_prune,
                                        const TestSelection& selection,
                                        const graph::NameSet& train_blacklist) {
  EvaluationResult result;
  result.test_prune = test_prune;

  // --- Training.
  obs::Span train_span("experiment/train");
  auto train_prep = Segugio::prepare_graph(*inputs.train_trace, *inputs.psl, train_blacklist,
                                           inputs.whitelist, config.prepare_options());
  result.train_prune = train_prep.prune_stats;
  auto& train_graph = train_prep.graph;
  SegugioConfig local = config;
  local.training.exclude = &selection.names;
  Segugio segugio(local);
  segugio.train(train_graph, *inputs.activity, *inputs.pdns);
  result.train_seconds = train_span.close();

  // --- Testing: hide all test-domain labels at once, relabel machines.
  obs::Span test_span("experiment/test");
  auto hidden = test_graph;  // work on a copy; the caller may reuse test_graph
  for (const auto& [d, label] : selection.rows) {
    hidden.set_domain_label(d, graph::Label::kUnknown);
  }
  graph::relabel_machines(hidden);

  const features::FeatureExtractor extractor(hidden, *inputs.activity, *inputs.pdns,
                                             local.features);
  result.outcomes.reserve(selection.rows.size());
  for (const auto& [d, label] : selection.rows) {
    TestOutcome outcome;
    outcome.name = hidden.domain_name(d);
    outcome.e2ld = hidden.e2ld_name(hidden.domain_e2ld(d));
    outcome.label = label;
    outcome.features = extractor.extract(d);
    outcome.score = segugio.score(outcome.features);
    result.outcomes.push_back(std::move(outcome));
  }
  result.test_seconds = test_span.close();
  result.timings = segugio.timings();
  return result;
}

}  // namespace

EvaluationResult run_cross_day(const ExperimentInputs& inputs, const SegugioConfig& config,
                               const CrossDayOptions& options) {
  util::require(inputs.train_trace != nullptr && inputs.test_trace != nullptr &&
                    inputs.psl != nullptr && inputs.activity != nullptr &&
                    inputs.pdns != nullptr,
                "run_cross_day: missing experiment inputs");
  util::require(options.test_fraction > 0.0 && options.test_fraction < 1.0,
                "run_cross_day: test_fraction must be in (0, 1)");

  const auto test_prep = Segugio::prepare_graph(*inputs.test_trace, *inputs.psl,
                                                inputs.test_blacklist, inputs.whitelist,
                                                config.prepare_options());
  const auto& test_graph = test_prep.graph;

  util::Rng rng(options.seed);
  const auto selection = select_stratified_test_set(test_graph, options.test_fraction,
                                                    options.test_fraction, rng);
  util::require(!selection.rows.empty(), "run_cross_day: empty test selection");

  // Strip the test malware names from the training blacklist so their
  // ground truth cannot leak into training-day machine labels.
  graph::NameSet filtered;
  for (const auto& name : inputs.train_blacklist) {
    if (!selection.names.contains(name)) {
      filtered.insert(name);
    }
  }
  return evaluate_with_test_set(inputs, config, test_graph, test_prep.prune_stats, selection,
                                filtered);
}

std::vector<EvaluationResult> run_cross_family(
    const ExperimentInputs& inputs, const SegugioConfig& config,
    const std::unordered_map<std::string, std::uint32_t>& family_of,
    const CrossFamilyOptions& options) {
  util::require(options.folds >= 2, "run_cross_family: need at least 2 folds");

  const auto test_prep = Segugio::prepare_graph(*inputs.test_trace, *inputs.psl,
                                                inputs.test_blacklist, inputs.whitelist,
                                                config.prepare_options());
  const auto& test_graph = test_prep.graph;

  // Balanced family folds.
  std::vector<std::uint32_t> families;
  {
    std::vector<std::uint32_t> all;
    for (const auto& entry : family_of) {
      all.push_back(entry.second);
    }
    std::sort(all.begin(), all.end());
    all.erase(std::unique(all.begin(), all.end()), all.end());
    families = std::move(all);
  }
  util::require(families.size() >= options.folds,
                "run_cross_family: fewer families than folds");
  util::Rng rng(options.seed);
  rng.shuffle(std::span<std::uint32_t>(families));

  std::vector<EvaluationResult> results;
  for (std::size_t fold = 0; fold < options.folds; ++fold) {
    const auto family_in_fold = [&](std::uint32_t family) {
      for (std::size_t i = fold; i < families.size(); i += options.folds) {
        if (families[i] == family) {
          return true;
        }
      }
      return false;
    };

    // Test selection: benign split at random; malware = blacklisted
    // domains of the fold's families that appear in the test graph.
    util::Rng fold_rng = rng.fork(fold + 1);
    TestSelection selection =
        select_stratified_test_set(test_graph, 0.0, options.benign_test_fraction, fold_rng);
    for (graph::DomainId d = 0; d < test_graph.domain_count(); ++d) {
      if (test_graph.domain_label(d) != graph::Label::kMalware) {
        continue;
      }
      const auto it = family_of.find(std::string(test_graph.domain_name(d)));
      if (it != family_of.end() && family_in_fold(it->second)) {
        selection.rows.emplace_back(d, 1);
        selection.names.insert(test_graph.domain_name(d));
      }
    }

    // Training blacklist: remove *every* domain of the fold's families, not
    // just the ones in the test graph, so the malware families represented
    // in the test set are entirely unseen in training.
    graph::NameSet filtered;
    for (const auto& name : inputs.train_blacklist) {
      const auto it = family_of.find(name);
      if (it != family_of.end() && family_in_fold(it->second)) {
        continue;
      }
      filtered.insert(name);
    }
    results.push_back(evaluate_with_test_set(inputs, config, test_graph,
                                             test_prep.prune_stats, selection, filtered));
  }
  return results;
}

std::vector<EvaluationResult> run_in_day_cross_validation(
    const dns::DayTrace& trace, const dns::PublicSuffixList& psl,
    const graph::NameSet& blacklist, const graph::NameSet& whitelist,
    const dns::DomainActivityIndex& activity, const dns::PassiveDnsDb& pdns,
    const SegugioConfig& config, const CrossValidationOptions& options) {
  util::require(options.folds >= 2, "run_in_day_cross_validation: need >= 2 folds");

  const auto prep = Segugio::prepare_graph(trace, psl, blacklist, whitelist,
                                           config.prepare_options());
  const auto& graph = prep.graph;
  const auto& prune_stats = prep.prune_stats;

  // Stratified fold assignment over the known domains.
  std::vector<graph::DomainId> malware_ids;
  std::vector<graph::DomainId> benign_ids;
  for (graph::DomainId d = 0; d < graph.domain_count(); ++d) {
    switch (graph.domain_label(d)) {
      case graph::Label::kMalware:
        malware_ids.push_back(d);
        break;
      case graph::Label::kBenign:
        benign_ids.push_back(d);
        break;
      case graph::Label::kUnknown:
        break;
    }
  }
  util::require(malware_ids.size() >= options.folds && benign_ids.size() >= options.folds,
                "run_in_day_cross_validation: too few known domains for the fold count");
  util::Rng rng(options.seed);
  rng.shuffle(std::span<graph::DomainId>(malware_ids));
  rng.shuffle(std::span<graph::DomainId>(benign_ids));

  std::vector<EvaluationResult> results;
  for (std::size_t fold = 0; fold < options.folds; ++fold) {
    // Hide this fold's labels; the rest stays known for training.
    auto hidden = graph;
    std::vector<std::pair<graph::DomainId, int>> rows;
    for (std::size_t i = fold; i < malware_ids.size(); i += options.folds) {
      rows.emplace_back(malware_ids[i], 1);
      hidden.set_domain_label(malware_ids[i], graph::Label::kUnknown);
    }
    for (std::size_t i = fold; i < benign_ids.size(); i += options.folds) {
      rows.emplace_back(benign_ids[i], 0);
      hidden.set_domain_label(benign_ids[i], graph::Label::kUnknown);
    }
    graph::relabel_machines(hidden);

    obs::Span fold_train_span("experiment/fold_train");
    Segugio segugio(config);
    segugio.train(hidden, activity, pdns);

    EvaluationResult result;
    result.train_prune = prune_stats;
    result.test_prune = prune_stats;
    result.train_seconds = fold_train_span.close();
    obs::Span fold_test_span("experiment/fold_test");
    const features::FeatureExtractor extractor(hidden, activity, pdns, config.features);
    for (const auto& [d, label] : rows) {
      TestOutcome outcome;
      outcome.name = hidden.domain_name(d);
      outcome.e2ld = hidden.e2ld_name(hidden.domain_e2ld(d));
      outcome.label = label;
      outcome.features = extractor.extract(d);
      outcome.score = segugio.score(outcome.features);
      result.outcomes.push_back(std::move(outcome));
    }
    result.test_seconds = fold_test_span.close();
    result.timings = segugio.timings();
    results.push_back(std::move(result));
  }
  return results;
}

}  // namespace seg::core
