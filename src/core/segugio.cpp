#include "core/segugio.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <istream>
#include <ostream>
#include <string_view>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

#include "graph/graph_compressed.h"
#include "graph/labeling.h"
#include "ml/metrics.h"
#include "util/obs/metrics.h"
#include "util/obs/trace.h"
#include "util/parallel.h"
#include "util/require.h"
#include "util/serialize.h"

namespace seg::core {

PrepareOptions SegugioConfig::prepare_options() const {
  PrepareOptions options;
  options.pruning = pruning;
  options.prober_filter = prober_filter;
  return options;
}

std::vector<Detection> DetectionReport::detections_at(double threshold) const {
  util::require(machine_offsets.size() == scores.size() + 1,
                "DetectionReport::detections_at: report carries no machine attribution");
  std::vector<Detection> detections;
  for (std::size_t i = 0; i < scores.size(); ++i) {
    if (scores[i].score < threshold) {
      continue;
    }
    Detection detection;
    detection.domain = scores[i];
    for (std::uint32_t k = machine_offsets[i]; k < machine_offsets[i + 1]; ++k) {
      detection.machines.push_back(machine_names[machine_refs[k]]);
    }
    detections.push_back(std::move(detection));
  }
  std::sort(detections.begin(), detections.end(), [](const Detection& a, const Detection& b) {
    return a.domain.score > b.domain.score;
  });
  return detections;
}

std::vector<Detection> DetectionReport::detections_at(
    double threshold, const graph::MachineDomainGraph& graph) const {
  std::vector<Detection> detections;
  for (const auto& scored : scores) {
    if (scored.score < threshold) {
      continue;
    }
    Detection detection;
    detection.domain = scored;
    for (const auto m : graph.machines_of(scored.id)) {
      detection.machines.emplace_back(graph.machine_name(m));
    }
    detections.push_back(std::move(detection));
  }
  std::sort(detections.begin(), detections.end(), [](const Detection& a, const Detection& b) {
    return a.domain.score > b.domain.score;
  });
  return detections;
}

Segugio::Segugio(SegugioConfig config) : config_(std::move(config)) {}

namespace detail {

PrepareResult prepare_day(const dns::DayTrace& trace, const dns::PublicSuffixList& psl,
                          const graph::NameSet& cc_blacklist,
                          const graph::NameSet& e2ld_whitelist, const PrepareOptions& options,
                          graph::NameCache* cache, graph::CarryStats* carry) {
  PrepareResult result;
  PrepareTimings& t = result.timings;

  graph::ShardedGraphBuilder builder =
      cache != nullptr ? graph::ShardedGraphBuilder(psl, *cache) : graph::ShardedGraphBuilder(psl);
  builder.add_trace(trace);
  auto graph = builder.build();
  t.build = builder.last_timings();
  if (carry != nullptr) {
    *carry = builder.last_carry();
  }

  {
    obs::Span span("prepare/label");
    graph::apply_labels(graph, cc_blacklist, e2ld_whitelist);
    t.label_seconds = span.close();
  }

  if (options.prober_filter.has_value()) {
    obs::Span span("prepare/prober");
    graph = graph::remove_probers(graph, *options.prober_filter);
    t.prober_seconds = span.close();
  }

  obs::Span prune_span("prepare/prune");
  result.graph = graph::prune(graph, options.pruning, &result.prune_stats);
  t.prune_seconds = prune_span.close();
  return result;
}

}  // namespace detail

PrepareResult Segugio::prepare_graph(const dns::DayTrace& trace,
                                     const dns::PublicSuffixList& psl,
                                     const graph::NameSet& cc_blacklist,
                                     const graph::NameSet& e2ld_whitelist,
                                     const PrepareOptions& options) {
  return detail::prepare_day(trace, psl, cc_blacklist, e2ld_whitelist, options,
                             /*cache=*/nullptr, /*carry=*/nullptr);
}

void Segugio::train(const graph::MachineDomainGraph& graph,
                    const dns::DomainActivityIndex& activity, const dns::PassiveDnsDb& pdns) {
  train(graph.view(), activity, pdns);
}

void Segugio::train(const graph::MachineDomainGraph& graph,
                    const dns::ShardedActivityIndex& activity,
                    const dns::ShardedPassiveDnsDb& pdns) {
  train(graph.view(), activity, pdns);
}

void Segugio::train(const graph::GraphView& graph, const dns::DomainActivityIndex& activity,
                    const dns::PassiveDnsDb& pdns) {
  obs::Span span("train/features");
  const features::FeatureExtractor extractor(graph, activity, pdns, config_.features);
  timings_.train_feature_seconds = span.close();
  train_impl(graph, extractor);
}

void Segugio::train(const graph::GraphView& graph, const dns::ShardedActivityIndex& activity,
                    const dns::ShardedPassiveDnsDb& pdns) {
  obs::Span span("train/features");
  const features::FeatureExtractor extractor(graph, activity, pdns, config_.features);
  timings_.train_feature_seconds = span.close();
  train_impl(graph, extractor);
}

void Segugio::train_impl(const graph::GraphView& graph,
                         const features::FeatureExtractor& extractor) {
  obs::Span features_span("train/features");
  auto training = features::build_training_set(graph, extractor, config_.training);
  util::require(training.malware_rows > 0,
                "Segugio::train: no known malware domains in the training graph");
  util::require(training.benign_rows > 0,
                "Segugio::train: no known benign domains in the training graph");
  timings_.train_feature_seconds += features_span.close();
  obs::Registry::instance()
      .counter("seg_train_rows_total")
      .add(training.malware_rows + training.benign_rows);

  obs::Span fit_span("train/fit");
  ml::Dataset dataset = config_.feature_subset.empty()
                            ? std::move(training.dataset)
                            : training.dataset.select_features(config_.feature_subset);
  if (config_.classifier == ClassifierKind::kRandomForest) {
    forest_ = std::make_unique<ml::RandomForest>(config_.forest);
    forest_->train(dataset);
    logistic_.reset();
  } else {
    logistic_ = std::make_unique<ml::LogisticRegression>(config_.logistic);
    logistic_->train(dataset);
    forest_.reset();
  }
  timings_.train_fit_seconds = fit_span.close();
}

bool Segugio::is_trained() const {
  return (forest_ != nullptr && forest_->is_trained()) ||
         (logistic_ != nullptr && logistic_->is_trained());
}

std::vector<double> Segugio::apply_subset(std::span<const double> features) const {
  if (config_.feature_subset.empty()) {
    return {features.begin(), features.end()};
  }
  std::vector<double> selected;
  selected.reserve(config_.feature_subset.size());
  for (const auto index : config_.feature_subset) {
    selected.push_back(features[index]);
  }
  return selected;
}

double Segugio::score(const features::FeatureVector& features) const {
  util::require(is_trained(), "Segugio::score: classifier not trained");
  const auto selected = apply_subset(features);
  return forest_ != nullptr ? forest_->predict_proba(selected)
                            : logistic_->predict_proba(selected);
}

namespace {

// SEG_GRAPH_BACKING=mmap reroutes heap-graph classification through a
// packed graphc temp file served zero-copy off the mapping; the oocore CI
// leg runs the whole pipeline suite this way. Scores are asserted
// bit-identical to the heap path by tests/core/pipeline_mmap_test.
bool mmap_backing_forced() {
  const char* env = std::getenv("SEG_GRAPH_BACKING");
  return env != nullptr && std::string_view(env) == "mmap";
}

// Deletes the temp graphc file even when classification throws.
struct TempFileGuard {
  std::string path;
  ~TempFileGuard() {
    if (!path.empty()) {
      std::remove(path.c_str());
    }
  }
};

}  // namespace

template <typename ActivityT, typename PdnsT>
DetectionReport Segugio::classify_via_mmap(const graph::MachineDomainGraph& graph,
                                           const ActivityT& activity, const PdnsT& pdns) const {
#if defined(__unix__) || defined(__APPLE__)
  char path_template[] = "/tmp/seg-graphc-XXXXXX";
  const int fd = mkstemp(path_template);
  util::require(fd >= 0, "Segugio::classify: cannot create temp graphc file");
  ::close(fd);
  TempFileGuard guard{path_template};
  {
    std::ofstream out(guard.path, std::ios::binary);
    graph::save_graph_compressed(graph, out, graph::GraphcEncoding::kPacked);
    util::require(static_cast<bool>(out), "Segugio::classify: temp graphc write failed");
  }
  const graph::MappedGraph mapped = graph::map_graph(guard.path);
  return classify(mapped.view, activity, pdns);
#else
  return classify(graph.view(), activity, pdns);
#endif
}

DetectionReport Segugio::classify(const graph::MachineDomainGraph& graph,
                                  const dns::DomainActivityIndex& activity,
                                  const dns::PassiveDnsDb& pdns) const {
  if (mmap_backing_forced()) {
    return classify_via_mmap(graph, activity, pdns);
  }
  return classify(graph.view(), activity, pdns);
}

DetectionReport Segugio::classify(const graph::MachineDomainGraph& graph,
                                  const dns::ShardedActivityIndex& activity,
                                  const dns::ShardedPassiveDnsDb& pdns) const {
  if (mmap_backing_forced()) {
    return classify_via_mmap(graph, activity, pdns);
  }
  return classify(graph.view(), activity, pdns);
}

DetectionReport Segugio::classify(const graph::GraphView& graph,
                                  const dns::DomainActivityIndex& activity,
                                  const dns::PassiveDnsDb& pdns) const {
  util::require(is_trained(), "Segugio::classify: classifier not trained");
  obs::Span span("classify/features");
  const features::FeatureExtractor extractor(graph, activity, pdns, config_.features);
  timings_.classify_feature_seconds = span.close();
  return classify_impl(graph, extractor);
}

DetectionReport Segugio::classify(const graph::GraphView& graph,
                                  const dns::ShardedActivityIndex& activity,
                                  const dns::ShardedPassiveDnsDb& pdns) const {
  util::require(is_trained(), "Segugio::classify: classifier not trained");
  obs::Span span("classify/features");
  const features::FeatureExtractor extractor(graph, activity, pdns, config_.features);
  timings_.classify_feature_seconds = span.close();
  return classify_impl(graph, extractor);
}

DetectionReport Segugio::classify_impl(const graph::GraphView& graph,
                                       const features::FeatureExtractor& extractor) const {
  obs::Span features_span("classify/features");
  auto unknown = features::build_unknown_set(graph, extractor);
  timings_.classify_feature_seconds += features_span.close();

  obs::Span score_span("classify/score");
  DetectionReport report;
  report.scores.resize(unknown.domain_ids.size());
  // Rows are scored in parallel but each writes only its own slot, so the
  // report is identical for every thread count.
  util::parallel_for(unknown.domain_ids.size(), [&](std::size_t row) {
    const auto selected = apply_subset(unknown.dataset.row(row));
    const double malware_score = forest_ != nullptr ? forest_->predict_proba(selected)
                                                    : logistic_->predict_proba(selected);
    const auto d = unknown.domain_ids[row];
    report.scores[row] = {std::string(graph.domain_name(d)), d, malware_score};
  });
  timings_.classify_score_seconds = score_span.close();
  obs::Registry::instance().counter("seg_classify_rows_total").add(unknown.domain_ids.size());

  // Capture machine attribution so the report outlives the graph: CSR
  // offsets by serial prefix sum, refs filled in parallel (disjoint
  // ranges), names copied once per machine.
  report.machine_names.reserve(graph.machine_count());
  for (graph::MachineId m = 0; m < graph.machine_count(); ++m) {
    report.machine_names.emplace_back(graph.machine_name(m));
  }
  report.machine_offsets.assign(report.scores.size() + 1, 0);
  for (std::size_t i = 0; i < report.scores.size(); ++i) {
    report.machine_offsets[i + 1] =
        report.machine_offsets[i] +
        static_cast<std::uint32_t>(graph.machines_of(report.scores[i].id).size());
  }
  report.machine_refs.resize(report.machine_offsets.back());
  util::parallel_for(report.scores.size(), [&](std::size_t i) {
    std::uint32_t k = report.machine_offsets[i];
    for (const auto m : graph.machines_of(report.scores[i].id)) {
      report.machine_refs[k++] = m;
    }
  });
  return report;
}

double Segugio::pick_threshold(const std::vector<int>& labels,
                               const std::vector<double>& scores, double max_fpr) {
  const auto roc = ml::RocCurve::compute(labels, scores);
  return roc.threshold_for_fpr(max_fpr);
}

std::vector<double> Segugio::feature_importance() const {
  if (forest_ == nullptr || !forest_->is_trained()) {
    return {};
  }
  return forest_->feature_importance();
}

void Segugio::save(std::ostream& out) const {
  util::require(is_trained(), "Segugio::save: classifier not trained");
  util::write_format_header(out, "segugio-model", kModelFormatVersion);
  out << "segugio " << kModelFormatVersion << "\n";
  out << "activity_window " << config_.features.activity_window_days << "\n";
  out << "pdns_window " << config_.features.pdns_window_days << "\n";
  out << "pruning " << config_.pruning.inactive_machine_max_degree << " ";
  out.precision(17);
  out << config_.pruning.proxy_degree_percentile << " "
      << config_.pruning.min_domain_machines << " "
      << config_.pruning.popular_e2ld_fraction << "\n";
  out << "subset " << config_.feature_subset.size();
  for (const auto index : config_.feature_subset) {
    out << " " << index;
  }
  out << "\n";
  out << "prober " << (config_.prober_filter.has_value() ? 1 : 0);
  if (config_.prober_filter.has_value()) {
    out << " " << config_.prober_filter->min_blacklisted_domains << " "
        << config_.prober_filter->min_blacklisted_ratio;
  }
  out << "\n";
  if (forest_ != nullptr) {
    out << "classifier forest\n";
    forest_->save(out);
  } else {
    out << "classifier logistic\n";
    logistic_->save(out);
  }
}

Segugio Segugio::load(std::istream& in) {
  // Versioned streams carry the segf1 prefix; legacy `segugio 1` streams
  // rewind and parse from the body header directly.
  const int format_version = util::read_format_header(in, "segugio-model", kModelFormatVersion);
  std::string tag;
  int version = 0;
  in >> tag >> version;
  util::require_data(static_cast<bool>(in) && tag == "segugio" && version == format_version,
                     "Segugio::load: malformed header");
  SegugioConfig config;
  in >> tag >> config.features.activity_window_days;
  util::require_data(static_cast<bool>(in) && tag == "activity_window",
                     "Segugio::load: malformed activity window");
  in >> tag >> config.features.pdns_window_days;
  util::require_data(static_cast<bool>(in) && tag == "pdns_window",
                     "Segugio::load: malformed pDNS window");
  in >> tag >> config.pruning.inactive_machine_max_degree >>
      config.pruning.proxy_degree_percentile >> config.pruning.min_domain_machines >>
      config.pruning.popular_e2ld_fraction;
  util::require_data(static_cast<bool>(in) && tag == "pruning",
                     "Segugio::load: malformed pruning block");
  std::size_t subset_size = 0;
  in >> tag >> subset_size;
  util::require_data(static_cast<bool>(in) && tag == "subset",
                     "Segugio::load: malformed feature subset");
  config.feature_subset.resize(subset_size);
  for (auto& index : config.feature_subset) {
    in >> index;
  }
  int prober_enabled = 0;
  in >> tag >> prober_enabled;
  util::require_data(static_cast<bool>(in) && tag == "prober",
                     "Segugio::load: malformed prober block");
  if (prober_enabled != 0) {
    graph::ProberFilterConfig filter;
    in >> filter.min_blacklisted_domains >> filter.min_blacklisted_ratio;
    config.prober_filter = filter;
  }
  std::string kind;
  in >> tag >> kind;
  util::require_data(static_cast<bool>(in) && tag == "classifier",
                     "Segugio::load: malformed classifier block");
  Segugio segugio(std::move(config));
  if (kind == "forest") {
    segugio.config_.classifier = ClassifierKind::kRandomForest;
    segugio.forest_ = std::make_unique<ml::RandomForest>(ml::RandomForest::load(in));
  } else if (kind == "logistic") {
    segugio.config_.classifier = ClassifierKind::kLogisticRegression;
    segugio.logistic_ =
        std::make_unique<ml::LogisticRegression>(ml::LogisticRegression::load(in));
  } else {
    throw util::ParseError("Segugio::load: unknown classifier kind '" + kind + "'");
  }
  return segugio;
}

}  // namespace seg::core
