#include "core/fp_analysis.h"

#include <algorithm>
#include <unordered_map>

#include "features/feature_config.h"

namespace seg::core {

FpBreakdown analyze_false_positives(
    const EvaluationResult& result, double threshold,
    const std::function<bool(std::string_view)>& sandbox_contacted,
    std::size_t max_examples) {
  // Collect benign-labeled test domains that scored at or above threshold.
  std::vector<const TestOutcome*> fps;
  for (const auto& outcome : result.outcomes) {
    if (outcome.label == 0 && outcome.score >= threshold) {
      fps.push_back(&outcome);
    }
  }
  std::sort(fps.begin(), fps.end(), [](const TestOutcome* a, const TestOutcome* b) {
    return a->score > b->score;
  });

  FpBreakdown breakdown;
  breakdown.fqdn_count = fps.size();
  if (fps.empty()) {
    return breakdown;
  }

  std::unordered_map<std::string, std::size_t> per_e2ld;
  std::size_t high_infected = 0;
  std::size_t past_abused = 0;
  std::size_t short_activity = 0;
  std::size_t in_sandbox = 0;
  for (const auto* fp : fps) {
    ++per_e2ld[fp->e2ld];
    if (fp->features[features::kInfectedFraction] > 0.9) {
      ++high_infected;
    }
    if (fp->features[features::kIpMalwareFraction] > 0.0 ||
        fp->features[features::kPrefixMalwareFraction] > 0.0) {
      ++past_abused;
    }
    if (fp->features[features::kFqdnActiveDays] <= 3.0) {
      ++short_activity;
    }
    if (sandbox_contacted && sandbox_contacted(fp->name)) {
      ++in_sandbox;
    }
    if (breakdown.examples.size() < max_examples) {
      breakdown.examples.push_back(fp->name);
    }
  }
  breakdown.e2ld_count = per_e2ld.size();

  std::vector<std::size_t> counts;
  counts.reserve(per_e2ld.size());
  for (const auto& [e2ld, count] : per_e2ld) {
    counts.push_back(count);
  }
  std::sort(counts.rbegin(), counts.rend());
  for (std::size_t i = 0; i < counts.size() && i < 10; ++i) {
    breakdown.top10_e2ld_fqdns += counts[i];
  }

  const auto n = static_cast<double>(fps.size());
  breakdown.top10_share = static_cast<double>(breakdown.top10_e2ld_fqdns) / n;
  breakdown.frac_high_infected = static_cast<double>(high_infected) / n;
  breakdown.frac_past_abused_ips = static_cast<double>(past_abused) / n;
  breakdown.frac_short_activity = static_cast<double>(short_activity) / n;
  breakdown.frac_sandbox_contacted = static_cast<double>(in_sandbox) / n;
  return breakdown;
}

}  // namespace seg::core
