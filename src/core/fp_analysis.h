// False-positive analysis (Section IV-D, Table III).
//
// Given an evaluation result and an operating threshold, breaks the benign
// test domains that scored above the threshold down the way the paper does:
// distinct FQDs and e2LDs, the share of the top-10 e2LDs, and per-feature
// contributions (>90% infected querying machines, previously abused IP
// space, active for <= 3 days), plus how many FPs a sandbox trace database
// confirms as actually malware-contacted.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "core/experiment.h"

namespace seg::core {

struct FpBreakdown {
  std::size_t fqdn_count = 0;            ///< distinct false-positive FQDs
  std::size_t e2ld_count = 0;            ///< distinct e2LDs among them
  std::size_t top10_e2ld_fqdns = 0;      ///< FQDs under the 10 biggest e2LDs
  double top10_share = 0.0;              ///< top10_e2ld_fqdns / fqdn_count

  double frac_high_infected = 0.0;       ///< > 90% infected querying machines
  double frac_past_abused_ips = 0.0;     ///< resolved to previously abused IPs
  double frac_short_activity = 0.0;      ///< active <= 3 days
  double frac_sandbox_contacted = 0.0;   ///< queried by sandboxed malware

  /// Example FP names (most suspicious first), like Figure 9.
  std::vector<std::string> examples;
};

/// Analyzes FPs at `threshold`. `sandbox_contacted` answers "was this
/// domain ever contacted by sandboxed malware" (pass {} to skip that row).
FpBreakdown analyze_false_positives(
    const EvaluationResult& result, double threshold,
    const std::function<bool(std::string_view)>& sandbox_contacted = {},
    std::size_t max_examples = 12);

}  // namespace seg::core
