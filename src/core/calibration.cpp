#include "core/calibration.h"

#include "ml/metrics.h"
#include "util/require.h"

namespace seg::core {

namespace {

CalibrationResult calibrate_with_extractor(const Segugio& segugio,
                                           const graph::MachineDomainGraph& graph,
                                           const features::FeatureExtractor& extractor,
                                           double max_fpr) {
  std::vector<int> labels;
  std::vector<double> scores;
  for (graph::DomainId d = 0; d < graph.domain_count(); ++d) {
    const auto label = graph.domain_label(d);
    if (label == graph::Label::kUnknown) {
      continue;
    }
    labels.push_back(label == graph::Label::kMalware ? 1 : 0);
    scores.push_back(segugio.score(extractor.extract_hiding_label(d)));
  }
  const auto roc = ml::RocCurve::compute(labels, scores);

  CalibrationResult result;
  result.threshold = roc.threshold_for_fpr(max_fpr);
  result.malware_domains = roc.positives();
  result.benign_domains = roc.negatives();
  const auto confusion = ml::confusion_at(labels, scores, result.threshold);
  result.achieved_tpr = confusion.tpr();
  result.achieved_fpr = confusion.fpr();
  return result;
}

}  // namespace

CalibrationResult calibrate_threshold(const Segugio& segugio,
                                      const graph::MachineDomainGraph& graph,
                                      const dns::DomainActivityIndex& activity,
                                      const dns::PassiveDnsDb& pdns, double max_fpr) {
  util::require(segugio.is_trained(), "calibrate_threshold: detector not trained");
  util::require(max_fpr > 0.0 && max_fpr <= 1.0,
                "calibrate_threshold: max_fpr must be in (0, 1]");
  const features::FeatureExtractor extractor(graph, activity, pdns,
                                             segugio.config().features);
  return calibrate_with_extractor(segugio, graph, extractor, max_fpr);
}

CalibrationResult calibrate_threshold(const Segugio& segugio,
                                      const graph::MachineDomainGraph& graph,
                                      const dns::ShardedActivityIndex& activity,
                                      const dns::ShardedPassiveDnsDb& pdns, double max_fpr) {
  util::require(segugio.is_trained(), "calibrate_threshold: detector not trained");
  util::require(max_fpr > 0.0 && max_fpr <= 1.0,
                "calibrate_threshold: max_fpr must be in (0, 1]");
  const features::FeatureExtractor extractor(graph, activity, pdns,
                                             segugio.config().features);
  return calibrate_with_extractor(segugio, graph, extractor, max_fpr);
}

}  // namespace seg::core
