#include "core/pipeline.h"

#include <exception>
#include <istream>
#include <ostream>
#include <thread>

#include "util/obs/metrics.h"
#include "util/obs/trace.h"
#include "util/serialize.h"

namespace seg::core {

namespace {
constexpr int kSessionFormatVersion = 1;
}

Pipeline::Pipeline(const dns::PublicSuffixList& psl, SegugioConfig config)
    : psl_(&psl), detector_(std::move(config)) {}

Pipeline::Pipeline(const dns::PublicSuffixList& psl, const dns::DomainActivityIndex& activity,
                   const dns::PassiveDnsDb& pdns, SegugioConfig config)
    : Pipeline(psl, std::move(config)) {
  absorb_history(activity, pdns);
}

void Pipeline::absorb_history(const dns::DomainActivityIndex& activity,
                              const dns::PassiveDnsDb& pdns) {
  activity_.absorb(activity);
  pdns_.absorb(pdns);
}

PreparedDay Pipeline::prepare_one_day(const dns::DayTrace& trace,
                                      const graph::NameSet& cc_blacklist,
                                      const graph::NameSet& e2ld_whitelist) {
  obs::Span span("pipeline/ingest_day");
  PreparedDay day;
  auto prepared = detail::prepare_day(trace, *psl_, cc_blacklist, e2ld_whitelist,
                                      detector_.config().prepare_options(), &cache_, &day.carry);
  day.graph = std::move(prepared.graph);
  day.prune_stats = prepared.prune_stats;
  day.timings = prepared.timings;
  day.day = day.graph.day();

  ++stats_.days_ingested;
  stats_.ingest_seconds.push_back(span.close());
  stats_.reuse_ratios.push_back(day.carry.reuse_ratio());
  stats_.cached_names = day.carry.cached_names;
  obs::Registry::instance().counter("seg_pipeline_days_ingested_total").add(1);
  return day;
}

PreparedDay Pipeline::ingest_day(const dns::DayTrace& trace, const graph::NameSet& cc_blacklist,
                                 const graph::NameSet& e2ld_whitelist) {
  if (trace.records.empty()) {
    // An empty day still yields an (empty) prepared graph; the stream path
    // below would never fire its day callback.
    return prepare_one_day(trace, cc_blacklist, e2ld_whitelist);
  }
  dns::DayTraceSource source(trace);
  PreparedDay result;
  IngestOptions options;
  options.use_queue = false;  // already in memory: nothing to overlap with
  ingest_stream(
      source, [&cc_blacklist](dns::Day) -> const graph::NameSet& { return cc_blacklist; },
      e2ld_whitelist, [&result](PreparedDay&& day) { result = std::move(day); }, options);
  return result;
}

IngestStats Pipeline::ingest_stream(dns::TraceSource& source,
                                    const BlacklistProvider& cc_blacklist,
                                    const graph::NameSet& e2ld_whitelist,
                                    const DayCallback& on_day, const IngestOptions& options) {
  SEG_SPAN("pipeline/ingest_stream");
  IngestStats stats;
  dns::DayTrace current;
  bool open = false;

  const auto flush_day = [&] {
    const dns::Day day = current.day;
    PreparedDay prepared = prepare_one_day(current, cc_blacklist(day), e2ld_whitelist);
    current = dns::DayTrace{};
    open = false;
    ++stats.days;
    if (on_day) {
      on_day(std::move(prepared));
    }
  };
  const auto deliver = [&](dns::QueryRecord&& record) {
    ++stats.records;
    if (open && record.day != current.day) {
      util::require_data(record.day > current.day,
                         "ingest_stream: day went backwards (" + std::to_string(record.day) +
                             " after " + std::to_string(current.day) + ")");
      flush_day();
    }
    if (!open) {
      current.day = record.day;
      open = true;
    }
    current.records.push_back(std::move(record));
  };

  if (!options.use_queue) {
    dns::QueryRecord record;
    while (source.next(record)) {
      deliver(std::move(record));
    }
    if (open) {
      flush_day();
    }
    stats.wire_skipped = source.skipped();
    return stats;
  }

  using Batch = std::vector<dns::QueryRecord>;
  util::IngestQueueOptions queue_options;
  queue_options.capacity = options.queue_capacity;
  queue_options.policy = options.policy;
  queue_options.metrics_prefix = "seg_ingest_queue";
  util::IngestQueue<Batch> queue(queue_options);

  const std::size_t batch_records = options.batch_records == 0 ? 1 : options.batch_records;
  std::exception_ptr producer_error;
  std::thread producer([&] {
    try {
      Batch batch;
      batch.reserve(batch_records);
      dns::QueryRecord record;
      while (source.next(record)) {
        batch.push_back(std::move(record));
        if (batch.size() >= batch_records) {
          if (!queue.push(std::move(batch)) &&
              options.policy == util::BackpressurePolicy::kBlock) {
            break;  // consumer cancelled; stop parsing
          }
          batch = Batch{};
          batch.reserve(batch_records);
        }
      }
      if (!batch.empty()) {
        queue.push(std::move(batch));
      }
    } catch (...) {
      producer_error = std::current_exception();
    }
    queue.close();
  });

  try {
    while (auto batch = queue.pop()) {
      for (auto& record : *batch) {
        deliver(std::move(record));
      }
    }
    if (open) {
      flush_day();
    }
  } catch (...) {
    queue.cancel();  // wake any blocked push before joining
    producer.join();
    throw;
  }
  producer.join();
  if (producer_error) {
    std::rethrow_exception(producer_error);
  }
  stats.queue = queue.stats();
  stats.wire_skipped = source.skipped();
  return stats;
}

void Pipeline::save_session(std::ostream& out) const {
  util::write_format_header(out, "pipeline-session", kSessionFormatVersion);
  cache_.save(out);
}

void Pipeline::load_session(std::istream& in) {
  const int version = util::read_format_header(in, "pipeline-session",
                                               kSessionFormatVersion,
                                               /*legacy_version=*/0);
  util::require_data(version >= 1,
                     "Pipeline::load_session: stream has no 'segf1 "
                     "pipeline-session' header (no legacy session format exists)");
  cache_ = graph::NameCache::load(in);
  stats_.cached_names = cache_.size();
}

void Pipeline::train(const PreparedDay& day) {
  SEG_SPAN("pipeline/train");
  detector_.train(day.graph, activity_, pdns_);
}

DetectionReport Pipeline::classify(const PreparedDay& day) const {
  SEG_SPAN("pipeline/classify");
  return detector_.classify(day.graph, activity_, pdns_);
}

}  // namespace seg::core
