#include "core/pipeline.h"

#include <istream>
#include <ostream>

#include "util/obs/metrics.h"
#include "util/obs/trace.h"
#include "util/serialize.h"

namespace seg::core {

namespace {
constexpr int kSessionFormatVersion = 1;
}

Pipeline::Pipeline(const dns::PublicSuffixList& psl, SegugioConfig config)
    : psl_(&psl), detector_(std::move(config)) {}

Pipeline::Pipeline(const dns::PublicSuffixList& psl, const dns::DomainActivityIndex& activity,
                   const dns::PassiveDnsDb& pdns, SegugioConfig config)
    : Pipeline(psl, std::move(config)) {
  absorb_history(activity, pdns);
}

void Pipeline::absorb_history(const dns::DomainActivityIndex& activity,
                              const dns::PassiveDnsDb& pdns) {
  activity_.absorb(activity);
  pdns_.absorb(pdns);
}

PreparedDay Pipeline::ingest_day(const dns::DayTrace& trace, const graph::NameSet& cc_blacklist,
                                 const graph::NameSet& e2ld_whitelist) {
  obs::Span span("pipeline/ingest_day");
  PreparedDay day;
  auto prepared = detail::prepare_day(trace, *psl_, cc_blacklist, e2ld_whitelist,
                                      detector_.config().prepare_options(), &cache_, &day.carry);
  day.graph = std::move(prepared.graph);
  day.prune_stats = prepared.prune_stats;
  day.timings = prepared.timings;
  day.day = day.graph.day();

  ++stats_.days_ingested;
  stats_.ingest_seconds.push_back(span.close());
  stats_.reuse_ratios.push_back(day.carry.reuse_ratio());
  stats_.cached_names = day.carry.cached_names;
  obs::Registry::instance().counter("seg_pipeline_days_ingested_total").add(1);
  return day;
}

void Pipeline::save_session(std::ostream& out) const {
  util::write_format_header(out, "pipeline-session", kSessionFormatVersion);
  cache_.save(out);
}

void Pipeline::load_session(std::istream& in) {
  const int version = util::read_format_header(in, "pipeline-session",
                                               kSessionFormatVersion,
                                               /*legacy_version=*/0);
  util::require_data(version >= 1,
                     "Pipeline::load_session: stream has no 'segf1 "
                     "pipeline-session' header (no legacy session format exists)");
  cache_ = graph::NameCache::load(in);
  stats_.cached_names = cache_.size();
}

void Pipeline::train(const PreparedDay& day) {
  SEG_SPAN("pipeline/train");
  detector_.train(day.graph, activity_, pdns_);
}

DetectionReport Pipeline::classify(const PreparedDay& day) const {
  SEG_SPAN("pipeline/classify");
  return detector_.classify(day.graph, activity_, pdns_);
}

}  // namespace seg::core
