#include "core/pipeline.h"

#include <exception>
#include <istream>
#include <ostream>
#include <thread>
#include <utility>

#include "core/calibration.h"
#include "features/extractor.h"
#include "features/feature_config.h"
#include "util/obs/metrics.h"
#include "util/obs/process.h"
#include "util/obs/trace.h"
#include "util/serialize.h"

namespace seg::core {

namespace {
constexpr int kSessionFormatVersion = 1;
}

Pipeline::Pipeline(const dns::PublicSuffixList& psl, SegugioConfig config)
    : psl_(&psl), detector_(std::move(config)) {}

Pipeline::Pipeline(const dns::PublicSuffixList& psl, const dns::DomainActivityIndex& activity,
                   const dns::PassiveDnsDb& pdns, SegugioConfig config)
    : Pipeline(psl, std::move(config)) {
  absorb_history(activity, pdns);
}

void Pipeline::absorb_history(const dns::DomainActivityIndex& activity,
                              const dns::PassiveDnsDb& pdns) {
  activity_.absorb(activity);
  pdns_.absorb(pdns);
}

PreparedDay Pipeline::prepare_one_day(const dns::DayTrace& trace,
                                      const graph::NameSet& cc_blacklist,
                                      const graph::NameSet& e2ld_whitelist) {
  obs::Span span("pipeline/ingest_day");
  PreparedDay day;
  auto prepared = detail::prepare_day(trace, *psl_, cc_blacklist, e2ld_whitelist,
                                      detector_.config().prepare_options(), &cache_, &day.carry);
  day.graph = std::move(prepared.graph);
  day.prune_stats = prepared.prune_stats;
  day.timings = prepared.timings;
  day.day = day.graph.day();

  ++stats_.days_ingested;
  stats_.ingest_seconds.push_back(span.close());
  stats_.reuse_ratios.push_back(day.carry.reuse_ratio());
  stats_.cached_names = day.carry.cached_names;
  obs::Registry::instance().counter("seg_pipeline_days_ingested_total").add(1);
  if (journal_enabled()) {
    journal_open_day(day, trace.records.size(), stats_.ingest_seconds.back());
  }
  return day;
}

PreparedDay Pipeline::ingest_day(const dns::DayTrace& trace, const graph::NameSet& cc_blacklist,
                                 const graph::NameSet& e2ld_whitelist) {
  if (trace.records.empty()) {
    // An empty day still yields an (empty) prepared graph; the stream path
    // below would never fire its day callback.
    return prepare_one_day(trace, cc_blacklist, e2ld_whitelist);
  }
  dns::DayTraceSource source(trace);
  PreparedDay result;
  IngestOptions options;
  options.use_queue = false;  // already in memory: nothing to overlap with
  ingest_stream(
      source, [&cc_blacklist](dns::Day) -> const graph::NameSet& { return cc_blacklist; },
      e2ld_whitelist, [&result](PreparedDay&& day) { result = std::move(day); }, options);
  return result;
}

IngestStats Pipeline::ingest_stream(dns::TraceSource& source,
                                    const BlacklistProvider& cc_blacklist,
                                    const graph::NameSet& e2ld_whitelist,
                                    const DayCallback& on_day, const IngestOptions& options) {
  SEG_SPAN("pipeline/ingest_stream");
  IngestStats stats;
  dns::DayTrace current;
  bool open = false;

  const auto flush_day = [&] {
    const dns::Day day = current.day;
    PreparedDay prepared = prepare_one_day(current, cc_blacklist(day), e2ld_whitelist);
    current = dns::DayTrace{};
    open = false;
    ++stats.days;
    // Day watermark: the newest *prepared* day. The health sampler reports
    // the gap to seg_ingest_current_day as lag.
    obs::Registry::instance().gauge("seg_ingest_day_watermark").set(static_cast<double>(day));
    if (on_day) {
      on_day(std::move(prepared));
    }
  };
  const auto deliver = [&](dns::QueryRecord&& record) {
    ++stats.records;
    if (open && record.day != current.day) {
      util::require_data(record.day > current.day,
                         "ingest_stream: day went backwards (" + std::to_string(record.day) +
                             " after " + std::to_string(current.day) + ")");
      flush_day();
    }
    if (!open) {
      current.day = record.day;
      open = true;
      obs::Registry::instance().gauge("seg_ingest_current_day").set(
          static_cast<double>(record.day));
    }
    current.records.push_back(std::move(record));
  };

  if (!options.use_queue) {
    dns::QueryRecord record;
    while (source.next(record)) {
      deliver(std::move(record));
    }
    if (open) {
      flush_day();
    }
    stats.wire_skipped = source.skipped();
    return stats;
  }

  using Batch = std::vector<dns::QueryRecord>;
  util::IngestQueueOptions queue_options;
  queue_options.capacity = options.queue_capacity;
  queue_options.policy = options.policy;
  queue_options.metrics_prefix = "seg_ingest_queue";
  queue_options.sampled_admission = options.sampled_admission;
  util::IngestQueue<Batch> queue(queue_options);

  const std::size_t batch_records = options.batch_records == 0 ? 1 : options.batch_records;
  std::exception_ptr producer_error;
  std::thread producer([&] {
    try {
      Batch batch;
      batch.reserve(batch_records);
      dns::QueryRecord record;
      while (source.next(record)) {
        batch.push_back(std::move(record));
        if (batch.size() >= batch_records) {
          if (!queue.push(std::move(batch)) &&
              options.policy == util::BackpressurePolicy::kBlock) {
            break;  // consumer cancelled; stop parsing
          }
          batch = Batch{};
          batch.reserve(batch_records);
        }
      }
      if (!batch.empty()) {
        queue.push(std::move(batch));
      }
    } catch (...) {
      producer_error = std::current_exception();
    }
    queue.close();
  });

  try {
    while (auto batch = queue.pop()) {
      for (auto& record : *batch) {
        deliver(std::move(record));
      }
    }
    if (open) {
      flush_day();
    }
  } catch (...) {
    queue.cancel();  // wake any blocked push before joining
    producer.join();
    throw;
  }
  producer.join();
  if (producer_error) {
    std::rethrow_exception(producer_error);
  }
  stats.queue = queue.stats();
  stats.wire_skipped = source.skipped();
  return stats;
}

void Pipeline::save_session(std::ostream& out) const {
  util::write_format_header(out, "pipeline-session", kSessionFormatVersion);
  cache_.save(out);
}

void Pipeline::load_session(std::istream& in) {
  const int version = util::read_format_header(in, "pipeline-session",
                                               kSessionFormatVersion,
                                               /*legacy_version=*/0);
  util::require_data(version >= 1,
                     "Pipeline::load_session: stream has no 'segf1 "
                     "pipeline-session' header (no legacy session format exists)");
  cache_ = graph::NameCache::load(in);
  stats_.cached_names = cache_.size();
}

void Pipeline::train(const PreparedDay& day) {
  SEG_SPAN("pipeline/train");
  detector_.train(day.graph, activity_, pdns_);
  if (journal_enabled() && journal_pending_ && journal_pending_->day == day.day &&
      journal_options_.calibrate &&
      !journal_pending_->find_gauge("calibration_threshold")) {
    const std::uint64_t* malware = journal_pending_->find_counter("malware_domains");
    const std::uint64_t* benign = journal_pending_->find_counter("benign_domains");
    if (malware && benign && *malware > 0 && *benign > 0) {
      const CalibrationResult calibration = calibrate_threshold(
          detector_, day.graph, activity_, pdns_, journal_options_.calibration_max_fpr);
      journal_pending_->add_gauge("calibration_threshold", calibration.threshold);
      journal_pending_->add_gauge("calibration_tpr", calibration.achieved_tpr);
      journal_pending_->add_gauge("calibration_fpr", calibration.achieved_fpr);
      obs::Registry::instance()
          .gauge("seg_pipeline_calibration_threshold")
          .set(calibration.threshold);
    }
  }
}

DetectionReport Pipeline::classify(const PreparedDay& day) const {
  SEG_SPAN("pipeline/classify");
  DetectionReport report = detector_.classify(day.graph, activity_, pdns_);
  if (journal_enabled()) {
    journal_annotate_classify(day, report);
  }
  return report;
}

void Pipeline::set_journal(std::ostream* out, JournalOptions options) {
  flush_journal();
  journal_options_ = options;
  journal_writer_.reset();
  journal_pending_.reset();
  journal_baseline_.reset();
  if (out != nullptr) {
    journal_writer_ = std::make_unique<obs::JournalWriter>(*out);
  }
}

void Pipeline::flush_journal() {
  if (!journal_writer_ || !journal_pending_) {
    return;
  }
  // Pin the drift baseline: the requested day, or the first entry that
  // carries a score histogram (i.e. the first classified day).
  if (!journal_baseline_ &&
      (journal_options_.baseline_day >= 0
           ? journal_pending_->day == journal_options_.baseline_day
           : journal_pending_->find_histogram("scores") != nullptr)) {
    journal_baseline_ = *journal_pending_;
  }
  obs::Span span("obs/journal_append");
  journal_writer_->append(*journal_pending_);
  journal_pending_.reset();
  obs::Registry::instance().counter("seg_journal_entries_total").add(1);
}

void Pipeline::journal_open_day(const PreparedDay& day, std::size_t records,
                                double ingest_seconds) {
  flush_journal();  // the rollover write for the previous day
  obs::JournalEntry entry;
  entry.day = day.day;
  entry.add_counter("records", records);
  entry.add_counter("machines", day.graph.machine_count());
  entry.add_counter("domains", day.graph.domain_count());
  entry.add_counter("edges", day.graph.edge_count());
  std::size_t unknown = 0;
  std::size_t malware = 0;
  std::size_t benign = 0;
  for (std::size_t d = 0; d < day.graph.domain_count(); ++d) {
    switch (day.graph.domain_label(static_cast<graph::DomainId>(d))) {
      case graph::Label::kUnknown: ++unknown; break;
      case graph::Label::kBenign: ++benign; break;
      case graph::Label::kMalware: ++malware; break;
    }
  }
  entry.add_counter("unknown_domains", unknown);
  entry.add_counter("malware_domains", malware);
  entry.add_counter("benign_domains", benign);
  const graph::PruneStats& prune = day.prune_stats;
  entry.add_counter("prune_machines_before", prune.machines_before);
  entry.add_counter("prune_machines_after", prune.machines_after);
  entry.add_counter("prune_domains_before", prune.domains_before);
  entry.add_counter("prune_domains_after", prune.domains_after);
  entry.add_counter("prune_edges_before", prune.edges_before);
  entry.add_counter("prune_edges_after", prune.edges_after);
  entry.add_counter("prune_machines_removed_r1", prune.machines_removed_r1);
  entry.add_counter("prune_machines_removed_r2", prune.machines_removed_r2);
  entry.add_counter("prune_domains_removed_r3", prune.domains_removed_r3);
  entry.add_counter("prune_domains_removed_r4", prune.domains_removed_r4);
  entry.add_counter("carry_distinct_domains", day.carry.distinct_domains);
  entry.add_counter("carry_new_names", day.carry.new_names);
  entry.add_counter("carry_cached_names", day.carry.cached_names);
  entry.add_gauge("carry_reuse_ratio", day.carry.reuse_ratio());
  if (journal_options_.include_runtime) {
    entry.add_runtime("ingest_seconds", ingest_seconds);
    const obs::ProcessSample process = obs::sample_process();
    entry.add_runtime("rss_now_kb", static_cast<double>(process.rss_now_kb));
    entry.add_runtime("rss_peak_kb", static_cast<double>(process.rss_peak_kb));
    obs::Registry& registry = obs::Registry::instance();
    entry.add_runtime(
        "queue_pushed_records",
        static_cast<double>(registry.counter("seg_ingest_queue_pushed_records_total").value()));
    entry.add_runtime(
        "queue_dropped_records",
        static_cast<double>(registry.counter("seg_ingest_queue_dropped_records_total").value()));
  }
  journal_pending_ = std::move(entry);
}

void Pipeline::journal_annotate_classify(const PreparedDay& day,
                                         const DetectionReport& report) const {
  if (!journal_pending_ || journal_pending_->day != day.day ||
      journal_pending_->find_histogram("scores") != nullptr) {
    return;  // not this day's entry, or already annotated
  }
  obs::Span span("obs/journal_annotate");

  std::vector<double> bounds;
  const std::size_t bins = journal_options_.score_bins == 0 ? 1 : journal_options_.score_bins;
  bounds.reserve(bins);
  for (std::size_t i = 1; i <= bins; ++i) {
    bounds.push_back(static_cast<double>(i) / static_cast<double>(bins));
  }
  obs::JournalHistogram scores = obs::JournalHistogram::with_bounds(std::move(bounds));
  for (const DomainScore& scored : report.scores) {
    scores.observe(scored.score);
  }
  journal_pending_->add_histogram("scores", std::move(scores));

  // Per-feature summary histograms over the day's unknown domains, walked
  // serially in domain-id order: deterministic for every SEG_THREADS (the
  // sharded extractor's batch precompute is order-independent, and the
  // per-domain extract() calls touch no shared state).
  std::vector<obs::JournalHistogram> feature_hists;
  feature_hists.reserve(features::kNumFeatures);
  for (std::size_t i = 0; i < features::kNumFeatures; ++i) {
    feature_hists.push_back(
        obs::JournalHistogram::with_bounds(features::feature_histogram_bounds(i)));
  }
  const features::FeatureExtractor extractor(day.graph, activity_, pdns_,
                                             config().features);
  for (std::size_t d = 0; d < day.graph.domain_count(); ++d) {
    const auto id = static_cast<graph::DomainId>(d);
    if (day.graph.domain_label(id) != graph::Label::kUnknown) {
      continue;
    }
    const features::FeatureVector vector = extractor.extract(id);
    for (std::size_t i = 0; i < features::kNumFeatures; ++i) {
      feature_hists[i].observe(vector[i]);
    }
  }
  const std::vector<std::string>& names = features::feature_names();
  for (std::size_t i = 0; i < features::kNumFeatures; ++i) {
    journal_pending_->add_histogram(names[i], std::move(feature_hists[i]));
  }

  if (journal_baseline_) {
    const obs::DriftResult drift =
        obs::compute_drift(*journal_baseline_, *journal_pending_, journal_options_.drift);
    for (const auto& [name, value] : drift.gauges) {
      journal_pending_->add_gauge("drift_" + name, value);
    }
    for (const obs::JournalAlert& alert : drift.alerts) {
      journal_pending_->alerts.push_back(alert);
    }
    obs::export_drift(drift);
  }
}

}  // namespace seg::core
