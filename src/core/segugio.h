// The Segugio detector: graph preparation, training, and classification
// (Figure 2's pipeline).
//
// Typical deployment flow — a multi-day streaming session through
// core::Pipeline (core/pipeline.h), which owns the history stores and
// carries the name dictionary across days:
//
//   core::Pipeline pipeline(psl, config);
//   auto day1 = pipeline.ingest_day(trace_t1, blacklist_t1, whitelist);
//   pipeline.train(day1);
//   auto day2 = pipeline.ingest_day(trace_t2, blacklist_t2, whitelist);
//   auto report = pipeline.classify(day2);
//   for (auto& hit : report.detections_at(threshold)) ...
//
// The lower-level one-shot flow used by the experiments keeps working:
//
//   auto prep = Segugio::prepare_graph(trace, psl, blacklist, whitelist,
//                                      config.prepare_options());
//   Segugio segugio(config);
//   segugio.train(prep.graph, activity, pdns);
#pragma once

#include <iosfwd>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "dns/activity_index.h"
#include "dns/pdns.h"
#include "dns/public_suffix_list.h"
#include "dns/query_log.h"
#include "dns/sharded_store.h"
#include "features/training_set.h"
#include "graph/prober_filter.h"
#include "graph/pruning.h"
#include "graph/sharded_builder.h"
#include "ml/logistic_regression.h"
#include "ml/random_forest.h"

namespace seg::core {

enum class ClassifierKind { kRandomForest, kLogisticRegression };

struct SegugioConfig {
  graph::PruningConfig pruning = scaled_pruning_defaults();
  features::FeatureConfig features;
  ml::RandomForestConfig forest = balanced_forest_defaults();
  ml::LogisticRegressionConfig logistic;
  ClassifierKind classifier = ClassifierKind::kRandomForest;
  features::TrainingSetOptions training;
  /// Feature columns to use (indices into the 11-feature vector); empty
  /// means all. Set via features::feature_indices_excluding(...) for the
  /// Figure 7 ablations.
  std::vector<std::size_t> feature_subset;
  /// When set, prepare_graph removes "probing" clients (machines querying
  /// implausibly many blacklisted domains, Section VI) before pruning.
  std::optional<graph::ProberFilterConfig> prober_filter;

  /// Pruning thresholds adjusted for simulated populations of thousands of
  /// machines: the paper's 99.99th percentile (R2) assumes millions of
  /// machines, so we use 99.9 at this scale. All other rules are as
  /// published.
  static graph::PruningConfig scaled_pruning_defaults() {
    graph::PruningConfig pruning;
    pruning.proxy_degree_percentile = 0.999;
    return pruning;
  }

  /// Known malware domains are orders of magnitude rarer than whitelisted
  /// ones; the stratified bootstrap guarantees every tree trains on both
  /// classes even when only a handful of C&C domains are known.
  static ml::RandomForestConfig balanced_forest_defaults() {
    ml::RandomForestConfig forest;
    forest.stratified_bootstrap = true;
    return forest;
  }

  /// The graph-preparation slice of this config, for prepare_graph().
  struct PrepareOptions prepare_options() const;
};

/// Options for Segugio::prepare_graph (the stages before train/classify).
struct PrepareOptions {
  graph::PruningConfig pruning = SegugioConfig::scaled_pruning_defaults();
  /// When set, "probing" clients (machines querying implausibly many
  /// blacklisted domains, Section VI) are removed before pruning.
  std::optional<graph::ProberFilterConfig> prober_filter;
};

/// Wall-clock breakdown of the last train()/classify() calls (Section IV-G).
/// A view over the obs spans "train/features", "train/fit",
/// "classify/features", "classify/score"; row counts live in the obs
/// registry as seg_train_rows_total / seg_classify_rows_total.
struct PipelineTimings {
  double train_feature_seconds = 0.0;
  double train_fit_seconds = 0.0;
  double classify_feature_seconds = 0.0;
  double classify_score_seconds = 0.0;
};

/// Wall-clock breakdown of one prepare_graph() call: the learning-side
/// stages that precede training (Section IV-G's graph build + pruning).
/// A view over the obs spans "prepare/label", "prepare/prober",
/// "prepare/prune" plus the builder's BuildTimings.
struct PrepareTimings {
  graph::BuildTimings build;     ///< sharded construction breakdown
  double label_seconds = 0.0;    ///< blacklist/whitelist annotation
  double prober_seconds = 0.0;   ///< optional prober filtering
  double prune_seconds = 0.0;    ///< R1-R4 pruning

  double total_seconds() const {
    return build.total_seconds() + label_seconds + prober_seconds + prune_seconds;
  }
};

/// One scored (previously unknown) domain.
struct DomainScore {
  std::string name;
  graph::DomainId id = 0;
  double score = 0.0;
};

/// One confirmed detection with the infected machines that implicate it.
struct Detection {
  DomainScore domain;
  std::vector<std::string> machines;  ///< machines that queried it
};

/// Self-contained classification result: classify() captures the machine
/// attribution of every scored domain at scoring time, so the report can
/// outlive the graph it was produced from (a deployment can archive
/// reports while graphs are rebuilt daily).
struct DetectionReport {
  std::vector<DomainScore> scores;  ///< every unknown domain, scored

  /// Machine attribution, parallel to `scores`: the machines that queried
  /// scores[i] are machine_names[machine_refs[k]] for k in
  /// [machine_offsets[i], machine_offsets[i + 1]).
  std::vector<std::string> machine_names;
  std::vector<std::uint32_t> machine_offsets;
  std::vector<std::uint32_t> machine_refs;

  /// Domains with score >= threshold, most suspicious first, with the
  /// querying machines from the attribution captured at classify() time.
  std::vector<Detection> detections_at(double threshold) const;

  /// Transitional overload for callers still holding the graph; the
  /// attribution captured in the report makes the graph redundant.
  // seg-deprecated
  std::vector<Detection> detections_at(double threshold,
                                       const graph::MachineDomainGraph& graph) const;
};

/// Everything prepare_graph() produces for one day of traffic.
struct PrepareResult {
  graph::MachineDomainGraph graph;  ///< labeled, (filtered,) pruned
  graph::PruneStats prune_stats;    ///< R1-R4 breakdown
  PrepareTimings timings;           ///< per-stage wall clock
};

class Segugio {
 public:
  explicit Segugio(SegugioConfig config = {});

  /// Builds (sharded, thread-parallel, bit-identical to the serial
  /// builder), labels, (optionally) prober-filters, and prunes a behavior
  /// graph from one day of traffic.
  static PrepareResult prepare_graph(const dns::DayTrace& trace,
                                     const dns::PublicSuffixList& psl,
                                     const graph::NameSet& cc_blacklist,
                                     const graph::NameSet& e2ld_whitelist,
                                     const PrepareOptions& options = {});

  /// Trains the behavior-based classifier from the known domains of a
  /// prepared graph (hidden-label protocol of Figure 5).
  void train(const graph::MachineDomainGraph& graph, const dns::DomainActivityIndex& activity,
             const dns::PassiveDnsDb& pdns);

  /// Sharded-store overload: history lookups go through the stores'
  /// parallel query_batch. Top-level calls only (see dns/sharded_store.h).
  void train(const graph::MachineDomainGraph& graph,
             const dns::ShardedActivityIndex& activity, const dns::ShardedPassiveDnsDb& pdns);

  /// GraphView overloads: train from any backing — a heap graph's view()
  /// or an mmap-resident graph (graph::map_graph). Scores and the fitted
  /// model are bit-identical to the heap overloads.
  void train(const graph::GraphView& graph, const dns::DomainActivityIndex& activity,
             const dns::PassiveDnsDb& pdns);
  void train(const graph::GraphView& graph, const dns::ShardedActivityIndex& activity,
             const dns::ShardedPassiveDnsDb& pdns);

  bool is_trained() const;

  /// Scores every unknown domain of a prepared graph and captures the
  /// machine attribution into the report.
  DetectionReport classify(const graph::MachineDomainGraph& graph,
                           const dns::DomainActivityIndex& activity,
                           const dns::PassiveDnsDb& pdns) const;

  /// Sharded-store overload: history lookups go through the stores'
  /// parallel query_batch. Top-level calls only (see dns/sharded_store.h).
  DetectionReport classify(const graph::MachineDomainGraph& graph,
                           const dns::ShardedActivityIndex& activity,
                           const dns::ShardedPassiveDnsDb& pdns) const;

  /// GraphView overloads: classify any backing. Setting SEG_GRAPH_BACKING=mmap
  /// in the environment makes the heap-graph classify overloads reroute
  /// through a packed graphc temp file and one of these (zero-copy view),
  /// which the oocore CI leg uses to assert score bit-identity.
  DetectionReport classify(const graph::GraphView& graph,
                           const dns::DomainActivityIndex& activity,
                           const dns::PassiveDnsDb& pdns) const;
  DetectionReport classify(const graph::GraphView& graph,
                           const dns::ShardedActivityIndex& activity,
                           const dns::ShardedPassiveDnsDb& pdns) const;

  /// Malware score of a single feature vector (full 11 features; the
  /// configured subset is applied internally).
  double score(const features::FeatureVector& features) const;

  /// Picks the smallest detection threshold whose false-positive rate on
  /// (labels, scores) stays within `max_fpr`.
  static double pick_threshold(const std::vector<int>& labels,
                               const std::vector<double>& scores, double max_fpr);

  const SegugioConfig& config() const { return config_; }
  const PipelineTimings& timings() const { return timings_; }

  /// Feature importance of the trained forest (empty for logistic
  /// regression), aligned with the configured feature subset.
  std::vector<double> feature_importance() const;

  /// Serializes the trained detector (classifier + the configuration
  /// needed to score: feature subset, feature windows). Deployment
  /// configuration such as pruning thresholds travels too, so a model
  /// trained in one network can be dropped into another (Section IV-A's
  /// cross-network story). Streams start with the versioned
  /// `segf1 segugio-model <version>` header (util/serialize.h); load()
  /// also accepts headerless legacy `segugio 1` streams.
  void save(std::ostream& out) const;
  static Segugio load(std::istream& in);

  static constexpr int kModelFormatVersion = 2;  ///< 2 = segf1 header; 1 = legacy

 private:
  std::vector<double> apply_subset(std::span<const double> features) const;
  void train_impl(const graph::GraphView& graph,
                  const features::FeatureExtractor& extractor);
  DetectionReport classify_impl(const graph::GraphView& graph,
                                const features::FeatureExtractor& extractor) const;
  template <typename ActivityT, typename PdnsT>
  DetectionReport classify_via_mmap(const graph::MachineDomainGraph& graph,
                                    const ActivityT& activity, const PdnsT& pdns) const;

  SegugioConfig config_;
  std::unique_ptr<ml::RandomForest> forest_;
  std::unique_ptr<ml::LogisticRegression> logistic_;
  mutable PipelineTimings timings_;
};

namespace detail {

/// Shared implementation behind Segugio::prepare_graph and
/// Pipeline::ingest_day. With a non-null `cache`, the graph build runs in
/// streaming mode (name facts carried across days; see
/// graph/sharded_builder.h) and `carry`, when non-null, receives the
/// dictionary-reuse counters.
PrepareResult prepare_day(const dns::DayTrace& trace, const dns::PublicSuffixList& psl,
                          const graph::NameSet& cc_blacklist,
                          const graph::NameSet& e2ld_whitelist, const PrepareOptions& options,
                          graph::NameCache* cache, graph::CarryStats* carry);

}  // namespace detail

}  // namespace seg::core
