#include "graph/graph.h"

#include <algorithm>
#include <unordered_map>

#include "dns/domain_name.h"
#include "util/require.h"

namespace seg::graph {

std::span<const DomainId> MachineDomainGraph::domains_of(MachineId m) const {
  util::require(m < machine_count(), "domains_of: machine id out of range");
  const auto begin = machine_offsets_[m];
  const auto end = machine_offsets_[m + 1];
  return {machine_targets_.data() + begin, machine_targets_.data() + end};
}

std::span<const MachineId> MachineDomainGraph::machines_of(DomainId d) const {
  util::require(d < domain_count(), "machines_of: domain id out of range");
  const auto begin = domain_offsets_[d];
  const auto end = domain_offsets_[d + 1];
  return {domain_targets_.data() + begin, domain_targets_.data() + end};
}

std::span<const dns::IpV4> MachineDomainGraph::resolved_ips(DomainId d) const {
  util::require(d < domain_count(), "resolved_ips: domain id out of range");
  const auto begin = ip_offsets_[d];
  const auto end = ip_offsets_[d + 1];
  return {resolved_ips_.data() + begin, resolved_ips_.data() + end};
}

DomainId MachineDomainGraph::find_domain(std::string_view name) const {
  const auto it = domain_index_.find(name);
  return it != domain_index_.end() ? it->second : static_cast<DomainId>(domain_count());
}

MachineId MachineDomainGraph::find_machine(std::string_view name) const {
  const auto it = machine_index_.find(name);
  return it != machine_index_.end() ? it->second : static_cast<MachineId>(machine_count());
}

void MachineDomainGraph::rebuild_name_index() {
  machine_index_.clear();
  machine_index_.reserve(machine_names_.size());
  for (MachineId m = 0; m < machine_names_.size(); ++m) {
    machine_index_.emplace(machine_names_[m], m);
  }
  domain_index_.clear();
  domain_index_.reserve(domain_names_.size());
  for (DomainId d = 0; d < domain_names_.size(); ++d) {
    domain_index_.emplace(domain_names_[d], d);
  }
}

std::size_t MachineDomainGraph::count_domains_with(Label label) const {
  return static_cast<std::size_t>(
      std::count(domain_labels_.begin(), domain_labels_.end(), label));
}

std::size_t MachineDomainGraph::count_machines_with(Label label) const {
  return static_cast<std::size_t>(
      std::count(machine_labels_.begin(), machine_labels_.end(), label));
}

void GraphBuilder::add_query(std::string_view machine, std::string_view qname,
                             std::span<const dns::IpV4> ips) {
  if (!dns::DomainName::is_valid(qname) || machine.empty()) {
    ++skipped_;
    return;
  }
  // Already-normalized names (the common case for simulator-generated
  // traces) skip the parse-and-copy; only messy real-log names pay for it.
  std::string normalized_storage;
  std::string_view normalized = qname;
  if (!dns::DomainName::is_normalized(qname)) {
    normalized_storage = dns::DomainName::parse(qname).str();
    normalized = normalized_storage;
  }

  MachineId m;
  if (const auto it = machine_ids_.find(machine); it != machine_ids_.end()) {
    m = it->second;
  } else {
    m = static_cast<MachineId>(machine_names_.size());
    machine_names_.emplace_back(machine);
    machine_ids_.emplace(machine_names_.back(), m);
  }

  DomainId d;
  if (const auto it = domain_ids_.find(normalized); it != domain_ids_.end()) {
    d = it->second;
  } else {
    d = static_cast<DomainId>(domain_names_.size());
    domain_names_.emplace_back(normalized);
    domain_ids_.emplace(domain_names_.back(), d);
    domain_ips_.emplace_back();
  }

  edges_.emplace_back(m, d);
  auto& ip_set = domain_ips_[d];
  for (const auto ip : ips) {
    if (std::find(ip_set.begin(), ip_set.end(), ip) == ip_set.end()) {
      ip_set.push_back(ip);
    }
  }
}

void GraphBuilder::add_trace(const dns::DayTrace& trace) {
  day_ = std::max(day_, trace.day);
  for (const auto& record : trace.records) {
    add_query(record.machine, record.qname, record.resolved_ips);
  }
}

MachineDomainGraph GraphBuilder::build() {
  MachineDomainGraph graph;
  graph.day_ = day_;
  graph.machine_names_ = std::move(machine_names_);
  graph.domain_names_ = std::move(domain_names_);

  const std::size_t num_machines = graph.machine_names_.size();
  const std::size_t num_domains = graph.domain_names_.size();

  // Deduplicate edges.
  std::sort(edges_.begin(), edges_.end());
  edges_.erase(std::unique(edges_.begin(), edges_.end()), edges_.end());

  // machine -> domain CSR (edges_ is already sorted by machine, then domain).
  graph.machine_offsets_.assign(num_machines + 1, 0);
  for (const auto& [m, d] : edges_) {
    ++graph.machine_offsets_[m + 1];
  }
  for (std::size_t i = 1; i <= num_machines; ++i) {
    graph.machine_offsets_[i] += graph.machine_offsets_[i - 1];
  }
  graph.machine_targets_.reserve(edges_.size());
  for (const auto& [m, d] : edges_) {
    graph.machine_targets_.push_back(d);
  }

  // domain -> machine CSR via counting sort on domain.
  graph.domain_offsets_.assign(num_domains + 1, 0);
  for (const auto& [m, d] : edges_) {
    ++graph.domain_offsets_[d + 1];
  }
  for (std::size_t i = 1; i <= num_domains; ++i) {
    graph.domain_offsets_[i] += graph.domain_offsets_[i - 1];
  }
  graph.domain_targets_.resize(edges_.size());
  {
    std::vector<std::uint64_t> cursor(graph.domain_offsets_.begin(),
                                      graph.domain_offsets_.end() - 1);
    for (const auto& [m, d] : edges_) {
      graph.domain_targets_[cursor[d]++] = m;
    }
  }
  edges_.clear();
  edges_.shrink_to_fit();

  // Resolved-IP CSR.
  graph.ip_offsets_.assign(num_domains + 1, 0);
  for (std::size_t d = 0; d < num_domains; ++d) {
    graph.ip_offsets_[d + 1] = graph.ip_offsets_[d] + domain_ips_[d].size();
  }
  graph.resolved_ips_.reserve(graph.ip_offsets_.back());
  for (auto& ips : domain_ips_) {
    std::sort(ips.begin(), ips.end());
    graph.resolved_ips_.insert(graph.resolved_ips_.end(), ips.begin(), ips.end());
  }
  domain_ips_.clear();

  // e2LD annotation, interned. Keys are owned copies: e2ld_names_ grows
  // while we iterate, so views into it would dangle on reallocation.
  std::unordered_map<std::string, E2ldId> e2ld_ids;
  graph.domain_e2ld_.reserve(num_domains);
  for (const auto& name : graph.domain_names_) {
    const std::string e2ld(psl_->e2ld_or_self(name));
    if (const auto it = e2ld_ids.find(e2ld); it != e2ld_ids.end()) {
      graph.domain_e2ld_.push_back(it->second);
    } else {
      const auto id = static_cast<E2ldId>(graph.e2ld_names_.size());
      graph.e2ld_names_.push_back(e2ld);
      e2ld_ids.emplace(e2ld, id);
      graph.domain_e2ld_.push_back(id);
    }
  }

  graph.machine_labels_.assign(num_machines, Label::kUnknown);
  graph.domain_labels_.assign(num_domains, Label::kUnknown);

  // The interning maps become the built graph's name→id directory — they
  // are already paid for, and find_machine/find_domain stay O(1).
  graph.machine_index_ = std::move(machine_ids_);
  graph.domain_index_ = std::move(domain_ids_);

  machine_ids_.clear();
  domain_ids_.clear();
  skipped_ = 0;
  day_ = 0;
  return graph;
}

MachineDomainGraph build_graph_from_file(const std::string& path,
                                         const dns::PublicSuffixList& psl) {
  GraphBuilder builder(psl);
  dns::Day latest = 0;
  const auto day = dns::for_each_record(path, [&builder](const dns::QueryRecord& record) {
    builder.add_query(record.machine, record.qname, record.resolved_ips);
  });
  latest = day;
  dns::DayTrace stamp;
  stamp.day = latest;
  builder.add_trace(stamp);  // stamp the day without extra records
  return builder.build();
}

GraphStats compute_stats(const MachineDomainGraph& graph) {
  GraphStats stats;
  stats.machines = graph.machine_count();
  stats.domains = graph.domain_count();
  stats.edges = graph.edge_count();
  stats.benign_domains = graph.count_domains_with(Label::kBenign);
  stats.malware_domains = graph.count_domains_with(Label::kMalware);
  stats.unknown_domains = graph.count_domains_with(Label::kUnknown);
  stats.benign_machines = graph.count_machines_with(Label::kBenign);
  stats.malware_machines = graph.count_machines_with(Label::kMalware);
  stats.unknown_machines = graph.count_machines_with(Label::kUnknown);
  return stats;
}

}  // namespace seg::graph
