// Backing-agnostic read view of a behavior graph.
//
// GraphView serves the same const accessors as MachineDomainGraph —
// adjacency in both directions, resolved-IP sets, e2LD annotations,
// labels — as a non-owning bundle of spans. Two backings produce views:
//
//   - MachineDomainGraph::view() over the heap-resident vectors;
//   - graph::map_graph() over a memory-mapped `segf1 graphc` packed file
//     (graph_compressed.h), where every accessor reads the mapping
//     directly — zero-copy load.
//
// Pruning, feature extraction, and classification are written against
// GraphView, so they run identically over either backing; the score
// bit-identity is asserted by tests/core/pipeline mmap tests. A view
// never outlives its backing (the graph object or the MappedGraph).
//
// Names come through NameTableView, which serves string_views either from
// an array of std::string (heap graphs) or from an offsets+blob pair (the
// packed file's name sections) — one branch per access, no copies.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>

#include "dns/ip.h"
#include "dns/types.h"
#include "graph/graph.h"
#include "graph/labels.h"
#include "util/require.h"

namespace seg::graph {

/// Read-only name table over either owned strings or a mapped blob.
class NameTableView {
 public:
  NameTableView() = default;

  static NameTableView from_strings(std::span<const std::string> names) {
    NameTableView table;
    table.strings_ = names.data();
    table.count_ = names.size();
    return table;
  }

  /// `offsets` has count + 1 entries delimiting each name's bytes in `blob`.
  static NameTableView from_blob(const char* blob, const std::uint64_t* offsets,
                                 std::size_t count) {
    NameTableView table;
    table.blob_ = blob;
    table.offsets_ = offsets;
    table.count_ = count;
    return table;
  }

  std::string_view operator[](std::size_t i) const {
    if (strings_ != nullptr) {
      return strings_[i];
    }
    return {blob_ + offsets_[i], static_cast<std::size_t>(offsets_[i + 1] - offsets_[i])};
  }

  std::size_t size() const { return count_; }

 private:
  const std::string* strings_ = nullptr;
  const char* blob_ = nullptr;
  const std::uint64_t* offsets_ = nullptr;
  std::size_t count_ = 0;
};

class GraphView {
 public:
  std::size_t machine_count() const { return machine_names_.size(); }
  std::size_t domain_count() const { return domain_names_.size(); }
  std::size_t edge_count() const { return machine_targets_.size(); }
  std::size_t e2ld_count() const { return e2ld_names_.size(); }

  std::string_view machine_name(MachineId m) const { return machine_names_[m]; }
  std::string_view domain_name(DomainId d) const { return domain_names_[d]; }
  E2ldId domain_e2ld(DomainId d) const { return domain_e2ld_[d]; }
  std::string_view e2ld_name(E2ldId e) const { return e2ld_names_[e]; }

  std::span<const DomainId> domains_of(MachineId m) const {
    util::require(m < machine_count(), "domains_of: machine id out of range");
    return machine_targets_.subspan(machine_offsets_[m],
                                    machine_offsets_[m + 1] - machine_offsets_[m]);
  }

  std::span<const MachineId> machines_of(DomainId d) const {
    util::require(d < domain_count(), "machines_of: domain id out of range");
    return domain_targets_.subspan(domain_offsets_[d],
                                   domain_offsets_[d + 1] - domain_offsets_[d]);
  }

  std::span<const dns::IpV4> resolved_ips(DomainId d) const {
    util::require(d < domain_count(), "resolved_ips: domain id out of range");
    return resolved_ips_.subspan(ip_offsets_[d], ip_offsets_[d + 1] - ip_offsets_[d]);
  }

  Label machine_label(MachineId m) const { return machine_labels_[m]; }
  Label domain_label(DomainId d) const { return domain_labels_[d]; }

  dns::Day day() const { return day_; }

  std::size_t count_domains_with(Label label) const {
    std::size_t count = 0;
    for (const auto l : domain_labels_) {
      count += l == label ? 1 : 0;
    }
    return count;
  }

  std::size_t count_machines_with(Label label) const {
    std::size_t count = 0;
    for (const auto l : machine_labels_) {
      count += l == label ? 1 : 0;
    }
    return count;
  }

  // Raw section access for serializers (graph_compressed.cpp); ordinary
  // consumers use the per-node accessors above.
  NameTableView machine_names() const { return machine_names_; }
  NameTableView domain_names() const { return domain_names_; }
  NameTableView e2ld_names() const { return e2ld_names_; }
  std::span<const E2ldId> domain_e2ld_ids() const { return domain_e2ld_; }
  std::span<const std::uint64_t> machine_offsets() const { return machine_offsets_; }
  std::span<const DomainId> machine_targets() const { return machine_targets_; }
  std::span<const std::uint64_t> domain_offsets() const { return domain_offsets_; }
  std::span<const MachineId> domain_targets() const { return domain_targets_; }
  std::span<const std::uint64_t> ip_offsets() const { return ip_offsets_; }
  std::span<const dns::IpV4> resolved_ip_values() const { return resolved_ips_; }
  std::span<const Label> machine_labels() const { return machine_labels_; }
  std::span<const Label> domain_labels() const { return domain_labels_; }

 private:
  friend class MachineDomainGraph;
  friend GraphView make_packed_view(dns::Day day, NameTableView machines,
                                    NameTableView domains, NameTableView e2lds,
                                    std::span<const E2ldId> domain_e2ld,
                                    std::span<const std::uint64_t> machine_offsets,
                                    std::span<const DomainId> machine_targets,
                                    std::span<const std::uint64_t> domain_offsets,
                                    std::span<const MachineId> domain_targets,
                                    std::span<const std::uint64_t> ip_offsets,
                                    std::span<const dns::IpV4> resolved_ips,
                                    std::span<const Label> machine_labels,
                                    std::span<const Label> domain_labels);

  dns::Day day_ = 0;
  NameTableView machine_names_;
  NameTableView domain_names_;
  NameTableView e2ld_names_;
  std::span<const E2ldId> domain_e2ld_;
  std::span<const std::uint64_t> machine_offsets_;
  std::span<const DomainId> machine_targets_;
  std::span<const std::uint64_t> domain_offsets_;
  std::span<const MachineId> domain_targets_;
  std::span<const std::uint64_t> ip_offsets_;
  std::span<const dns::IpV4> resolved_ips_;
  std::span<const Label> machine_labels_;
  std::span<const Label> domain_labels_;
};

/// Assembles a view from raw section spans (graph_compressed.cpp's mapped
/// loader). Callers guarantee the usual CSR invariants.
inline GraphView make_packed_view(dns::Day day, NameTableView machines, NameTableView domains,
                                  NameTableView e2lds, std::span<const E2ldId> domain_e2ld,
                                  std::span<const std::uint64_t> machine_offsets,
                                  std::span<const DomainId> machine_targets,
                                  std::span<const std::uint64_t> domain_offsets,
                                  std::span<const MachineId> domain_targets,
                                  std::span<const std::uint64_t> ip_offsets,
                                  std::span<const dns::IpV4> resolved_ips,
                                  std::span<const Label> machine_labels,
                                  std::span<const Label> domain_labels) {
  GraphView view;
  view.day_ = day;
  view.machine_names_ = machines;
  view.domain_names_ = domains;
  view.e2ld_names_ = e2lds;
  view.domain_e2ld_ = domain_e2ld;
  view.machine_offsets_ = machine_offsets;
  view.machine_targets_ = machine_targets;
  view.domain_offsets_ = domain_offsets;
  view.domain_targets_ = domain_targets;
  view.ip_offsets_ = ip_offsets;
  view.resolved_ips_ = resolved_ips;
  view.machine_labels_ = machine_labels;
  view.domain_labels_ = domain_labels;
  return view;
}

inline GraphView MachineDomainGraph::view() const {
  GraphView v;
  v.day_ = day_;
  v.machine_names_ = NameTableView::from_strings(machine_names_);
  v.domain_names_ = NameTableView::from_strings(domain_names_);
  v.e2ld_names_ = NameTableView::from_strings(e2ld_names_);
  v.domain_e2ld_ = domain_e2ld_;
  v.machine_offsets_ = machine_offsets_;
  v.machine_targets_ = machine_targets_;
  v.domain_offsets_ = domain_offsets_;
  v.domain_targets_ = domain_targets_;
  v.ip_offsets_ = ip_offsets_;
  v.resolved_ips_ = resolved_ips_;
  v.machine_labels_ = machine_labels_;
  v.domain_labels_ = domain_labels_;
  return v;
}

}  // namespace seg::graph
