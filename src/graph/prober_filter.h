// Detection and removal of "probing" clients (Section VI).
//
// Some networks host machines running security tools that continuously
// probe large lists of known malware-related domains (checking liveness,
// resolved IPs, name servers). Such clients are not infected, but they
// query hundreds of blacklisted names, get labeled *malware* by the
// propagation rule, and then contaminate the infected-machine fractions of
// every benign domain they touch. The paper reports using heuristics to
// verify its pruned graphs were free of such clients; this module supplies
// one: a machine is an anomalous prober when its queried set contains an
// implausibly large number (and share) of blacklisted domains — real
// infections query a handful of C&C names (Figure 3: at most ~20), not
// hundreds.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace seg::graph {

struct ProberFilterConfig {
  /// Minimum number of blacklisted (malware-labeled) domains a machine
  /// must query to be considered a prober. Far above Figure 3's ~20-max
  /// per-infection count.
  std::uint32_t min_blacklisted_domains = 30;
  /// Minimum share of the machine's queried domains that are blacklisted.
  double min_blacklisted_ratio = 0.3;
};

/// Machines flagged as probers under the heuristic (by machine id; 0/1 —
/// a byte vector, not vector<bool>, so callers can fill it in parallel).
std::vector<std::uint8_t> detect_probers(const MachineDomainGraph& graph,
                                         const ProberFilterConfig& config = {});

struct ProberFilterStats {
  std::size_t machines_removed = 0;
};

/// Returns a copy of `graph` with the flagged machines removed (domain
/// nodes are all kept; run prune() afterwards as usual). Labels and
/// annotations carry over.
MachineDomainGraph remove_probers(const MachineDomainGraph& graph,
                                  const ProberFilterConfig& config = {},
                                  ProberFilterStats* stats = nullptr);

}  // namespace seg::graph
