// Sharded, thread-parallel construction of the machine-domain graph.
//
// The serial GraphBuilder walks a day of traffic one record at a time;
// at ISP scale (hundreds of millions of machine–domain edges per day,
// Section IV-G) that single core is the pipeline's tallest pole. The
// sharded builder splits the record stream into N contiguous shards, lets
// each worker intern names and buffer edges locally, then merges the
// shard dictionaries and assembles the CSR adjacency in parallel.
//
// Determinism contract (see docs/performance.md): the built graph is
// bit-identical to serial GraphBuilder output for every shard/thread
// count. Global machine/domain ids follow first-occurrence order in the
// record stream — shards cover contiguous record ranges and are merged in
// shard order, which reproduces exactly the serial first-seen order.
// Edges are globally sorted and deduplicated, resolved-IP sets are sorted,
// and e2LDs are interned in domain-id order via the deterministic two-pass
// intern (graph/intern.h), all matching the serial builder's layout.
// tests/graph/sharded_builder_test.cpp asserts byte equality of the
// serialized graphs.
//
// Streaming mode: when constructed with a NameCache, the scan phase serves
// name validation/normalization/e2LD facts from the carried dictionary and
// only computes them for names unseen on previous days; the day's new
// names are merged back after the scan. The built graph stays bit-identical
// to a from-scratch build (tests/core/pipeline_test.cpp).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "dns/public_suffix_list.h"
#include "dns/query_log.h"
#include "graph/graph.h"
#include "graph/name_cache.h"

namespace seg::graph {

/// Wall-clock breakdown of the last ShardedGraphBuilder::build() call.
/// A view over the builder's obs spans ("build/scan", "build/merge",
/// "build/assemble") — not a second timing mechanism.
struct BuildTimings {
  double shard_scan_seconds = 0.0;  ///< parallel per-shard intern + buffer
  double merge_seconds = 0.0;       ///< dictionary merge + edge sort/dedup
  double assemble_seconds = 0.0;    ///< CSR fill, IP sets, e2LD annotation
  std::size_t records = 0;          ///< input records consumed
  std::size_t edges = 0;            ///< distinct edges after dedup

  double total_seconds() const {
    return shard_scan_seconds + merge_seconds + assemble_seconds;
  }
};

/// Drop-in parallel replacement for GraphBuilder. Traces added via
/// add_trace are only referenced, not copied — they must outlive build().
class ShardedGraphBuilder {
 public:
  /// `psl` must outlive build(). `num_shards` controls the partitioning
  /// width; 0 means util::parallelism(). The result does not depend on it.
  explicit ShardedGraphBuilder(const dns::PublicSuffixList& psl, std::size_t num_shards = 0);

  /// Streaming constructor: name facts are served from (and new names
  /// merged back into) `cache`, which must outlive the builder. The built
  /// graph is bit-identical to the cache-less build; last_carry() reports
  /// the dictionary reuse.
  ShardedGraphBuilder(const dns::PublicSuffixList& psl, NameCache& cache,
                      std::size_t num_shards = 0);

  /// Registers a day trace for the next build(). The graph's day becomes
  /// the latest day added, as with GraphBuilder::add_trace.
  void add_trace(const dns::DayTrace& trace);

  /// Builds the graph from every registered trace, in registration order.
  /// The builder is left empty afterwards (timings and skip count remain).
  MachineDomainGraph build();

  /// Number of records skipped by the last build() because the queried
  /// name was invalid (or the machine identifier empty).
  std::size_t skipped_records() const { return skipped_; }

  /// Per-stage wall time of the last build().
  const BuildTimings& last_timings() const { return timings_; }

  /// Dictionary reuse counters of the last build(). Without a NameCache
  /// only distinct_domains is populated.
  const CarryStats& last_carry() const { return carry_; }

 private:
  const dns::PublicSuffixList* psl_;
  NameCache* cache_ = nullptr;
  std::size_t num_shards_;
  dns::Day day_ = 0;
  std::vector<std::span<const dns::QueryRecord>> segments_;
  std::size_t skipped_ = 0;
  BuildTimings timings_;
  CarryStats carry_;
};

}  // namespace seg::graph
