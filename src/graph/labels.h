// Node labels for the machine-domain behavior graph.
#pragma once

#include <string_view>

namespace seg::graph {

/// Ground-truth status of a machine or domain node (Section II-A1).
/// `kUnknown` nodes are the classification targets.
enum class Label : unsigned char { kUnknown = 0, kBenign = 1, kMalware = 2 };

constexpr std::string_view label_name(Label label) {
  switch (label) {
    case Label::kUnknown:
      return "unknown";
    case Label::kBenign:
      return "benign";
    case Label::kMalware:
      return "malware";
  }
  return "?";
}

}  // namespace seg::graph
