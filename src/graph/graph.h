// The machine-domain bipartite behavior graph (Section II-A1).
//
// Nodes are machines and fully-qualified domain names; an edge connects
// machine m to domain d when m queried d during the observation window T.
// Domain nodes are annotated with the set of IPs they resolved to during T
// and with their effective 2LD (used by pruning rule R4, by whitelist
// labeling, and by the F2 features).
//
// The graph is immutable once built; both adjacency directions are stored
// in CSR form so per-domain feature extraction (domain -> machines) and
// machine labeling (machine -> domains) are both O(degree).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "dns/ip.h"
#include "dns/public_suffix_list.h"
#include "dns/query_log.h"
#include "graph/labels.h"

namespace seg::graph {

using MachineId = std::uint32_t;
using DomainId = std::uint32_t;
using E2ldId = std::uint32_t;

/// Transparent-hash string→id map: lookups take string_view without
/// materializing a std::string key. Shared by the builders (interning) and
/// the built graph (name→id directory).
struct TransparentStringHash {
  using is_transparent = void;
  std::size_t operator()(std::string_view s) const noexcept {
    return std::hash<std::string_view>{}(s);
  }
};
template <typename V>
using StringIdMap = std::unordered_map<std::string, V, TransparentStringHash, std::equal_to<>>;

class GraphView;

class MachineDomainGraph {
 public:
  std::size_t machine_count() const { return machine_names_.size(); }
  std::size_t domain_count() const { return domain_names_.size(); }
  std::size_t edge_count() const { return machine_targets_.size(); }
  std::size_t e2ld_count() const { return e2ld_names_.size(); }

  std::string_view machine_name(MachineId m) const { return machine_names_[m]; }
  std::string_view domain_name(DomainId d) const { return domain_names_[d]; }

  E2ldId domain_e2ld(DomainId d) const { return domain_e2ld_[d]; }
  std::string_view e2ld_name(E2ldId e) const { return e2ld_names_[e]; }

  /// Distinct domains queried by machine m, ascending by id.
  std::span<const DomainId> domains_of(MachineId m) const;

  /// Distinct machines that queried domain d, ascending by id.
  std::span<const MachineId> machines_of(DomainId d) const;

  /// IPs the domain resolved to during the observation window.
  std::span<const dns::IpV4> resolved_ips(DomainId d) const;

  Label machine_label(MachineId m) const { return machine_labels_[m]; }
  Label domain_label(DomainId d) const { return domain_labels_[d]; }

  void set_machine_label(MachineId m, Label label) { machine_labels_[m] = label; }
  void set_domain_label(DomainId d, Label label) { domain_labels_[d] = label; }

  /// The day the graph's traffic was observed on (t_now for features).
  dns::Day day() const { return day_; }

  /// Looks up a domain id by name; returns domain_count() when absent. O(1):
  /// the builders' interning maps are retained in the built graph.
  DomainId find_domain(std::string_view name) const;

  /// Looks up a machine id by name; returns machine_count() when absent.
  MachineId find_machine(std::string_view name) const;

  /// Count of domain/machine nodes carrying each label.
  std::size_t count_domains_with(Label label) const;
  std::size_t count_machines_with(Label label) const;

  /// A backing-agnostic read view over this graph (graph_view.h). The view
  /// references this graph's storage and must not outlive it.
  GraphView view() const;

 private:
  friend class GraphBuilder;
  friend class ShardedGraphBuilder;
  friend MachineDomainGraph prune_impl(const GraphView&,
                                       const std::vector<std::uint8_t>&,
                                       const std::vector<std::uint8_t>&);
  friend MachineDomainGraph load_graph_compressed(std::istream&);
  friend void save_graph(const MachineDomainGraph&, std::ostream&);
  friend MachineDomainGraph load_graph(std::istream&);

  /// Rebuilds machine_index_/domain_index_ from the name vectors; called by
  /// constructors that assemble a graph without going through a builder
  /// (pruning, deserialization).
  void rebuild_name_index();

  dns::Day day_ = 0;

  std::vector<std::string> machine_names_;
  std::vector<std::string> domain_names_;
  std::vector<std::string> e2ld_names_;
  std::vector<E2ldId> domain_e2ld_;

  // CSR adjacency, both directions.
  std::vector<std::uint64_t> machine_offsets_;
  std::vector<DomainId> machine_targets_;
  std::vector<std::uint64_t> domain_offsets_;
  std::vector<MachineId> domain_targets_;

  // Per-domain resolved IP sets (CSR).
  std::vector<std::uint64_t> ip_offsets_;
  std::vector<dns::IpV4> resolved_ips_;

  std::vector<Label> machine_labels_;
  std::vector<Label> domain_labels_;

  // Name→id directory (find_machine / find_domain). Populated by the
  // builders (moved from their interning maps) or rebuilt after
  // pruning/loading; not serialized.
  StringIdMap<MachineId> machine_index_;
  StringIdMap<DomainId> domain_index_;
};

/// Accumulates query observations and produces an immutable graph.
///
/// Invalid domain names are skipped (and counted) rather than rejected:
/// real resolver logs contain garbage queries, and the paper's pipeline
/// only considers valid authoritative answers.
class GraphBuilder {
 public:
  /// `psl` is used to annotate each domain with its effective 2LD; it must
  /// outlive build().
  explicit GraphBuilder(const dns::PublicSuffixList& psl) : psl_(&psl) {}

  /// Adds one query observation. Duplicate (machine, domain) pairs collapse
  /// into a single edge; resolved IPs accumulate into the domain's IP set.
  void add_query(std::string_view machine, std::string_view qname,
                 std::span<const dns::IpV4> ips);

  /// Adds every record of a day trace. The graph's day becomes the latest
  /// trace day added, so multi-day observation windows (the paper's T,
  /// "e.g., one day") measure features relative to the window's end.
  void add_trace(const dns::DayTrace& trace);

  /// Number of records skipped because the queried name was invalid.
  std::size_t skipped_records() const { return skipped_; }

  /// Builds the immutable graph. The builder is left empty afterwards.
  MachineDomainGraph build();

 private:
  const dns::PublicSuffixList* psl_;
  dns::Day day_ = 0;

  StringIdMap<MachineId> machine_ids_;
  StringIdMap<DomainId> domain_ids_;
  std::vector<std::string> machine_names_;
  std::vector<std::string> domain_names_;

  std::vector<std::pair<MachineId, DomainId>> edges_;
  std::vector<std::vector<dns::IpV4>> domain_ips_;

  std::size_t skipped_ = 0;
};

/// Streams a query-log file (text TSV or SEGTRC1 binary, by extension)
/// directly into a graph without materializing the whole trace in memory —
/// at the paper's scale a day holds hundreds of millions of records.
/// Throws util::ParseError on malformed files.
MachineDomainGraph build_graph_from_file(const std::string& path,
                                         const dns::PublicSuffixList& psl);

/// Headline node/edge/label counts, as reported in Table I.
struct GraphStats {
  std::size_t machines = 0;
  std::size_t domains = 0;
  std::size_t edges = 0;
  std::size_t benign_domains = 0;
  std::size_t malware_domains = 0;
  std::size_t unknown_domains = 0;
  std::size_t benign_machines = 0;
  std::size_t malware_machines = 0;
  std::size_t unknown_machines = 0;
};

GraphStats compute_stats(const MachineDomainGraph& graph);

}  // namespace seg::graph
