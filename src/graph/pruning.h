// Conservative graph pruning (Section II-A2).
//
// Rules, applied in order R1, R2 (machines), then R3, R4 (domains, with
// domain degrees recomputed over surviving machines):
//
//   R1  drop machines querying <= `inactive_machine_max_degree` domains,
//       EXCEPT machines already labeled malware (they may query only a
//       couple of C&C names and still help detection);
//   R2  drop proxy/NAT-like machines querying more domains than theta_d,
//       where theta_d is the `proxy_degree_percentile` of the machine-degree
//       distribution (i.e. the largest still-normal degree; only outliers
//       strictly beyond it are treated as proxies/forwarders);
//   R3  drop domains queried by fewer than `min_domain_machines` machines,
//       EXCEPT domains already labeled malware;
//   R4  drop domains whose effective 2LD is queried by >= theta_m machines,
//       theta_m = `popular_e2ld_fraction` of all machines in the network
//       (measured on the unpruned machine population).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace seg::graph {

struct PruningConfig {
  /// R1: machines with degree <= this are "inactive" (paper uses 5).
  std::uint32_t inactive_machine_max_degree = 5;
  /// R2: percentile of the machine-degree distribution used as theta_d.
  double proxy_degree_percentile = 0.9999;
  /// R3: minimum number of distinct querying machines for a domain.
  std::uint32_t min_domain_machines = 2;
  /// R4: fraction of all machines that makes an e2LD "too popular".
  double popular_e2ld_fraction = 1.0 / 3.0;
};

struct PruneStats {
  std::size_t machines_before = 0;
  std::size_t machines_after = 0;
  std::size_t domains_before = 0;
  std::size_t domains_after = 0;
  std::size_t edges_before = 0;
  std::size_t edges_after = 0;

  std::size_t machines_removed_r1 = 0;
  std::size_t machines_removed_r2 = 0;
  std::size_t domains_removed_r3 = 0;
  std::size_t domains_removed_r4 = 0;

  std::size_t malware_machines_kept_by_exception = 0;  ///< R1 exception
  std::size_t malware_domains_kept_by_exception = 0;   ///< R3 exception

  std::uint64_t theta_d = 0;  ///< resolved R2 threshold
  std::uint64_t theta_m = 0;  ///< resolved R4 threshold

  double domain_reduction() const {
    return domains_before == 0
               ? 0.0
               : 1.0 - static_cast<double>(domains_after) / static_cast<double>(domains_before);
  }
  double machine_reduction() const {
    return machines_before == 0 ? 0.0
                                : 1.0 - static_cast<double>(machines_after) /
                                            static_cast<double>(machines_before);
  }
  double edge_reduction() const {
    return edges_before == 0
               ? 0.0
               : 1.0 - static_cast<double>(edges_after) / static_cast<double>(edges_before);
  }
};

/// Produces a pruned copy of `graph` (labels and annotations carried over,
/// ids remapped densely). `stats`, when non-null, receives the breakdown.
/// The GraphView overload runs identically over any backing (heap or
/// mmap-resident graphs, graph_view.h); the result is always heap-resident.
MachineDomainGraph prune(const GraphView& graph, const PruningConfig& config,
                         PruneStats* stats = nullptr);
MachineDomainGraph prune(const MachineDomainGraph& graph, const PruningConfig& config,
                         PruneStats* stats = nullptr);

}  // namespace seg::graph
