#include "graph/graph_compressed.h"

#include <cstring>
#include <istream>
#include <iterator>
#include <ostream>
#include <type_traits>
#include <utility>
#include <vector>

#include "util/require.h"
#include "util/serialize.h"
#include "util/varint.h"

namespace seg::graph {

namespace {

// The mapped loader serves fixed-width sections in place, so the packed
// encoding inherits the host's layout for these types.
static_assert(sizeof(dns::IpV4) == 4 && std::is_trivially_copyable_v<dns::IpV4>,
              "packed graphc stores resolved IPs as raw 4-byte values");
static_assert(sizeof(Label) == 1, "packed graphc stores labels as raw bytes");

constexpr std::string_view kGraphcMagic = "graphc";
constexpr int kGraphcVersion = 1;
// util::write_format_header(out, "graphc", 1) produces exactly this line.
constexpr std::string_view kTextHeader = "segf1 graphc 1\n";
// Text line + binary header (encoding u8, 3 reserved, day i32, 8 u64
// counts), before padding to the first 8-aligned section boundary.
constexpr std::size_t kHeaderBytes = kTextHeader.size() + 4 + 4 + 8 * 8;

std::size_t pad8_gap(std::size_t position) { return (8 - position % 8) % 8; }

detail::GraphcCounts counts_of(const GraphView& graph) {
  detail::GraphcCounts counts;
  counts.day = graph.day();
  counts.machines = graph.machine_count();
  counts.domains = graph.domain_count();
  counts.e2lds = graph.e2ld_count();
  counts.edges = graph.edge_count();
  counts.ips = graph.resolved_ip_values().size();
  for (std::size_t i = 0; i < graph.machine_names().size(); ++i) {
    counts.machine_name_bytes += graph.machine_names()[i].size();
  }
  for (std::size_t i = 0; i < graph.domain_names().size(); ++i) {
    counts.domain_name_bytes += graph.domain_names()[i].size();
  }
  for (std::size_t i = 0; i < graph.e2ld_names().size(); ++i) {
    counts.e2ld_name_bytes += graph.e2ld_names()[i].size();
  }
  return counts;
}

void write_binary_header(std::ostream& out, GraphcEncoding encoding,
                         const detail::GraphcCounts& counts) {
  util::write_format_header(out, kGraphcMagic, kGraphcVersion);
  const std::uint8_t enc = static_cast<std::uint8_t>(encoding);
  const std::uint8_t reserved[3] = {0, 0, 0};
  out.write(reinterpret_cast<const char*>(&enc), 1);
  out.write(reinterpret_cast<const char*>(reserved), 3);
  out.write(reinterpret_cast<const char*>(&counts.day), 4);
  const std::uint64_t fields[8] = {counts.machines,           counts.domains,
                                   counts.e2lds,              counts.edges,
                                   counts.ips,                counts.machine_name_bytes,
                                   counts.domain_name_bytes,  counts.e2ld_name_bytes};
  out.write(reinterpret_cast<const char*>(fields), sizeof(fields));
}

// --- packed encoding --------------------------------------------------------

void write_name_table(detail::PackedGraphcWriter& writer, const NameTableView& names) {
  std::vector<std::uint64_t> offsets(names.size() + 1, 0);
  for (std::size_t i = 0; i < names.size(); ++i) {
    offsets[i + 1] = offsets[i] + names[i].size();
  }
  writer.bytes(offsets.data(), offsets.size() * sizeof(std::uint64_t));
  std::string blob;
  for (std::size_t i = 0; i < names.size(); ++i) {
    const auto name = names[i];
    blob.append(name.data(), name.size());
    if (blob.size() >= (1u << 20)) {
      writer.bytes(blob.data(), blob.size());
      blob.clear();
    }
  }
  writer.bytes(blob.data(), blob.size());
  writer.pad8();
}

void save_packed(const GraphView& graph, std::ostream& out) {
  detail::PackedGraphcWriter writer(out, counts_of(graph));
  write_name_table(writer, graph.machine_names());
  write_name_table(writer, graph.domain_names());
  write_name_table(writer, graph.e2ld_names());

  const auto section = [&writer](const auto& span, std::size_t element_size) {
    writer.bytes(span.data(), span.size() * element_size);
    writer.pad8();
  };
  section(graph.domain_e2ld_ids(), sizeof(E2ldId));
  section(graph.machine_offsets(), sizeof(std::uint64_t));
  section(graph.machine_targets(), sizeof(DomainId));
  section(graph.domain_offsets(), sizeof(std::uint64_t));
  section(graph.domain_targets(), sizeof(MachineId));
  section(graph.ip_offsets(), sizeof(std::uint64_t));
  section(graph.resolved_ip_values(), sizeof(dns::IpV4));
  section(graph.machine_labels(), sizeof(Label));
  section(graph.domain_labels(), sizeof(Label));
  writer.finish();
}

// --- compact encoding -------------------------------------------------------

class CompactStream {
 public:
  explicit CompactStream(std::ostream& out) : out_(&out) {}

  std::string& buffer() { return buffer_; }

  void maybe_flush() {
    if (buffer_.size() >= (1u << 20)) {
      flush();
    }
  }

  void flush() {
    out_->write(buffer_.data(), static_cast<std::streamsize>(buffer_.size()));
    buffer_.clear();
  }

 private:
  std::ostream* out_;
  std::string buffer_;
};

void save_compact(const GraphView& graph, std::ostream& out) {
  write_binary_header(out, GraphcEncoding::kCompact, counts_of(graph));
  CompactStream stream(out);
  auto& buf = stream.buffer();

  const auto names = [&](const NameTableView& table) {
    for (std::size_t i = 0; i < table.size(); ++i) {
      const auto name = table[i];
      util::append_varint(buf, name.size());
      buf.append(name.data(), name.size());
      stream.maybe_flush();
    }
  };
  names(graph.machine_names());
  names(graph.domain_names());
  names(graph.e2ld_names());

  for (const auto e : graph.domain_e2ld_ids()) {
    util::append_varint(buf, e);
    stream.maybe_flush();
  }

  // Degree stream then the concatenated delta-coded adjacency runs, per
  // direction. Degrees first keeps every run's length decodable without
  // interleaving headers into the run bytes.
  const auto degrees_and_runs = [&](std::size_t count, const auto& row_of) {
    for (std::size_t i = 0; i < count; ++i) {
      util::append_varint(buf, row_of(i).size());
      stream.maybe_flush();
    }
    for (std::size_t i = 0; i < count; ++i) {
      util::append_ascending_run(buf, row_of(i));
      stream.maybe_flush();
    }
  };
  degrees_and_runs(graph.machine_count(),
                   [&](std::size_t m) { return graph.domains_of(static_cast<MachineId>(m)); });
  degrees_and_runs(graph.domain_count(),
                   [&](std::size_t d) { return graph.machines_of(static_cast<DomainId>(d)); });

  for (DomainId d = 0; d < graph.domain_count(); ++d) {
    util::append_varint(buf, graph.resolved_ips(d).size());
    stream.maybe_flush();
  }
  for (DomainId d = 0; d < graph.domain_count(); ++d) {
    const auto ips = graph.resolved_ips(d);
    for (std::size_t i = 0; i < ips.size(); ++i) {
      if (i == 0) {
        util::append_varint(buf, ips[0].value());
      } else {
        util::append_varint(buf, ips[i].value() - ips[i - 1].value() - 1);
      }
    }
    stream.maybe_flush();
  }

  for (const auto label : graph.machine_labels()) {
    buf.push_back(static_cast<char>(label));
  }
  for (const auto label : graph.domain_labels()) {
    buf.push_back(static_cast<char>(label));
  }
  stream.flush();
  util::require_data(static_cast<bool>(out), "save_graph_compressed: write failed");
}

// --- loading ---------------------------------------------------------------

void read_exact(std::istream& in, void* data, std::size_t size) {
  in.read(static_cast<char*>(data), static_cast<std::streamsize>(size));
  util::require_data(static_cast<std::size_t>(in.gcount()) == size,
                     "load_graph_compressed: truncated file");
}

struct BinaryHeader {
  GraphcEncoding encoding = GraphcEncoding::kPacked;
  detail::GraphcCounts counts;
};

// Decoded sections, assembled into a MachineDomainGraph by
// load_graph_compressed (the friend); the per-encoding readers stay free
// of private access.
struct GraphParts {
  dns::Day day = 0;
  std::vector<std::string> machine_names;
  std::vector<std::string> domain_names;
  std::vector<std::string> e2ld_names;
  std::vector<E2ldId> domain_e2ld;
  std::vector<std::uint64_t> machine_offsets;
  std::vector<DomainId> machine_targets;
  std::vector<std::uint64_t> domain_offsets;
  std::vector<MachineId> domain_targets;
  std::vector<std::uint64_t> ip_offsets;
  std::vector<dns::IpV4> resolved_ips;
  std::vector<Label> machine_labels;
  std::vector<Label> domain_labels;
};

BinaryHeader read_binary_header(std::istream& in) {
  const int version = util::read_format_header(in, kGraphcMagic, kGraphcVersion,
                                               /*legacy_version=*/0);
  util::require_data(version == kGraphcVersion,
                     "load_graph_compressed: not a segf1 graphc stream");
  // read_format_header leaves the header line's newline in the stream.
  util::require_data(in.get() == '\n', "load_graph_compressed: malformed header line");

  BinaryHeader header;
  std::uint8_t encoding = 0;
  std::uint8_t reserved[3] = {};
  read_exact(in, &encoding, 1);
  read_exact(in, reserved, 3);
  util::require_data(encoding == static_cast<std::uint8_t>(GraphcEncoding::kPacked) ||
                         encoding == static_cast<std::uint8_t>(GraphcEncoding::kCompact),
                     "load_graph_compressed: unknown encoding byte");
  util::require_data(reserved[0] == 0 && reserved[1] == 0 && reserved[2] == 0,
                     "load_graph_compressed: nonzero reserved header bytes");
  header.encoding = static_cast<GraphcEncoding>(encoding);
  read_exact(in, &header.counts.day, 4);
  std::uint64_t fields[8] = {};
  read_exact(in, fields, sizeof(fields));
  header.counts.machines = fields[0];
  header.counts.domains = fields[1];
  header.counts.e2lds = fields[2];
  header.counts.edges = fields[3];
  header.counts.ips = fields[4];
  header.counts.machine_name_bytes = fields[5];
  header.counts.domain_name_bytes = fields[6];
  header.counts.e2ld_name_bytes = fields[7];
  return header;
}

std::vector<std::string> split_blob(const std::vector<std::uint64_t>& offsets,
                                    const std::string& blob) {
  util::require_data(!offsets.empty() && offsets.front() == 0 && offsets.back() == blob.size(),
                     "load_graph_compressed: name offsets inconsistent with blob");
  std::vector<std::string> names;
  names.reserve(offsets.size() - 1);
  for (std::size_t i = 0; i + 1 < offsets.size(); ++i) {
    util::require_data(offsets[i] <= offsets[i + 1],
                       "load_graph_compressed: name offsets not monotone");
    names.emplace_back(blob, offsets[i], offsets[i + 1] - offsets[i]);
  }
  return names;
}

GraphParts load_packed(std::istream& in, const detail::GraphcCounts& counts) {
  std::size_t position = kHeaderBytes;
  const auto skip_pad = [&] {
    const std::size_t gap = pad8_gap(position);
    char pad[8];
    read_exact(in, pad, gap);
    position += gap;
  };
  const auto read_section = [&](void* data, std::size_t size) {
    read_exact(in, data, size);
    position += size;
    skip_pad();
  };
  skip_pad();

  GraphParts parts;
  parts.day = counts.day;

  const auto read_names = [&](std::uint64_t count, std::uint64_t name_bytes) {
    std::vector<std::uint64_t> offsets(count + 1);
    read_exact(in, offsets.data(), offsets.size() * sizeof(std::uint64_t));
    position += offsets.size() * sizeof(std::uint64_t);
    std::string blob(name_bytes, '\0');
    read_section(blob.data(), blob.size());
    return split_blob(offsets, blob);
  };
  parts.machine_names = read_names(counts.machines, counts.machine_name_bytes);
  parts.domain_names = read_names(counts.domains, counts.domain_name_bytes);
  parts.e2ld_names = read_names(counts.e2lds, counts.e2ld_name_bytes);

  parts.domain_e2ld.resize(counts.domains);
  read_section(parts.domain_e2ld.data(), counts.domains * sizeof(E2ldId));
  parts.machine_offsets.resize(counts.machines + 1);
  read_section(parts.machine_offsets.data(), (counts.machines + 1) * sizeof(std::uint64_t));
  parts.machine_targets.resize(counts.edges);
  read_section(parts.machine_targets.data(), counts.edges * sizeof(DomainId));
  parts.domain_offsets.resize(counts.domains + 1);
  read_section(parts.domain_offsets.data(), (counts.domains + 1) * sizeof(std::uint64_t));
  parts.domain_targets.resize(counts.edges);
  read_section(parts.domain_targets.data(), counts.edges * sizeof(MachineId));
  parts.ip_offsets.resize(counts.domains + 1);
  read_section(parts.ip_offsets.data(), (counts.domains + 1) * sizeof(std::uint64_t));
  parts.resolved_ips.resize(counts.ips);
  read_section(parts.resolved_ips.data(), counts.ips * sizeof(dns::IpV4));
  parts.machine_labels.resize(counts.machines);
  read_section(parts.machine_labels.data(), counts.machines);
  parts.domain_labels.resize(counts.domains);
  read_section(parts.domain_labels.data(), counts.domains);
  for (const auto label : parts.machine_labels) {
    util::require_data(static_cast<unsigned char>(label) <= 2,
                       "load_graph_compressed: malformed label byte");
  }
  for (const auto label : parts.domain_labels) {
    util::require_data(static_cast<unsigned char>(label) <= 2,
                       "load_graph_compressed: malformed label byte");
  }
  return parts;
}

GraphParts load_compact(std::istream& in, const detail::GraphcCounts& counts) {
  const std::string body(std::istreambuf_iterator<char>(in), {});
  const auto* p = reinterpret_cast<const unsigned char*>(body.data());
  const auto* end = p + body.size();

  GraphParts parts;
  parts.day = counts.day;

  const auto read_names = [&](std::uint64_t count) {
    std::vector<std::string> names;
    names.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i) {
      const auto length = util::decode_varint(p, end);
      util::require_data(length <= static_cast<std::uint64_t>(end - p),
                         "load_graph_compressed: truncated name");
      names.emplace_back(reinterpret_cast<const char*>(p), length);
      p += length;
    }
    return names;
  };
  parts.machine_names = read_names(counts.machines);
  parts.domain_names = read_names(counts.domains);
  parts.e2ld_names = read_names(counts.e2lds);

  parts.domain_e2ld.reserve(counts.domains);
  for (std::uint64_t d = 0; d < counts.domains; ++d) {
    const auto e = util::decode_varint(p, end);
    util::require_data(e < counts.e2lds, "load_graph_compressed: e2LD id out of range");
    parts.domain_e2ld.push_back(static_cast<E2ldId>(e));
  }

  const auto csr = [&](std::uint64_t nodes, std::uint64_t target_limit,
                       std::vector<std::uint64_t>& offsets, auto& targets) {
    offsets.assign(nodes + 1, 0);
    for (std::uint64_t i = 0; i < nodes; ++i) {
      offsets[i + 1] = offsets[i] + util::decode_varint(p, end);
    }
    util::require_data(offsets.back() == counts.edges,
                       "load_graph_compressed: degree stream inconsistent with edge count");
    targets.resize(counts.edges);
    for (std::uint64_t i = 0; i < nodes; ++i) {
      util::decode_ascending_run(p, end, offsets[i + 1] - offsets[i],
                                 targets.data() + offsets[i]);
    }
    for (const auto t : targets) {
      util::require_data(t < target_limit, "load_graph_compressed: target id out of range");
    }
  };
  csr(counts.machines, counts.domains, parts.machine_offsets, parts.machine_targets);
  csr(counts.domains, counts.machines, parts.domain_offsets, parts.domain_targets);

  parts.ip_offsets.assign(counts.domains + 1, 0);
  for (std::uint64_t d = 0; d < counts.domains; ++d) {
    parts.ip_offsets[d + 1] = parts.ip_offsets[d] + util::decode_varint(p, end);
  }
  util::require_data(parts.ip_offsets.back() == counts.ips,
                     "load_graph_compressed: IP size stream inconsistent with IP count");
  parts.resolved_ips.reserve(counts.ips);
  std::vector<std::uint32_t> run;
  for (std::uint64_t d = 0; d < counts.domains; ++d) {
    const std::size_t size = parts.ip_offsets[d + 1] - parts.ip_offsets[d];
    run.resize(size);
    util::decode_ascending_run(p, end, size, run.data());
    for (const auto value : run) {
      parts.resolved_ips.push_back(dns::IpV4(value));
    }
  }

  const auto labels = [&](std::uint64_t count, std::vector<Label>& out_labels) {
    util::require_data(count <= static_cast<std::uint64_t>(end - p),
                       "load_graph_compressed: truncated label section");
    out_labels.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i) {
      util::require_data(*p <= 2, "load_graph_compressed: malformed label byte");
      out_labels.push_back(static_cast<Label>(*p++));
    }
  };
  labels(counts.machines, parts.machine_labels);
  labels(counts.domains, parts.domain_labels);
  util::require_data(p == end, "load_graph_compressed: trailing bytes after graph");
  return parts;
}

}  // namespace

namespace detail {

PackedGraphcWriter::PackedGraphcWriter(std::ostream& out, const GraphcCounts& counts)
    : out_(&out) {
  write_binary_header(out, GraphcEncoding::kPacked, counts);
  written_ = kHeaderBytes;
  pad8();
}

void PackedGraphcWriter::bytes(const void* data, std::size_t size) {
  if (size == 0) {
    return;
  }
  out_->write(static_cast<const char*>(data), static_cast<std::streamsize>(size));
  written_ += size;
}

void PackedGraphcWriter::pad8() {
  static constexpr char kZeros[8] = {};
  const std::size_t gap = pad8_gap(written_);
  bytes(kZeros, gap);
}

void PackedGraphcWriter::finish() {
  util::require_data(static_cast<bool>(*out_), "save_graph_compressed: write failed");
}

}  // namespace detail

void save_graph_compressed(const GraphView& graph, std::ostream& out,
                           GraphcEncoding encoding) {
  if (encoding == GraphcEncoding::kPacked) {
    save_packed(graph, out);
  } else {
    save_compact(graph, out);
  }
}

void save_graph_compressed(const MachineDomainGraph& graph, std::ostream& out,
                           GraphcEncoding encoding) {
  save_graph_compressed(graph.view(), out, encoding);
}

MachineDomainGraph load_graph_compressed(std::istream& in) {
  const BinaryHeader header = read_binary_header(in);
  GraphParts parts = header.encoding == GraphcEncoding::kPacked
                         ? load_packed(in, header.counts)
                         : load_compact(in, header.counts);

  MachineDomainGraph graph;
  graph.day_ = parts.day;
  graph.machine_names_ = std::move(parts.machine_names);
  graph.domain_names_ = std::move(parts.domain_names);
  graph.e2ld_names_ = std::move(parts.e2ld_names);
  graph.domain_e2ld_ = std::move(parts.domain_e2ld);
  graph.machine_offsets_ = std::move(parts.machine_offsets);
  graph.machine_targets_ = std::move(parts.machine_targets);
  graph.domain_offsets_ = std::move(parts.domain_offsets);
  graph.domain_targets_ = std::move(parts.domain_targets);
  graph.ip_offsets_ = std::move(parts.ip_offsets);
  graph.resolved_ips_ = std::move(parts.resolved_ips);
  graph.machine_labels_ = std::move(parts.machine_labels);
  graph.domain_labels_ = std::move(parts.domain_labels);

  // Same structural checks as load_graph.
  util::require_data(graph.machine_offsets_.size() == graph.machine_names_.size() + 1 &&
                         graph.domain_offsets_.size() == graph.domain_names_.size() + 1 &&
                         graph.ip_offsets_.size() == graph.domain_names_.size() + 1,
                     "load_graph_compressed: offset table size mismatch");
  util::require_data(graph.machine_targets_.size() == graph.domain_targets_.size(),
                     "load_graph_compressed: edge count mismatch between directions");
  util::require_data(graph.domain_e2ld_.size() == graph.domain_names_.size(),
                     "load_graph_compressed: e2LD annotation size mismatch");
  util::require_data(graph.machine_offsets_.empty() ||
                         graph.machine_offsets_.back() == graph.machine_targets_.size(),
                     "load_graph_compressed: machine CSR inconsistent");
  util::require_data(graph.ip_offsets_.empty() ||
                         graph.ip_offsets_.back() == graph.resolved_ips_.size(),
                     "load_graph_compressed: IP CSR inconsistent");
  graph.rebuild_name_index();
  return graph;
}

MappedGraph map_graph(const std::string& path) {
  util::MmapFile file(path);
  const unsigned char* base = file.data();
  const std::size_t size = file.size();
  util::require_data(size >= kHeaderBytes, "map_graph: file too small for a graphc header");
  util::require_data(std::memcmp(base, kTextHeader.data(), kTextHeader.size()) == 0,
                     "map_graph: not a segf1 graphc 1 file");
  const unsigned char* cursor = base + kTextHeader.size();
  util::require_data(cursor[0] == static_cast<std::uint8_t>(GraphcEncoding::kPacked),
                     "map_graph: file is not packed-encoded (re-save with kPacked)");
  util::require_data(cursor[1] == 0 && cursor[2] == 0 && cursor[3] == 0,
                     "map_graph: nonzero reserved header bytes");
  detail::GraphcCounts counts;
  std::memcpy(&counts.day, cursor + 4, 4);
  std::uint64_t fields[8];
  std::memcpy(fields, cursor + 8, sizeof(fields));
  counts.machines = fields[0];
  counts.domains = fields[1];
  counts.e2lds = fields[2];
  counts.edges = fields[3];
  counts.ips = fields[4];
  counts.machine_name_bytes = fields[5];
  counts.domain_name_bytes = fields[6];
  counts.e2ld_name_bytes = fields[7];

  std::size_t position = kHeaderBytes + pad8_gap(kHeaderBytes);
  const auto take = [&](std::size_t section_bytes) {
    util::require_data(section_bytes <= size && position <= size - section_bytes,
                       "map_graph: truncated section");
    const unsigned char* begin = base + position;
    position += section_bytes;
    position += pad8_gap(position);
    return begin;
  };

  const auto name_table = [&](std::uint64_t count, std::uint64_t name_bytes) {
    const auto* offsets = reinterpret_cast<const std::uint64_t*>(
        take((count + 1) * sizeof(std::uint64_t) + name_bytes) );
    const auto* blob = reinterpret_cast<const char*>(offsets + count + 1);
    util::require_data(offsets[0] == 0 && offsets[count] == name_bytes,
                       "map_graph: name offsets inconsistent with blob");
    for (std::uint64_t i = 0; i < count; ++i) {
      util::require_data(offsets[i] <= offsets[i + 1],
                         "map_graph: name offsets not monotone");
    }
    return NameTableView::from_blob(blob, offsets, count);
  };
  const auto machines = name_table(counts.machines, counts.machine_name_bytes);
  const auto domains = name_table(counts.domains, counts.domain_name_bytes);
  const auto e2lds = name_table(counts.e2lds, counts.e2ld_name_bytes);

  const auto* domain_e2ld =
      reinterpret_cast<const E2ldId*>(take(counts.domains * sizeof(E2ldId)));
  const auto offsets_section = [&](std::uint64_t count, std::uint64_t back_value,
                                   const char* what) {
    const auto* offsets =
        reinterpret_cast<const std::uint64_t*>(take((count + 1) * sizeof(std::uint64_t)));
    util::require_data(offsets[0] == 0 && offsets[count] == back_value,
                       std::string("map_graph: ") + what + " offsets inconsistent");
    for (std::uint64_t i = 0; i < count; ++i) {
      util::require_data(offsets[i] <= offsets[i + 1],
                         std::string("map_graph: ") + what + " offsets not monotone");
    }
    return offsets;
  };
  const auto* machine_offsets = offsets_section(counts.machines, counts.edges, "machine");
  const auto* machine_targets =
      reinterpret_cast<const DomainId*>(take(counts.edges * sizeof(DomainId)));
  const auto* domain_offsets = offsets_section(counts.domains, counts.edges, "domain");
  const auto* domain_targets =
      reinterpret_cast<const MachineId*>(take(counts.edges * sizeof(MachineId)));
  const auto* ip_offsets = offsets_section(counts.domains, counts.ips, "IP");
  const auto* resolved_ips =
      reinterpret_cast<const dns::IpV4*>(take(counts.ips * sizeof(dns::IpV4)));
  const auto* machine_labels = reinterpret_cast<const Label*>(take(counts.machines));
  const auto* domain_labels = reinterpret_cast<const Label*>(take(counts.domains));
  util::require_data(position == size, "map_graph: file size inconsistent with header counts");
  for (std::uint64_t d = 0; d < counts.domains; ++d) {
    util::require_data(domain_e2ld[d] < counts.e2lds, "map_graph: e2LD id out of range");
  }
  for (std::uint64_t m = 0; m < counts.machines; ++m) {
    util::require_data(static_cast<unsigned char>(machine_labels[m]) <= 2,
                       "map_graph: malformed label byte");
  }
  for (std::uint64_t d = 0; d < counts.domains; ++d) {
    util::require_data(static_cast<unsigned char>(domain_labels[d]) <= 2,
                       "map_graph: malformed label byte");
  }

  GraphView view = make_packed_view(
      counts.day, machines, domains, e2lds, {domain_e2ld, counts.domains},
      {machine_offsets, counts.machines + 1}, {machine_targets, counts.edges},
      {domain_offsets, counts.domains + 1}, {domain_targets, counts.edges},
      {ip_offsets, counts.domains + 1}, {resolved_ips, counts.ips},
      {machine_labels, counts.machines}, {domain_labels, counts.domains});
  return MappedGraph{std::move(file), view};
}

}  // namespace seg::graph
