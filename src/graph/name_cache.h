// Carried domain-name dictionary for streaming multi-day graph builds.
//
// Re-validating, normalizing, and PSL-annotating every domain name from
// scratch each day is wasted work in an online deployment: the bulk of a
// day's distinct names were already seen the day before (ROADMAP "streaming
// multi-day builds"). The cache memoizes, per raw query name, the three
// derived facts the builder needs — validity, the normalized form, and the
// effective 2LD — sharded by name hash so the post-build merge of a day's
// new names runs in parallel.
//
// The cache deliberately stores *no ids*: per-day graph ids must follow
// that day's first-occurrence order to stay bit-identical to a from-scratch
// build (the determinism contract in docs/streaming.md), so the builder
// interns ids per day and only the derived name facts carry over.
//
// Thread safety: find() is safe to call concurrently with other find()
// calls (the scan phase); merge() must run exclusively (the builder calls
// it between the scan and assemble phases).
#pragma once

#include <cstdint>
#include <deque>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "graph/graph.h"

namespace seg::graph {

/// Dictionary reuse counters for one streamed build.
struct CarryStats {
  std::size_t distinct_domains = 0;  ///< distinct valid domain names in the build
  std::size_t new_names = 0;         ///< of those, not served from the carried cache
  std::size_t cached_names = 0;      ///< cache keys after the day's merge
  /// Fraction of the day's distinct domain names whose derived facts came
  /// from the carried dictionary.
  double reuse_ratio() const {
    return distinct_domains > 0
               ? 1.0 - static_cast<double>(new_names) / static_cast<double>(distinct_domains)
               : 0.0;
  }
};

class NameCache {
 public:
  /// `num_shards` only controls merge parallelism, never lookup results;
  /// the default spreads a day's new names across typical core counts.
  explicit NameCache(std::size_t num_shards = 64);

  struct Entry {
    std::string normalized;  ///< empty when !valid
    std::string e2ld;        ///< psl e2ld_or_self(normalized); empty when !valid
    bool valid = false;
  };

  /// Derived facts for a raw query name, or nullptr when never seen.
  /// The returned pointer stays valid for the cache's lifetime.
  const Entry* find(std::string_view name) const;

  /// One name discovered during a build's scan phase (facts computed by the
  /// discovering shard).
  struct NewName {
    std::string raw;
    std::string normalized;
    std::string e2ld;
    bool valid = false;
  };

  /// Merges per-source new-name lists into the cache: every name is keyed
  /// by its raw spelling and, when valid, also by its normalized form (so
  /// assemble-phase lookups by normalized name always hit). Duplicate keys
  /// across sources collapse on first insertion, scanning sources in order.
  /// Returns the number of distinct valid normalized names newly added.
  std::size_t merge(const std::vector<std::vector<NewName>>& per_source);

  /// Total stored keys (raw spellings plus normalized aliases).
  std::size_t size() const;

  /// Writes the dictionary as a `segf1 namecache 1` text stream. Keys are
  /// emitted in sorted order, so the bytes are identical for any shard
  /// count and any merge history that produced the same key set. Keys and
  /// facts are percent-escaped, so raw spellings containing whitespace
  /// round-trip.
  void save(std::ostream& out) const;

  /// Reads a stream written by save() into a fresh cache with `num_shards`
  /// shards (shard count affects merge parallelism only, never lookups, so
  /// it is a load-time choice rather than part of the format). There are no
  /// legacy headerless namecache files: a stream without the segf1 header
  /// throws util::ParseError.
  static NameCache load(std::istream& in, std::size_t num_shards = 64);

 private:
  struct Shard {
    StringIdMap<std::uint32_t> ids;  // key -> index into entries
    std::deque<Entry> entries;       // deque: stable Entry addresses
  };

  std::size_t shard_of(std::string_view name) const;

  std::vector<Shard> shards_;
};

}  // namespace seg::graph
