#include "graph/pruning.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>

#include "graph/graph_view.h"
#include "util/obs/trace.h"
#include "util/parallel.h"
#include "util/require.h"

namespace seg::graph {

// Builds the pruned copy given per-node keep masks (0/1 bytes so chunks can
// be written concurrently). Edges survive when both endpoints survive;
// annotations and labels are carried over; e2LD ids are re-interned so the
// pruned graph has no orphan e2LD entries.
//
// Every parallel pass below writes to disjoint index ranges determined only
// by the input graph and the masks, so the output is identical for every
// thread count.
MachineDomainGraph prune_impl(const GraphView& graph,
                              const std::vector<std::uint8_t>& keep_machine,
                              const std::vector<std::uint8_t>& keep_domain) {
  MachineDomainGraph out;
  out.day_ = graph.day();

  const std::size_t old_nm = graph.machine_count();
  const std::size_t old_nd = graph.domain_count();

  // Dense new ids by exclusive scan over the keep masks.
  std::vector<MachineId> machine_map(old_nm, static_cast<MachineId>(old_nm));
  std::vector<DomainId> domain_map(old_nd, static_cast<DomainId>(old_nd));
  std::size_t nm = 0;
  for (MachineId m = 0; m < old_nm; ++m) {
    if (keep_machine[m] != 0) {
      machine_map[m] = static_cast<MachineId>(nm++);
    }
  }
  std::size_t nd = 0;
  for (DomainId d = 0; d < old_nd; ++d) {
    if (keep_domain[d] != 0) {
      domain_map[d] = static_cast<DomainId>(nd++);
    }
  }

  // Names and labels (parallel: each surviving node owns one output slot).
  out.machine_names_.resize(nm);
  out.machine_labels_.resize(nm);
  util::parallel_for(old_nm, [&](std::size_t m) {
    if (keep_machine[m] != 0) {
      out.machine_names_[machine_map[m]] = std::string(graph.machine_name(static_cast<MachineId>(m)));
      out.machine_labels_[machine_map[m]] = graph.machine_label(static_cast<MachineId>(m));
    }
  });
  out.domain_names_.resize(nd);
  out.domain_labels_.resize(nd);
  util::parallel_for(old_nd, [&](std::size_t d) {
    if (keep_domain[d] != 0) {
      out.domain_names_[domain_map[d]] = std::string(graph.domain_name(static_cast<DomainId>(d)));
      out.domain_labels_[domain_map[d]] = graph.domain_label(static_cast<DomainId>(d));
    }
  });

  // e2LD re-interning stays a serial in-order pass (ids are assigned by
  // first occurrence among surviving domains).
  StringIdMap<E2ldId> e2ld_ids;
  out.domain_e2ld_.reserve(nd);
  for (DomainId d = 0; d < old_nd; ++d) {
    if (keep_domain[d] == 0) {
      continue;
    }
    const std::string e2ld(graph.e2ld_name(graph.domain_e2ld(d)));
    if (const auto it = e2ld_ids.find(e2ld); it != e2ld_ids.end()) {
      out.domain_e2ld_.push_back(it->second);
    } else {
      const auto id = static_cast<E2ldId>(out.e2ld_names_.size());
      out.e2ld_names_.push_back(e2ld);
      e2ld_ids.emplace(e2ld, id);
      out.domain_e2ld_.push_back(id);
    }
  }

  // Surviving-edge counts per endpoint (each node's count is its own slot).
  out.machine_offsets_.assign(nm + 1, 0);
  util::parallel_for(old_nm, [&](std::size_t m) {
    if (keep_machine[m] == 0) {
      return;
    }
    std::uint64_t count = 0;
    for (const auto d : graph.domains_of(static_cast<MachineId>(m))) {
      count += keep_domain[d] != 0 ? 1 : 0;
    }
    out.machine_offsets_[machine_map[m] + 1] = count;
  });
  out.domain_offsets_.assign(nd + 1, 0);
  util::parallel_for(old_nd, [&](std::size_t d) {
    if (keep_domain[d] == 0) {
      return;
    }
    std::uint64_t count = 0;
    for (const auto m : graph.machines_of(static_cast<DomainId>(d))) {
      count += keep_machine[m] != 0 ? 1 : 0;
    }
    out.domain_offsets_[domain_map[d] + 1] = count;
  });
  for (std::size_t i = 1; i <= nm; ++i) {
    out.machine_offsets_[i] += out.machine_offsets_[i - 1];
  }
  for (std::size_t i = 1; i <= nd; ++i) {
    out.domain_offsets_[i] += out.domain_offsets_[i - 1];
  }

  // CSR fills: every surviving node writes its own contiguous slice. Source
  // adjacency is ascending by id and the id remap is monotonic, so slices
  // come out ascending exactly as the serial counting sort produced them.
  out.machine_targets_.resize(out.machine_offsets_.back());
  util::parallel_for(old_nm, [&](std::size_t m) {
    if (keep_machine[m] == 0) {
      return;
    }
    auto cursor = out.machine_offsets_[machine_map[m]];
    for (const auto d : graph.domains_of(static_cast<MachineId>(m))) {
      if (keep_domain[d] != 0) {
        out.machine_targets_[cursor++] = domain_map[d];
      }
    }
  });
  out.domain_targets_.resize(out.domain_offsets_.back());
  util::parallel_for(old_nd, [&](std::size_t d) {
    if (keep_domain[d] == 0) {
      return;
    }
    auto cursor = out.domain_offsets_[domain_map[d]];
    for (const auto m : graph.machines_of(static_cast<DomainId>(d))) {
      if (keep_machine[m] != 0) {
        out.domain_targets_[cursor++] = machine_map[m];
      }
    }
  });

  // Resolved-IP annotations.
  out.ip_offsets_.assign(nd + 1, 0);
  util::parallel_for(old_nd, [&](std::size_t d) {
    if (keep_domain[d] != 0) {
      out.ip_offsets_[domain_map[d] + 1] = graph.resolved_ips(static_cast<DomainId>(d)).size();
    }
  });
  for (std::size_t i = 1; i <= nd; ++i) {
    out.ip_offsets_[i] += out.ip_offsets_[i - 1];
  }
  out.resolved_ips_.resize(out.ip_offsets_.back());
  util::parallel_for(old_nd, [&](std::size_t d) {
    if (keep_domain[d] == 0) {
      return;
    }
    const auto ips = graph.resolved_ips(static_cast<DomainId>(d));
    std::copy(ips.begin(), ips.end(),
              out.resolved_ips_.begin() +
                  static_cast<std::ptrdiff_t>(out.ip_offsets_[domain_map[d]]));
  });

  out.rebuild_name_index();
  return out;
}

MachineDomainGraph prune(const GraphView& graph, const PruningConfig& config,
                         PruneStats* stats) {
  util::require(config.proxy_degree_percentile > 0.0 && config.proxy_degree_percentile <= 1.0,
                "prune: proxy_degree_percentile must be in (0, 1]");
  util::require(config.popular_e2ld_fraction > 0.0 && config.popular_e2ld_fraction <= 1.0,
                "prune: popular_e2ld_fraction must be in (0, 1]");

  PruneStats local;
  PruneStats& s = stats != nullptr ? *stats : local;
  s = PruneStats{};
  s.machines_before = graph.machine_count();
  s.domains_before = graph.domain_count();
  s.edges_before = graph.edge_count();

  const std::size_t nm = graph.machine_count();
  const std::size_t nd = graph.domain_count();

  // --- R2 threshold: theta_d = percentile of the machine-degree
  // distribution.
  obs::Span machine_span("prepare/prune/R1R2");
  std::vector<std::uint64_t> degrees(nm);
  util::parallel_for(nm, [&](std::size_t m) {
    degrees[m] = graph.domains_of(static_cast<MachineId>(m)).size();
  });
  std::uint64_t theta_d = std::numeric_limits<std::uint64_t>::max();
  if (!degrees.empty()) {
    std::vector<std::uint64_t> sorted = degrees;
    std::sort(sorted.begin(), sorted.end());
    const auto rank = static_cast<std::size_t>(
        std::ceil(config.proxy_degree_percentile * static_cast<double>(sorted.size())));
    const std::size_t index = rank == 0 ? 0 : rank - 1;
    theta_d = sorted[std::min(index, sorted.size() - 1)];
    // Guard against degenerate distributions where the percentile lands in
    // ordinary-degree territory: R2 targets extreme outliers only.
    theta_d = std::max<std::uint64_t>(theta_d, config.inactive_machine_max_degree + 2);
  }
  s.theta_d = theta_d;

  // --- R1 + R2: machine keep mask. Per-chunk counters are reduced in chunk
  // order; the totals are partition-independent.
  struct MachineChunkStats {
    std::size_t removed_r1 = 0;
    std::size_t removed_r2 = 0;
    std::size_t kept_by_exception = 0;
  };
  std::vector<std::uint8_t> keep_machine(nm, 1);
  std::vector<MachineChunkStats> machine_chunks(util::default_chunk_count(nm));
  util::parallel_chunks(nm, machine_chunks.size(),
                        [&](std::size_t chunk, std::size_t begin, std::size_t end) {
    auto& acc = machine_chunks[chunk];
    for (std::size_t i = begin; i < end; ++i) {
      const auto m = static_cast<MachineId>(i);
      const bool is_malware = graph.machine_label(m) == Label::kMalware;
      if (degrees[m] <= config.inactive_machine_max_degree) {
        if (is_malware) {
          ++acc.kept_by_exception;  // R1 exception
        } else {
          keep_machine[m] = 0;
          ++acc.removed_r1;
          continue;
        }
      }
      if (degrees[m] > theta_d) {
        // No exception for R2: proxy-like nodes are noise even when they
        // touch blacklisted names. (theta_d > inactive_machine_max_degree,
        // so R1-excepted malware machines can never land here.) The
        // comparison is strict: theta_d is the largest degree still inside
        // the percentile, so only outliers beyond it are proxies. This keeps
        // the rule a no-op on graphs whose degree distribution is flat.
        keep_machine[m] = 0;
        ++acc.removed_r2;
      }
    }
  });
  for (const auto& acc : machine_chunks) {
    s.machines_removed_r1 += acc.removed_r1;
    s.machines_removed_r2 += acc.removed_r2;
    s.malware_machines_kept_by_exception += acc.kept_by_exception;
  }
  machine_span.close();

  // --- Domain degrees over surviving machines.
  obs::Span domain_span("prepare/prune/R3R4");
  std::vector<std::uint64_t> domain_degree(nd, 0);
  util::parallel_for(nd, [&](std::size_t i) {
    const auto d = static_cast<DomainId>(i);
    std::uint64_t degree = 0;
    for (const auto m : graph.machines_of(d)) {
      degree += keep_machine[m] != 0 ? 1 : 0;
    }
    domain_degree[d] = degree;
  });

  // --- R4 threshold and per-e2LD distinct machine counts.
  const auto theta_m = static_cast<std::uint64_t>(
      std::ceil(config.popular_e2ld_fraction * static_cast<double>(graph.machine_count())));
  s.theta_m = theta_m;

  // Group domains by e2LD, then count distinct surviving machines per group
  // using a last-seen stamp per machine. Each chunk of e2LDs carries its own
  // stamp array, so chunks run concurrently and every e2LD's count is
  // computed exactly as in the serial pass (O(edges) overall per chunk set).
  std::vector<std::vector<DomainId>> by_e2ld(graph.e2ld_count());
  for (DomainId d = 0; d < nd; ++d) {
    by_e2ld[graph.domain_e2ld(d)].push_back(d);
  }
  std::vector<std::uint64_t> e2ld_machines(graph.e2ld_count(), 0);
  util::parallel_chunks(graph.e2ld_count(), 0,
                        [&](std::size_t, std::size_t begin, std::size_t end) {
    std::vector<std::uint32_t> stamp(nm, 0xffffffffu);
    for (std::size_t e = begin; e < end; ++e) {
      std::uint64_t count = 0;
      for (const auto d : by_e2ld[e]) {
        for (const auto m : graph.machines_of(d)) {
          if (keep_machine[m] != 0 && stamp[m] != e) {
            stamp[m] = static_cast<std::uint32_t>(e);
            ++count;
          }
        }
      }
      e2ld_machines[e] = count;
    }
  });

  // --- R3 + R4: domain keep mask.
  struct DomainChunkStats {
    std::size_t removed_r3 = 0;
    std::size_t removed_r4 = 0;
    std::size_t kept_by_exception = 0;
  };
  std::vector<std::uint8_t> keep_domain(nd, 1);
  std::vector<DomainChunkStats> domain_chunks(util::default_chunk_count(nd));
  util::parallel_chunks(nd, domain_chunks.size(),
                        [&](std::size_t chunk, std::size_t begin, std::size_t end) {
    auto& acc = domain_chunks[chunk];
    for (std::size_t i = begin; i < end; ++i) {
      const auto d = static_cast<DomainId>(i);
      const bool is_malware = graph.domain_label(d) == Label::kMalware;
      if (e2ld_machines[graph.domain_e2ld(d)] >= theta_m) {
        keep_domain[d] = 0;  // R4: no exception
        ++acc.removed_r4;
        continue;
      }
      if (domain_degree[d] < config.min_domain_machines) {
        if (is_malware && domain_degree[d] > 0) {
          ++acc.kept_by_exception;  // R3 exception
        } else {
          keep_domain[d] = 0;
          ++acc.removed_r3;
        }
      }
    }
  });
  for (const auto& acc : domain_chunks) {
    s.domains_removed_r3 += acc.removed_r3;
    s.domains_removed_r4 += acc.removed_r4;
    s.malware_domains_kept_by_exception += acc.kept_by_exception;
  }
  domain_span.close();

  SEG_SPAN("prepare/prune/compact");
  MachineDomainGraph out = prune_impl(graph, keep_machine, keep_domain);
  s.machines_after = out.machine_count();
  s.domains_after = out.domain_count();
  s.edges_after = out.edge_count();
  return out;
}

MachineDomainGraph prune(const MachineDomainGraph& graph, const PruningConfig& config,
                         PruneStats* stats) {
  return prune(graph.view(), config, stats);
}

}  // namespace seg::graph
