#include "graph/pruning.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <unordered_map>

#include "util/require.h"

namespace seg::graph {

// Builds the pruned copy given per-node keep masks. Edges survive when both
// endpoints survive; annotations and labels are carried over; e2LD ids are
// re-interned so the pruned graph has no orphan e2LD entries.
MachineDomainGraph prune_impl(const MachineDomainGraph& graph,
                              const std::vector<bool>& keep_machine,
                              const std::vector<bool>& keep_domain) {
  MachineDomainGraph out;
  out.day_ = graph.day_;

  std::vector<MachineId> machine_map(graph.machine_count(),
                                     static_cast<MachineId>(graph.machine_count()));
  std::vector<DomainId> domain_map(graph.domain_count(),
                                   static_cast<DomainId>(graph.domain_count()));

  for (MachineId m = 0; m < graph.machine_count(); ++m) {
    if (keep_machine[m]) {
      machine_map[m] = static_cast<MachineId>(out.machine_names_.size());
      out.machine_names_.emplace_back(graph.machine_name(m));
      out.machine_labels_.push_back(graph.machine_label(m));
    }
  }

  std::unordered_map<std::string, E2ldId> e2ld_ids;
  for (DomainId d = 0; d < graph.domain_count(); ++d) {
    if (!keep_domain[d]) {
      continue;
    }
    domain_map[d] = static_cast<DomainId>(out.domain_names_.size());
    out.domain_names_.emplace_back(graph.domain_name(d));
    out.domain_labels_.push_back(graph.domain_label(d));
    const std::string e2ld(graph.e2ld_name(graph.domain_e2ld(d)));
    if (const auto it = e2ld_ids.find(e2ld); it != e2ld_ids.end()) {
      out.domain_e2ld_.push_back(it->second);
    } else {
      const auto id = static_cast<E2ldId>(out.e2ld_names_.size());
      out.e2ld_names_.push_back(e2ld);
      e2ld_ids.emplace(e2ld, id);
      out.domain_e2ld_.push_back(id);
    }
  }

  // Surviving edges, machine-major (the source CSR is already sorted).
  const std::size_t nm = out.machine_names_.size();
  const std::size_t nd = out.domain_names_.size();
  out.machine_offsets_.assign(nm + 1, 0);
  out.domain_offsets_.assign(nd + 1, 0);
  for (MachineId m = 0; m < graph.machine_count(); ++m) {
    if (!keep_machine[m]) {
      continue;
    }
    for (const auto d : graph.domains_of(m)) {
      if (keep_domain[d]) {
        ++out.machine_offsets_[machine_map[m] + 1];
        ++out.domain_offsets_[domain_map[d] + 1];
      }
    }
  }
  for (std::size_t i = 1; i <= nm; ++i) {
    out.machine_offsets_[i] += out.machine_offsets_[i - 1];
  }
  for (std::size_t i = 1; i <= nd; ++i) {
    out.domain_offsets_[i] += out.domain_offsets_[i - 1];
  }
  out.machine_targets_.resize(out.machine_offsets_.back());
  out.domain_targets_.resize(out.domain_offsets_.back());
  {
    std::vector<std::uint64_t> mcur(out.machine_offsets_.begin(), out.machine_offsets_.end() - 1);
    std::vector<std::uint64_t> dcur(out.domain_offsets_.begin(), out.domain_offsets_.end() - 1);
    for (MachineId m = 0; m < graph.machine_count(); ++m) {
      if (!keep_machine[m]) {
        continue;
      }
      const auto new_m = machine_map[m];
      for (const auto d : graph.domains_of(m)) {
        if (keep_domain[d]) {
          const auto new_d = domain_map[d];
          out.machine_targets_[mcur[new_m]++] = new_d;
          out.domain_targets_[dcur[new_d]++] = new_m;
        }
      }
    }
  }

  // Resolved-IP annotations.
  out.ip_offsets_.assign(nd + 1, 0);
  for (DomainId d = 0; d < graph.domain_count(); ++d) {
    if (keep_domain[d]) {
      out.ip_offsets_[domain_map[d] + 1] = graph.resolved_ips(d).size();
    }
  }
  for (std::size_t i = 1; i <= nd; ++i) {
    out.ip_offsets_[i] += out.ip_offsets_[i - 1];
  }
  out.resolved_ips_.reserve(out.ip_offsets_.back());
  for (DomainId d = 0; d < graph.domain_count(); ++d) {
    if (keep_domain[d]) {
      const auto ips = graph.resolved_ips(d);
      out.resolved_ips_.insert(out.resolved_ips_.end(), ips.begin(), ips.end());
    }
  }
  return out;
}

MachineDomainGraph prune(const MachineDomainGraph& graph, const PruningConfig& config,
                         PruneStats* stats) {
  util::require(config.proxy_degree_percentile > 0.0 && config.proxy_degree_percentile <= 1.0,
                "prune: proxy_degree_percentile must be in (0, 1]");
  util::require(config.popular_e2ld_fraction > 0.0 && config.popular_e2ld_fraction <= 1.0,
                "prune: popular_e2ld_fraction must be in (0, 1]");

  PruneStats local;
  PruneStats& s = stats != nullptr ? *stats : local;
  s = PruneStats{};
  s.machines_before = graph.machine_count();
  s.domains_before = graph.domain_count();
  s.edges_before = graph.edge_count();

  // --- R2 threshold: theta_d = percentile of the machine-degree
  // distribution.
  std::vector<std::uint64_t> degrees(graph.machine_count());
  for (MachineId m = 0; m < graph.machine_count(); ++m) {
    degrees[m] = graph.domains_of(m).size();
  }
  std::uint64_t theta_d = std::numeric_limits<std::uint64_t>::max();
  if (!degrees.empty()) {
    std::vector<std::uint64_t> sorted = degrees;
    std::sort(sorted.begin(), sorted.end());
    const auto rank = static_cast<std::size_t>(
        std::ceil(config.proxy_degree_percentile * static_cast<double>(sorted.size())));
    const std::size_t index = rank == 0 ? 0 : rank - 1;
    theta_d = sorted[std::min(index, sorted.size() - 1)];
    // Guard against degenerate distributions where the percentile lands in
    // ordinary-degree territory: R2 targets extreme outliers only.
    theta_d = std::max<std::uint64_t>(theta_d, config.inactive_machine_max_degree + 2);
  }
  s.theta_d = theta_d;

  // --- R1 + R2: machine keep mask.
  std::vector<bool> keep_machine(graph.machine_count(), true);
  for (MachineId m = 0; m < graph.machine_count(); ++m) {
    const bool is_malware = graph.machine_label(m) == Label::kMalware;
    if (degrees[m] <= config.inactive_machine_max_degree) {
      if (is_malware) {
        ++s.malware_machines_kept_by_exception;  // R1 exception
      } else {
        keep_machine[m] = false;
        ++s.machines_removed_r1;
        continue;
      }
    }
    if (degrees[m] > theta_d) {
      // No exception for R2: proxy-like nodes are noise even when they
      // touch blacklisted names. (theta_d > inactive_machine_max_degree,
      // so R1-excepted malware machines can never land here.) The
      // comparison is strict: theta_d is the largest degree still inside
      // the percentile, so only outliers beyond it are proxies. This keeps
      // the rule a no-op on graphs whose degree distribution is flat.
      keep_machine[m] = false;
      ++s.machines_removed_r2;
    }
  }

  // --- Domain degrees over surviving machines.
  std::vector<std::uint64_t> domain_degree(graph.domain_count(), 0);
  for (DomainId d = 0; d < graph.domain_count(); ++d) {
    for (const auto m : graph.machines_of(d)) {
      domain_degree[d] += keep_machine[m] ? 1 : 0;
    }
  }

  // --- R4 threshold and per-e2LD distinct machine counts.
  const auto theta_m = static_cast<std::uint64_t>(
      std::ceil(config.popular_e2ld_fraction * static_cast<double>(graph.machine_count())));
  s.theta_m = theta_m;

  // Group domains by e2LD, then count distinct surviving machines per group
  // using a last-seen stamp per machine (O(edges) overall).
  std::vector<std::vector<DomainId>> by_e2ld(graph.e2ld_count());
  for (DomainId d = 0; d < graph.domain_count(); ++d) {
    by_e2ld[graph.domain_e2ld(d)].push_back(d);
  }
  std::vector<std::uint64_t> e2ld_machines(graph.e2ld_count(), 0);
  {
    std::vector<std::uint32_t> stamp(graph.machine_count(), 0xffffffffu);
    for (E2ldId e = 0; e < graph.e2ld_count(); ++e) {
      std::uint64_t count = 0;
      for (const auto d : by_e2ld[e]) {
        for (const auto m : graph.machines_of(d)) {
          if (keep_machine[m] && stamp[m] != e) {
            stamp[m] = e;
            ++count;
          }
        }
      }
      e2ld_machines[e] = count;
    }
  }

  // --- R3 + R4: domain keep mask.
  std::vector<bool> keep_domain(graph.domain_count(), true);
  for (DomainId d = 0; d < graph.domain_count(); ++d) {
    const bool is_malware = graph.domain_label(d) == Label::kMalware;
    if (e2ld_machines[graph.domain_e2ld(d)] >= theta_m) {
      keep_domain[d] = false;  // R4: no exception
      ++s.domains_removed_r4;
      continue;
    }
    if (domain_degree[d] < config.min_domain_machines) {
      if (is_malware && domain_degree[d] > 0) {
        ++s.malware_domains_kept_by_exception;  // R3 exception
      } else {
        keep_domain[d] = false;
        ++s.domains_removed_r3;
      }
    }
  }

  MachineDomainGraph out = prune_impl(graph, keep_machine, keep_domain);
  s.machines_after = out.machine_count();
  s.domains_after = out.domain_count();
  s.edges_after = out.edge_count();
  return out;
}

}  // namespace seg::graph
