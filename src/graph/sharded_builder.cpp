#include "graph/sharded_builder.h"

#include <algorithm>
#include <string>
#include <utility>

#include "dns/domain_name.h"
#include "graph/intern.h"
#include "util/obs/metrics.h"
#include "util/obs/trace.h"
#include "util/parallel.h"

namespace seg::graph {

namespace {

// Shard-local accumulation state. Ids are local to the shard; the merge
// phase remaps them to global first-occurrence ids.
struct Shard {
  StringIdMap<MachineId> machine_ids;
  StringIdMap<DomainId> domain_ids;
  std::vector<std::string> machine_names;  // local-id order
  std::vector<std::string> domain_names;   // local-id order
  std::vector<std::pair<MachineId, DomainId>> edges;  // local ids
  std::vector<std::vector<dns::IpV4>> domain_ips;     // by local domain id
  std::size_t skipped = 0;

  // Streaming mode: the carried dictionary (read-only during the scan) and
  // the raw names this shard saw for the first time, with their computed
  // facts. new_name_keys maps raw spellings to new_names indices so repeat
  // occurrences within the shard reuse the facts instead of recomputing.
  const NameCache* cache = nullptr;
  const dns::PublicSuffixList* psl = nullptr;
  std::vector<NameCache::NewName> new_names;
  StringIdMap<std::uint32_t> new_name_keys;

  // Mirrors GraphBuilder::add_query, with shard-local interning.
  void add_query(std::string_view machine, std::string_view qname,
                 std::span<const dns::IpV4> ips) {
    std::string normalized_storage;
    std::string_view normalized = qname;
    bool valid = false;
    if (cache != nullptr) {
      if (const auto* entry = cache->find(qname); entry != nullptr) {
        valid = entry->valid;
        normalized = entry->normalized;
      } else if (const auto it = new_name_keys.find(qname); it != new_name_keys.end()) {
        const auto& fresh = new_names[it->second];
        valid = fresh.valid;
        normalized = fresh.normalized;  // consumed before new_names mutates
      } else {
        valid = dns::DomainName::is_valid(qname);
        NameCache::NewName fresh;
        fresh.raw = std::string(qname);
        fresh.valid = valid;
        if (valid) {
          if (!dns::DomainName::is_normalized(qname)) {
            normalized_storage = dns::DomainName::parse(qname).str();
            normalized = normalized_storage;
          }
          fresh.normalized = std::string(normalized);
          fresh.e2ld = std::string(psl->e2ld_or_self(normalized));
        }
        new_name_keys.emplace(fresh.raw, static_cast<std::uint32_t>(new_names.size()));
        new_names.push_back(std::move(fresh));
        normalized = new_names.back().normalized;
      }
      if (!valid || machine.empty()) {
        ++skipped;
        return;
      }
    } else {
      if (!dns::DomainName::is_valid(qname) || machine.empty()) {
        ++skipped;
        return;
      }
      if (!dns::DomainName::is_normalized(qname)) {
        normalized_storage = dns::DomainName::parse(qname).str();
        normalized = normalized_storage;
      }
    }

    MachineId m;
    if (const auto it = machine_ids.find(machine); it != machine_ids.end()) {
      m = it->second;
    } else {
      m = static_cast<MachineId>(machine_names.size());
      machine_names.emplace_back(machine);
      machine_ids.emplace(machine_names.back(), m);
    }

    DomainId d;
    if (const auto it = domain_ids.find(normalized); it != domain_ids.end()) {
      d = it->second;
    } else {
      d = static_cast<DomainId>(domain_names.size());
      domain_names.emplace_back(normalized);
      domain_ids.emplace(domain_names.back(), d);
      domain_ips.emplace_back();
    }

    edges.emplace_back(m, d);
    auto& ip_set = domain_ips[d];
    for (const auto ip : ips) {
      if (std::find(ip_set.begin(), ip_set.end(), ip) == ip_set.end()) {
        ip_set.push_back(ip);
      }
    }
  }
};

// Sorts `values` by sorting each [bounds[i], bounds[i+1]) slice in parallel
// and then merging adjacent slices pairwise (log2(slices) parallel rounds).
// bounds must be ascending with front()==0 and back()==values.size().
template <typename T>
void parallel_slice_sort(std::vector<T>& values, const std::vector<std::size_t>& bounds) {
  const std::size_t slices = bounds.size() - 1;
  util::parallel_for(slices, [&](std::size_t s) {
    std::sort(values.begin() + static_cast<std::ptrdiff_t>(bounds[s]),
              values.begin() + static_cast<std::ptrdiff_t>(bounds[s + 1]));
  });
  for (std::size_t width = 1; width < slices; width *= 2) {
    const std::size_t stride = 2 * width;
    const std::size_t pairs = (slices + stride - 1) / stride;
    util::parallel_for(pairs, [&](std::size_t p) {
      const std::size_t left = p * stride;
      const std::size_t mid = left + width;
      if (mid >= slices) {
        return;  // odd tail, nothing to merge this round
      }
      const std::size_t right = std::min(left + stride, slices);
      std::inplace_merge(values.begin() + static_cast<std::ptrdiff_t>(bounds[left]),
                         values.begin() + static_cast<std::ptrdiff_t>(bounds[mid]),
                         values.begin() + static_cast<std::ptrdiff_t>(bounds[right]));
    });
  }
}

// Boundaries of `slices` near-equal contiguous ranges over [0, n).
std::vector<std::size_t> slice_bounds(std::size_t n, std::size_t slices) {
  slices = std::max<std::size_t>(1, std::min(slices, std::max<std::size_t>(1, n)));
  std::vector<std::size_t> bounds(slices + 1, 0);
  const std::size_t per = (n + slices - 1) / slices;
  for (std::size_t i = 1; i <= slices; ++i) {
    bounds[i] = std::min(n, i * per);
  }
  return bounds;
}

}  // namespace

ShardedGraphBuilder::ShardedGraphBuilder(const dns::PublicSuffixList& psl,
                                         std::size_t num_shards)
    : psl_(&psl), num_shards_(num_shards) {}

ShardedGraphBuilder::ShardedGraphBuilder(const dns::PublicSuffixList& psl, NameCache& cache,
                                         std::size_t num_shards)
    : psl_(&psl), cache_(&cache), num_shards_(num_shards) {}

void ShardedGraphBuilder::add_trace(const dns::DayTrace& trace) {
  day_ = std::max(day_, trace.day);
  if (!trace.records.empty()) {
    segments_.emplace_back(trace.records);
  }
}

MachineDomainGraph ShardedGraphBuilder::build() {
  SEG_SPAN("build");
  timings_ = BuildTimings{};
  carry_ = CarryStats{};
  skipped_ = 0;

  // Segment prefix offsets give every record a global stream index; shards
  // are contiguous ranges of that index space, so concatenating shard-local
  // first-occurrence orders in shard order reproduces the serial scan.
  std::vector<std::size_t> segment_start(segments_.size() + 1, 0);
  for (std::size_t s = 0; s < segments_.size(); ++s) {
    segment_start[s + 1] = segment_start[s] + segments_[s].size();
  }
  const std::size_t total = segment_start.back();
  timings_.records = total;

  std::size_t shards = num_shards_ != 0 ? num_shards_ : util::parallelism();
  shards = std::max<std::size_t>(1, std::min(shards, std::max<std::size_t>(1, total)));

  // --- Phase 1: parallel shard scan.
  obs::Span scan_span("build/scan");
  std::vector<Shard> shard_state(shards);
  const std::size_t per_shard = (total + shards - 1) / shards;
  util::parallel_for(shards, [&](std::size_t s) {
    auto& shard = shard_state[s];
    shard.cache = cache_;
    shard.psl = psl_;
    const std::size_t lo = std::min(total, s * per_shard);
    const std::size_t hi = std::min(total, lo + per_shard);
    if (lo >= hi) {
      return;
    }
    // Locate the segment containing `lo`, then walk forward.
    std::size_t seg = static_cast<std::size_t>(
        std::upper_bound(segment_start.begin(), segment_start.end(), lo) -
        segment_start.begin()) - 1;
    std::size_t index = lo - segment_start[seg];
    for (std::size_t i = lo; i < hi; ++i) {
      while (index >= segments_[seg].size()) {
        ++seg;
        index = 0;
      }
      const auto& record = segments_[seg][index++];
      shard.add_query(record.machine, record.qname, record.resolved_ips);
    }
  });
  timings_.shard_scan_seconds = scan_span.close();

  // Per-shard load observations feed the imbalance histograms surfaced in
  // the run report and BENCH_pipeline.json's "obs" section.
  {
    auto& registry = obs::Registry::instance();
    auto& edge_hist =
        registry.histogram("seg_build_shard_edges", obs::exponential_bounds(64, 4.0, 12));
    auto& intern_hist = registry.histogram("seg_build_shard_interned_names",
                                           obs::exponential_bounds(64, 4.0, 12));
    for (const auto& shard : shard_state) {
      edge_hist.observe(static_cast<double>(shard.edges.size()));
      intern_hist.observe(
          static_cast<double>(shard.machine_names.size() + shard.domain_names.size()));
    }
  }

  obs::Span merge_span("build/merge");

  // --- Phase 1.5 (streaming only): merge the day's new names into the
  // carried dictionary so assemble-phase lookups by normalized name always
  // hit. Scan workers only read the cache; this is the sole write point.
  if (cache_ != nullptr) {
    std::vector<std::vector<NameCache::NewName>> new_names(shards);
    for (std::size_t s = 0; s < shards; ++s) {
      new_names[s] = std::move(shard_state[s].new_names);
      shard_state[s].new_name_keys.clear();
    }
    carry_.new_names = cache_->merge(new_names);
    carry_.cached_names = cache_->size();
  }

  // --- Phase 2: merge shard dictionaries into global first-occurrence ids.
  MachineDomainGraph graph;
  graph.day_ = day_;
  std::vector<std::vector<MachineId>> machine_remap(shards);
  std::vector<std::vector<DomainId>> domain_remap(shards);
  std::vector<std::vector<dns::IpV4>> domain_ips;  // by global domain id

  // Size the global dictionaries from the scan-phase shard counts. The sums
  // over-count names shared across shards, but they bound the final sizes,
  // so the merge loop never reallocates the name vectors or rehashes the
  // indexes mid-insert.
  std::size_t shard_machine_total = 0;
  std::size_t shard_domain_total = 0;
  for (const auto& shard : shard_state) {
    shard_machine_total += shard.machine_names.size();
    shard_domain_total += shard.domain_names.size();
  }
  graph.machine_names_.reserve(shard_machine_total);
  graph.machine_index_.reserve(shard_machine_total);
  graph.domain_names_.reserve(shard_domain_total);
  graph.domain_index_.reserve(shard_domain_total);
  domain_ips.reserve(shard_domain_total);

  for (std::size_t s = 0; s < shards; ++s) {
    auto& shard = shard_state[s];
    skipped_ += shard.skipped;

    machine_remap[s].resize(shard.machine_names.size());
    for (std::size_t local = 0; local < shard.machine_names.size(); ++local) {
      auto& name = shard.machine_names[local];
      if (const auto it = graph.machine_index_.find(name); it != graph.machine_index_.end()) {
        machine_remap[s][local] = it->second;
      } else {
        const auto global = static_cast<MachineId>(graph.machine_names_.size());
        graph.machine_names_.push_back(std::move(name));
        graph.machine_index_.emplace(graph.machine_names_.back(), global);
        machine_remap[s][local] = global;
      }
    }

    domain_remap[s].resize(shard.domain_names.size());
    for (std::size_t local = 0; local < shard.domain_names.size(); ++local) {
      auto& name = shard.domain_names[local];
      DomainId global;
      if (const auto it = graph.domain_index_.find(name); it != graph.domain_index_.end()) {
        global = it->second;
      } else {
        global = static_cast<DomainId>(graph.domain_names_.size());
        graph.domain_names_.push_back(std::move(name));
        graph.domain_index_.emplace(graph.domain_names_.back(), global);
        domain_ips.emplace_back();
      }
      domain_remap[s][local] = global;
      // Union the shard's IP set into the global set (kept distinct; the
      // assemble phase sorts, so insertion order does not matter).
      auto& global_ips = domain_ips[global];
      for (const auto ip : shard.domain_ips[local]) {
        if (std::find(global_ips.begin(), global_ips.end(), ip) == global_ips.end()) {
          global_ips.push_back(ip);
        }
      }
    }
    shard.machine_ids.clear();
    shard.domain_ids.clear();
  }
  const std::size_t num_machines = graph.machine_names_.size();
  const std::size_t num_domains = graph.domain_names_.size();

  // Remap shard edge buffers into one global edge array (parallel, disjoint
  // slices), then sort slices in parallel and merge pairwise.
  std::vector<std::size_t> edge_bounds(shards + 1, 0);
  for (std::size_t s = 0; s < shards; ++s) {
    edge_bounds[s + 1] = edge_bounds[s] + shard_state[s].edges.size();
  }
  std::vector<std::pair<MachineId, DomainId>> edges(edge_bounds.back());
  util::parallel_for(shards, [&](std::size_t s) {
    std::size_t out = edge_bounds[s];
    for (const auto& [lm, ld] : shard_state[s].edges) {
      edges[out++] = {machine_remap[s][lm], domain_remap[s][ld]};
    }
    shard_state[s].edges.clear();
    shard_state[s].edges.shrink_to_fit();
  });
  parallel_slice_sort(edges, edge_bounds);
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
  timings_.edges = edges.size();
  timings_.merge_seconds = merge_span.close();

  // --- Phase 3: assemble CSR directions, IP sets, e2LD annotations.
  obs::Span assemble_span("build/assemble");
  graph.machine_offsets_.assign(num_machines + 1, 0);
  for (const auto& [m, d] : edges) {
    ++graph.machine_offsets_[m + 1];
  }
  for (std::size_t i = 1; i <= num_machines; ++i) {
    graph.machine_offsets_[i] += graph.machine_offsets_[i - 1];
  }
  graph.machine_targets_.resize(edges.size());
  util::parallel_chunks(edges.size(), 0, [&](std::size_t, std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      graph.machine_targets_[i] = edges[i].second;
    }
  });

  // Domain-major direction: sort a swapped copy by (domain, machine) — the
  // same order the serial builder's stable counting sort produces.
  std::vector<std::pair<DomainId, MachineId>> by_domain(edges.size());
  const auto swap_bounds = slice_bounds(edges.size(), util::default_chunk_count(edges.size()));
  util::parallel_chunks(edges.size(), 0, [&](std::size_t, std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      by_domain[i] = {edges[i].second, edges[i].first};
    }
  });
  parallel_slice_sort(by_domain, swap_bounds);
  graph.domain_offsets_.assign(num_domains + 1, 0);
  for (const auto& [d, m] : by_domain) {
    ++graph.domain_offsets_[d + 1];
  }
  for (std::size_t i = 1; i <= num_domains; ++i) {
    graph.domain_offsets_[i] += graph.domain_offsets_[i - 1];
  }
  graph.domain_targets_.resize(by_domain.size());
  util::parallel_chunks(by_domain.size(), 0, [&](std::size_t, std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      graph.domain_targets_[i] = by_domain[i].second;
    }
  });

  // Resolved-IP CSR: per-domain sort in parallel, then prefix + parallel copy.
  util::parallel_for(num_domains, [&](std::size_t d) { std::sort(domain_ips[d].begin(), domain_ips[d].end()); });
  graph.ip_offsets_.assign(num_domains + 1, 0);
  for (std::size_t d = 0; d < num_domains; ++d) {
    graph.ip_offsets_[d + 1] = graph.ip_offsets_[d] + domain_ips[d].size();
  }
  graph.resolved_ips_.resize(graph.ip_offsets_.back());
  util::parallel_for(num_domains, [&](std::size_t d) {
    std::copy(domain_ips[d].begin(), domain_ips[d].end(),
              graph.resolved_ips_.begin() + static_cast<std::ptrdiff_t>(graph.ip_offsets_[d]));
  });

  // e2LD annotation: PSL lookups run in parallel (streamed builds read the
  // carried dictionary instead — every normalized name is guaranteed cached
  // after the phase-1.5 merge), then the deterministic two-pass intern
  // assigns e2LD ids in domain-id first-occurrence order, matching the
  // serial builder exactly for every thread count.
  std::vector<std::string> e2lds(num_domains);
  util::parallel_for(num_domains, [&](std::size_t d) {
    if (cache_ != nullptr) {
      e2lds[d] = cache_->find(graph.domain_names_[d])->e2ld;
    } else {
      e2lds[d] = std::string(psl_->e2ld_or_self(graph.domain_names_[d]));
    }
  });
  auto interned = intern_first_occurrence(std::move(e2lds));
  graph.domain_e2ld_ = std::move(interned.ids);
  graph.e2ld_names_ = std::move(interned.distinct);
  carry_.distinct_domains = num_domains;

  graph.machine_labels_.assign(num_machines, Label::kUnknown);
  graph.domain_labels_.assign(num_domains, Label::kUnknown);
  timings_.assemble_seconds = assemble_span.close();

  obs::Registry::instance().counter("seg_build_records_total").add(total);
  obs::Registry::instance().counter("seg_build_edges_total").add(edges.size());

  segments_.clear();
  day_ = 0;
  return graph;
}

}  // namespace seg::graph
