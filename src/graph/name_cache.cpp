#include "graph/name_cache.h"

#include <algorithm>

#include "util/parallel.h"

namespace seg::graph {

NameCache::NameCache(std::size_t num_shards)
    : shards_(std::max<std::size_t>(1, num_shards)) {}

std::size_t NameCache::shard_of(std::string_view name) const {
  return std::hash<std::string_view>{}(name) % shards_.size();
}

const NameCache::Entry* NameCache::find(std::string_view name) const {
  const auto& shard = shards_[shard_of(name)];
  const auto it = shard.ids.find(name);
  return it != shard.ids.end() ? &shard.entries[it->second] : nullptr;
}

std::size_t NameCache::merge(const std::vector<std::vector<NewName>>& per_source) {
  // Bucket every key by target shard first (serial, hashing only), so the
  // insertion loop below owns each shard exclusively and can run in
  // parallel. Bucket order is (source, index, raw-before-alias) — fixed by
  // the input, not by thread scheduling — so the cache contents are
  // deterministic (not that lookups could tell: entries are pure functions
  // of the name).
  struct Ref {
    std::uint32_t source = 0;
    std::uint32_t index = 0;
    bool alias = false;  // key by normalized form instead of raw spelling
  };
  std::vector<std::vector<Ref>> buckets(shards_.size());
  for (std::uint32_t s = 0; s < per_source.size(); ++s) {
    for (std::uint32_t i = 0; i < per_source[s].size(); ++i) {
      const auto& name = per_source[s][i];
      buckets[shard_of(name.raw)].push_back(Ref{s, i, false});
      if (name.valid && name.normalized != name.raw) {
        buckets[shard_of(name.normalized)].push_back(Ref{s, i, true});
      }
    }
  }

  std::vector<std::size_t> inserted_normalized(shards_.size(), 0);
  util::parallel_for(shards_.size(), [&](std::size_t sh) {
    auto& shard = shards_[sh];
    for (const auto& ref : buckets[sh]) {
      const auto& name = per_source[ref.source][ref.index];
      const std::string& key = ref.alias ? name.normalized : name.raw;
      if (shard.ids.contains(key)) {
        continue;
      }
      shard.entries.push_back(Entry{name.normalized, name.e2ld, name.valid});
      shard.ids.emplace(key, static_cast<std::uint32_t>(shard.entries.size() - 1));
      if (name.valid && key == name.normalized) {
        ++inserted_normalized[sh];
      }
    }
  });

  std::size_t total = 0;
  for (const auto count : inserted_normalized) {
    total += count;
  }
  return total;
}

std::size_t NameCache::size() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    total += shard.entries.size();
  }
  return total;
}

}  // namespace seg::graph
