#include "graph/name_cache.h"

#include <algorithm>
#include <istream>
#include <map>
#include <ostream>
#include <sstream>

#include "util/parallel.h"
#include "util/serialize.h"

namespace seg::graph {

namespace {

constexpr int kFormatVersion = 1;

// Raw query-name spellings are attacker-controlled bytes; percent-escape
// whatever would break the whitespace-delimited record format.
std::string escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    if (c == '%' || c == ' ' || c == '\t' || c == '\n' || c == '\r') {
      constexpr char kHex[] = "0123456789ABCDEF";
      out += '%';
      out += kHex[(static_cast<unsigned char>(c) >> 4) & 0xf];
      out += kHex[static_cast<unsigned char>(c) & 0xf];
    } else {
      out += c;
    }
  }
  return out;
}

int hex_value(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

std::string unescape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (std::size_t i = 0; i < text.size(); ++i) {
    if (text[i] == '%' && i + 2 < text.size()) {
      const int hi = hex_value(text[i + 1]);
      const int lo = hex_value(text[i + 2]);
      util::require_data(hi >= 0 && lo >= 0,
                         "NameCache::load: malformed percent escape");
      out += static_cast<char>((hi << 4) | lo);
      i += 2;
    } else {
      util::require_data(text[i] != '%', "NameCache::load: truncated percent escape");
      out += text[i];
    }
  }
  return out;
}

}  // namespace

NameCache::NameCache(std::size_t num_shards)
    : shards_(std::max<std::size_t>(1, num_shards)) {}

std::size_t NameCache::shard_of(std::string_view name) const {
  return std::hash<std::string_view>{}(name) % shards_.size();
}

const NameCache::Entry* NameCache::find(std::string_view name) const {
  const auto& shard = shards_[shard_of(name)];
  const auto it = shard.ids.find(name);
  return it != shard.ids.end() ? &shard.entries[it->second] : nullptr;
}

std::size_t NameCache::merge(const std::vector<std::vector<NewName>>& per_source) {
  // Bucket every key by target shard first (serial, hashing only), so the
  // insertion loop below owns each shard exclusively and can run in
  // parallel. Bucket order is (source, index, raw-before-alias) — fixed by
  // the input, not by thread scheduling — so the cache contents are
  // deterministic (not that lookups could tell: entries are pure functions
  // of the name).
  struct Ref {
    std::uint32_t source = 0;
    std::uint32_t index = 0;
    bool alias = false;  // key by normalized form instead of raw spelling
  };
  std::vector<std::vector<Ref>> buckets(shards_.size());
  for (std::uint32_t s = 0; s < per_source.size(); ++s) {
    for (std::uint32_t i = 0; i < per_source[s].size(); ++i) {
      const auto& name = per_source[s][i];
      buckets[shard_of(name.raw)].push_back(Ref{s, i, false});
      if (name.valid && name.normalized != name.raw) {
        buckets[shard_of(name.normalized)].push_back(Ref{s, i, true});
      }
    }
  }

  std::vector<std::size_t> inserted_normalized(shards_.size(), 0);
  util::parallel_for(shards_.size(), [&](std::size_t sh) {
    auto& shard = shards_[sh];
    for (const auto& ref : buckets[sh]) {
      const auto& name = per_source[ref.source][ref.index];
      const std::string& key = ref.alias ? name.normalized : name.raw;
      if (shard.ids.contains(key)) {
        continue;
      }
      shard.entries.push_back(Entry{name.normalized, name.e2ld, name.valid});
      shard.ids.emplace(key, static_cast<std::uint32_t>(shard.entries.size() - 1));
      if (name.valid && key == name.normalized) {
        ++inserted_normalized[sh];
      }
    }
  });

  std::size_t total = 0;
  for (const auto count : inserted_normalized) {
    total += count;
  }
  return total;
}

std::size_t NameCache::size() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    total += shard.entries.size();
  }
  return total;
}

void NameCache::save(std::ostream& out) const {
  // Key order in the shards depends on shard count and hash; sort the whole
  // key set first so the serialized bytes are a pure function of the
  // dictionary contents.
  std::map<std::string_view, const Entry*> sorted;
  for (const auto& shard : shards_) {
    for (const auto& [key, index] : shard.ids) {
      sorted.emplace(key, &shard.entries[index]);
    }
  }
  util::write_format_header(out, "namecache", kFormatVersion);
  out << "namecache " << sorted.size() << '\n';
  for (const auto& [key, entry] : sorted) {
    out << escape(key) << ' ' << (entry->valid ? 1 : 0);
    if (entry->valid) {
      out << ' ' << escape(entry->normalized) << ' ' << escape(entry->e2ld);
    }
    out << '\n';
  }
}

NameCache NameCache::load(std::istream& in, std::size_t num_shards) {
  // legacy_version 0: namecache streams have carried the segf1 header from
  // day one, so a headerless stream is a format error, not a legacy file.
  const int version = util::read_format_header(in, "namecache", kFormatVersion,
                                               /*legacy_version=*/0);
  util::require_data(version >= 1,
                     "NameCache::load: stream has no 'segf1 namecache' header "
                     "(no legacy namecache format exists)");
  std::string tag;
  std::size_t count = 0;
  in >> tag >> count;
  util::require_data(static_cast<bool>(in) && tag == "namecache",
                     "NameCache::load: malformed section header");

  NameCache cache(num_shards);
  for (std::size_t i = 0; i < count; ++i) {
    std::string key_text;
    int valid = 0;
    in >> key_text >> valid;
    util::require_data(static_cast<bool>(in) && (valid == 0 || valid == 1),
                       "NameCache::load: truncated record");
    Entry entry;
    entry.valid = valid == 1;
    if (entry.valid) {
      std::string normalized_text;
      std::string e2ld_text;
      in >> normalized_text >> e2ld_text;
      util::require_data(static_cast<bool>(in), "NameCache::load: truncated record");
      entry.normalized = unescape(normalized_text);
      entry.e2ld = unescape(e2ld_text);
    }
    const std::string key = unescape(key_text);
    auto& shard = cache.shards_[cache.shard_of(key)];
    util::require_data(!shard.ids.contains(key),
                       "NameCache::load: duplicate key '" + key + "'");
    shard.entries.push_back(std::move(entry));
    shard.ids.emplace(key, static_cast<std::uint32_t>(shard.entries.size() - 1));
  }
  return cache;
}

}  // namespace seg::graph
