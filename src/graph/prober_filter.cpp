#include "graph/prober_filter.h"

#include "graph/graph_view.h"
#include "util/require.h"

namespace seg::graph {

// Defined in pruning.cpp; rebuilds a graph from keep masks.
MachineDomainGraph prune_impl(const GraphView& graph,
                              const std::vector<std::uint8_t>& keep_machine,
                              const std::vector<std::uint8_t>& keep_domain);

std::vector<std::uint8_t> detect_probers(const MachineDomainGraph& graph,
                                         const ProberFilterConfig& config) {
  util::require(config.min_blacklisted_ratio > 0.0 && config.min_blacklisted_ratio <= 1.0,
                "detect_probers: ratio must be in (0, 1]");
  std::vector<std::uint8_t> probers(graph.machine_count(), 0);
  for (MachineId m = 0; m < graph.machine_count(); ++m) {
    const auto domains = graph.domains_of(m);
    if (domains.empty()) {
      continue;
    }
    std::uint32_t blacklisted = 0;
    for (const auto d : domains) {
      blacklisted += graph.domain_label(d) == Label::kMalware ? 1 : 0;
    }
    const double ratio = static_cast<double>(blacklisted) / static_cast<double>(domains.size());
    probers[m] = blacklisted >= config.min_blacklisted_domains &&
                         ratio >= config.min_blacklisted_ratio
                     ? 1
                     : 0;
  }
  return probers;
}

MachineDomainGraph remove_probers(const MachineDomainGraph& graph,
                                  const ProberFilterConfig& config,
                                  ProberFilterStats* stats) {
  const auto probers = detect_probers(graph, config);
  std::vector<std::uint8_t> keep_machine(graph.machine_count());
  std::size_t removed = 0;
  for (MachineId m = 0; m < graph.machine_count(); ++m) {
    keep_machine[m] = probers[m] != 0 ? 0 : 1;
    removed += probers[m] != 0 ? 1 : 0;
  }
  if (stats != nullptr) {
    stats->machines_removed = removed;
  }
  const std::vector<std::uint8_t> keep_domain(graph.domain_count(), 1);
  return prune_impl(graph.view(), keep_machine, keep_domain);
}

}  // namespace seg::graph
