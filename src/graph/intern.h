// Deterministic two-pass parallel first-occurrence interning.
//
// Assigning dense ids to string values in first-occurrence order is a
// serial bottleneck of graph assembly (the e2LD annotation pass; ROADMAP
// "parallel e2LD annotation"). The two-pass scheme parallelizes it without
// changing a single assigned id:
//
//   1. count: chunk the input; each worker collects its chunk's distinct
//      values in local first-occurrence order (and tags every input slot
//      with its chunk-local id);
//   2. assign: walk the chunks' distinct lists in chunk order — a short
//      serial pass over distinct values only, not all inputs — assigning
//      global ids on first sight, then remap every slot in parallel.
//
// A value's first global appearance lies in the earliest chunk containing
// it, and within a chunk the local list preserves input order, so the
// resulting ids equal a serial left-to-right scan for every chunk count
// (see tests/graph/sharded_builder_test.cpp for the byte-equality gate).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace seg::graph {

struct FirstOccurrenceIntern {
  std::vector<std::uint32_t> ids;     ///< per input slot, in input order
  std::vector<std::string> distinct;  ///< distinct values, in id order
};

/// Interns `values` (consumed: distinct strings are moved out) into dense
/// first-occurrence ids. Runs the count and remap passes under
/// util::parallel_for; the result is identical for every thread count.
FirstOccurrenceIntern intern_first_occurrence(std::vector<std::string>&& values);

}  // namespace seg::graph
