#include "graph/labeling.h"

namespace seg::graph {

Label derive_machine_label(std::size_t degree, std::size_t malware_domains,
                           std::size_t benign_domains) {
  if (malware_domains > 0) {
    return Label::kMalware;
  }
  if (degree > 0 && benign_domains == degree) {
    return Label::kBenign;
  }
  return Label::kUnknown;
}

LabelingResult apply_labels(MachineDomainGraph& graph, const NameSet& cc_blacklist,
                            const NameSet& e2ld_whitelist) {
  LabelingResult result;
  for (DomainId d = 0; d < graph.domain_count(); ++d) {
    Label label = Label::kUnknown;
    if (cc_blacklist.contains(graph.domain_name(d))) {
      label = Label::kMalware;
      ++result.malware_domains;
    } else if (e2ld_whitelist.contains(graph.e2ld_name(graph.domain_e2ld(d)))) {
      label = Label::kBenign;
      ++result.benign_domains;
    }
    graph.set_domain_label(d, label);
  }
  relabel_machines(graph);
  for (MachineId m = 0; m < graph.machine_count(); ++m) {
    if (graph.machine_label(m) == Label::kMalware) {
      ++result.malware_machines;
    } else if (graph.machine_label(m) == Label::kBenign) {
      ++result.benign_machines;
    }
  }
  return result;
}

void relabel_machines(MachineDomainGraph& graph) {
  for (MachineId m = 0; m < graph.machine_count(); ++m) {
    const auto domains = graph.domains_of(m);
    std::size_t malware = 0;
    std::size_t benign = 0;
    for (const auto d : domains) {
      switch (graph.domain_label(d)) {
        case Label::kMalware:
          ++malware;
          break;
        case Label::kBenign:
          ++benign;
          break;
        case Label::kUnknown:
          break;
      }
    }
    graph.set_machine_label(m, derive_machine_label(domains.size(), malware, benign));
  }
}

}  // namespace seg::graph
