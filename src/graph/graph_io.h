// Binary serialization of the machine-domain behavior graph.
//
// Building and labeling a graph from raw resolver logs dominates the
// pipeline cost (Section IV-G); persisting the prepared graph lets many
// experiments (ablations, threshold sweeps, baselines) reuse one build.
// The format is little-endian, length-prefixed, magic "SEGGRAPH1".
#pragma once

#include <iosfwd>

#include "graph/graph.h"

namespace seg::graph {

void save_graph(const MachineDomainGraph& graph, std::ostream& out);

/// Throws util::ParseError on bad magic, truncation, or inconsistent
/// section sizes.
MachineDomainGraph load_graph(std::istream& in);

}  // namespace seg::graph
