// Compact on-disk behavior graphs: the `segf1 graphc 1` container.
//
// One container, two encodings (docs/graph-format.md has the byte-level
// layout):
//
//   packed (1)  — fixed-width little-endian sections, 8-byte aligned, in
//                 a deterministic order computed from the header counts.
//                 Memory-mappable: map_graph() serves every GraphView
//                 accessor straight off the mapping (zero-copy load).
//   compact (2) — split degree/edge/IP-set/label streams, with each
//                 strictly-ascending adjacency run delta + varint coded
//                 (util/varint.h). Roughly 4-6x smaller than the legacy
//                 SEGGRAPH1 serialization (graph_io.h), which spends 8
//                 widened bytes per stored id.
//
// Both encodings carry exactly the information of save_graph/load_graph:
// round-trips are lossless, and the loaded graph is bit-identical to the
// source (tests/graph/graph_compressed_test.cpp asserts serialized
// equality). The out-of-core preparer (graph/oocore.h) streams the packed
// encoding section-by-section through detail::PackedGraphcWriter, and its
// output is byte-identical to save_graph_compressed() of the equivalent
// heap-built graph.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

#include "graph/graph.h"
#include "graph/graph_view.h"
#include "util/mmap_file.h"

namespace seg::graph {

enum class GraphcEncoding : std::uint8_t { kPacked = 1, kCompact = 2 };

/// Serializes a graph (any backing) as a `segf1 graphc 1` stream.
void save_graph_compressed(const GraphView& graph, std::ostream& out,
                           GraphcEncoding encoding = GraphcEncoding::kCompact);
void save_graph_compressed(const MachineDomainGraph& graph, std::ostream& out,
                           GraphcEncoding encoding = GraphcEncoding::kCompact);

/// Loads either encoding back into a heap-resident graph. Throws
/// util::ParseError on malformed or truncated input.
MachineDomainGraph load_graph_compressed(std::istream& in);

/// A packed graphc file mapped into memory, with a GraphView serving the
/// sections in place. The view borrows the mapping: keep the MappedGraph
/// alive as long as the view (or anything constructed over it) is in use.
struct MappedGraph {
  util::MmapFile file;
  GraphView view;
};

/// Memory-maps a packed graphc file for zero-copy reads. Throws
/// util::ParseError when the file is not a packed graphc container or its
/// node-level structure is inconsistent (offset tables, label bytes).
/// SEG_NUMA_POLICY placement is applied to the mapping (util/mmap_file.h).
MappedGraph map_graph(const std::string& path);

namespace detail {

/// Everything the fixed-size binary header records; section offsets of the
/// packed encoding are a pure function of these counts.
struct GraphcCounts {
  std::int32_t day = 0;
  std::uint64_t machines = 0;
  std::uint64_t domains = 0;
  std::uint64_t e2lds = 0;
  std::uint64_t edges = 0;
  std::uint64_t ips = 0;
  std::uint64_t machine_name_bytes = 0;
  std::uint64_t domain_name_bytes = 0;
  std::uint64_t e2ld_name_bytes = 0;
};

/// Streams the packed encoding: writes the container + binary header on
/// construction, then the caller appends each section in layout order
/// (raw bytes / u32 / u64 helpers) with pad8() after every section. Used
/// by save_graph_compressed and by the out-of-core writer, so both
/// produce byte-identical files from identical logical content.
class PackedGraphcWriter {
 public:
  PackedGraphcWriter(std::ostream& out, const GraphcCounts& counts);

  void bytes(const void* data, std::size_t size);
  void u64(std::uint64_t value) { bytes(&value, sizeof(value)); }
  void u32(std::uint32_t value) { bytes(&value, sizeof(value)); }
  void u8(std::uint8_t value) { bytes(&value, sizeof(value)); }
  /// Pads the file position to the next multiple of 8.
  void pad8();
  /// Validates the stream state; call once after the last section.
  void finish();

 private:
  std::ostream* out_;
  std::uint64_t written_ = 0;  ///< bytes since file start
};

}  // namespace detail

}  // namespace seg::graph
