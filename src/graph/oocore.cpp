#include "graph/oocore.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <functional>
#include <limits>
#include <queue>
#include <span>
#include <string_view>
#include <utility>
#include <vector>

#include "dns/domain_name.h"
#include "dns/query_log.h"
#include "graph/graph_compressed.h"
#include "util/obs/trace.h"
#include "util/require.h"
#include "util/varint.h"

namespace seg::graph {

namespace {

// --- spill segments ---------------------------------------------------------
//
// A spill file holds concatenated sorted runs of distinct uint64 pairs,
// each run delta + varint coded (util/varint.h). Runs are merged back with
// a k-way heap; duplicates across runs collapse during the merge, so the
// merged stream is globally sorted and distinct.

struct SpillSegment {
  std::uint64_t offset = 0;
  std::uint64_t bytes = 0;
  std::uint64_t count = 0;
};

class SpillWriter {
 public:
  explicit SpillWriter(std::string path) : path_(std::move(path)), out_(path_, std::ios::binary) {
    util::require_data(out_.is_open(), "oocore: cannot create spill file '" + path_ + "'");
  }

  /// Sorts, deduplicates, and appends `pairs` as one segment; clears it.
  void spill(std::vector<std::uint64_t>& pairs) {
    if (pairs.empty()) {
      return;
    }
    std::sort(pairs.begin(), pairs.end());
    pairs.erase(std::unique(pairs.begin(), pairs.end()), pairs.end());
    encoded_.clear();
    util::append_ascending_run(encoded_, std::span<const std::uint64_t>(pairs));
    out_.write(encoded_.data(), static_cast<std::streamsize>(encoded_.size()));
    segments_.push_back({offset_, encoded_.size(), pairs.size()});
    offset_ += encoded_.size();
    pairs.clear();
  }

  void finish() {
    out_.flush();
    util::require_data(static_cast<bool>(out_), "oocore: spill write failed");
    out_.close();
  }

  const std::string& path() const { return path_; }
  const std::vector<SpillSegment>& segments() const { return segments_; }
  std::uint64_t bytes() const { return offset_; }

 private:
  std::string path_;
  std::ofstream out_;
  std::string encoded_;
  std::vector<SpillSegment> segments_;
  std::uint64_t offset_ = 0;
};

/// Streams one segment's values back with a small refill buffer, so a merge
/// holds O(segments * buffer) bytes regardless of segment size.
class RunReader {
 public:
  RunReader(const std::string& path, const SpillSegment& segment)
      : in_(path, std::ios::binary),
        remaining_bytes_(segment.bytes),
        remaining_values_(segment.count) {
    util::require_data(in_.is_open(), "oocore: cannot reopen spill file '" + path + "'");
    in_.seekg(static_cast<std::streamoff>(segment.offset));
    buffer_.resize(kBufferBytes);
  }

  bool next(std::uint64_t& value) {
    if (remaining_values_ == 0) {
      return false;
    }
    if (filled_ - pos_ < util::kMaxVarintBytes && remaining_bytes_ > 0) {
      refill();
    }
    const unsigned char* p = buffer_.data() + pos_;
    const auto raw = util::decode_varint(p, buffer_.data() + filled_);
    pos_ = static_cast<std::size_t>(p - buffer_.data());
    value = first_ ? raw : prev_ + raw + 1;
    first_ = false;
    prev_ = value;
    --remaining_values_;
    return true;
  }

 private:
  static constexpr std::size_t kBufferBytes = std::size_t{64} << 10;

  void refill() {
    const std::size_t tail = filled_ - pos_;
    std::memmove(buffer_.data(), buffer_.data() + pos_, tail);
    pos_ = 0;
    filled_ = tail;
    const auto want = static_cast<std::size_t>(
        std::min<std::uint64_t>(buffer_.size() - filled_, remaining_bytes_));
    in_.read(reinterpret_cast<char*>(buffer_.data() + filled_),
             static_cast<std::streamsize>(want));
    util::require_data(static_cast<std::size_t>(in_.gcount()) == want,
                       "oocore: truncated spill segment");
    filled_ += want;
    remaining_bytes_ -= want;
  }

  std::ifstream in_;
  std::vector<unsigned char> buffer_;
  std::size_t pos_ = 0;
  std::size_t filled_ = 0;
  std::uint64_t remaining_bytes_;
  std::uint64_t remaining_values_;
  std::uint64_t prev_ = 0;
  bool first_ = true;
};

/// K-way merge over a spill file's segments, yielding globally sorted
/// distinct values. Construct anew for every pass over the stream.
class SpillMerger {
 public:
  SpillMerger(const std::string& path, const std::vector<SpillSegment>& segments) {
    readers_.reserve(segments.size());
    for (const auto& segment : segments) {
      readers_.emplace_back(path, segment);
      std::uint64_t value = 0;
      if (readers_.back().next(value)) {
        heap_.push({value, readers_.size() - 1});
      }
    }
  }

  bool next(std::uint64_t& value) {
    if (heap_.empty()) {
      return false;
    }
    value = heap_.top().first;
    while (!heap_.empty() && heap_.top().first == value) {
      const auto source = heap_.top().second;
      heap_.pop();
      std::uint64_t refilled = 0;
      if (readers_[source].next(refilled)) {
        heap_.push({refilled, source});
      }
    }
    return true;
  }

 private:
  using Entry = std::pair<std::uint64_t, std::size_t>;
  std::vector<RunReader> readers_;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap_;
};

constexpr std::uint32_t low32(std::uint64_t pair) {
  return static_cast<std::uint32_t>(pair & 0xffffffffu);
}
constexpr std::uint32_t high32(std::uint64_t pair) {
  return static_cast<std::uint32_t>(pair >> 32);
}

// Name-table section writer over an arbitrary name accessor; produces the
// same bytes as save_graph_compressed's packed name tables for equal
// logical names.
template <typename NameOf>
void write_name_section(detail::PackedGraphcWriter& writer, std::size_t count,
                        const NameOf& name_of) {
  std::vector<std::uint64_t> offsets(count + 1, 0);
  for (std::size_t i = 0; i < count; ++i) {
    offsets[i + 1] = offsets[i] + name_of(i).size();
  }
  writer.bytes(offsets.data(), offsets.size() * sizeof(std::uint64_t));
  std::string blob;
  for (std::size_t i = 0; i < count; ++i) {
    const std::string_view name = name_of(i);
    blob.append(name.data(), name.size());
    if (blob.size() >= (1u << 20)) {
      writer.bytes(blob.data(), blob.size());
      blob.clear();
    }
  }
  writer.bytes(blob.data(), blob.size());
  writer.pad8();
}

struct SpillCleanup {
  std::vector<std::string> paths;
  ~SpillCleanup() {
    for (const auto& path : paths) {
      std::remove(path.c_str());
    }
  }
};

}  // namespace

OutOfCoreResult prepare_graph_out_of_core(const std::string& trace_path,
                                          const dns::PublicSuffixList& psl,
                                          const NameSet& cc_blacklist,
                                          const NameSet& e2ld_whitelist,
                                          const std::string& out_path,
                                          const OutOfCoreConfig& config) {
  util::require(config.chunk_records > 0, "oocore: chunk_records must be positive");
  const auto& pruning = config.pruning;
  util::require(pruning.proxy_degree_percentile > 0.0 && pruning.proxy_degree_percentile <= 1.0,
                "oocore: proxy_degree_percentile must be in (0, 1]");
  util::require(pruning.popular_e2ld_fraction > 0.0 && pruning.popular_e2ld_fraction <= 1.0,
                "oocore: popular_e2ld_fraction must be in (0, 1]");

  OutOfCoreResult result;
  const std::string spill_base =
      config.spill_dir.empty() ? out_path : config.spill_dir + "/oocore";
  SpillCleanup cleanup;

  // --- Scan: one serial pass in file order. Machine/domain/e2LD ids are
  // assigned by first occurrence, exactly as GraphBuilder::add_query (and
  // therefore the sharded builder, which is bit-identical to it) assigns
  // them; edge and IP pairs go to sorted compressed spill segments.
  obs::Span scan_span("oocore/scan");
  StringIdMap<MachineId> machine_ids;
  StringIdMap<DomainId> domain_ids;
  std::vector<std::string> machine_names;
  std::vector<std::string> domain_names;
  StringIdMap<E2ldId> e2ld_ids;
  std::vector<std::string> e2ld_names;
  std::vector<E2ldId> domain_e2ld;

  SpillWriter edge_spill(spill_base + ".spill-edges");
  SpillWriter ip_spill(spill_base + ".spill-ips");
  cleanup.paths = {edge_spill.path(), ip_spill.path()};
  std::vector<std::uint64_t> edge_buffer;
  std::vector<std::uint64_t> ip_buffer;
  edge_buffer.reserve(config.chunk_records);
  ip_buffer.reserve(config.chunk_records);

  const dns::Day day =
      dns::for_each_record(trace_path, [&](const dns::QueryRecord& record) {
        ++result.records;
        if (!dns::DomainName::is_valid(record.qname) || record.machine.empty()) {
          ++result.skipped_records;
          return;
        }
        std::string normalized_storage;
        std::string_view normalized = record.qname;
        if (!dns::DomainName::is_normalized(record.qname)) {
          normalized_storage = dns::DomainName::parse(record.qname).str();
          normalized = normalized_storage;
        }

        MachineId m;
        if (const auto it = machine_ids.find(record.machine); it != machine_ids.end()) {
          m = it->second;
        } else {
          m = static_cast<MachineId>(machine_names.size());
          machine_names.emplace_back(record.machine);
          machine_ids.emplace(machine_names.back(), m);
        }

        DomainId d;
        if (const auto it = domain_ids.find(normalized); it != domain_ids.end()) {
          d = it->second;
        } else {
          d = static_cast<DomainId>(domain_names.size());
          domain_names.emplace_back(normalized);
          domain_ids.emplace(domain_names.back(), d);
          // e2LDs intern at domain first occurrence — the same sequence the
          // in-memory builder produces by iterating domains in id order.
          const std::string e2ld(psl.e2ld_or_self(normalized));
          if (const auto it = e2ld_ids.find(e2ld); it != e2ld_ids.end()) {
            domain_e2ld.push_back(it->second);
          } else {
            const auto e = static_cast<E2ldId>(e2ld_names.size());
            e2ld_names.push_back(e2ld);
            e2ld_ids.emplace(e2ld, e);
            domain_e2ld.push_back(e);
          }
        }

        edge_buffer.push_back((static_cast<std::uint64_t>(m) << 32) | d);
        if (edge_buffer.size() >= config.chunk_records) {
          edge_spill.spill(edge_buffer);
        }
        for (const auto ip : record.resolved_ips) {
          ip_buffer.push_back((static_cast<std::uint64_t>(d) << 32) | ip.value());
          if (ip_buffer.size() >= config.chunk_records) {
            ip_spill.spill(ip_buffer);
          }
        }
      });
  edge_spill.spill(edge_buffer);
  ip_spill.spill(ip_buffer);
  edge_spill.finish();
  ip_spill.finish();
  machine_ids = {};
  domain_ids = {};
  e2ld_ids = {};
  result.spill_segments = edge_spill.segments().size() + ip_spill.segments().size();
  result.spill_bytes = edge_spill.bytes() + ip_spill.bytes();
  scan_span.close();

  const std::size_t nm = machine_names.size();
  const std::size_t nd = domain_names.size();
  const std::size_t ne = e2ld_names.size();
  PruneStats& stats = result.prune_stats;
  stats.machines_before = nm;
  stats.domains_before = nd;

  // --- Labels (apply_labels semantics): domains from the lists, machines
  // derived from their distinct-domain label counts during the first edge
  // merge, which also yields the unpruned machine degrees for R1/R2.
  obs::Span label_span("oocore/labels");
  std::vector<Label> domain_labels(nd, Label::kUnknown);
  for (DomainId d = 0; d < nd; ++d) {
    if (cc_blacklist.contains(domain_names[d])) {
      domain_labels[d] = Label::kMalware;
    } else if (e2ld_whitelist.contains(e2ld_names[domain_e2ld[d]])) {
      domain_labels[d] = Label::kBenign;
    }
  }

  std::vector<std::uint64_t> degrees(nm, 0);
  std::vector<std::uint32_t> machine_malware(nm, 0);
  std::vector<std::uint32_t> machine_benign(nm, 0);
  {
    SpillMerger merge(edge_spill.path(), edge_spill.segments());
    std::uint64_t pair = 0;
    while (merge.next(pair)) {
      const auto m = high32(pair);
      const auto d = low32(pair);
      ++degrees[m];
      ++stats.edges_before;
      if (domain_labels[d] == Label::kMalware) {
        ++machine_malware[m];
      } else if (domain_labels[d] == Label::kBenign) {
        ++machine_benign[m];
      }
    }
  }
  std::vector<Label> machine_labels(nm, Label::kUnknown);
  for (MachineId m = 0; m < nm; ++m) {
    machine_labels[m] =
        derive_machine_label(degrees[m], machine_malware[m], machine_benign[m]);
  }
  machine_malware = {};
  machine_benign = {};
  label_span.close();

  // --- R1 + R2 (same arithmetic as prune()).
  obs::Span masks_span("oocore/prune-masks");
  std::uint64_t theta_d = std::numeric_limits<std::uint64_t>::max();
  if (!degrees.empty()) {
    std::vector<std::uint64_t> sorted = degrees;
    std::sort(sorted.begin(), sorted.end());
    const auto rank = static_cast<std::size_t>(
        std::ceil(pruning.proxy_degree_percentile * static_cast<double>(sorted.size())));
    const std::size_t index = rank == 0 ? 0 : rank - 1;
    theta_d = sorted[std::min(index, sorted.size() - 1)];
    theta_d = std::max<std::uint64_t>(theta_d, pruning.inactive_machine_max_degree + 2);
  }
  stats.theta_d = theta_d;

  std::vector<std::uint8_t> keep_machine(nm, 1);
  for (MachineId m = 0; m < nm; ++m) {
    const bool is_malware = machine_labels[m] == Label::kMalware;
    if (degrees[m] <= pruning.inactive_machine_max_degree) {
      if (is_malware) {
        ++stats.malware_machines_kept_by_exception;
      } else {
        keep_machine[m] = 0;
        ++stats.machines_removed_r1;
        continue;
      }
    }
    if (degrees[m] > theta_d) {
      keep_machine[m] = 0;
      ++stats.machines_removed_r2;
    }
  }

  // --- Second edge merge: domain degrees over kept machines, plus distinct
  // kept machines per e2LD. The merged stream is machine-major, so each
  // machine contributes its distinct e2LDs through a stamp array.
  std::vector<std::uint64_t> domain_degree(nd, 0);
  std::vector<std::uint64_t> e2ld_machines(ne, 0);
  {
    std::vector<std::uint32_t> stamp(ne, 0xffffffffu);
    SpillMerger merge(edge_spill.path(), edge_spill.segments());
    std::uint64_t pair = 0;
    while (merge.next(pair)) {
      const auto m = high32(pair);
      if (keep_machine[m] == 0) {
        continue;
      }
      const auto d = low32(pair);
      ++domain_degree[d];
      const auto e = domain_e2ld[d];
      if (stamp[e] != m) {
        stamp[e] = m;
        ++e2ld_machines[e];
      }
    }
  }

  // --- R3 + R4.
  const auto theta_m = static_cast<std::uint64_t>(
      std::ceil(pruning.popular_e2ld_fraction * static_cast<double>(nm)));
  stats.theta_m = theta_m;
  std::vector<std::uint8_t> keep_domain(nd, 1);
  for (DomainId d = 0; d < nd; ++d) {
    const bool is_malware = domain_labels[d] == Label::kMalware;
    if (e2ld_machines[domain_e2ld[d]] >= theta_m) {
      keep_domain[d] = 0;
      ++stats.domains_removed_r4;
      continue;
    }
    if (domain_degree[d] < pruning.min_domain_machines) {
      if (is_malware && domain_degree[d] > 0) {
        ++stats.malware_domains_kept_by_exception;
      } else {
        keep_domain[d] = 0;
        ++stats.domains_removed_r3;
      }
    }
  }
  degrees = {};
  domain_degree = {};
  e2ld_machines = {};

  // --- Dense remaps and the pruned node-level tables (prune_impl
  // semantics: names/labels carried over, e2LDs re-interned in surviving
  // domain order).
  std::vector<MachineId> machine_map(nm, static_cast<MachineId>(nm));
  std::vector<MachineId> kept_machines;
  for (MachineId m = 0; m < nm; ++m) {
    if (keep_machine[m] != 0) {
      machine_map[m] = static_cast<MachineId>(kept_machines.size());
      kept_machines.push_back(m);
    }
  }
  std::vector<DomainId> domain_map(nd, static_cast<DomainId>(nd));
  std::vector<DomainId> kept_domains;
  for (DomainId d = 0; d < nd; ++d) {
    if (keep_domain[d] != 0) {
      domain_map[d] = static_cast<DomainId>(kept_domains.size());
      kept_domains.push_back(d);
    }
  }
  const std::size_t nm_new = kept_machines.size();
  const std::size_t nd_new = kept_domains.size();
  stats.machines_after = nm_new;
  stats.domains_after = nd_new;

  StringIdMap<E2ldId> new_e2ld_ids;
  std::vector<std::string> new_e2ld_names;
  std::vector<E2ldId> new_domain_e2ld;
  new_domain_e2ld.reserve(nd_new);
  for (const auto d : kept_domains) {
    const std::string& e2ld = e2ld_names[domain_e2ld[d]];
    if (const auto it = new_e2ld_ids.find(e2ld); it != new_e2ld_ids.end()) {
      new_domain_e2ld.push_back(it->second);
    } else {
      const auto id = static_cast<E2ldId>(new_e2ld_names.size());
      new_e2ld_names.push_back(e2ld);
      new_e2ld_ids.emplace(e2ld, id);
      new_domain_e2ld.push_back(id);
    }
  }
  new_e2ld_ids = {};
  masks_span.close();

  // --- Third edge merge: surviving CSR shape (degrees both sides), which
  // fixes every header count and section offset before any output byte.
  obs::Span write_span("oocore/write");
  std::vector<std::uint64_t> machine_offsets(nm_new + 1, 0);
  std::vector<std::uint64_t> domain_offsets(nd_new + 1, 0);
  {
    SpillMerger merge(edge_spill.path(), edge_spill.segments());
    std::uint64_t pair = 0;
    while (merge.next(pair)) {
      const auto m = high32(pair);
      const auto d = low32(pair);
      if (keep_machine[m] != 0 && keep_domain[d] != 0) {
        ++machine_offsets[machine_map[m] + 1];
        ++domain_offsets[domain_map[d] + 1];
      }
    }
  }
  for (std::size_t i = 1; i <= nm_new; ++i) {
    machine_offsets[i] += machine_offsets[i - 1];
  }
  for (std::size_t i = 1; i <= nd_new; ++i) {
    domain_offsets[i] += domain_offsets[i - 1];
  }
  const std::uint64_t edges_after = machine_offsets.back();
  stats.edges_after = edges_after;

  // --- First IP merge: surviving per-domain IP-set sizes.
  std::vector<std::uint64_t> ip_offsets(nd_new + 1, 0);
  {
    SpillMerger merge(ip_spill.path(), ip_spill.segments());
    std::uint64_t pair = 0;
    while (merge.next(pair)) {
      const auto d = high32(pair);
      if (keep_domain[d] != 0) {
        ++ip_offsets[domain_map[d] + 1];
      }
    }
  }
  for (std::size_t i = 1; i <= nd_new; ++i) {
    ip_offsets[i] += ip_offsets[i - 1];
  }
  const std::uint64_t ips_after = ip_offsets.back();

  // --- Stream the packed graphc file section by section. Each merged
  // stream arrives in exactly the order the section stores (the id remaps
  // are monotone), so every section is written strictly sequentially.
  detail::GraphcCounts counts;
  counts.day = day;
  counts.machines = nm_new;
  counts.domains = nd_new;
  counts.e2lds = new_e2ld_names.size();
  counts.edges = edges_after;
  counts.ips = ips_after;
  for (const auto m : kept_machines) {
    counts.machine_name_bytes += machine_names[m].size();
  }
  for (const auto d : kept_domains) {
    counts.domain_name_bytes += domain_names[d].size();
  }
  for (const auto& name : new_e2ld_names) {
    counts.e2ld_name_bytes += name.size();
  }

  std::ofstream out(out_path, std::ios::binary);
  util::require_data(out.is_open(), "oocore: cannot create output file '" + out_path + "'");
  detail::PackedGraphcWriter writer(out, counts);
  write_name_section(writer, nm_new, [&](std::size_t i) {
    return std::string_view(machine_names[kept_machines[i]]);
  });
  write_name_section(writer, nd_new, [&](std::size_t i) {
    return std::string_view(domain_names[kept_domains[i]]);
  });
  write_name_section(writer, new_e2ld_names.size(),
                     [&](std::size_t i) { return std::string_view(new_e2ld_names[i]); });

  writer.bytes(new_domain_e2ld.data(), new_domain_e2ld.size() * sizeof(E2ldId));
  writer.pad8();
  writer.bytes(machine_offsets.data(), machine_offsets.size() * sizeof(std::uint64_t));
  writer.pad8();

  // machine_targets: fourth edge merge streams the kept edges in
  // (machine, domain) order; the swapped pairs spill for the reverse CSR.
  SpillWriter swap_spill(spill_base + ".spill-swapped");
  cleanup.paths.push_back(swap_spill.path());
  {
    std::vector<std::uint64_t> swap_buffer;
    swap_buffer.reserve(config.chunk_records);
    SpillMerger merge(edge_spill.path(), edge_spill.segments());
    std::uint64_t pair = 0;
    while (merge.next(pair)) {
      const auto m = high32(pair);
      const auto d = low32(pair);
      if (keep_machine[m] == 0 || keep_domain[d] == 0) {
        continue;
      }
      writer.u32(domain_map[d]);
      swap_buffer.push_back((static_cast<std::uint64_t>(domain_map[d]) << 32) |
                            machine_map[m]);
      if (swap_buffer.size() >= config.chunk_records) {
        swap_spill.spill(swap_buffer);
      }
    }
    swap_spill.spill(swap_buffer);
    swap_spill.finish();
  }
  writer.pad8();

  writer.bytes(domain_offsets.data(), domain_offsets.size() * sizeof(std::uint64_t));
  writer.pad8();
  {
    SpillMerger merge(swap_spill.path(), swap_spill.segments());
    std::uint64_t pair = 0;
    std::uint64_t written = 0;
    while (merge.next(pair)) {
      writer.u32(low32(pair));
      ++written;
    }
    util::require(written == edges_after, "oocore: swapped edge stream lost pairs");
  }
  writer.pad8();

  writer.bytes(ip_offsets.data(), ip_offsets.size() * sizeof(std::uint64_t));
  writer.pad8();
  {
    SpillMerger merge(ip_spill.path(), ip_spill.segments());
    std::uint64_t pair = 0;
    while (merge.next(pair)) {
      if (keep_domain[high32(pair)] != 0) {
        writer.u32(low32(pair));
      }
    }
  }
  writer.pad8();

  {
    std::vector<Label> pruned(nm_new);
    for (std::size_t i = 0; i < nm_new; ++i) {
      pruned[i] = machine_labels[kept_machines[i]];
    }
    writer.bytes(pruned.data(), pruned.size());
    writer.pad8();
  }
  {
    std::vector<Label> pruned(nd_new);
    for (std::size_t i = 0; i < nd_new; ++i) {
      pruned[i] = domain_labels[kept_domains[i]];
    }
    writer.bytes(pruned.data(), pruned.size());
    writer.pad8();
  }
  writer.finish();
  out.flush();
  util::require_data(static_cast<bool>(out), "oocore: output write failed");
  write_span.close();
  return result;
}

}  // namespace seg::graph
