// Out-of-core graph preparation: trace file -> pruned packed graphc file.
//
// prepare_graph_out_of_core() runs the learning-side prepare pipeline
// (build + label + prune R1-R4) without ever materializing the behavior
// graph in memory. Node-level state — name dictionaries, labels, degrees,
// keep masks — stays resident (O(machines + domains + e2LDs)); the edge
// and IP-pair streams, which dominate at ISP scale, are spilled to
// sorted/deduplicated delta+varint compressed segments and re-read through
// k-way merges. Peak RSS is O(nodes + chunk_records), independent of the
// edge count, which is what lets one box prepare days of 10^6-10^7
// machines (the bench_scale_sweep "scale" section records the bound).
//
// The output is a packed `segf1 graphc 1` file (graph_compressed.h),
// byte-identical to
//
//   save_graph_compressed(Segugio::prepare_graph(trace, ...).graph,
//                         out, GraphcEncoding::kPacked)
//
// for every chunk size (tests/graph/oocore_test.cpp asserts this), so the
// file can be mmap-served to classification directly via map_graph().
//
// Scope: the streaming prepare supports the default prepare pipeline only —
// no prober filtering and no cross-day NameCache carry; callers needing
// those stay on the in-memory Segugio::prepare_graph.
#pragma once

#include <cstdint>
#include <string>

#include "dns/public_suffix_list.h"
#include "graph/labeling.h"
#include "graph/pruning.h"

namespace seg::graph {

struct OutOfCoreConfig {
  PruningConfig pruning;
  /// Edge/IP pairs buffered before each sort + spill. The resident working
  /// set scales with this (8 bytes per buffered pair) plus the node
  /// dictionaries.
  std::size_t chunk_records = std::size_t{1} << 20;
  /// Directory for spill segment files; empty means next to `out_path`.
  std::string spill_dir;
};

struct OutOfCoreResult {
  PruneStats prune_stats;
  std::size_t records = 0;        ///< trace records consumed
  std::size_t skipped_records = 0;///< invalid qname / empty machine
  std::size_t spill_segments = 0; ///< sorted runs written across both spills
  std::uint64_t spill_bytes = 0;  ///< compressed spill footprint
};

/// Streams `trace_path` (TSV or SEGTRC1 binary) into a labeled, pruned,
/// packed graphc file at `out_path`. Spill files are removed on success.
/// Throws util::ParseError on malformed input.
OutOfCoreResult prepare_graph_out_of_core(const std::string& trace_path,
                                          const dns::PublicSuffixList& psl,
                                          const NameSet& cc_blacklist,
                                          const NameSet& e2ld_whitelist,
                                          const std::string& out_path,
                                          const OutOfCoreConfig& config = {});

}  // namespace seg::graph
