// Node labeling from ground-truth sources (Section II-A1, Section III).
//
// Domains: a domain is labeled *malware* when its full name string matches
// the C&C blacklist; *benign* when its effective 2LD is in the whitelist of
// consistently popular e2LDs; *unknown* otherwise. The blacklist wins when
// both match (a blacklisted name under a whitelisted zone is still malware).
//
// Machines: a machine is *malware* when it queries at least one malware
// domain, *benign* when it queries exclusively benign domains, and
// *unknown* otherwise.
#pragma once

#include <string>
#include <string_view>
#include <unordered_set>

#include "graph/graph.h"

namespace seg::graph {

/// A set of names with allocation-free string_view lookup.
class NameSet {
 public:
  NameSet() = default;

  void insert(std::string_view name) { names_.emplace(name); }
  bool contains(std::string_view name) const { return names_.contains(name); }
  std::size_t size() const { return names_.size(); }
  bool empty() const { return names_.empty(); }

  template <typename Range>
  static NameSet from(const Range& range) {
    NameSet set;
    for (const auto& name : range) {
      set.insert(name);
    }
    return set;
  }

 private:
  struct StringHash {
    using is_transparent = void;
    std::size_t operator()(std::string_view s) const noexcept {
      return std::hash<std::string_view>{}(s);
    }
  };
  using Storage = std::unordered_set<std::string, StringHash, std::equal_to<>>;

 public:
  using const_iterator = Storage::const_iterator;
  const_iterator begin() const { return names_.begin(); }
  const_iterator end() const { return names_.end(); }

 private:
  Storage names_;
};

struct LabelingResult {
  std::size_t malware_domains = 0;
  std::size_t benign_domains = 0;
  std::size_t malware_machines = 0;
  std::size_t benign_machines = 0;
};

/// Applies domain labels from `cc_blacklist` (full-name match) and
/// `e2ld_whitelist` (e2LD match), then derives machine labels from their
/// query sets. Overwrites any existing labels.
LabelingResult apply_labels(MachineDomainGraph& graph, const NameSet& cc_blacklist,
                            const NameSet& e2ld_whitelist);

/// Recomputes only the machine labels from current domain labels (used after
/// a domain label changes, e.g. the training-set "hide" step).
void relabel_machines(MachineDomainGraph& graph);

/// The machine label implied by a machine's domain-label multiset:
/// malware if any queried domain is malware; benign if all are benign.
Label derive_machine_label(std::size_t degree, std::size_t malware_domains,
                           std::size_t benign_domains);

}  // namespace seg::graph
