#include "graph/intern.h"

#include <string_view>
#include <utility>

#include "graph/graph.h"
#include "util/parallel.h"

namespace seg::graph {

FirstOccurrenceIntern intern_first_occurrence(std::vector<std::string>&& values) {
  const std::size_t n = values.size();
  FirstOccurrenceIntern result;
  result.ids.resize(n);
  if (n == 0) {
    return result;
  }

  const std::size_t chunks = util::default_chunk_count(n);
  const std::size_t per_chunk = (n + chunks - 1) / chunks;

  // Pass 1 (count): per-chunk local interning. `firsts[c]` holds the input
  // index of each distinct value's first occurrence inside chunk c, in
  // local first-occurrence order; `result.ids` temporarily holds local ids.
  std::vector<std::vector<std::size_t>> firsts(chunks);
  util::parallel_for(chunks, [&](std::size_t c) {
    const std::size_t lo = std::min(n, c * per_chunk);
    const std::size_t hi = std::min(n, lo + per_chunk);
    StringIdMap<std::uint32_t> local;
    auto& first_of = firsts[c];
    for (std::size_t i = lo; i < hi; ++i) {
      const std::string_view value = values[i];
      if (const auto it = local.find(value); it != local.end()) {
        result.ids[i] = it->second;
      } else {
        const auto local_id = static_cast<std::uint32_t>(first_of.size());
        local.emplace(std::string(value), local_id);
        first_of.push_back(i);
        result.ids[i] = local_id;
      }
    }
  });

  // Pass 2a (assign): serial chunk-order walk over distinct values only.
  StringIdMap<std::uint32_t> global;
  std::vector<std::vector<std::uint32_t>> remap(chunks);
  for (std::size_t c = 0; c < chunks; ++c) {
    remap[c].resize(firsts[c].size());
    for (std::size_t local = 0; local < firsts[c].size(); ++local) {
      auto& value = values[firsts[c][local]];
      if (const auto it = global.find(value); it != global.end()) {
        remap[c][local] = it->second;
      } else {
        const auto id = static_cast<std::uint32_t>(result.distinct.size());
        result.distinct.push_back(value);
        global.emplace(std::move(value), id);
        remap[c][local] = id;
      }
    }
  }

  // Pass 2b (remap): local id -> global id, parallel over disjoint slices.
  util::parallel_for(chunks, [&](std::size_t c) {
    const std::size_t lo = std::min(n, c * per_chunk);
    const std::size_t hi = std::min(n, lo + per_chunk);
    for (std::size_t i = lo; i < hi; ++i) {
      result.ids[i] = remap[c][result.ids[i]];
    }
  });
  return result;
}

}  // namespace seg::graph
