#include "graph/graph_io.h"

#include <cstring>
#include <istream>
#include <ostream>

#include "util/require.h"

namespace seg::graph {

namespace {

constexpr char kMagic[] = "SEGGRAPH1";
constexpr std::size_t kMagicLength = sizeof(kMagic) - 1;

template <typename T>
void write_le(std::ostream& out, T value) {
  for (std::size_t i = 0; i < sizeof(T); ++i) {
    out.put(static_cast<char>((static_cast<std::uint64_t>(value) >> (8 * i)) & 0xff));
  }
}

template <typename T>
T read_le(std::istream& in) {
  std::uint64_t value = 0;
  for (std::size_t i = 0; i < sizeof(T); ++i) {
    const int byte = in.get();
    util::require_data(byte != std::char_traits<char>::eof(),
                       "load_graph: truncated file");
    value |= static_cast<std::uint64_t>(static_cast<unsigned char>(byte)) << (8 * i);
  }
  return static_cast<T>(value);
}

void write_strings(std::ostream& out, const std::vector<std::string>& strings) {
  write_le<std::uint64_t>(out, strings.size());
  for (const auto& text : strings) {
    write_le<std::uint32_t>(out, static_cast<std::uint32_t>(text.size()));
    out.write(text.data(), static_cast<std::streamsize>(text.size()));
  }
}

std::vector<std::string> read_strings(std::istream& in) {
  const auto count = read_le<std::uint64_t>(in);
  std::vector<std::string> strings;
  strings.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    const auto length = read_le<std::uint32_t>(in);
    std::string text(length, '\0');
    in.read(text.data(), length);
    util::require_data(static_cast<std::size_t>(in.gcount()) == length,
                       "load_graph: truncated string");
    strings.push_back(std::move(text));
  }
  return strings;
}

template <typename T>
void write_pod_vector(std::ostream& out, const std::vector<T>& values) {
  write_le<std::uint64_t>(out, values.size());
  for (const auto& value : values) {
    write_le<std::uint64_t>(out, static_cast<std::uint64_t>(value));
  }
}

template <typename T>
std::vector<T> read_pod_vector(std::istream& in) {
  const auto count = read_le<std::uint64_t>(in);
  std::vector<T> values;
  values.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    values.push_back(static_cast<T>(read_le<std::uint64_t>(in)));
  }
  return values;
}

}  // namespace

void save_graph(const MachineDomainGraph& graph, std::ostream& out) {
  out.write(kMagic, static_cast<std::streamsize>(kMagicLength));
  write_le<std::int32_t>(out, graph.day_);
  write_strings(out, graph.machine_names_);
  write_strings(out, graph.domain_names_);
  write_strings(out, graph.e2ld_names_);
  write_pod_vector(out, graph.domain_e2ld_);
  write_pod_vector(out, graph.machine_offsets_);
  write_pod_vector(out, graph.machine_targets_);
  write_pod_vector(out, graph.domain_offsets_);
  write_pod_vector(out, graph.domain_targets_);
  write_pod_vector(out, graph.ip_offsets_);
  write_le<std::uint64_t>(out, graph.resolved_ips_.size());
  for (const auto ip : graph.resolved_ips_) {
    write_le<std::uint32_t>(out, ip.value());
  }
  // Labels as raw bytes.
  write_le<std::uint64_t>(out, graph.machine_labels_.size());
  for (const auto label : graph.machine_labels_) {
    out.put(static_cast<char>(label));
  }
  write_le<std::uint64_t>(out, graph.domain_labels_.size());
  for (const auto label : graph.domain_labels_) {
    out.put(static_cast<char>(label));
  }
  util::require_data(static_cast<bool>(out), "save_graph: write failed");
}

MachineDomainGraph load_graph(std::istream& in) {
  char magic[kMagicLength];
  in.read(magic, static_cast<std::streamsize>(kMagicLength));
  util::require_data(static_cast<std::size_t>(in.gcount()) == kMagicLength &&
                         std::memcmp(magic, kMagic, kMagicLength) == 0,
                     "load_graph: bad magic (not a SEGGRAPH1 file)");
  MachineDomainGraph graph;
  graph.day_ = read_le<std::int32_t>(in);
  graph.machine_names_ = read_strings(in);
  graph.domain_names_ = read_strings(in);
  graph.e2ld_names_ = read_strings(in);
  graph.domain_e2ld_ = read_pod_vector<E2ldId>(in);
  graph.machine_offsets_ = read_pod_vector<std::uint64_t>(in);
  graph.machine_targets_ = read_pod_vector<DomainId>(in);
  graph.domain_offsets_ = read_pod_vector<std::uint64_t>(in);
  graph.domain_targets_ = read_pod_vector<MachineId>(in);
  graph.ip_offsets_ = read_pod_vector<std::uint64_t>(in);
  {
    const auto count = read_le<std::uint64_t>(in);
    graph.resolved_ips_.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i) {
      graph.resolved_ips_.push_back(dns::IpV4(read_le<std::uint32_t>(in)));
    }
  }
  const auto read_labels = [&in](std::size_t expected) {
    const auto count = read_le<std::uint64_t>(in);
    util::require_data(count == expected, "load_graph: label section size mismatch");
    std::vector<Label> labels;
    labels.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i) {
      const int byte = in.get();
      util::require_data(byte != std::char_traits<char>::eof() && byte >= 0 && byte <= 2,
                         "load_graph: malformed label byte");
      labels.push_back(static_cast<Label>(byte));
    }
    return labels;
  };
  graph.machine_labels_ = read_labels(graph.machine_names_.size());
  graph.domain_labels_ = read_labels(graph.domain_names_.size());

  // Structural consistency checks.
  util::require_data(graph.machine_offsets_.size() == graph.machine_names_.size() + 1 &&
                         graph.domain_offsets_.size() == graph.domain_names_.size() + 1 &&
                         graph.ip_offsets_.size() == graph.domain_names_.size() + 1,
                     "load_graph: offset table size mismatch");
  util::require_data(graph.machine_targets_.size() == graph.domain_targets_.size(),
                     "load_graph: edge count mismatch between directions");
  util::require_data(graph.domain_e2ld_.size() == graph.domain_names_.size(),
                     "load_graph: e2LD annotation size mismatch");
  util::require_data(
      graph.machine_offsets_.empty() ||
          graph.machine_offsets_.back() == graph.machine_targets_.size(),
      "load_graph: machine CSR inconsistent");
  util::require_data(graph.ip_offsets_.empty() ||
                         graph.ip_offsets_.back() == graph.resolved_ips_.size(),
                     "load_graph: IP CSR inconsistent");
  graph.rebuild_name_index();
  return graph;
}

}  // namespace seg::graph
