// Process-wide data parallelism for the pipeline's hot stages.
//
// Graph construction, pruning, feature extraction, and classification are
// all data-parallel over index ranges. Rather than every stage spinning up
// (and tearing down) its own ThreadPool, they share one process-wide pool
// whose size is set once — by the application, a benchmark sweep, or the
// SEG_THREADS environment variable — and every stage inherits it.
//
// Determinism contract: all functions here partition work statically by
// index, so any stage built on them produces identical results for every
// pool size (including 1). Stages that need per-worker accumulators use
// parallel_chunks and reduce the per-chunk results in chunk order.
#pragma once

#include <cstddef>
#include <functional>

#include "util/thread_pool.h"

namespace seg::util {

/// Number of workers the shared pool uses (never 0). Defaults to the
/// SEG_THREADS environment variable when set, else hardware_concurrency.
std::size_t parallelism();

/// Resizes the shared pool; 0 restores the default. Takes effect on the
/// next parallel_for / parallel_chunks call. Not safe to call concurrently
/// with in-flight parallel work (it is a configuration knob, not a
/// synchronization point).
void set_parallelism(std::size_t num_threads);

/// The shared pool itself, for callers that need submit(). Lazily built.
ThreadPool& shared_pool();

/// fn(i) for i in [0, count) on the shared pool; runs inline (no pool
/// touch) when the pool has one worker or count < 2. Exceptions from tasks
/// are rethrown (first one wins).
void parallel_for(std::size_t count, const std::function<void(std::size_t)>& fn);

/// Splits [0, count) into exactly `num_chunks` (or fewer when count is
/// small) contiguous ranges and runs fn(chunk_index, begin, end) for each.
/// The partition depends only on (count, num_chunks), never on the pool
/// size, so per-chunk accumulators reduced in chunk order are
/// deterministic. num_chunks == 0 means one chunk per worker.
void parallel_chunks(std::size_t count, std::size_t num_chunks,
                     const std::function<void(std::size_t, std::size_t, std::size_t)>& fn);

/// The chunk count parallel_chunks(count, 0, ...) would use: one chunk per
/// shared-pool worker, capped by count (min 1). Callers size per-chunk
/// accumulator arrays with this.
std::size_t default_chunk_count(std::size_t count);

}  // namespace seg::util
