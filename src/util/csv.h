// Minimal delimiter-separated-values reader/writer.
//
// Used for experiment outputs (paper-style tables) and for the on-disk text
// form of DNS query logs. Supports configurable delimiter and '#' comment
// lines; fields must not contain the delimiter (our formats never need
// quoting, so we keep the format trivially greppable).
#pragma once

#include <fstream>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

namespace seg::util {

/// Streaming reader over a delimiter-separated text file.
class DsvReader {
 public:
  /// Opens `path`; throws ParseError if the file cannot be opened.
  DsvReader(const std::string& path, char delimiter = '\t');

  /// Reads the next data row into `fields` (views into an internal buffer
  /// valid until the next call). Skips blank lines and '#' comments.
  /// Returns false at end of file.
  bool next(std::vector<std::string_view>& fields);

  /// Line number of the most recently returned row (1-based).
  std::size_t line_number() const { return line_number_; }

 private:
  std::ifstream stream_;
  std::string buffer_;
  char delimiter_;
  std::size_t line_number_ = 0;
};

/// Writer producing delimiter-separated rows.
class DsvWriter {
 public:
  /// Opens `path` for writing; throws ParseError on failure.
  DsvWriter(const std::string& path, char delimiter = '\t');

  void write_comment(std::string_view comment);
  void write_row(const std::vector<std::string>& fields);
  void write_row(const std::vector<std::string_view>& fields);

  /// Flushes and closes; called automatically by the destructor.
  void close();

 private:
  std::ofstream stream_;
  char delimiter_;
};

}  // namespace seg::util
