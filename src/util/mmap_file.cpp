#include "util/mmap_file.h"

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <utility>

#include "util/require.h"

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif
#if defined(__linux__)
#include <sys/syscall.h>
#endif

namespace seg::util {

namespace {

#if defined(__linux__) && defined(__NR_mbind)

// <numaif.h> is part of libnuma's headers, which the toolchain image does
// not ship; the raw syscall needs only the mode constant.
constexpr int kMpolInterleave = 3;

// Interleaves [addr, addr + length) across the nodes the kernel accepts.
// The node mask must name only possible nodes, which we cannot portably
// enumerate without libnuma — so try progressively narrower all-ones
// masks until one sticks. On single-node machines (and on any failure)
// this is a no-op, which is exactly first-touch.
void interleave_pages(void* addr, std::size_t length) {
  const auto page = static_cast<std::size_t>(sysconf(_SC_PAGESIZE));
  auto base = reinterpret_cast<std::uintptr_t>(addr);
  const std::uintptr_t aligned = base & ~(page - 1);
  length += base - aligned;
  for (unsigned width = 64; width >= 1; width /= 2) {
    const unsigned long mask = width >= 64 ? ~0ul : (1ul << width) - 1ul;
    if (syscall(__NR_mbind, reinterpret_cast<void*>(aligned), length, kMpolInterleave,
                &mask, static_cast<unsigned long>(width + 1), 0ul) == 0) {
      return;
    }
  }
}

#else

void interleave_pages(void*, std::size_t) {}

#endif

}  // namespace

void apply_numa_policy(void* addr, std::size_t length) {
  if (addr == nullptr || length == 0) {
    return;
  }
  const char* policy = std::getenv("SEG_NUMA_POLICY");
  if (policy == nullptr || std::strcmp(policy, "interleave") != 0) {
    return;  // firsttouch (the default) needs no explicit placement
  }
  interleave_pages(addr, length);
}

#if defined(__unix__) || defined(__APPLE__)

MmapFile::MmapFile(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  require_data(fd >= 0, "MmapFile: cannot open '" + path + "'");
  struct stat info{};
  if (::fstat(fd, &info) != 0) {
    ::close(fd);
    throw ParseError("MmapFile: cannot stat '" + path + "'");
  }
  size_ = static_cast<std::size_t>(info.st_size);
  if (size_ > 0) {
    void* mapped = ::mmap(nullptr, size_, PROT_READ, MAP_PRIVATE, fd, 0);
    if (mapped == MAP_FAILED) {
      ::close(fd);
      throw ParseError("MmapFile: mmap failed for '" + path + "'");
    }
    data_ = mapped;
    apply_numa_policy(data_, size_);
  }
  ::close(fd);
  open_ = true;
}

void MmapFile::close() {
  if (data_ != nullptr) {
    ::munmap(data_, size_);
  }
  data_ = nullptr;
  size_ = 0;
  open_ = false;
}

#else

MmapFile::MmapFile(const std::string& path) {
  throw ParseError("MmapFile: memory mapping unsupported on this platform ('" + path + "')");
}

void MmapFile::close() {
  data_ = nullptr;
  size_ = 0;
  open_ = false;
}

#endif

MmapFile::~MmapFile() { close(); }

MmapFile::MmapFile(MmapFile&& other) noexcept
    : data_(std::exchange(other.data_, nullptr)),
      size_(std::exchange(other.size_, 0)),
      open_(std::exchange(other.open_, false)) {}

MmapFile& MmapFile::operator=(MmapFile&& other) noexcept {
  if (this != &other) {
    close();
    data_ = std::exchange(other.data_, nullptr);
    size_ = std::exchange(other.size_, 0);
    open_ = std::exchange(other.open_, false);
  }
  return *this;
}

}  // namespace seg::util
