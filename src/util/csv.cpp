#include "util/csv.h"

#include "util/require.h"
#include "util/strings.h"

namespace seg::util {

DsvReader::DsvReader(const std::string& path, char delimiter)
    : stream_(path), delimiter_(delimiter) {
  require_data(stream_.is_open(), "DsvReader: cannot open '" + path + "'");
}

bool DsvReader::next(std::vector<std::string_view>& fields) {
  fields.clear();
  while (std::getline(stream_, buffer_)) {
    ++line_number_;
    // Tolerate CRLF input.
    if (!buffer_.empty() && buffer_.back() == '\r') {
      buffer_.pop_back();
    }
    const std::string_view line = trim(buffer_);
    if (line.empty() || line.front() == '#') {
      continue;
    }
    fields = split(std::string_view(buffer_), delimiter_);
    return true;
  }
  return false;
}

DsvWriter::DsvWriter(const std::string& path, char delimiter)
    : stream_(path), delimiter_(delimiter) {
  require_data(stream_.is_open(), "DsvWriter: cannot open '" + path + "'");
}

void DsvWriter::write_comment(std::string_view comment) {
  stream_ << "# " << comment << "\n";
}

namespace {
template <typename Field>
void write_row_impl(std::ofstream& stream, char delimiter, const std::vector<Field>& fields) {
  bool first = true;
  for (const auto& field : fields) {
    if (!first) {
      stream << delimiter;
    }
    stream << field;
    first = false;
  }
  stream << "\n";
}
}  // namespace

void DsvWriter::write_row(const std::vector<std::string>& fields) {
  write_row_impl(stream_, delimiter_, fields);
}

void DsvWriter::write_row(const std::vector<std::string_view>& fields) {
  write_row_impl(stream_, delimiter_, fields);
}

void DsvWriter::close() {
  if (stream_.is_open()) {
    stream_.close();
  }
}

}  // namespace seg::util
