// Integer-valued histogram with text rendering, used to print the paper's
// distribution figures (e.g. Fig. 3 and Fig. 11) as ASCII bar charts.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace seg::util {

/// Sparse histogram over non-negative integer values.
class Histogram {
 public:
  void add(std::uint64_t value, std::uint64_t count = 1);

  std::uint64_t count(std::uint64_t value) const;
  std::uint64_t total() const { return total_; }
  bool empty() const { return counts_.empty(); }

  std::uint64_t min_value() const;
  std::uint64_t max_value() const;

  double mean() const;

  /// Fraction of mass at values strictly greater than `threshold`.
  double fraction_above(std::uint64_t threshold) const;

  /// Smallest v such that P(X <= v) >= q, for q in [0, 1].
  std::uint64_t quantile(double q) const;

  /// All (value, count) pairs in ascending value order.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> items() const;

  /// Renders an ASCII bar chart. `max_rows` caps the number of distinct
  /// values shown (the tail is collapsed into a ">= v" row); `width` is the
  /// bar width in characters for the modal value.
  std::string render(std::size_t max_rows = 24, std::size_t width = 50) const;

 private:
  std::map<std::uint64_t, std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

}  // namespace seg::util
