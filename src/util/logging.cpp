#include "util/logging.h"

#include <cstdio>
#include <iomanip>

namespace seg::util {

std::string_view log_level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

Logger::Logger() : start_(std::chrono::steady_clock::now()) {}

void Logger::set_level(LogLevel level) {
  std::lock_guard lock(mutex_);
  level_ = level;
}

LogLevel Logger::level() const {
  std::lock_guard lock(mutex_);
  return level_;
}

void Logger::set_sink(Sink sink) {
  std::lock_guard lock(mutex_);
  sink_ = std::move(sink);
}

void Logger::log(LogLevel level, std::string_view message) {
  std::lock_guard lock(mutex_);
  if (level < level_ || level_ == LogLevel::kOff) {
    return;
  }
  if (sink_) {
    sink_(level, message);
    return;
  }
  const auto elapsed =
      std::chrono::duration_cast<std::chrono::milliseconds>(std::chrono::steady_clock::now() - start_);
  std::ostringstream line;
  line << "[" << std::fixed << std::setprecision(3) << static_cast<double>(elapsed.count()) / 1000.0
       << "s " << log_level_name(level) << "] " << message << "\n";
  std::fputs(line.str().c_str(), stderr);
}

}  // namespace seg::util
