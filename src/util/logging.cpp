#include "util/logging.h"

#include <cstdio>
#include <iomanip>

#include "util/obs/trace.h"

namespace seg::util {

std::string_view log_level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

std::uint32_t log_thread_id() {
  static std::atomic<std::uint32_t> next{0};
  thread_local const std::uint32_t id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

void Logger::set_level(LogLevel level) {
  std::lock_guard lock(mutex_);
  level_ = level;
}

LogLevel Logger::level() const {
  std::lock_guard lock(mutex_);
  return level_;
}

void Logger::set_sink(Sink sink) {
  std::lock_guard lock(mutex_);
  sink_ = std::move(sink);
}

bool Logger::has_custom_sink() const {
  std::lock_guard lock(mutex_);
  return static_cast<bool>(sink_);
}

void Logger::log(LogLevel level, std::string_view message) {
  // Copy the sink under the lock, invoke it outside: a sink that logs (or
  // installs another sink) must not deadlock against mutex_.
  Sink sink;
  {
    std::lock_guard lock(mutex_);
    if (level < level_ || level_ == LogLevel::kOff) {
      return;
    }
    sink = sink_;
  }
  if (sink) {
    sink(level, message);
    return;
  }
  std::ostringstream line;
  line << "[" << std::fixed << std::setprecision(3) << obs::uptime_seconds() << "s t"
       << log_thread_id() << " " << log_level_name(level) << "] " << message << "\n";
  std::fputs(line.str().c_str(), stderr);
}

}  // namespace seg::util
