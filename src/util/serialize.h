// Versioned on-disk format headers.
//
// Every text serialization in the project (Segugio models, the passive DNS
// database, the domain activity index) starts with one line:
//
//   segf1 <magic> <version>
//
// `segf1` marks the container ("segugio format, revision 1" of the header
// itself), `magic` names the payload kind, and `version` lets each payload
// evolve independently. Streams written before this header existed carry no
// such line; read_format_header() detects that and rewinds, so legacy files
// keep loading (the loaders treat them as version `legacy_version`).
#pragma once

#include <istream>
#include <ostream>
#include <string>
#include <string_view>

#include "util/require.h"

namespace seg::util {

inline constexpr std::string_view kFormatTag = "segf1";

/// Writes the `segf1 <magic> <version>` header line.
inline void write_format_header(std::ostream& out, std::string_view magic, int version) {
  out << kFormatTag << ' ' << magic << ' ' << version << '\n';
}

/// Consumes the optional versioned header and returns the stream's format
/// version. Streams that do not start with the `segf1` tag are legacy files:
/// the stream is rewound untouched and `legacy_version` is returned. Throws
/// ParseError when the tag is present but the magic mismatches or the
/// version is outside [1, latest_version].
inline int read_format_header(std::istream& in, std::string_view magic, int latest_version,
                              int legacy_version = 1) {
  const auto start = in.tellg();
  std::string tag;
  if (!(in >> tag) || tag != kFormatTag) {
    // Legacy (or empty) stream: put everything back for the caller's parser.
    in.clear();
    in.seekg(start);
    return legacy_version;
  }
  std::string found_magic;
  int version = 0;
  in >> found_magic >> version;
  require_data(static_cast<bool>(in) && found_magic == magic,
               "read_format_header: expected magic '" + std::string(magic) + "', got '" +
                   found_magic + "'");
  require_data(version >= 1 && version <= latest_version,
               "read_format_header: unsupported " + std::string(magic) + " version " +
                   std::to_string(version) + " (latest supported: " +
                   std::to_string(latest_version) + ")");
  return version;
}

}  // namespace seg::util
