// Deterministic pseudo-random number generation.
//
// All stochastic components of the library (the traffic simulator, the
// random-forest bagging, train/test splitting) draw from SplitMix64-seeded
// xoshiro256** generators so that every experiment is reproducible from a
// single integer seed.
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "util/require.h"

namespace seg::util {

/// SplitMix64: used to expand a single 64-bit seed into generator state.
/// Reference: Vigna, http://prng.di.unimi.it/splitmix64.c
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256**: fast, high-quality 64-bit PRNG. Satisfies the
/// UniformRandomBitGenerator requirements so it composes with <random> and
/// std::shuffle.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Default seed chosen arbitrarily; all experiments pass explicit seeds.
  explicit Rng(std::uint64_t seed = 0x5E6061D0ULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : state_) {
      s = sm.next();
    }
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~std::uint64_t{0}; }

  result_type operator()() { return next(); }

  std::uint64_t next() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). Requires bound > 0. Uses Lemire's
  /// multiply-shift rejection method (unbiased).
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t next_int(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double next_double(double lo, double hi) { return lo + (hi - lo) * next_double(); }

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool next_bool(double p) { return next_double() < p; }

  /// Standard-normal variate (Box-Muller; one value per call, no caching so
  /// the stream stays deterministic under reordering).
  double next_gaussian();

  /// Geometric-ish "count" sampler: Poisson(lambda) via Knuth for small
  /// lambda, normal approximation for large lambda. Always >= 0.
  std::uint64_t next_poisson(double lambda);

  /// Fisher-Yates shuffle of a span.
  template <typename T>
  void shuffle(std::span<T> values) {
    for (std::size_t i = values.size(); i > 1; --i) {
      std::swap(values[i - 1], values[next_below(i)]);
    }
  }

  /// Samples k distinct indices from [0, n) (k <= n), in random order.
  std::vector<std::size_t> sample_without_replacement(std::size_t n, std::size_t k);

  /// Forks an independently-seeded child generator; children with distinct
  /// stream ids are decorrelated regardless of draw order in the parent.
  Rng fork(std::uint64_t stream_id) const;

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

/// Zipf(s) sampler over ranks {0, ..., n-1}; rank 0 is most popular.
/// Used to model the popularity skew of benign web domains. Exact inverse-CDF
/// sampling over a precomputed table (n is at most a few million here).
class ZipfSampler {
 public:
  /// Requires n > 0 and exponent s > 0.
  ZipfSampler(std::size_t n, double s);

  std::size_t sample(Rng& rng) const;

  std::size_t size() const { return cdf_.size(); }

  /// Probability mass of rank i.
  double pmf(std::size_t i) const;

 private:
  std::vector<double> cdf_;  // cdf_[i] = P(rank <= i)
  double s_;
};

}  // namespace seg::util
