#include "util/interner.h"

#include "util/require.h"

namespace seg::util {

StringInterner::Id StringInterner::intern(std::string_view text) {
  if (const auto it = index_.find(text); it != index_.end()) {
    return it->second;
  }
  require(strings_.size() < kInvalidId, "StringInterner: id space exhausted");
  const Id id = static_cast<Id>(strings_.size());
  strings_.emplace_back(text);
  index_.emplace(std::string_view(strings_.back()), id);
  return id;
}

std::optional<StringInterner::Id> StringInterner::find(std::string_view text) const {
  if (const auto it = index_.find(text); it != index_.end()) {
    return it->second;
  }
  return std::nullopt;
}

std::string_view StringInterner::lookup(Id id) const {
  require(id < strings_.size(), "StringInterner::lookup: id out of range");
  return strings_[id];
}

}  // namespace seg::util
